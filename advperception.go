// Package advperception is the public facade of the reproduction of
// "Revisiting Adversarial Perception Attacks and Defense Methods on
// Autonomous Driving Systems" (DSN 2025). It re-exports the library's
// building blocks so downstream users need a single import:
//
//   - victim models: the TinyDet stop-sign detector (YOLOv8 stand-in) and
//     the DistNet lead-distance regressor (Supercombo stand-in);
//   - the six attacks (Gaussian, FGSM, Auto-PGD, SimBA, RP2, CAP-Attack);
//   - the four defense families (image preprocessing, adversarial
//     training, contrastive learning, diffusion/DiffPIR);
//   - the synthetic scene generators and the closed-loop ACC pipeline;
//   - the v2 experiment core behind every entrypoint: registries, Specs,
//     Observers, and the Experiment runner.
//
// # Experiment API v2
//
// Every experiment — the paper's Tables I–V and Figures 1–2, the
// closed-loop scenario matrix, one shard of a distributed sweep — is
// addressed by a serializable Spec and executed by one Experiment core:
//
//	x, err := advperception.NewExperiment(ctx,
//	    advperception.WithPresetName("quick"),
//	    advperception.WithLogger(log.Printf),
//	    advperception.WithObserver(&advperception.ProgressPrinter{W: os.Stdout}))
//	res, err := x.Run(ctx, advperception.Spec{Kind: advperception.SpecMatrix})
//	fmt.Print(res.Text)
//
// Specs are JSON round-trippable (ParseSpec / Spec.JSON), validated
// against string-keyed registries, and equal specs denote bit-identical
// runs. New attacks, defenses and scenarios are registrations, not code
// changes:
//
//	advperception.RegisterAttack(advperception.AttackDef{Name: "my-attack", Runtime: ...})
//	advperception.RegisterScenario(advperception.Scenario{Name: "my-maneuver", ...})
//
// then a Spec may list "my-attack" and "my-maneuver" on its axes. Runs
// take a context.Context — cancellation stops grid dispatch promptly, and
// a cancelled checkpointed sweep resumes from its JSONL stream. Observer
// sinks receive cell started/finished/progress events; MergeSweeps joins
// the shards of a distributed sweep back into one verified grid.
//
// The legacy entrypoints (Env.RunTableI … RunFig2, Env.RunMatrix,
// Env.RunSweep) remain and route through the same engine, pinned
// bit-identical to their pre-redesign outputs by golden tests.
//
// The perception stack is batch-first: Regressor.PredictBatch and
// Detector.ForwardBatch/DetectBatch run whole frame batches through one
// blocked MatMul per layer, bit-identical frame-for-frame to the
// per-frame calls.
//
// The serving layer (NewServer; `advrepro serve`) exposes the same core
// as a long-lived daemon: POST a Spec, stream its Observer events as
// NDJSON, and repeat submissions are answered from a content-addressed
// result cache keyed by SpecHash — the Spec determinism guarantee makes
// a hit provably identical to a fresh compute. A ModelStore caches
// trained victim weights on disk so environments warm-start across
// processes.
//
// The fleet dispatcher (Dispatch; `advrepro dispatch`) fans a grid
// spec's shards over a worker fleet — in-process pools, advrepro-run
// subprocesses, serve daemons — and recovers from worker failure
// automatically: crashed shards re-dispatch with capped exponential
// backoff and resume from their JSONL lane files, stragglers hedge to a
// second worker with first-writer-wins dedup, and repeat offenders are
// quarantined. The merged report is byte-identical to an unsharded run
// of the same Spec regardless of failures.
package advperception

import (
	"context"

	"repro/internal/attack"
	"repro/internal/box"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/detect"
	"repro/internal/dispatch"
	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/imaging"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/regress"
	"repro/internal/scene"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Core data types.
type (
	// Image is the CHW float image every model consumes.
	Image = imaging.Image
	// Box is an axis-aligned bounding box in pixels.
	Box = box.Box
	// RNG is the deterministic random source used everywhere.
	RNG = xrand.RNG

	// Detector is the TinyDet stop-sign detector.
	Detector = detect.Detector
	// Regressor is the DistNet lead-distance regressor.
	Regressor = regress.Regressor

	// SignScene is a generated stop-sign example with ground truth.
	SignScene = scene.SignScene
	// DriveScene is a generated driving frame with ground truth.
	DriveScene = scene.DriveScene
	// SignSet is a stop-sign dataset.
	SignSet = dataset.SignSet
	// DriveSet is a driving-frame dataset.
	DriveSet = dataset.DriveSet

	// Objective is the attacker's view of a victim model.
	Objective = attack.Objective
	// Preprocessor is an input-level defense.
	Preprocessor = defense.Preprocessor
	// IntoPreprocessor is a defense that can reuse a caller-held frame.
	IntoPreprocessor = defense.IntoPreprocessor
	// DetectionScores bundles mAP@50 / precision / recall.
	DetectionScores = metrics.DetectionScores

	// Env is the experiment environment (datasets + trained victims).
	Env = eval.Env
	// Preset sizes an experiment run.
	Preset = eval.Preset
	// Kind names one attack in the harness.
	Kind = eval.Kind

	// Scenario is a named closed-loop lead maneuver.
	Scenario = pipeline.Scenario
	// MatrixConfig declares a scenario × attack × defense grid.
	MatrixConfig = eval.MatrixConfig
	// MatrixCell is one executed grid point with its safety metrics.
	MatrixCell = eval.MatrixCell
	// MatrixReport aggregates a grid run (text/markdown/CSV formatting).
	MatrixReport = eval.MatrixReport
	// AttackSpec is a named runtime-attacker factory for matrix cells.
	AttackSpec = eval.AttackSpec
	// DefenseSpec is a named defense factory for matrix cells.
	DefenseSpec = eval.DefenseSpec

	// SweepConfig declares one shard of a checkpointed grid sweep.
	SweepConfig = eval.SweepConfig
	// SweepReport is one shard's slice of the grid, in global index order.
	SweepReport = eval.SweepReport

	// Experiment is the v2 core: a trained environment running
	// serializable Specs under a context with observers.
	Experiment = exp.Experiment
	// Option configures NewExperiment.
	Option = exp.Option
	// Spec is the serializable address of one run.
	Spec = exp.Spec
	// MatrixSpec declares a grid by registry names.
	MatrixSpec = exp.MatrixSpec
	// SweepSpec declares one shard of a checkpointed sweep.
	SweepSpec = exp.SweepSpec
	// RunResult is the outcome of one spec run (text + typed payload).
	RunResult = exp.Result
	// AttackDef registers one attack (dataset and/or runtime capability).
	AttackDef = exp.AttackDef
	// DefenseDef registers one input-level defense.
	DefenseDef = exp.DefenseDef
	// Observer receives run progress events.
	Observer = exp.Observer
	// ObserverFunc adapts a function to Observer.
	ObserverFunc = exp.ObserverFunc
	// Event is one progress notification from a grid run.
	Event = exp.Event
	// EventKind discriminates observer events.
	EventKind = exp.EventKind
	// ProgressPrinter is the stock CLI progress observer.
	ProgressPrinter = exp.ProgressPrinter
	// CellID identifies one grid point (index, seed, axis names).
	CellID = eval.CellID

	// ResultCache stores serialized result payloads by canonical spec
	// hash (the serving layer's content-addressed cache).
	ResultCache = exp.ResultCache
	// MemoryCache is the stock in-process ResultCache.
	MemoryCache = exp.MemoryCache
	// ModelStore caches trained victim weights on disk, keyed by model
	// kind, architecture version and preset.
	ModelStore = eval.ModelStore

	// Server is the advrepro daemon: spec-addressable evaluation over
	// HTTP with NDJSON event streaming and single-flight deduplication.
	Server = serve.Server
	// ServerConfig configures NewServer.
	ServerConfig = serve.Config
	// WireEvent is one NDJSON line of a /run stream.
	WireEvent = serve.WireEvent
	// WireResult is the terminal (and cached) payload of a /run stream.
	WireResult = serve.ResultPayload
	// StreamConfig configures StreamSpec's reconnecting NDJSON consumer.
	StreamConfig = serve.StreamConfig

	// SweepRecord is one JSONL checkpoint line as a typed value: a
	// finished grid cell plus the run configuration that produced it.
	SweepRecord = eval.SweepRecord

	// Transport executes one shard spec on some worker (fleet dispatch).
	Transport = dispatch.Transport
	// DispatchWorker is one dispatch target: a transport plus a name.
	DispatchWorker = dispatch.Worker
	// DispatchConfig configures a fleet dispatch run.
	DispatchConfig = dispatch.Config
	// DispatchReport is a dispatch run's outcome: the merged, verified
	// grid plus the recovery bookkeeping (retries, hedges, quarantines).
	DispatchReport = dispatch.Report
	// PoolTransport runs shards in-process on a shared Experiment.
	PoolTransport = dispatch.PoolTransport
	// ExecTransport runs shards as local advrepro-run subprocesses.
	ExecTransport = dispatch.ExecTransport
	// HTTPTransport runs shards on a remote serve daemon.
	HTTPTransport = dispatch.HTTPTransport
)

// Spec kinds, re-exported for spec-building callers.
const (
	SpecTable1    = exp.KindTable1
	SpecTable2    = exp.KindTable2
	SpecTable3    = exp.KindTable3
	SpecTable4    = exp.KindTable4
	SpecTable5    = exp.KindTable5
	SpecFig2      = exp.KindFig2
	SpecPipeline  = exp.KindPipeline
	SpecAblations = exp.KindAblations
	SpecMatrix    = exp.KindMatrix
	SpecSweep     = exp.KindSweep
)

// Observer event kinds.
const (
	EventRunStart  = exp.EventRunStart
	EventCellStart = exp.EventCellStart
	EventCellDone  = exp.EventCellDone
	EventLog       = exp.EventLog
	EventRunDone   = exp.EventRunDone
)

// NewExperiment builds the v2 experiment core: it trains the victims
// under the configured preset (or adopts one via WithEnv) and runs Specs.
func NewExperiment(ctx context.Context, opts ...Option) (*Experiment, error) {
	return exp.New(ctx, opts...)
}

// Experiment options (see exp.New).
var (
	WithPreset      = exp.WithPreset
	WithPresetName  = exp.WithPresetName
	WithEnv         = exp.WithEnv
	WithLogger      = exp.WithLogger
	WithWorkers     = exp.WithWorkers
	WithObserver    = exp.WithObserver
	WithArtifacts   = exp.WithArtifacts
	WithArtifactDir = exp.WithArtifactDir
)

// ParseSpec decodes and validates a JSON spec.
func ParseSpec(data []byte) (Spec, error) { return exp.ParseSpec(data) }

// CanonicalSpec returns the canonical encoding of a spec: defaults
// resolved, execution-only fields dropped, deterministic field order.
// Specs that address the same run canonicalize to the same bytes.
func CanonicalSpec(s Spec) ([]byte, error) { return exp.CanonicalSpec(s) }

// SpecHash returns the content address of a spec's result: the SHA-256
// of its canonical encoding. Equal hashes denote bit-identical runs.
func SpecHash(s Spec) (string, error) { return exp.SpecHash(s) }

// NewMemoryCache returns an empty in-process result cache.
func NewMemoryCache() *MemoryCache { return exp.NewMemoryCache() }

// NewModelStore opens (creating if needed) a trained-model artifact
// directory for WithArtifacts / ServerConfig.
func NewModelStore(dir string) (*ModelStore, error) { return eval.NewModelStore(dir) }

// NewServer builds the evaluation daemon's serving core; mount
// Server.Handler on an http.Server to expose it.
func NewServer(ctx context.Context, cfg ServerConfig) *Server { return serve.New(ctx, cfg) }

// StreamSpec POSTs a spec to a serve daemon's /run and consumes the
// NDJSON stream to its terminal result, reconnecting through transient
// drops up to the configured bound. Returns the terminal payload and
// whether it was served from the daemon's cache.
func StreamSpec(ctx context.Context, baseURL string, specJSON []byte, cfg StreamConfig) (*WireResult, bool, error) {
	return serve.StreamSpec(ctx, baseURL, specJSON, cfg)
}

// Dispatch fans a grid spec's shards over a worker fleet and recovers
// from worker failure automatically — retry with backoff and crash-exact
// checkpoint resume, straggler hedging, worker quarantine. The returned
// report is byte-identical to an unsharded run of the same spec.
func Dispatch(ctx context.Context, cfg DispatchConfig) (*DispatchReport, error) {
	return dispatch.Run(ctx, cfg)
}

// Registries: attacks, defenses and scenarios are registered by name and
// addressed from Specs — an axis is a registration, not a code change.
var (
	RegisterAttack   = exp.RegisterAttack
	RegisterDefense  = exp.RegisterDefense
	RegisterScenario = exp.RegisterScenario
	LookupAttack     = exp.LookupAttack
	LookupDefense    = exp.LookupDefense
	LookupScenario   = exp.LookupScenario
	Attacks          = exp.Attacks
	Defenses         = exp.Defenses
	ScenarioNames    = exp.Scenarios
)

// MergeSweeps joins the JSONL shard files of a distributed sweep back
// into the combined grid report, verifying coverage and per-cell
// consistency against the spec's grid identity.
func MergeSweeps(s Spec, paths []string) (MatrixReport, error) { return exp.MergeSpec(s, paths) }

// MultiObserver fans events out to every non-nil observer.
func MultiObserver(obs ...Observer) Observer { return exp.MultiObserver(obs...) }

// Attack kinds, re-exported for harness callers.
const (
	KindNone     = eval.KindNone
	KindGaussian = eval.KindGaussian
	KindFGSM     = eval.KindFGSM
	KindAPGD     = eval.KindAPGD
	KindSimBA    = eval.KindSimBA
	KindRP2      = eval.KindRP2
	KindCAP      = eval.KindCAP
)

// NewRNG returns a deterministic random source.
func NewRNG(seed int64) *RNG { return xrand.New(seed) }

// NewDetector builds an untrained TinyDet for size×size inputs.
func NewDetector(rng *RNG, size int) *Detector { return detect.New(rng, size) }

// NewRegressor builds an untrained DistNet for size×size inputs.
func NewRegressor(rng *RNG, size int) *Regressor { return regress.New(rng, size) }

// DefaultSignConfig returns the stop-sign scene generator configuration.
func DefaultSignConfig() scene.SignConfig { return scene.DefaultSignConfig() }

// DefaultDriveConfig returns the driving scene generator configuration.
func DefaultDriveConfig() scene.DriveConfig { return scene.DefaultDriveConfig() }

// GenerateSignSet renders n stop-sign scenes.
func GenerateSignSet(rng *RNG, cfg scene.SignConfig, n int) *SignSet {
	return dataset.GenerateSignSet(rng, cfg, n)
}

// GenerateDriveSet renders n driving frames with uniform distances.
func GenerateDriveSet(rng *RNG, cfg scene.DriveConfig, n int, minZ, maxZ float64) *DriveSet {
	return dataset.GenerateDriveSet(rng, cfg, n, minZ, maxZ)
}

// Quick returns the fast preset (tests/benchmarks).
func Quick() Preset { return eval.Quick() }

// Paper returns the preset used for EXPERIMENTS.md.
func Paper() Preset { return eval.Paper() }

// NewEnv generates datasets and trains the victim models.
func NewEnv(p Preset) *Env { return eval.NewEnv(p) }

// Attacks (low-level API; the Env methods cover the common protocol).
var (
	// FGSM is the single-step fast gradient sign attack.
	FGSM = attack.FGSM
	// AutoPGD is the adaptive iterative gradient attack.
	AutoPGD = attack.AutoPGD
	// SimBA is the query-based black-box attack.
	SimBA = attack.SimBA
	// RP2 is the physical sign-patch attack.
	RP2 = attack.RP2
	// GaussianNoise is the unoptimised noise attack.
	GaussianNoise = attack.Gaussian
	// BoxMask restricts a perturbation to a bounding box.
	BoxMask = attack.BoxMask
	// FGSMInto is FGSM writing into a caller-held frame (allocation-free
	// per-frame attacks; see the README's Performance section).
	FGSMInto = attack.FGSMInto
	// FGSMBatch and AutoPGDBatch run the gradient attacks over a block of
	// frames with fused forward/backward passes — bit-identical per frame
	// to the per-frame attacks (see the README's Performance section).
	FGSMBatch    = attack.FGSMBatch
	AutoPGDBatch = attack.AutoPGDBatch
)

// BatchObjective is the batched attacker's view of a victim model.
type BatchObjective = attack.BatchObjective

// NewCAP returns the stateful runtime CAP attacker.
func NewCAP(cfg attack.CAPConfig) *attack.CAP { return attack.NewCAP(cfg) }

// DefaultCAPConfig returns the CAP budget used in the experiments.
func DefaultCAPConfig() attack.CAPConfig { return attack.DefaultCAPConfig() }

// Defenses.
var (
	// NewMedianBlur is the median-filtering defense.
	NewMedianBlur = defense.NewMedianBlur
	// NewBitDepth is the bit-depth-reduction defense.
	NewBitDepth = defense.NewBitDepth
	// NewRandomization is the random resize-pad defense.
	NewRandomization = defense.NewRandomization
)

// RunPipeline executes the closed-loop ACC scenario.
func RunPipeline(cfg pipeline.Config) sim.Result { return pipeline.Run(cfg) }

// DefaultPipelineConfig returns the cruising scenario around a regressor.
func DefaultPipelineConfig(reg *Regressor) pipeline.Config {
	return pipeline.DefaultConfig(reg)
}

// Scenarios returns the registry of named closed-loop lead maneuvers, the
// scenario axis of the evaluation matrix (env.RunMatrix) and the sharded
// sweep runtime (env.RunSweep).
func Scenarios() []Scenario { return pipeline.Scenarios() }

// FindScenario returns the registered scenario with the given name.
func FindScenario(name string) (Scenario, bool) { return pipeline.FindScenario(name) }

// PaperSweepConfig returns the paper-preset sweep shard: the full grid
// with a fixed base seed and resume enabled, so shards run on different
// machines (or re-run after interrupts) assemble into one reproducible
// grid.
func PaperSweepConfig(shard, numShards int, jsonl string) SweepConfig {
	return eval.PaperSweepConfig(shard, numShards, jsonl)
}
