// Stop-sign attack sweep: trains TinyDet, then measures mAP@50, precision
// and recall under every attack of the paper's Fig. 2 (None, FGSM,
// Auto-PGD, RP2, Gaussian, SimBA) plus the image-processing defenses of
// Table II applied to the strongest attack.
package main

import (
	"fmt"
	"log"

	advp "repro"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/detect"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := advp.NewRNG(3)
	cfg := advp.DefaultSignConfig()
	signs := advp.GenerateSignSet(rng.Split(), cfg, 240)
	train, test := signs.Split(0.8)

	det := advp.NewDetector(rng.Split(), cfg.Size)
	tc := detect.DefaultTrainConfig()
	tc.Epochs = 14
	det.Train(train, tc)

	gts := make([][]advp.Box, test.Len())
	for i, sc := range test.Scenes {
		gts[i] = detect.GTBoxes(sc)
	}

	// The attack sweep of Fig. 2.
	sweeps := []struct {
		name string
		gen  func(i int) *advp.Image
	}{
		{"None", func(i int) *advp.Image { return test.Scenes[i].Img.Clone() }},
		{"FGSM", func(i int) *advp.Image {
			obj := &attack.DetectionObjective{Det: det, GT: gts[i]}
			return advp.FGSM(obj, test.Scenes[i].Img, 0.004, nil)
		}},
		{"Auto-PGD", func(i int) *advp.Image {
			obj := &attack.DetectionObjective{Det: det, GT: gts[i]}
			return advp.AutoPGD(obj, test.Scenes[i].Img, attack.DefaultAPGDConfig(0.0007), nil)
		}},
		{"RP2", func(i int) *advp.Image {
			sc := test.Scenes[i]
			if !sc.HasSign {
				return sc.Img.Clone()
			}
			obj := &attack.DetectionObjective{Det: det, GT: gts[i]}
			return advp.RP2(obj, sc.Img, sc.Box, attack.DefaultRP2Config())
		}},
		{"Gaussian", func(i int) *advp.Image {
			return advp.GaussianNoise(advp.NewRNG(int64(i)), test.Scenes[i].Img, 0.27, nil)
		}},
		{"SimBA", func(i int) *advp.Image {
			obj := &attack.DetectionObjective{Det: det, GT: gts[i]}
			c := attack.DefaultSimBAConfig()
			c.Eps, c.Steps, c.Seed = 0.12, 200, int64(i)
			return advp.SimBA(obj, test.Scenes[i].Img, c, nil)
		}},
	}

	fmt.Printf("%-10s %8s %10s %8s\n", "Attack", "mAP50", "Precision", "Recall")
	var fgsmImgs []*advp.Image
	for _, sw := range sweeps {
		imgs := make([]*advp.Image, test.Len())
		for i := range imgs {
			imgs[i] = sw.gen(i)
		}
		if sw.name == "FGSM" {
			fgsmImgs = imgs
		}
		s := det.EvaluateImages(imgs, gts, 0.5)
		fmt.Printf("%-10s %8.2f %10.2f %8.2f\n", sw.name, 100*s.MAP50, 100*s.Precision, 100*s.Recall)
	}

	// Table II-style defense pass on the FGSM outputs.
	fmt.Printf("\nFGSM + preprocessing defenses:\n")
	preps := []defense.Preprocessor{
		defense.NewMedianBlur(),
		defense.NewRandomization(5),
		defense.NewBitDepth(),
	}
	for _, p := range preps {
		cleaned := make([]*advp.Image, len(fgsmImgs))
		for i, img := range fgsmImgs {
			cleaned[i] = p.Process(img)
		}
		s := det.EvaluateImages(cleaned, gts, 0.5)
		fmt.Printf("%-18s mAP50=%.2f%% P=%.2f%% R=%.2f%%\n", p.Name(), 100*s.MAP50, 100*s.Precision, 100*s.Recall)
	}
	return nil
}
