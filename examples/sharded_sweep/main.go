// Sharded sweep: run the scenario × attack × defense grid through the
// checkpointed sweep runtime. The grid is split into shards (every n-th
// cell, seeds derived from the global cell index), each finished cell is
// streamed to a JSONL checkpoint, and a second run with -resume replays
// the checkpoint and executes only what is missing — kill the process
// halfway and run it again to watch the recovery.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	advp "repro"
)

func main() {
	duration := flag.Float64("duration", 4, "seconds simulated per cell")
	shard := flag.Int("shard", 0, "shard index")
	shards := flag.Int("shards", 2, "total shards")
	jsonl := flag.String("jsonl", "sweep_cells.jsonl", "checkpoint stream")
	flag.Parse()

	start := time.Now()
	fmt.Println("training victim models (quick preset)...")
	env := advp.NewEnv(advp.Quick())

	cfg := advp.SweepConfig{
		Matrix:    advp.MatrixConfig{Duration: *duration},
		Shard:     *shard,
		NumShards: *shards,
		JSONL:     *jsonl,
		Resume:    true,
	}
	fmt.Printf("running shard %d/%d of a %d-scenario grid (checkpoint: %s)...\n\n",
		*shard, *shards, len(advp.Scenarios()), *jsonl)
	rep, err := env.RunSweep(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(rep.Matrix().Format())
	fmt.Printf("shard %d/%d: %d cells run, %d resumed from checkpoint, grid total %d, in %v\n",
		rep.Shard, rep.NumShards, len(rep.Cells)-rep.Resumed, rep.Resumed, rep.Total,
		time.Since(start).Round(time.Second))
}
