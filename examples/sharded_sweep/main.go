// Sharded sweep, v2 API: run the scenario × attack × defense grid through
// the checkpointed sweep runtime, addressed by a Spec. The grid is split
// into shards (every n-th cell, seeds derived from the global cell index),
// each finished cell streams to a JSONL checkpoint, and an interrupted run
// — Ctrl-C cancels the context — resumes from the checkpoint. With
// -merge, shard files written by previous runs (pass them as arguments)
// are joined back into the verified full grid, the multi-machine assembly
// step; merging needs no trained models.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	advp "repro"
)

func main() {
	duration := flag.Float64("duration", 4, "seconds simulated per cell")
	shard := flag.Int("shard", 0, "shard index")
	shards := flag.Int("shards", 2, "total shards")
	jsonl := flag.String("jsonl", "sweep_cells.jsonl", "checkpoint stream")
	merge := flag.Bool("merge", false, "merge the shard files given as arguments instead of running")
	flag.Parse()

	spec := advp.Spec{
		Kind:   advp.SpecSweep,
		Preset: "quick",
		Matrix: &advp.MatrixSpec{Duration: *duration},
		Sweep: &advp.SweepSpec{
			Shard: *shard, NumShards: *shards,
			JSONL: *jsonl, Resume: true,
		},
	}

	if *merge {
		// Grid identity comes from the spec alone: merging verifies
		// coverage and per-cell seeds without training anything.
		rep, err := advp.MergeSweeps(spec, flag.Args())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep.Format())
		fmt.Printf("merged %d cells from %d shard files\n", len(rep.Cells), len(flag.Args()))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	fmt.Println("training victim models (quick preset)...")
	x, err := advp.NewExperiment(ctx, advp.WithPresetName("quick"))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running shard %d/%d of a %d-scenario grid (checkpoint: %s)...\n\n",
		*shard, *shards, len(advp.ScenarioNames()), *jsonl)
	res, err := x.Run(ctx, spec)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Printf("interrupted; finished cells are in %s — run again to resume\n", *jsonl)
			return
		}
		log.Fatal(err)
	}

	rep := res.Sweep
	fmt.Println(res.Text)
	fmt.Printf("shard %d/%d: %d cells run, %d resumed from checkpoint, grid total %d, in %v\n",
		rep.Shard, rep.NumShards, len(rep.Cells)-rep.Resumed, rep.Resumed, rep.Total,
		time.Since(start).Round(time.Second))
}
