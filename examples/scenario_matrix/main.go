// Scenario matrix: train the victim stack once, then sweep every
// registered driving scenario against the runtime attack and defense axes
// in parallel, printing the closed-loop safety grid — the system-level
// view the paper's Table I errors only hint at.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	advp "repro"
)

func main() {
	duration := flag.Float64("duration", 8, "seconds simulated per cell")
	flag.Parse()

	start := time.Now()
	fmt.Println("training victim models (quick preset)...")
	env := advp.NewEnv(advp.Quick())

	fmt.Printf("running %d scenarios x 3 attacks x 3 defenses...\n\n", len(advp.Scenarios()))
	rep := env.RunMatrix(advp.MatrixConfig{Duration: *duration})
	if len(rep.Cells) == 0 {
		log.Fatal("matrix produced no cells")
	}

	fmt.Println(rep.Format())
	fmt.Printf("%d cells in %v\n", len(rep.Cells), time.Since(start).Round(time.Second))
}
