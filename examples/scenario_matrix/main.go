// Scenario matrix, v2 API: build the Experiment core once, then address
// the closed-loop safety grid with a serializable Spec — every registered
// driving scenario against the runtime attack and defense axes, streamed
// through a progress Observer. The -apgd flag widens the attack axis with
// the registry's closed-loop Auto-PGD column: an axis is a spec entry,
// not a code change.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	advp "repro"
)

func main() {
	duration := flag.Float64("duration", 8, "seconds simulated per cell")
	apgd := flag.Bool("apgd", false, "add the closed-loop Auto-PGD attack column")
	flag.Parse()

	ctx := context.Background()
	start := time.Now()
	fmt.Println("training victim models (quick preset)...")
	x, err := advp.NewExperiment(ctx,
		advp.WithPresetName("quick"),
		advp.WithObserver(&advp.ProgressPrinter{W: os.Stdout}))
	if err != nil {
		log.Fatal(err)
	}

	spec := advp.Spec{
		Kind:   advp.SpecMatrix,
		Matrix: &advp.MatrixSpec{Duration: *duration},
	}
	if *apgd {
		spec.Matrix.Attacks = []string{"None", "CAP-Attack", "FGSM", "Auto-PGD"}
	}

	fmt.Printf("running %d scenarios x attacks x defenses...\n\n", len(advp.ScenarioNames()))
	res, err := x.Run(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Text)
	fmt.Printf("%d cells in %v\n", len(res.Matrix.Cells), time.Since(start).Round(time.Second))
}
