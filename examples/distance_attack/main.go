// Distance attack in the control loop: trains DistNet, then runs the
// closed-loop ACC scenario (lead vehicle brakes mid-run) clean, under the
// runtime CAP-Attack, and under CAP-Attack with a median-blur defense —
// showing how the Table I distance errors translate into a collision.
package main

import (
	"fmt"
	"log"

	advp "repro"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/regress"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := advp.NewRNG(9)
	cfg := advp.DefaultDriveConfig()
	drives := advp.GenerateDriveSet(rng.Split(), cfg, 400, cfg.MinZ, cfg.MaxZ)

	reg := advp.NewRegressor(rng.Split(), cfg.Size)
	rc := regress.DefaultTrainConfig()
	rc.Epochs = 16
	reg.Train(drives, rc)
	fmt.Printf("regressor trained, RMSE=%.2f m over training distribution\n", reg.RMSE(drives))

	scenario := func(name string, attacked bool, defended bool) {
		pc := advp.DefaultPipelineConfig(reg)
		pc.Drive = cfg
		if attacked {
			capAtt := advp.NewCAP(advp.DefaultCAPConfig())
			obj := &attack.RegressionObjective{Reg: reg.Clone()}
			pc.Attacker = attackerFunc(func(img *advp.Image, leadBox advp.Box) *advp.Image {
				return capAtt.Apply(obj, img, leadBox)
			})
		}
		if defended {
			pc.Defense = defense.NewMedianBlur()
		}
		res := advp.RunPipeline(pc)
		fmt.Printf("%-26s min gap %6.2f m   min TTC %6.2fs   collision=%v\n",
			name, res.MinGap, capTTC(res.MinTTC), res.Collision)
	}

	fmt.Println("\nclosed-loop ACC, lead brakes at t=4s for 2s:")
	scenario("clean", false, false)
	scenario("CAP-Attack", true, false)
	scenario("CAP-Attack + MedianBlur", true, true)
	return nil
}

func capTTC(v float64) float64 {
	if v > 999 {
		return 999
	}
	return v
}

// attackerFunc adapts a closure to the pipeline Attacker interface via the
// facade's re-exported types.
type attackerFunc func(img *advp.Image, leadBox advp.Box) *advp.Image

func (f attackerFunc) Apply(img *advp.Image, leadBox advp.Box) *advp.Image {
	return f(img, leadBox)
}
