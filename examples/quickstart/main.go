// Quickstart: train the two victim perception models on synthetic data,
// attack each with FGSM, and print the damage — the library's two core
// loops (detection and distance regression) in ~60 lines.
package main

import (
	"fmt"
	"log"

	advp "repro"

	"repro/internal/attack"
	"repro/internal/detect"
	"repro/internal/regress"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := advp.NewRNG(1)

	// --- Task 1: stop-sign detection (TinyDet, the YOLOv8 stand-in). ---
	signCfg := advp.DefaultSignConfig()
	signs := advp.GenerateSignSet(rng.Split(), signCfg, 200)
	trainSigns, testSigns := signs.Split(0.8)

	det := advp.NewDetector(rng.Split(), signCfg.Size)
	dcfg := detect.DefaultTrainConfig()
	dcfg.Epochs = 12
	det.Train(trainSigns, dcfg)

	clean := det.Evaluate(testSigns, 0.5)
	fmt.Printf("detector  clean: mAP50=%.1f%% precision=%.1f%% recall=%.1f%%\n",
		100*clean.MAP50, 100*clean.Precision, 100*clean.Recall)

	// FGSM each test image against its ground truth.
	attacked := make([]*advp.Image, testSigns.Len())
	gts := make([][]advp.Box, testSigns.Len())
	for i, sc := range testSigns.Scenes {
		gts[i] = detect.GTBoxes(sc)
		obj := &attack.DetectionObjective{Det: det, GT: gts[i]}
		attacked[i] = advp.FGSM(obj, sc.Img, 0.01, nil)
	}
	adv := det.EvaluateImages(attacked, gts, 0.5)
	fmt.Printf("detector   FGSM: mAP50=%.1f%% precision=%.1f%% recall=%.1f%%\n",
		100*adv.MAP50, 100*adv.Precision, 100*adv.Recall)

	// --- Task 2: lead-distance regression (DistNet, the Supercombo stand-in). ---
	driveCfg := advp.DefaultDriveConfig()
	drives := advp.GenerateDriveSet(rng.Split(), driveCfg, 300, driveCfg.MinZ, driveCfg.MaxZ)
	trainDrives, testDrives := drives.Split(0.8)

	reg := advp.NewRegressor(rng.Split(), driveCfg.Size)
	rcfg := regress.DefaultTrainConfig()
	rcfg.Epochs = 12
	reg.Train(trainDrives, rcfg)
	fmt.Printf("regressor clean: RMSE=%.2f m\n", reg.RMSE(testDrives))

	// Attack one near frame: the classic "lead looks farther than it is".
	sc := testDrives.Scenes[0]
	obj := &attack.RegressionObjective{Reg: reg}
	mask := advp.BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
	advImg := advp.AutoPGD(obj, sc.Img, attack.DefaultAPGDConfig(0.03), mask)
	fmt.Printf("regressor attack demo: true=%.1f m, clean pred=%.1f m, attacked pred=%.1f m\n",
		sc.Distance, reg.Predict(sc.Img), reg.Predict(advImg))
	return nil
}
