// Defense pipeline: compares all four defense families on one batch of
// Auto-PGD-attacked driving frames — classical preprocessing, adversarial
// training, and diffusion restoration — reporting induced distance error
// and wall-clock cost per frame, mirroring the paper's §VI discussion of
// accuracy/latency trade-offs.
package main

import (
	"fmt"
	"log"
	"time"

	advp "repro"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/imaging"
	"repro/internal/regress"
	"repro/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := advp.NewRNG(17)
	cfg := advp.DefaultDriveConfig()
	trainSet := advp.GenerateDriveSet(rng.Split(), cfg, 300, cfg.MinZ, cfg.MaxZ)
	testSet := advp.GenerateDriveSet(rng.Split(), cfg, 40, 5, 25) // near range, where attacks bite

	reg := advp.NewRegressor(rng.Split(), cfg.Size)
	rc := regress.DefaultTrainConfig()
	rc.Epochs = 12
	reg.Train(trainSet, rc)

	// Attack the test batch (Auto-PGD confined to the lead box).
	obj := &attack.RegressionObjective{Reg: reg}
	attacked := make([]*advp.Image, testSet.Len())
	for i, sc := range testSet.Scenes {
		mask := advp.BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
		attacked[i] = advp.AutoPGD(obj, sc.Img, attack.DefaultAPGDConfig(0.03), mask)
	}
	meanErr := func(r *advp.Regressor, imgs []*advp.Image, prep defense.Preprocessor) (float64, time.Duration) {
		var total float64
		var prepTime time.Duration
		for i, sc := range testSet.Scenes {
			img := imgs[i]
			if prep != nil {
				t0 := time.Now()
				img = prep.Process(img)
				prepTime += time.Since(t0)
			}
			total += r.Predict(img) - r.Predict(sc.Img)
		}
		return total / float64(len(imgs)), prepTime / time.Duration(len(imgs))
	}

	base, _ := meanErr(reg, attacked, nil)
	fmt.Printf("%-22s induced error %7.2f m\n", "no defense", base)

	// 1) Classical preprocessing.
	for _, p := range []defense.Preprocessor{
		defense.NewMedianBlur(),
		defense.NewRandomization(11),
		defense.NewBitDepth(),
	} {
		e, dt := meanErr(reg, attacked, p)
		fmt.Printf("%-22s induced error %7.2f m   (%v/frame)\n", p.Name(), e, dt.Round(time.Microsecond))
	}

	// 2) Adversarial training: fine-tune on attacked training frames.
	advImgs, dists := defense.AdvDriveSet(trainSet, func(i int, img *advp.Image) *advp.Image {
		sc := trainSet.Scenes[i]
		mask := advp.BoxMask(img.C, img.H, img.W, sc.LeadBox, 1)
		return advp.AutoPGD(obj, img, attack.DefaultAPGDConfig(0.03), mask)
	})
	ac := regress.DefaultTrainConfig()
	ac.Epochs, ac.LR = 6, 1e-3
	hardened := defense.AdvTrainRegressor(reg, advImgs, dists, ac)
	// Re-attack against the hardened model (adaptive evaluation).
	hobj := &attack.RegressionObjective{Reg: hardened}
	reAttacked := make([]*advp.Image, testSet.Len())
	for i, sc := range testSet.Scenes {
		mask := advp.BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
		reAttacked[i] = advp.AutoPGD(hobj, sc.Img, attack.DefaultAPGDConfig(0.03), mask)
	}
	e, _ := meanErr(hardened, reAttacked, nil)
	fmt.Printf("%-22s induced error %7.2f m   (adaptive re-attack)\n", "adversarial training", e)

	// 3) Diffusion restoration (DiffPIR) with a small prior.
	dcfg := defense.DefaultDiffusionConfig()
	dcfg.TrainSteps = 150
	diff := defense.NewDiffusion(xrand.New(23), dcfg)
	pick := xrand.New(29)
	diff.Train(dcfg, func() *imaging.Image {
		return trainSet.Scenes[pick.Intn(trainSet.Len())].Img
	})
	dp := &defense.DiffPIRDefense{Model: diff, Cfg: defense.DefaultDiffPIRConfig()}
	e, dt := meanErr(reg, attacked, dp)
	fmt.Printf("%-22s induced error %7.2f m   (%v/frame)\n", dp.Name(), e, dt.Round(time.Millisecond))

	return nil
}
