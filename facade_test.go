package advperception

// Integration tests of the public facade: the end-to-end flows a library
// user exercises, at miniature scale.

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/detect"
	"repro/internal/regress"
)

func TestFacadeDetectionFlow(t *testing.T) {
	rng := NewRNG(1)
	cfg := DefaultSignConfig()
	set := GenerateSignSet(rng.Split(), cfg, 80)
	train, test := set.Split(0.8)

	det := NewDetector(rng.Split(), cfg.Size)
	tc := detect.DefaultTrainConfig()
	tc.Epochs = 8
	det.Train(train, tc)

	clean := det.Evaluate(test, 0.5)
	if clean.MAP50 <= 0 {
		t.Fatalf("clean mAP %v", clean.MAP50)
	}

	// Attack every test image; metrics must degrade or stay equal.
	imgs := make([]*Image, test.Len())
	gts := make([][]Box, test.Len())
	for i, sc := range test.Scenes {
		gts[i] = detect.GTBoxes(sc)
		obj := &attack.DetectionObjective{Det: det, GT: gts[i]}
		imgs[i] = FGSM(obj, sc.Img, 0.02, nil)
	}
	adv := det.EvaluateImages(imgs, gts, 0.5)
	if adv.MAP50 > clean.MAP50 {
		t.Fatalf("FGSM improved detection: %.3f -> %.3f", clean.MAP50, adv.MAP50)
	}
}

func TestFacadeRegressionFlow(t *testing.T) {
	rng := NewRNG(2)
	cfg := DefaultDriveConfig()
	set := GenerateDriveSet(rng.Split(), cfg, 120, cfg.MinZ, cfg.MaxZ)
	train, test := set.Split(0.8)

	reg := NewRegressor(rng.Split(), cfg.Size)
	rc := regress.DefaultTrainConfig()
	rc.Epochs = 8
	reg.Train(train, rc)

	sc := test.Scenes[0]
	obj := &attack.RegressionObjective{Reg: reg}
	mask := BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
	adv := AutoPGD(obj, sc.Img, attack.DefaultAPGDConfig(0.04), mask)
	if reg.Predict(adv) <= reg.Predict(sc.Img) {
		t.Fatal("Auto-PGD failed to inflate the predicted distance")
	}
}

func TestFacadeDefenses(t *testing.T) {
	img := &Image{}
	*img = *benchImage()
	for _, p := range []Preprocessor{NewMedianBlur(), NewBitDepth(), NewRandomization(1)} {
		out := p.Process(img)
		if out.H != img.H || out.W != img.W {
			t.Fatalf("%s changed shape", p.Name())
		}
	}
}

func benchImage() *Image {
	rng := NewRNG(3)
	cfg := DefaultDriveConfig()
	return GenerateDriveSet(rng, cfg, 1, 10, 20).Scenes[0].Img
}

func TestFacadePipeline(t *testing.T) {
	rng := NewRNG(4)
	cfg := DefaultDriveConfig()
	set := GenerateDriveSet(rng.Split(), cfg, 80, cfg.MinZ, cfg.MaxZ)
	reg := NewRegressor(rng.Split(), cfg.Size)
	rc := regress.DefaultTrainConfig()
	rc.Epochs = 6
	reg.Train(set, rc)

	pc := DefaultPipelineConfig(reg)
	pc.Duration = 4 // keep the test short
	res := RunPipeline(pc)
	if len(res.Times) == 0 {
		t.Fatal("pipeline produced no telemetry")
	}
}

func TestFacadeCAP(t *testing.T) {
	rng := NewRNG(5)
	cfg := DefaultDriveConfig()
	set := GenerateDriveSet(rng.Split(), cfg, 60, 8, 40)
	reg := NewRegressor(rng.Split(), cfg.Size)
	rc := regress.DefaultTrainConfig()
	rc.Epochs = 6
	reg.Train(set, rc)

	c := NewCAP(DefaultCAPConfig())
	obj := &attack.RegressionObjective{Reg: reg}
	var total float64
	for _, sc := range set.Scenes[:5] {
		adv := c.Apply(obj, sc.Img, sc.LeadBox)
		total += reg.Predict(adv) - reg.Predict(sc.Img)
	}
	if total <= 0 {
		t.Fatalf("CAP failed to inflate distance predictions, total shift %v", total)
	}
}

func TestPresetsExposed(t *testing.T) {
	if Quick().Name != "quick" || Paper().Name != "paper" {
		t.Fatal("preset facade broken")
	}
}
