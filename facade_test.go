package advperception

// Integration tests of the public facade: the end-to-end flows a library
// user exercises, at miniature scale.

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/attack"
	"repro/internal/detect"
	"repro/internal/regress"
)

func TestFacadeDetectionFlow(t *testing.T) {
	rng := NewRNG(1)
	cfg := DefaultSignConfig()
	set := GenerateSignSet(rng.Split(), cfg, 80)
	train, test := set.Split(0.8)

	det := NewDetector(rng.Split(), cfg.Size)
	tc := detect.DefaultTrainConfig()
	tc.Epochs = 8
	det.Train(train, tc)

	clean := det.Evaluate(test, 0.5)
	if clean.MAP50 <= 0 {
		t.Fatalf("clean mAP %v", clean.MAP50)
	}

	// Attack every test image; metrics must degrade or stay equal.
	imgs := make([]*Image, test.Len())
	gts := make([][]Box, test.Len())
	for i, sc := range test.Scenes {
		gts[i] = detect.GTBoxes(sc)
		obj := &attack.DetectionObjective{Det: det, GT: gts[i]}
		imgs[i] = FGSM(obj, sc.Img, 0.02, nil)
	}
	adv := det.EvaluateImages(imgs, gts, 0.5)
	if adv.MAP50 > clean.MAP50 {
		t.Fatalf("FGSM improved detection: %.3f -> %.3f", clean.MAP50, adv.MAP50)
	}
}

func TestFacadeRegressionFlow(t *testing.T) {
	rng := NewRNG(2)
	cfg := DefaultDriveConfig()
	set := GenerateDriveSet(rng.Split(), cfg, 120, cfg.MinZ, cfg.MaxZ)
	train, test := set.Split(0.8)

	reg := NewRegressor(rng.Split(), cfg.Size)
	rc := regress.DefaultTrainConfig()
	rc.Epochs = 8
	reg.Train(train, rc)

	sc := test.Scenes[0]
	obj := &attack.RegressionObjective{Reg: reg}
	mask := BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
	adv := AutoPGD(obj, sc.Img, attack.DefaultAPGDConfig(0.04), mask)
	if reg.Predict(adv) <= reg.Predict(sc.Img) {
		t.Fatal("Auto-PGD failed to inflate the predicted distance")
	}
}

func TestFacadeDefenses(t *testing.T) {
	img := &Image{}
	*img = *benchImage()
	for _, p := range []Preprocessor{NewMedianBlur(), NewBitDepth(), NewRandomization(1)} {
		out := p.Process(img)
		if out.H != img.H || out.W != img.W {
			t.Fatalf("%s changed shape", p.Name())
		}
	}
}

func benchImage() *Image {
	rng := NewRNG(3)
	cfg := DefaultDriveConfig()
	return GenerateDriveSet(rng, cfg, 1, 10, 20).Scenes[0].Img
}

func TestFacadePipeline(t *testing.T) {
	rng := NewRNG(4)
	cfg := DefaultDriveConfig()
	set := GenerateDriveSet(rng.Split(), cfg, 80, cfg.MinZ, cfg.MaxZ)
	reg := NewRegressor(rng.Split(), cfg.Size)
	rc := regress.DefaultTrainConfig()
	rc.Epochs = 6
	reg.Train(set, rc)

	pc := DefaultPipelineConfig(reg)
	pc.Duration = 4 // keep the test short
	res := RunPipeline(pc)
	if len(res.Times) == 0 {
		t.Fatal("pipeline produced no telemetry")
	}
}

func TestFacadeCAP(t *testing.T) {
	rng := NewRNG(5)
	cfg := DefaultDriveConfig()
	set := GenerateDriveSet(rng.Split(), cfg, 60, 8, 40)
	reg := NewRegressor(rng.Split(), cfg.Size)
	rc := regress.DefaultTrainConfig()
	rc.Epochs = 6
	reg.Train(set, rc)

	c := NewCAP(DefaultCAPConfig())
	obj := &attack.RegressionObjective{Reg: reg}
	var total float64
	for _, sc := range set.Scenes[:5] {
		adv := c.Apply(obj, sc.Img, sc.LeadBox)
		total += reg.Predict(adv) - reg.Predict(sc.Img)
	}
	if total <= 0 {
		t.Fatalf("CAP failed to inflate distance predictions, total shift %v", total)
	}
}

func TestPresetsExposed(t *testing.T) {
	if Quick().Name != "quick" || Paper().Name != "paper" {
		t.Fatal("preset facade broken")
	}
}

// TestFacadeExperimentV2 exercises the v2 surface end to end through the
// facade: functional options, a spec run, the registries and spec JSON.
func TestFacadeExperimentV2(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a micro environment; the non-short job covers it")
	}
	ctx := context.Background()
	micro := Preset{
		Name:      "facade-micro",
		SignTrain: 30, SignTest: 8,
		DriveTrain: 40, DrivePerBucket: 2,
		DetEpochs: 3, RegEpochs: 3,
		AdvEpochs: 1, ContrastiveEpochs: 1,
		DiffusionSteps: 8, DiffPIRSteps: 2,
		APGDSteps: 3, SimBASteps: 10, RP2Iters: 3,
		Seed: 11,
	}
	var logged bool
	x, err := NewExperiment(ctx,
		WithPreset(micro),
		WithWorkers(2),
		WithLogger(func(format string, args ...any) { logged = true }))
	if err != nil {
		t.Fatal(err)
	}
	if !logged {
		t.Fatal("WithLogger must receive training progress")
	}

	spec := Spec{
		Kind: SpecMatrix,
		Matrix: &MatrixSpec{
			Scenarios: []string{"gentle-brake"},
			Attacks:   []string{"None", "FGSM"},
			Defenses:  []string{"None"},
			Duration:  0.5, DT: 0.1, BaseSeed: 3,
		},
	}
	buf, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpec(buf)
	if err != nil {
		t.Fatal(err)
	}
	var cells atomic.Int32
	y, err := NewExperiment(ctx, WithEnv(x.Env()), WithObserver(ObserverFunc(func(ev Event) {
		if ev.Kind == EventCellDone {
			cells.Add(1)
		}
	})))
	if err != nil {
		t.Fatal(err)
	}
	res, err := y.Run(ctx, parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matrix.Cells) != 2 || cells.Load() != 2 {
		t.Fatalf("spec run produced %d cells, observer saw %d, want 2/2", len(res.Matrix.Cells), cells.Load())
	}

	if len(Attacks()) < 7 || len(Defenses()) < 5 || len(ScenarioNames()) < 8 {
		t.Fatalf("registries too small: %d attacks, %d defenses, %d scenarios",
			len(Attacks()), len(Defenses()), len(ScenarioNames()))
	}
	if _, ok := LookupAttack("Auto-PGD"); !ok {
		t.Fatal("Auto-PGD missing from the attack registry")
	}
}
