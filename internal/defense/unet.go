package defense

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// UNet is the small encoder-decoder noise-prediction network behind the
// diffusion defense. It has two skip connections (channel concatenation),
// which the generic Sequential container cannot express, so forward and
// backward are managed explicitly here.
//
// Topology for a (3+2)×S×S input (image + 2 timestep-embedding channels):
//
//	e1 = enc1(x)        10×S×S
//	e2 = enc2(e1)       16×S/2×S/2
//	e3 = enc3(e2)       24×S/4×S/4
//	m  = mid(e3)        24×S/4×S/4
//	d2 = dec2(up(m) ⊕ e2)  16×S/2×S/2
//	d1 = dec1(up(d2) ⊕ e1) 10×S×S
//	ε̂ = out(d1)         3×S×S
type UNet struct {
	enc1, enc2, enc3, mid *nn.Sequential
	up1, up2              *nn.Upsample2x
	dec2, dec1            *nn.Sequential
	out                   *nn.Sequential

	// forward caches
	e1, e2 *tensor.Tensor

	// reusable skip-concat buffers (sized lazily; a Clone gets fresh ones)
	cat2buf, cat1buf *tensor.Tensor

	params []*nn.Param // lazy cache for the per-step grad reset
}

// Channel widths of the UNet stages.
const (
	unetC1 = 10
	unetC2 = 16
	unetC3 = 24
)

// NewUNet builds the noise-prediction network for inC-channel inputs
// (image channels + timestep embedding channels).
func NewUNet(rng *xrand.RNG, inC int) *UNet {
	return &UNet{
		enc1: nn.NewSequential(
			nn.NewConv2D(rng, inC, unetC1, 3, 1, 1),
			nn.NewLeakyReLU(0.1),
		),
		enc2: nn.NewSequential(
			nn.NewConv2D(rng, unetC1, unetC2, 3, 2, 1),
			nn.NewLeakyReLU(0.1),
		),
		enc3: nn.NewSequential(
			nn.NewConv2D(rng, unetC2, unetC3, 3, 2, 1),
			nn.NewLeakyReLU(0.1),
		),
		mid: nn.NewSequential(
			nn.NewConv2D(rng, unetC3, unetC3, 3, 1, 1),
			nn.NewLeakyReLU(0.1),
		),
		up2: nn.NewUpsample2x(),
		dec2: nn.NewSequential(
			nn.NewConv2D(rng, unetC3+unetC2, unetC2, 3, 1, 1),
			nn.NewLeakyReLU(0.1),
		),
		up1: nn.NewUpsample2x(),
		dec1: nn.NewSequential(
			nn.NewConv2D(rng, unetC2+unetC1, unetC1, 3, 1, 1),
			nn.NewLeakyReLU(0.1),
		),
		out: nn.NewSequential(
			nn.NewConv2D(rng, unetC1, 3, 1, 1, 0),
		),
	}
}

// Params returns all trainable parameters. The slice is cached so the
// per-step ZeroGrad doesn't rebuild it.
func (u *UNet) Params() []*nn.Param {
	if u.params == nil {
		for _, s := range []*nn.Sequential{u.enc1, u.enc2, u.enc3, u.mid, u.dec2, u.dec1, u.out} {
			u.params = append(u.params, s.Params()...)
		}
	}
	return u.params
}

// ZeroGrad clears all parameter gradients.
func (u *UNet) ZeroGrad() {
	for _, p := range u.Params() {
		p.Grad.Zero()
	}
}

// Forward predicts the noise component of a noisy image stack.
func (u *UNet) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	u.e1 = u.enc1.Forward(x, train)
	u.e2 = u.enc2.Forward(u.e1, train)
	e3 := u.enc3.Forward(u.e2, train)
	m := u.mid.Forward(e3, train)
	d2 := u.dec2.Forward(concatCInto(&u.cat2buf, u.up2.Forward(m, train), u.e2), train)
	d1 := u.dec1.Forward(concatCInto(&u.cat1buf, u.up1.Forward(d2, train), u.e1), train)
	return u.out.Forward(d1, train)
}

// Backward propagates the output gradient, accumulating parameter
// gradients. The input gradient is not needed by the diffusion trainer and
// is discarded.
func (u *UNet) Backward(grad *tensor.Tensor) {
	gd1 := u.out.Backward(grad)
	gcat1 := u.dec1.Backward(gd1)
	gup1, ge1skip := splitC(gcat1, unetC2, unetC1)
	gd2 := u.up1.Backward(gup1)
	gcat2 := u.dec2.Backward(gd2)
	gup2, ge2skip := splitC(gcat2, unetC3, unetC2)
	gm := u.up2.Backward(gup2)
	ge3 := u.mid.Backward(gm)
	ge2 := u.enc3.Backward(ge3)
	ge2.AddInPlace(ge2skip) // two consumers of e2: enc3 and the skip
	ge1 := u.enc2.Backward(ge2)
	ge1.AddInPlace(ge1skip) // two consumers of e1: enc2 and the skip
	u.enc1.Backward(ge1)
}

// Clone returns an independent deep copy.
func (u *UNet) Clone() *UNet {
	return &UNet{
		enc1: u.enc1.Clone(), enc2: u.enc2.Clone(), enc3: u.enc3.Clone(),
		mid: u.mid.Clone(), dec2: u.dec2.Clone(), dec1: u.dec1.Clone(),
		out: u.out.Clone(), up1: nn.NewUpsample2x(), up2: nn.NewUpsample2x(),
	}
}

// concatCInto concatenates two CHW tensors along the channel axis into a
// caller-held buffer, (re)allocated only when the shape changes, so
// steady-state UNet forwards don't allocate for the skip connections.
func concatCInto(buf **tensor.Tensor, a, b *tensor.Tensor) *tensor.Tensor {
	if a.Dim(1) != b.Dim(1) || a.Dim(2) != b.Dim(2) {
		panic(fmt.Sprintf("defense: concat spatial mismatch %v vs %v", a.Shape(), b.Shape()))
	}
	ca, cb := a.Dim(0), b.Dim(0)
	h, w := a.Dim(1), a.Dim(2)
	if *buf == nil || !(*buf).ShapeEq(ca+cb, h, w) {
		*buf = tensor.New(ca+cb, h, w)
	}
	out := *buf
	copy(out.Data()[:ca*h*w], a.Data())
	copy(out.Data()[ca*h*w:], b.Data())
	return out
}

// splitC splits a gradient of a channel concatenation back into the two
// operands' gradients.
func splitC(g *tensor.Tensor, ca, cb int) (*tensor.Tensor, *tensor.Tensor) {
	h, w := g.Dim(1), g.Dim(2)
	ga := tensor.New(ca, h, w)
	gb := tensor.New(cb, h, w)
	copy(ga.Data(), g.Data()[:ca*h*w])
	copy(gb.Data(), g.Data()[ca*h*w:])
	return ga, gb
}
