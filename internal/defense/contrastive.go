package defense

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/imaging"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// ContrastiveConfig parameterises the contrastive fine-tuning defense
// (SimCLR-style NT-Xent with a positive margin, as §IV-D describes).
type ContrastiveConfig struct {
	Epochs     int     // contrastive pre-training epochs over the set
	Batch      int     // scenes per batch (2 views each)
	LR         float32 // Adam learning rate for backbone + projection head
	Tau        float64 // softmax temperature
	Margin     float64 // positive-pair margin
	EmbedDim   int     // projection output dimension
	HeadEpochs int     // detection-head refit epochs on clean data
	HeadLR     float32
	Seed       int64
}

// DefaultContrastiveConfig returns the settings used in the experiments.
func DefaultContrastiveConfig() ContrastiveConfig {
	return ContrastiveConfig{
		Epochs: 6, Batch: 8, LR: 3e-4,
		Tau: 0.2, Margin: 0.05, EmbedDim: 32,
		HeadEpochs: 8, HeadLR: 1e-3, Seed: 21,
	}
}

// ContrastiveFineTune returns a copy of the base detector whose backbone
// has been fine-tuned with the InfoNCE objective (two augmented views per
// scene, in-batch negatives) and whose detection head has then been refit
// on clean data. The base detector is not modified.
func ContrastiveFineTune(base *detect.Detector, set *dataset.SignSet, cfg ContrastiveConfig) *detect.Detector {
	out := base.Clone()
	rng := xrand.New(cfg.Seed)

	// The contrastive phase trains the backbone (all layers but the
	// prediction head) through a projection head.
	layers := out.Net.Layers()
	backbone := nn.NewSequential(layers[:len(layers)-1]...)

	// Projection head g(·): backbone features → normalised embedding.
	g := out.Grid
	featDim := 48 * g * g
	proj := nn.NewSequential(
		nn.NewFlatten(),
		nn.NewLinear(rng.Split(), featDim, 64),
		nn.NewLeakyReLU(0.1),
		nn.NewLinear(rng.Split(), 64, cfg.EmbedDim),
	)

	params := append(backbone.Params(), proj.Params()...)
	opt := nn.NewAdam(cfg.LR)

	idx := make([]int, set.Len())
	for i := range idx {
		idx[i] = i
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, batch := range dataset.Batches(len(idx), cfg.Batch) {
			// Two augmented views per scene.
			views := make([]*imaging.Image, 0, 2*len(batch))
			for _, bi := range batch {
				img := set.Scenes[idx[bi]].Img
				views = append(views, augmentView(rng, img), augmentView(rng, img))
			}

			// Pass 1: embeddings (forward only).
			raw := make([]*tensor.Tensor, len(views))
			unit := make([][]float64, len(views))
			norms := make([]float64, len(views))
			for i, v := range views {
				z := proj.Forward(backbone.Forward(v.Tensor(), true), true)
				raw[i] = z.Clone()
				u, n := normalise(z)
				unit[i] = u
				norms[i] = n
			}

			// NT-Xent gradients w.r.t. the unit embeddings.
			gradU := ntXentGrad(unit, cfg.Tau, cfg.Margin)

			// Pass 2: backprop each view with its embedding gradient.
			backbone.ZeroGrad()
			proj.ZeroGrad()
			for i, v := range views {
				gz := normBackward(raw[i], unit[i], norms[i], gradU[i])
				feat := backbone.Forward(v.Tensor(), true)
				proj.Forward(feat, true) // restore proj caches
				gFeat := proj.Backward(gz)
				backbone.Backward(gFeat)
			}
			scale := 1 / float32(len(views))
			for _, p := range params {
				p.Grad.ScaleInPlace(scale)
			}
			nn.ClipGradNorm(params, 10)
			opt.Step(params)
		}
	}

	// Detection refit on clean data: the contrastive pre-training moved
	// the backbone, so the whole network is fine-tuned at a low rate to
	// restore detection calibration while keeping the contrastive-shaped
	// features (freezing the backbone here loses too much accuracy).
	headOpt := nn.NewAdam(cfg.HeadLR)
	allParams := out.Net.Params()
	for epoch := 0; epoch < cfg.HeadEpochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, batch := range dataset.Batches(len(idx), cfg.Batch) {
			out.Net.ZeroGrad()
			for _, bi := range batch {
				sc := set.Scenes[idx[bi]]
				rawOut := out.Net.Forward(sc.Img.Tensor(), true)
				_, grad := out.LossGrad(rawOut, detect.GTBoxes(sc))
				out.Net.Backward(grad)
			}
			for _, p := range allParams {
				p.Grad.ScaleInPlace(1 / float32(len(batch)))
			}
			nn.ClipGradNorm(allParams, 10)
			headOpt.Step(allParams)
		}
	}
	return out
}

// augmentView produces one stochastic view: brightness jitter, small
// translation, random resize-pad and sensor noise.
func augmentView(rng *xrand.RNG, img *imaging.Image) *imaging.Image {
	v := img.AdjustBrightness(float32(rng.Uniform(0.7, 1.3)))
	v = v.Translate(rng.Intn(7)-3, rng.Intn(7)-3)
	if rng.Bool(0.5) {
		v = imaging.RandomResizePad(rng, v, 0.85, 0)
	}
	v = v.AddGaussianNoise(rng, 0.02)
	return v.Clamp()
}

// normalise returns the unit vector and norm of an embedding tensor.
func normalise(z *tensor.Tensor) ([]float64, float64) {
	d := z.Data()
	var sq float64
	for _, v := range d {
		sq += float64(v) * float64(v)
	}
	n := math.Sqrt(sq) + 1e-12
	u := make([]float64, len(d))
	for i, v := range d {
		u[i] = float64(v) / n
	}
	return u, n
}

// normBackward maps a gradient w.r.t. the unit embedding back to the raw
// embedding: dL/dz = (g − u·(u·g)) / ‖z‖.
func normBackward(raw *tensor.Tensor, u []float64, norm float64, g []float64) *tensor.Tensor {
	var dot float64
	for i := range u {
		dot += u[i] * g[i]
	}
	out := tensor.New(raw.Shape()...)
	od := out.Data()
	for i := range u {
		od[i] = float32((g[i] - u[i]*dot) / norm)
	}
	return out
}

// ntXentGrad computes the gradients of the margin NT-Xent loss w.r.t. each
// unit embedding. Views 2i and 2i+1 are positives of each other; all other
// in-batch views are negatives.
func ntXentGrad(u [][]float64, tau, margin float64) [][]float64 {
	n := len(u)
	dim := len(u[0])
	grads := make([][]float64, n)
	for i := range grads {
		grads[i] = make([]float64, dim)
	}

	sim := func(a, b int) float64 {
		var s float64
		for k := 0; k < dim; k++ {
			s += u[a][k] * u[b][k]
		}
		return s
	}

	for a := 0; a < n; a++ {
		pos := a ^ 1 // paired view index
		// Stable softmax over all b != a with the margin applied to the positive.
		logits := make([]float64, 0, n-1)
		ids := make([]int, 0, n-1)
		maxL := math.Inf(-1)
		for b := 0; b < n; b++ {
			if b == a {
				continue
			}
			s := sim(a, b)
			if b == pos {
				s -= margin
			}
			l := s / tau
			logits = append(logits, l)
			ids = append(ids, b)
			if l > maxL {
				maxL = l
			}
		}
		var zSum float64
		for i := range logits {
			logits[i] = math.Exp(logits[i] - maxL)
			zSum += logits[i]
		}
		// dL_a/ds_ab = (p_b − 1[b=pos]) / tau; accumulate into u_a and u_b.
		inv := 1 / (tau * float64(n)) // mean over anchors
		for i, b := range ids {
			c := (logits[i]/zSum - b2f(b == pos)) * inv
			for k := 0; k < dim; k++ {
				grads[a][k] += c * u[b][k]
				grads[b][k] += c * u[a][k]
			}
		}
	}
	return grads
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
