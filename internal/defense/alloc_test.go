package defense

import (
	"testing"

	"repro/internal/testenv"

	"repro/internal/imaging"
	"repro/internal/xrand"
)

// TestMedianBlurProcessIntoAllocs guards the §VI per-frame defense budget:
// median filtering into a caller-held frame must not allocate, so the
// latency benches measure filtering rather than the allocator.
func TestMedianBlurProcessIntoAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	d := NewMedianBlur()
	img := imaging.NewImage(3, 32, 32)
	for i := range img.Pix {
		img.Pix[i] = float32(i%23) * 0.04
	}
	dst := imaging.NewImage(3, 32, 32)
	if avg := testing.AllocsPerRun(20, func() { d.ProcessInto(dst, img) }); avg != 0 {
		t.Fatalf("MedianBlur.ProcessInto allocates %.2f/op, want 0", avg)
	}
}

// tinyDiffusion builds a small untrained prior over 16×16 frames — the
// restoration loop's cost model doesn't depend on training, only shapes.
func tinyDiffusion() *Diffusion {
	cfg := DefaultDiffusionConfig()
	cfg.T = 10
	return NewDiffusion(xrand.New(5), cfg)
}

// TestDiffPIRRestoreSteadyStateAllocs closes the ROADMAP leftover: with
// the model-held scratch warm (stack input, iterate/estimate/noise
// buffers, schedule, RNG and the UNet skip-concat buffers), a DiffPIR
// restoration into a caller-held frame must not allocate.
func TestDiffPIRRestoreSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	d := tinyDiffusion()
	cfg := DefaultDiffPIRConfig()
	cfg.Steps = 3
	img := imaging.NewRGB(16, 16)
	for i := range img.Pix {
		img.Pix[i] = float32(i%13) * 0.07
	}
	dst := imaging.NewRGB(16, 16)
	d.RestoreInto(dst, img, cfg) // size the scratch
	if avg := testing.AllocsPerRun(20, func() { d.RestoreInto(dst, img, cfg) }); avg >= 1 {
		t.Fatalf("RestoreInto allocates %.2f/op in steady state, want 0", avg)
	}
}

// TestDiffPIRRestoreIntoMatchesRestore pins the scratch-backed RestoreInto
// to the allocating Restore bit for bit, including across repeated calls
// (the reused RNG must restart the stream exactly).
func TestDiffPIRRestoreIntoMatchesRestore(t *testing.T) {
	d := tinyDiffusion()
	cfg := DefaultDiffPIRConfig()
	cfg.Steps = 3
	img := imaging.NewRGB(16, 16)
	for i := range img.Pix {
		img.Pix[i] = float32(i%11) * 0.09
	}
	want := tinyDiffusion().Restore(img, cfg)
	for call := 0; call < 2; call++ {
		dst := imaging.NewRGB(16, 16)
		got := d.RestoreInto(dst, img, cfg)
		for i := range want.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("call %d: RestoreInto diverges from Restore at %d", call, i)
			}
		}
	}
}

// TestProcessIntoMatchesProcess pins every destination-passing defense to
// its allocating Process output bit-for-bit (Randomization is checked with
// twin RNG states since its output is stochastic per call).
func TestProcessIntoMatchesProcess(t *testing.T) {
	img := imaging.NewImage(3, 24, 24)
	for i := range img.Pix {
		img.Pix[i] = float32(i%19) * 0.05
	}
	cases := []struct {
		name string
		a, b Preprocessor
	}{
		{"none", None{}, None{}},
		{"median", NewMedianBlur(), NewMedianBlur()},
		{"bitdepth", NewBitDepth(), NewBitDepth()},
		{"randomization", NewRandomization(7), NewRandomization(7)},
	}
	for _, tc := range cases {
		want := tc.a.Process(img)
		dst := imaging.NewImage(3, 24, 24)
		got := tc.b.(IntoPreprocessor).ProcessInto(dst, img)
		for i := range want.Pix {
			if want.Pix[i] != got.Pix[i] {
				t.Fatalf("%s: ProcessInto diverges from Process at %d", tc.name, i)
			}
		}
	}
}
