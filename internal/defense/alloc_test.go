package defense

import (
	"testing"

	"repro/internal/testenv"

	"repro/internal/imaging"
)

// TestMedianBlurProcessIntoAllocs guards the §VI per-frame defense budget:
// median filtering into a caller-held frame must not allocate, so the
// latency benches measure filtering rather than the allocator.
func TestMedianBlurProcessIntoAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	d := NewMedianBlur()
	img := imaging.NewImage(3, 32, 32)
	for i := range img.Pix {
		img.Pix[i] = float32(i%23) * 0.04
	}
	dst := imaging.NewImage(3, 32, 32)
	if avg := testing.AllocsPerRun(20, func() { d.ProcessInto(dst, img) }); avg != 0 {
		t.Fatalf("MedianBlur.ProcessInto allocates %.2f/op, want 0", avg)
	}
}

// TestProcessIntoMatchesProcess pins every destination-passing defense to
// its allocating Process output bit-for-bit (Randomization is checked with
// twin RNG states since its output is stochastic per call).
func TestProcessIntoMatchesProcess(t *testing.T) {
	img := imaging.NewImage(3, 24, 24)
	for i := range img.Pix {
		img.Pix[i] = float32(i%19) * 0.05
	}
	cases := []struct {
		name string
		a, b Preprocessor
	}{
		{"none", None{}, None{}},
		{"median", NewMedianBlur(), NewMedianBlur()},
		{"bitdepth", NewBitDepth(), NewBitDepth()},
		{"randomization", NewRandomization(7), NewRandomization(7)},
	}
	for _, tc := range cases {
		want := tc.a.Process(img)
		dst := imaging.NewImage(3, 24, 24)
		got := tc.b.(IntoPreprocessor).ProcessInto(dst, img)
		for i := range want.Pix {
			if want.Pix[i] != got.Pix[i] {
				t.Fatalf("%s: ProcessInto diverges from Process at %d", tc.name, i)
			}
		}
	}
}
