// Package defense implements the four defense families evaluated in the
// paper: input preprocessing (median blurring, bit-depth reduction,
// randomization), adversarial training, contrastive representation
// learning, and diffusion-based image restoration (DiffPIR).
package defense

import (
	"repro/internal/imaging"
	"repro/internal/xrand"
)

// Preprocessor is an input-level defense applied to a (possibly attacked)
// image before it reaches the perception model.
type Preprocessor interface {
	// Name identifies the defense in reports.
	Name() string
	// Process returns the defended image; the input is not modified.
	Process(img *imaging.Image) *imaging.Image
}

// IntoPreprocessor is implemented by defenses that can write the defended
// frame into a caller-provided buffer, so per-frame loops (the closed-loop
// pipeline, the §VI latency benches) reuse one destination instead of
// allocating a frame per step. dst must match img's geometry and not alias
// it; the returned image is dst.
type IntoPreprocessor interface {
	Preprocessor
	ProcessInto(dst, img *imaging.Image) *imaging.Image
}

// Apply runs p writing into dst when the defense supports destination
// passing, falling back to Process (fresh allocation) otherwise. dst may be
// nil to force the fallback.
func Apply(p Preprocessor, dst, img *imaging.Image) *imaging.Image {
	if ip, ok := p.(IntoPreprocessor); ok && dst != nil {
		return ip.ProcessInto(dst, img)
	}
	return p.Process(img)
}

// None is the identity preprocessor (the "no defense" table rows).
type None struct{}

var _ IntoPreprocessor = None{}

// Name implements Preprocessor.
func (None) Name() string { return "None" }

// Process implements Preprocessor.
func (None) Process(img *imaging.Image) *imaging.Image { return img.Clone() }

// ProcessInto implements IntoPreprocessor.
func (None) ProcessInto(dst, img *imaging.Image) *imaging.Image {
	if dst.C != img.C || dst.H != img.H || dst.W != img.W {
		panic("defense: None.ProcessInto destination geometry mismatch")
	}
	copy(dst.Pix, img.Pix)
	return dst
}

// MedianBlur applies k×k median filtering (Xu et al. feature squeezing).
type MedianBlur struct {
	K int
}

var _ IntoPreprocessor = MedianBlur{}

// NewMedianBlur returns the defense with the standard 3×3 window.
func NewMedianBlur() MedianBlur { return MedianBlur{K: 3} }

// Name implements Preprocessor.
func (m MedianBlur) Name() string { return "Median Blurring" }

// Process implements Preprocessor.
func (m MedianBlur) Process(img *imaging.Image) *imaging.Image {
	return imaging.MedianBlur(img, m.K)
}

// ProcessInto implements IntoPreprocessor.
func (m MedianBlur) ProcessInto(dst, img *imaging.Image) *imaging.Image {
	return imaging.MedianBlurInto(dst, img, m.K)
}

// BitDepth quantises pixels to the given bit depth (feature squeezing).
type BitDepth struct {
	Bits int
}

var _ IntoPreprocessor = BitDepth{}

// NewBitDepth returns the defense at the paper's 4-bit setting.
func NewBitDepth() BitDepth { return BitDepth{Bits: 4} }

// Name implements Preprocessor.
func (b BitDepth) Name() string { return "Bit Depth" }

// Process implements Preprocessor.
func (b BitDepth) Process(img *imaging.Image) *imaging.Image {
	return imaging.BitDepthReduce(img, b.Bits)
}

// ProcessInto implements IntoPreprocessor.
func (b BitDepth) ProcessInto(dst, img *imaging.Image) *imaging.Image {
	return imaging.BitDepthReduceInto(dst, img, b.Bits)
}

// Randomization resizes the input to a random smaller scale, pads it back
// at a random offset and injects a little noise (Xie et al.), breaking the
// pixel alignment adversarial perturbations rely on. The defense is
// stateful (its RNG advances per image) but deterministic from its seed.
type Randomization struct {
	MinScale float64
	NoiseStd float64
	rng      *xrand.RNG
}

var _ IntoPreprocessor = (*Randomization)(nil)

// NewRandomization returns the defense with the standard configuration.
func NewRandomization(seed int64) *Randomization {
	return &Randomization{MinScale: 0.8, NoiseStd: 0.02, rng: xrand.New(seed)}
}

// Name implements Preprocessor.
func (r *Randomization) Name() string { return "Randomization" }

// Process implements Preprocessor.
func (r *Randomization) Process(img *imaging.Image) *imaging.Image {
	return imaging.RandomResizePad(r.rng, img, r.MinScale, r.NoiseStd)
}

// ProcessInto implements IntoPreprocessor.
func (r *Randomization) ProcessInto(dst, img *imaging.Image) *imaging.Image {
	return imaging.RandomResizePadInto(r.rng, dst, img, r.MinScale, r.NoiseStd)
}

// Chain composes preprocessors left to right, supporting the "combine
// complementary preprocessing techniques" direction from the discussion.
type Chain struct {
	Steps []Preprocessor
}

var _ Preprocessor = Chain{}

// Name implements Preprocessor.
func (c Chain) Name() string {
	name := ""
	for i, s := range c.Steps {
		if i > 0 {
			name += "+"
		}
		name += s.Name()
	}
	return name
}

// Process implements Preprocessor.
func (c Chain) Process(img *imaging.Image) *imaging.Image {
	out := img.Clone()
	for _, s := range c.Steps {
		out = s.Process(out)
	}
	return out
}
