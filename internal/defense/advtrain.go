package defense

import (
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/imaging"
	"repro/internal/regress"
	"repro/internal/xrand"
)

// AttackFn perturbs one indexed image; the adversarial-training harness is
// agnostic to which attack produced the perturbation.
type AttackFn func(i int, img *imaging.Image) *imaging.Image

// AdvSignSet materialises an adversarially perturbed copy of a sign set:
// images are attacked, labels are kept.
func AdvSignSet(set *dataset.SignSet, att AttackFn) ([]*imaging.Image, [][]detect.Box) {
	imgs := make([]*imaging.Image, set.Len())
	gts := make([][]detect.Box, set.Len())
	for i, sc := range set.Scenes {
		imgs[i] = att(i, sc.Img)
		gts[i] = detect.GTBoxes(sc)
	}
	return imgs, gts
}

// AdvDriveSet materialises an adversarially perturbed copy of a driving
// set: frames are attacked, true distances are kept.
func AdvDriveSet(set *dataset.DriveSet, att AttackFn) ([]*imaging.Image, []float64) {
	imgs := make([]*imaging.Image, set.Len())
	dists := make([]float64, set.Len())
	for i, sc := range set.Scenes {
		imgs[i] = att(i, sc.Img)
		dists[i] = sc.Distance
	}
	return imgs, dists
}

// MixSets draws frac of each source set (images with matching labels),
// building the paper's "mixed" adversarial training set (25 % of the
// attacked examples from each of the four attacks).
func MixSets(rng *xrand.RNG, frac float64, imgSets [][]*imaging.Image, labelSets [][][]detect.Box) ([]*imaging.Image, [][]detect.Box) {
	var imgs []*imaging.Image
	var gts [][]detect.Box
	for s := range imgSets {
		n := len(imgSets[s])
		k := int(float64(n) * frac)
		perm := rng.Perm(n)
		for _, i := range perm[:k] {
			imgs = append(imgs, imgSets[s][i])
			gts = append(gts, labelSets[s][i])
		}
	}
	return imgs, gts
}

// MixDriveSets is MixSets for regression labels.
func MixDriveSets(rng *xrand.RNG, frac float64, imgSets [][]*imaging.Image, distSets [][]float64) ([]*imaging.Image, []float64) {
	var imgs []*imaging.Image
	var dists []float64
	for s := range imgSets {
		n := len(imgSets[s])
		k := int(float64(n) * frac)
		perm := rng.Perm(n)
		for _, i := range perm[:k] {
			imgs = append(imgs, imgSets[s][i])
			dists = append(dists, distSets[s][i])
		}
	}
	return imgs, dists
}

// AdvTrainDetector fine-tunes a copy of the base detector on adversarial
// examples and returns the hardened model. The base model is not modified.
func AdvTrainDetector(base *detect.Detector, imgs []*imaging.Image, gts [][]detect.Box, cfg detect.TrainConfig) *detect.Detector {
	hardened := base.Clone()
	hardened.TrainImages(imgs, gts, cfg)
	return hardened
}

// AdvTrainRegressor fine-tunes a copy of the base regressor on adversarial
// frames and returns the hardened model. The base model is not modified.
func AdvTrainRegressor(base *regress.Regressor, imgs []*imaging.Image, dists []float64, cfg regress.TrainConfig) *regress.Regressor {
	hardened := base.Clone()
	hardened.TrainImages(imgs, dists, cfg)
	return hardened
}
