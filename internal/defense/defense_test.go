package defense

import (
	"math"
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/imaging"
	"repro/internal/nn"
	"repro/internal/regress"
	"repro/internal/scene"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

var (
	setupOnce sync.Once
	baseReg   *regress.Regressor
	baseDet   *detect.Detector
	drives    *dataset.DriveSet
	signs     *dataset.SignSet
)

func setup(t testing.TB) {
	t.Helper()
	setupOnce.Do(func() {
		rng := xrand.New(123)
		dcfg := scene.DefaultDriveConfig()
		drives = dataset.GenerateDriveSet(rng.Split(), dcfg, 90, 5, 60)
		baseReg = regress.New(rng.Split(), dcfg.Size)
		rc := regress.DefaultTrainConfig()
		rc.Epochs = 6
		baseReg.Train(drives, rc)

		scfg := scene.DefaultSignConfig()
		signs = dataset.GenerateSignSet(rng.Split(), scfg, 80)
		baseDet = detect.New(rng.Split(), scfg.Size)
		tc := detect.DefaultTrainConfig()
		tc.Epochs = 8
		baseDet.Train(signs, tc)
	})
}

func TestPreprocessorsPreserveShapeAndInput(t *testing.T) {
	img := imaging.NewRGB(16, 16)
	xrand.New(1).FillUniform(img.Pix, 0, 1)
	orig := img.Clone()

	preps := []Preprocessor{
		None{},
		NewMedianBlur(),
		NewBitDepth(),
		NewRandomization(3),
		Chain{Steps: []Preprocessor{NewMedianBlur(), NewBitDepth()}},
	}
	for _, p := range preps {
		t.Run(p.Name(), func(t *testing.T) {
			out := p.Process(img)
			if out.H != 16 || out.W != 16 || out.C != 3 {
				t.Fatalf("%s changed shape", p.Name())
			}
			if img.MeanAbsDiff(orig) != 0 {
				t.Fatalf("%s mutated its input", p.Name())
			}
			for _, v := range out.Pix {
				if v < 0 || v > 1 {
					t.Fatalf("%s produced out-of-range pixel %v", p.Name(), v)
				}
			}
		})
	}
}

func TestNoneIsIdentity(t *testing.T) {
	img := imaging.NewRGB(8, 8)
	xrand.New(2).FillUniform(img.Pix, 0, 1)
	if (None{}).Process(img).MeanAbsDiff(img) != 0 {
		t.Fatal("None must be the identity")
	}
}

func TestChainName(t *testing.T) {
	c := Chain{Steps: []Preprocessor{NewMedianBlur(), NewBitDepth()}}
	if c.Name() != "Median Blurring+Bit Depth" {
		t.Fatalf("Chain name = %q", c.Name())
	}
}

func TestMedianBlurMitigatesNoiseAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped in -short (the -race CI job)")
	}
	setup(t)
	rng := xrand.New(5)
	blur := NewMedianBlur()
	var attacked, defended float64
	n := 10
	for i := 0; i < n; i++ {
		sc := drives.Scenes[i]
		adv := attack.Gaussian(rng, sc.Img, 0.15, nil)
		// Controlled comparison: measure each path against its own clean
		// reference so the blur's domain shift cancels and only its
		// noise-mitigation effect is scored.
		attacked += math.Abs(baseReg.Predict(adv) - baseReg.Predict(sc.Img))
		defended += math.Abs(baseReg.Predict(blur.Process(adv)) - baseReg.Predict(blur.Process(sc.Img)))
	}
	if defended >= attacked {
		t.Fatalf("median blur did not reduce noise-induced error: %.2f vs %.2f", defended, attacked)
	}
}

func TestAdvSignSetKeepsLabels(t *testing.T) {
	setup(t)
	imgs, gts := AdvSignSet(signs, func(i int, img *imaging.Image) *imaging.Image {
		return img.AdjustBrightness(0.9)
	})
	if len(imgs) != signs.Len() || len(gts) != signs.Len() {
		t.Fatal("AdvSignSet lengths wrong")
	}
	for i, sc := range signs.Scenes {
		if sc.HasSign != (len(gts[i]) == 1) {
			t.Fatal("labels must mirror scene ground truth")
		}
	}
}

func TestMixSetsFraction(t *testing.T) {
	rng := xrand.New(7)
	mk := func(n int) []*imaging.Image {
		out := make([]*imaging.Image, n)
		for i := range out {
			out[i] = imaging.NewRGB(4, 4)
		}
		return out
	}
	labels := make([][]detect.Box, 40)
	imgs, gts := MixSets(rng, 0.25, [][]*imaging.Image{mk(40), mk(40)}, [][][]detect.Box{labels, labels})
	if len(imgs) != 20 || len(gts) != 20 {
		t.Fatalf("mixed 25%% of 2x40 should be 20, got %d", len(imgs))
	}
}

func TestAdvTrainRegressorImprovesRobustness(t *testing.T) {
	setup(t)
	obj := &attack.RegressionObjective{Reg: baseReg}
	att := func(i int, img *imaging.Image) *imaging.Image {
		sc := drives.Scenes[i]
		mask := attack.BoxMask(img.C, img.H, img.W, sc.LeadBox, 1)
		return attack.FGSM(obj, img, 0.03, mask)
	}
	advImgs, dists := AdvDriveSet(drives, att)

	rc := regress.DefaultTrainConfig()
	rc.Epochs = 4
	rc.LR = 1e-3
	hardened := AdvTrainRegressor(baseReg, advImgs, dists, rc)

	// Evaluate on the same adversarial examples (transfer setting).
	var baseErr, hardErr float64
	for i, sc := range drives.Scenes[:20] {
		baseErr += math.Abs(baseReg.Predict(advImgs[i]) - baseReg.Predict(sc.Img))
		hardErr += math.Abs(hardened.Predict(advImgs[i]) - hardened.Predict(sc.Img))
	}
	if hardErr >= baseErr {
		t.Fatalf("adversarial training did not help: hardened %.2f vs base %.2f", hardErr, baseErr)
	}
	// Base model untouched.
	if baseReg.Predict(drives.Scenes[0].Img) != baseReg.Clone().Predict(drives.Scenes[0].Img) {
		t.Fatal("base model was mutated")
	}
}

func TestContrastiveFineTuneKeepsDetection(t *testing.T) {
	setup(t)
	cfg := DefaultContrastiveConfig()
	cfg.Epochs = 1
	cfg.HeadEpochs = 2
	tuned := ContrastiveFineTune(baseDet, signs, cfg)

	base := baseDet.Evaluate(signs, 0.5)
	after := tuned.Evaluate(signs, 0.5)
	// Contrastive fine-tuning must not destroy the detector (paper: clean
	// performance stays high).
	if after.MAP50 < base.MAP50-0.25 {
		t.Fatalf("contrastive tuning collapsed detection: %.3f -> %.3f", base.MAP50, after.MAP50)
	}
}

func TestNTXentGradPullsPositivesTogether(t *testing.T) {
	// Two pairs of unit embeddings; the gradient on an anchor should point
	// away from its positive less than from negatives (i.e. following
	// -grad increases positive similarity).
	u := [][]float64{
		{1, 0}, {0.9, 0.436}, // pair A (views 0,1)
		{-1, 0}, {-0.9, -0.436}, // pair B (views 2,3)
	}
	grads := ntXentGrad(u, 0.2, 0)
	// Move anchor 0 a small step along -grad and renormalise.
	step := 0.1
	v := []float64{u[0][0] - step*grads[0][0], u[0][1] - step*grads[0][1]}
	n := math.Hypot(v[0], v[1])
	v[0] /= n
	v[1] /= n
	simBefore := u[0][0]*u[1][0] + u[0][1]*u[1][1]
	simAfter := v[0]*u[1][0] + v[1]*u[1][1]
	if simAfter <= simBefore {
		t.Fatalf("NT-Xent gradient failed to pull positives together: %v -> %v", simBefore, simAfter)
	}
}

func TestUNetShapesAndBackward(t *testing.T) {
	rng := xrand.New(11)
	u := NewUNet(rng, 5)
	x := tensor.New(5, 16, 16)
	rng.FillNormal(x.Data(), 0, 1)
	out := u.Forward(x, true)
	if out.Dim(0) != 3 || out.Dim(1) != 16 || out.Dim(2) != 16 {
		t.Fatalf("UNet output shape %v", out.Shape())
	}
	target := tensor.New(3, 16, 16)
	_, grad := nn.MSE(out, target)
	u.ZeroGrad()
	u.Backward(grad)
	var nonzero int
	for _, p := range u.Params() {
		for _, g := range p.Grad.Data() {
			if g != 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Fatal("UNet backward produced no parameter gradients")
	}
}

func TestUNetGradientCheck(t *testing.T) {
	// Finite-difference check through the skip connections on a few
	// parameters of the first encoder conv.
	rng := xrand.New(13)
	u := NewUNet(rng, 5)
	x := tensor.New(5, 8, 8)
	rng.FillNormal(x.Data(), 0, 0.5)
	target := tensor.New(3, 8, 8)
	rng.FillNormal(target.Data(), 0, 0.5)

	loss := func() float64 {
		out := u.Forward(x, false)
		l, _ := nn.MSE(out, target)
		return l
	}
	u.ZeroGrad()
	out := u.Forward(x, false)
	_, g := nn.MSE(out, target)
	u.Backward(g)

	p := u.Params()[0]
	analytic := append([]float32(nil), p.Grad.Data()...)
	const eps = 1e-2
	for _, idx := range []int{0, 7, 19} {
		// Direct weight writes must bump the param version so any
		// weight-derived layer cache stays coherent.
		orig := p.Value.Data()[idx]
		p.Value.Data()[idx] = orig + eps
		p.MarkMutated()
		lp := loss()
		p.Value.Data()[idx] = orig - eps
		p.MarkMutated()
		lm := loss()
		p.Value.Data()[idx] = orig
		p.MarkMutated()
		numeric := (lp - lm) / (2 * eps)
		a := float64(analytic[idx])
		denom := math.Abs(a) + math.Abs(numeric)
		if denom < 1e-4 {
			continue
		}
		if math.Abs(a-numeric)/denom > 0.08 {
			t.Fatalf("UNet grad mismatch at %d: analytic %v vs numeric %v", idx, a, numeric)
		}
	}
}

func TestDiffusionTrainReducesLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped in -short (the -race CI job)")
	}
	setup(t)
	cfg := DefaultDiffusionConfig()
	cfg.TrainSteps = 60
	cfg.Batch = 4
	var losses []float64
	cfg.Logf = func(format string, args ...any) {}
	d := NewDiffusion(xrand.New(17), cfg)

	// Track the DDPM loss on a fixed probe before and after training.
	probe := func() float64 {
		rng := xrand.New(99)
		var total float64
		for i := 0; i < 6; i++ {
			img := drives.Scenes[i].Img
			x0 := img.Tensor()
			tt := (i * 7) % cfg.T
			ab := d.AlphaBar(tt)
			noise := tensor.New(x0.Shape()...)
			rng.FillNormal(noise.Data(), 0, 1)
			xt := x0.Scale(float32(math.Sqrt(ab)))
			xt.AddScaledInPlace(noise, float32(math.Sqrt(1-ab)))
			pred := d.PredictNoise(xt, tt)
			l, _ := nn.MSE(pred, noise)
			total += l
		}
		return total
	}
	before := probe()
	pick := xrand.New(19)
	d.Train(cfg, func() *imaging.Image {
		return drives.Scenes[pick.Intn(drives.Len())].Img
	})
	after := probe()
	_ = losses
	if after >= before {
		t.Fatalf("diffusion training did not reduce noise-prediction loss: %v -> %v", before, after)
	}
}

func TestDiffPIRRestoreShapeAndRange(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped in -short (the -race CI job)")
	}
	setup(t)
	cfg := DefaultDiffusionConfig()
	cfg.TrainSteps = 30
	d := NewDiffusion(xrand.New(23), cfg)
	pick := xrand.New(29)
	d.Train(cfg, func() *imaging.Image {
		return drives.Scenes[pick.Intn(drives.Len())].Img
	})

	rcfg := DefaultDiffPIRConfig()
	rcfg.Steps = 5
	img := drives.Scenes[0].Img
	out := d.Restore(img, rcfg)
	if out.H != img.H || out.W != img.W || out.C != 3 {
		t.Fatal("Restore changed shape")
	}
	for _, v := range out.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("Restore out-of-range pixel %v", v)
		}
	}
	// Data consistency: restoration must stay anchored to the observation.
	if out.MeanAbsDiff(img) > 0.35 {
		t.Fatalf("restoration drifted too far from observation: %v", out.MeanAbsDiff(img))
	}
}

func TestDiffusionCloneIndependent(t *testing.T) {
	cfg := DefaultDiffusionConfig()
	d := NewDiffusion(xrand.New(31), cfg)
	c := d.Clone()
	x := tensor.New(3, 16, 16)
	a := d.PredictNoise(x, 5).Clone()
	c.Net.Params()[0].Value.Fill(0)
	b := d.PredictNoise(x, 5)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("clone mutation leaked into original diffusion model")
		}
	}
}
