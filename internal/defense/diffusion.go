package defense

import (
	"math"

	"repro/internal/imaging"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// DiffusionConfig parameterises the DDPM prior.
type DiffusionConfig struct {
	T          int     // diffusion timesteps
	BetaStart  float64 // linear noise schedule start
	BetaEnd    float64 // linear noise schedule end
	TrainSteps int     // optimisation steps
	Batch      int     // images per optimisation step
	LR         float32
	Seed       int64
	Logf       func(format string, args ...any)
}

// DefaultDiffusionConfig returns settings that train the prior to useful
// denoising quality on the synthetic scene distribution in a few minutes.
func DefaultDiffusionConfig() DiffusionConfig {
	return DiffusionConfig{
		T: 50, BetaStart: 1e-4, BetaEnd: 0.04,
		TrainSteps: 500, Batch: 8, LR: 2e-3, Seed: 31,
	}
}

// Diffusion is a small denoising diffusion probabilistic model over the
// clean scene distribution; DiffPIR uses it as the generative prior that
// pulls adversarially perturbed images back onto the data manifold.
type Diffusion struct {
	Net *UNet
	T   int

	betas    []float64
	alphaBar []float64 // cumulative ᾱ_t

	// Reusable restoration scratch (stack input, iterate, estimate, noise,
	// timestep schedule, per-call RNG), sized lazily on first use so
	// steady-state Restore calls never touch the allocator. A Clone gets
	// fresh scratch, so per-cell clones share no buffers.
	stackBuf   *tensor.Tensor
	rx, rx0    *tensor.Tensor
	rnoise     *tensor.Tensor
	schedule   []int
	restoreRNG *xrand.RNG
}

// NewDiffusion builds an untrained diffusion model.
func NewDiffusion(rng *xrand.RNG, cfg DiffusionConfig) *Diffusion {
	d := &Diffusion{
		Net:      NewUNet(rng, 5), // 3 image channels + 2 timestep channels
		T:        cfg.T,
		betas:    make([]float64, cfg.T),
		alphaBar: make([]float64, cfg.T),
	}
	prod := 1.0
	for t := 0; t < cfg.T; t++ {
		d.betas[t] = cfg.BetaStart + (cfg.BetaEnd-cfg.BetaStart)*float64(t)/float64(cfg.T-1)
		prod *= 1 - d.betas[t]
		d.alphaBar[t] = prod
	}
	return d
}

// AlphaBar returns ᾱ_t.
func (d *Diffusion) AlphaBar(t int) float64 { return d.alphaBar[t] }

// Clone returns an independent copy (deep-copied network, shared
// immutable schedule), safe to use from another goroutine.
func (d *Diffusion) Clone() *Diffusion {
	return &Diffusion{Net: d.Net.Clone(), T: d.T, betas: d.betas, alphaBar: d.alphaBar}
}

// stack builds the 5-channel network input: the noisy image plus two
// constant channels embedding the timestep (t/T and ᾱ_t). The output lives
// in reusable scratch (valid until the next stack call on this model), so
// training steps and restoration iterations allocate nothing for it.
func (d *Diffusion) stack(x *tensor.Tensor, t int) *tensor.Tensor {
	h, w := x.Dim(1), x.Dim(2)
	if d.stackBuf == nil || !d.stackBuf.ShapeEq(5, h, w) {
		d.stackBuf = tensor.New(5, h, w)
	}
	out := d.stackBuf
	copy(out.Data()[:3*h*w], x.Data())
	tt := float32(float64(t) / float64(d.T))
	ab := float32(d.alphaBar[t])
	plane := out.Data()[3*h*w : 4*h*w]
	for i := range plane {
		plane[i] = tt
	}
	plane = out.Data()[4*h*w:]
	for i := range plane {
		plane[i] = ab
	}
	return out
}

// PredictNoise runs the UNet, returning ε̂(x_t, t).
func (d *Diffusion) PredictNoise(xt *tensor.Tensor, t int) *tensor.Tensor {
	return d.Net.Forward(d.stack(xt, t), false)
}

// Train fits the noise predictor with the standard DDPM objective:
// sample clean image, timestep and noise; minimise ‖ε − ε̂(x_t, t)‖².
// Images are supplied by next() so callers can stream from any dataset mix.
func (d *Diffusion) Train(cfg DiffusionConfig, next func() *imaging.Image) {
	rng := xrand.New(cfg.Seed)
	opt := nn.NewAdam(cfg.LR)
	for step := 0; step < cfg.TrainSteps; step++ {
		d.Net.ZeroGrad()
		var lossSum float64
		for b := 0; b < cfg.Batch; b++ {
			img := next()
			x0 := img.Tensor()
			t := rng.Intn(d.T)
			ab := d.alphaBar[t]

			noise := tensor.New(x0.Shape()...)
			rng.FillNormal(noise.Data(), 0, 1)

			xt := x0.Scale(float32(math.Sqrt(ab)))
			xt.AddScaledInPlace(noise, float32(math.Sqrt(1-ab)))

			pred := d.Net.Forward(d.stack(xt, t), true)
			loss, grad := nn.MSE(pred, noise)
			lossSum += loss
			d.Net.Backward(grad)
		}
		for _, p := range d.Net.Params() {
			p.Grad.ScaleInPlace(1 / float32(cfg.Batch))
		}
		nn.ClipGradNorm(d.Net.Params(), 10)
		opt.Step(d.Net.Params())
		if cfg.Logf != nil && (step+1)%50 == 0 {
			cfg.Logf("diffusion: step %d/%d loss %.5f", step+1, cfg.TrainSteps, lossSum/float64(cfg.Batch))
		}
	}
}

// DiffPIRConfig parameterises the restoration loop (Zhu et al., Eq. 9).
type DiffPIRConfig struct {
	StartFrac float64 // start timestep as a fraction of T (noise injection)
	Steps     int     // number of reverse steps (timesteps are subsampled)
	SigmaY    float64 // assumed observation corruption level (attack strength)
	Zeta      float64 // stochasticity of the re-noising step in [0,1]
	Seed      int64
}

// DefaultDiffPIRConfig returns the settings used across the experiments.
// SigmaY is the assumed magnitude of the (unknown) adversarial corruption;
// it controls how strongly the final estimate is allowed to deviate from
// the observation.
func DefaultDiffPIRConfig() DiffPIRConfig {
	return DiffPIRConfig{StartFrac: 0.35, Steps: 12, SigmaY: 0.12, Zeta: 0.3, Seed: 33}
}

// Restore runs DiffPIR on a degraded observation y (an attacked image):
// inject noise to the start timestep, then alternate (1) diffusion
// denoising to estimate the clean image and (2) a proximal data-
// consistency step toward y, re-noising to the next timestep. With H = I
// (the degradation is unknown additive perturbation) the proximal update
// is a convex combination of the denoised estimate and y.
func (d *Diffusion) Restore(y *imaging.Image, cfg DiffPIRConfig) *imaging.Image {
	return d.RestoreInto(imaging.NewImage(y.C, y.H, y.W), y, cfg)
}

// RestoreInto is Restore writing the restored frame into dst, which must
// match y's geometry and not alias it. The restoration loop runs entirely
// in model-held scratch (iterate, estimate, noise, schedule, RNG), so with
// the scratch warm a per-frame restoration allocates nothing — the defense
// side of the closed-loop latency budget.
func (d *Diffusion) RestoreInto(dst, y *imaging.Image, cfg DiffPIRConfig) *imaging.Image {
	if dst.C != y.C || dst.H != y.H || dst.W != y.W {
		panic("defense: RestoreInto destination geometry mismatch")
	}
	if d.restoreRNG == nil {
		d.restoreRNG = xrand.New(cfg.Seed)
	} else {
		d.restoreRNG.Reseed(cfg.Seed)
	}
	rng := d.restoreRNG
	yT := y.Tensor()

	t0 := int(cfg.StartFrac * float64(d.T))
	if t0 < 1 {
		t0 = 1
	}
	if t0 >= d.T {
		t0 = d.T - 1
	}

	// Subsampled timestep schedule t0 = τ_0 > τ_1 > ... > τ_k = 0.
	steps := cfg.Steps
	if steps > t0 {
		steps = t0
	}
	d.schedule = d.schedule[:0]
	for i := 0; i <= steps; i++ {
		d.schedule = append(d.schedule, t0-i*t0/steps)
	}
	schedule := d.schedule

	if d.rx == nil || !d.rx.SameShape(yT) {
		d.rx = tensor.New(yT.Shape()...)
		d.rx0 = tensor.New(yT.Shape()...)
		d.rnoise = tensor.New(yT.Shape()...)
	}
	x, x0, noise := d.rx, d.rx0, d.rnoise

	// Initialise x at timestep t0 from y.
	ab0 := d.alphaBar[t0]
	copy(x.Data(), yT.Data())
	x.ScaleInPlace(float32(math.Sqrt(ab0)))
	rng.FillNormal(noise.Data(), 0, 1)
	x.AddScaledInPlace(noise, float32(math.Sqrt(1-ab0)))

	final := x
	for i := 0; i < steps; i++ {
		t := schedule[i]
		tNext := schedule[i+1]
		ab := d.alphaBar[t]

		// (1) Denoise: estimate x̂0 from the noise prediction.
		eps := d.PredictNoise(x, t)
		copy(x0.Data(), x.Data())
		x0.AddScaledInPlace(eps, float32(-math.Sqrt(1-ab)))
		x0.ScaleInPlace(float32(1 / math.Sqrt(ab)))

		// (2) Data consistency: precision-weighted fusion of the prior's
		// estimate x̂0 (error ∝ remaining diffusion noise σ_t) with the
		// observation y (corruption σ_y). Early steps, where x̂0 is still
		// unreliable, anchor to y; as σ_t shrinks below σ_y the prior
		// estimate dominates and the adversarial component of y is
		// progressively discarded.
		sigmaT2 := (1 - ab) / ab
		wy := sigmaT2 / (sigmaT2 + cfg.SigmaY*cfg.SigmaY)
		x0.ScaleInPlace(float32(1 - wy))
		x0.AddScaledInPlace(yT, float32(wy))

		if tNext <= 0 {
			final = x0
			break
		}

		// (3) Re-noise to τ_{i+1}: mix the predicted noise direction with
		// fresh noise according to ζ. eps still lives in the UNet workspace
		// (no model call happens in between), so it is read before the next
		// PredictNoise overwrites it.
		abn := d.alphaBar[tNext]
		copy(x.Data(), x0.Data())
		x.ScaleInPlace(float32(math.Sqrt(abn)))
		rng.FillNormal(noise.Data(), 0, 1)
		coef := math.Sqrt(1 - abn)
		x.AddScaledInPlace(eps, float32(coef*math.Sqrt(1-cfg.Zeta)))
		x.AddScaledInPlace(noise, float32(coef*math.Sqrt(cfg.Zeta)))
		final = x
	}

	copy(dst.Pix, final.Data())
	return dst.Clamp()
}

// DiffPIRDefense adapts Restore to the Preprocessor interface so the
// evaluation harness can slot the diffusion defense next to the classical
// preprocessors.
type DiffPIRDefense struct {
	Model *Diffusion
	Cfg   DiffPIRConfig
}

var _ IntoPreprocessor = (*DiffPIRDefense)(nil)

// Name implements Preprocessor.
func (d *DiffPIRDefense) Name() string { return "Diffusion (DiffPIR)" }

// Process implements Preprocessor.
func (d *DiffPIRDefense) Process(img *imaging.Image) *imaging.Image {
	return d.Model.Restore(img, d.Cfg)
}

// ProcessInto implements IntoPreprocessor: the closed-loop pipeline hands
// DiffPIR one destination frame, and with the restoration scratch warm the
// per-frame defense allocates nothing.
func (d *DiffPIRDefense) ProcessInto(dst, img *imaging.Image) *imaging.Image {
	return d.Model.RestoreInto(dst, img, d.Cfg)
}
