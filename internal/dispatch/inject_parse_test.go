package dispatch

import "testing"

// The -inject/-injectstore strings are a lint-visible CLI surface (the
// CI fault-matrix legs are built from them), so the parsers reject
// malformed input with exact, stable messages instead of silently
// skipping tokens. These tests pin the message text.

func TestParseInjectionsEmptyInput(t *testing.T) {
	for _, s := range []string{"", "   ", "\t"} {
		injs, err := ParseInjections(s)
		if err != nil || injs != nil {
			t.Fatalf("ParseInjections(%q) = %v, %v; want nil, nil", s, injs, err)
		}
	}
}

func TestParseInjectionsExactErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"kill:0,,dial:1", `dispatch: bad -inject "kill:0,,dial:1": empty directive (stray comma)`},
		{"kill:0,", `dispatch: bad -inject "kill:0,": empty directive (stray comma)`},
		{",kill:0", `dispatch: bad -inject ",kill:0": empty directive (stray comma)`},
		{"kill", `dispatch: bad -inject "kill": want fault:worker[@N]`},
		{"explode:0", `dispatch: bad -inject "explode:0": unknown fault "explode" (want kill|hang|dial|dup|torn)`},
		{"kill:x", `dispatch: bad -inject "kill:x": worker index "x" (want digits)`},
		{"kill:-1", `dispatch: bad -inject "kill:-1": worker index "-1" (want digits)`},
		{"kill:+1", `dispatch: bad -inject "kill:+1": worker index "+1" (want digits)`},
		{"kill:", `dispatch: bad -inject "kill:": worker index "" (want digits)`},
		{"kill:0@x", `dispatch: bad -inject "kill:0@x": count "x" (want digits)`},
		{"kill:0@", `dispatch: bad -inject "kill:0@": count "" (want digits)`},
		{"kill:0@-2", `dispatch: bad -inject "kill:0@-2": count "-2" (want digits)`},
		{"kill:0@1,kill:0@2", `dispatch: bad -inject "kill:0@1,kill:0@2": duplicate directive kill:0`},
	}
	for _, c := range cases {
		_, err := ParseInjections(c.in)
		if err == nil {
			t.Fatalf("ParseInjections(%q) accepted", c.in)
		}
		if err.Error() != c.want {
			t.Fatalf("ParseInjections(%q) error:\n got %q\nwant %q", c.in, err.Error(), c.want)
		}
	}
}

// The same fault on different workers is two distinct directives, not a
// duplicate.
func TestParseInjectionsSameFaultDifferentWorkers(t *testing.T) {
	injs, err := ParseInjections("kill:0@1,kill:1@1")
	if err != nil {
		t.Fatal(err)
	}
	if len(injs) != 2 {
		t.Fatalf("parsed %d injections, want 2", len(injs))
	}
}

func TestParseStoreInjectionsEmptyInput(t *testing.T) {
	for _, s := range []string{"", "  "} {
		injs, err := ParseStoreInjections(s)
		if err != nil || injs != nil {
			t.Fatalf("ParseStoreInjections(%q) = %v, %v; want nil, nil", s, injs, err)
		}
	}
}

func TestParseStoreInjectionsExactErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"outage:1,,dup", `dispatch: bad -injectstore "outage:1,,dup": empty directive (stray comma)`},
		{"dup,", `dispatch: bad -injectstore "dup,": empty directive (stray comma)`},
		{"flood:1", `dispatch: bad -injectstore "flood:1": unknown fault "flood" (want outage|torn|dup)`},
		{"outage:x", `dispatch: bad -injectstore "outage:x": count "x" (want digits)`},
		{"outage:", `dispatch: bad -injectstore "outage:": count "" (want digits)`},
		{"outage:+3", `dispatch: bad -injectstore "outage:+3": count "+3" (want digits)`},
		{"torn:-1", `dispatch: bad -injectstore "torn:-1": count "-1" (want digits)`},
		{"dup,dup", `dispatch: bad -injectstore "dup,dup": duplicate directive dup`},
		{"outage:1,outage:2", `dispatch: bad -injectstore "outage:1,outage:2": duplicate directive outage`},
	}
	for _, c := range cases {
		_, err := ParseStoreInjections(c.in)
		if err == nil {
			t.Fatalf("ParseStoreInjections(%q) accepted", c.in)
		}
		if err.Error() != c.want {
			t.Fatalf("ParseStoreInjections(%q) error:\n got %q\nwant %q", c.in, err.Error(), c.want)
		}
	}
}
