package dispatch

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/serve"
)

// Checkpoint-transport tests extend the dispatcher's one-sentence
// contract off-machine: whatever faults the fleet OR the replica store
// throws — worker crash, torn remote segment, transient store outage,
// duplicate segment delivery — the merged report stays byte-identical to
// an unsharded run, and a dispatch whose lane data survives only in the
// replica resumes with zero recomputed cells.

// testTransports enumerates the replicating transports under test, each
// constructed fresh over durable backing state so a second construction
// simulates a new dispatcher process on a new machine.
func testTransports(t *testing.T) map[string]func() CheckpointTransport {
	t.Helper()
	mirrorDir := filepath.Join(t.TempDir(), "mirror")
	storeDir := filepath.Join(t.TempDir(), "store")
	srv := serve.New(context.Background(), serve.Config{})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return map[string]func() CheckpointTransport{
		"mirror": func() CheckpointTransport { return &MirrorTransport{Dir: mirrorDir} },
		"store-dir": func() CheckpointTransport {
			return &StoreTransport{
				Store: serve.NewDirStore(storeDir), SegmentBytes: 1,
				RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
			}
		},
		"store-http": func() CheckpointTransport {
			return &StoreTransport{
				Store: &serve.HTTPStore{Base: hs.URL}, SegmentBytes: 1,
				RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
			}
		},
	}
}

// TestCheckpointTransportsFaultMatrix drives every worker fault class
// through every replicating transport: the byte-identity gate must hold
// on all of them (mustRun asserts it), and crash-resume must still never
// recompute a checkpointed cell.
func TestCheckpointTransportsFaultMatrix(t *testing.T) {
	faults := []string{"kill", "hang", "torn", "dup", "dial"}
	for name, mk := range testTransports(t) {
		for _, fault := range faults {
			t.Run(name+"/"+fault, func(t *testing.T) {
				log := newComputeLog()
				inner := func() Transport { return &fakeTransport{computes: log} }
				var faulty Transport
				switch fault {
				case "kill":
					faulty = &KillAfter{Inner: inner(), N: 2}
				case "hang":
					faulty = &HangAfter{Inner: inner(), N: 1}
				case "torn":
					faulty = &TornTail{Inner: inner(), N: 2}
				case "dup":
					faulty = &DuplicateEvents{Inner: inner()}
				case "dial":
					faulty = &DialFail{Inner: inner(), Times: 1}
				}
				cfg := baseConfig(t,
					Worker{Name: "faulty", Transport: faulty},
					Worker{Name: "steady", Transport: inner()},
				)
				cfg.NumShards = 2
				cfg.Checkpoints = mk()
				if fault == "hang" {
					cfg.Heartbeat = 100 * time.Millisecond
				}
				rep := mustRun(t, cfg)
				if rep.Transport == "fs" {
					t.Fatalf("report claims the fs transport, want %s", name)
				}
				// Nothing persisted — locally or in the replica — may be
				// computed twice, except the single record a torn tail
				// destroys.
				recomputed := 0
				for i := 0; i < 8; i++ {
					switch got := log.count(i); got {
					case 1:
					case 2:
						recomputed++
					default:
						t.Fatalf("cell %d computed %d times", i, got)
					}
				}
				if fault == "torn" && recomputed > 1 {
					t.Fatalf("%d cells recomputed after tail repair, want at most the torn one", recomputed)
				}
				if fault != "torn" && recomputed != 0 {
					t.Fatalf("%d cells recomputed under %s fault, want 0", recomputed, fault)
				}
			})
		}
	}
}

// TestDispatchMachineLossResume is the off-machine durability headline:
// a dispatch completes, the ENTIRE local lane directory is lost, and a
// fresh dispatcher (new transport instance over the same backing store)
// resumes to a byte-identical report with zero recomputed cells.
func TestDispatchMachineLossResume(t *testing.T) {
	for name, mk := range testTransports(t) {
		t.Run(name, func(t *testing.T) {
			log := newComputeLog()
			cfg := baseConfig(t,
				Worker{Name: "a", Transport: &fakeTransport{computes: log}},
				Worker{Name: "b", Transport: &fakeTransport{computes: log}},
			)
			cfg.NumShards = 2
			cfg.Checkpoints = mk()
			mustRun(t, cfg)

			// The machine dies: every local lane file is gone.
			if err := os.RemoveAll(cfg.Dir); err != nil {
				t.Fatal(err)
			}

			relog := newComputeLog()
			cfg2 := cfg
			cfg2.Workers = []Worker{{Name: "a2", Transport: &fakeTransport{computes: relog}}}
			cfg2.Resume = true
			cfg2.Checkpoints = mk() // a fresh process: no in-memory state
			rep := mustRun(t, cfg2)

			if rep.Fetched != 8 {
				t.Fatalf("fetched %d cells from the %s replica, want all 8", rep.Fetched, name)
			}
			if rep.Resumed != 8 {
				t.Fatalf("resumed %d cells, want all 8", rep.Resumed)
			}
			for i := 0; i < 8; i++ {
				if got := relog.count(i); got != 0 {
					t.Fatalf("cell %d recomputed %d times after machine loss, want 0", i, got)
				}
			}
		})
	}
}

// storeConfig builds a dispatch config over a DirStore-backed store
// transport with per-record segments, returning the store root.
func storeConfig(t *testing.T, log *computeLog, wrap func(serve.ObjectStore) serve.ObjectStore) (Config, string) {
	t.Helper()
	root := filepath.Join(t.TempDir(), "store")
	var store serve.ObjectStore = serve.NewDirStore(root)
	if wrap != nil {
		store = wrap(store)
	}
	cfg := baseConfig(t, Worker{Name: "a", Transport: &fakeTransport{computes: log}})
	cfg.NumShards = 2
	cfg.Checkpoints = &StoreTransport{
		Store: store, SegmentBytes: 1,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}
	return cfg, root
}

// TestStoreTransportTornSegmentRecomputesOnlyDamage: a segment whose
// upload tore mid-record (reported success, stored half the bytes) costs
// exactly the damaged record on a machine-loss resume — the valid prefix
// and every other segment still count.
func TestStoreTransportTornSegmentRecomputesOnlyDamage(t *testing.T) {
	log := newComputeLog()
	cfg, root := storeConfig(t, log, func(s serve.ObjectStore) serve.ObjectStore {
		return &TornPutStore{Inner: s, N: 1}
	})
	mustRun(t, cfg)
	if err := os.RemoveAll(cfg.Dir); err != nil {
		t.Fatal(err)
	}

	relog := newComputeLog()
	cfg2 := cfg
	cfg2.Workers = []Worker{{Name: "a2", Transport: &fakeTransport{computes: relog}}}
	cfg2.Resume = true
	cfg2.Checkpoints = &StoreTransport{
		Store: serve.NewDirStore(root), SegmentBytes: 1,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}
	rep := mustRun(t, cfg2)

	recomputed := 0
	for i := 0; i < 8; i++ {
		switch got := relog.count(i); got {
		case 0:
		case 1:
			recomputed++
		default:
			t.Fatalf("cell %d computed %d times", i, got)
		}
	}
	if recomputed != 1 {
		t.Fatalf("%d cells recomputed after a torn segment, want exactly the damaged one", recomputed)
	}
	if rep.Fetched != 7 {
		t.Fatalf("fetched %d cells, want the 7 undamaged ones", rep.Fetched)
	}
}

// TestStoreTransportOutageRetries: a transiently unavailable store (the
// first N operations fail) is ridden out by the capped jittered retry —
// the run converges without surfacing the outage.
func TestStoreTransportOutageRetries(t *testing.T) {
	log := newComputeLog()
	cfg, _ := storeConfig(t, log, func(s serve.ObjectStore) serve.ObjectStore {
		return &OutageStore{Inner: s, Times: 3}
	})
	mustRun(t, cfg)
	for i := 0; i < 8; i++ {
		if got := log.count(i); got != 1 {
			t.Fatalf("cell %d computed %d times through the outage, want 1", i, got)
		}
	}
}

// TestStoreTransportOutagePastBudgetFails: a store that stays down past
// the retry budget is an error, not silent data loss.
func TestStoreTransportOutagePastBudgetFails(t *testing.T) {
	cfg, _ := storeConfig(t, newComputeLog(), func(s serve.ObjectStore) serve.ObjectStore {
		return &OutageStore{Inner: s, Times: 10_000}
	})
	ct := cfg.Checkpoints.(*StoreTransport)
	ct.Retries = 2
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := Run(ctx, cfg)
	if err == nil || !strings.Contains(err.Error(), "failed after") {
		t.Fatalf("permanent store outage did not fail the run: %v", err)
	}
}

// TestStoreTransportDuplicateSegmentDelivery: every segment delivered
// twice (under its own key and the following one) still loads to the
// exact record set — dedup by grid index absorbs at-least-once delivery.
func TestStoreTransportDuplicateSegmentDelivery(t *testing.T) {
	log := newComputeLog()
	cfg, root := storeConfig(t, log, func(s serve.ObjectStore) serve.ObjectStore {
		return &DuplicatePutStore{Inner: s}
	})
	mustRun(t, cfg)
	if err := os.RemoveAll(cfg.Dir); err != nil {
		t.Fatal(err)
	}

	relog := newComputeLog()
	cfg2 := cfg
	cfg2.Workers = []Worker{{Name: "a2", Transport: &fakeTransport{computes: relog}}}
	cfg2.Resume = true
	cfg2.Checkpoints = &StoreTransport{
		Store: serve.NewDirStore(root), SegmentBytes: 1,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}
	rep := mustRun(t, cfg2)
	if rep.Fetched != 8 {
		t.Fatalf("fetched %d cells through duplicate delivery, want 8", rep.Fetched)
	}
	for i := 0; i < 8; i++ {
		if got := relog.count(i); got != 0 {
			t.Fatalf("cell %d recomputed %d times, want 0", i, got)
		}
	}
}

// TestStoreTransportRejectsStaleRemoteLane: replica records stamped with
// a different run configuration (here: doubled duration) must not seed a
// resume — the same "stale checkpoint?" hard error the local path gives.
func TestStoreTransportRejectsStaleRemoteLane(t *testing.T) {
	cfg, _ := storeConfig(t, newComputeLog(), nil)
	cfg.Resume = true
	st := cfg.Checkpoints.(*StoreTransport)

	// Bind a throwaway twin to learn the content-address prefix, then
	// plant a stale record where the resume will look.
	meta, err := specGridMeta(cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	twin := &StoreTransport{Store: st.Store}
	if err := twin.Bind(cfg.Spec, meta); err != nil {
		t.Fatal(err)
	}
	id := meta.ids[0]
	raw, err := json.Marshal(eval.SweepRecord{
		Index: id.Index, Seed: id.Seed, Preset: meta.preset,
		Duration: meta.duration * 2, DT: meta.dt, Cell: fakeCell(id),
	})
	if err != nil {
		t.Fatal(err)
	}
	key := twin.segKey("shard_0_of_2.jsonl", 0)
	if err := st.Store.Put(key, append(raw, '\n')); err != nil {
		t.Fatal(err)
	}

	_, err = Run(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "stale checkpoint?") {
		t.Fatalf("stale remote lane accepted: err = %v", err)
	}
}

// TestFreshRunClearsReplica: without -resume the replica lanes are
// cleared alongside the local ones, so an abandoned dispatch cannot leak
// records into a fresh run's replica.
func TestFreshRunClearsReplica(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	mk := func() CheckpointTransport {
		return &StoreTransport{
			Store: serve.NewDirStore(root), SegmentBytes: 1,
			RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
		}
	}
	cfg := baseConfig(t, Worker{Name: "a", Transport: &fakeTransport{computes: newComputeLog()}})
	cfg.NumShards = 2
	cfg.Checkpoints = mk()
	mustRun(t, cfg)

	// Re-dispatch the same grid WITHOUT resume: the old replica records
	// must be gone before the run starts, and the run still converges.
	cfg2 := cfg
	cfg2.Checkpoints = mk()
	cfg2.Workers = []Worker{{Name: "b", Transport: &fakeTransport{computes: newComputeLog()}}}
	mustRun(t, cfg2)

	lanes, err := cfg2.Checkpoints.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(lanes) != 2 {
		t.Fatalf("replica holds %d lanes after the fresh run, want the 2 it wrote: %v", len(lanes), lanes)
	}
}

// TestLaneProgressSeesReplicaOnlyRecords is the exec-liveness fix in
// miniature: a lane whose records exist only in the replica (the worker
// streams off-machine; the local tail is empty) still shows progress, so
// the liveness poll cannot falsely declare the shard hung.
func TestLaneProgressSeesReplicaOnlyRecords(t *testing.T) {
	spec := testSpec()
	meta, err := specGridMeta(spec)
	if err != nil {
		t.Fatal(err)
	}
	ct := &MirrorTransport{Dir: t.TempDir()}
	if err := ct.Bind(spec, meta); err != nil {
		t.Fatal(err)
	}
	lane := "shard_0_of_2.jsonl"
	for _, idx := range []int{0, 2} {
		if err := ct.Publish(lane, laneRecord(meta, idx, fakeCell(meta.ids[idx]))); err != nil {
			t.Fatal(err)
		}
	}

	localPath := filepath.Join(t.TempDir(), lane) // never written
	if done := laneProgress(localPath, meta, nil); len(done) != 0 {
		t.Fatalf("no transport, no local file: %d records, want 0", len(done))
	}
	done := laneProgress(localPath, meta, ct)
	if len(done) != 2 {
		t.Fatalf("laneProgress saw %d records via the replica, want 2", len(done))
	}
}

// TestMirrorToleratesTornReplicaFile: a mirror file with a sheared final
// line (a cruder copier than our atomic writer) still loads its valid
// prefix and keeps accepting publishes.
func TestMirrorToleratesTornReplicaFile(t *testing.T) {
	spec := testSpec()
	meta, err := specGridMeta(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lane := "shard_0_of_2.jsonl"
	good, err := json.Marshal(laneRecord(meta, 0, fakeCell(meta.ids[0])))
	if err != nil {
		t.Fatal(err)
	}
	torn, err := json.Marshal(laneRecord(meta, 2, fakeCell(meta.ids[2])))
	if err != nil {
		t.Fatal(err)
	}
	content := string(good) + "\n" + string(torn[:len(torn)/2])
	if err := os.WriteFile(filepath.Join(dir, lane), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	ct := &MirrorTransport{Dir: dir}
	if err := ct.Bind(spec, meta); err != nil {
		t.Fatal(err)
	}
	done, err := ct.Load(lane)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 {
		t.Fatalf("torn mirror loaded %d records, want the 1 valid one", len(done))
	}
	if err := ct.Publish(lane, laneRecord(meta, 4, fakeCell(meta.ids[4]))); err != nil {
		t.Fatal(err)
	}
	done, err = ct.Load(lane)
	if err != nil || len(done) != 2 {
		t.Fatalf("publish after torn load: %d records, err %v", len(done), err)
	}
}

func TestParseCheckpointTransport(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"", "fs"},
		{"fs", "fs"},
		{"mirror:/tmp/m", "mirror:/tmp/m"},
		{"store:/tmp/s", "store"},
		{"store:http://localhost:1", "store"},
	} {
		ct, err := ParseCheckpointTransport(tc.in)
		if err != nil {
			t.Fatalf("ParseCheckpointTransport(%q): %v", tc.in, err)
		}
		if ct.String() != tc.want {
			t.Fatalf("ParseCheckpointTransport(%q) = %s, want %s", tc.in, ct, tc.want)
		}
	}
	if ct, _ := ParseCheckpointTransport("store:http://h"); ct != nil {
		if _, ok := ct.(*StoreTransport).Store.(*serve.HTTPStore); !ok {
			t.Fatalf("store:http://… built %T, want HTTPStore", ct.(*StoreTransport).Store)
		}
	}
	for _, bad := range []string{"mirror:", "store:", "rsync:/x", "fsx"} {
		if _, err := ParseCheckpointTransport(bad); err == nil {
			t.Fatalf("ParseCheckpointTransport(%q) accepted", bad)
		}
	}
}

func TestParseStoreInjections(t *testing.T) {
	injs, err := ParseStoreInjections("outage:3, torn:2 ,dup")
	if err != nil {
		t.Fatal(err)
	}
	want := []StoreInjection{
		{Fault: "outage", N: 3},
		{Fault: "torn", N: 2},
		{Fault: "dup", N: 1},
	}
	if len(injs) != len(want) {
		t.Fatalf("parsed %d injections, want %d", len(injs), len(want))
	}
	for i := range want {
		if injs[i] != want[i] {
			t.Fatalf("injection %d = %+v, want %+v", i, injs[i], want[i])
		}
	}
	for _, bad := range []string{"outage:x", "flood:1"} {
		if _, err := ParseStoreInjections(bad); err == nil {
			t.Fatalf("ParseStoreInjections(%q) accepted", bad)
		}
	}

	st := &StoreTransport{Store: serve.NewMemStore()}
	if err := ApplyStoreInjections(st, injs); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Store.(*DuplicatePutStore); !ok {
		t.Fatalf("last directive did not wrap outermost: %T", st.Store)
	}
	if err := ApplyStoreInjections(&FSTransport{}, injs); err == nil {
		t.Fatal("store injections accepted on the fs transport")
	}
}
