// Package dispatch is the fault-tolerant fleet orchestrator for sweep
// grids: it fans shard specs out over pluggable worker transports
// (in-process pool, subprocess, HTTP daemon), monitors per-shard
// liveness through the cell event stream, and recovers from failure
// automatically — crashed shards re-dispatch with capped exponential
// backoff and resume from their surviving lane file, stragglers are
// hedged to a second worker with first-writer-wins dedup by cell index,
// and repeat offenders are quarantined so the sweep degrades gracefully
// down to one healthy worker. On completion the lane files pass the
// MergeSweeps coverage/seed verification, so the final report is
// byte-identical to an unsharded run no matter how many failures
// occurred along the way.
package dispatch

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"time"

	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/xrand"
)

// Worker is one dispatch target: a transport plus a stable name for
// logs, strikes and quarantine decisions.
type Worker struct {
	Name      string
	Transport Transport
}

// Config configures a dispatch run.
type Config struct {
	// Spec is the grid to execute (matrix or sweep kind). The
	// dispatcher owns the shard decomposition: any shard/num_shards/
	// jsonl/resume in the spec's sweep section is replaced per lane,
	// exactly as `advrepro run -shard i/n -jsonl f` overrides them.
	Spec exp.Spec
	// Workers are the dispatch targets (at least one).
	Workers []Worker
	// NumShards is the grid decomposition width (0 = len(Workers)).
	// More shards than workers gives finer-grained recovery units.
	NumShards int
	// Dir holds the per-shard lane files (shard_<s>_of_<n>.jsonl and
	// their _hedge twins). Created if missing.
	Dir string
	// Resume recovers a crashed dispatch session: surviving lane files
	// are validated against the grid and their cells are not re-run.
	// Without it, stale lane files are removed first. With a checkpoint
	// transport configured, lanes surviving only in the replica are
	// reconstructed locally first — resume works even when Dir is empty.
	Resume bool
	// Checkpoints is the lane durability backend (nil = FSTransport:
	// local files only). Every observed cell record is also published
	// through it, and lanes reconcile with the replica at resume and
	// merge time.
	Checkpoints CheckpointTransport
	// Heartbeat is the per-attempt liveness timeout: an attempt that
	// emits no event for this long is presumed hung, killed, and its
	// shard re-dispatched (default 2m).
	Heartbeat time.Duration
	// MaxAttempts bounds per-shard dispatch attempts before the run
	// fails (default 4).
	MaxAttempts int
	// BackoffBase/BackoffMax shape the capped exponential re-dispatch
	// backoff (defaults 250ms / 30s); jitter of ±50% is applied.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeAfter is the completed-shard fraction after which straggler
	// hedging arms (default 0.5); 1 or more disables hedging.
	HedgeAfter float64
	// HedgeFactor: a running shard is a straggler once its elapsed time
	// exceeds the median completed-shard duration times this factor
	// (default 2.0).
	HedgeFactor float64
	// MaxStrikes quarantines a worker after this many failed attempts,
	// unless it is the last healthy one (default 2).
	MaxStrikes int
	// Seed feeds the backoff jitter (default 1). The jitter never
	// affects results — only timing.
	Seed int64
	// Observer receives the merged progress stream: one run-start, a
	// deduplicated cell-done per grid cell (Done counts fresh cells),
	// cell-start/log pass-through, one run-done.
	Observer eval.Observer
	// Logf narrates dispatch decisions (retries, hedges, quarantines).
	Logf func(format string, args ...any)
}

// Report is the outcome of a dispatch run.
type Report struct {
	// Matrix is the merged, fully verified grid — bit-identical to an
	// unsharded run of the same spec.
	Matrix eval.MatrixReport
	// Text and CSV render Matrix exactly as `advrepro run` would.
	Text string
	CSV  string

	Shards      int      // shard count the grid was decomposed into
	Resumed     int      // cells recovered from lane files at startup
	Fetched     int      // cells recovered from the checkpoint replica
	Retries     int      // failed attempts that were re-dispatched
	Hedges      int      // straggler hedges launched
	Quarantined []string // workers benched for repeat failures
	Files       []string // lane files that contributed cells to the merge
	Transport   string   // checkpoint transport the lanes replicated through
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.NumShards <= 0 {
		cfg.NumShards = len(cfg.Workers)
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 250 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 30 * time.Second
	}
	if cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = 0.5
	}
	if cfg.HedgeFactor <= 0 {
		cfg.HedgeFactor = 2.0
	}
	if cfg.MaxStrikes <= 0 {
		cfg.MaxStrikes = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Checkpoints == nil {
		cfg.Checkpoints = &FSTransport{}
	}
	return cfg
}

// shardState tracks one shard's recovery lifecycle.
type shardState struct {
	index     int
	cellIdx   []int // global grid indices owned by this shard
	lane      string
	hedgeLn   string
	attempts  int // failed attempts so far
	lastErr   error
	notBefore time.Time
	running   []*attempt
	hedged    bool
	complete  bool
	started   time.Time // first attempt launch
	duration  time.Duration
}

// workerState tracks one worker's health.
type workerState struct {
	w           Worker
	busy        bool
	strikes     int
	quarantined bool
}

// attempt is one transport execution of one shard.
type attempt struct {
	shard    *shardState
	worker   *workerState
	hedge    bool
	cancel   context.CancelFunc
	lastBeat time.Time // guarded by dispatcher.mu
	// superseded marks an attempt cancelled because its shard finished
	// elsewhere: its failure is expected and earns no strike.
	superseded bool
	// timedOut records a heartbeat kill for the failure message.
	timedOut bool
}

type attemptResult struct {
	a   *attempt
	err error
}

type dispatcher struct {
	cfg  Config
	meta gridMeta

	mu      sync.Mutex
	cells   map[int]eval.MatrixCell
	fresh   int
	fatal   error
	shards  []*shardState
	workers []*workerState
	retries int
	hedges  int
	fetched int
	rng     *xrand.RNG
}

// Run executes the grid across the configured workers and returns the
// merged, verified report.
func Run(ctx context.Context, c Config) (*Report, error) {
	if len(c.Workers) == 0 {
		return nil, fmt.Errorf("dispatch: no workers configured")
	}
	if c.Dir == "" {
		return nil, fmt.Errorf("dispatch: lane directory required")
	}
	cfg := c.withDefaults()

	spec := cfg.Spec
	if spec.Kind == exp.KindMatrix {
		spec.Kind = exp.KindSweep // same grid, checkpointable decomposition
	}
	if spec.Kind != exp.KindSweep {
		return nil, fmt.Errorf("dispatch: spec kind %q has no grid to shard", cfg.Spec.Kind)
	}
	cfg.Spec = spec
	meta, err := specGridMeta(spec)
	if err != nil {
		return nil, err
	}
	if cfg.NumShards > len(meta.ids) {
		cfg.NumShards = len(meta.ids)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("dispatch: lane dir: %w", err)
	}
	if err := cfg.Checkpoints.Bind(spec, meta); err != nil {
		return nil, err
	}

	d := &dispatcher{
		cfg:   cfg,
		meta:  meta,
		cells: map[int]eval.MatrixCell{},
		rng:   xrand.New(cfg.Seed),
	}
	for i, w := range cfg.Workers {
		if w.Name == "" {
			w.Name = fmt.Sprintf("worker%d", i)
		}
		d.workers = append(d.workers, &workerState{w: w})
	}
	for s := 0; s < cfg.NumShards; s++ {
		st := &shardState{
			index:   s,
			lane:    filepath.Join(cfg.Dir, fmt.Sprintf("shard_%d_of_%d.jsonl", s, cfg.NumShards)),
			hedgeLn: filepath.Join(cfg.Dir, fmt.Sprintf("shard_%d_of_%d_hedge.jsonl", s, cfg.NumShards)),
		}
		for _, id := range meta.ids {
			if id.Index%cfg.NumShards == s {
				st.cellIdx = append(st.cellIdx, id.Index)
			}
		}
		d.shards = append(d.shards, st)
	}

	resumed, err := d.recoverLanes()
	if err != nil {
		return nil, err
	}

	d.observe(eval.Event{Kind: eval.EventRunStart, Total: len(meta.ids)})
	runErr := d.loop(ctx)
	d.observe(eval.Event{Kind: eval.EventRunDone, Total: len(meta.ids), Err: runErr})
	if runErr != nil {
		return nil, runErr
	}

	rep, files, err := d.merge()
	if err != nil {
		return nil, err
	}
	var quarantined []string
	for _, w := range d.workers {
		if w.quarantined {
			quarantined = append(quarantined, w.w.Name)
		}
	}
	return &Report{
		Matrix: rep, Text: rep.Format(), CSV: rep.CSV(),
		Shards: cfg.NumShards, Resumed: resumed, Fetched: d.fetched,
		Retries: d.retries, Hedges: d.hedges,
		Quarantined: quarantined, Files: files,
		Transport: cfg.Checkpoints.String(),
	}, nil
}

// recoverLanes scans lane files before dispatching: with Resume, each
// lane first reconciles with its checkpoint replica (so lanes surviving
// only off-machine are rebuilt locally), then its cells are validated,
// prefilled, and fully-covered shards are marked complete; without
// Resume, stale lanes are deleted — local file AND replica — so the run
// starts clean.
func (d *dispatcher) recoverLanes() (int, error) {
	if !d.cfg.Resume {
		for _, s := range d.shards {
			for _, p := range []string{s.lane, s.hedgeLn} {
				if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
					return 0, fmt.Errorf("dispatch: clear lane %s: %w", p, err)
				}
				if err := d.cfg.Checkpoints.Clear(filepath.Base(p)); err != nil {
					return 0, fmt.Errorf("dispatch: clear replica lane %s: %w", filepath.Base(p), err)
				}
			}
		}
		return 0, nil
	}
	if lanes, err := d.cfg.Checkpoints.List(); err != nil {
		return 0, fmt.Errorf("dispatch: resume: %w", err)
	} else if len(lanes) > 0 {
		d.logf("dispatch: %s replica holds %d lane(s)", d.cfg.Checkpoints, len(lanes))
	}
	resumed := 0
	for _, s := range d.shards {
		for _, p := range []string{s.lane, s.hedgeLn} {
			fetched, err := syncLane(d.cfg.Checkpoints, filepath.Base(p), p, d.meta)
			if err != nil {
				return 0, fmt.Errorf("dispatch: resume: %w", err)
			}
			d.fetched += fetched
			done, _, err := eval.LoadSweepCheckpoint(p, d.meta.ids, d.meta.preset, d.meta.duration, d.meta.dt)
			if err != nil {
				return 0, fmt.Errorf("dispatch: resume: %w", err)
			}
			// Fold in grid order so a divergence between lane files
			// always reports the same (lowest) cell.
			idxs := make([]int, 0, len(done))
			for idx := range done {
				idxs = append(idxs, idx)
			}
			sort.Ints(idxs)
			for _, idx := range idxs {
				cell := done[idx]
				if prev, dup := d.cells[idx]; dup {
					if !reflect.DeepEqual(prev, cell) {
						return 0, fmt.Errorf("dispatch: resume: cell %d differs between lane files — lanes from diverging runs?", idx)
					}
					continue
				}
				d.cells[idx] = cell
				resumed++
			}
		}
		if d.shardCovered(s) {
			s.complete = true
		}
	}
	if resumed > 0 {
		d.logf("dispatch: resumed %d cells from %s (%d fetched from the %s replica)",
			resumed, d.cfg.Dir, d.fetched, d.cfg.Checkpoints)
	}
	return resumed, nil
}

// shardCovered reports whether every cell of s is in the global map.
// Callers hold no lock during init; the loop calls it under mu.
func (d *dispatcher) shardCovered(s *shardState) bool {
	for _, idx := range s.cellIdx {
		if _, ok := d.cells[idx]; !ok {
			return false
		}
	}
	return true
}

// loop is the scheduling core: launch attempts, watch liveness, hedge
// stragglers, retire failures with backoff, until every shard completes
// or the run becomes unwinnable.
func (d *dispatcher) loop(ctx context.Context) error {
	results := make(chan attemptResult, 4*len(d.workers)+4)
	outstanding := 0

	tick := d.cfg.Heartbeat / 4
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	drain := func() {
		d.mu.Lock()
		for _, s := range d.shards {
			for _, a := range s.running {
				a.superseded = true
				a.cancel()
			}
		}
		d.mu.Unlock()
		for outstanding > 0 {
			r := <-results
			outstanding--
			_ = r
		}
	}

	for {
		d.mu.Lock()
		fatal := d.fatal
		allDone := true
		for _, s := range d.shards {
			if !s.complete {
				allDone = false
				break
			}
		}
		d.mu.Unlock()
		if fatal != nil {
			drain()
			return fatal
		}
		if allDone && outstanding == 0 {
			return nil
		}
		if allDone {
			drain()
			return nil
		}

		launched, err := d.schedule(ctx, results)
		if err != nil {
			drain()
			return err
		}
		outstanding += launched

		select {
		case r := <-results:
			outstanding--
			d.handleResult(r)
		case <-ticker.C:
			d.checkLiveness()
		case <-ctx.Done():
			drain()
			return ctx.Err()
		}
	}
}

// schedule launches work that is due: primary attempts for idle
// incomplete shards past their backoff, and hedge attempts for armed
// stragglers. Returns how many attempts were launched, or an error when
// a shard has exhausted its attempt budget.
func (d *dispatcher) schedule(ctx context.Context, results chan<- attemptResult) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now() //advlint:wallclock-ok retry/backoff scheduling only; never feeds results
	launched := 0

	for _, s := range d.shards {
		if s.complete || len(s.running) > 0 {
			continue
		}
		if s.attempts >= d.cfg.MaxAttempts {
			return launched, fmt.Errorf("dispatch: shard %d failed %d attempts, giving up: %w", s.index, s.attempts, s.lastErr)
		}
		if now.Before(s.notBefore) {
			continue
		}
		w := d.pickWorkerLocked(nil)
		if w == nil {
			continue // every healthy worker is busy; wait
		}
		d.launchLocked(ctx, s, w, false, results)
		launched++
	}

	// Hedging: once enough shards have completed to establish a typical
	// duration, shards running far past the median get a second lane on
	// a different worker — first writer wins per cell.
	if deadline, armed := d.hedgeDeadlineLocked(); armed {
		for _, s := range d.shards {
			if s.complete || s.hedged || len(s.running) != 1 || s.running[0].hedge {
				continue
			}
			if now.Sub(s.started) <= deadline {
				continue
			}
			w := d.pickWorkerLocked(s.running[0].worker)
			if w == nil {
				continue
			}
			s.hedged = true
			d.hedges++
			d.logf("dispatch: shard %d straggling (%.1fs > %.1fs); hedging to %s",
				s.index, now.Sub(s.started).Seconds(), deadline.Seconds(), w.w.Name)
			d.launchLocked(ctx, s, w, true, results)
			launched++
		}
	}
	return launched, nil
}

// hedgeDeadlineLocked computes the straggler threshold: armed once the
// completed-shard fraction reaches HedgeAfter, with the deadline at
// median completed duration × HedgeFactor.
func (d *dispatcher) hedgeDeadlineLocked() (time.Duration, bool) {
	if d.cfg.HedgeAfter >= 1 || len(d.workers) < 2 {
		return 0, false
	}
	var durations []time.Duration
	for _, s := range d.shards {
		if s.complete && s.duration > 0 {
			durations = append(durations, s.duration)
		}
	}
	if float64(len(durations)) < d.cfg.HedgeAfter*float64(len(d.shards)) || len(durations) == 0 {
		return 0, false
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	median := durations[len(durations)/2]
	deadline := time.Duration(float64(median) * d.cfg.HedgeFactor)
	// Never hedge below one heartbeat: sub-heartbeat silence is the
	// liveness monitor's call, and a near-zero median (tiny shards)
	// would otherwise hedge everything.
	if deadline < d.cfg.Heartbeat {
		deadline = d.cfg.Heartbeat
	}
	return deadline, true
}

// pickWorkerLocked selects a free, healthy worker (fewest strikes wins;
// avoid, when set, excludes the straggler's own worker). When every free
// worker is quarantined and none is healthy-but-busy, the least-bad
// quarantined worker is drafted — graceful degradation beats deadlock.
func (d *dispatcher) pickWorkerLocked(avoid *workerState) *workerState {
	var best *workerState
	for _, w := range d.workers {
		if w.busy || w == avoid || w.quarantined {
			continue
		}
		if best == nil || w.strikes < best.strikes {
			best = w
		}
	}
	if best != nil {
		return best
	}
	// No healthy free worker. If a healthy worker exists but is busy,
	// wait for it; only when ALL workers are quarantined draft one back.
	for _, w := range d.workers {
		if !w.quarantined {
			return nil // healthy capacity exists; be patient
		}
	}
	for _, w := range d.workers {
		if w.busy || w == avoid {
			continue
		}
		if best == nil || w.strikes < best.strikes {
			best = w
		}
	}
	if best != nil {
		d.logf("dispatch: all workers quarantined; drafting %s back", best.w.Name)
	}
	return best
}

// launchLocked starts one attempt goroutine. Callers hold d.mu.
func (d *dispatcher) launchLocked(ctx context.Context, s *shardState, w *workerState, hedge bool, results chan<- attemptResult) {
	actx, cancel := context.WithCancel(ctx)
	//advlint:wallclock-ok heartbeat liveness timestamps only; never feed results
	a := &attempt{shard: s, worker: w, hedge: hedge, cancel: cancel, lastBeat: time.Now()}
	w.busy = true
	s.running = append(s.running, a)
	if s.started.IsZero() {
		s.started = time.Now() //advlint:wallclock-ok hedge straggler timing only; never feeds results
	}

	spec := d.shardSpec(s, hedge)
	obs := eval.ObserverFunc(func(ev eval.Event) { d.onEvent(a, ev) })
	lane := s.lane
	if hedge {
		lane = s.hedgeLn
	}
	d.logf("dispatch: shard %d -> %s (attempt %d%s, lane %s)",
		s.index, w.w.Name, s.attempts+1, map[bool]string{true: ", hedge"}[hedge], filepath.Base(lane))
	go func() {
		err := w.w.Transport.Run(actx, spec, obs)
		cancel()
		results <- attemptResult{a: a, err: err}
	}()
}

// shardSpec derives the spec one attempt executes: the grid spec with
// the dispatcher's own shard decomposition and lane file. Resume is
// always on — a retry must pick up the surviving tail, and openLane /
// the sweep runtime repair torn tails under Resume.
func (d *dispatcher) shardSpec(s *shardState, hedge bool) exp.Spec {
	spec := d.cfg.Spec
	lane := s.lane
	if hedge {
		lane = s.hedgeLn
	}
	spec.Sweep = &exp.SweepSpec{
		Shard: s.index, NumShards: d.cfg.NumShards,
		JSONL: lane, Resume: true,
	}
	return spec
}

// onEvent is the per-attempt observer: every event refreshes the
// attempt's heartbeat; cell completions dedup into the global map
// (first writer wins) and forward to the configured observer with a
// deduplicated Done counter.
func (d *dispatcher) onEvent(a *attempt, ev eval.Event) {
	d.mu.Lock()
	a.lastBeat = time.Now() //advlint:wallclock-ok heartbeat liveness timestamp only; never feeds results
	switch ev.Kind {
	case eval.EventCellDone:
		if ev.Result == nil {
			d.mu.Unlock()
			return
		}
		idx := ev.Cell.Index
		if idx < 0 || idx >= len(d.meta.ids) {
			d.fatal = fmt.Errorf("dispatch: worker %s reported cell %d outside the grid", a.worker.w.Name, idx)
			d.mu.Unlock()
			return
		}
		if prev, dup := d.cells[idx]; dup {
			// A hedged or resumed cell arriving again must be
			// bit-identical — anything else is a determinism violation
			// that would silently corrupt the merged grid.
			if !reflect.DeepEqual(prev, *ev.Result) {
				d.fatal = fmt.Errorf("dispatch: cell %d from %s differs from the first-written result — non-deterministic worker?", idx, a.worker.w.Name)
			}
			d.mu.Unlock()
			return
		}
		d.cells[idx] = *ev.Result
		d.fresh++
		out := eval.Event{
			Kind: eval.EventCellDone, Total: len(d.meta.ids), Done: d.fresh,
			Cell: d.meta.ids[idx], Result: ev.Result,
		}
		lane := a.shard.lane
		if a.hedge {
			lane = a.shard.hedgeLn
		}
		d.mu.Unlock()
		// Replicate outside the lock: the store transport may sleep
		// through a retry window, and the other workers' events must
		// keep flowing while it does.
		if err := d.cfg.Checkpoints.Publish(filepath.Base(lane), laneRecord(d.meta, idx, *ev.Result)); err != nil {
			d.mu.Lock()
			if d.fatal == nil {
				d.fatal = err
			}
			d.mu.Unlock()
		}
		d.observe(out)
		return
	case eval.EventCellStart, eval.EventLog:
		d.mu.Unlock()
		d.observe(ev)
		return
	}
	d.mu.Unlock()
}

// handleResult retires one finished attempt: completion closes the
// shard (and supersedes its sibling attempts); failure earns the worker
// a strike and schedules the shard's re-dispatch with backoff.
func (d *dispatcher) handleResult(r attemptResult) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a := r.a
	s := a.shard
	a.worker.busy = false
	for i, run := range s.running {
		if run == a {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}

	if !s.complete && d.shardCovered(s) {
		s.complete = true
		s.duration = time.Since(s.started)
		for _, sib := range s.running {
			sib.superseded = true
			sib.cancel()
		}
		return
	}
	if s.complete || a.superseded {
		return // shard already done elsewhere; this attempt owes nothing
	}

	err := r.err
	if err == nil {
		err = fmt.Errorf("transport returned without completing shard %d", s.index)
	}
	if a.timedOut {
		err = fmt.Errorf("no progress for %v (heartbeat timeout): %w", d.cfg.Heartbeat, err)
	}
	s.attempts++
	s.lastErr = err
	d.retries++
	d.strikeLocked(a.worker, err)
	if s.attempts < d.cfg.MaxAttempts {
		delay := d.backoff(s.attempts)
		s.notBefore = time.Now().Add(delay) //advlint:wallclock-ok retry backoff scheduling only; never feeds results
		d.logf("dispatch: shard %d attempt %d failed on %s: %v; retrying in %v",
			s.index, s.attempts, a.worker.w.Name, err, delay.Round(time.Millisecond))
	}
}

// strikeLocked records a failure against a worker, quarantining repeat
// offenders unless it is the last healthy worker.
func (d *dispatcher) strikeLocked(w *workerState, err error) {
	w.strikes++
	if w.quarantined || w.strikes < d.cfg.MaxStrikes {
		return
	}
	healthy := 0
	for _, o := range d.workers {
		if !o.quarantined {
			healthy++
		}
	}
	if healthy <= 1 {
		d.logf("dispatch: %s has %d strikes but is the last healthy worker; keeping it", w.w.Name, w.strikes)
		return
	}
	w.quarantined = true
	d.logf("dispatch: quarantining %s after %d strikes (last: %v)", w.w.Name, w.strikes, err)
}

// checkLiveness kills attempts whose event stream has gone silent past
// the heartbeat timeout; the cancellation surfaces as the attempt's
// failure and rides the normal retry path.
func (d *dispatcher) checkLiveness() {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now() //advlint:wallclock-ok heartbeat liveness check only; never feeds results
	for _, s := range d.shards {
		for _, a := range s.running {
			if a.timedOut || now.Sub(a.lastBeat) <= d.cfg.Heartbeat {
				continue
			}
			a.timedOut = true
			d.logf("dispatch: shard %d on %s silent for %v; killing attempt", s.index, a.worker.w.Name, d.cfg.Heartbeat)
			a.cancel()
		}
	}
}

// backoff computes the capped exponential re-dispatch delay with ±50%
// deterministic jitter.
func (d *dispatcher) backoff(attempts int) time.Duration {
	delay := d.cfg.BackoffBase
	for i := 1; i < attempts && delay < d.cfg.BackoffMax; i++ {
		delay *= 2
	}
	if delay > d.cfg.BackoffMax {
		delay = d.cfg.BackoffMax
	}
	return time.Duration(float64(delay) * (0.5 + 0.5*d.rng.Float64()))
}

// merge joins every contributing lane file through the MergeSweeps
// coverage/seed verification into the final grid. Each lane first
// reconciles with the checkpoint replica — replica-only records (a
// worker whose local writes were lost) land in the local file, local-
// only records publish out, and a final Sync makes the replica durable.
func (d *dispatcher) merge() (eval.MatrixReport, []string, error) {
	var files []string
	for _, s := range d.shards {
		for _, p := range []string{s.lane, s.hedgeLn} {
			fetched, err := syncLane(d.cfg.Checkpoints, filepath.Base(p), p, d.meta)
			if err != nil {
				return eval.MatrixReport{}, nil, fmt.Errorf("dispatch: merge: %w", err)
			}
			d.fetched += fetched
			if err := d.cfg.Checkpoints.Sync(filepath.Base(p)); err != nil {
				return eval.MatrixReport{}, nil, fmt.Errorf("dispatch: merge: %w", err)
			}
			done, _, err := eval.LoadSweepCheckpoint(p, d.meta.ids, d.meta.preset, d.meta.duration, d.meta.dt)
			if err != nil {
				return eval.MatrixReport{}, nil, fmt.Errorf("dispatch: probe lane: %w", err)
			}
			if len(done) > 0 {
				files = append(files, p)
			}
		}
	}
	rep, err := eval.MergeSweeps(d.meta.ids, d.meta.preset, d.meta.duration, d.meta.dt, files)
	if err != nil {
		return eval.MatrixReport{}, nil, fmt.Errorf("dispatch: merge: %w", err)
	}
	return rep, files, nil
}

func (d *dispatcher) observe(ev eval.Event) { emit(d.cfg.Observer, ev) }

func (d *dispatcher) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// emit forwards ev to obs when one is subscribed.
func emit(obs eval.Observer, ev eval.Event) {
	if obs != nil {
		obs.Observe(ev)
	}
}
