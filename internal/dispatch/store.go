package dispatch

// StoreTransport: lane durability over a content-addressed object store.
// Published records buffer into chunked segments and upload under
// lanes/<grid-hash>/<lane>/seg_N, where <grid-hash> is the canonical
// spec hash of the dispatched grid (shard selection stripped) — so every
// lane of one dispatch shares a prefix, a different grid can never
// collide with it, and a stale replica is structurally invisible before
// it is even validated. Every store operation runs under capped jittered
// retry, so a transiently unavailable store (daemon restart, network
// blip) delays the sweep instead of failing it; a store that stays down
// past the budget surfaces as an error, never as silent data loss.
//
// Fetching reassembles segments in order, tolerating the faults an
// at-least-once uploader produces: a torn segment (partial upload that
// reported success) contributes its valid prefix and costs only the
// damaged records' recomputation; duplicate segment delivery
// deduplicates by grid index; records from a different run configuration
// under our prefix are rejected loudly.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/serve"
	"repro/internal/xrand"
)

// StoreTransport is the object-store CheckpointTransport.
type StoreTransport struct {
	// Store is the blob backend (serve.DirStore, serve.HTTPStore, or a
	// fault-injection wrapper around either).
	Store serve.ObjectStore
	// SegmentBytes is the upload threshold: a lane's buffered records
	// flush as one segment object once they reach this size (default
	// 64 KiB). Sync flushes regardless.
	SegmentBytes int
	// Retries bounds attempts per store operation (default 4).
	Retries int
	// RetryBase/RetryMax shape the capped exponential retry backoff
	// (defaults 50ms / 2s); jitter of ±50% is applied.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed feeds the retry jitter (default 1); timing only.
	Seed int64
	// Logf narrates retries (nil = silent).
	Logf func(format string, args ...any)

	mu     sync.Mutex
	meta   gridMeta
	prefix string
	rng    *xrand.RNG
	lanes  map[string]*storeLane
}

// storeLane is the upload state of one lane.
type storeLane struct {
	buf     bytes.Buffer
	seen    map[int]bool
	nextSeg int
}

// String implements CheckpointTransport.
func (t *StoreTransport) String() string { return "store" }

// Bind implements CheckpointTransport: derives the dispatch's
// content-address prefix from the grid spec.
func (t *StoreTransport) Bind(spec exp.Spec, meta gridMeta) error {
	if t.Store == nil {
		return fmt.Errorf("dispatch: store transport needs an object store")
	}
	grid := spec
	grid.Sweep = nil // the prefix addresses the GRID; lanes carry the shards
	hash, err := exp.SpecHash(grid)
	if err != nil {
		return fmt.Errorf("dispatch: store transport: %w", err)
	}
	t.mu.Lock()
	t.meta = meta
	t.prefix = "lanes/" + hash + "/"
	if t.SegmentBytes <= 0 {
		t.SegmentBytes = 64 << 10
	}
	if t.Retries <= 0 {
		t.Retries = 4
	}
	if t.RetryBase <= 0 {
		t.RetryBase = 50 * time.Millisecond
	}
	if t.RetryMax <= 0 {
		t.RetryMax = 2 * time.Second
	}
	seed := t.Seed
	if seed == 0 {
		seed = 1
	}
	t.rng = xrand.New(seed)
	t.lanes = map[string]*storeLane{}
	t.mu.Unlock()
	return nil
}

// segKey names one segment object.
func (t *StoreTransport) segKey(lane string, seg int) string {
	return fmt.Sprintf("%s%s/seg_%06d", t.prefix, lane, seg)
}

// withRetryLocked runs one store operation under capped jittered
// exponential backoff. Callers hold t.mu; the sleep intentionally holds
// it too — during an outage every publisher is blocked on the same store
// anyway, and serialising them keeps segment numbering coherent.
func (t *StoreTransport) withRetryLocked(op string, f func() error) error {
	var err error
	for attempt := 1; ; attempt++ {
		if err = f(); err == nil {
			return nil
		}
		if attempt >= t.Retries {
			return fmt.Errorf("dispatch: store %s failed after %d attempts: %w", op, attempt, err)
		}
		delay := t.RetryBase
		for i := 1; i < attempt && delay < t.RetryMax; i++ {
			delay *= 2
		}
		if delay > t.RetryMax {
			delay = t.RetryMax
		}
		delay = time.Duration(float64(delay) * (0.5 + 0.5*t.rng.Float64()))
		if t.Logf != nil {
			t.Logf("dispatch: store %s attempt %d failed (%v); retrying in %v", op, attempt, err, delay.Round(time.Millisecond))
		}
		time.Sleep(delay)
	}
}

// fetchLaneLocked reads and validates every stored segment of a lane,
// returning the deduplicated records and the highest segment number seen
// (-1 when the lane has no segments).
func (t *StoreTransport) fetchLaneLocked(lane string) (map[int]eval.MatrixCell, int, error) {
	var keys []string
	err := t.withRetryLocked("list", func() error {
		var lerr error
		keys, lerr = t.Store.List(t.prefix + lane + "/")
		return lerr
	})
	if err != nil {
		return nil, -1, err
	}
	segs := make([]int, 0, len(keys))
	byNum := map[int]string{}
	for _, key := range keys {
		base := key[strings.LastIndexByte(key, '/')+1:]
		numStr, ok := strings.CutPrefix(base, "seg_")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		// Duplicate delivery can land one segment number twice under
		// at-least-once semantics; the map keeps one key, and the record
		// dedup below absorbs the rest.
		if _, dup := byNum[n]; !dup {
			segs = append(segs, n)
			byNum[n] = key
		}
	}
	sort.Ints(segs)

	recs := map[int]eval.MatrixCell{}
	maxSeg := -1
	for _, n := range segs {
		key := byNum[n]
		var data []byte
		err := t.withRetryLocked("get "+key, func() error {
			var gerr error
			data, gerr = t.Store.Get(key)
			return gerr
		})
		if err != nil {
			return nil, -1, err
		}
		// LoadSweepCheckpointBytes gives exactly the semantics a remote
		// segment needs: grid validation per record, hard rejection of
		// stale content, and a torn (partially uploaded) tail degrading
		// to the valid prefix instead of an error.
		done, _, err := eval.LoadSweepCheckpointBytes(data, t.meta.ids, t.meta.preset, t.meta.duration, t.meta.dt)
		if err != nil {
			return nil, -1, fmt.Errorf("dispatch: store segment %s: %w", key, err)
		}
		// Fold in grid order so a divergence between segments always
		// reports the same (lowest) cell.
		idxs := make([]int, 0, len(done))
		for idx := range done {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			cell := done[idx]
			if prev, dup := recs[idx]; dup {
				if !reflect.DeepEqual(prev, cell) {
					return nil, -1, fmt.Errorf("dispatch: store lane %s cell %d differs between segments — replicas from diverging runs?", lane, idx)
				}
				continue
			}
			recs[idx] = cell
		}
		maxSeg = n
	}
	return recs, maxSeg, nil
}

// laneLocked returns the upload state of a lane, discovering existing
// segments (a resumed dispatch continues numbering after them and never
// re-publishes records they hold).
func (t *StoreTransport) laneLocked(lane string) (*storeLane, error) {
	if l, ok := t.lanes[lane]; ok {
		return l, nil
	}
	recs, maxSeg, err := t.fetchLaneLocked(lane)
	if err != nil {
		return nil, err
	}
	l := &storeLane{seen: make(map[int]bool, len(recs)), nextSeg: maxSeg + 1}
	//advlint:ordered-ok map-to-set fold keyed by grid index; order-free
	for idx := range recs {
		l.seen[idx] = true
	}
	t.lanes[lane] = l
	return l, nil
}

// flushLocked uploads a lane's buffered records as the next segment.
func (t *StoreTransport) flushLocked(lane string, l *storeLane) error {
	if l.buf.Len() == 0 {
		return nil
	}
	key := t.segKey(lane, l.nextSeg)
	data := append([]byte(nil), l.buf.Bytes()...)
	if err := t.withRetryLocked("put "+key, func() error { return t.Store.Put(key, data) }); err != nil {
		return err
	}
	l.nextSeg++
	l.buf.Reset()
	return nil
}

// Publish implements CheckpointTransport.
func (t *StoreTransport) Publish(lane string, rec eval.SweepRecord) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, err := t.laneLocked(lane)
	if err != nil {
		return err
	}
	if l.seen[rec.Index] {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("dispatch: store lane %s: %w", lane, err)
	}
	l.buf.Write(line)
	l.buf.WriteByte('\n')
	l.seen[rec.Index] = true
	if l.buf.Len() >= t.SegmentBytes {
		return t.flushLocked(lane, l)
	}
	return nil
}

// Sync implements CheckpointTransport.
func (t *StoreTransport) Sync(lane string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.lanes[lane]
	if !ok {
		return nil // nothing buffered, nothing to flush
	}
	return t.flushLocked(lane, l)
}

// Clear implements CheckpointTransport.
func (t *StoreTransport) Clear(lane string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.lanes, lane)
	var keys []string
	err := t.withRetryLocked("list", func() error {
		var lerr error
		keys, lerr = t.Store.List(t.prefix + lane + "/")
		return lerr
	})
	if err != nil {
		return err
	}
	for _, key := range keys {
		k := key
		if err := t.withRetryLocked("delete "+k, func() error { return t.Store.Delete(k) }); err != nil {
			return err
		}
	}
	return nil
}

// List implements CheckpointTransport.
func (t *StoreTransport) List() ([]string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var keys []string
	err := t.withRetryLocked("list", func() error {
		var lerr error
		keys, lerr = t.Store.List(t.prefix)
		return lerr
	})
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var lanes []string
	for _, key := range keys {
		rest := strings.TrimPrefix(key, t.prefix)
		lane, _, ok := strings.Cut(rest, "/")
		if ok && !seen[lane] {
			seen[lane] = true
			lanes = append(lanes, lane)
		}
	}
	sort.Strings(lanes)
	return lanes, nil
}

// Load implements CheckpointTransport. Only durable (uploaded) records
// are returned; records still buffered for the next segment are by
// definition also in the local lane file the caller reconciles against.
func (t *StoreTransport) Load(lane string) (map[int]eval.MatrixCell, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	recs, _, err := t.fetchLaneLocked(lane)
	return recs, err
}
