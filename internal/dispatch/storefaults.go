package dispatch

// Store-level fault injection: ObjectStore wrappers that manufacture the
// failure classes a remote checkpoint replica suffers — transient
// unavailability, a torn (partially delivered) segment upload that
// reports success, duplicate segment delivery — plus the -injectstore
// grammar that arms them from the CLI. These compose with the transport
// wrappers in faults.go: a worker can be killed mid-shard WHILE its
// store is flaking, and the merged report must still come out
// byte-identical to the unsharded run.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/serve"
)

// OutageStore fails the first Times operations (any kind) with a
// transient error, then passes everything through — the window a store
// daemon restart or network partition opens. The store transport's
// capped jittered retry must ride it out.
type OutageStore struct {
	Inner serve.ObjectStore
	Times int

	mu    sync.Mutex
	fired int
}

func (s *OutageStore) trip() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fired < s.Times {
		s.fired++
		return errInjected{fmt.Sprintf("store unavailable (outage %d/%d)", s.fired, s.Times)}
	}
	return nil
}

// Put implements serve.ObjectStore.
func (s *OutageStore) Put(key string, data []byte) error {
	if err := s.trip(); err != nil {
		return err
	}
	return s.Inner.Put(key, data)
}

// Get implements serve.ObjectStore.
func (s *OutageStore) Get(key string) ([]byte, error) {
	if err := s.trip(); err != nil {
		return nil, err
	}
	return s.Inner.Get(key)
}

// List implements serve.ObjectStore.
func (s *OutageStore) List(prefix string) ([]string, error) {
	if err := s.trip(); err != nil {
		return nil, err
	}
	return s.Inner.List(prefix)
}

// Delete implements serve.ObjectStore.
func (s *OutageStore) Delete(key string) error {
	if err := s.trip(); err != nil {
		return err
	}
	return s.Inner.Delete(key)
}

// TornPutStore stores only the first half of the Nth Put's payload and
// reports success — the partial upload a crashed or lying store client
// leaves behind. The checkpoint load path must degrade the segment to
// its valid prefix and recompute only the sheared records.
type TornPutStore struct {
	Inner serve.ObjectStore
	// N is the 1-based Put call to tear (default 1).
	N int

	mu    sync.Mutex
	calls int
}

// Put implements serve.ObjectStore.
func (s *TornPutStore) Put(key string, data []byte) error {
	s.mu.Lock()
	s.calls++
	n := s.N
	if n <= 0 {
		n = 1
	}
	tear := s.calls == n
	s.mu.Unlock()
	if tear && len(data) > 1 {
		data = data[:len(data)/2]
	}
	return s.Inner.Put(key, data)
}

// Get implements serve.ObjectStore.
func (s *TornPutStore) Get(key string) ([]byte, error) { return s.Inner.Get(key) }

// List implements serve.ObjectStore.
func (s *TornPutStore) List(prefix string) ([]string, error) { return s.Inner.List(prefix) }

// Delete implements serve.ObjectStore.
func (s *TornPutStore) Delete(key string) error { return s.Inner.Delete(key) }

// DuplicatePutStore delivers every segment twice: once under its own
// key and once under the immediately following segment number — the
// at-least-once re-delivery an ambiguous timeout produces. The load
// path must dedup the doubled records by grid index.
type DuplicatePutStore struct {
	Inner serve.ObjectStore
}

// Put implements serve.ObjectStore.
func (s *DuplicatePutStore) Put(key string, data []byte) error {
	if err := s.Inner.Put(key, data); err != nil {
		return err
	}
	if dup, ok := nextSegKey(key); ok {
		return s.Inner.Put(dup, data)
	}
	return nil
}

// nextSegKey maps .../seg_000003 to .../seg_000004; false for keys that
// are not lane segments.
func nextSegKey(key string) (string, bool) {
	i := strings.LastIndex(key, "/seg_")
	if i < 0 {
		return "", false
	}
	n, err := strconv.Atoi(key[i+len("/seg_"):])
	if err != nil {
		return "", false
	}
	return fmt.Sprintf("%s/seg_%06d", key[:i], n+1), true
}

// Get implements serve.ObjectStore.
func (s *DuplicatePutStore) Get(key string) ([]byte, error) { return s.Inner.Get(key) }

// List implements serve.ObjectStore.
func (s *DuplicatePutStore) List(prefix string) ([]string, error) { return s.Inner.List(prefix) }

// Delete implements serve.ObjectStore.
func (s *DuplicatePutStore) Delete(key string) error { return s.Inner.Delete(key) }

// StoreInjection is one parsed -injectstore directive.
type StoreInjection struct {
	Fault string // outage | torn | dup
	N     int
}

// ParseStoreInjections parses the -injectstore grammar: comma-separated
// fault[:N] directives, e.g. "outage:3,torn:1,dup". An empty (or
// all-whitespace) string means no injections; anything else must parse
// exactly — empty directives between commas, a repeated fault, and
// non-digit count tokens are errors, not silently skipped.
func ParseStoreInjections(s string) ([]StoreInjection, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	seen := make(map[string]bool)
	var out []StoreInjection
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("dispatch: bad -injectstore %q: empty directive (stray comma)", s)
		}
		fault, nStr, hasN := strings.Cut(part, ":")
		switch fault {
		case "outage", "torn", "dup":
		default:
			return nil, fmt.Errorf("dispatch: bad -injectstore %q: unknown fault %q (want outage|torn|dup)", part, fault)
		}
		inj := StoreInjection{Fault: fault, N: 1}
		if hasN {
			n, err := parseDigits(nStr)
			if err != nil {
				return nil, fmt.Errorf("dispatch: bad -injectstore %q: count %q (want digits)", part, nStr)
			}
			inj.N = n
		}
		if seen[fault] {
			return nil, fmt.Errorf("dispatch: bad -injectstore %q: duplicate directive %s", s, fault)
		}
		seen[fault] = true
		out = append(out, inj)
	}
	return out, nil
}

// ApplyStoreInjections wraps a store transport's backing ObjectStore
// with the corresponding fault wrappers, in directive order. Only the
// store transport has a blob backend to fault; other transports reject
// the flag.
func ApplyStoreInjections(ct CheckpointTransport, injs []StoreInjection) error {
	if len(injs) == 0 {
		return nil
	}
	st, ok := ct.(*StoreTransport)
	if !ok {
		return fmt.Errorf("dispatch: -injectstore needs the store transport, not %s", ct)
	}
	for _, inj := range injs {
		switch inj.Fault {
		case "outage":
			st.Store = &OutageStore{Inner: st.Store, Times: inj.N}
		case "torn":
			st.Store = &TornPutStore{Inner: st.Store, N: inj.N}
		case "dup":
			st.Store = &DuplicatePutStore{Inner: st.Store}
		}
	}
	return nil
}
