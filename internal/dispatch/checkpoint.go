package dispatch

// Checkpoint transports: the lane durability layer. The dispatcher's
// worker transports persist finished cells to LOCAL lane files — that is
// what survives a process crash. A CheckpointTransport decides what
// survives a MACHINE crash: every fresh cell record the dispatcher
// observes is also published through the transport, and at resume and
// merge time the local file and the transport replica are reconciled
// (syncLane), so a dispatch whose lane data exists only off-machine is
// reconstructed without recomputing a single finished cell.
//
// Three implementations cover the durability ladder:
//
//   - FSTransport: no replication — the local filesystem is the only
//     copy. The PR 7 behavior, byte for byte.
//   - MirrorTransport: every record streams into a second directory tree
//     with atomic temp+rename publication — the rsync/scp stand-in. The
//     mirror file is always a complete record set (the writer can never
//     tear it), so a worker's lost disk is recoverable from the mirror.
//   - StoreTransport (store.go): chunked lane segments in a
//     content-addressed object store keyed by grid spec hash + lane +
//     segment, backed by a directory or a serve daemon — the true
//     off-machine path, with capped jittered retry around every store
//     operation.
//
// Whatever the backend, the byte-identity gate holds: replica records
// are validated against the grid before they are trusted, torn remote
// content degrades to recomputation (never corruption), and stale
// replicas (a different grid, preset or run configuration) are rejected
// loudly.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"

	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/serve"
)

// CheckpointTransport is the durability backend for shard lane files.
// Lanes are addressed by base name (shard_i_of_n.jsonl and hedge twins);
// implementations must be safe for concurrent use — the dispatcher
// publishes from several worker goroutines at once.
type CheckpointTransport interface {
	// String names the transport configuration for logs and the report.
	String() string
	// Bind prepares the transport for one dispatch session over the
	// given grid: the store transport derives its content-address prefix
	// from the spec here, the mirror creates its tree. Must be called
	// before any other method.
	Bind(spec exp.Spec, meta gridMeta) error
	// Publish replicates one finished-cell checkpoint record of the
	// named lane. Records may arrive more than once (hedges, resumes,
	// duplicate delivery); implementations deduplicate by grid index.
	Publish(lane string, rec eval.SweepRecord) error
	// Sync forces everything Published so far durable (uploads partial
	// store segments; a no-op for per-record backends).
	Sync(lane string) error
	// Clear removes the replica of the named lane — the fresh-run path,
	// mirroring the local lane removal.
	Clear(lane string) error
	// List enumerates lane names the transport holds records for.
	List() ([]string, error)
	// Load fetches the replica's records for the named lane, validated
	// against the bound grid. Torn content is tolerated (the damaged
	// tail records are simply absent); records from a different grid or
	// run configuration are an error. A missing replica is an empty map.
	Load(lane string) (map[int]eval.MatrixCell, error)
}

// ParseCheckpointTransport parses the -transport grammar:
//
//	fs               local filesystem only (default)
//	mirror:DIR       per-record atomic replication into DIR
//	store:DIR        object-store segments in a local directory
//	store:http://…   object-store segments on a serve daemon
func ParseCheckpointTransport(s string) (CheckpointTransport, error) {
	switch {
	case s == "" || s == "fs":
		return &FSTransport{}, nil
	case strings.HasPrefix(s, "mirror:"):
		dir := s[len("mirror:"):]
		if dir == "" {
			return nil, fmt.Errorf("dispatch: -transport %q: mirror wants a directory", s)
		}
		return &MirrorTransport{Dir: dir}, nil
	case strings.HasPrefix(s, "store:"):
		v := s[len("store:"):]
		if v == "" {
			return nil, fmt.Errorf("dispatch: -transport %q: store wants a directory or daemon URL", s)
		}
		if strings.HasPrefix(v, "http://") || strings.HasPrefix(v, "https://") {
			return &StoreTransport{Store: &serve.HTTPStore{Base: v}}, nil
		}
		return &StoreTransport{Store: serve.NewDirStore(v)}, nil
	default:
		return nil, fmt.Errorf("dispatch: -transport %q: want fs, mirror:DIR or store:DIR|URL", s)
	}
}

// laneRecord stamps one cell as its checkpoint record under the grid's
// run configuration.
func laneRecord(meta gridMeta, idx int, cell eval.MatrixCell) eval.SweepRecord {
	return eval.SweepRecord{
		Index: idx, Seed: meta.ids[idx].Seed, Preset: meta.preset,
		Duration: meta.duration, DT: meta.dt, Cell: cell,
	}
}

// syncLane reconciles one lane between its local file and the transport
// replica until both hold the union: replica records the local file lacks
// are merged in (atomic temp+rename rewrite, which also repairs a torn
// local tail), local records the replica lacks are published. Returns how
// many records were recovered FROM the replica — the cells a lost local
// disk would otherwise have cost.
func syncLane(ct CheckpointTransport, lane, path string, meta gridMeta) (int, error) {
	remote, err := ct.Load(lane)
	if err != nil {
		return 0, err
	}
	local, validLen, err := eval.LoadSweepCheckpoint(path, meta.ids, meta.preset, meta.duration, meta.dt)
	if err != nil {
		return 0, err
	}

	// Push local-only records out in grid order — publish order shapes
	// replica segment layout and which divergence reports first — and
	// verify overlap is bit-identical (a divergence here means
	// non-deterministic workers or a foreign replica — merging silently
	// would corrupt the grid).
	push := make([]int, 0, len(local))
	for idx := range local {
		push = append(push, idx)
	}
	sort.Ints(push)
	for _, idx := range push {
		cell := local[idx]
		if prev, dup := remote[idx]; dup {
			if !reflect.DeepEqual(prev, cell) {
				return 0, fmt.Errorf("dispatch: lane %s cell %d differs between the local file and the %s replica — lanes from diverging runs?", lane, idx, ct)
			}
			continue
		}
		if err := ct.Publish(lane, laneRecord(meta, idx, cell)); err != nil {
			return 0, err
		}
	}

	// Pull replica-only records in.
	var add []int
	//advlint:ordered-ok key collection with a membership filter; add is sorted below
	for idx := range remote {
		if _, dup := local[idx]; !dup {
			add = append(add, idx)
		}
	}
	if len(add) == 0 {
		return 0, nil
	}
	sort.Ints(add)
	var buf bytes.Buffer
	if validLen > 0 {
		prev, err := os.ReadFile(path)
		if err != nil {
			return 0, fmt.Errorf("dispatch: sync lane %s: %w", lane, err)
		}
		buf.Write(prev[:validLen])
	}
	for _, idx := range add {
		line, err := json.Marshal(laneRecord(meta, idx, remote[idx]))
		if err != nil {
			return 0, fmt.Errorf("dispatch: sync lane %s: %w", lane, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := atomicWriteFile(path, buf.Bytes()); err != nil {
		return 0, fmt.Errorf("dispatch: sync lane %s: %w", lane, err)
	}
	return len(add), nil
}

// laneProgress is the union view of a lane's finished cells: the local
// file plus, when a checkpoint transport is configured, its replica. The
// exec transport's liveness poll reads this instead of the local tail
// alone, so a worker streaming results off-machine is not declared hung
// while it is making progress.
func laneProgress(path string, meta gridMeta, ct CheckpointTransport) map[int]eval.MatrixCell {
	done, _, err := eval.LoadSweepCheckpoint(path, meta.ids, meta.preset, meta.duration, meta.dt)
	if err != nil {
		done = map[int]eval.MatrixCell{}
	}
	if ct != nil {
		if remote, rerr := ct.Load(filepath.Base(path)); rerr == nil {
			//advlint:ordered-ok map-to-map fold keyed by grid index; order-free
			for idx, cell := range remote {
				if _, dup := done[idx]; !dup {
					done[idx] = cell
				}
			}
		}
	}
	return done
}

// atomicWriteFile publishes data at path via temp+rename in the same
// directory, so readers see the old content or the new, never a tear.
func atomicWriteFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".lane_*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close() //advlint:close-ok error-path cleanup; the write failure is returned
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// FSTransport is the no-replication transport: lane files live on the
// local filesystem and nowhere else — exactly the PR 7 dispatcher.
type FSTransport struct{}

// String implements CheckpointTransport.
func (t *FSTransport) String() string { return "fs" }

// Bind implements CheckpointTransport.
func (t *FSTransport) Bind(spec exp.Spec, meta gridMeta) error { return nil }

// Publish implements CheckpointTransport.
func (t *FSTransport) Publish(lane string, rec eval.SweepRecord) error { return nil }

// Sync implements CheckpointTransport.
func (t *FSTransport) Sync(lane string) error { return nil }

// Clear implements CheckpointTransport.
func (t *FSTransport) Clear(lane string) error { return nil }

// List implements CheckpointTransport.
func (t *FSTransport) List() ([]string, error) { return nil, nil }

// Load implements CheckpointTransport.
func (t *FSTransport) Load(lane string) (map[int]eval.MatrixCell, error) {
	return map[int]eval.MatrixCell{}, nil
}

// MirrorTransport streams every published record into a second directory
// tree: after each Publish the lane's full record set is rewritten to a
// temp file and renamed over the published copy, so the mirror never
// holds a torn file of this writer's making and a reader (a recovering
// dispatcher on another machine, an rsync of the tree) always sees a
// complete prefix of the lane. Loading still tolerates a torn tail — a
// mirror populated by a cruder copier than us remains usable.
type MirrorTransport struct {
	// Dir is the mirror root; lane files appear under their base names.
	Dir string

	mu    sync.Mutex
	meta  gridMeta
	lanes map[string]*mirrorLane
}

// mirrorLane is the in-memory image of one mirrored lane.
type mirrorLane struct {
	lines [][]byte
	recs  map[int]eval.MatrixCell
}

// String implements CheckpointTransport.
func (t *MirrorTransport) String() string { return "mirror:" + t.Dir }

// Bind implements CheckpointTransport.
func (t *MirrorTransport) Bind(spec exp.Spec, meta gridMeta) error {
	if t.Dir == "" {
		return fmt.Errorf("dispatch: mirror transport needs a directory")
	}
	if err := os.MkdirAll(t.Dir, 0o755); err != nil {
		return fmt.Errorf("dispatch: mirror dir: %w", err)
	}
	t.mu.Lock()
	t.meta = meta
	t.lanes = map[string]*mirrorLane{}
	t.mu.Unlock()
	return nil
}

// laneLocked returns the cached image of a lane, loading (and
// validating) any existing mirror file on first touch.
func (t *MirrorTransport) laneLocked(lane string) (*mirrorLane, error) {
	if l, ok := t.lanes[lane]; ok {
		return l, nil
	}
	l := &mirrorLane{recs: map[int]eval.MatrixCell{}}
	buf, err := os.ReadFile(filepath.Join(t.Dir, lane))
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("dispatch: mirror lane %s: %w", lane, err)
	}
	if len(buf) > 0 {
		done, validLen, err := eval.LoadSweepCheckpointBytes(buf, t.meta.ids, t.meta.preset, t.meta.duration, t.meta.dt)
		if err != nil {
			return nil, fmt.Errorf("dispatch: mirror lane %s: %w", lane, err)
		}
		for _, line := range bytes.Split(bytes.TrimRight(buf[:validLen], "\n"), []byte("\n")) {
			if len(line) > 0 {
				l.lines = append(l.lines, append([]byte(nil), line...))
			}
		}
		//advlint:ordered-ok map-to-map copy keyed by grid index; order-free
		for idx, cell := range done {
			l.recs[idx] = cell
		}
	}
	t.lanes[lane] = l
	return l, nil
}

// Publish implements CheckpointTransport.
func (t *MirrorTransport) Publish(lane string, rec eval.SweepRecord) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, err := t.laneLocked(lane)
	if err != nil {
		return err
	}
	if _, dup := l.recs[rec.Index]; dup {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("dispatch: mirror lane %s: %w", lane, err)
	}
	l.lines = append(l.lines, line)
	l.recs[rec.Index] = rec.Cell
	var buf bytes.Buffer
	for _, ln := range l.lines {
		buf.Write(ln)
		buf.WriteByte('\n')
	}
	if err := atomicWriteFile(filepath.Join(t.Dir, lane), buf.Bytes()); err != nil {
		return fmt.Errorf("dispatch: mirror lane %s: %w", lane, err)
	}
	return nil
}

// Sync implements CheckpointTransport: every Publish is already durable.
func (t *MirrorTransport) Sync(lane string) error { return nil }

// Clear implements CheckpointTransport.
func (t *MirrorTransport) Clear(lane string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.lanes, lane)
	if err := os.Remove(filepath.Join(t.Dir, lane)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("dispatch: clear mirror lane %s: %w", lane, err)
	}
	return nil
}

// List implements CheckpointTransport.
func (t *MirrorTransport) List() ([]string, error) {
	entries, err := os.ReadDir(t.Dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dispatch: list mirror: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Load implements CheckpointTransport.
func (t *MirrorTransport) Load(lane string) (map[int]eval.MatrixCell, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, err := t.laneLocked(lane)
	if err != nil {
		return nil, err
	}
	out := make(map[int]eval.MatrixCell, len(l.recs))
	//advlint:ordered-ok map-to-map copy keyed by grid index; order-free
	for idx, cell := range l.recs {
		out[idx] = cell
	}
	return out, nil
}
