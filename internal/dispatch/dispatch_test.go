package dispatch

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// The dispatcher's whole contract is one sentence: whatever faults the
// fleet throws, the merged result is byte-identical to an unsharded run.
// These tests drive each fault class — crash, hang, torn tail, duplicate
// delivery, dial failure — through deterministic fake transports and
// assert exactly that, plus the recovery bookkeeping (no recomputation
// of checkpointed cells, retry/hedge/quarantine counters).

// testSpec is the grid under dispatch: 2 scenarios × 2 attacks × 2
// defenses = 8 cells, quick preset, explicit stamp values.
func testSpec() exp.Spec {
	return exp.Spec{
		Kind:   exp.KindSweep,
		Preset: "quick",
		Matrix: &exp.MatrixSpec{
			Scenarios: []string{"gentle-brake", "hard-brake"},
			Attacks:   []string{"None", "FGSM"},
			Defenses:  []string{"None", "Median Blurring"},
			Duration:  1.0, DT: 0.1, BaseSeed: 909090,
		},
	}
}

// fakeCell derives a deterministic result from a cell identity alone —
// the pure function a perfectly deterministic worker computes. Index 2
// carries +Inf TTC so the infinity-safe encoding stays on the path.
func fakeCell(id eval.CellID) eval.MatrixCell {
	ttc := 1.5 + float64(id.Index)
	if id.Index == 2 {
		ttc = math.Inf(1)
	}
	return eval.MatrixCell{
		Scenario: id.Scenario, Attack: id.Attack, Defense: id.Defense, Seed: id.Seed,
		Collision: id.Index%3 == 0,
		MinGap:    0.5 + float64(id.Index), MinTTC: ttc,
		MeanGapErr: 0.125 * float64(id.Index), Steps: 10 + id.Index,
		Result: sim.Result{
			Times:    []float64{0, 0.1},
			TrueGaps: []float64{float64(id.Index), float64(id.Index) + 1},
			MinGap:   0.5 + float64(id.Index), MinTTC: ttc,
			Collision: id.Index%3 == 0,
		},
	}
}

// computeLog counts how many times each global cell was computed, so
// tests can prove checkpointed cells are never re-run.
type computeLog struct {
	mu sync.Mutex
	n  map[int]int
}

func newComputeLog() *computeLog { return &computeLog{n: map[int]int{}} }

func (c *computeLog) bump(idx int) {
	c.mu.Lock()
	c.n[idx]++
	c.mu.Unlock()
}

func (c *computeLog) count(idx int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n[idx]
}

// fakeTransport is a deterministic worker: it computes fakeCell for its
// shard's cells, persists them through the real lane writer (resume,
// dedup, torn-tail repair included), and streams cell-done events.
type fakeTransport struct {
	computes *computeLog
	// slow delays each cell of the keyed shards — the straggler dial.
	slow map[int]time.Duration
}

func (t *fakeTransport) Run(ctx context.Context, spec exp.Spec, obs eval.Observer) error {
	meta, err := specGridMeta(spec)
	if err != nil {
		return err
	}
	lane, err := openLane(spec.Sweep.JSONL, meta, spec.Sweep.Resume)
	if err != nil {
		return err
	}
	defer lane.close()
	n := spec.Sweep.NumShards
	if n <= 0 {
		n = 1
	}
	for _, id := range meta.ids {
		if id.Index%n != spec.Sweep.Shard || lane.seen[id.Index] {
			continue
		}
		if d := t.slow[spec.Sweep.Shard]; d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return ctx.Err()
			}
		} else if err := ctx.Err(); err != nil {
			return err
		}
		if t.computes != nil {
			t.computes.bump(id.Index)
		}
		cell := fakeCell(id)
		raw, err := json.Marshal(eval.SweepRecord{
			Index: id.Index, Seed: id.Seed, Preset: meta.preset,
			Duration: meta.duration, DT: meta.dt, Cell: cell,
		})
		if err != nil {
			return err
		}
		fresh, err := lane.append(id.Index, raw)
		if err != nil {
			return err
		}
		if fresh {
			emit(obs, meta.cellDone(id.Index, &cell))
		}
	}
	return lane.sync()
}

// referenceCSV is the unsharded ground truth every dispatch run must
// reproduce byte for byte.
func referenceCSV(t *testing.T, spec exp.Spec) string {
	t.Helper()
	meta, err := specGridMeta(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep := eval.MatrixReport{Preset: meta.preset, Cells: make([]eval.MatrixCell, len(meta.ids))}
	for i, id := range meta.ids {
		rep.Cells[i] = fakeCell(id)
	}
	return rep.CSV()
}

// eventTrace is a race-safe observer that records the merged stream.
type eventTrace struct {
	mu     sync.Mutex
	events []eval.Event
}

func (e *eventTrace) Observe(ev eval.Event) {
	e.mu.Lock()
	e.events = append(e.events, ev)
	e.mu.Unlock()
}

func (e *eventTrace) snapshot() []eval.Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]eval.Event(nil), e.events...)
}

// baseConfig returns a fast-failing test config over the given workers.
func baseConfig(t *testing.T, workers ...Worker) Config {
	t.Helper()
	return Config{
		Spec:        testSpec(),
		Workers:     workers,
		Dir:         t.TempDir(),
		Heartbeat:   2 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		HedgeAfter:  1, // off by default: tests assert exact compute counts
		Logf:        t.Logf,
	}
}

// mustRun dispatches and asserts byte-identity with the unsharded
// reference.
func mustRun(t *testing.T, cfg Config) *Report {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatalf("dispatch failed: %v", err)
	}
	if want := referenceCSV(t, cfg.Spec); rep.CSV != want {
		t.Fatalf("dispatched CSV diverges from the unsharded reference:\ngot:\n%s\nwant:\n%s", rep.CSV, want)
	}
	return rep
}

func TestDispatchCleanConvergence(t *testing.T) {
	log := newComputeLog()
	trace := &eventTrace{}
	cfg := baseConfig(t,
		Worker{Name: "a", Transport: &fakeTransport{computes: log}},
		Worker{Name: "b", Transport: &fakeTransport{computes: log}},
	)
	cfg.NumShards = 4
	cfg.Observer = trace

	rep := mustRun(t, cfg)
	if rep.Shards != 4 || rep.Retries != 0 || rep.Hedges != 0 || len(rep.Quarantined) != 0 {
		t.Fatalf("clean run bookkeeping off: %+v", rep)
	}
	for i := 0; i < 8; i++ {
		if got := log.count(i); got != 1 {
			t.Fatalf("cell %d computed %d times, want exactly 1", i, got)
		}
	}

	// The merged stream frames the whole grid once: one run-start, one
	// deduplicated cell-done per cell (Done values are a permutation of
	// 1..8), one run-done.
	events := trace.snapshot()
	var starts, dones int
	seenDone := map[int]bool{}
	for _, ev := range events {
		switch ev.Kind {
		case eval.EventRunStart:
			starts++
			if ev.Total != 8 {
				t.Fatalf("run-start total = %d, want 8", ev.Total)
			}
		case eval.EventRunDone:
			dones++
		case eval.EventCellDone:
			if seenDone[ev.Cell.Index] {
				t.Fatalf("cell %d delivered twice to the observer", ev.Cell.Index)
			}
			seenDone[ev.Cell.Index] = true
			if ev.Done < 1 || ev.Done > 8 {
				t.Fatalf("cell-done progress %d out of range", ev.Done)
			}
		}
	}
	if starts != 1 || dones != 1 || len(seenDone) != 8 {
		t.Fatalf("stream framing: %d run-starts, %d run-dones, %d cells", starts, dones, len(seenDone))
	}
}

func TestDispatchKillMidShardResumesWithoutRecompute(t *testing.T) {
	log := newComputeLog()
	cfg := baseConfig(t,
		Worker{Name: "flaky", Transport: &KillAfter{Inner: &fakeTransport{computes: log}, N: 2}},
		Worker{Name: "steady", Transport: &fakeTransport{computes: log}},
	)
	cfg.NumShards = 2

	rep := mustRun(t, cfg)
	if rep.Retries == 0 {
		t.Fatal("kill-at-cell-2 produced no retry")
	}
	// Every cell the crashed attempt persisted survives the retry: the
	// resume path re-runs nothing that reached the lane file.
	for i := 0; i < 8; i++ {
		if got := log.count(i); got != 1 {
			t.Fatalf("cell %d computed %d times after crash-resume, want exactly 1", i, got)
		}
	}
}

func TestDispatchTornTailRepair(t *testing.T) {
	log := newComputeLog()
	cfg := baseConfig(t,
		Worker{Name: "tearing", Transport: &TornTail{Inner: &fakeTransport{computes: log}, N: 2}},
		Worker{Name: "steady", Transport: &fakeTransport{computes: log}},
	)
	cfg.NumShards = 2

	rep := mustRun(t, cfg)
	if rep.Retries == 0 {
		t.Fatal("torn tail produced no retry")
	}
	// The shear destroys exactly one persisted record; only that cell is
	// recomputed, everything before the tear resumes from the lane.
	recomputed := 0
	for i := 0; i < 8; i++ {
		switch got := log.count(i); got {
		case 1:
		case 2:
			recomputed++
		default:
			t.Fatalf("cell %d computed %d times", i, got)
		}
	}
	if recomputed != 1 {
		t.Fatalf("%d cells recomputed after tail repair, want exactly the torn one", recomputed)
	}
}

func TestDispatchHungWorkerHeartbeat(t *testing.T) {
	log := newComputeLog()
	cfg := baseConfig(t,
		Worker{Name: "wedged", Transport: &HangAfter{Inner: &fakeTransport{computes: log}, N: 1}},
		Worker{Name: "steady", Transport: &fakeTransport{computes: log}},
	)
	cfg.NumShards = 2
	cfg.Heartbeat = 100 * time.Millisecond

	rep := mustRun(t, cfg)
	if rep.Retries == 0 {
		t.Fatal("hung worker was never killed and retried")
	}
}

func TestDispatchDuplicateDeliveryDedups(t *testing.T) {
	log := newComputeLog()
	trace := &eventTrace{}
	cfg := baseConfig(t,
		Worker{Name: "a", Transport: &DuplicateEvents{Inner: &fakeTransport{computes: log}}},
		Worker{Name: "b", Transport: &DuplicateEvents{Inner: &fakeTransport{computes: log}}},
	)
	cfg.NumShards = 4
	cfg.Observer = trace

	mustRun(t, cfg)
	cells := 0
	for _, ev := range trace.snapshot() {
		if ev.Kind == eval.EventCellDone {
			cells++
			if ev.Done > 8 {
				t.Fatalf("duplicate delivery inflated progress to %d/8", ev.Done)
			}
		}
	}
	if cells != 8 {
		t.Fatalf("observer saw %d cell completions, want 8 deduplicated", cells)
	}
}

func TestDispatchDialFailureBackoff(t *testing.T) {
	log := newComputeLog()
	cfg := baseConfig(t,
		Worker{Name: "only", Transport: &DialFail{Inner: &fakeTransport{computes: log}, Times: 2}},
	)
	cfg.NumShards = 2
	cfg.MaxAttempts = 4

	rep := mustRun(t, cfg)
	if rep.Retries < 2 {
		t.Fatalf("two dial failures produced %d retries", rep.Retries)
	}
	// The sole worker keeps its job no matter how many strikes: the
	// blacklist never quarantines the last healthy worker.
	if len(rep.Quarantined) != 0 {
		t.Fatalf("last healthy worker quarantined: %v", rep.Quarantined)
	}
}

func TestDispatchQuarantinesRepeatOffender(t *testing.T) {
	log := newComputeLog()
	cfg := baseConfig(t,
		Worker{Name: "bad", Transport: &DialFail{Inner: &fakeTransport{computes: log}, Times: 99}},
		Worker{Name: "good", Transport: &fakeTransport{computes: log}},
	)
	cfg.NumShards = 4
	cfg.MaxStrikes = 2
	cfg.MaxAttempts = 6
	cfg.Heartbeat = 200 * time.Millisecond // fast reschedule ticks

	rep := mustRun(t, cfg)
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "bad" {
		t.Fatalf("quarantine list = %v, want [bad]", rep.Quarantined)
	}
}

func TestDispatchHedgesStraggler(t *testing.T) {
	log := newComputeLog()
	slow := map[int]time.Duration{3: 150 * time.Millisecond}
	cfg := baseConfig(t,
		Worker{Name: "a", Transport: &fakeTransport{computes: log, slow: slow}},
		Worker{Name: "b", Transport: &fakeTransport{computes: log, slow: slow}},
	)
	cfg.NumShards = 4
	cfg.Heartbeat = 200 * time.Millisecond
	cfg.HedgeAfter = 0.5
	cfg.HedgeFactor = 1.5

	rep := mustRun(t, cfg)
	if rep.Hedges == 0 {
		t.Fatal("straggling shard was never hedged")
	}
}

func TestDispatchResumeAcrossRestart(t *testing.T) {
	log := newComputeLog()
	cfg := baseConfig(t,
		Worker{Name: "a", Transport: &fakeTransport{computes: log}},
	)
	cfg.NumShards = 2
	cfg.Resume = true

	// A previous dispatcher generation completed shard 0 and crashed:
	// its lane survives in full.
	meta, err := specGridMeta(cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	prewritten := 0
	var lines []string
	for _, id := range meta.ids {
		if id.Index%2 != 0 {
			continue
		}
		raw, err := json.Marshal(eval.SweepRecord{
			Index: id.Index, Seed: id.Seed, Preset: meta.preset,
			Duration: meta.duration, DT: meta.dt, Cell: fakeCell(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(raw))
		prewritten++
	}
	lane := filepath.Join(cfg.Dir, "shard_0_of_2.jsonl")
	if err := os.WriteFile(lane, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep := mustRun(t, cfg)
	if rep.Resumed != prewritten {
		t.Fatalf("resumed %d cells, want %d", rep.Resumed, prewritten)
	}
	for _, id := range meta.ids {
		want := 1
		if id.Index%2 == 0 {
			want = 0 // recovered from the lane, never recomputed
		}
		if got := log.count(id.Index); got != want {
			t.Fatalf("cell %d computed %d times across restart, want %d", id.Index, got, want)
		}
	}
}

func TestDispatchResumeRejectsStaleLane(t *testing.T) {
	cfg := baseConfig(t, Worker{Name: "a", Transport: &fakeTransport{}})
	cfg.NumShards = 2
	cfg.Resume = true

	// A lane from a different configuration (doubled duration) must not
	// silently seed this run.
	meta, err := specGridMeta(cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	id := meta.ids[0]
	raw, err := json.Marshal(eval.SweepRecord{
		Index: id.Index, Seed: id.Seed, Preset: meta.preset,
		Duration: meta.duration * 2, DT: meta.dt, Cell: fakeCell(id),
	})
	if err != nil {
		t.Fatal(err)
	}
	lane := filepath.Join(cfg.Dir, "shard_0_of_2.jsonl")
	if err := os.WriteFile(lane, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Run(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "stale checkpoint?") {
		t.Fatalf("stale lane accepted: err = %v", err)
	}
}

// httpFakeRunner executes sweep specs with fakeCell results — the remote
// daemon's compute core, minus the simulator.
type httpFakeRunner struct{}

func (httpFakeRunner) RunObserved(ctx context.Context, s exp.Spec, obs exp.Observer) (*exp.Result, error) {
	ids, err := s.CellIDs()
	if err != nil {
		return nil, err
	}
	n, shard := 1, 0
	if s.Sweep != nil {
		shard = s.Sweep.Shard
		if s.Sweep.NumShards > 0 {
			n = s.Sweep.NumShards
		}
	}
	sr := eval.SweepReport{Preset: "quick", Total: len(ids), Shard: shard, NumShards: n}
	for _, id := range ids {
		if id.Index%n != shard {
			continue
		}
		cell := fakeCell(id)
		sr.Indices = append(sr.Indices, id.Index)
		sr.Cells = append(sr.Cells, cell)
		if obs != nil {
			obs.Observe(eval.Event{Kind: eval.EventCellDone, Total: len(ids), Done: len(sr.Cells), Cell: id, Result: &cell})
		}
	}
	mrep := sr.Matrix()
	return &exp.Result{Spec: s, Text: "fake sweep", Matrix: &mrep, Sweep: &sr}, nil
}

func TestDispatchHTTPTransport(t *testing.T) {
	srv := serve.New(context.Background(), serve.Config{
		NewRunner: func(ctx context.Context, preset string, logf func(string, ...any)) (serve.Runner, error) {
			return httpFakeRunner{}, nil
		},
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	cfg := baseConfig(t,
		Worker{Name: "remote-a", Transport: &HTTPTransport{Base: hs.URL, Logf: t.Logf}},
		Worker{Name: "remote-b", Transport: &HTTPTransport{Base: hs.URL, Logf: t.Logf}},
	)
	cfg.NumShards = 2
	mustRun(t, cfg)

	// A second dispatch of the same grid lands entirely on the daemon's
	// result cache: no cell events stream, the lanes are backfilled from
	// the terminal payload's record set — and the bytes still match.
	cfg2 := baseConfig(t,
		Worker{Name: "remote-a", Transport: &HTTPTransport{Base: hs.URL, Logf: t.Logf}},
	)
	cfg2.NumShards = 2
	mustRun(t, cfg2)
	if computes, hits, _ := srv.Stats(); computes != 2 || hits < 2 {
		t.Fatalf("second dispatch did not ride the cache: computes=%d hits=%d", computes, hits)
	}
}

func TestParseInjections(t *testing.T) {
	injs, err := ParseInjections("kill:0@2, dial:1@3 ,dup:0,torn:2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Injection{
		{Fault: "kill", Worker: 0, N: 2},
		{Fault: "dial", Worker: 1, N: 3},
		{Fault: "dup", Worker: 0, N: 1},
		{Fault: "torn", Worker: 2, N: 1},
	}
	if len(injs) != len(want) {
		t.Fatalf("parsed %d injections, want %d", len(injs), len(want))
	}
	for i := range want {
		if injs[i] != want[i] {
			t.Fatalf("injection %d = %+v, want %+v", i, injs[i], want[i])
		}
	}
	for _, bad := range []string{"kill", "kill:x", "kill:-1", "kill:0@x", "explode:0"} {
		if _, err := ParseInjections(bad); err == nil {
			t.Fatalf("ParseInjections(%q) accepted", bad)
		}
	}

	workers := []Worker{{Name: "w0", Transport: &fakeTransport{}}}
	if err := ApplyInjections(workers, []Injection{{Fault: "kill", Worker: 1, N: 1}}); err == nil {
		t.Fatal("out-of-range worker index accepted")
	}
	if err := ApplyInjections(workers, []Injection{{Fault: "kill", Worker: 0, N: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := workers[0].Transport.(*KillAfter); !ok {
		t.Fatalf("injection did not wrap the transport: %T", workers[0].Transport)
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	cfg := Config{
		Workers:     []Worker{{Transport: &fakeTransport{}}},
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  time.Second,
	}
	d := &dispatcher{cfg: cfg.withDefaults(), rng: xrand.New(7)}
	for attempts := 1; attempts <= 10; attempts++ {
		delay := d.backoff(attempts)
		if delay > time.Second {
			t.Fatalf("attempt %d backoff %v exceeds the cap", attempts, delay)
		}
		if delay < 50*time.Millisecond {
			t.Fatalf("attempt %d backoff %v below base/2", attempts, delay)
		}
	}
}
