package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/serve"
)

// Transport executes one sweep-kind shard spec on some worker. The
// contract every implementation honours:
//
//   - finished cells are persisted to spec.Sweep.JSONL (the shard's lane
//     file) in checkpoint format, flushed record by record, so a crashed
//     attempt leaves a resumable tail;
//   - cell progress streams to obs (EventCellDone with the cell result
//     attached) — the dispatcher's liveness monitor feeds on these;
//   - ctx cancellation abandons the attempt promptly.
//
// The dispatcher re-runs the SAME spec (Resume=true) after a failure, so
// Run must be idempotent against its own partial output.
type Transport interface {
	Run(ctx context.Context, spec exp.Spec, obs eval.Observer) error
}

// gridMeta is the record-stamp metadata of a spec's grid: everything a
// lane record is validated against.
type gridMeta struct {
	ids      []eval.CellID
	preset   string
	duration float64
	dt       float64
}

// specGridMeta derives the grid identity and record stamp of a spec.
func specGridMeta(spec exp.Spec) (gridMeta, error) {
	ids, err := spec.CellIDs()
	if err != nil {
		return gridMeta{}, err
	}
	p, err := exp.PresetByName(spec.Preset)
	if err != nil {
		return gridMeta{}, err
	}
	m := gridMeta{ids: ids, preset: p.Name}
	if spec.Matrix != nil {
		m.duration, m.dt = spec.Matrix.Duration, spec.Matrix.DT
	}
	return m, nil
}

// cellDone builds the observer event for a finished cell.
func (m gridMeta) cellDone(index int, cell *eval.MatrixCell) eval.Event {
	return eval.Event{Kind: eval.EventCellDone, Total: len(m.ids), Cell: m.ids[index], Result: cell}
}

// PoolTransport runs shards in-process on a shared Experiment: the
// "fan out over local cores" worker. The sweep runtime itself writes the
// lane file and emits cell events; several PoolTransports may share one
// Experiment (per-run state is cloned per worker inside the sweep).
type PoolTransport struct {
	X *exp.Experiment
}

// Run implements Transport.
func (t *PoolTransport) Run(ctx context.Context, spec exp.Spec, obs eval.Observer) error {
	// The dispatcher owns run-start/run-done framing; forward only cell
	// progress and logs.
	_, err := t.X.RunObserved(ctx, spec, eval.ObserverFunc(func(ev eval.Event) {
		switch ev.Kind {
		case eval.EventRunStart, eval.EventRunDone:
		default:
			emit(obs, ev)
		}
	}))
	return err
}

// ExecTransport runs each shard as a local `advrepro run -spec` child
// process — crash isolation without a daemon. The child writes the lane
// file; liveness is observed by tailing it: every Poll interval the
// checkpoint is re-read and newly appeared records are emitted as
// cell-done events. When a checkpoint transport is configured, the poll
// reads the union of the local tail and the replica (laneProgress), so a
// child streaming its results off-machine is not declared hung while it
// is making progress the local file has not yet caught up with.
type ExecTransport struct {
	// Binary is the advrepro executable (empty = os.Executable()).
	Binary string
	// Args are extra `run` flags appended after -spec (e.g. -artifacts).
	Args []string
	// Poll is the lane-tail interval (default 200ms).
	Poll time.Duration
	// Checkpoints, when set, widens the liveness poll to include the
	// replica of the lane (same transport instance the dispatcher binds).
	Checkpoints CheckpointTransport
}

// Run implements Transport.
func (t *ExecTransport) Run(ctx context.Context, spec exp.Spec, obs eval.Observer) error {
	meta, err := specGridMeta(spec)
	if err != nil {
		return err
	}
	lane := spec.Sweep.JSONL
	body, err := spec.JSON()
	if err != nil {
		return err
	}
	specFile, err := os.CreateTemp(filepath.Dir(lane), "dispatch_spec_*.json")
	if err != nil {
		return fmt.Errorf("dispatch: spec file: %w", err)
	}
	defer os.Remove(specFile.Name())
	if _, err := specFile.Write(body); err != nil {
		specFile.Close() //advlint:close-ok error-path cleanup; the write failure is returned
		return fmt.Errorf("dispatch: spec file: %w", err)
	}
	if err := specFile.Close(); err != nil {
		return fmt.Errorf("dispatch: spec file: %w", err)
	}

	bin := t.Binary
	if bin == "" {
		if bin, err = os.Executable(); err != nil {
			return fmt.Errorf("dispatch: resolve own binary: %w", err)
		}
	}
	args := append([]string{"run", "-spec", specFile.Name()}, t.Args...)
	cmd := exec.CommandContext(ctx, bin, args...)
	var stderr tailBuffer
	cmd.Stderr = &stderr
	cmd.Stdout = &stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("dispatch: start worker: %w", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()

	poll := t.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	seen := map[int]bool{}
	emitNew := func() {
		// laneProgress tolerates a torn tail mid-poll (normal while the
		// child is writing; the final load decides) and folds in replica
		// records the local file lacks.
		done := laneProgress(lane, meta, t.Checkpoints)
		// Emit fresh cells in grid order: the synthesized event stream
		// is part of the run's observable output.
		idxs := make([]int, 0, len(done))
		for idx := range done {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			if seen[idx] {
				continue
			}
			seen[idx] = true
			c := done[idx]
			emit(obs, meta.cellDone(idx, &c))
		}
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case err := <-waitErr:
			emitNew()
			if err != nil {
				return fmt.Errorf("dispatch: worker exited: %w (output tail: %s)", err, stderr.tail())
			}
			return nil
		case <-ticker.C:
			emitNew()
		case <-ctx.Done():
			<-waitErr // CommandContext kills the child; reap it
			return ctx.Err()
		}
	}
}

// tailBuffer retains the last chunk of child output for error messages.
type tailBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > 4096 {
		t.buf = t.buf[len(t.buf)-4096:]
	}
	t.mu.Unlock()
	return len(p), nil
}

func (t *tailBuffer) tail() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return strings.TrimSpace(string(t.buf))
}

// HTTPTransport runs shards on a remote `advrepro serve` daemon. The
// daemon executes the shard spec (stripped of local-only checkpoint
// fields — its single-flight/cache layer dedups by the same canonical
// hash) and streams cell-done events carrying full checkpoint records;
// the transport validates each record against the grid and appends it to
// the LOCAL lane file, so remote shards resume and merge exactly like
// local ones. Cache hits and reconnect gaps are backfilled from the
// terminal payload's record set.
type HTTPTransport struct {
	// Base is the daemon's base URL (http://host:port).
	Base string
	// Reconnects bounds mid-stream reconnect attempts per Run (the
	// dispatcher's retry/backoff wraps around whole Run failures).
	Reconnects int
	// Logf narrates reconnects (nil = silent).
	Logf func(format string, args ...any)
}

// Run implements Transport.
func (t *HTTPTransport) Run(ctx context.Context, spec exp.Spec, obs eval.Observer) error {
	meta, err := specGridMeta(spec)
	if err != nil {
		return err
	}
	lane, err := openLane(spec.Sweep.JSONL, meta, spec.Sweep.Resume)
	if err != nil {
		return err
	}
	defer lane.close()

	// The remote runs the same shard decomposition but keeps no local
	// state of ours; JSONL/Resume are meaningless (and hash-neutral:
	// CanonicalSpec strips them) on the wire.
	remote := spec
	rs := *spec.Sweep
	rs.JSONL, rs.Resume = "", false
	remote.Sweep = &rs
	body, err := remote.JSON()
	if err != nil {
		return err
	}

	record := func(raw json.RawMessage) error {
		var rec eval.SweepRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("dispatch: bad wire record: %w", err)
		}
		if err := rec.Validate(meta.ids, meta.preset, meta.duration, meta.dt); err != nil {
			return fmt.Errorf("dispatch: wire record: %w", err)
		}
		fresh, err := lane.append(rec.Index, raw)
		if err != nil {
			return err
		}
		if fresh {
			emit(obs, meta.cellDone(rec.Index, &rec.Cell))
		}
		return nil
	}

	payload, _, err := serve.StreamSpec(ctx, t.Base, body, serve.StreamConfig{
		MaxReconnects: t.Reconnects,
		Logf:          t.Logf,
		OnEvent: func(ev serve.WireEvent) error {
			switch ev.Event {
			case "cell-done":
				if len(ev.Record) > 0 {
					return record(ev.Record)
				}
			case "cell-start":
				if ev.Cell != nil && ev.Cell.Index >= 0 && ev.Cell.Index < len(meta.ids) {
					emit(obs, eval.Event{
						Kind: eval.EventCellStart, Total: len(meta.ids), Cell: meta.ids[ev.Cell.Index],
					})
				}
			case "log":
				emit(obs, eval.Event{Kind: eval.EventLog, Msg: ev.Msg})
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	// Backfill: a cache hit streams no cell events at all, and a
	// reconnect may have missed a window; the terminal payload carries
	// the complete record set.
	for _, raw := range payload.Records {
		if err := record(raw); err != nil {
			return err
		}
	}
	if err := lane.sync(); err != nil {
		return err
	}
	return lane.close()
}

// laneWriter appends validated checkpoint records to a shard lane file,
// deduplicating by grid index (a resumed or reconnected stream replays
// records it already delivered). Records are written whole, one Write
// per line, so a crash tears at most the final line — exactly the state
// LoadSweepCheckpoint repairs.
type laneWriter struct {
	f    *os.File
	seen map[int]bool
}

// openLane opens (resuming or truncating) a lane file, pre-validating
// any surviving records against the grid and repairing a torn tail.
func openLane(path string, meta gridMeta, resume bool) (*laneWriter, error) {
	seen := map[int]bool{}
	if resume {
		done, validLen, err := eval.LoadSweepCheckpoint(path, meta.ids, meta.preset, meta.duration, meta.dt)
		if err != nil {
			return nil, err
		}
		if st, serr := os.Stat(path); serr == nil && st.Size() > validLen {
			if err := os.Truncate(path, validLen); err != nil {
				return nil, fmt.Errorf("dispatch: repair lane tail: %w", err)
			}
		}
		//advlint:ordered-ok map-to-set fold keyed by grid index; order-free
		for idx := range done {
			seen[idx] = true
		}
	}
	mode := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		mode |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, mode, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dispatch: open lane: %w", err)
	}
	return &laneWriter{f: f, seen: seen}, nil
}

// append writes one record line unless its index was already persisted,
// reporting whether the record was fresh.
func (w *laneWriter) append(index int, raw json.RawMessage) (bool, error) {
	if w.seen[index] {
		return false, nil
	}
	line := make([]byte, 0, len(raw)+1)
	line = append(line, raw...)
	line = append(line, '\n')
	if _, err := w.f.Write(line); err != nil {
		return false, fmt.Errorf("dispatch: lane write: %w", err)
	}
	w.seen[index] = true
	return true, nil
}

func (w *laneWriter) sync() error { return w.f.Sync() }

// close releases the lane file, surfacing the close error once: on
// buffered filesystems this is where a failed lane write finally
// reports. Idempotent so success paths can check it while a defer
// still covers the error paths.
func (w *laneWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	if err != nil {
		return fmt.Errorf("dispatch: close lane: %w", err)
	}
	return nil
}
