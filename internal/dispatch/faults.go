package dispatch

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/eval"
	"repro/internal/exp"
)

// This file is the fault-injection harness: transport wrappers that
// manufacture the failure classes the dispatcher must absorb — crash
// mid-shard, silent hang, torn checkpoint tail, duplicate delivery,
// dial failure — plus the -inject grammar that arms them from the CLI.
// Every fault is deterministic (trigger at the Nth cell, fire a bounded
// number of times) so a faulted run converges to the exact unsharded
// result and CI can assert byte-identity.

// errInjected marks a harness-manufactured failure.
type errInjected struct{ msg string }

func (e errInjected) Error() string { return "dispatch: injected fault: " + e.msg }

// countingObserver forwards events while counting cell completions and
// firing a trigger at the Nth one.
type countingObserver struct {
	inner   eval.Observer
	mu      sync.Mutex
	done    int
	n       int
	fired   bool
	trigger func()
	// swallow, once set, drops all further events (hang simulation).
	swallow bool
}

func (c *countingObserver) Observe(ev eval.Event) {
	c.mu.Lock()
	if c.swallow {
		c.mu.Unlock()
		return
	}
	fire := false
	if ev.Kind == eval.EventCellDone {
		c.done++
		if !c.fired && c.done >= c.n {
			c.fired = true
			fire = true
		}
	}
	c.mu.Unlock()
	emit(c.inner, ev)
	if fire && c.trigger != nil {
		c.trigger()
	}
}

// KillAfter crashes the attempt after N cells complete: the inner
// transport's context is cancelled and an injected error is returned,
// leaving a valid partial lane — exactly what a worker OOM or SIGKILL
// leaves behind. Fires on the first Times attempts (default 1), then
// passes through so the retry can finish.
type KillAfter struct {
	Inner Transport
	N     int
	Times int

	mu    sync.Mutex
	fired int
}

// Run implements Transport.
func (t *KillAfter) Run(ctx context.Context, spec exp.Spec, obs eval.Observer) error {
	t.mu.Lock()
	times := t.Times
	if times <= 0 {
		times = 1
	}
	armed := t.fired < times
	if armed {
		t.fired++
	}
	t.mu.Unlock()
	if !armed {
		return t.Inner.Run(ctx, spec, obs)
	}
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	co := &countingObserver{inner: obs, n: t.N, trigger: cancel}
	err := t.Inner.Run(ictx, spec, co)
	co.mu.Lock()
	fired := co.fired
	co.mu.Unlock()
	if fired {
		return errInjected{fmt.Sprintf("killed after %d cells", t.N)}
	}
	return err
}

// HangAfter simulates a silently wedged worker: after N cells the inner
// transport is stopped, every further event is swallowed, and Run
// blocks until the dispatcher's heartbeat monitor cancels the attempt.
// Fires on the first Times attempts (default 1).
type HangAfter struct {
	Inner Transport
	N     int
	Times int

	mu    sync.Mutex
	fired int
}

// Run implements Transport.
func (t *HangAfter) Run(ctx context.Context, spec exp.Spec, obs eval.Observer) error {
	t.mu.Lock()
	times := t.Times
	if times <= 0 {
		times = 1
	}
	armed := t.fired < times
	if armed {
		t.fired++
	}
	t.mu.Unlock()
	if !armed {
		return t.Inner.Run(ctx, spec, obs)
	}
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	co := &countingObserver{inner: obs, n: t.N}
	co.trigger = func() {
		co.mu.Lock()
		co.swallow = true
		co.mu.Unlock()
		cancel()
	}
	err := t.Inner.Run(ictx, spec, co)
	co.mu.Lock()
	fired := co.fired
	co.mu.Unlock()
	if !fired {
		return err
	}
	<-ctx.Done() // hang: no events, no return, until the monitor kills us
	return errInjected{fmt.Sprintf("hung after %d cells", t.N)}
}

// DialFail fails the first Times attempts immediately, before any work —
// a dead host or refused connection. Later attempts pass through.
type DialFail struct {
	Inner Transport
	Times int

	mu    sync.Mutex
	fired int
}

// Run implements Transport.
func (t *DialFail) Run(ctx context.Context, spec exp.Spec, obs eval.Observer) error {
	t.mu.Lock()
	times := t.Times
	if times <= 0 {
		times = 1
	}
	armed := t.fired < times
	if armed {
		t.fired++
	}
	t.mu.Unlock()
	if armed {
		return errInjected{"dial refused"}
	}
	return t.Inner.Run(ctx, spec, obs)
}

// DuplicateEvents delivers every cell completion twice — the at-least-
// once delivery a reconnecting stream or hedged shard produces. The
// dispatcher must dedup these without double-counting progress.
type DuplicateEvents struct {
	Inner Transport
}

// Run implements Transport.
func (t *DuplicateEvents) Run(ctx context.Context, spec exp.Spec, obs eval.Observer) error {
	return t.Inner.Run(ctx, spec, eval.ObserverFunc(func(ev eval.Event) {
		emit(obs, ev)
		if ev.Kind == eval.EventCellDone {
			emit(obs, ev)
		}
	}))
}

// TornTail kills the attempt after N cells like KillAfter, then shears
// the lane file mid-record — the torn final line an interrupted write
// leaves. The retry must repair the tail and recompute only that cell.
// Fires on the first Times attempts (default 1).
type TornTail struct {
	Inner Transport
	N     int
	Times int

	kill KillAfter
	once sync.Once
}

// Run implements Transport.
func (t *TornTail) Run(ctx context.Context, spec exp.Spec, obs eval.Observer) error {
	t.once.Do(func() { t.kill = KillAfter{Inner: t.Inner, N: t.N, Times: t.Times} })
	err := t.kill.Run(ctx, spec, obs)
	var inj errInjected
	if err == nil || !asInjected(err, &inj) {
		return err
	}
	if terr := tearLaneTail(spec.Sweep.JSONL); terr != nil {
		return fmt.Errorf("%w (and tearing the tail failed: %v)", err, terr)
	}
	return errInjected{inj.msg + ", tail torn"}
}

func asInjected(err error, out *errInjected) bool {
	e, ok := err.(errInjected)
	if ok {
		*out = e
	}
	return ok
}

// tearLaneTail chops the lane's final record roughly in half, leaving
// an unterminated, unparseable tail.
func tearLaneTail(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	body := strings.TrimRight(string(buf), "\n")
	last := strings.LastIndexByte(body, '\n') + 1 // 0 when single-line
	tear := last + (len(body)-last)/2
	if tear <= last {
		return nil // nothing substantial to tear
	}
	//advlint:atomic-ok deliberately non-atomic: this IS the torn-tail fault injection
	return os.WriteFile(path, []byte(body[:tear]), 0o644)
}

// Injection is one parsed -inject directive.
type Injection struct {
	Fault  string // kill | hang | dial | dup | torn
	Worker int    // worker index the fault attaches to
	N      int    // kill/hang/torn: cells before trigger; dial: failed attempts
}

// ParseInjections parses the -inject grammar: comma-separated
// fault:worker[@N] directives, e.g. "kill:0@2,dial:1@1,dup:0,torn:2@3".
// An empty (or all-whitespace) string means no injections; anything
// else must parse exactly — empty directives between commas, duplicate
// fault:worker pairs, and non-digit worker/count tokens (including
// signs, which Atoi would tolerate) are errors, not silently skipped.
func ParseInjections(s string) ([]Injection, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	seen := make(map[string]bool)
	var out []Injection
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("dispatch: bad -inject %q: empty directive (stray comma)", s)
		}
		fault, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("dispatch: bad -inject %q: want fault:worker[@N]", part)
		}
		switch fault {
		case "kill", "hang", "dial", "dup", "torn":
		default:
			return nil, fmt.Errorf("dispatch: bad -inject %q: unknown fault %q (want kill|hang|dial|dup|torn)", part, fault)
		}
		inj := Injection{Fault: fault, N: 1}
		workerStr, nStr, hasN := strings.Cut(rest, "@")
		w, err := parseDigits(workerStr)
		if err != nil {
			return nil, fmt.Errorf("dispatch: bad -inject %q: worker index %q (want digits)", part, workerStr)
		}
		inj.Worker = w
		if hasN {
			n, err := parseDigits(nStr)
			if err != nil {
				return nil, fmt.Errorf("dispatch: bad -inject %q: count %q (want digits)", part, nStr)
			}
			inj.N = n
		}
		key := fmt.Sprintf("%s:%d", inj.Fault, inj.Worker)
		if seen[key] {
			return nil, fmt.Errorf("dispatch: bad -inject %q: duplicate directive %s", s, key)
		}
		seen[key] = true
		out = append(out, inj)
	}
	return out, nil
}

// parseDigits parses a non-negative decimal integer written as bare
// digits. Unlike strconv.Atoi it rejects signs ("+1", "-0") and the
// empty string, so the -inject grammars stay exactly as documented.
func parseDigits(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, fmt.Errorf("non-digit %q", s[i])
		}
	}
	return strconv.Atoi(s)
}

// ApplyInjections wraps the targeted workers' transports with the
// corresponding fault wrappers, in directive order.
func ApplyInjections(workers []Worker, injs []Injection) error {
	for _, inj := range injs {
		if inj.Worker >= len(workers) {
			return fmt.Errorf("dispatch: -inject targets worker %d but only %d workers configured", inj.Worker, len(workers))
		}
		w := &workers[inj.Worker]
		switch inj.Fault {
		case "kill":
			w.Transport = &KillAfter{Inner: w.Transport, N: inj.N}
		case "hang":
			w.Transport = &HangAfter{Inner: w.Transport, N: inj.N}
		case "dial":
			w.Transport = &DialFail{Inner: w.Transport, Times: inj.N}
		case "dup":
			w.Transport = &DuplicateEvents{Inner: w.Transport}
		case "torn":
			w.Transport = &TornTail{Inner: w.Transport, N: inj.N}
		}
	}
	return nil
}
