package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestNoalloclint(t *testing.T) {
	analysistest.Run(t, analysis.Noalloclint, "testdata/src/noalloc", "repro/internal/nn")
}
