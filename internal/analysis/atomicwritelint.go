package analysis

import (
	"go/ast"
	"go/types"
)

// durabilityPkgs hold the code that persists checkpoints, result
// caches, object-store segments and model artifacts.
var durabilityPkgs = []string{"dispatch", "serve", "eval"}

// Atomicwritelint enforces the durability contract in dispatch, serve
// and eval: files that other machines (or a resumed run) will read
// must appear atomically and their write errors must surface.
//
//   - os.WriteFile / os.Create are flagged: a crash mid-write leaves a
//     torn file under the final name. Durable writes go through the
//     temp+rename helpers (os.CreateTemp + os.Rename), which these
//     packages already provide. A deliberate non-atomic write (the
//     torn-tail fault injector) carries //advlint:atomic-ok.
//   - A discarded (*os.File).Close or Sync error — expression
//     statement, defer, go, or assignment to blank — is flagged: on
//     buffered filesystems the close is where a write failure finally
//     reports. Error-path cleanup closes (the write already failed and
//     is being returned) carry //advlint:close-ok.
var Atomicwritelint = &Analyzer{
	Name: "atomicwritelint",
	Doc:  "durability code writes through temp+rename and never discards file Close/Sync errors",
	Run:  runAtomicwritelint,
}

func runAtomicwritelint(pass *Pass) error {
	if !pathIn(pass.Pkg.Path(), durabilityPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDirectWrite(pass, n)
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedClose(pass, call)
				}
			case *ast.DeferStmt:
				checkDiscardedClose(pass, n.Call)
			case *ast.GoStmt:
				checkDiscardedClose(pass, n.Call)
			case *ast.AssignStmt:
				checkBlankClose(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkDirectWrite(pass *Pass, call *ast.CallExpr) {
	for _, name := range []string{"WriteFile", "Create"} {
		if isPkgFunc(pass.TypesInfo, call, "os", name) && !pass.Annotated(call.Pos(), "atomic-ok") {
			pass.Reportf(call.Pos(),
				"os.%s in durability code is not crash-atomic; write via os.CreateTemp + os.Rename "+
					"(or annotate //advlint:atomic-ok with a justification)", name)
			return
		}
	}
}

// checkDiscardedClose flags a bare Close/Sync call on an *os.File
// whose error result nobody reads.
func checkDiscardedClose(pass *Pass, call *ast.CallExpr) {
	name, ok := osFileCloseOrSync(pass, call)
	if !ok || pass.Annotated(call.Pos(), "close-ok") {
		return
	}
	pass.Reportf(call.Pos(),
		"%s error discarded on an os.File in durability code; a failed close is a failed write "+
			"(check it, or annotate //advlint:close-ok on error-path cleanup)", name)
}

// checkBlankClose flags `_ = f.Close()` — an explicit discard still
// hides a write failure in durability code.
func checkBlankClose(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return
	}
	if id, ok := assign.Lhs[0].(*ast.Ident); !ok || id.Name != "_" {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	checkDiscardedClose(pass, call)
}

// osFileCloseOrSync reports whether call is (*os.File).Close or
// (*os.File).Sync, returning the method name.
func osFileCloseOrSync(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Close" && sel.Sel.Name != "Sync" {
		return "", false
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return "", false
	}
	ptr, ok := recv.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "os" || obj.Name() != "File" {
		return "", false
	}
	return sel.Sel.Name, true
}
