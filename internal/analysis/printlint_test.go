package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestPrintlint(t *testing.T) {
	analysistest.Run(t, analysis.Printlint, "testdata/src/obs", "repro/internal/obs")
}

// TestPrintlintCommandScope loads printing code as a command binary:
// commands own their stdout, so nothing may be flagged.
func TestPrintlintCommandScope(t *testing.T) {
	analysistest.Run(t, analysis.Printlint, "testdata/src/obs_cmd", "repro/cmd/advrepro")
}
