package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// deterministicPkgs are the packages whose outputs are pinned
// bit-identical across parallelism, sharding, resume and transport:
// everything that computes, orders or reports grid results.
var deterministicPkgs = []string{
	"eval", "exp", "dispatch", "tensor", "nn", "attack", "defense",
}

// Detlint enforces the determinism contract inside the deterministic
// packages: no wall-clock reads (time.Now — suppress a scheduling-only
// use with //advlint:wallclock-ok), no math/rand (xrand's splittable
// streams are the only sanctioned randomness), and no map iteration
// whose order can feed results. A map range is allowed when its body
// only collects keys for later sorting, or when the site carries an
// //advlint:ordered-ok justification.
var Detlint = &Analyzer{
	Name: "detlint",
	Doc: "forbid time.Now, math/rand and order-dependent map iteration " +
		"in deterministic packages (eval, exp, dispatch, tensor, nn, attack, defense)",
	Run: runDetlint,
}

func runDetlint(pass *Pass) error {
	if !pathIn(pass.Pkg.Path(), deterministicPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"deterministic package imports %s; derive randomness from xrand's seeded streams", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(pass.TypesInfo, n, "time", "Now") && !pass.Annotated(n.Pos(), "wallclock-ok") {
					pass.Reportf(n.Pos(),
						"time.Now in deterministic package: results may not depend on wall clocks "+
							"(annotate //advlint:wallclock-ok if this only drives scheduling)")
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags a range over a map value unless the site is
// annotated ordered-ok or the body is a pure key-collection loop
// (append the key to a slice, nothing else), the first half of the
// collect-sort-iterate idiom.
func checkMapRange(pass *Pass, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if pass.Annotated(rs.Pos(), "ordered-ok") {
		return
	}
	if isKeyCollection(pass, rs) {
		return
	}
	pass.Reportf(rs.Pos(),
		"map iteration order can feed results in a deterministic package; "+
			"collect and sort the keys first, or annotate //advlint:ordered-ok with a justification")
}

// isKeyCollection reports whether the range body is exactly
// `slice = append(slice, key)` with the map value unused.
func isKeyCollection(pass *Pass, rs *ast.RangeStmt) bool {
	if rs.Value != nil {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[arg] == pass.TypesInfo.Defs[key]
}
