package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDetlint(t *testing.T) {
	analysistest.Run(t, analysis.Detlint, "testdata/src/det", "repro/internal/eval")
}

// TestDetlintOutsideScope loads the same constructs under an import
// path outside the deterministic set: nothing may be flagged.
func TestDetlintOutsideScope(t *testing.T) {
	analysistest.Run(t, analysis.Detlint, "testdata/src/det_outside", "repro/internal/imaging")
}
