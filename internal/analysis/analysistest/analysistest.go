// Package analysistest verifies analyzers against testdata packages
// annotated with // want comments, mirroring the x/tools package of
// the same name: a diagnostic is expected exactly where a want comment
// names it, and everywhere else the analyzer must stay silent.
//
// A want comment sits on the line the diagnostic points at and carries
// one or more quoted regular expressions:
//
//	t := time.Now() // want `time\.Now`
//	n := make([]int, 8) // want "make" "second pattern"
//
// Every want must be matched by a reported diagnostic on its line, and
// every diagnostic must match a want — surplus findings are test
// failures too, which is what pins the negative (annotation/exemption)
// cases.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe matches one quoted expectation: a Go double-quoted string or
// a backquoted raw string.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the testdata directory as a package with the synthetic
// import path asPath, applies the analyzer, and checks its diagnostics
// against the // want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := analysis.LoadTestdata(dir, asPath)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg)
	diags, err := analysis.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// collectWants scans the package's comments for // want expectations.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantRe.FindAllString(text, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, q := range quoted {
					pattern, err := unquoteWant(q)
					if err != nil {
						t.Fatalf("%s: %v", pos, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pattern, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, pattern: re,
					})
				}
			}
		}
	}
	return wants
}

func unquoteWant(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	s, err := strconv.Unquote(q)
	if err != nil {
		return "", fmt.Errorf("bad want string %s: %v", q, err)
	}
	return s, nil
}

// claim marks the first unmatched want on the diagnostic's line whose
// pattern matches the message, reporting whether one was found.
func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
