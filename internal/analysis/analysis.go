// Package analysis is the repo's static-analysis suite: a small
// go/analysis-style framework (the real golang.org/x/tools module is
// not vendored, so the Analyzer/Pass/Diagnostic surface is reproduced
// on the standard library) plus the five invariant checkers that gate
// CI via cmd/advlint:
//
//   - detlint: deterministic packages may not read wall clocks, use
//     math/rand, or let map iteration order feed results
//   - noalloclint: functions annotated //advlint:noalloc stay off the
//     allocator on their happy path
//   - printlint: library packages never write run output directly;
//     observers and Logf own it
//   - atomicwritelint: durability code writes through the atomic
//     temp+rename helpers and never discards file Close/Sync errors
//   - fusedmathlint: kernel-adjacent code never fuses mul/add
//     (math.FMA) or compares floats with ==
//
// Findings are suppressed site-by-site with //advlint:<check>-ok
// justification comments on (or immediately above) the flagged line;
// each analyzer's doc string names the annotation it honors.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker, mirroring the x/tools
// go/analysis Analyzer contract.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and annotations.
	Name string
	// Doc is the one-paragraph description shown by advlint -help.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	annotations map[string]map[int][]string // filename -> line -> directives
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full advlint suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		Detlint,
		Noalloclint,
		Printlint,
		Atomicwritelint,
		Fusedmathlint,
	}
}

// annotationPrefix introduces a suppression or marker directive. The
// directive comment style (no space after //, like //go:build) keeps
// gofmt from detaching it from the annotated line.
const annotationPrefix = "//advlint:"

// buildAnnotations indexes every //advlint: directive by file and
// line so Annotated can answer in O(1) per query.
func (p *Pass) buildAnnotations() {
	p.annotations = make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, annotationPrefix) {
					continue
				}
				directive := strings.TrimPrefix(c.Text, annotationPrefix)
				// Only the directive word counts; the rest of the
				// line is the human justification.
				if i := strings.IndexAny(directive, " \t"); i >= 0 {
					directive = directive[:i]
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.annotations[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					p.annotations[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], directive)
			}
		}
	}
}

// Annotated reports whether pos's line, or the line directly above it,
// carries the named //advlint: directive. The one-line-above rule lets
// a justification comment sit on its own line without gofmt churn.
func (p *Pass) Annotated(pos token.Pos, directive string) bool {
	if p.annotations == nil {
		p.buildAnnotations()
	}
	position := p.Fset.Position(pos)
	byLine := p.annotations[position.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, d := range byLine[line] {
			if d == directive {
				return true
			}
		}
	}
	return false
}

// funcDirective reports whether fn's doc comment carries the named
// //advlint: directive (e.g. //advlint:noalloc).
func funcDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimPrefix(c.Text, annotationPrefix)
		if text == c.Text {
			continue
		}
		if i := strings.IndexAny(text, " \t"); i >= 0 {
			text = text[:i]
		}
		if text == directive {
			return true
		}
	}
	return false
}

// pkgTail reports whether the package import path's final segments
// match one of the given names, treating the path's last component
// (and, for testdata packages, an explicit override installed by the
// test loader) as the package identity. "repro/internal/eval" has
// tail "eval".
func pkgTail(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func pathIn(path string, names ...string) bool {
	tail := pkgTail(path)
	for _, n := range names {
		if tail == n {
			return true
		}
	}
	return false
}

// isPkgFunc reports whether the called expression resolves to the
// function pkgPath.name (e.g. "time".Now, "os".WriteFile).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// usedPkgObject resolves an identifier use to (package path, object
// name), for spotting references like os.Stdout.
func usedPkgObject(info *types.Info, sel *ast.SelectorExpr) (string, string, bool) {
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// sortedKeys returns m's keys sorted, for deterministic reporting
// inside the analyzers themselves.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
