package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The loader resolves packages the same way the build does — one
// `go list -export -deps -json` invocation per load — so build tags
// (-tags noasm) and GOAMD64 rungs select exactly the file sets the
// kernel-ladder CI legs compile. Dependencies are imported from the
// toolchain's export data (never re-typechecked from source); only the
// packages under analysis are parsed, so each Pass sees full ASTs,
// comments and go/types info for its own files.

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	Export     string
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir over the
// patterns, with extra build tags, returning every listed package.
func goList(dir string, tags []string, patterns []string) ([]*listedPkg, error) {
	args := []string{"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Standard,Export,DepOnly,GoFiles,Error"}
	if len(tags) > 0 {
		args = append(args, "-tags", strings.Join(tags, ","))
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Cgo-free file sets: the typechecker cannot follow import "C",
	// and every package in this tree builds without it.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("advlint: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("advlint: go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter satisfies types.Importer by feeding the stdlib gc
// importer each dependency's export data file from the go list run.
type exportImporter struct {
	gc      types.ImporterFrom
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, pkgs []*listedPkg) *exportImporter {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := &exportImporter{exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := imp.exports[path]
		if !ok {
			return nil, fmt.Errorf("advlint: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return imp
}

func (i *exportImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.gc.ImportFrom(path, dir, mode)
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// LoadPackages loads, parses and typechecks the packages matching the
// patterns (resolved relative to dir, honoring tags), returning them
// in deterministic import-path order. Test files are not analyzed:
// the invariants advlint enforces are production-code contracts.
func LoadPackages(dir string, tags []string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, tags, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, listed)

	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("advlint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("advlint: parse: %v", err)
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("advlint: typecheck %s: %v", lp.ImportPath, err)
		}
		out = append(out, &Package{
			Path:  lp.ImportPath,
			Name:  lp.Name,
			Fset:  fset,
			Files: files,
			Pkg:   tpkg,
			Info:  info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// RunAnalyzer applies one analyzer to one package, returning its
// diagnostics sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.Info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("advlint: %s on %s: %v", a.Name, pkg.Path, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// LoadTestdata parses and typechecks every .go file of one directory
// as a single package under a synthetic import path — how the
// analysistest harness materializes its testdata packages, including
// ones that deliberately violate invariants (testdata directories are
// invisible to go build, so the violations never reach the real tree).
// asPath controls which analyzers consider the package theirs: loading
// a file as "repro/internal/eval" puts it inside detlint's scope,
// "repro/cmd/x" outside printlint's.
func LoadTestdata(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("advlint: testdata: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("advlint: testdata parse: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p != "unsafe" {
				importSet[p] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("advlint: testdata: no .go files in %s", dir)
	}
	var imp types.Importer = newExportImporter(fset, nil)
	if len(importSet) > 0 {
		listed, err := goList(dir, nil, sortedKeys(importSet))
		if err != nil {
			return nil, err
		}
		imp = newExportImporter(fset, listed)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
	tpkg, err := conf.Check(asPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("advlint: typecheck testdata %s: %v", dir, err)
	}
	return &Package{
		Path:  asPath,
		Name:  files[0].Name.Name,
		Fset:  fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}, nil
}
