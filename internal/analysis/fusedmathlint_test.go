package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestFusedmathlint(t *testing.T) {
	analysistest.Run(t, analysis.Fusedmathlint, "testdata/src/fused", "repro/internal/tensor")
}
