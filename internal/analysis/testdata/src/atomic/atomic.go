// Package atomic exercises atomicwritelint: loaded as
// repro/internal/serve, a durability package.
package atomic

import "os"

// TornWrite is the classic violation: a crash mid-write leaves a torn
// file under the final name.
func TornWrite(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os\.WriteFile in durability code is not crash-atomic`
}

// TornCreate opens the final name directly.
func TornCreate(path string) error {
	f, err := os.Create(path) // want `os\.Create in durability code is not crash-atomic`
	if err != nil {
		return err
	}
	return f.Close()
}

// FaultInjector deliberately writes a torn file and says so.
func FaultInjector(path string, data []byte) error {
	//advlint:atomic-ok testdata: simulated torn-tail write
	return os.WriteFile(path, data, 0o644)
}

// AtomicWrite is the sanctioned shape: temp file, synced, closed with
// the error surfaced, then renamed over the final name. The error-path
// cleanup closes carry close-ok.
func AtomicWrite(dir, final string, data []byte) error {
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //advlint:close-ok error path: the write already failed
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //advlint:close-ok error path: the sync already failed
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), final)
}

// SloppyClose discards the close error four different ways.
func SloppyClose(f *os.File) {
	f.Close()       // want `Close error discarded on an os\.File in durability code`
	defer f.Close() // want `Close error discarded on an os\.File in durability code`
	_ = f.Close()   // want `Close error discarded on an os\.File in durability code`
	f.Sync()        // want `Sync error discarded on an os\.File in durability code`
}

type quietCloser struct{}

func (quietCloser) Close() error { return nil }

// CloseOther closes something that is not an os.File: no durable bytes
// ride on it, so the discard is fine.
func CloseOther(c *quietCloser) {
	c.Close()
}
