// Package det exercises detlint: loaded by the test harness as
// repro/internal/eval, a deterministic package.
package det

import (
	"math/rand" // want `deterministic package imports math/rand`
	"sort"
	"time"
)

// UseRand exists so the flagged import typechecks.
func UseRand() int { return rand.Int() }

// WallClock is flagged: a deterministic package may not read time.
func WallClock() time.Time {
	return time.Now() // want `time\.Now in deterministic package`
}

// SchedulingClock carries the justification annotation and passes.
func SchedulingClock() time.Time {
	return time.Now() //advlint:wallclock-ok scheduling only
}

// SumInMapOrder accumulates floats in map iteration order — flagged.
func SumInMapOrder(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `map iteration order`
		total += v
	}
	return total
}

// SortedKeys is the sanctioned idiom: the range only collects keys,
// and the caller iterates the sorted slice.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// JustifiedFold carries an ordered-ok annotation and passes.
func JustifiedFold(dst, src map[int]int) {
	//advlint:ordered-ok map-to-map fold; order-free
	for k, v := range src {
		dst[k] = v
	}
}

// SliceRange is not a map range and is never flagged.
func SliceRange(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}
