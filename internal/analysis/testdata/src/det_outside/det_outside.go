// Package det_outside holds the same constructs as package det but is
// loaded as repro/internal/imaging — outside detlint's deterministic
// set, so nothing here may be flagged.
package det_outside

import (
	"time"
)

// WallClock is fine outside the deterministic packages.
func WallClock() time.Time {
	return time.Now()
}

// MapOrder is fine outside the deterministic packages.
func MapOrder(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
