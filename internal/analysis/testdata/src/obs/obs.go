// Package obs exercises printlint: loaded as repro/internal/obs, a
// library package that owns no process streams.
package obs

import (
	"fmt"
	"io"
	"log" // want `library package imports log`
	"os"
)

// UseLog exists so the flagged import typechecks.
func UseLog() { log.Default() }

// Shout is flagged three ways.
func Shout(w io.Writer) {
	fmt.Println("done")                // want `fmt\.Println writes to stdout`
	fmt.Printf("%d\n", 1)              // want `fmt\.Printf writes to stdout`
	fmt.Fprintf(os.Stdout, "direct\n") // want `references os\.Stdout`
	println("dbg")                     // want `builtin print writes to stderr`
	fmt.Fprintf(w, "to caller\n")      // a caller-supplied writer is the sanctioned sink
}

// Render formats without printing — never flagged.
func Render(n int) string {
	return fmt.Sprintf("%d cells", n)
}
