// Package fused exercises fusedmathlint: loaded as
// repro/internal/tensor, a kernel-adjacent package.
package fused

import "math"

// Fused rounds once — it can never match the lane kernels.
func Fused(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want `math\.FMA fuses mul/add into one rounding`
}

// Unfused rounds the multiply and the add separately, like every rung.
func Unfused(a, b, c float64) float64 {
	return a*b + c
}

// Equal compares floats exactly — flagged.
func Equal(a, b float64) bool {
	return a == b // want `float == comparison in kernel-adjacent code`
}

// NotEqual is the != spelling of the same trap.
func NotEqual(a, b float32) bool {
	return a != b // want `float != comparison in kernel-adjacent code`
}

// ZeroFastPath compares against an exactly-representable sentinel and
// carries the justification.
func ZeroFastPath(a float32) bool {
	return a == 0 //advlint:floatcmp-ok exact zero skip
}

// IntCompare is not a float comparison.
func IntCompare(a, b int) bool {
	return a == b
}

// Tolerance is the sanctioned comparison shape.
func Tolerance(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12
}
