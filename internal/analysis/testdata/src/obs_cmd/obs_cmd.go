// Package obs_cmd holds the same prints as package obs but is loaded
// as repro/cmd/advrepro: command binaries own their stdout, so nothing
// here may be flagged.
package obs_cmd

import (
	"fmt"
	"os"
)

// Report prints freely: this is a command, not a library.
func Report(n int) {
	fmt.Println("done")
	fmt.Fprintf(os.Stderr, "%d cells\n", n)
}
