// Package noalloc exercises noalloclint: only functions annotated
// //advlint:noalloc are checked, and only their happy paths.
package noalloc

import "fmt"

// Sink keeps arguments alive without boxing them.
type Sink struct{ n int }

// Add takes a concrete parameter: calling it never boxes.
func (s *Sink) Add(n int) { s.n += n }

// Box takes an interface parameter.
func (s *Sink) Box(v any) { _ = v }

// Hot is annotated and violates every rule once.
//
//advlint:noalloc
func Hot(s *Sink, xs []int, name string) {
	buf := make([]int, 8) // want `make allocates`
	_ = buf
	p := new(int) // want `new allocates`
	_ = p
	xs = append(xs, 1) // want `append may grow`
	_ = xs
	msg := "x" + name // want `string concatenation allocates`
	_ = msg
	fmt.Sprintf("%d", s.n) // want `fmt call allocates`
	s.Box(42)              // want `boxes it on the heap`
	f := func() {}         // want `closure literal allocates`
	f()
}

// HotClean is annotated and clean: indexed writes, concrete calls,
// pointer-shaped values through interfaces, and a formatted panic on
// the shape-validation death path.
//
//advlint:noalloc
func HotClean(s *Sink, dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("noalloc: length %d != %d", len(dst), len(src)))
	}
	for i := range src {
		dst[i] = src[i] * 2
	}
	s.Add(len(dst))
	s.Box(s) // pointers fit the interface word: no boxing
}

// Cold is not annotated: the allocator is fine here.
func Cold(n int) []int {
	out := make([]int, n)
	return append(out, 1)
}
