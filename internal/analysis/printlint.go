package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// Printlint keeps run output out of library code: since PR 5,
// observers and the injected Logf own everything a run prints, so the
// packages under internal/ (and the root facade) may not write to the
// process streams directly. Flagged: fmt.Print/Printf/Println (the
// implicit-stdout family), any use of package log (its default logger
// writes to stderr), references to os.Stdout/os.Stderr, and the
// print/println builtins. fmt.Fprintf to a caller-supplied writer is
// fine — that is how the observer sinks are built.
//
// Command and example binaries (cmd/..., examples/...) own their
// stdout and are exempt.
var Printlint = &Analyzer{
	Name: "printlint",
	Doc:  "library packages must not print: no fmt.Print*, package log, or os.Stdout/os.Stderr",
	Run:  runPrintlint,
}

// libraryPkg reports whether the import path is library code subject
// to the no-print rule.
func libraryPkg(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" || seg == "examples" || seg == "testdata" {
			return false
		}
	}
	return true
}

func runPrintlint(pass *Pass) error {
	if !libraryPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "log" {
				pass.Reportf(imp.Pos(), "library package imports log; run output belongs to observers and the injected Logf")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkPrintCall(pass, n)
			case *ast.SelectorExpr:
				if path, name, ok := usedPkgObject(pass.TypesInfo, n); ok && path == "os" && (name == "Stdout" || name == "Stderr") {
					pass.Reportf(n.Pos(), "library package references os.%s; write to a caller-supplied writer instead", name)
				}
			}
			return true
		})
	}
	return nil
}

func checkPrintCall(pass *Pass, call *ast.CallExpr) {
	for _, name := range []string{"Print", "Printf", "Println"} {
		if isPkgFunc(pass.TypesInfo, call, "fmt", name) {
			pass.Reportf(call.Pos(), "fmt.%s writes to stdout from a library package; route output through an observer or Logf", name)
			return
		}
	}
	if isBuiltinCall(pass, call, "print") || isBuiltinCall(pass, call, "println") {
		pass.Reportf(call.Pos(), "builtin print writes to stderr from a library package")
	}
}
