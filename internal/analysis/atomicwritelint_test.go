package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestAtomicwritelint(t *testing.T) {
	analysistest.Run(t, analysis.Atomicwritelint, "testdata/src/atomic", "repro/internal/serve")
}
