package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Noalloclint verifies functions annotated //advlint:noalloc — the
// Workspace/Into hot paths whose zero-allocation contract the
// AllocsPerRun guards pin at runtime — never reach for the allocator
// on their happy path: no make/new, no append (hot paths write through
// pre-sized buffers by index), no string concatenation, no fmt calls,
// and no boxing of non-pointer values into interface parameters.
// Allocations inside a panic(...) argument are exempt: shape
// validation may format its death message.
//
// The check is intraprocedural by design — callees are trusted to
// carry (and be checked against) their own annotation.
var Noalloclint = &Analyzer{
	Name: "noalloclint",
	Doc:  "functions annotated //advlint:noalloc must not allocate on the happy path",
	Run:  runNoalloclint,
}

func runNoalloclint(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcDirective(fn, "noalloc") {
				continue
			}
			checkNoalloc(pass, fn)
		}
	}
	return nil
}

func checkNoalloc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(pass, n, "panic") {
				// Panic paths may allocate their message; skip the
				// whole argument subtree.
				return false
			}
			checkNoallocCall(pass, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.TypesInfo.TypeOf(n.X)) {
				pass.Reportf(n.OpPos, "string concatenation allocates in //advlint:noalloc function %s", fn.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(pass.TypesInfo.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.TokPos, "string concatenation allocates in //advlint:noalloc function %s", fn.Name.Name)
			}
		case *ast.CompositeLit:
			// Composite literals assigned to locals stay on the
			// stack; only flag them when converted to an interface,
			// which checkNoallocCall covers at call sites.
		case *ast.FuncLit:
			// A closure literal is itself an allocation.
			pass.Reportf(n.Pos(), "closure literal allocates in //advlint:noalloc function %s", fn.Name.Name)
			return false
		}
		return true
	})
}

func checkNoallocCall(pass *Pass, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates in //advlint:noalloc function; reuse a workspace buffer", b.Name())
			case "append":
				pass.Reportf(call.Pos(), "append may grow in //advlint:noalloc function; write through a pre-sized buffer by index")
			}
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if path, _, ok := usedPkgObject(pass.TypesInfo, sel); ok && path == "fmt" {
			pass.Reportf(call.Pos(), "fmt call allocates in //advlint:noalloc function; hot paths must not format")
			return
		}
	}
	checkInterfaceBoxing(pass, call)
}

// checkInterfaceBoxing flags arguments whose concrete non-pointer
// values convert to interface parameters: the conversion boxes the
// value on the heap. Pointer-shaped values (pointers, maps, chans,
// funcs, unsafe pointers) fit the interface data word and do not.
func checkInterfaceBoxing(pass *Pass, call *ast.CallExpr) {
	sigType := pass.TypesInfo.TypeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos && i == params.Len()-1 {
				paramType = params.At(params.Len() - 1).Type()
			} else {
				slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
				if !ok {
					continue
				}
				paramType = slice.Elem()
			}
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(paramType) {
			continue
		}
		argType := pass.TypesInfo.TypeOf(arg)
		if argType == nil || types.IsInterface(argType) {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.IsNil() {
			continue
		}
		switch argType.Underlying().(type) {
		case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s into interface parameter boxes it on the heap in //advlint:noalloc function",
			types.TypeString(argType, types.RelativeTo(pass.Pkg)))
	}
}

func isBuiltinCall(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
