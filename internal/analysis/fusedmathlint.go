package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// kernelPkgs hold the SGEMM ladder and the layers that lower onto it:
// the code whose numerics the bit-identity contract pins.
var kernelPkgs = []string{"tensor", "nn"}

// Fusedmathlint guards the unfused mul/add lane contract from the
// kernel ladder (PRs 4/8): every SIMD rung performs separate multiply
// and add roundings, so Go-side reference and driver code must too.
//
//   - math.FMA is flagged unconditionally: a fused multiply-add rounds
//     once and its result diverges from every lane kernel.
//   - == / != between floats is flagged: equality that "works" on one
//     rung is a latent divergence on another. Exact-representation
//     compares (a zero fast path, a sentinel) carry
//     //advlint:floatcmp-ok with a justification.
var Fusedmathlint = &Analyzer{
	Name: "fusedmathlint",
	Doc:  "kernel-adjacent code must not fuse mul/add (math.FMA) or compare floats with ==",
	Run:  runFusedmathlint,
}

func runFusedmathlint(pass *Pass) error {
	if !pathIn(pass.Pkg.Path(), kernelPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(pass.TypesInfo, n, "math", "FMA") {
					pass.Reportf(n.Pos(),
						"math.FMA fuses mul/add into one rounding; the lane kernels round twice — keep the multiply and add separate")
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloatType(pass.TypesInfo.TypeOf(n.X)) && !isFloatType(pass.TypesInfo.TypeOf(n.Y)) {
					return true
				}
				if pass.Annotated(n.Pos(), "floatcmp-ok") {
					return true
				}
				pass.Reportf(n.OpPos,
					"float %s comparison in kernel-adjacent code; compare against a tolerance, "+
						"or annotate //advlint:floatcmp-ok for an exact-representation check", n.Op)
			}
			return true
		})
	}
	return nil
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
