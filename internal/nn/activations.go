package nn

import (
	"math"

	"repro/internal/tensor"
)

// ReLU is the rectified linear activation, elementwise max(0, x).
type ReLU struct {
	scratch
	lastIn *tensor.Tensor
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	ws := r.workspace()
	lastIn := ws.TensorLike(r, "lastIn", x)
	copy(lastIn.Data(), x.Data())
	r.lastIn = lastIn
	out := ws.TensorLike(r, "out", x)
	d := out.Data()
	for i, v := range x.Data() {
		if v < 0 {
			v = 0
		}
		d[i] = v
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := r.workspace().TensorLike(r, "dx", grad)
	od := out.Data()
	xd := r.lastIn.Data()
	for i, g := range grad.Data() {
		if xd[i] <= 0 {
			g = 0
		}
		od[i] = g
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Clone implements Layer.
func (r *ReLU) Clone() Layer { return &ReLU{} }

// LeakyReLU is max(x, alpha*x); a small negative slope keeps gradients
// flowing through inactive units, which stabilises the tiny detectors here.
type LeakyReLU struct {
	Alpha float32

	scratch
	lastIn *tensor.Tensor
}

var _ Layer = (*LeakyReLU)(nil)

// NewLeakyReLU returns a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float32) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Forward implements Layer.
func (r *LeakyReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	ws := r.workspace()
	lastIn := ws.TensorLike(r, "lastIn", x)
	copy(lastIn.Data(), x.Data())
	r.lastIn = lastIn
	out := ws.TensorLike(r, "out", x)
	d := out.Data()
	for i, v := range x.Data() {
		if v < 0 {
			v = r.Alpha * v
		}
		d[i] = v
	}
	return out
}

// Backward implements Layer.
func (r *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := r.workspace().TensorLike(r, "dx", grad)
	od := out.Data()
	xd := r.lastIn.Data()
	for i, g := range grad.Data() {
		if xd[i] <= 0 {
			g *= r.Alpha
		}
		od[i] = g
	}
	return out
}

// Params implements Layer.
func (r *LeakyReLU) Params() []*Param { return nil }

// Clone implements Layer.
func (r *LeakyReLU) Clone() Layer { return &LeakyReLU{Alpha: r.Alpha} }

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	scratch
	lastOut *tensor.Tensor
}

var _ Layer = (*Tanh)(nil)

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	ws := t.workspace()
	out := ws.TensorLike(t, "out", x)
	d := out.Data()
	for i, v := range x.Data() {
		d[i] = float32(math.Tanh(float64(v)))
	}
	lastOut := ws.TensorLike(t, "lastOut", x)
	copy(lastOut.Data(), d)
	t.lastOut = lastOut
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := t.workspace().TensorLike(t, "dx", grad)
	od := out.Data()
	yd := t.lastOut.Data()
	for i, g := range grad.Data() {
		od[i] = g * (1 - yd[i]*yd[i])
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Clone implements Layer.
func (t *Tanh) Clone() Layer { return &Tanh{} }

// Sigmoid is the logistic activation 1/(1+e^-x).
type Sigmoid struct {
	scratch
	lastOut *tensor.Tensor
}

var _ Layer = (*Sigmoid)(nil)

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// SigmoidScalar applies the logistic function to a single value.
func SigmoidScalar(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	ws := s.workspace()
	out := ws.TensorLike(s, "out", x)
	d := out.Data()
	for i, v := range x.Data() {
		d[i] = SigmoidScalar(v)
	}
	lastOut := ws.TensorLike(s, "lastOut", x)
	copy(lastOut.Data(), d)
	s.lastOut = lastOut
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := s.workspace().TensorLike(s, "dx", grad)
	od := out.Data()
	yd := s.lastOut.Data()
	for i, g := range grad.Data() {
		od[i] = g * yd[i] * (1 - yd[i])
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Clone implements Layer.
func (s *Sigmoid) Clone() Layer { return &Sigmoid{} }

// Flatten reshapes the input to a flat vector — or, for a rank-4 [N,C,H,W]
// batch, to a [N, C·H·W] matrix so a following Linear sees one row per
// sample. Backward restores the original shape. Both directions are views
// over the caller's storage, memoised so the steady state allocates no
// fresh headers.
type Flatten struct {
	lastShape []int
	fwdView   viewCache
	bwdView   viewCache
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if !x.ShapeEq(f.lastShape...) {
		f.lastShape = x.Shape()
	}
	if x.Rank() == 4 {
		return f.fwdView.of2(x, x.Dim(0), x.Len()/x.Dim(0))
	}
	return f.fwdView.of1(x)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return f.bwdView.ofShape(grad, f.lastShape)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Clone implements Layer.
func (f *Flatten) Clone() Layer { return &Flatten{} }
