package nn

import (
	"math"

	"repro/internal/tensor"
)

// ReLU is the rectified linear activation, elementwise max(0, x).
type ReLU struct {
	lastIn *tensor.Tensor
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	r.lastIn = x.Clone()
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	od := out.Data()
	xd := r.lastIn.Data()
	for i := range od {
		if xd[i] <= 0 {
			od[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Clone implements Layer.
func (r *ReLU) Clone() Layer { return &ReLU{} }

// LeakyReLU is max(x, alpha*x); a small negative slope keeps gradients
// flowing through inactive units, which stabilises the tiny detectors here.
type LeakyReLU struct {
	Alpha  float32
	lastIn *tensor.Tensor
}

var _ Layer = (*LeakyReLU)(nil)

// NewLeakyReLU returns a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float32) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Forward implements Layer.
func (r *LeakyReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	r.lastIn = x.Clone()
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = r.Alpha * v
		}
	}
	return out
}

// Backward implements Layer.
func (r *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	od := out.Data()
	xd := r.lastIn.Data()
	for i := range od {
		if xd[i] <= 0 {
			od[i] *= r.Alpha
		}
	}
	return out
}

// Params implements Layer.
func (r *LeakyReLU) Params() []*Param { return nil }

// Clone implements Layer.
func (r *LeakyReLU) Clone() Layer { return &LeakyReLU{Alpha: r.Alpha} }

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	lastOut *tensor.Tensor
}

var _ Layer = (*Tanh)(nil)

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		d[i] = float32(math.Tanh(float64(v)))
	}
	t.lastOut = out.Clone()
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	od := out.Data()
	yd := t.lastOut.Data()
	for i := range od {
		od[i] *= 1 - yd[i]*yd[i]
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Clone implements Layer.
func (t *Tanh) Clone() Layer { return &Tanh{} }

// Sigmoid is the logistic activation 1/(1+e^-x).
type Sigmoid struct {
	lastOut *tensor.Tensor
}

var _ Layer = (*Sigmoid)(nil)

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// SigmoidScalar applies the logistic function to a single value.
func SigmoidScalar(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		d[i] = SigmoidScalar(v)
	}
	s.lastOut = out.Clone()
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	od := out.Data()
	yd := s.lastOut.Data()
	for i := range od {
		od[i] *= yd[i] * (1 - yd[i])
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Clone implements Layer.
func (s *Sigmoid) Clone() Layer { return &Sigmoid{} }

// Flatten reshapes any input to a flat vector; backward restores the shape.
type Flatten struct {
	lastShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	f.lastShape = x.Shape()
	return x.Reshape(x.Len())
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.lastShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Clone implements Layer.
func (f *Flatten) Clone() Layer { return &Flatten{} }
