package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients. Step does
// not zero gradients; callers decide when to clear them (ZeroGrad) so that
// gradient accumulation across a mini-batch works naturally.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with classical momentum and optional
// decoupled weight decay.
type SGD struct {
	LR          float32
	Momentum    float32
	WeightDecay float32

	vel map[*Param]*tensor.Tensor
}

var _ Optimizer = (*SGD)(nil)

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param]*tensor.Tensor)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		p.MarkMutated()
		if s.WeightDecay != 0 { //advlint:floatcmp-ok config sentinel: exact 0 disables decay
			p.Value.ScaleInPlace(1 - s.LR*s.WeightDecay)
		}
		if s.Momentum == 0 { //advlint:floatcmp-ok config sentinel: exact 0 selects plain SGD
			p.Value.AddScaledInPlace(p.Grad, -s.LR)
			continue
		}
		v, ok := s.vel[p]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			s.vel[p] = v
		}
		v.ScaleInPlace(s.Momentum).AddScaledInPlace(p.Grad, 1)
		p.Value.AddScaledInPlace(v, -s.LR)
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR     float32
	Beta1  float32
	Beta2  float32
	Eps    float32
	WDecay float32

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns an Adam optimizer with standard defaults for the betas.
func NewAdam(lr float32) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Tensor),
		v: make(map[*Param]*tensor.Tensor),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(float64(a.Beta1), float64(a.t))
	bc2 := 1 - math.Pow(float64(a.Beta2), float64(a.t))
	for _, p := range params {
		p.MarkMutated()
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Shape()...)
		}
		v := a.v[p]
		md := m.Data()
		vd := v.Data()
		gd := p.Grad.Data()
		pd := p.Value.Data()
		for i, g := range gd {
			if a.WDecay != 0 { //advlint:floatcmp-ok config sentinel: exact 0 disables decay
				g += a.WDecay * pd[i]
			}
			md[i] = a.Beta1*md[i] + (1-a.Beta1)*g
			vd[i] = a.Beta2*vd[i] + (1-a.Beta2)*g*g
			mh := float64(md[i]) / bc1
			vh := float64(vd[i]) / bc2
			pd[i] -= a.LR * float32(mh/(math.Sqrt(vh)+float64(a.Eps)))
		}
	}
}

// ClipGradNorm rescales gradients so their global L2 norm is at most max.
// It returns the pre-clip norm, which trainers log to monitor stability.
func ClipGradNorm(params []*Param, max float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			sq += float64(g) * float64(g)
		}
	}
	norm := math.Sqrt(sq)
	if norm > max && norm > 0 {
		scale := float32(max / norm)
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm
}
