package nn

import (
	"runtime"
	"testing"

	"repro/internal/tensor"
	"repro/internal/testenv"
	"repro/internal/xrand"
)

// batchTestNet builds a DistNet-shaped stack plus a batch of n 3×16×16
// frames and the same frames as individual CHW tensors.
func batchTestNet(n int) (*Sequential, *tensor.Tensor, []*tensor.Tensor) {
	rng := xrand.New(71)
	net := NewSequential(
		NewConv2D(rng, 3, 6, 3, 2, 1),
		NewLeakyReLU(0.1),
		NewConv2D(rng, 6, 8, 3, 2, 1),
		NewLeakyReLU(0.1),
		NewFlatten(),
		NewLinear(rng, 8*4*4, 10),
		NewTanh(),
		NewLinear(rng, 10, 2),
	)
	batch := tensor.New(n, 3, 16, 16)
	rng.FillUniform(batch.Data(), 0, 1)
	singles := make([]*tensor.Tensor, n)
	sample := 3 * 16 * 16
	for s := 0; s < n; s++ {
		singles[s] = tensor.FromSlice(batch.Data()[s*sample:(s+1)*sample], 3, 16, 16)
	}
	return net, batch, singles
}

// TestBatchForwardBitIdentical is the core batch-first invariant: running N
// frames through one batched forward must produce, frame for frame, the
// same bits as N single-sample forwards — at any GOMAXPROCS, since kernel
// selection is shape-gated, never worker-count-gated.
func TestBatchForwardBitIdentical(t *testing.T) {
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		for _, n := range []int{1, 3, 8} {
			net, batch, singles := batchTestNet(n)
			// Single-sample reference on a clone so caches never mix.
			ref := net.Clone()
			want := make([][]float32, n)
			for s, x := range singles {
				out := ref.Forward(x, false)
				want[s] = append([]float32(nil), out.Data()...)
			}
			got := net.Forward(batch, false)
			if got.Dim(0) != n {
				t.Fatalf("procs=%d n=%d: batched output shape %v", procs, n, got.Shape())
			}
			per := got.Len() / n
			for s := 0; s < n; s++ {
				row := got.Data()[s*per : (s+1)*per]
				for i, v := range row {
					if v != want[s][i] {
						t.Fatalf("procs=%d n=%d: batched forward diverges at sample %d elem %d: %v vs %v",
							procs, n, s, i, v, want[s][i])
					}
				}
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestBatchForwardParallelGEMMBitIdentical is the batch invariant at a
// shape whose conv patch product crosses the GEMM row-shard threshold
// (batch 8 of 3×32×32 frames: the first conv lowers to a 2048×27 · 27×6
// product, past tensor's parallelMinWork), so the batched forward runs on
// the multi-core path while the single-sample references stay serial.
// Frame-for-frame bit identity across GOMAXPROCS ∈ {1,4,16} pins the
// row shards to the serial numerics — the per-model workspace buffers are
// only ever touched by disjoint row ranges.
func TestBatchForwardParallelGEMMBitIdentical(t *testing.T) {
	rng := xrand.New(72)
	const n, c, hw = 8, 3, 32
	net := NewSequential(
		NewConv2D(rng, c, 6, 3, 2, 1),
		NewLeakyReLU(0.1),
		NewConv2D(rng, 6, 8, 3, 2, 1),
		NewLeakyReLU(0.1),
		NewFlatten(),
		NewLinear(rng, 8*8*8, 4),
	)
	batch := tensor.New(n, c, hw, hw)
	rng.FillUniform(batch.Data(), 0, 1)
	sample := c * hw * hw

	// Serial single-sample reference on a clone at GOMAXPROCS=1.
	old := runtime.GOMAXPROCS(1)
	ref := net.Clone()
	want := make([][]float32, n)
	for s := 0; s < n; s++ {
		x := tensor.FromSlice(batch.Data()[s*sample:(s+1)*sample], c, hw, hw)
		out := ref.Forward(x, false)
		want[s] = append([]float32(nil), out.Data()...)
	}
	runtime.GOMAXPROCS(old)

	for _, procs := range []int{1, 4, 16} {
		old := runtime.GOMAXPROCS(procs)
		got := net.Forward(batch, false)
		per := got.Len() / n
		for s := 0; s < n; s++ {
			row := got.Data()[s*per : (s+1)*per]
			for i, v := range row {
				if v != want[s][i] {
					t.Fatalf("procs=%d: parallel-GEMM batched forward diverges at sample %d elem %d: %v vs %v",
						procs, s, i, v, want[s][i])
				}
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestBatchThenSingleForward interleaves batched and single calls on one
// model instance: the workspace must resize transparently and the numbers
// must not drift.
func TestBatchThenSingleForward(t *testing.T) {
	net, batch, singles := batchTestNet(4)
	want := net.Clone().Forward(singles[2], false).Clone()

	net.Forward(batch, false)
	got1 := net.Forward(singles[2], false).Clone()
	net.Forward(batch, false)
	got2 := net.Forward(singles[2], false)
	for i := range want.Data() {
		if got1.Data()[i] != want.Data()[i] || got2.Data()[i] != want.Data()[i] {
			t.Fatalf("single forward drifts after batched calls at %d", i)
		}
	}
}

// TestBatchBackwardInputGradBitIdentical checks the batched backward's
// per-sample input gradients against the single path bit for bit (the
// scatter kernels accumulate overlapping windows in the same order).
func TestBatchBackwardInputGradBitIdentical(t *testing.T) {
	const n = 3
	net, batch, singles := batchTestNet(n)
	ref := net.Clone()

	seed := tensor.New(2)
	seed.Data()[0], seed.Data()[1] = 1, -0.5
	want := make([][]float32, n)
	for s, x := range singles {
		ref.Forward(x, false)
		ref.ZeroGrad()
		g := ref.Backward(seed)
		want[s] = append([]float32(nil), g.Data()...)
	}

	net.Forward(batch, false)
	net.ZeroGrad()
	seedB := tensor.New(n, 2)
	for s := 0; s < n; s++ {
		seedB.Data()[s*2], seedB.Data()[s*2+1] = 1, -0.5
	}
	gB := net.Backward(seedB)
	if gB.Dim(0) != n {
		t.Fatalf("batched input grad shape %v", gB.Shape())
	}
	per := gB.Len() / n
	for s := 0; s < n; s++ {
		row := gB.Data()[s*per : (s+1)*per]
		for i, v := range row {
			if v != want[s][i] {
				t.Fatalf("batched input grad diverges at sample %d elem %d: %v vs %v", s, i, v, want[s][i])
			}
		}
	}
}

// TestBatchBackwardParamGradClose checks the batched parameter gradients
// against summed single-sample gradients to float tolerance (the batch
// accumulates in one pass, so only the summation order differs).
func TestBatchBackwardParamGradClose(t *testing.T) {
	const n = 4
	net, batch, singles := batchTestNet(n)
	ref := net.Clone()

	seed := tensor.New(2)
	seed.Data()[0], seed.Data()[1] = 0.7, -1.1
	for _, x := range singles {
		ref.Forward(x, false)
		ref.Backward(seed) // grads accumulate across samples
	}

	net.Forward(batch, false)
	seedB := tensor.New(n, 2)
	for s := 0; s < n; s++ {
		seedB.Data()[s*2], seedB.Data()[s*2+1] = 0.7, -1.1
	}
	net.Backward(seedB)

	wantP := ref.Params()
	gotP := net.Params()
	for pi := range wantP {
		wd := wantP[pi].Grad.Data()
		gd := gotP[pi].Grad.Data()
		for i := range wd {
			d := float64(wd[i] - gd[i])
			if d > 1e-3 || d < -1e-3 {
				t.Fatalf("param %s grad diverges at %d: %v vs %v", wantP[pi].Name, i, gd[i], wd[i])
			}
		}
	}
}

// TestBatchLayersBitIdentical exercises the batched paths of the layers the
// perception models don't chain (GroupNorm, MaxPool2D, Upsample2x) against
// their per-sample outputs.
func TestBatchLayersBitIdentical(t *testing.T) {
	rng := xrand.New(72)
	const n, c, h, w = 3, 4, 8, 8
	batch := tensor.New(n, c, h, w)
	rng.FillUniform(batch.Data(), -1, 1)
	sample := c * h * w

	layers := map[string]func() Layer{
		"groupnorm": func() Layer { return NewGroupNorm(2, c) },
		"maxpool":   func() Layer { return NewMaxPool2D(2) },
		"upsample":  func() Layer { return NewUpsample2x() },
	}
	for name, mk := range layers {
		lb := mk()
		ls := mk()
		got := lb.Forward(batch, false)
		if got.Dim(0) != n {
			t.Fatalf("%s: batched output shape %v", name, got.Shape())
		}
		per := got.Len() / n
		for s := 0; s < n; s++ {
			x := tensor.FromSlice(batch.Data()[s*sample:(s+1)*sample], c, h, w)
			want := ls.Forward(x, false)
			row := got.Data()[s*per : (s+1)*per]
			for i, v := range row {
				if v != want.Data()[i] {
					t.Fatalf("%s: batch diverges at sample %d elem %d", name, s, i)
				}
			}
		}
	}
}

// TestBatchForwardSteadyStateAllocs extends the PR 2 allocation budgets to
// the batched path: once the workspace is sized for the batch, batched
// inference must not touch the allocator.
func TestBatchForwardSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	net, batch, _ := batchTestNet(8)
	net.Forward(batch, false) // size the workspace
	if avg := testing.AllocsPerRun(50, func() { net.Forward(batch, false) }); avg >= 1 {
		t.Fatalf("batched Sequential.Forward allocates %.2f/op in steady state, want 0", avg)
	}
}
