package nn

import (
	"runtime"
	"testing"

	"repro/internal/tensor"
	"repro/internal/testenv"
	"repro/internal/xrand"
)

// The single-frame conv/linear paths were unified onto the k-major SIMD
// kernel; these tests pin them byte-for-byte against the previous scalar
// implementations, which survive in the tensor package (Im2Col/Col2Im,
// MatMul, MatMulTransB) exactly so they can serve as references here. Any
// kernel change that alters a single bit of a forward or backward fails.

// legacyConvForward is the pre-unification single-sample path: column-major
// Im2Col lowering, packed scalar MatMul, broadcast bias.
func legacyConvForward(c *Conv2D, x *tensor.Tensor) *tensor.Tensor {
	ps := c.Params()
	w, b := ps[0].Value, ps[1].Value
	g := tensor.ConvGeom{InC: c.InC, InH: x.Dim(1), InW: x.Dim(2), K: c.K, Stride: c.Stride, Pad: c.Pad}
	oHW := g.OutH() * g.OutW()
	cols := tensor.New(c.InC*c.K*c.K, oHW)
	tensor.Im2ColInto(cols, x, g)
	out := tensor.New(c.OutC, oHW)
	tensor.MatMulInto(out, w, cols)
	od := out.Data()
	bd := b.Data()
	for ch := 0; ch < c.OutC; ch++ {
		bias := bd[ch]
		row := od[ch*oHW : (ch+1)*oHW]
		for i := range row {
			row[i] += bias
		}
	}
	return out.Reshape(c.OutC, g.OutH(), g.OutW())
}

// legacyConvBackward is the pre-unification single-sample adjoint: dW via
// the packed MatMulTransB against the columns, db row sums, dX through
// Wᵀ·G and Col2Im. It returns (dW, db, dX) without touching the layer.
func legacyConvBackward(c *Conv2D, x, grad *tensor.Tensor) (dW, db, dX *tensor.Tensor) {
	ps := c.Params()
	w := ps[0].Value
	g := tensor.ConvGeom{InC: c.InC, InH: x.Dim(1), InW: x.Dim(2), K: c.K, Stride: c.Stride, Pad: c.Pad}
	oHW := g.OutH() * g.OutW()
	cols := tensor.New(c.InC*c.K*c.K, oHW)
	tensor.Im2ColInto(cols, x, g)
	gm := grad.Reshape(c.OutC, oHW)

	dW = tensor.New(c.OutC, c.InC*c.K*c.K)
	tensor.MatMulTransBInto(dW, gm, cols)

	db = tensor.New(c.OutC)
	gd := gm.Data()
	for ch := 0; ch < c.OutC; ch++ {
		var s float32
		for _, v := range gd[ch*oHW : (ch+1)*oHW] {
			s += v
		}
		db.Data()[ch] = s
	}

	wT := tensor.New(c.InC*c.K*c.K, c.OutC)
	tensor.Transpose2DInto(wT, w)
	dCols := tensor.New(c.InC*c.K*c.K, oHW)
	tensor.MatMulInto(dCols, wT, gm)
	dX = tensor.New(g.InC, g.InH, g.InW)
	tensor.Col2ImInto(dX, dCols, g)
	return dW, db, dX
}

// TestConv2DUnifiedMatchesScalarReference pins the unified single-frame
// conv forward AND backward to the previous scalar path byte for byte,
// across geometries and GOMAXPROCS settings (kernel choice is CPU-gated,
// never worker-count-gated).
func TestConv2DUnifiedMatchesScalarReference(t *testing.T) {
	type geom struct{ inC, outC, k, stride, pad, h, w int }
	geoms := []geom{
		{3, 12, 3, 2, 1, 32, 32}, // DistNet/TinyDet first stage
		{12, 24, 3, 2, 1, 16, 16},
		{8, 5, 3, 1, 1, 9, 7}, // odd spatial size, stride 1
		{4, 8, 3, 2, 1, 10, 14},
	}
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		for _, ge := range geoms {
			rng := xrand.New(int64(ge.inC*100 + ge.outC))
			c := NewConv2D(rng, ge.inC, ge.outC, ge.k, ge.stride, ge.pad)
			x := tensor.New(ge.inC, ge.h, ge.w)
			rng.FillUniform(x.Data(), -1, 1)

			got := c.Forward(x, false)
			want := legacyConvForward(c, x)
			if !got.ShapeEq(want.Shape()...) {
				t.Fatalf("procs=%d %+v: shape %v vs %v", procs, ge, got.Shape(), want.Shape())
			}
			for i := range want.Data() {
				if got.Data()[i] != want.Data()[i] {
					t.Fatalf("procs=%d %+v: forward diverges at %d: %v vs %v",
						procs, ge, i, got.Data()[i], want.Data()[i])
				}
			}

			grad := tensor.New(got.Shape()...)
			rng.FillUniform(grad.Data(), -1, 1)
			gradCopy := grad.Clone()
			dX := c.Backward(grad)
			wantW, wantB, wantX := legacyConvBackward(c, x, gradCopy)
			for i := range wantX.Data() {
				if dX.Data()[i] != wantX.Data()[i] {
					t.Fatalf("procs=%d %+v: dX diverges at %d", procs, ge, i)
				}
			}
			ps := c.Params()
			for i := range wantW.Data() {
				if ps[0].Grad.Data()[i] != wantW.Data()[i] {
					t.Fatalf("procs=%d %+v: dW diverges at %d: %v vs %v",
						procs, ge, i, ps[0].Grad.Data()[i], wantW.Data()[i])
				}
			}
			for i := range wantB.Data() {
				if ps[1].Grad.Data()[i] != wantB.Data()[i] {
					t.Fatalf("procs=%d %+v: db diverges at %d", procs, ge, i)
				}
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestLinearUnifiedMatchesScalarReference pins the unified single-sample
// dense forward and backward to the previous explicit gemv loops.
func TestLinearUnifiedMatchesScalarReference(t *testing.T) {
	rng := xrand.New(31)
	const in, out = 57, 13
	l := NewLinear(rng, in, out)
	ps := l.Params()
	wd := ps[0].Value.Data()
	bd := ps[1].Value.Data()
	x := tensor.New(in)
	rng.FillUniform(x.Data(), -1, 1)

	got := l.Forward(x, false)
	if got.Rank() != 1 || got.Dim(0) != out {
		t.Fatalf("single Linear output shape %v", got.Shape())
	}
	for o := 0; o < out; o++ {
		var s float32
		for i := 0; i < in; i++ {
			s += wd[o*in+i] * x.Data()[i]
		}
		if want := s + bd[o]; got.Data()[o] != want {
			t.Fatalf("forward diverges at %d: %v vs %v", o, got.Data()[o], want)
		}
	}

	grad := tensor.New(out)
	rng.FillUniform(grad.Data(), -1, 1)
	dx := l.Backward(grad)
	if dx.Rank() != 1 || dx.Dim(0) != in {
		t.Fatalf("single Linear input grad shape %v", dx.Shape())
	}
	wg := ps[0].Grad.Data()
	bg := ps[1].Grad.Data()
	for i := 0; i < in; i++ {
		var s float32
		for o := 0; o < out; o++ {
			s += grad.Data()[o] * wd[o*in+i]
		}
		if dx.Data()[i] != s {
			t.Fatalf("dx diverges at %d: %v vs %v", i, dx.Data()[i], s)
		}
	}
	for o := 0; o < out; o++ {
		if bg[o] != grad.Data()[o] {
			t.Fatalf("db diverges at %d", o)
		}
		for i := 0; i < in; i++ {
			if want := grad.Data()[o] * x.Data()[i]; wg[o*in+i] != want {
				t.Fatalf("dW diverges at (%d,%d)", o, i)
			}
		}
	}
}

// TestBackwardInputMatchesBackward checks the attack-path backward: the
// input gradient must equal a full Backward's bit for bit while leaving
// every parameter gradient untouched.
func TestBackwardInputMatchesBackward(t *testing.T) {
	for _, n := range []int{1, 4} {
		net, batch, _ := batchTestNet(n)
		ref := net.Clone()

		seedB := tensor.New(n, 2)
		for s := 0; s < n; s++ {
			seedB.Data()[s*2], seedB.Data()[s*2+1] = 0.9, -0.4
		}
		ref.Forward(batch, false)
		ref.ZeroGrad()
		want := ref.Backward(seedB).Clone()

		net.Forward(batch, false)
		net.ZeroGrad()
		got := net.BackwardInput(seedB)
		for i := range want.Data() {
			if got.Data()[i] != want.Data()[i] {
				t.Fatalf("n=%d: BackwardInput diverges from Backward at %d", n, i)
			}
		}
		for _, p := range net.Params() {
			for i, v := range p.Grad.Data() {
				if v != 0 {
					t.Fatalf("n=%d: BackwardInput accumulated into %s grad at %d", n, p.Name, i)
				}
			}
		}
	}
}

// TestLinearSingleSteadyStateAllocs extends the allocation budgets to the
// unified single-sample dense path (forward, full backward and the
// input-only backward).
func TestLinearSingleSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	rng := xrand.New(7)
	l := NewLinear(rng, 96, 24)
	x := tensor.New(96)
	rng.FillUniform(x.Data(), -1, 1)
	out := l.Forward(x, false)
	grad := tensor.New(out.Shape()...)
	grad.Fill(0.25)
	l.Backward(grad)
	l.BackwardInput(grad)
	if avg := testing.AllocsPerRun(100, func() { l.Forward(x, false) }); avg >= 1 {
		t.Fatalf("single Linear.Forward allocates %.2f/op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { l.Backward(grad) }); avg >= 1 {
		t.Fatalf("single Linear.Backward allocates %.2f/op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { l.BackwardInput(grad) }); avg >= 1 {
		t.Fatalf("single Linear.BackwardInput allocates %.2f/op in steady state, want 0", avg)
	}
}

// TestConv2DBackwardInputSteadyStateAllocs guards the attack-path conv
// backward the same way the full backward is guarded.
func TestConv2DBackwardInputSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	rng := xrand.New(1)
	c := NewConv2D(rng, 3, 16, 3, 2, 1)
	x := tensor.New(3, 32, 32)
	out := c.Forward(x, false)
	grad := tensor.New(out.Shape()...)
	grad.Fill(0.5)
	c.BackwardInput(grad)
	if avg := testing.AllocsPerRun(100, func() { c.BackwardInput(grad) }); avg >= 1 {
		t.Fatalf("Conv2D.BackwardInput allocates %.2f/op in steady state, want 0", avg)
	}
}

// TestBatchBackwardSteadyStateAllocs extends the allocation budgets to the
// batched backward the trainers now drive: once the workspace is sized,
// a batched forward+backward pass must not touch the allocator.
func TestBatchBackwardSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	net, batch, _ := batchTestNet(8)
	seedB := tensor.New(8, 2)
	seedB.Fill(0.5)
	step := func() {
		net.Forward(batch, false)
		net.ZeroGrad()
		net.Backward(seedB)
	}
	step() // size the workspace
	if avg := testing.AllocsPerRun(50, step); avg >= 1 {
		t.Fatalf("batched forward+backward allocates %.2f/op in steady state, want 0", avg)
	}
}
