package nn

import (
	"testing"

	"repro/internal/testenv"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Steady-state allocation guards for the workspace model: after the first
// Forward/Backward sized the scratch buffers, inference and gradient loops
// must not touch the allocator. Thresholds are < 1 rather than == 0 so a
// rare GC clearing the matmul pack pool mid-measurement doesn't flake.

func TestConv2DForwardSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	rng := xrand.New(1)
	c := NewConv2D(rng, 3, 16, 3, 2, 1)
	x := tensor.New(3, 32, 32)
	c.Forward(x, false) // size the workspace
	if avg := testing.AllocsPerRun(100, func() { c.Forward(x, false) }); avg >= 1 {
		t.Fatalf("Conv2D.Forward allocates %.2f/op in steady state, want 0", avg)
	}
}

func TestConv2DBackwardSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	rng := xrand.New(1)
	c := NewConv2D(rng, 3, 16, 3, 2, 1)
	x := tensor.New(3, 32, 32)
	out := c.Forward(x, false)
	grad := tensor.New(out.Shape()...)
	grad.Fill(0.5)
	c.Backward(grad)
	if avg := testing.AllocsPerRun(100, func() { c.Backward(grad) }); avg >= 1 {
		t.Fatalf("Conv2D.Backward allocates %.2f/op in steady state, want 0", avg)
	}
}

func TestSequentialForwardBackwardSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	rng := xrand.New(2)
	net := NewSequential(
		NewConv2D(rng, 3, 12, 3, 2, 1),
		NewLeakyReLU(0.1),
		NewFlatten(),
		NewLinear(rng, 12*12*12, 8),
		NewReLU(),
		NewLinear(rng, 8, 1),
	)
	x := tensor.New(3, 24, 24)
	x.Fill(0.3)
	seed := tensor.New(1)
	seed.Data()[0] = 1
	step := func() {
		net.Forward(x, false)
		net.ZeroGrad()
		net.Backward(seed)
	}
	step() // size the workspace
	if avg := testing.AllocsPerRun(50, step); avg >= 1 {
		t.Fatalf("Sequential forward+backward allocates %.2f/op in steady state, want 0", avg)
	}
}

// TestWorkspaceReuseKeepsResults runs the same input through a network
// twice and through a fresh clone, checking buffer reuse never changes the
// numbers and that the retention rule (outputs valid until the next call)
// holds as documented.
func TestWorkspaceReuseKeepsResults(t *testing.T) {
	rng := xrand.New(3)
	net := NewSequential(
		NewConv2D(rng, 3, 8, 3, 1, 1),
		NewTanh(),
		NewFlatten(),
		NewLinear(rng, 8*10*10, 4),
		NewSigmoid(),
	)
	x := tensor.New(3, 10, 10)
	for i := range x.Data() {
		x.Data()[i] = float32(i%17) * 0.05
	}
	first := net.Forward(x, false).Clone()
	second := net.Forward(x, false)
	for i := range first.Data() {
		if first.Data()[i] != second.Data()[i] {
			t.Fatalf("repeat forward diverged at %d", i)
		}
	}
	clone := net.Clone()
	third := clone.Forward(x, false)
	for i := range first.Data() {
		if first.Data()[i] != third.Data()[i] {
			t.Fatalf("clone forward diverged at %d", i)
		}
	}
	// The clone ran on its own workspace: the original's last output must
	// still be intact (second aliases it).
	for i := range first.Data() {
		if first.Data()[i] != second.Data()[i] {
			t.Fatalf("clone forward overwrote the original's output at %d", i)
		}
	}
}
