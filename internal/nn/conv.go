package nn

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Conv2D is a 2-D convolution over CHW tensors implemented with im2col so
// the inner loop is a single matrix multiply. Weights are stored as an
// (outC)×(inC·K·K) matrix; bias is per output channel. All per-call
// tensors (columns, outputs, gradient scratch) live in the model workspace
// and are reused across calls.
type Conv2D struct {
	InC, OutC   int
	K           int
	Stride, Pad int

	w, b *Param

	scratch

	// Activation cache for Backward: the im2col columns and the geometry
	// they were built with, so Backward never re-derives shapes.
	lastCols  *tensor.Tensor
	lastGeom  tensor.ConvGeom
	lastOutHW int

	outView  viewCache // 3-D view over the 2-D matmul output
	gradView viewCache // 2-D view over the incoming CHW gradient
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D constructs a convolution with Xavier-initialised weights.
func NewConv2D(rng *xrand.RNG, inC, outC, k, stride, pad int) *Conv2D {
	w := tensor.New(outC, inC*k*k)
	rng.Xavier(w.Data(), inC*k*k, outC)
	b := tensor.New(outC)
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		w: newParam(fmt.Sprintf("conv%dx%d_w", inC, outC), w),
		b: newParam(fmt.Sprintf("conv%dx%d_b", inC, outC), b),
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(0) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects (%d,H,W), got %v", c.InC, x.Shape()))
	}
	ws := c.workspace()
	g := tensor.ConvGeom{InC: c.InC, InH: x.Dim(1), InW: x.Dim(2), K: c.K, Stride: c.Stride, Pad: c.Pad}
	outH, outW := g.OutH(), g.OutW()
	oHW := outH * outW

	cols := ws.Tensor2(c, "cols", c.InC*c.K*c.K, oHW)
	tensor.Im2ColInto(cols, x, g)
	out := ws.Tensor2(c, "out", c.OutC, oHW)
	tensor.MatMulInto(out, c.w.Value, cols)

	// Broadcast bias across spatial positions.
	od := out.Data()
	bd := c.b.Value.Data()
	for ch := 0; ch < c.OutC; ch++ {
		bias := bd[ch]
		row := od[ch*oHW : (ch+1)*oHW]
		for i := range row {
			row[i] += bias
		}
	}
	c.lastCols = cols
	c.lastGeom = g
	c.lastOutHW = oHW
	return c.outView.of3(out, c.OutC, outH, outW)
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	ws := c.workspace()
	g := c.lastGeom
	oHW := c.lastOutHW
	gm := c.gradView.of2(grad, c.OutC, oHW)

	// dW += G · colsᵀ. The columns are stored untransposed, which is
	// exactly the layout MatMulTransB consumes — no materialised transpose.
	dW := ws.TensorLike(c, "dW", c.w.Value)
	tensor.MatMulTransBInto(dW, gm, c.lastCols)
	c.w.Grad.AddInPlace(dW)

	// db += row sums of G.
	gd := gm.Data()
	bg := c.b.Grad.Data()
	for ch := 0; ch < c.OutC; ch++ {
		var s float32
		for _, v := range gd[ch*oHW : (ch+1)*oHW] {
			s += v
		}
		bg[ch] += s
	}

	// dX = col2im(Wᵀ · G)
	wT := ws.Tensor2(c, "wT", c.InC*c.K*c.K, c.OutC)
	tensor.Transpose2DInto(wT, c.w.Value)
	dCols := ws.Tensor2(c, "dCols", c.InC*c.K*c.K, oHW)
	tensor.MatMulInto(dCols, wT, gm)
	dX := ws.Tensor3(c, "dX", g.InC, g.InH, g.InW)
	tensor.Col2ImInto(dX, dCols, g)
	return dX
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Clone implements Layer.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad,
		w: c.w.clone(), b: c.b.clone(),
	}
}
