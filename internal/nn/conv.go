package nn

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Conv2D is a 2-D convolution implemented with an im2col/im2row lowering so
// the inner loop is a single matrix multiply. It is batch-first: a rank-4
// [N,C,H,W] input runs the whole batch through one patch-major lowering and
// one blocked MatMul; a rank-3 CHW input takes the original per-sample
// column-major path. The two paths produce bit-identical values frame for
// frame (every output element is the same ascending-k dot product plus one
// bias rounding), so batching is purely a throughput decision.
//
// Weights are stored as an (outC)×(inC·K·K) matrix; bias is per output
// channel. All per-call tensors (columns/patches, outputs, gradient
// scratch) live in the model workspace and are reused across calls.
type Conv2D struct {
	InC, OutC   int
	K           int
	Stride, Pad int

	w, b *Param

	scratch

	// Activation caches for Backward: the lowering of the last forward and
	// the geometry it was built with, so Backward never re-derives shapes.
	// lastBatch == 0 marks the single-sample path, else the batch size.
	lastCols    *tensor.Tensor // single path: (InC·K·K) × (OutH·OutW)
	lastPatches *tensor.Tensor // batched path: (N·OutH·OutW) × (InC·K·K)
	lastGeom    tensor.ConvGeom
	lastOutHW   int
	lastBatch   int

	outView  viewCache // 3-D view over the 2-D matmul output
	gradView viewCache // 2-D view over the incoming CHW gradient
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D constructs a convolution with Xavier-initialised weights.
func NewConv2D(rng *xrand.RNG, inC, outC, k, stride, pad int) *Conv2D {
	w := tensor.New(outC, inC*k*k)
	rng.Xavier(w.Data(), inC*k*k, outC)
	b := tensor.New(outC)
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		w: newParam(fmt.Sprintf("conv%dx%d_w", inC, outC), w),
		b: newParam(fmt.Sprintf("conv%dx%d_b", inC, outC), b),
	}
}

// Forward implements Layer: rank-4 inputs take the batched path, rank-3 the
// per-sample one.
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() == 4 {
		return c.forwardBatch(x)
	}
	if x.Rank() != 3 || x.Dim(0) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects (%d,H,W) or (N,%d,H,W), got %v", c.InC, c.InC, x.Shape()))
	}
	ws := c.workspace()
	g := tensor.ConvGeom{InC: c.InC, InH: x.Dim(1), InW: x.Dim(2), K: c.K, Stride: c.Stride, Pad: c.Pad}
	outH, outW := g.OutH(), g.OutW()
	oHW := outH * outW

	cols := ws.Tensor2(c, "cols", c.InC*c.K*c.K, oHW)
	tensor.Im2ColInto(cols, x, g)
	out := ws.Tensor2(c, "out", c.OutC, oHW)
	tensor.MatMulInto(out, c.w.Value, cols)

	// Broadcast bias across spatial positions.
	od := out.Data()
	bd := c.b.Value.Data()
	for ch := 0; ch < c.OutC; ch++ {
		bias := bd[ch]
		row := od[ch*oHW : (ch+1)*oHW]
		for i := range row {
			row[i] += bias
		}
	}
	c.lastCols = cols
	c.lastGeom = g
	c.lastOutHW = oHW
	c.lastBatch = 0
	return c.outView.of3(out, c.OutC, outH, outW)
}

// forwardBatch runs the whole [N,C,H,W] batch through one patch-major
// lowering and one blocked MatMul. The orientation is flipped relative to
// the single path — patches · Wᵀ instead of W · cols — so the small weight
// matrix stays cache-resident while the batch streams through once; the
// output is then permuted into NCHW with the bias fused into the pass.
func (c *Conv2D) forwardBatch(x *tensor.Tensor) *tensor.Tensor {
	if x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects (N,%d,H,W), got %v", c.InC, x.Shape()))
	}
	ws := c.workspace()
	n := x.Dim(0)
	g := tensor.ConvGeom{InC: c.InC, InH: x.Dim(2), InW: x.Dim(3), K: c.K, Stride: c.Stride, Pad: c.Pad}
	outH, outW := g.OutH(), g.OutW()
	p := outH * outW
	l := c.InC * c.K * c.K

	patches := ws.Tensor2(c, "patches", n*p, l)
	tensor.Im2RowInto(patches, x, g)
	// One SIMD k-major MatMul for the whole batch: the weight matrix is
	// transposed once (tiny, and weights may have changed since the last
	// call) so each lane accumulates one output element in ascending k.
	wT := ws.Tensor2(c, "wTB", l, c.OutC)
	tensor.Transpose2DInto(wT, c.w.Value)
	pm := ws.Tensor2(c, "pout", n*p, c.OutC)
	tensor.MatMulKMajorInto(pm, patches, wT)

	// Permute (N·P)×OutC → [N,OutC,OutH,OutW], adding the bias in the same
	// pass. s stored-then-added and s+bias round identically, so this
	// matches the single path bit for bit.
	out := ws.Tensor4(c, "out4", n, c.OutC, outH, outW)
	od := out.Data()
	pd := pm.Data()
	bd := c.b.Value.Data()
	for s := 0; s < n; s++ {
		src := pd[s*p*c.OutC:]
		dst := od[s*c.OutC*p:]
		for pi := 0; pi < p; pi++ {
			row := src[pi*c.OutC : pi*c.OutC+c.OutC]
			for oc, v := range row {
				dst[oc*p+pi] = v + bd[oc]
			}
		}
	}
	c.lastPatches = patches
	c.lastGeom = g
	c.lastOutHW = p
	c.lastBatch = n
	return out
}

// Backward implements Layer, dispatching on the path the last Forward took.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastBatch > 0 {
		return c.backwardBatch(grad)
	}
	ws := c.workspace()
	g := c.lastGeom
	oHW := c.lastOutHW
	gm := c.gradView.of2(grad, c.OutC, oHW)

	// dW += G · colsᵀ. The columns are stored untransposed, which is
	// exactly the layout MatMulTransB consumes — no materialised transpose.
	dW := ws.TensorLike(c, "dW", c.w.Value)
	tensor.MatMulTransBInto(dW, gm, c.lastCols)
	c.w.Grad.AddInPlace(dW)

	// db += row sums of G.
	gd := gm.Data()
	bg := c.b.Grad.Data()
	for ch := 0; ch < c.OutC; ch++ {
		var s float32
		for _, v := range gd[ch*oHW : (ch+1)*oHW] {
			s += v
		}
		bg[ch] += s
	}

	// dX = col2im(Wᵀ · G)
	wT := ws.Tensor2(c, "wT", c.InC*c.K*c.K, c.OutC)
	tensor.Transpose2DInto(wT, c.w.Value)
	dCols := ws.Tensor2(c, "dCols", c.InC*c.K*c.K, oHW)
	tensor.MatMulInto(dCols, wT, gm)
	dX := ws.Tensor3(c, "dX", g.InC, g.InH, g.InW)
	tensor.Col2ImInto(dX, dCols, g)
	return dX
}

// backwardBatch is the batched adjoint. The input gradient of each sample
// is bit-identical to the single path (same per-element accumulation
// order); the parameter gradients accumulate across the whole batch in one
// pass, so their summation order differs from N sequential single-sample
// backwards by floating-point rounding only.
func (c *Conv2D) backwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	ws := c.workspace()
	g := c.lastGeom
	n := c.lastBatch
	p := c.lastOutHW
	l := c.InC * c.K * c.K

	// Reverse permute [N,OutC,P] → (N·P)×OutC, folding db's column sums
	// into the same pass.
	gm := ws.Tensor2(c, "gmB", n*p, c.OutC)
	gmd := gm.Data()
	gd := grad.Data()
	bg := c.b.Grad.Data()
	for s := 0; s < n; s++ {
		src := gd[s*c.OutC*p:]
		dst := gmd[s*p*c.OutC:]
		for oc := 0; oc < c.OutC; oc++ {
			row := src[oc*p : oc*p+p]
			var sum float32
			for pi, v := range row {
				dst[pi*c.OutC+oc] = v
				sum += v
			}
			bg[oc] += sum
		}
	}

	// dW[oc] += Σ over patch rows gm[r][oc] · patches[r]: rank-1 updates
	// streaming the patches once while dW stays cache-resident.
	dW := ws.TensorLike(c, "dWB", c.w.Value)
	dW.Zero()
	dwd := dW.Data()
	ptd := c.lastPatches.Data()
	for r := 0; r < n*p; r++ {
		grow := gmd[r*c.OutC : r*c.OutC+c.OutC]
		prow := ptd[r*l : r*l+l]
		for oc, gv := range grow {
			if gv == 0 {
				continue
			}
			wrow := dwd[oc*l : oc*l+l]
			for i, pv := range prow {
				wrow[i] += gv * pv
			}
		}
	}
	c.w.Grad.AddInPlace(dW)

	// dX = row2im(G · W), one blocked MatMul for the batch.
	dP := ws.Tensor2(c, "dPatches", n*p, l)
	tensor.MatMulInto(dP, gm, c.w.Value)
	dX := ws.Tensor4(c, "dX4", n, g.InC, g.InH, g.InW)
	tensor.Row2ImInto(dX, dP, g)
	return dX
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Clone implements Layer.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad,
		w: c.w.clone(), b: c.b.clone(),
	}
}
