package nn

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Conv2D is a 2-D convolution implemented with an im2row lowering so the
// inner loop is a single k-major SIMD matrix multiply. Single CHW samples
// and [N,C,H,W] batches run the same unified kernel path — one patch-major
// Im2RowInto lowering, one MatMulKMajorInto, one fused permute+bias pass —
// so the single-frame forward enjoys the same SIMD throughput as batched
// inference. Every output element is an ascending-k float32 dot product
// plus one bias rounding, the exact per-element order of the original
// scalar packed kernel: unifying the paths changed no bits (the tests pin
// single-frame outputs against an Im2Col+MatMul reference).
//
// Weights are stored as an (outC)×(inC·K·K) matrix; bias is per output
// channel. All per-call tensors (patches, outputs, gradient scratch) live
// in the model workspace and are reused across calls.
type Conv2D struct {
	InC, OutC   int
	K           int
	Stride, Pad int

	w, b *Param

	scratch

	// Activation caches for Backward: the patch-major lowering of the last
	// forward and the geometry it was built with, so Backward never
	// re-derives shapes. lastBatch is the sample count (1 for a CHW
	// input); lastRank4 records whether the input carried a leading batch
	// dimension, so Backward returns a gradient of matching rank.
	lastPatches *tensor.Tensor // (N·OutH·OutW) × (InC·K·K)
	lastGeom    tensor.ConvGeom
	lastOutHW   int
	lastBatch   int
	lastRank4   bool
}

// convScratchNames keys the workspace buffers of one conv path. The single
// and batched paths use disjoint key sets so a model alternating between
// per-frame and batched calls keeps both shape families warm instead of
// reallocating on every switch. The transposed weight matrix is absent:
// its shape is batch-independent, so both paths share one "wT" key.
type convScratchNames struct {
	patches, pm, gm, dW, dP, dX string
}

var (
	convSingleKeys = convScratchNames{"patchesS", "pmS", "gmS", "dWS", "dPS", "dXS"}
	convBatchKeys  = convScratchNames{"patchesB", "pmB", "gmB", "dWB", "dPB", "dXB"}
)

var _ Layer = (*Conv2D)(nil)

// NewConv2D constructs a convolution with Xavier-initialised weights.
func NewConv2D(rng *xrand.RNG, inC, outC, k, stride, pad int) *Conv2D {
	w := tensor.New(outC, inC*k*k)
	rng.Xavier(w.Data(), inC*k*k, outC)
	b := tensor.New(outC)
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		w: newParam(fmt.Sprintf("conv%dx%d_w", inC, outC), w),
		b: newParam(fmt.Sprintf("conv%dx%d_b", inC, outC), b),
	}
}

// Forward implements Layer: rank-4 [N,C,H,W] batches and rank-3 CHW
// samples run the same unified kernel path; only the output rank differs.
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	switch {
	case x.Rank() == 4 && x.Dim(1) == c.InC:
		g := tensor.ConvGeom{InC: c.InC, InH: x.Dim(2), InW: x.Dim(3), K: c.K, Stride: c.Stride, Pad: c.Pad}
		n := x.Dim(0)
		out := c.workspace().Tensor4(c, "out4", n, c.OutC, g.OutH(), g.OutW())
		c.lastRank4 = true
		c.runForward(out, x, n, g, &convBatchKeys)
		return out
	case x.Rank() == 3 && x.Dim(0) == c.InC:
		g := tensor.ConvGeom{InC: c.InC, InH: x.Dim(1), InW: x.Dim(2), K: c.K, Stride: c.Stride, Pad: c.Pad}
		out := c.workspace().Tensor3(c, "out3", c.OutC, g.OutH(), g.OutW())
		c.lastRank4 = false
		c.runForward(out, x, 1, g, &convSingleKeys)
		return out
	default:
		panic(fmt.Sprintf("nn: Conv2D expects (%d,H,W) or (N,%d,H,W), got %v", c.InC, c.InC, x.Shape()))
	}
}

// runForward lowers the input (batched or single) into patch-major rows and
// runs one SIMD k-major MatMul. The orientation keeps the small weight
// matrix cache-resident — patches · Wᵀ — while the samples stream through
// once; the output is then permuted into (N)CHW with the bias fused into
// the pass. v stored-then-added and v+bias round identically, so the fused
// bias matches a separate broadcast pass bit for bit.
func (c *Conv2D) runForward(out, x *tensor.Tensor, n int, g tensor.ConvGeom, nm *convScratchNames) {
	ws := c.workspace()
	p := g.OutH() * g.OutW()
	l := c.InC * c.K * c.K

	patches := ws.Tensor2(c, nm.patches, n*p, l)
	tensor.Im2RowInto(patches, x, g)
	// The weight matrix is transposed per call (tiny, and weights may have
	// changed since the last call) so each lane accumulates one output
	// element in ascending k.
	wT := ws.Tensor2(c, "wT", l, c.OutC)
	tensor.Transpose2DInto(wT, c.w.Value)
	pm := ws.Tensor2(c, nm.pm, n*p, c.OutC)
	tensor.MatMulKMajorInto(pm, patches, wT)

	od := out.Data()
	pd := pm.Data()
	bd := c.b.Value.Data()
	for s := 0; s < n; s++ {
		src := pd[s*p*c.OutC:]
		dst := od[s*c.OutC*p:]
		for pi := 0; pi < p; pi++ {
			row := src[pi*c.OutC : pi*c.OutC+c.OutC]
			for oc, v := range row {
				dst[oc*p+pi] = v + bd[oc]
			}
		}
	}
	c.lastPatches = patches
	c.lastGeom = g
	c.lastOutHW = p
	c.lastBatch = n
}

// Backward implements Layer. The input gradient of each sample is
// bit-identical to the pre-unification per-sample path (same per-element
// accumulation order); the parameter gradients accumulate across the whole
// batch in one pass, so for N>1 their summation order differs from N
// sequential single-sample backwards by floating-point rounding only.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	nm := c.scratchKeys()
	gm := c.permuteGrad(grad, nm, true)
	c.accumWeightGrad(gm, nm)
	return c.inputGrad(gm, nm)
}

// BackwardInput implements inputGradLayer: the same input gradient as
// Backward, with the dW/db accumulation skipped entirely.
func (c *Conv2D) BackwardInput(grad *tensor.Tensor) *tensor.Tensor {
	nm := c.scratchKeys()
	return c.inputGrad(c.permuteGrad(grad, nm, false), nm)
}

func (c *Conv2D) scratchKeys() *convScratchNames {
	if c.lastRank4 {
		return &convBatchKeys
	}
	return &convSingleKeys
}

// permuteGrad reverse-permutes the incoming [N,OutC,P] gradient into the
// patch-major (N·P)×OutC layout the gradient GEMMs consume, optionally
// folding db's column sums into the same pass.
func (c *Conv2D) permuteGrad(grad *tensor.Tensor, nm *convScratchNames, withBias bool) *tensor.Tensor {
	n, p := c.lastBatch, c.lastOutHW
	gm := c.workspace().Tensor2(c, nm.gm, n*p, c.OutC)
	gmd := gm.Data()
	gd := grad.Data()
	var bg []float32
	if withBias {
		bg = c.b.Grad.Data()
	}
	for s := 0; s < n; s++ {
		src := gd[s*c.OutC*p:]
		dst := gmd[s*p*c.OutC:]
		for oc := 0; oc < c.OutC; oc++ {
			row := src[oc*p : oc*p+p]
			var sum float32
			for pi, v := range row {
				dst[pi*c.OutC+oc] = v
				sum += v
			}
			if withBias {
				bg[oc] += sum
			}
		}
	}
	return gm
}

// accumWeightGrad adds dW[oc] += Σ over patch rows gm[r][oc] · patches[r]:
// rank-1 updates streaming the patches once while dW stays cache-resident.
func (c *Conv2D) accumWeightGrad(gm *tensor.Tensor, nm *convScratchNames) {
	n, p := c.lastBatch, c.lastOutHW
	l := c.InC * c.K * c.K
	dW := c.workspace().TensorLike(c, nm.dW, c.w.Value)
	dW.Zero()
	dwd := dW.Data()
	gmd := gm.Data()
	ptd := c.lastPatches.Data()
	for r := 0; r < n*p; r++ {
		grow := gmd[r*c.OutC : r*c.OutC+c.OutC]
		prow := ptd[r*l : r*l+l]
		for oc, gv := range grow {
			if gv == 0 { //advlint:floatcmp-ok exact-zero skip: adds exactly 0 either way
				continue
			}
			wrow := dwd[oc*l : oc*l+l]
			for i, pv := range prow {
				wrow[i] += gv * pv
			}
		}
	}
	c.w.Grad.AddInPlace(dW)
}

// inputGrad computes dX = row2im(G · W): the weight matrix is already
// k-major for this product (the contraction runs over OutC), so the SIMD
// kernel consumes it directly with no transpose.
func (c *Conv2D) inputGrad(gm *tensor.Tensor, nm *convScratchNames) *tensor.Tensor {
	ws := c.workspace()
	g := c.lastGeom
	n, p := c.lastBatch, c.lastOutHW
	l := c.InC * c.K * c.K
	dP := ws.Tensor2(c, nm.dP, n*p, l)
	tensor.MatMulKMajorInto(dP, gm, c.w.Value)
	var dX *tensor.Tensor
	if c.lastRank4 {
		dX = ws.Tensor4(c, nm.dX, n, g.InC, g.InH, g.InW)
	} else {
		dX = ws.Tensor3(c, nm.dX, g.InC, g.InH, g.InW)
	}
	tensor.Row2ImInto(dX, dP, g)
	return dX
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Clone implements Layer.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad,
		w: c.w.clone(), b: c.b.clone(),
	}
}
