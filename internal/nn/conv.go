package nn

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Conv2D is a 2-D convolution over CHW tensors implemented with im2col so
// the inner loop is a single matrix multiply. Weights are stored as an
// (outC)×(inC·K·K) matrix; bias is per output channel.
type Conv2D struct {
	InC, OutC   int
	K           int
	Stride, Pad int

	w, b *Param

	// Activation cache for Backward.
	lastCols *tensor.Tensor
	lastGeom tensor.ConvGeom
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D constructs a convolution with Xavier-initialised weights.
func NewConv2D(rng *xrand.RNG, inC, outC, k, stride, pad int) *Conv2D {
	w := tensor.New(outC, inC*k*k)
	rng.Xavier(w.Data(), inC*k*k, outC)
	b := tensor.New(outC)
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		w: newParam(fmt.Sprintf("conv%dx%d_w", inC, outC), w),
		b: newParam(fmt.Sprintf("conv%dx%d_b", inC, outC), b),
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(0) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects (%d,H,W), got %v", c.InC, x.Shape()))
	}
	g := tensor.ConvGeom{InC: c.InC, InH: x.Dim(1), InW: x.Dim(2), K: c.K, Stride: c.Stride, Pad: c.Pad}
	cols := tensor.Im2Col(x, g)
	out := tensor.MatMul(c.w.Value, cols) // (outC) x (oH*oW)
	// Broadcast bias across spatial positions.
	oHW := g.OutH() * g.OutW()
	od := out.Data()
	bd := c.b.Value.Data()
	for ch := 0; ch < c.OutC; ch++ {
		bias := bd[ch]
		row := od[ch*oHW : (ch+1)*oHW]
		for i := range row {
			row[i] += bias
		}
	}
	c.lastCols = cols
	c.lastGeom = g
	return out.Reshape(c.OutC, g.OutH(), g.OutW())
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := c.lastGeom
	oHW := g.OutH() * g.OutW()
	gm := grad.Reshape(c.OutC, oHW)

	// dW += G · colsᵀ
	colsT := tensor.Transpose2D(c.lastCols)
	dW := tensor.MatMul(gm, colsT)
	c.w.Grad.AddInPlace(dW)

	// db += row sums of G.
	gd := gm.Data()
	bg := c.b.Grad.Data()
	for ch := 0; ch < c.OutC; ch++ {
		var s float32
		for _, v := range gd[ch*oHW : (ch+1)*oHW] {
			s += v
		}
		bg[ch] += s
	}

	// dX = col2im(Wᵀ · G)
	wT := tensor.Transpose2D(c.w.Value)
	dCols := tensor.MatMul(wT, gm)
	return tensor.Col2Im(dCols, g)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Clone implements Layer.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad,
		w: c.w.clone(), b: c.b.clone(),
	}
}
