package nn

import (
	"math"

	"repro/internal/tensor"
)

// Losses return the scalar loss and the gradient of the loss with respect
// to the prediction, ready to feed into Sequential.Backward. All losses
// average over elements so gradient magnitudes are insensitive to output
// size.

// MSE is the mean squared error ½·mean((pred-target)²); its gradient is
// (pred-target)/n.
func MSE(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	grad := pred.Sub(target)
	n := float64(grad.Len())
	var loss float64
	for _, v := range grad.Data() {
		loss += 0.5 * float64(v) * float64(v)
	}
	grad.ScaleInPlace(float32(1.0 / n))
	return loss / n, grad
}

// WeightedMSE is MSE with a per-element weight mask; elements with zero
// weight contribute nothing to loss or gradient. The detection loss uses it
// to restrict box regression to cells containing an object.
func WeightedMSE(pred, target, weight *tensor.Tensor) (float64, *tensor.Tensor) {
	grad := pred.Sub(target)
	grad.MulInPlace(weight)
	n := float64(grad.Len())
	var loss float64
	gd := grad.Data()
	for _, v := range gd {
		loss += 0.5 * float64(v) * float64(v)
	}
	grad.ScaleInPlace(float32(1.0 / n))
	return loss / n, grad
}

// SmoothL1 is the Huber loss with delta=1, averaged over elements. It is
// more robust to outlier distance targets than plain MSE.
func SmoothL1(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	diff := pred.Sub(target)
	grad := tensor.New(pred.Shape()...)
	n := float64(diff.Len())
	var loss float64
	dd := diff.Data()
	gd := grad.Data()
	for i, v := range dd {
		a := float64(v)
		if math.Abs(a) < 1 {
			loss += 0.5 * a * a
			gd[i] = float32(a / n)
		} else {
			loss += math.Abs(a) - 0.5
			if a > 0 {
				gd[i] = float32(1 / n)
			} else {
				gd[i] = float32(-1 / n)
			}
		}
	}
	return loss / n, grad
}

// BCEWithLogits is the binary cross-entropy over raw logits, numerically
// stable via the log-sum-exp form. target entries must be in [0,1].
func BCEWithLogits(logits, target *tensor.Tensor) (float64, *tensor.Tensor) {
	grad := tensor.New(logits.Shape()...)
	ld := logits.Data()
	td := target.Data()
	gd := grad.Data()
	n := float64(len(ld))
	var loss float64
	for i, z := range ld {
		zf := float64(z)
		t := float64(td[i])
		// loss = max(z,0) - z*t + log(1+exp(-|z|))
		loss += math.Max(zf, 0) - zf*t + math.Log1p(math.Exp(-math.Abs(zf)))
		gd[i] = float32((float64(SigmoidScalar(z)) - t) / n)
	}
	return loss / n, grad
}

// WeightedBCEWithLogits applies per-element weights to BCEWithLogits; the
// detector uses it to balance the rare positive cells against the many
// background cells.
func WeightedBCEWithLogits(logits, target, weight *tensor.Tensor) (float64, *tensor.Tensor) {
	grad := tensor.New(logits.Shape()...)
	ld := logits.Data()
	td := target.Data()
	wd := weight.Data()
	gd := grad.Data()
	n := float64(len(ld))
	var loss float64
	for i, z := range ld {
		w := float64(wd[i])
		if w == 0 { //advlint:floatcmp-ok exact-zero weight masks the sample out
			continue
		}
		zf := float64(z)
		t := float64(td[i])
		loss += w * (math.Max(zf, 0) - zf*t + math.Log1p(math.Exp(-math.Abs(zf))))
		gd[i] = float32(w * (float64(SigmoidScalar(z)) - t) / n)
	}
	return loss / n, grad
}

// SoftmaxCE computes softmax cross-entropy of a logit vector against an
// integer class label, returning loss and gradient w.r.t. the logits.
func SoftmaxCE(logits *tensor.Tensor, label int) (float64, *tensor.Tensor) {
	ld := logits.Data()
	maxv := ld[0]
	for _, v := range ld[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	probs := make([]float64, len(ld))
	for i, v := range ld {
		probs[i] = math.Exp(float64(v - maxv))
		sum += probs[i]
	}
	grad := tensor.New(logits.Shape()...)
	gd := grad.Data()
	for i := range probs {
		probs[i] /= sum
		gd[i] = float32(probs[i])
	}
	gd[label] -= 1
	return -math.Log(math.Max(probs[label], 1e-12)), grad
}

// Softmax returns the softmax probabilities of a logit slice.
func Softmax(logits []float32) []float64 {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(float64(v - maxv))
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
