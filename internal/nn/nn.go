// Package nn implements the minimal deep-learning stack the reproduction
// needs: composable layers with explicit forward/backward passes, losses,
// optimizers and parameter serialization.
//
// Design notes:
//
//   - Layers are batch-first: every layer accepts a leading batch
//     dimension ([N,C,H,W] images, [N,In] vectors) and runs the whole batch
//     through one lowering and one MatMul instead of N small ones.
//     Single-sample CHW/flat inputs remain first-class and run the SAME
//     unified kernel path (one k-major SIMD MatMul; for Linear that is a
//     single-row gemv the assembly row tail keeps on SIMD). Batched,
//     single and pre-unification scalar results are all bit-identical:
//     every output element is the same ascending-index float32 dot
//     product, so both batching and the kernel ladder are purely
//     throughput decisions.
//   - Backward returns the gradient with respect to the layer input and
//     accumulates parameter gradients. Sequential.BackwardInput skips the
//     parameter-gradient work and returns the identical ∇x — the attack
//     primitive for FGSM/PGD/RP2/CAP, which never read weight gradients.
//     Batched Backward keeps per-sample input gradients bit-identical to
//     the single path; parameter gradients accumulate across the batch in
//     one pass, whose summation order differs from N sequential
//     single-sample backwards by float rounding only (the trainers run
//     this batched path).
//   - Layers cache activations between Forward and Backward, so a network
//     instance is not safe for concurrent use. Clone() produces an
//     independent copy (parameters deep-copied) for parallel evaluation.
//   - Forward and Backward outputs live in the model's Workspace and are
//     valid until the model's next Forward/Backward call; Clone a returned
//     tensor to retain it longer. See Workspace for the full rules.
package nn

import "repro/internal/tensor"

// Param is a trainable tensor together with its gradient accumulator.
//
// Param carries a version counter that layers use to cache expensive
// weight-derived scratch (Linear's transposed weight matrix) across calls:
// every code path that mutates Value — optimizer steps, CopyParamsFrom,
// LoadParams, finite-difference probes — must call MarkMutated afterwards,
// or a stale cache silently corrupts later forwards.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	version uint64
}

// newParam allocates a parameter and a zeroed gradient of the same shape.
func newParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...), version: 1}
}

// clone deep-copies the parameter (gradient reset to zero).
func (p *Param) clone() *Param {
	return &Param{Name: p.Name, Value: p.Value.Clone(), Grad: tensor.New(p.Value.Shape()...), version: 1}
}

// MarkMutated records that Value changed, invalidating any weight-derived
// cache a layer keyed on Version.
func (p *Param) MarkMutated() { p.version++ }

// Version returns the parameter's mutation counter. It starts positive, so
// a zero-valued cache tag never matches a live parameter.
func (p *Param) Version() uint64 { return p.version }

// Layer is one differentiable stage of a network.
type Layer interface {
	// Forward computes the layer output for a single CHW (or flat) sample,
	// or for a batch carrying a leading N dimension ([N,C,H,W] / [N,In]).
	// train toggles train-time behaviour (e.g. dropout); inference and
	// attack gradient computation both use train=false.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient w.r.t. the layer output, accumulates
	// parameter gradients, and returns the gradient w.r.t. the input.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
	// Clone returns an independent deep copy of the layer.
	Clone() Layer
}

// Sequential chains layers; the output of layer i feeds layer i+1.
// It owns the model Workspace its layers keep their scratch tensors in, so
// steady-state Forward/Backward passes allocate nothing; see Workspace for
// the ownership and retention rules.
type Sequential struct {
	layers []Layer
	ws     *Workspace

	params []*Param // lazy cache; invalidated by Append
}

// NewSequential builds a sequential network from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	s := &Sequential{layers: layers, ws: NewWorkspace()}
	s.attach(layers)
	return s
}

// attach points the given layers' scratch at this model's workspace.
func (s *Sequential) attach(layers []Layer) {
	for _, l := range layers {
		if u, ok := l.(workspaceUser); ok {
			u.setWorkspace(s.ws)
		}
	}
}

// Append adds layers to the end of the network.
func (s *Sequential) Append(layers ...Layer) {
	s.layers = append(s.layers, layers...)
	s.attach(layers)
	s.params = nil
}

// Layers exposes the underlying layers (e.g. to split a backbone from a
// head for contrastive fine-tuning). The returned slice is a copy.
func (s *Sequential) Layers() []Layer {
	out := make([]Layer, len(s.layers))
	copy(out, s.layers)
	return out
}

// Forward runs the full network on one sample — or on a whole [N,...]
// batch, since every layer is batch-first.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates grad through all layers and returns the gradient with
// respect to the network input.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		grad = s.layers[i].Backward(grad)
	}
	return grad
}

// inputGradLayer is implemented by layers with trainable parameters whose
// BackwardInput computes only the input gradient, skipping the parameter-
// gradient accumulation. The input gradient must be bit-identical to what
// Backward returns.
type inputGradLayer interface {
	BackwardInput(grad *tensor.Tensor) *tensor.Tensor
}

// BackwardInput propagates grad through all layers and returns the gradient
// with respect to the network input WITHOUT accumulating any parameter
// gradients. It is the attack primitive: FGSM, Auto-PGD, RP2 and CAP only
// consume the pixel gradient ∇x J, so the weight-gradient work of a full
// Backward (roughly a third of the pass on the conv stacks here) is
// skipped. The returned input gradient is bit-identical to Backward's.
func (s *Sequential) BackwardInput(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		if ig, ok := s.layers[i].(inputGradLayer); ok {
			grad = ig.BackwardInput(grad)
		} else {
			grad = s.layers[i].Backward(grad)
		}
	}
	return grad
}

// Params returns all trainable parameters in layer order. The slice is
// cached (grad-reset runs once per optimizer step, so rebuilding it there
// would be a steady-state allocation) and returned with no spare capacity,
// so callers appending to it always reallocate instead of writing into the
// cache.
func (s *Sequential) Params() []*Param {
	if s.params == nil {
		n := 0
		for _, l := range s.layers {
			n += len(l.Params())
		}
		ps := make([]*Param, 0, n)
		for _, l := range s.layers {
			ps = append(ps, l.Params()...)
		}
		s.params = ps
	}
	return s.params
}

// ZeroGrad clears all accumulated parameter gradients.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.Grad.Zero()
	}
}

// Clone returns an independent deep copy (separate parameters, activation
// caches and workspace), safe to use from another goroutine.
func (s *Sequential) Clone() *Sequential {
	ls := make([]Layer, len(s.layers))
	for i, l := range s.layers {
		ls[i] = l.Clone()
	}
	return NewSequential(ls...)
}

// CopyParamsFrom copies parameter values from src into s. The two networks
// must have identical architectures. Gradients are not copied.
func (s *Sequential) CopyParamsFrom(src *Sequential) {
	dst := s.Params()
	from := src.Params()
	if len(dst) != len(from) {
		panic("nn: CopyParamsFrom architecture mismatch")
	}
	for i := range dst {
		copy(dst[i].Value.Data(), from[i].Value.Data())
		dst[i].MarkMutated()
	}
}

// NumParams returns the total number of scalar parameters.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Value.Len()
	}
	return n
}
