package nn

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Linear is a fully connected layer y = Wx + b. It is batch-first: a rank-2
// [N,In] input runs the whole batch through one blocked MatMul (the gemv →
// gemm lift that dominates the batched-inference win on the dense head); any
// input with exactly In elements is treated as a single flat vector on the
// original per-sample path. Both paths compute every output element as the
// same ascending-index dot product, so they agree bit for bit.
type Linear struct {
	In, Out int

	w, b *Param

	scratch
	inView    viewCache
	lastIn    *tensor.Tensor
	lastBatch int // 0 = single-sample path, else N of the last forward
}

var _ Layer = (*Linear)(nil)

// NewLinear constructs a dense layer with Xavier-initialised weights.
func NewLinear(rng *xrand.RNG, in, out int) *Linear {
	w := tensor.New(out, in)
	rng.Xavier(w.Data(), in, out)
	b := tensor.New(out)
	return &Linear{
		In: in, Out: out,
		w: newParam(fmt.Sprintf("linear%dx%d_w", in, out), w),
		b: newParam(fmt.Sprintf("linear%dx%d_b", in, out), b),
	}
}

// Forward implements Layer. Rank-2 [N,In] inputs are a batch (including
// batch-of-1, which keeps its leading dimension); any other shape with
// exactly In elements is treated as one flat vector.
func (l *Linear) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() == 2 && x.Dim(1) == l.In {
		return l.forwardBatch(x)
	}
	if x.Len() != l.In {
		panic(fmt.Sprintf("nn: Linear expects %d inputs or a (N,%d) batch, got shape %v", l.In, l.In, x.Shape()))
	}
	ws := l.workspace()
	flat := l.inView.of1(x)
	lastIn := ws.Tensor1(l, "lastIn", l.In)
	copy(lastIn.Data(), flat.Data())
	l.lastIn = lastIn
	l.lastBatch = 0
	out := ws.Tensor1(l, "out", l.Out)
	wd := l.w.Value.Data()
	xd := flat.Data()
	od := out.Data()
	bd := l.b.Value.Data()
	for o := 0; o < l.Out; o++ {
		row := wd[o*l.In : (o+1)*l.In]
		var s float32
		for i, wv := range row {
			s += wv * xd[i]
		}
		od[o] = s + bd[o]
	}
	return out
}

// forwardBatch computes the [N,Out] batch output as X · Wᵀ with the blocked
// TransB kernel — one gemm instead of N gemvs — then adds the bias.
func (l *Linear) forwardBatch(x *tensor.Tensor) *tensor.Tensor {
	ws := l.workspace()
	n := x.Dim(0)
	lastIn := ws.Tensor2(l, "lastInB", n, l.In)
	copy(lastIn.Data(), x.Data())
	l.lastIn = lastIn
	l.lastBatch = n
	out := ws.Tensor2(l, "outB", n, l.Out)
	wT := ws.Tensor2(l, "wTB", l.In, l.Out)
	tensor.Transpose2DInto(wT, l.w.Value)
	tensor.MatMulKMajorInto(out, x, wT)
	od := out.Data()
	bd := l.b.Value.Data()
	for r := 0; r < n; r++ {
		row := od[r*l.Out : (r+1)*l.Out]
		for o := range row {
			row[o] += bd[o]
		}
	}
	return out
}

// Backward implements Layer, dispatching on the path the last Forward took.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.lastBatch > 0 {
		return l.backwardBatch(grad)
	}
	gd := grad.Data()
	wd := l.w.Value.Data()
	wg := l.w.Grad.Data()
	bg := l.b.Grad.Data()
	xd := l.lastIn.Data()

	dx := l.workspace().Tensor1(l, "dx", l.In)
	dx.Zero()
	dxd := dx.Data()
	for o := 0; o < l.Out; o++ {
		g := gd[o]
		bg[o] += g
		row := wd[o*l.In : (o+1)*l.In]
		grow := wg[o*l.In : (o+1)*l.In]
		if g == 0 {
			continue
		}
		for i := range row {
			grow[i] += g * xd[i]
			dxd[i] += g * row[i]
		}
	}
	return dx
}

// backwardBatch propagates a [N,Out] gradient: per-sample input gradients
// match the single path bit for bit; parameter gradients accumulate across
// the batch in one pass.
func (l *Linear) backwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	n := l.lastBatch
	gd := grad.Data()
	wd := l.w.Value.Data()
	wg := l.w.Grad.Data()
	bg := l.b.Grad.Data()
	xd := l.lastIn.Data()

	dx := l.workspace().Tensor2(l, "dxB", n, l.In)
	dx.Zero()
	dxd := dx.Data()
	for r := 0; r < n; r++ {
		grow := gd[r*l.Out : (r+1)*l.Out]
		xrow := xd[r*l.In : (r+1)*l.In]
		dxrow := dxd[r*l.In : (r+1)*l.In]
		for o, g := range grow {
			bg[o] += g
			if g == 0 {
				continue
			}
			row := wd[o*l.In : (o+1)*l.In]
			wgrow := wg[o*l.In : (o+1)*l.In]
			for i := range row {
				wgrow[i] += g * xrow[i]
				dxrow[i] += g * row[i]
			}
		}
	}
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.w, l.b} }

// Clone implements Layer.
func (l *Linear) Clone() Layer {
	return &Linear{In: l.In, Out: l.Out, w: l.w.clone(), b: l.b.clone()}
}
