package nn

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Linear is a fully connected layer y = Wx + b. Single flat vectors and
// [N,In] batches run the same unified kernel path: one k-major SIMD MatMul
// against the transposed weight matrix (for a single sample that is a
// 1×In gemv, which the kernel's single-row assembly tail keeps on SIMD),
// then a bias pass. Every output element is the same ascending-index
// float32 dot product plus one bias rounding as the original per-sample
// scalar loop, so unifying the paths changed no bits.
type Linear struct {
	In, Out int

	w, b *Param

	scratch
	lastIn    *tensor.Tensor // workspace copy of the forward input, [N,In]
	lastBatch int            // N of the last forward (1 for a flat vector)
	lastFlat  bool           // input was a flat vector: outputs keep rank 1

	wT        *tensor.Tensor // cached Wᵀ, rebuilt only when w's version moves
	wTVersion uint64         // w.Version() the cache was built from

	outView viewCache // rank-1 view over the [1,Out] output
	gmView  viewCache // rank-2 view over the incoming gradient
	dxView  viewCache // rank-1 view over the [1,In] input gradient
}

var _ Layer = (*Linear)(nil)

// NewLinear constructs a dense layer with Xavier-initialised weights.
func NewLinear(rng *xrand.RNG, in, out int) *Linear {
	w := tensor.New(out, in)
	rng.Xavier(w.Data(), in, out)
	b := tensor.New(out)
	return &Linear{
		In: in, Out: out,
		w: newParam(fmt.Sprintf("linear%dx%d_w", in, out), w),
		b: newParam(fmt.Sprintf("linear%dx%d_b", in, out), b),
	}
}

// linearScratchNames keys the workspace buffers of one dense path; like
// Conv2D, the flat-single and batched paths use disjoint key sets so a
// model alternating between per-frame and batched calls keeps both shape
// families warm instead of reallocating on every switch.
type linearScratchNames struct {
	lastIn, out, dx string
}

var (
	linearSingleKeys = linearScratchNames{"lastInS", "outS", "dxS"}
	linearBatchKeys  = linearScratchNames{"lastInB", "outB", "dxB"}
)

// Forward implements Layer. Rank-2 [N,In] inputs are a batch (including
// batch-of-1, which keeps its leading dimension); any other shape with
// exactly In elements is treated as one flat vector and returns a flat
// [Out] vector.
func (l *Linear) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() == 2 && x.Dim(1) == l.In {
		l.lastFlat = false
		return l.runForward(x.Data(), x.Dim(0))
	}
	if x.Len() != l.In {
		panic(fmt.Sprintf("nn: Linear expects %d inputs or a (N,%d) batch, got shape %v", l.In, l.In, x.Shape()))
	}
	l.lastFlat = true
	return l.outView.of1(l.runForward(x.Data(), 1))
}

func (l *Linear) scratchKeys() *linearScratchNames {
	if l.lastFlat {
		return &linearSingleKeys
	}
	return &linearBatchKeys
}

// runForward computes the [N,Out] output as X · Wᵀ with the k-major SIMD
// kernel — one gemm for the batch, a SIMD gemv for a single sample — then
// adds the bias. The input is copied into workspace scratch first (Backward
// needs it), and that stable copy is the MatMul operand, so no per-call
// tensor view of the caller's storage is ever built.
//
// The transposed weight matrix is folded behind the parameter's version
// counter: inference and attack loops, whose weights never move, transpose
// once and reuse — the m=1 dense-head gemv stops paying an In×Out
// transpose it never amortises. Any weight mutation (optimizer step,
// param copy/load, finite-difference probe) bumps the version and the
// next forward rebuilds the cache, bit-identically.
func (l *Linear) runForward(xd []float32, n int) *tensor.Tensor {
	ws := l.workspace()
	lastIn := ws.Tensor2(l, l.scratchKeys().lastIn, n, l.In)
	copy(lastIn.Data(), xd)
	l.lastIn = lastIn
	l.lastBatch = n
	wT := ws.Tensor2(l, "wT", l.In, l.Out)
	if wT != l.wT || l.wTVersion != l.w.Version() {
		tensor.Transpose2DInto(wT, l.w.Value)
		l.wT = wT
		l.wTVersion = l.w.Version()
	}
	out := ws.Tensor2(l, l.scratchKeys().out, n, l.Out)
	tensor.MatMulKMajorInto(out, lastIn, wT)
	od := out.Data()
	bd := l.b.Value.Data()
	for r := 0; r < n; r++ {
		row := od[r*l.Out : (r+1)*l.Out]
		for o := range row {
			row[o] += bd[o]
		}
	}
	return out
}

// Backward implements Layer: per-sample input gradients are bit-identical
// to the pre-unification per-sample loop; parameter gradients accumulate
// across the batch in one pass.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := l.lastBatch
	gd := grad.Data()
	wg := l.w.Grad.Data()
	bg := l.b.Grad.Data()
	xd := l.lastIn.Data()

	for r := 0; r < n; r++ {
		grow := gd[r*l.Out : (r+1)*l.Out]
		xrow := xd[r*l.In : (r+1)*l.In]
		for o, g := range grow {
			bg[o] += g
			if g == 0 { //advlint:floatcmp-ok exact-zero skip: adds exactly 0 either way
				continue
			}
			wgrow := wg[o*l.In : (o+1)*l.In]
			for i := range wgrow {
				wgrow[i] += g * xrow[i]
			}
		}
	}

	return l.inputGrad(grad, n)
}

// BackwardInput implements inputGradLayer: the same input gradient as
// Backward with the dW/db accumulation skipped.
func (l *Linear) BackwardInput(grad *tensor.Tensor) *tensor.Tensor {
	return l.inputGrad(grad, l.lastBatch)
}

// inputGrad computes dx = G · W: the weight matrix is already k-major for
// this product (the contraction runs over Out), so the SIMD kernel consumes
// it directly — each dx element is the same ascending-o dot product the
// old scalar accumulation computed.
func (l *Linear) inputGrad(grad *tensor.Tensor, n int) *tensor.Tensor {
	gm := grad
	if gm.Rank() != 2 {
		gm = l.gmView.of2(grad, n, l.Out)
	}
	dx := l.workspace().Tensor2(l, l.scratchKeys().dx, n, l.In)
	tensor.MatMulKMajorInto(dx, gm, l.w.Value)
	if l.lastFlat {
		return l.dxView.of1(dx)
	}
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.w, l.b} }

// Clone implements Layer.
func (l *Linear) Clone() Layer {
	return &Linear{In: l.In, Out: l.Out, w: l.w.clone(), b: l.b.clone()}
}
