package nn

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Linear is a fully connected layer y = Wx + b over flat vectors.
type Linear struct {
	In, Out int

	w, b *Param

	scratch
	inView viewCache
	lastIn *tensor.Tensor
}

var _ Layer = (*Linear)(nil)

// NewLinear constructs a dense layer with Xavier-initialised weights.
func NewLinear(rng *xrand.RNG, in, out int) *Linear {
	w := tensor.New(out, in)
	rng.Xavier(w.Data(), in, out)
	b := tensor.New(out)
	return &Linear{
		In: in, Out: out,
		w: newParam(fmt.Sprintf("linear%dx%d_w", in, out), w),
		b: newParam(fmt.Sprintf("linear%dx%d_b", in, out), b),
	}
}

// Forward implements Layer. Inputs of any shape are accepted as long as the
// element count matches In; they are treated as flat vectors.
func (l *Linear) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Len() != l.In {
		panic(fmt.Sprintf("nn: Linear expects %d inputs, got shape %v", l.In, x.Shape()))
	}
	ws := l.workspace()
	flat := l.inView.of1(x)
	lastIn := ws.Tensor1(l, "lastIn", l.In)
	copy(lastIn.Data(), flat.Data())
	l.lastIn = lastIn
	out := ws.Tensor1(l, "out", l.Out)
	wd := l.w.Value.Data()
	xd := flat.Data()
	od := out.Data()
	bd := l.b.Value.Data()
	for o := 0; o < l.Out; o++ {
		row := wd[o*l.In : (o+1)*l.In]
		var s float32
		for i, wv := range row {
			s += wv * xd[i]
		}
		od[o] = s + bd[o]
	}
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gd := grad.Data()
	wd := l.w.Value.Data()
	wg := l.w.Grad.Data()
	bg := l.b.Grad.Data()
	xd := l.lastIn.Data()

	dx := l.workspace().Tensor1(l, "dx", l.In)
	dx.Zero()
	dxd := dx.Data()
	for o := 0; o < l.Out; o++ {
		g := gd[o]
		bg[o] += g
		row := wd[o*l.In : (o+1)*l.In]
		grow := wg[o*l.In : (o+1)*l.In]
		if g == 0 {
			continue
		}
		for i := range row {
			grow[i] += g * xd[i]
			dxd[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.w, l.b} }

// Clone implements Layer.
func (l *Linear) Clone() Layer {
	return &Linear{In: l.In, Out: l.Out, w: l.w.clone(), b: l.b.clone()}
}
