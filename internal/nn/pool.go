package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// MaxPool2D downsamples by taking the maximum over non-overlapping K×K
// windows (stride = K). It accepts CHW samples or [N,C,H,W] batches; the
// windows of each sample are independent, so both paths agree bit for bit.
type MaxPool2D struct {
	K int

	scratch
	lastC, lastH, lastW int
	lastBatch           int
	lastArg             []int // flat input index of the max for each output element
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D returns a max-pooling layer with window and stride k.
func NewMaxPool2D(k int) *MaxPool2D { return &MaxPool2D{K: k} }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	var nb, c, h, w int
	switch x.Rank() {
	case 3:
		nb, c, h, w = 1, x.Dim(0), x.Dim(1), x.Dim(2)
	case 4:
		nb, c, h, w = x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	default:
		panic(fmt.Sprintf("nn: MaxPool2D expects CHW or NCHW, got %v", x.Shape()))
	}
	oh, ow := h/m.K, w/m.K
	if oh == 0 || ow == 0 {
		panic(fmt.Sprintf("nn: MaxPool2D window %d too large for %v", m.K, x.Shape()))
	}
	var out *tensor.Tensor
	if x.Rank() == 3 {
		out = m.workspace().Tensor3(m, "out", c, oh, ow)
	} else {
		out = m.workspace().Tensor4(m, "out4", nb, c, oh, ow)
	}
	m.lastC, m.lastH, m.lastW = c, h, w
	m.lastBatch = nb
	if len(m.lastArg) != nb*c*oh*ow {
		m.lastArg = make([]int, nb*c*oh*ow)
	}
	inSample := c * h * w
	outSample := c * oh * ow
	for s := 0; s < nb; s++ {
		xd := x.Data()[s*inSample : (s+1)*inSample]
		od := out.Data()[s*outSample : (s+1)*outSample]
		arg := m.lastArg[s*outSample : (s+1)*outSample]
		for ch := 0; ch < c; ch++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(0)
					bestIdx := -1
					for ky := 0; ky < m.K; ky++ {
						iy := oy*m.K + ky
						for kx := 0; kx < m.K; kx++ {
							ix := ox*m.K + kx
							idx := (ch*h+iy)*w + ix
							if bestIdx == -1 || xd[idx] > best {
								best, bestIdx = xd[idx], idx
							}
						}
					}
					oidx := (ch*oh+oy)*ow + ox
					od[oidx] = best
					arg[oidx] = s*inSample + bestIdx
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	var dx *tensor.Tensor
	if m.lastBatch == 1 && grad.Rank() == 3 {
		dx = m.workspace().Tensor3(m, "dx", m.lastC, m.lastH, m.lastW)
	} else {
		dx = m.workspace().Tensor4(m, "dx4", m.lastBatch, m.lastC, m.lastH, m.lastW)
	}
	dx.Zero()
	dxd := dx.Data()
	gd := grad.Data()
	for i, src := range m.lastArg {
		dxd[src] += gd[i]
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// Clone implements Layer.
func (m *MaxPool2D) Clone() Layer { return &MaxPool2D{K: m.K} }

// Upsample2x doubles spatial resolution by nearest-neighbour repetition;
// the decoder half of the diffusion UNet uses it. Like the other layers it
// accepts CHW samples or [N,C,H,W] batches.
type Upsample2x struct {
	scratch
	lastC, lastH, lastW int
	lastBatch           int
}

var _ Layer = (*Upsample2x)(nil)

// NewUpsample2x returns a 2× nearest-neighbour upsampling layer.
func NewUpsample2x() *Upsample2x { return &Upsample2x{} }

// Forward implements Layer.
func (u *Upsample2x) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	var nb, c, h, w int
	switch x.Rank() {
	case 3:
		nb, c, h, w = 1, x.Dim(0), x.Dim(1), x.Dim(2)
	case 4:
		nb, c, h, w = x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	default:
		panic(fmt.Sprintf("nn: Upsample2x expects CHW or NCHW, got %v", x.Shape()))
	}
	u.lastC, u.lastH, u.lastW = c, h, w
	u.lastBatch = nb
	var out *tensor.Tensor
	if x.Rank() == 3 {
		out = u.workspace().Tensor3(u, "out", c, h*2, w*2)
	} else {
		out = u.workspace().Tensor4(u, "out4", nb, c, h*2, w*2)
	}
	inSample := c * h * w
	outSample := inSample * 4
	for s := 0; s < nb; s++ {
		xd := x.Data()[s*inSample : (s+1)*inSample]
		od := out.Data()[s*outSample : (s+1)*outSample]
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				row := xd[(ch*h+y)*w : (ch*h+y+1)*w]
				o0 := (ch*h*2 + y*2) * w * 2
				o1 := o0 + w*2
				for xi, v := range row {
					od[o0+2*xi] = v
					od[o0+2*xi+1] = v
					od[o1+2*xi] = v
					od[o1+2*xi+1] = v
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (u *Upsample2x) Backward(grad *tensor.Tensor) *tensor.Tensor {
	c, h, w := u.lastC, u.lastH, u.lastW
	var dx *tensor.Tensor
	if u.lastBatch == 1 && grad.Rank() == 3 {
		dx = u.workspace().Tensor3(u, "dx", c, h, w)
	} else {
		dx = u.workspace().Tensor4(u, "dx4", u.lastBatch, c, h, w)
	}
	w2 := w * 2
	inSample := c * h * w
	outSample := inSample * 4
	for s := 0; s < u.lastBatch; s++ {
		gd := grad.Data()[s*outSample : (s+1)*outSample]
		dxd := dx.Data()[s*inSample : (s+1)*inSample]
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				g0 := (ch*h*2 + y*2) * w2
				g1 := g0 + w2
				drow := dxd[(ch*h+y)*w : (ch*h+y+1)*w]
				for xi := range drow {
					drow[xi] = gd[g0+2*xi] + gd[g0+2*xi+1] + gd[g1+2*xi] + gd[g1+2*xi+1]
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (u *Upsample2x) Params() []*Param { return nil }

// Clone implements Layer.
func (u *Upsample2x) Clone() Layer { return &Upsample2x{} }
