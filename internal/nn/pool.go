package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// MaxPool2D downsamples CHW tensors by taking the maximum over non-
// overlapping K×K windows (stride = K).
type MaxPool2D struct {
	K int

	scratch
	lastC, lastH, lastW int
	lastArg             []int // flat input index of the max for each output element
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D returns a max-pooling layer with window and stride k.
func NewMaxPool2D(k int) *MaxPool2D { return &MaxPool2D{K: k} }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("nn: MaxPool2D expects CHW, got %v", x.Shape()))
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := h/m.K, w/m.K
	if oh == 0 || ow == 0 {
		panic(fmt.Sprintf("nn: MaxPool2D window %d too large for %v", m.K, x.Shape()))
	}
	out := m.workspace().Tensor3(m, "out", c, oh, ow)
	m.lastC, m.lastH, m.lastW = c, h, w
	if len(m.lastArg) != c*oh*ow {
		m.lastArg = make([]int, c*oh*ow)
	}
	xd := x.Data()
	od := out.Data()
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(0)
				bestIdx := -1
				for ky := 0; ky < m.K; ky++ {
					iy := oy*m.K + ky
					for kx := 0; kx < m.K; kx++ {
						ix := ox*m.K + kx
						idx := (ch*h+iy)*w + ix
						if bestIdx == -1 || xd[idx] > best {
							best, bestIdx = xd[idx], idx
						}
					}
				}
				oidx := (ch*oh+oy)*ow + ox
				od[oidx] = best
				m.lastArg[oidx] = bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := m.workspace().Tensor3(m, "dx", m.lastC, m.lastH, m.lastW)
	dx.Zero()
	dxd := dx.Data()
	gd := grad.Data()
	for i, src := range m.lastArg {
		dxd[src] += gd[i]
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// Clone implements Layer.
func (m *MaxPool2D) Clone() Layer { return &MaxPool2D{K: m.K} }

// Upsample2x doubles spatial resolution by nearest-neighbour repetition;
// the decoder half of the diffusion UNet uses it.
type Upsample2x struct {
	scratch
	lastC, lastH, lastW int
}

var _ Layer = (*Upsample2x)(nil)

// NewUpsample2x returns a 2× nearest-neighbour upsampling layer.
func NewUpsample2x() *Upsample2x { return &Upsample2x{} }

// Forward implements Layer.
func (u *Upsample2x) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("nn: Upsample2x expects CHW, got %v", x.Shape()))
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	u.lastC, u.lastH, u.lastW = c, h, w
	out := u.workspace().Tensor3(u, "out", c, h*2, w*2)
	xd := x.Data()
	od := out.Data()
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			row := xd[(ch*h+y)*w : (ch*h+y+1)*w]
			o0 := (ch*h*2 + y*2) * w * 2
			o1 := o0 + w*2
			for xi, v := range row {
				od[o0+2*xi] = v
				od[o0+2*xi+1] = v
				od[o1+2*xi] = v
				od[o1+2*xi+1] = v
			}
		}
	}
	return out
}

// Backward implements Layer.
func (u *Upsample2x) Backward(grad *tensor.Tensor) *tensor.Tensor {
	c, h, w := u.lastC, u.lastH, u.lastW
	dx := u.workspace().Tensor3(u, "dx", c, h, w)
	gd := grad.Data()
	dxd := dx.Data()
	w2 := w * 2
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			g0 := (ch*h*2 + y*2) * w2
			g1 := g0 + w2
			drow := dxd[(ch*h+y)*w : (ch*h+y+1)*w]
			for xi := range drow {
				drow[xi] = gd[g0+2*xi] + gd[g0+2*xi+1] + gd[g1+2*xi] + gd[g1+2*xi+1]
			}
		}
	}
	return dx
}

// Params implements Layer.
func (u *Upsample2x) Params() []*Param { return nil }

// Clone implements Layer.
func (u *Upsample2x) Clone() Layer { return &Upsample2x{} }
