package nn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

func randInput(rng *xrand.RNG, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	rng.FillNormal(x.Data(), 0, 1)
	return x
}

func mseLoss(target *tensor.Tensor) LossFn {
	return func(out *tensor.Tensor) (float64, *tensor.Tensor) { return MSE(out, target) }
}

// buildTestNet returns a small conv net covering every layer type.
func buildTestNet(rng *xrand.RNG) *Sequential {
	return NewSequential(
		NewConv2D(rng, 2, 4, 3, 1, 1),
		NewGroupNorm(2, 4),
		NewLeakyReLU(0.1),
		NewMaxPool2D(2),
		NewConv2D(rng, 4, 6, 3, 2, 1),
		NewReLU(),
		NewFlatten(),
		NewLinear(rng, 6*2*2, 8),
		NewTanh(),
		NewLinear(rng, 8, 3),
	)
}

func TestForwardShapes(t *testing.T) {
	rng := xrand.New(1)
	net := buildTestNet(rng)
	x := randInput(rng.Split(), 2, 8, 8)
	out := net.Forward(x, false)
	if out.Len() != 3 {
		t.Fatalf("output len %d, want 3", out.Len())
	}
	if net.NumParams() == 0 {
		t.Fatal("network reports zero parameters")
	}
}

func TestInputGradientMatchesFiniteDifferences(t *testing.T) {
	rng := xrand.New(2)
	net := buildTestNet(rng)
	x := randInput(rng.Split(), 2, 8, 8)
	target := randInput(rng.Split(), 3)
	worst, err := CheckInputGradient(net, x, mseLoss(target), 24)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.05 {
		t.Fatalf("input gradient rel err %.4f exceeds tolerance", worst)
	}
}

func TestParamGradientsMatchFiniteDifferences(t *testing.T) {
	rng := xrand.New(3)
	// A smooth variant (no MaxPool/ReLU kinks) so central differences are
	// valid everywhere; the kinked layers are covered by exact-value tests.
	net := NewSequential(
		NewConv2D(rng, 2, 4, 3, 2, 1),
		NewGroupNorm(2, 4),
		NewTanh(),
		NewConv2D(rng, 4, 6, 3, 2, 1),
		NewTanh(),
		NewFlatten(),
		NewLinear(rng, 6*2*2, 8),
		NewTanh(),
		NewLinear(rng, 8, 3),
	)
	x := randInput(rng.Split(), 2, 8, 8)
	target := randInput(rng.Split(), 3)
	worst, name, err := CheckParamGradients(net, x, mseLoss(target), 6)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.05 {
		t.Fatalf("param gradient rel err %.4f at %s exceeds tolerance", worst, name)
	}
}

func TestBCEGradientCheck(t *testing.T) {
	rng := xrand.New(4)
	net := NewSequential(
		NewConv2D(rng, 1, 3, 3, 2, 1),
		NewLeakyReLU(0.1),
		NewFlatten(),
		NewLinear(rng, 3*4*4, 5),
	)
	x := randInput(rng.Split(), 1, 8, 8)
	target := tensor.FromSlice([]float32{1, 0, 1, 0, 1}, 5)
	loss := func(out *tensor.Tensor) (float64, *tensor.Tensor) { return BCEWithLogits(out, target) }
	worst, err := CheckInputGradient(net, x, loss, 16)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.05 {
		t.Fatalf("BCE input grad rel err %.4f", worst)
	}
}

func TestSoftmaxCEGradientCheck(t *testing.T) {
	rng := xrand.New(5)
	net := NewSequential(NewFlatten(), NewLinear(rng, 12, 4))
	x := randInput(rng.Split(), 12)
	loss := func(out *tensor.Tensor) (float64, *tensor.Tensor) { return SoftmaxCE(out, 2) }
	worst, _, err := CheckParamGradients(net, x, loss, 8)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.05 {
		t.Fatalf("softmax CE param grad rel err %.4f", worst)
	}
}

func TestUpsampleGradientCheck(t *testing.T) {
	rng := xrand.New(6)
	net := NewSequential(
		NewConv2D(rng, 1, 2, 3, 2, 1),
		NewUpsample2x(),
		NewConv2D(rng, 2, 1, 3, 1, 1),
	)
	x := randInput(rng.Split(), 1, 8, 8)
	target := randInput(rng.Split(), 1, 8, 8)
	worst, err := CheckInputGradient(net, x, mseLoss(target), 16)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.05 {
		t.Fatalf("upsample grad rel err %.4f", worst)
	}
}

func TestLossValues(t *testing.T) {
	pred := tensor.FromSlice([]float32{1, 2}, 2)
	target := tensor.FromSlice([]float32{0, 0}, 2)
	loss, grad := MSE(pred, target)
	if !almost(loss, 0.5*(1+4)/2, 1e-6) {
		t.Fatalf("MSE = %v", loss)
	}
	if !almost(float64(grad.Data()[1]), 1, 1e-6) {
		t.Fatalf("MSE grad = %v", grad.Data())
	}

	// BCE at logit 0 with target 0.5 is log(2); gradient is 0.
	logits := tensor.FromSlice([]float32{0}, 1)
	tg := tensor.FromSlice([]float32{0.5}, 1)
	bl, bg := BCEWithLogits(logits, tg)
	if !almost(bl, math.Log(2), 1e-6) {
		t.Fatalf("BCE = %v, want ln2", bl)
	}
	if !almost(float64(bg.Data()[0]), 0, 1e-6) {
		t.Fatalf("BCE grad = %v, want 0", bg.Data()[0])
	}
}

func TestSmoothL1Regions(t *testing.T) {
	pred := tensor.FromSlice([]float32{0.5, 3}, 2)
	target := tensor.FromSlice([]float32{0, 0}, 2)
	loss, grad := SmoothL1(pred, target)
	// Element 0: quadratic 0.5*0.25 = 0.125; element 1: linear 3-0.5 = 2.5.
	if !almost(loss, (0.125+2.5)/2, 1e-6) {
		t.Fatalf("SmoothL1 = %v", loss)
	}
	if !almost(float64(grad.Data()[0]), 0.25, 1e-6) {
		t.Fatalf("quad grad = %v", grad.Data()[0])
	}
	if !almost(float64(grad.Data()[1]), 0.5, 1e-6) {
		t.Fatalf("linear grad = %v", grad.Data()[1])
	}
}

func TestWeightedLossesMask(t *testing.T) {
	pred := tensor.FromSlice([]float32{5, 5}, 2)
	target := tensor.FromSlice([]float32{0, 0}, 2)
	w := tensor.FromSlice([]float32{0, 1}, 2)
	_, grad := WeightedMSE(pred, target, w)
	if grad.Data()[0] != 0 {
		t.Fatal("masked element should have zero gradient")
	}
	if grad.Data()[1] == 0 {
		t.Fatal("unmasked element should have gradient")
	}
	_, bg := WeightedBCEWithLogits(pred, target, w)
	if bg.Data()[0] != 0 || bg.Data()[1] == 0 {
		t.Fatal("weighted BCE mask not applied")
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(10)
		logits := make([]float32, n)
		r.FillNormal(logits, 0, 5)
		p := Softmax(logits)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// SGD on a quadratic converges to the minimum.
func TestSGDConverges(t *testing.T) {
	rng := xrand.New(7)
	net := NewSequential(NewLinear(rng, 1, 1))
	opt := NewSGD(0.1, 0.9)
	x := tensor.FromSlice([]float32{1}, 1)
	target := tensor.FromSlice([]float32{3}, 1)
	var loss float64
	for i := 0; i < 200; i++ {
		out := net.Forward(x, true)
		var grad *tensor.Tensor
		loss, grad = MSE(out, target)
		net.ZeroGrad()
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if loss > 1e-6 {
		t.Fatalf("SGD failed to converge, loss=%v", loss)
	}
}

// Adam fits a tiny regression problem faster than raw loss start.
func TestAdamConverges(t *testing.T) {
	rng := xrand.New(8)
	net := NewSequential(NewLinear(rng, 2, 4), NewTanh(), NewLinear(rng, 4, 1))
	opt := NewAdam(0.02)
	inputs := [][]float32{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float32{0, 1, 1, 0} // XOR
	var total float64
	for epoch := 0; epoch < 800; epoch++ {
		total = 0
		net.ZeroGrad()
		for i, in := range inputs {
			x := tensor.FromSlice(append([]float32(nil), in...), 2)
			out := net.Forward(x, true)
			l, g := MSE(out, tensor.FromSlice([]float32{targets[i]}, 1))
			total += l
			net.Backward(g)
		}
		opt.Step(net.Params())
	}
	if total/4 > 0.02 {
		t.Fatalf("Adam failed to fit XOR, loss=%v", total/4)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("p", tensor.FromSlice([]float32{0, 0}, 2))
	p.Grad.Data()[0] = 3
	p.Grad.Data()[1] = 4
	norm := ClipGradNorm([]*Param{p}, 1)
	if !almost(norm, 5, 1e-6) {
		t.Fatalf("pre-clip norm %v, want 5", norm)
	}
	var after float64
	for _, g := range p.Grad.Data() {
		after += float64(g) * float64(g)
	}
	if !almost(math.Sqrt(after), 1, 1e-5) {
		t.Fatalf("post-clip norm %v, want 1", math.Sqrt(after))
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := xrand.New(9)
	net := buildTestNet(rng)
	clone := net.Clone()
	x := randInput(rng.Split(), 2, 8, 8)
	a := net.Forward(x, false).Clone()
	b := clone.Forward(x, false)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("clone produces different outputs")
		}
	}
	// Mutating clone params must not affect the original.
	clone.Params()[0].Value.Fill(0)
	c := net.Forward(x, false)
	for i := range a.Data() {
		if a.Data()[i] != c.Data()[i] {
			t.Fatal("clone shares parameter storage with original")
		}
	}
}

func TestCopyParamsFrom(t *testing.T) {
	rng := xrand.New(10)
	a := buildTestNet(rng)
	b := buildTestNet(rng.Split())
	x := randInput(rng.Split(), 2, 8, 8)
	b.CopyParamsFrom(a)
	oa := a.Forward(x, false)
	ob := b.Forward(x, false)
	for i := range oa.Data() {
		if oa.Data()[i] != ob.Data()[i] {
			t.Fatal("CopyParamsFrom did not equalise outputs")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := xrand.New(11)
	net := buildTestNet(rng)
	x := randInput(rng.Split(), 2, 8, 8)
	want := net.Forward(x, false).Clone()

	var buf bytes.Buffer
	if err := SaveParams(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	fresh := buildTestNet(xrand.New(999))
	if err := LoadParams(&buf, fresh.Params()); err != nil {
		t.Fatal(err)
	}
	got := fresh.Forward(x, false)
	for i := range want.Data() {
		if want.Data()[i] != got.Data()[i] {
			t.Fatal("loaded network differs from saved")
		}
	}
}

func TestLoadParamsRejectsMismatch(t *testing.T) {
	rng := xrand.New(12)
	net := NewSequential(NewLinear(rng, 2, 2))
	var buf bytes.Buffer
	if err := SaveParams(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	other := NewSequential(NewLinear(rng, 3, 3))
	if err := LoadParams(&buf, other.Params()); err == nil {
		t.Fatal("loading mismatched params should error")
	}
}

func TestGroupNormNormalises(t *testing.T) {
	gn := NewGroupNorm(1, 2)
	x := randInput(xrand.New(13), 2, 4, 4)
	out := gn.Forward(x, false)
	// With gamma=1, beta=0 the output should have ~zero mean, ~unit variance.
	if m := out.Mean(); math.Abs(m) > 1e-4 {
		t.Fatalf("GroupNorm mean %v, want ~0", m)
	}
	var varSum float64
	for _, v := range out.Data() {
		varSum += float64(v) * float64(v)
	}
	varSum /= float64(out.Len())
	if math.Abs(varSum-1) > 1e-2 {
		t.Fatalf("GroupNorm var %v, want ~1", varSum)
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	mp := NewMaxPool2D(2)
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		0, 0, 1, 0,
		0, 9, 0, 1,
	}, 1, 4, 4)
	out := mp.Forward(x, false)
	want := []float32{4, 8, 9, 1}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("maxpool[%d] = %v, want %v", i, v, want[i])
		}
	}
	grad := tensor.FromSlice([]float32{1, 1, 1, 1}, 1, 2, 2)
	dx := mp.Backward(grad)
	// Gradient must land exactly on the argmax positions.
	if dx.At(0, 1, 1) != 1 || dx.At(0, 1, 3) != 1 || dx.At(0, 3, 1) != 1 {
		t.Fatalf("maxpool backward misrouted: %v", dx.Data())
	}
	if dx.Sum() != 4 {
		t.Fatalf("maxpool backward total %v, want 4", dx.Sum())
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
