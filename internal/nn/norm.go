package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// GroupNorm normalises CHW activations over groups of channels. Unlike
// batch normalisation it needs no batch statistics, so it behaves
// identically in training and inference and works with the per-sample
// processing model of this package.
type GroupNorm struct {
	Groups int
	C      int
	Eps    float32

	gamma, beta *Param

	scratch

	// Caches for Backward.
	lastH, lastW int
	lastBatch    int            // samples in the last forward (1 for CHW)
	lastNorm     *tensor.Tensor // normalised activations (pre gamma/beta)
	lastStd      []float32      // per-sample, per-group sqrt(var+eps)
}

var _ Layer = (*GroupNorm)(nil)

// NewGroupNorm builds a GroupNorm over c channels split into groups.
// c must be divisible by groups.
func NewGroupNorm(groups, c int) *GroupNorm {
	if c%groups != 0 {
		panic(fmt.Sprintf("nn: GroupNorm channels %d not divisible by groups %d", c, groups))
	}
	gamma := tensor.New(c)
	gamma.Fill(1)
	beta := tensor.New(c)
	return &GroupNorm{
		Groups: groups, C: c, Eps: 1e-5,
		gamma: newParam(fmt.Sprintf("gn%d_gamma", c), gamma),
		beta:  newParam(fmt.Sprintf("gn%d_beta", c), beta),
	}
}

// Forward implements Layer. Rank-4 [N,C,H,W] batches normalise each sample
// independently (group statistics never mix samples), so batched and
// per-sample results are bit-identical.
func (g *GroupNorm) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	nb := 1
	switch {
	case x.Rank() == 3 && x.Dim(0) == g.C:
		g.lastH, g.lastW = x.Dim(1), x.Dim(2)
	case x.Rank() == 4 && x.Dim(1) == g.C:
		nb = x.Dim(0)
		g.lastH, g.lastW = x.Dim(2), x.Dim(3)
	default:
		panic(fmt.Sprintf("nn: GroupNorm expects (%d,H,W) or (N,%d,H,W), got %v", g.C, g.C, x.Shape()))
	}
	h, w := g.lastH, g.lastW
	g.lastBatch = nb

	ws := g.workspace()
	norm := ws.TensorLike(g, "norm", x)
	out := ws.TensorLike(g, "out", x)
	if len(g.lastStd) != nb*g.Groups {
		g.lastStd = make([]float32, nb*g.Groups)
	}
	sample := g.C * h * w
	for s := 0; s < nb; s++ {
		g.forwardSample(x.Data()[s*sample:(s+1)*sample], norm.Data()[s*sample:(s+1)*sample],
			out.Data()[s*sample:(s+1)*sample], g.lastStd[s*g.Groups:(s+1)*g.Groups], h, w)
	}
	g.lastNorm = norm
	return out
}

// forwardSample normalises one CHW sample in place over slices.
func (g *GroupNorm) forwardSample(xd, nd, od, std []float32, h, w int) {
	chPerG := g.C / g.Groups
	n := chPerG * h * w
	gd := g.gamma.Value.Data()
	bd := g.beta.Value.Data()
	for gi := 0; gi < g.Groups; gi++ {
		lo := gi * chPerG * h * w
		hi := lo + n
		var mean float64
		for _, v := range xd[lo:hi] {
			mean += float64(v)
		}
		mean /= float64(n)
		var varSum float64
		for _, v := range xd[lo:hi] {
			d := float64(v) - mean
			varSum += d * d
		}
		sd := float32(math.Sqrt(varSum/float64(n) + float64(g.Eps)))
		std[gi] = sd
		for i := lo; i < hi; i++ {
			nd[i] = (xd[i] - float32(mean)) / sd
		}
		for c := gi * chPerG; c < (gi+1)*chPerG; c++ {
			base := c * h * w
			for i := 0; i < h*w; i++ {
				od[base+i] = gd[c]*nd[base+i] + bd[c]
			}
		}
	}
}

// Backward implements Layer.
func (g *GroupNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return g.backward(grad, true)
}

// BackwardInput implements inputGradLayer: the same input gradient as
// Backward with the dgamma/dbeta accumulation skipped.
func (g *GroupNorm) BackwardInput(grad *tensor.Tensor) *tensor.Tensor {
	return g.backward(grad, false)
}

func (g *GroupNorm) backward(grad *tensor.Tensor, withParams bool) *tensor.Tensor {
	dx := g.workspace().TensorLike(g, "dx", grad)
	sample := g.C * g.lastH * g.lastW
	for s := 0; s < g.lastBatch; s++ {
		g.backwardSample(grad.Data()[s*sample:(s+1)*sample], g.lastNorm.Data()[s*sample:(s+1)*sample],
			dx.Data()[s*sample:(s+1)*sample], g.lastStd[s*g.Groups:(s+1)*g.Groups], g.lastH, g.lastW, withParams)
	}
	return dx
}

// backwardSample computes one sample's input gradient, plus the parameter
// gradients when withParams is set.
func (g *GroupNorm) backwardSample(gradD, nd, dxd, std []float32, h, w int, withParams bool) {
	chPerG := g.C / g.Groups
	n := chPerG * h * w
	gammaD := g.gamma.Value.Data()

	if withParams {
		gammaG := g.gamma.Grad.Data()
		betaG := g.beta.Grad.Data()
		// Parameter gradients: dgamma_c = Σ grad·norm over spatial, dbeta_c = Σ grad.
		for c := 0; c < g.C; c++ {
			base := c * h * w
			var dg, db float32
			for i := 0; i < h*w; i++ {
				dg += gradD[base+i] * nd[base+i]
				db += gradD[base+i]
			}
			gammaG[c] += dg
			betaG[c] += db
		}
	}

	// Input gradient per group:
	// dx = (gamma*grad - mean(gamma*grad) - norm * mean(gamma*grad*norm)) / std
	for gi := 0; gi < g.Groups; gi++ {
		sd := std[gi]
		var sumDY, sumDYN float64
		for c := gi * chPerG; c < (gi+1)*chPerG; c++ {
			base := c * h * w
			for i := 0; i < h*w; i++ {
				dy := float64(gammaD[c] * gradD[base+i])
				sumDY += dy
				sumDYN += dy * float64(nd[base+i])
			}
		}
		meanDY := float32(sumDY / float64(n))
		meanDYN := float32(sumDYN / float64(n))
		for c := gi * chPerG; c < (gi+1)*chPerG; c++ {
			base := c * h * w
			for i := 0; i < h*w; i++ {
				dy := gammaD[c] * gradD[base+i]
				dxd[base+i] = (dy - meanDY - nd[base+i]*meanDYN) / sd
			}
		}
	}
}

// Params implements Layer.
func (g *GroupNorm) Params() []*Param { return []*Param{g.gamma, g.beta} }

// Clone implements Layer.
func (g *GroupNorm) Clone() Layer {
	return &GroupNorm{Groups: g.Groups, C: g.C, Eps: g.Eps, gamma: g.gamma.clone(), beta: g.beta.clone()}
}
