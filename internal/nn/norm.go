package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// GroupNorm normalises CHW activations over groups of channels. Unlike
// batch normalisation it needs no batch statistics, so it behaves
// identically in training and inference and works with the per-sample
// processing model of this package.
type GroupNorm struct {
	Groups int
	C      int
	Eps    float32

	gamma, beta *Param

	scratch

	// Caches for Backward.
	lastH, lastW int
	lastNorm     *tensor.Tensor // normalised activations (pre gamma/beta)
	lastStd      []float32      // per-group sqrt(var+eps)
}

var _ Layer = (*GroupNorm)(nil)

// NewGroupNorm builds a GroupNorm over c channels split into groups.
// c must be divisible by groups.
func NewGroupNorm(groups, c int) *GroupNorm {
	if c%groups != 0 {
		panic(fmt.Sprintf("nn: GroupNorm channels %d not divisible by groups %d", c, groups))
	}
	gamma := tensor.New(c)
	gamma.Fill(1)
	beta := tensor.New(c)
	return &GroupNorm{
		Groups: groups, C: c, Eps: 1e-5,
		gamma: newParam(fmt.Sprintf("gn%d_gamma", c), gamma),
		beta:  newParam(fmt.Sprintf("gn%d_beta", c), beta),
	}
}

// Forward implements Layer.
func (g *GroupNorm) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(0) != g.C {
		panic(fmt.Sprintf("nn: GroupNorm expects (%d,H,W), got %v", g.C, x.Shape()))
	}
	h, w := x.Dim(1), x.Dim(2)
	chPerG := g.C / g.Groups
	n := chPerG * h * w

	ws := g.workspace()
	g.lastH, g.lastW = h, w
	norm := ws.Tensor3(g, "norm", g.C, h, w)
	out := ws.Tensor3(g, "out", g.C, h, w)
	if len(g.lastStd) != g.Groups {
		g.lastStd = make([]float32, g.Groups)
	}

	xd := x.Data()
	nd := norm.Data()
	od := out.Data()
	gd := g.gamma.Value.Data()
	bd := g.beta.Value.Data()

	for gi := 0; gi < g.Groups; gi++ {
		lo := gi * chPerG * h * w
		hi := lo + n
		var mean float64
		for _, v := range xd[lo:hi] {
			mean += float64(v)
		}
		mean /= float64(n)
		var varSum float64
		for _, v := range xd[lo:hi] {
			d := float64(v) - mean
			varSum += d * d
		}
		std := float32(math.Sqrt(varSum/float64(n) + float64(g.Eps)))
		g.lastStd[gi] = std
		for i := lo; i < hi; i++ {
			nd[i] = (xd[i] - float32(mean)) / std
		}
		for c := gi * chPerG; c < (gi+1)*chPerG; c++ {
			base := c * h * w
			for i := 0; i < h*w; i++ {
				od[base+i] = gd[c]*nd[base+i] + bd[c]
			}
		}
	}
	g.lastNorm = norm
	return out
}

// Backward implements Layer.
func (g *GroupNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	h, w := g.lastH, g.lastW
	chPerG := g.C / g.Groups
	n := chPerG * h * w

	dx := g.workspace().Tensor3(g, "dx", g.C, h, w)
	gradD := grad.Data()
	nd := g.lastNorm.Data()
	dxd := dx.Data()
	gammaD := g.gamma.Value.Data()
	gammaG := g.gamma.Grad.Data()
	betaG := g.beta.Grad.Data()

	// Parameter gradients: dgamma_c = Σ grad·norm over spatial, dbeta_c = Σ grad.
	for c := 0; c < g.C; c++ {
		base := c * h * w
		var dg, db float32
		for i := 0; i < h*w; i++ {
			dg += gradD[base+i] * nd[base+i]
			db += gradD[base+i]
		}
		gammaG[c] += dg
		betaG[c] += db
	}

	// Input gradient per group:
	// dx = (gamma*grad - mean(gamma*grad) - norm * mean(gamma*grad*norm)) / std
	for gi := 0; gi < g.Groups; gi++ {
		lo := gi * chPerG * h * w
		std := g.lastStd[gi]
		var sumDY, sumDYN float64
		for c := gi * chPerG; c < (gi+1)*chPerG; c++ {
			base := c * h * w
			for i := 0; i < h*w; i++ {
				dy := float64(gammaD[c] * gradD[base+i])
				sumDY += dy
				sumDYN += dy * float64(nd[base+i])
			}
		}
		meanDY := float32(sumDY / float64(n))
		meanDYN := float32(sumDYN / float64(n))
		for c := gi * chPerG; c < (gi+1)*chPerG; c++ {
			base := c * h * w
			for i := 0; i < h*w; i++ {
				dy := gammaD[c] * gradD[base+i]
				dxd[base+i] = (dy - meanDY - nd[base+i]*meanDYN) / std
			}
		}
		_ = lo
	}
	return dx
}

// Params implements Layer.
func (g *GroupNorm) Params() []*Param { return []*Param{g.gamma, g.beta} }

// Clone implements Layer.
func (g *GroupNorm) Clone() Layer {
	return &GroupNorm{Groups: g.Groups, C: g.C, Eps: g.Eps, gamma: g.gamma.clone(), beta: g.beta.clone()}
}
