package nn

import "repro/internal/tensor"

// Workspace owns the reusable scratch tensors of one model instance:
// im2col column matrices, matmul outputs, transposes, activation caches and
// gradient buffers. Layers request buffers keyed by (layer, name); a buffer
// is allocated on the first Forward/Backward that needs it and reused on
// every later call with the same shape, which makes steady-state inference,
// training and attack gradient loops allocation-free.
//
// Ownership and thread-safety rules:
//
//   - A Workspace belongs to exactly one model instance (one Sequential and
//     the layers attached to it) and inherits the model's concurrency
//     contract: not safe for concurrent use. Sequential.Clone gives the
//     clone a fresh Workspace, so per-worker clones share no scratch.
//   - Tensors returned by Layer.Forward/Backward (and therefore by
//     Sequential.Forward/Backward and model wrappers such as
//     Regressor.DistanceGrad) live in the Workspace and stay valid only
//     until the model's next Forward/Backward call. Callers that retain an
//     output across calls must Clone it.
//   - Buffer contents are whatever the previous use left behind; a layer
//     must fully overwrite (or Zero) a buffer before reading it.
type Workspace struct {
	m map[wsKey]*tensor.Tensor
}

type wsKey struct {
	owner any
	name  string
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{m: make(map[wsKey]*tensor.Tensor)}
}

// Tensor1, Tensor2 and Tensor3 return the scratch tensor registered under
// (owner, name), allocating or replacing it when the requested shape
// changed. The rank is in the signature rather than a variadic so the hot
// path — shape unchanged — materialises no shape slice and allocates
// nothing.

// Tensor1 returns a rank-1 scratch tensor of length n.
func (w *Workspace) Tensor1(owner any, name string, n int) *tensor.Tensor {
	k := wsKey{owner: owner, name: name}
	if t, ok := w.m[k]; ok && t.Rank() == 1 && t.Dim(0) == n {
		return t
	}
	t := tensor.New(n)
	w.m[k] = t
	return t
}

// Tensor2 returns a rank-2 scratch tensor of shape d0×d1.
func (w *Workspace) Tensor2(owner any, name string, d0, d1 int) *tensor.Tensor {
	k := wsKey{owner: owner, name: name}
	if t, ok := w.m[k]; ok && t.Rank() == 2 && t.Dim(0) == d0 && t.Dim(1) == d1 {
		return t
	}
	t := tensor.New(d0, d1)
	w.m[k] = t
	return t
}

// Tensor3 returns a rank-3 scratch tensor of shape d0×d1×d2.
func (w *Workspace) Tensor3(owner any, name string, d0, d1, d2 int) *tensor.Tensor {
	k := wsKey{owner: owner, name: name}
	if t, ok := w.m[k]; ok && t.Rank() == 3 && t.Dim(0) == d0 && t.Dim(1) == d1 && t.Dim(2) == d2 {
		return t
	}
	t := tensor.New(d0, d1, d2)
	w.m[k] = t
	return t
}

// Tensor4 returns a rank-4 scratch tensor of shape d0×d1×d2×d3 (the
// batched [N,C,H,W] activations of the batch-first layer paths).
func (w *Workspace) Tensor4(owner any, name string, d0, d1, d2, d3 int) *tensor.Tensor {
	k := wsKey{owner: owner, name: name}
	if t, ok := w.m[k]; ok && t.Rank() == 4 && t.Dim(0) == d0 && t.Dim(1) == d1 && t.Dim(2) == d2 && t.Dim(3) == d3 {
		return t
	}
	t := tensor.New(d0, d1, d2, d3)
	w.m[k] = t
	return t
}

// TensorLike is Tensor with the shape taken from an existing tensor,
// avoiding the shape-copy allocation of Tensor.Shape().
func (w *Workspace) TensorLike(owner any, name string, like *tensor.Tensor) *tensor.Tensor {
	k := wsKey{owner: owner, name: name}
	if t, ok := w.m[k]; ok && t.SameShape(like) {
		return t
	}
	t := tensor.New(like.Shape()...)
	w.m[k] = t
	return t
}

// Bytes reports the total scratch footprint in bytes (for diagnostics).
func (w *Workspace) Bytes() int {
	n := 0
	//advlint:ordered-ok integer sum over scratch tensors; order-free
	for _, t := range w.m {
		n += 4 * t.Len()
	}
	return n
}

// workspaceUser is implemented by layers that keep scratch in a model
// workspace; Sequential attaches its workspace to them at assembly time.
type workspaceUser interface {
	setWorkspace(*Workspace)
}

// scratch is embedded by layers to hold their workspace attachment. A layer
// used standalone (outside a Sequential) lazily creates a private
// workspace, so destination-passing reuse works there too.
type scratch struct {
	ws *Workspace
}

func (s *scratch) setWorkspace(w *Workspace) { s.ws = w }

func (s *scratch) workspace() *Workspace {
	if s.ws == nil {
		s.ws = NewWorkspace()
	}
	return s.ws
}

// viewCache memoises a reshaped view of a tensor between calls: steady-
// state Forward/Backward passes see the same backing buffer with the same
// shape every time, so the view is built once and reused instead of
// allocating a fresh header per call.
type viewCache struct {
	src  []float32
	view *tensor.Tensor
}

// sameBacking reports whether the cached view still wraps t's storage.
func (vc *viewCache) sameBacking(d []float32) bool {
	return vc.view != nil && len(vc.src) == len(d) && len(d) > 0 && &vc.src[0] == &d[0]
}

// of1 returns t viewed as a flat vector, reusing the cached view when t's
// backing array matches the previous call. Like the Workspace accessors the
// rank sits in the signature so the hit path materialises no shape slice.
func (vc *viewCache) of1(t *tensor.Tensor) *tensor.Tensor {
	d := t.Data()
	if vc.sameBacking(d) && vc.view.Rank() == 1 {
		return vc.view
	}
	vc.src = d
	vc.view = t.Reshape(len(d))
	return vc.view
}

// of2 returns t viewed as a d0×d1 matrix with the same memoisation.
func (vc *viewCache) of2(t *tensor.Tensor, d0, d1 int) *tensor.Tensor {
	d := t.Data()
	if vc.sameBacking(d) && vc.view.Rank() == 2 && vc.view.Dim(0) == d0 && vc.view.Dim(1) == d1 {
		return vc.view
	}
	vc.src = d
	vc.view = t.Reshape(d0, d1)
	return vc.view
}

// of3 returns t viewed as a d0×d1×d2 volume with the same memoisation.
func (vc *viewCache) of3(t *tensor.Tensor, d0, d1, d2 int) *tensor.Tensor {
	d := t.Data()
	if vc.sameBacking(d) && vc.view.Rank() == 3 && vc.view.Dim(0) == d0 && vc.view.Dim(1) == d1 && vc.view.Dim(2) == d2 {
		return vc.view
	}
	vc.src = d
	vc.view = t.Reshape(d0, d1, d2)
	return vc.view
}

// ofShape returns t reshaped to an arbitrary cached shape slice (Flatten's
// backward restores whatever rank the forward input had). The slice is an
// existing field, so nothing is materialised per call.
func (vc *viewCache) ofShape(t *tensor.Tensor, shape []int) *tensor.Tensor {
	d := t.Data()
	if vc.sameBacking(d) && vc.view.ShapeEq(shape...) {
		return vc.view
	}
	vc.src = d
	vc.view = t.Reshape(shape...)
	return vc.view
}
