package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// savedParam is the on-disk form of one parameter tensor.
type savedParam struct {
	Name  string
	Shape []int
	Data  []float32
}

// SaveParams writes all parameter values to w in declaration order using
// encoding/gob. The architecture itself is not serialized; callers must
// reconstruct the same network before loading.
func SaveParams(w io.Writer, params []*Param) error {
	out := make([]savedParam, len(params))
	for i, p := range params {
		out[i] = savedParam{Name: p.Name, Shape: p.Value.Shape(), Data: p.Value.Data()}
	}
	if err := gob.NewEncoder(w).Encode(out); err != nil {
		return fmt.Errorf("encode params: %w", err)
	}
	return nil
}

// LoadParams reads parameter values written by SaveParams into params.
// Count and shapes must match exactly.
func LoadParams(r io.Reader, params []*Param) error {
	var in []savedParam
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("decode params: %w", err)
	}
	if len(in) != len(params) {
		return fmt.Errorf("param count mismatch: file has %d, network has %d", len(in), len(params))
	}
	for i, sp := range in {
		p := params[i]
		if p.Value.Len() != len(sp.Data) {
			return fmt.Errorf("param %d (%s): size %d vs file %d", i, p.Name, p.Value.Len(), len(sp.Data))
		}
		copy(p.Value.Data(), sp.Data)
		p.MarkMutated()
	}
	return nil
}

// EncodeParams serializes parameter values to a byte slice (SaveParams
// into memory) — the unit the model artifact store reads and writes.
func EncodeParams(params []*Param) ([]byte, error) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, params); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeParams loads parameter values from a byte slice written by
// EncodeParams (or SaveParams). Count and shapes must match exactly.
func DecodeParams(data []byte, params []*Param) error {
	return LoadParams(bytes.NewReader(data), params)
}

// SaveParamsFile saves parameters to a file path.
func SaveParamsFile(path string, params []*Param) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return SaveParams(f, params)
}

// LoadParamsFile loads parameters from a file path.
func LoadParamsFile(path string, params []*Param) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return LoadParams(f, params)
}
