package nn

import (
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// benchNet is a DistNet-shaped stack: three stride-2 convolutions and a
// dense head over a 64×64 RGB frame.
func benchNet() (*Sequential, *tensor.Tensor) {
	rng := xrand.New(11)
	net := NewSequential(
		NewConv2D(rng, 3, 12, 3, 2, 1),
		NewLeakyReLU(0.1),
		NewConv2D(rng, 12, 24, 3, 2, 1),
		NewLeakyReLU(0.1),
		NewConv2D(rng, 24, 32, 3, 2, 1),
		NewLeakyReLU(0.1),
		NewFlatten(),
		NewLinear(rng, 32*8*8, 48),
		NewLeakyReLU(0.1),
		NewLinear(rng, 48, 1),
	)
	x := tensor.New(3, 64, 64)
	for i := range x.Data() {
		x.Data()[i] = float32(i%29) * 0.03
	}
	return net, x
}

// BenchmarkSequentialForward times one workspace-backed inference.
func BenchmarkSequentialForward(b *testing.B) {
	net, x := benchNet()
	net.Forward(x, false) // size the workspace outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

// BenchmarkSequentialForwardBatch8 times one batched inference over 8
// frames (one op = 8 frames); compare frames/s against
// BenchmarkSequentialForward to see the batching win.
func BenchmarkSequentialForwardBatch8(b *testing.B) {
	net, _ := benchNet()
	batch := tensor.New(8, 3, 64, 64)
	for i := range batch.Data() {
		batch.Data()[i] = float32(i%29) * 0.03
	}
	net.Forward(batch, false) // size the workspace outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(batch, false)
	}
}

// BenchmarkSequentialForwardBackward times the attack primitive: one
// forward plus one input-gradient backward pass.
func BenchmarkSequentialForwardBackward(b *testing.B) {
	net, x := benchNet()
	seed := tensor.New(1)
	seed.Data()[0] = 1
	net.Forward(x, false)
	net.Backward(seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
		net.ZeroGrad()
		net.Backward(seed)
	}
}
