package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LossFn maps a network output to (loss, dLoss/dOutput); gradient checking
// drives the network through an arbitrary loss.
type LossFn func(out *tensor.Tensor) (float64, *tensor.Tensor)

// CheckInputGradient compares the analytic input gradient of net under loss
// against central finite differences at nProbe randomly strided positions.
// It returns the worst relative error observed. Used by tests to certify
// that every layer's Backward matches its Forward.
func CheckInputGradient(net *Sequential, x *tensor.Tensor, loss LossFn, nProbe int) (float64, error) {
	out := net.Forward(x, false)
	_, g := loss(out)
	net.ZeroGrad()
	// Clone: the returned gradient lives in the model workspace and is only
	// valid until the next Forward — the probing loop below runs many.
	analytic := net.Backward(g).Clone()

	const eps = 1e-2
	worst := 0.0
	stride := x.Len() / nProbe
	if stride == 0 {
		stride = 1
	}
	xd := x.Data()
	for i := 0; i < x.Len(); i += stride {
		orig := xd[i]
		xd[i] = orig + eps
		lp, _ := loss(net.Forward(x, false))
		xd[i] = orig - eps
		lm, _ := loss(net.Forward(x, false))
		xd[i] = orig
		numeric := (lp - lm) / (2 * eps)
		a := float64(analytic.Data()[i])
		rel := relErr(a, numeric)
		if rel > worst {
			worst = rel
		}
	}
	return worst, nil
}

// CheckParamGradients compares analytic parameter gradients against central
// finite differences, probing a few entries of every parameter tensor. It
// returns the worst relative error and the offending parameter name.
func CheckParamGradients(net *Sequential, x *tensor.Tensor, loss LossFn, probesPerParam int) (float64, string, error) {
	net.ZeroGrad()
	out := net.Forward(x, false)
	_, g := loss(out)
	net.Backward(g)

	// Snapshot analytic gradients before the probing forwards overwrite caches.
	params := net.Params()
	analytic := make([][]float32, len(params))
	for i, p := range params {
		analytic[i] = append([]float32(nil), p.Grad.Data()...)
	}

	const eps = 1e-2
	worst := 0.0
	worstName := ""
	for pi, p := range params {
		pd := p.Value.Data()
		stride := len(pd) / probesPerParam
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < len(pd); i += stride {
			// Each probe writes the weight directly, so the version bump
			// keeps weight-derived caches (Linear's transpose) coherent.
			orig := pd[i]
			pd[i] = orig + eps
			p.MarkMutated()
			lp, _ := loss(net.Forward(x, false))
			pd[i] = orig - eps
			p.MarkMutated()
			lm, _ := loss(net.Forward(x, false))
			pd[i] = orig
			p.MarkMutated()
			numeric := (lp - lm) / (2 * eps)
			rel := relErr(float64(analytic[pi][i]), numeric)
			if rel > worst {
				worst = rel
				worstName = fmt.Sprintf("%s[%d]", p.Name, i)
			}
		}
	}
	return worst, worstName, nil
}

// relErr is |a-b| / max(1e-4, |a|+|b|): a scale-aware comparison that does
// not blow up when both gradients are ~0.
func relErr(a, b float64) float64 {
	denom := math.Abs(a) + math.Abs(b)
	if denom < 1e-4 {
		denom = 1e-4
	}
	return math.Abs(a-b) / denom
}
