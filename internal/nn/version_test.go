package nn

import (
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// makeGemvLinear builds the dense-head shape the transpose cache targets:
// a single-row (m=1) forward through a wide Linear.
func makeGemvLinear(t testing.TB) (*Linear, *tensor.Tensor) {
	rng := xrand.New(3)
	l := NewLinear(rng, 256, 48)
	x := tensor.New(256)
	rng.FillNormal(x.Data(), 0, 1)
	return l, x
}

// TestLinearTransposeCacheTracksMutations certifies the parameter-version
// fold: repeated forwards reuse the cached Wᵀ, and every mutation path —
// optimizer step, CopyParamsFrom, direct write + MarkMutated — refreshes
// it so outputs always match a cache-free layer with identical weights.
func TestLinearTransposeCacheTracksMutations(t *testing.T) {
	l, x := makeGemvLinear(t)

	fresh := func() []float32 {
		// A brand-new layer sharing l's weights computes the
		// cache-free reference output.
		ref := &Linear{In: l.In, Out: l.Out, w: l.w.clone(), b: l.b.clone()}
		return append([]float32(nil), ref.Forward(x, false).Data()...)
	}

	check := func(stage string) {
		t.Helper()
		got := l.Forward(x, false).Data()
		want := fresh()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: output[%d] = %v, want %v (stale transpose cache?)", stage, i, got[i], want[i])
			}
		}
	}

	check("first forward")
	check("cached forward")

	// Optimizer step mutates weights through Step and must invalidate.
	grad := tensor.New(l.Out)
	for i := range grad.Data() {
		grad.Data()[i] = float32(i%5) - 2
	}
	l.Forward(x, false)
	l.Backward(grad)
	NewSGD(0.05, 0.9).Step(l.Params())
	check("after SGD step")

	l.Forward(x, false)
	l.Backward(grad)
	NewAdam(0.01).Step(l.Params())
	check("after Adam step")

	// Direct write + MarkMutated (the finite-difference protocol).
	l.w.Value.Data()[7] += 0.25
	l.w.MarkMutated()
	check("after direct mutation")

	// CopyParamsFrom through a Sequential wrapper.
	src := NewSequential(NewLinear(xrand.New(9), l.In, l.Out))
	dst := NewSequential(l)
	dst.CopyParamsFrom(src)
	check("after CopyParamsFrom")
}

func TestParamVersionSemantics(t *testing.T) {
	p := newParam("w", tensor.New(4, 4))
	if p.Version() == 0 {
		t.Fatal("fresh params must start at a positive version")
	}
	v := p.Version()
	p.MarkMutated()
	if p.Version() != v+1 {
		t.Fatalf("MarkMutated moved version %d -> %d", v, p.Version())
	}
	c := p.clone()
	if c.Version() == 0 {
		t.Fatal("cloned params must start at a positive version")
	}
}

// TestLinearGemvSteadyStateAllocs guards the m=1 dense-head path: with the
// transpose folded behind the version counter, steady-state single-sample
// forwards allocate nothing.
func TestLinearGemvSteadyStateAllocs(t *testing.T) {
	l, x := makeGemvLinear(t)
	l.Forward(x, false) // warm the workspace and the transpose cache
	if avg := testing.AllocsPerRun(100, func() { l.Forward(x, false) }); avg >= 1 {
		t.Fatalf("m=1 Linear forward allocates %.1f per call", avg)
	}
}

// BenchmarkLinearGemvForward measures the dense-head m=1 forward the
// transpose fold targets (before: one In×Out transpose per call).
func BenchmarkLinearGemvForward(b *testing.B) {
	rng := xrand.New(3)
	l := NewLinear(rng, 2048, 1)
	x := tensor.New(2048)
	rng.FillNormal(x.Data(), 0, 1)
	l.Forward(x, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, false)
	}
}
