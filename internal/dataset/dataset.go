// Package dataset assembles the synthetic scene generators into train/test
// datasets with deterministic splits and shuffling, mirroring how the paper
// pairs the Traffic Signs Detection dataset with comma2k19 driving video.
package dataset

import (
	"repro/internal/imaging"
	"repro/internal/scene"
	"repro/internal/xrand"
)

// SignSet is a collection of stop-sign scenes.
type SignSet struct {
	Scenes []scene.SignScene
}

// GenerateSignSet renders n independent stop-sign scenes.
func GenerateSignSet(rng *xrand.RNG, cfg scene.SignConfig, n int) *SignSet {
	out := &SignSet{Scenes: make([]scene.SignScene, n)}
	for i := range out.Scenes {
		out.Scenes[i] = scene.GenerateSign(rng, cfg)
	}
	return out
}

// Split partitions the set into train and test with the given train
// fraction; the order is preserved (scenes are i.i.d. by construction).
func (s *SignSet) Split(trainFrac float64) (train, test *SignSet) {
	k := int(float64(len(s.Scenes)) * trainFrac)
	if k < 0 {
		k = 0
	}
	if k > len(s.Scenes) {
		k = len(s.Scenes)
	}
	return &SignSet{Scenes: s.Scenes[:k]}, &SignSet{Scenes: s.Scenes[k:]}
}

// Shuffle permutes the scenes in place.
func (s *SignSet) Shuffle(rng *xrand.RNG) {
	rng.Shuffle(len(s.Scenes), func(i, j int) {
		s.Scenes[i], s.Scenes[j] = s.Scenes[j], s.Scenes[i]
	})
}

// Len returns the number of scenes.
func (s *SignSet) Len() int { return len(s.Scenes) }

// WithImages returns a new set that keeps every scene's labels but swaps
// in the given images (one per scene, e.g. adversarially perturbed copies).
func (s *SignSet) WithImages(imgs []*imaging.Image) *SignSet {
	if len(imgs) != len(s.Scenes) {
		panic("dataset: WithImages length mismatch")
	}
	out := &SignSet{Scenes: make([]scene.SignScene, len(s.Scenes))}
	for i, sc := range s.Scenes {
		sc.Img = imgs[i]
		out.Scenes[i] = sc
	}
	return out
}

// DriveSet is a collection of driving frames.
type DriveSet struct {
	Scenes []scene.DriveScene
}

// GenerateDriveSet renders n driving frames with distances sampled
// uniformly from [minZ, maxZ].
func GenerateDriveSet(rng *xrand.RNG, cfg scene.DriveConfig, n int, minZ, maxZ float64) *DriveSet {
	out := &DriveSet{Scenes: make([]scene.DriveScene, n)}
	for i := range out.Scenes {
		z := rng.Uniform(minZ, maxZ)
		out.Scenes[i] = scene.GenerateDrive(rng, cfg, z)
	}
	return out
}

// GenerateDriveSetStratified renders frames spread evenly across the given
// distance buckets (the paper's [0,20], [20,40], [40,60], [60,80] ranges),
// nPerBucket frames each, so every range has equal support in evaluation.
func GenerateDriveSetStratified(rng *xrand.RNG, cfg scene.DriveConfig, nPerBucket int, buckets [][2]float64) *DriveSet {
	out := &DriveSet{}
	for _, b := range buckets {
		for i := 0; i < nPerBucket; i++ {
			z := rng.Uniform(b[0], b[1])
			out.Scenes = append(out.Scenes, scene.GenerateDrive(rng, cfg, z))
		}
	}
	return out
}

// Split partitions the set into train and test with the given train fraction.
func (s *DriveSet) Split(trainFrac float64) (train, test *DriveSet) {
	k := int(float64(len(s.Scenes)) * trainFrac)
	if k < 0 {
		k = 0
	}
	if k > len(s.Scenes) {
		k = len(s.Scenes)
	}
	return &DriveSet{Scenes: s.Scenes[:k]}, &DriveSet{Scenes: s.Scenes[k:]}
}

// Shuffle permutes the scenes in place.
func (s *DriveSet) Shuffle(rng *xrand.RNG) {
	rng.Shuffle(len(s.Scenes), func(i, j int) {
		s.Scenes[i], s.Scenes[j] = s.Scenes[j], s.Scenes[i]
	})
}

// Len returns the number of scenes.
func (s *DriveSet) Len() int { return len(s.Scenes) }

// Batches yields index slices of size batch covering [0, n), the last batch
// possibly short. Trainers iterate these to accumulate gradients.
func Batches(n, batch int) [][]int {
	var out [][]int
	for i := 0; i < n; i += batch {
		j := i + batch
		if j > n {
			j = n
		}
		idx := make([]int, j-i)
		for k := range idx {
			idx[k] = i + k
		}
		out = append(out, idx)
	}
	return out
}
