package dataset

import (
	"testing"

	"repro/internal/imaging"
	"repro/internal/scene"
	"repro/internal/xrand"
)

func TestGenerateSignSetDeterministic(t *testing.T) {
	cfg := scene.DefaultSignConfig()
	a := GenerateSignSet(xrand.New(1), cfg, 10)
	b := GenerateSignSet(xrand.New(1), cfg, 10)
	if a.Len() != 10 || b.Len() != 10 {
		t.Fatalf("lens %d %d", a.Len(), b.Len())
	}
	for i := range a.Scenes {
		if a.Scenes[i].Img.MeanAbsDiff(b.Scenes[i].Img) != 0 {
			t.Fatalf("scene %d differs across same-seed generations", i)
		}
	}
}

func TestSignSetSplit(t *testing.T) {
	set := GenerateSignSet(xrand.New(2), scene.DefaultSignConfig(), 10)
	train, test := set.Split(0.8)
	if train.Len() != 8 || test.Len() != 2 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// Extremes clamp instead of panicking.
	all, none := set.Split(2.0)
	if all.Len() != 10 || none.Len() != 0 {
		t.Fatalf("clamped split sizes %d/%d", all.Len(), none.Len())
	}
}

func TestDriveSetStratified(t *testing.T) {
	cfg := scene.DefaultDriveConfig()
	buckets := [][2]float64{{5, 20}, {20, 40}, {40, 60}}
	set := GenerateDriveSetStratified(xrand.New(3), cfg, 4, buckets)
	if set.Len() != 12 {
		t.Fatalf("stratified len %d", set.Len())
	}
	counts := make([]int, len(buckets))
	for _, sc := range set.Scenes {
		for i, b := range buckets {
			if sc.Distance >= b[0] && sc.Distance < b[1] {
				counts[i]++
			}
		}
	}
	for i, c := range counts {
		if c != 4 {
			t.Fatalf("bucket %d has %d samples, want 4", i, c)
		}
	}
}

func TestDriveSetDistancesInRange(t *testing.T) {
	cfg := scene.DefaultDriveConfig()
	set := GenerateDriveSet(xrand.New(4), cfg, 50, 10, 30)
	for _, sc := range set.Scenes {
		if sc.Distance < 10 || sc.Distance >= 30 {
			t.Fatalf("distance %v outside [10,30)", sc.Distance)
		}
	}
}

func TestWithImagesSwapsPixelsKeepsLabels(t *testing.T) {
	set := GenerateSignSet(xrand.New(5), scene.DefaultSignConfig(), 5)
	imgs := make([]*imaging.Image, set.Len())
	for i := range imgs {
		imgs[i] = imaging.NewRGB(64, 64)
	}
	swapped := set.WithImages(imgs)
	for i := range swapped.Scenes {
		if swapped.Scenes[i].HasSign != set.Scenes[i].HasSign {
			t.Fatal("labels must be preserved")
		}
		if swapped.Scenes[i].Img != imgs[i] {
			t.Fatal("images must be swapped")
		}
	}
	// Original untouched.
	if set.Scenes[0].Img == imgs[0] {
		t.Fatal("original set mutated")
	}
}

func TestWithImagesLengthMismatchPanics(t *testing.T) {
	set := GenerateSignSet(xrand.New(6), scene.DefaultSignConfig(), 3)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	set.WithImages(make([]*imaging.Image, 2))
}

func TestShuffleKeepsMultiset(t *testing.T) {
	set := GenerateDriveSet(xrand.New(7), scene.DefaultDriveConfig(), 20, 5, 50)
	sum := 0.0
	for _, sc := range set.Scenes {
		sum += sc.Distance
	}
	set.Shuffle(xrand.New(8))
	sum2 := 0.0
	for _, sc := range set.Scenes {
		sum2 += sc.Distance
	}
	if sum != sum2 {
		t.Fatal("shuffle changed contents")
	}
}

func TestBatches(t *testing.T) {
	bs := Batches(10, 4)
	if len(bs) != 3 {
		t.Fatalf("batches = %d", len(bs))
	}
	if len(bs[0]) != 4 || len(bs[2]) != 2 {
		t.Fatalf("batch sizes %d/%d", len(bs[0]), len(bs[2]))
	}
	seen := map[int]bool{}
	for _, b := range bs {
		for _, i := range b {
			if seen[i] {
				t.Fatalf("index %d duplicated", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("covered %d indices, want 10", len(seen))
	}
}
