package attack

import (
	"repro/internal/box"
	"repro/internal/detect"
	"repro/internal/imaging"
	"repro/internal/regress"
	"repro/internal/tensor"
)

// DetectionObjective wraps a detector as an attack target: the attacker
// ascends the detector's training loss against the true boxes (untargeted
// mis-detection) and, for black-box queries, drives down the maximum
// objectness (the "a sign is present" confidence).
type DetectionObjective struct {
	Det *detect.Detector
	GT  []box.Box
}

var _ Objective = (*DetectionObjective)(nil)

// LossGrad implements Objective.
func (o *DetectionObjective) LossGrad(img *imaging.Image) (float64, *tensor.Tensor) {
	return o.Det.TrainLoss(img, o.GT)
}

// Score implements Objective.
func (o *DetectionObjective) Score(img *imaging.Image) float64 {
	return o.Det.MaxObjectness(img)
}

// RegressionObjective wraps the distance regressor as an attack target.
// The attacker wants the predicted distance pushed up (the lead vehicle
// appears farther than it is, the hazardous direction for ACC: the ego
// accelerates into a gap that does not exist — the CAP-Attack scenario).
type RegressionObjective struct {
	Reg *regress.Regressor

	predBuf []float64
}

var _ Objective = (*RegressionObjective)(nil)
var _ BatchObjective = (*RegressionObjective)(nil)

// LossGrad implements Objective: loss = predicted distance (normalised),
// so ascending it inflates the perceived gap.
func (o *RegressionObjective) LossGrad(img *imaging.Image) (float64, *tensor.Tensor) {
	pred, grad := o.Reg.DistanceGrad(img)
	return pred / o.Reg.MaxDist, grad
}

// LossGradBatch implements BatchObjective: one fused forward/backward over
// the block, with per-frame losses and gradients bit-identical to LossGrad.
func (o *RegressionObjective) LossGradBatch(losses []float64, imgs []*imaging.Image) *tensor.Tensor {
	if cap(o.predBuf) < len(imgs) {
		o.predBuf = make([]float64, len(imgs))
	}
	preds := o.predBuf[:len(imgs)]
	grads := o.Reg.DistanceGradBatch(preds, imgs)
	if losses != nil {
		for i, p := range preds {
			losses[i] = p / o.Reg.MaxDist
		}
	}
	return grads
}

// Score implements Objective: SimBA drives the score down, which here
// means pushing the predicted distance up.
func (o *RegressionObjective) Score(img *imaging.Image) float64 {
	return -o.Reg.Predict(img)
}
