package attack

import (
	"repro/internal/imaging"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// SimBAConfig parameterises the simple black-box attack.
type SimBAConfig struct {
	Eps   float64 // per-step magnitude along one basis vector
	Steps int     // maximum number of basis directions tried
	Seed  int64
}

// DefaultSimBAConfig returns the settings used across the experiments.
func DefaultSimBAConfig() SimBAConfig {
	return SimBAConfig{Eps: 0.25, Steps: 600, Seed: 11}
}

// SimBA runs the query-efficient black-box attack of Guo et al.: it walks
// random orthonormal pixel-basis directions, keeping a ±ε step whenever it
// lowers the victim's score. The cumulative perturbation after T kept
// steps has ‖δ‖₂ ≤ √T·ε (Eq. 4). Only Score queries touch the model, so
// the attack needs no gradients. An optional mask restricts the sampled
// coordinates.
func SimBA(obj Objective, img *imaging.Image, cfg SimBAConfig, mask *tensor.Tensor) *imaging.Image {
	rng := xrand.New(cfg.Seed)
	x := img.Clone()

	// Candidate coordinates: all pixels, or the mask's support.
	coords := make([]int, 0, len(x.Pix))
	if mask == nil {
		for i := range x.Pix {
			coords = append(coords, i)
		}
	} else {
		for i, v := range mask.Data() {
			if v != 0 {
				coords = append(coords, i)
			}
		}
	}
	if len(coords) == 0 {
		return x
	}
	rng.Shuffle(len(coords), func(i, j int) { coords[i], coords[j] = coords[j], coords[i] })

	score := obj.Score(x)
	steps := cfg.Steps
	if steps > len(coords) {
		steps = len(coords)
	}
	eps := float32(cfg.Eps)
	for t := 0; t < steps; t++ {
		i := coords[t]
		orig := x.Pix[i]

		// Try +ε.
		x.Pix[i] = clamp01(orig + eps)
		if s := obj.Score(x); s < score {
			score = s
			continue
		}
		// Try -ε.
		x.Pix[i] = clamp01(orig - eps)
		if s := obj.Score(x); s < score {
			score = s
			continue
		}
		// Neither direction helped: revert.
		x.Pix[i] = orig
	}
	return x
}

func clamp01(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
