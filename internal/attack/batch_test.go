package attack

import (
	"runtime"
	"testing"

	"repro/internal/box"
	"repro/internal/detect"
	"repro/internal/imaging"
	"repro/internal/regress"
	"repro/internal/tensor"
	"repro/internal/testenv"
	"repro/internal/xrand"
)

// batchAttackFrames renders n deterministic pseudo-frames with a fake lead
// box each.
func batchAttackFrames(n, size int) ([]*imaging.Image, []*tensor.Tensor) {
	rng := xrand.New(41)
	imgs := make([]*imaging.Image, n)
	masks := make([]*tensor.Tensor, n)
	for i := range imgs {
		img := imaging.NewRGB(size, size)
		rng.FillUniform(img.Pix, 0, 1)
		imgs[i] = img
		b := box.Box{X0: float64(2 + i%3), Y0: 3, X1: float64(size - 3), Y1: float64(size - 2 - i%2)}
		masks[i] = BoxMask(3, size, size, b, 1)
	}
	// A nil mask entry means "attack the whole frame" and must work too.
	masks[n-1] = nil
	return imgs, masks
}

// TestFGSMBatchBitIdentical pins the batched single-step attack to the
// per-frame FGSM frame for frame, across GOMAXPROCS.
func TestFGSMBatchBitIdentical(t *testing.T) {
	const n, size = 5, 24
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		reg := regress.New(xrand.New(5), size)
		imgs, masks := batchAttackFrames(n, size)

		single := &RegressionObjective{Reg: reg.Clone()}
		want := make([]*imaging.Image, n)
		for i, img := range imgs {
			want[i] = FGSM(single, img, 0.03, masks[i])
		}

		obj := &RegressionObjective{Reg: reg}
		dst := make([]*imaging.Image, n)
		for i := range dst {
			dst[i] = imaging.NewRGB(size, size)
		}
		FGSMBatch(dst, obj, imgs, 0.03, masks)
		for i := range imgs {
			for j := range want[i].Pix {
				if dst[i].Pix[j] != want[i].Pix[j] {
					t.Fatalf("procs=%d frame %d pixel %d: batched %v vs single %v",
						procs, i, j, dst[i].Pix[j], want[i].Pix[j])
				}
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestAutoPGDBatchBitIdentical runs the full Auto-PGD loop — momentum,
// best-iterate bookkeeping, checkpoint step-halving with gradient refresh —
// batched against per-frame, requiring identical adversarial frames.
func TestAutoPGDBatchBitIdentical(t *testing.T) {
	const n, size = 4, 24
	cfg := DefaultAPGDConfig(0.04)
	cfg.Steps = 10 // two checkpoints: step halving and restore both fire

	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		reg := regress.New(xrand.New(6), size)
		imgs, masks := batchAttackFrames(n, size)

		single := &RegressionObjective{Reg: reg.Clone()}
		want := make([]*imaging.Image, n)
		for i, img := range imgs {
			want[i] = AutoPGD(single, img, cfg, masks[i])
		}

		obj := &RegressionObjective{Reg: reg}
		got := AutoPGDBatch(obj, imgs, cfg, masks)
		for i := range imgs {
			for j := range want[i].Pix {
				if got[i].Pix[j] != want[i].Pix[j] {
					t.Fatalf("procs=%d frame %d pixel %d: batched %v vs single %v",
						procs, i, j, got[i].Pix[j], want[i].Pix[j])
				}
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestDetectionSetObjectiveBitIdentical pins the batched detection loss
// gradient (TrainLossBatch under DetectionSetObjective) to per-frame
// TrainLoss, losses and pixel gradients both.
func TestDetectionSetObjectiveBitIdentical(t *testing.T) {
	const n, size = 4, 24
	det := detect.New(xrand.New(9), size)
	imgs, _ := batchAttackFrames(n, size)
	gts := make([][]box.Box, n)
	for i := range gts {
		if i%2 == 0 { // alternate positive and negative frames
			gts[i] = []box.Box{{X0: 4, Y0: 4, X1: 16, Y1: 16}}
		}
	}

	singleDet := det.Clone()
	wantLoss := make([]float64, n)
	wantGrad := make([][]float32, n)
	for i, img := range imgs {
		l, g := singleDet.TrainLoss(img, gts[i])
		wantLoss[i] = l
		wantGrad[i] = append([]float32(nil), g.Data()...)
	}

	obj := &DetectionSetObjective{Det: det, GTs: gts}
	losses := make([]float64, n)
	grads := obj.LossGradBatch(losses, imgs)
	sample := 3 * size * size
	for i := range imgs {
		if losses[i] != wantLoss[i] {
			t.Fatalf("frame %d: batched loss %v vs single %v", i, losses[i], wantLoss[i])
		}
		row := grads.Data()[i*sample : (i+1)*sample]
		for j, v := range row {
			if v != wantGrad[i][j] {
				t.Fatalf("frame %d grad %d: batched %v vs single %v", i, j, v, wantGrad[i][j])
			}
		}
	}
}

// TestFGSMBatchSteadyStateAllocs guards the batched attack step: with the
// model workspace warm and destinations reused, one fused FGSM block must
// not touch the allocator.
func TestFGSMBatchSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	const n, size = 4, 24
	reg := regress.New(xrand.New(5), size)
	obj := &RegressionObjective{Reg: reg}
	imgs, masks := batchAttackFrames(n, size)
	dst := make([]*imaging.Image, n)
	for i := range dst {
		dst[i] = imaging.NewRGB(size, size)
	}
	FGSMBatch(dst, obj, imgs, 0.03, masks) // warm the workspace
	avg := testing.AllocsPerRun(50, func() { FGSMBatch(dst, obj, imgs, 0.03, masks) })
	if avg >= 1 {
		t.Fatalf("FGSMBatch allocates %.2f/op in steady state, want 0", avg)
	}
}
