package attack

import (
	"fmt"

	"repro/internal/box"
	"repro/internal/detect"
	"repro/internal/imaging"
	"repro/internal/tensor"
)

// Batched white-box attacks: dataset-style evaluation attacks every frame
// of a test set independently, so the gradient loops lift onto the batched
// backward — one fused forward/backward (two GEMM-shaped passes) per block
// of frames instead of N per-frame pairs. Per-frame results are
// bit-identical to the per-frame attacks: the batch-first layer invariant
// guarantees identical per-frame gradients, and every iterate update below
// mirrors the per-frame loop operation for operation.

// BatchObjective is the batched attacker's view of a victim model.
type BatchObjective interface {
	// LossGradBatch returns the packed [N,C,H,W] pixel gradient of the
	// per-frame losses, writing the losses themselves into losses when it
	// is non-nil (callers that only need gradients pass nil). The gradient
	// tensor is owned by the victim model's workspace and valid until the
	// model's next call. Per-frame losses and gradients are bit-identical
	// to the per-frame Objective.LossGrad.
	LossGradBatch(losses []float64, imgs []*imaging.Image) *tensor.Tensor
}

// DetectionSetObjective wraps a detector plus per-frame ground truth for
// batched attacks over a frame set: GTs[i] is the ground truth of imgs[i]
// in each LossGradBatch call, so callers slice both in lockstep.
type DetectionSetObjective struct {
	Det *detect.Detector
	GTs [][]box.Box

	lossBuf []float64
}

var _ BatchObjective = (*DetectionSetObjective)(nil)

// LossGradBatch implements BatchObjective.
func (o *DetectionSetObjective) LossGradBatch(losses []float64, imgs []*imaging.Image) *tensor.Tensor {
	if losses == nil {
		if cap(o.lossBuf) < len(imgs) {
			o.lossBuf = make([]float64, len(imgs))
		}
		losses = o.lossBuf[:len(imgs)]
	}
	return o.Det.TrainLossBatch(losses, imgs, o.GTs[:len(imgs)])
}

// FGSMBatch runs the single-step fast gradient sign attack on a block of
// frames with one fused forward/backward pass, writing the adversarial
// frame of imgs[i] into dst[i] (which must match the frame geometry and not
// alias it). masks may be nil, or hold one mask per frame with nil entries
// meaning attack the whole frame. Results are bit-identical per frame to
// FGSM.
func FGSMBatch(dst []*imaging.Image, obj BatchObjective, imgs []*imaging.Image, eps float64, masks []*tensor.Tensor) {
	n := len(imgs)
	if len(dst) != n || (masks != nil && len(masks) != n) {
		panic(fmt.Sprintf("attack: FGSMBatch dst %d / masks %d vs %d frames", len(dst), len(masks), n))
	}
	if n == 0 {
		return
	}
	grads := obj.LossGradBatch(nil, imgs)
	sample := imgs[0].C * imgs[0].H * imgs[0].W
	gd := grads.Data()
	e := float32(eps)
	for i, img := range imgs {
		gs := gd[i*sample : (i+1)*sample]
		var md []float32
		if masks != nil && masks[i] != nil {
			md = masks[i].Data()
		}
		out := dst[i]
		copy(out.Pix, img.Pix)
		for j, g := range gs {
			s := sign32(g)
			if md != nil {
				s *= md[j]
			}
			out.Pix[j] += e * s
		}
		out.Clamp()
	}
}

// AutoPGDBatch runs Auto-PGD on a block of frames in lockstep: every
// iteration evaluates one fused forward/backward over all frames, while
// each frame keeps its own step size, momentum carry and best-iterate
// bookkeeping — the per-frame iterate sequences, and therefore the returned
// adversarial frames, are bit-identical to per-frame AutoPGD calls.
func AutoPGDBatch(obj BatchObjective, imgs []*imaging.Image, cfg APGDConfig, masks []*tensor.Tensor) []*imaging.Image {
	n := len(imgs)
	if masks != nil && len(masks) != n {
		panic(fmt.Sprintf("attack: AutoPGDBatch masks %d vs %d frames", len(masks), n))
	}
	if n == 0 {
		return nil
	}
	c, h, w := imgs[0].C, imgs[0].H, imgs[0].W
	sample := c * h * w

	maskAt := func(i int) *tensor.Tensor {
		if masks == nil {
			return nil
		}
		return masks[i]
	}

	// Per-frame state, mirroring AutoPGD's locals.
	xs := make([]*imaging.Image, n)
	prevs := make([]*imaging.Image, n)
	bests := make([]*imaging.Image, n)
	zs := make([]*tensor.Tensor, n)
	xNews := make([]*tensor.Tensor, n)
	carrys := make([]*tensor.Tensor, n)
	steps := make([]float64, n)
	bestLoss := make([]float64, n)
	improved := make([]int, n)
	losses := make([]float64, n)
	for i, img := range imgs {
		xs[i] = img.Clone()
		prevs[i] = img.Clone()
		bests[i] = img.Clone()
		zs[i] = img.Tensor().Clone()
		xNews[i] = img.Tensor().Clone()
		carrys[i] = img.Tensor().Clone()
		steps[i] = 2 * cfg.Eps
	}

	grads := obj.LossGradBatch(losses, xs)
	copy(bestLoss, losses)

	// Per-frame views over the packed gradient, rebuilt only if the model
	// workspace rotates the backing buffer (steady state: built once).
	var gviews []*tensor.Tensor
	var gbacking []float32
	refreshViews := func() {
		gdata := grads.Data()
		if len(gbacking) == len(gdata) && len(gdata) > 0 && &gbacking[0] == &gdata[0] {
			return
		}
		gbacking = gdata
		gviews = make([]*tensor.Tensor, n)
		for i := range gviews {
			gviews[i] = tensor.FromSlice(gdata[i*sample:(i+1)*sample], c, h, w)
		}
	}
	refreshViews()

	checkpoint := cfg.Steps / 5
	if checkpoint < 1 {
		checkpoint = 1
	}

	for t := 0; t < cfg.Steps; t++ {
		for i := range imgs {
			grad := gviews[i]
			mask := maskAt(i)
			orig := imgs[i].Tensor()
			xT := xs[i].Tensor()
			prevT := prevs[i].Tensor()
			z, xNew, carry := zs[i], xNews[i], carrys[i]

			grad.SignInPlace()
			applyMask(grad, mask)

			// Candidate step.
			copy(z.Data(), xT.Data())
			z.AddScaledInPlace(grad, float32(steps[i]))
			project(z, orig, cfg.Eps, mask)

			// Momentum: blend the candidate with the previous movement.
			copy(xNew.Data(), z.Data())
			xNew.ScaleInPlace(float32(cfg.Alpha))
			copy(carry.Data(), xT.Data())
			carry.SubInPlace(prevT)
			carry.AddInPlace(xT)
			carry.ScaleInPlace(float32(1 - cfg.Alpha))
			xNew.AddInPlace(carry)
			project(xNew, orig, cfg.Eps, mask)

			copy(prevs[i].Pix, xs[i].Pix)
			copy(xs[i].Pix, xNew.Data())
			xs[i].Clamp()
		}

		grads = obj.LossGradBatch(losses, xs)
		refreshViews()
		for i := range imgs {
			if losses[i] > bestLoss[i] {
				bestLoss[i] = losses[i]
				copy(bests[i].Pix, xs[i].Pix)
				improved[i]++
			}
		}

		// Adaptive step halving at checkpoints, per frame. A restored frame
		// needs its gradient refreshed at the best iterate; one extra fused
		// pass recomputes every frame's gradient there (unchanged frames
		// reproduce identical bits, restored frames pick up the best
		// iterate's gradient — exactly what the per-frame loop computes).
		if (t+1)%checkpoint == 0 {
			restored := false
			for i := range imgs {
				if float64(improved[i]) < cfg.Rho*float64(checkpoint) {
					steps[i] /= 2
					copy(xs[i].Pix, bests[i].Pix)
					copy(prevs[i].Pix, bests[i].Pix)
					restored = true
				}
				improved[i] = 0
			}
			if restored {
				grads = obj.LossGradBatch(nil, xs)
				refreshViews()
			}
		}
	}
	return bests
}
