package attack

import (
	"math"
	"sync"
	"testing"

	"repro/internal/box"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/regress"
	"repro/internal/scene"
	"repro/internal/xrand"
)

// Shared lightly-trained victims: training once per test binary keeps the
// attack tests focused on attack behaviour, not optimisation.
var (
	victimOnce sync.Once
	victimReg  *regress.Regressor
	victimDet  *detect.Detector
	driveSet   *dataset.DriveSet
	signSet    *dataset.SignSet
)

func victims(t testing.TB) (*regress.Regressor, *detect.Detector) {
	t.Helper()
	victimOnce.Do(func() {
		rng := xrand.New(99)
		dcfg := scene.DefaultDriveConfig()
		driveSet = dataset.GenerateDriveSet(rng.Split(), dcfg, 90, 5, 60)
		victimReg = regress.New(rng.Split(), dcfg.Size)
		rc := regress.DefaultTrainConfig()
		rc.Epochs = 6
		victimReg.Train(driveSet, rc)

		scfg := scene.DefaultSignConfig()
		signSet = dataset.GenerateSignSet(rng.Split(), scfg, 90)
		victimDet = detect.New(rng.Split(), scfg.Size)
		tc := detect.DefaultTrainConfig()
		tc.Epochs = 8
		victimDet.Train(signSet, tc)
	})
	return victimReg, victimDet
}

func firstSignScene(t *testing.T) scene.SignScene {
	t.Helper()
	victims(t)
	for _, sc := range signSet.Scenes {
		if sc.HasSign {
			return sc
		}
	}
	t.Fatal("no positive sign scene")
	return scene.SignScene{}
}

func TestBoxMask(t *testing.T) {
	m := BoxMask(3, 8, 8, box.New(2, 2, 5, 5), 0)
	if m.At(0, 3, 3) != 1 || m.At(2, 4, 4) != 1 {
		t.Fatal("inside pixels must be 1")
	}
	if m.At(0, 0, 0) != 0 || m.At(1, 7, 7) != 0 {
		t.Fatal("outside pixels must be 0")
	}
	// Expansion grows the support.
	me := BoxMask(3, 8, 8, box.New(2, 2, 5, 5), 2)
	if me.Sum() <= m.Sum() {
		t.Fatal("expanded mask must cover more pixels")
	}
}

func TestGaussianRespectsMaskAndClamps(t *testing.T) {
	reg, _ := victims(t)
	_ = reg
	sc := driveSet.Scenes[0]
	mask := BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 0)
	out := Gaussian(xrand.New(1), sc.Img, 0.5, mask)
	md := mask.Data()
	for i := range out.Pix {
		if md[i] == 0 && out.Pix[i] != sc.Img.Pix[i] {
			t.Fatal("noise leaked outside the mask")
		}
		if out.Pix[i] < 0 || out.Pix[i] > 1 {
			t.Fatal("output not clamped")
		}
	}
}

func TestFGSMIncreasesObjectiveLoss(t *testing.T) {
	reg, _ := victims(t)
	sc := driveSet.Scenes[0]
	obj := &RegressionObjective{Reg: reg}
	before, _ := obj.LossGrad(sc.Img)
	adv := FGSM(obj, sc.Img, 0.02, nil)
	after, _ := obj.LossGrad(adv)
	if after <= before {
		t.Fatalf("FGSM did not increase loss: %v -> %v", before, after)
	}
	// L∞ budget respected.
	for i := range adv.Pix {
		if d := math.Abs(float64(adv.Pix[i] - sc.Img.Pix[i])); d > 0.02+1e-6 {
			t.Fatalf("FGSM exceeded epsilon: %v", d)
		}
	}
}

func TestAutoPGDStrongerThanFGSM(t *testing.T) {
	reg, _ := victims(t)
	obj := &RegressionObjective{Reg: reg}
	var fgsmGain, apgdGain float64
	for _, sc := range driveSet.Scenes[:8] {
		mask := BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
		clean := reg.Predict(sc.Img)
		fgsmGain += reg.Predict(FGSM(obj, sc.Img, 0.03, mask)) - clean
		cfg := DefaultAPGDConfig(0.03)
		cfg.Steps = 12
		apgdGain += reg.Predict(AutoPGD(obj, sc.Img, cfg, mask)) - clean
	}
	if apgdGain <= fgsmGain {
		t.Fatalf("Auto-PGD (%.2f) should beat FGSM (%.2f) at equal ε", apgdGain, fgsmGain)
	}
}

func TestAutoPGDRespectsBudgetAndMask(t *testing.T) {
	reg, _ := victims(t)
	sc := driveSet.Scenes[1]
	obj := &RegressionObjective{Reg: reg}
	mask := BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 0)
	cfg := DefaultAPGDConfig(0.05)
	cfg.Steps = 10
	adv := AutoPGD(obj, sc.Img, cfg, mask)
	md := mask.Data()
	for i := range adv.Pix {
		d := math.Abs(float64(adv.Pix[i] - sc.Img.Pix[i]))
		if md[i] == 0 && d > 1e-6 {
			t.Fatal("Auto-PGD leaked outside the mask")
		}
		if d > 0.05+1e-5 {
			t.Fatalf("Auto-PGD exceeded epsilon: %v", d)
		}
	}
}

func TestPGDRespectsBudget(t *testing.T) {
	reg, _ := victims(t)
	sc := driveSet.Scenes[2]
	obj := &RegressionObjective{Reg: reg}
	adv := PGD(obj, sc.Img, 0.02, 8, nil)
	for i := range adv.Pix {
		if d := math.Abs(float64(adv.Pix[i] - sc.Img.Pix[i])); d > 0.02+1e-5 {
			t.Fatalf("PGD exceeded epsilon: %v", d)
		}
	}
}

func TestSimBAReducesScore(t *testing.T) {
	_, det := victims(t)
	sc := firstSignScene(t)
	obj := &DetectionObjective{Det: det, GT: detect.GTBoxes(sc)}
	before := obj.Score(sc.Img)
	cfg := DefaultSimBAConfig()
	cfg.Steps = 200
	cfg.Eps = 0.2
	adv := SimBA(obj, sc.Img, cfg, nil)
	after := obj.Score(adv)
	if after > before {
		t.Fatalf("SimBA raised the score: %v -> %v", before, after)
	}
}

func TestSimBAMaskConfinement(t *testing.T) {
	_, det := victims(t)
	sc := firstSignScene(t)
	obj := &DetectionObjective{Det: det, GT: detect.GTBoxes(sc)}
	mask := BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.Box, 0)
	cfg := DefaultSimBAConfig()
	cfg.Steps = 100
	adv := SimBA(obj, sc.Img, cfg, mask)
	md := mask.Data()
	for i := range adv.Pix {
		if md[i] == 0 && adv.Pix[i] != sc.Img.Pix[i] {
			t.Fatal("SimBA modified pixels outside the mask")
		}
	}
}

func TestSimBAL2Bound(t *testing.T) {
	_, det := victims(t)
	sc := firstSignScene(t)
	obj := &DetectionObjective{Det: det, GT: detect.GTBoxes(sc)}
	cfg := DefaultSimBAConfig()
	cfg.Steps = 150
	cfg.Eps = 0.1
	adv := SimBA(obj, sc.Img, cfg, nil)
	var l2 float64
	for i := range adv.Pix {
		d := float64(adv.Pix[i] - sc.Img.Pix[i])
		l2 += d * d
	}
	// Eq. 4: ‖δ‖₂² ≤ T·ε² (clamping can only shrink it).
	if l2 > float64(cfg.Steps)*cfg.Eps*cfg.Eps+1e-6 {
		t.Fatalf("SimBA L2 bound violated: %v", l2)
	}
}

func TestRP2ConfinedToSign(t *testing.T) {
	_, det := victims(t)
	sc := firstSignScene(t)
	obj := &DetectionObjective{Det: det, GT: detect.GTBoxes(sc)}
	cfg := DefaultRP2Config()
	cfg.Iters = 8
	adv := RP2(obj, sc.Img, sc.Box, cfg)
	// The patch mask rasterises the (1px-shrunk) sign box with ceiling
	// bounds, so allow a 1px halo when checking confinement.
	outer := sc.Box.Expand(1)
	for y := 0; y < adv.H; y++ {
		for x := 0; x < adv.W; x++ {
			if outer.Contains(float64(x), float64(y)) {
				continue
			}
			for c := 0; c < 3; c++ {
				if adv.At(c, y, x) != sc.Img.At(c, y, x) {
					t.Fatalf("RP2 modified pixel outside the sign at (%d,%d)", y, x)
				}
			}
		}
	}
}

func TestRP2IncreasesLoss(t *testing.T) {
	_, det := victims(t)
	sc := firstSignScene(t)
	obj := &DetectionObjective{Det: det, GT: detect.GTBoxes(sc)}
	before, _ := obj.LossGrad(sc.Img)
	cfg := DefaultRP2Config()
	cfg.Iters = 20
	adv := RP2(obj, sc.Img, sc.Box, cfg)
	after, _ := obj.LossGrad(adv)
	if after <= before {
		t.Fatalf("RP2 did not increase detection loss: %v -> %v", before, after)
	}
}

func TestCAPConfinedToLeadBox(t *testing.T) {
	reg, _ := victims(t)
	sc := driveSet.Scenes[3]
	obj := &RegressionObjective{Reg: reg}
	c := NewCAP(DefaultCAPConfig())
	adv := c.Apply(obj, sc.Img, sc.LeadBox)
	outer := sc.LeadBox.Expand(1.5)
	for y := 0; y < adv.H; y++ {
		for x := 0; x < adv.W; x++ {
			if outer.Contains(float64(x), float64(y)) {
				continue
			}
			for ch := 0; ch < 3; ch++ {
				if adv.At(ch, y, x) != sc.Img.At(ch, y, x) {
					t.Fatalf("CAP modified pixel outside lead box at (%d,%d)", y, x)
				}
			}
		}
	}
}

func TestCAPWarmStartCarriesPatch(t *testing.T) {
	reg, _ := victims(t)
	obj := &RegressionObjective{Reg: reg}
	cfg := DefaultCAPConfig()
	cfg.StepsPerFrame = 1 // starve the per-frame budget so inheritance matters

	frames := scene.GenerateDriveSequence(xrand.New(7), scene.DefaultDriveConfig(), 8, 0.1, 25,
		func(t float64) float64 { return -5 })

	run := func(cold bool) float64 {
		c := NewCAP(cfg)
		var total float64
		for _, f := range frames {
			if cold {
				c.Reset()
			}
			adv := c.Apply(obj, f.Scene.Img, f.Scene.LeadBox)
			total += reg.Predict(adv) - reg.Predict(f.Scene.Img)
		}
		return total
	}
	warm := run(false)
	cold := run(true)
	if warm <= cold {
		t.Fatalf("warm-start (%.2f) should outperform cold-start (%.2f)", warm, cold)
	}
}

func TestCAPHandlesDegenerateBox(t *testing.T) {
	reg, _ := victims(t)
	sc := driveSet.Scenes[4]
	obj := &RegressionObjective{Reg: reg}
	c := NewCAP(DefaultCAPConfig())
	adv := c.Apply(obj, sc.Img, box.Box{}) // empty box: no attack surface
	if adv.MeanAbsDiff(sc.Img) != 0 {
		t.Fatal("empty lead box must leave the frame untouched")
	}
}

func TestCAPRespectsEpsilon(t *testing.T) {
	reg, _ := victims(t)
	sc := driveSet.Scenes[5]
	obj := &RegressionObjective{Reg: reg}
	cfg := DefaultCAPConfig()
	cfg.Eps = 0.1
	c := NewCAP(cfg)
	adv := c.Apply(obj, sc.Img, sc.LeadBox)
	for i := range adv.Pix {
		if d := math.Abs(float64(adv.Pix[i] - sc.Img.Pix[i])); d > 0.1+1e-5 {
			t.Fatalf("CAP exceeded epsilon: %v", d)
		}
	}
}

func TestNPSZeroForPaletteColors(t *testing.T) {
	_, det := victims(t)
	_ = det
	sc := firstSignScene(t)
	// A zero patch leaves the (palette-drawn) sign colors mostly printable;
	// NPS should be small but non-negative.
	mask := BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.Box, 0)
	delta := BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, box.Box{}, 0) // zeros
	nps := NPS(sc.Img, delta, mask)
	if nps < 0 {
		t.Fatalf("NPS must be non-negative, got %v", nps)
	}
}

func TestAttributionThreshold(t *testing.T) {
	g := BoxMask(1, 4, 4, box.New(0, 0, 4, 4), 0) // all ones
	// frac=1 keeps everything.
	if th := attributionThreshold(g, 1); th != 0 {
		t.Fatalf("frac=1 threshold %v, want 0", th)
	}
	// All-equal magnitudes: any fraction keeps them all (single bin).
	if th := attributionThreshold(g, 0.5); th > 1 {
		t.Fatalf("threshold %v exceeds max magnitude", th)
	}
}
