package attack

import (
	"repro/internal/box"
	"repro/internal/imaging"
	"repro/internal/tensor"
)

// CAPConfig parameterises the runtime CAP-Attack (Zhou et al., Eq. 7).
type CAPConfig struct {
	Eps           float64 // L∞ cap on the patch
	StepSize      float64 // per-frame gradient step
	StepsPerFrame int     // gradient refinements per frame (runtime budget)
	AttribFrac    float64 // fraction of bbox pixels updated, chosen by attribution
}

// DefaultCAPConfig returns the settings used across the experiments.
func DefaultCAPConfig() CAPConfig {
	return CAPConfig{Eps: 0.3, StepSize: 0.12, StepsPerFrame: 2, AttribFrac: 0.5}
}

// CAP is the stateful runtime patch generator. Unlike the offline attacks
// it keeps the patch between frames: each new frame inherits the previous
// patch warped (resized and moved) onto the new lead-vehicle bounding box,
// then refines it with a small number of attribution-guided sign-gradient
// steps. Temporal warm-starting is what makes the attack effective within
// a per-frame compute budget; the ablation bench compares it against a
// cold-start variant.
type CAP struct {
	Cfg CAPConfig

	prevPatch *imaging.Image // patch as an image over the previous bbox
	prevBox   box.Box
	hasPrev   bool

	mask *tensor.Tensor // reusable frame-sized bbox mask
}

// NewCAP returns a fresh runtime attacker.
func NewCAP(cfg CAPConfig) *CAP { return &CAP{Cfg: cfg} }

// Reset discards the inherited patch (cold start on the next frame).
func (c *CAP) Reset() { c.hasPrev = false }

// Apply perturbs one frame given the victim objective and the current
// lead-vehicle bounding box, and remembers the refined patch for the next
// frame.
func (c *CAP) Apply(obj Objective, img *imaging.Image, leadBox box.Box) *imaging.Image {
	lb := leadBox.Clip(float64(img.W), float64(img.H))
	if lb.Empty() || lb.W() < 1 || lb.H() < 1 {
		// Lead too small/absent: nothing to attack this frame.
		c.hasPrev = false
		return img.Clone()
	}

	x0, y0 := int(lb.X0), int(lb.Y0)
	x1, y1 := int(lb.X1+0.999), int(lb.Y1+0.999)
	if x1 <= x0 {
		x1 = x0 + 1
	}
	if y1 <= y0 {
		y1 = y0 + 1
	}
	bw, bh := x1-x0, y1-y0

	// Patch inheritance: warp the previous patch onto the new bbox. The
	// warped patch is a pooled scratch image; it is consumed by pastePatch
	// below and returned to the pool.
	patch := imaging.GetImage(img.C, bh, bw)
	if c.hasPrev {
		c.prevPatch.ResizeBilinearInto(patch)
	} else {
		clear(patch.Pix)
	}

	if c.mask == nil || !c.mask.ShapeEq(img.C, img.H, img.W) {
		c.mask = tensor.New(img.C, img.H, img.W)
	}
	mask := BoxMaskInto(c.mask, lb, 0)
	adv := img.Clone()
	pastePatch(adv, patch, y0, x0)
	imaging.PutImage(patch)
	adv.Clamp()

	eps := float32(c.Cfg.Eps)
	for s := 0; s < c.Cfg.StepsPerFrame; s++ {
		_, grad := obj.LossGrad(adv)
		grad.MulInPlace(mask)

		// Attribution: keep only the top fraction of bbox pixels by |grad|;
		// the rest of the patch is left untouched this step (stealth +
		// compute focus, mirroring the paper's attribution mechanism).
		thresh := attributionThreshold(grad, c.Cfg.AttribFrac)

		gd := grad.Data()
		ad := adv.Pix
		od := img.Pix
		step := float32(c.Cfg.StepSize)
		for i, g := range gd {
			if g == 0 {
				continue
			}
			if abs32(g) < thresh {
				continue
			}
			v := ad[i] + step*sign32(g)
			// Project to the ε-ball around the clean frame and [0,1].
			d := v - od[i]
			if d > eps {
				d = eps
			} else if d < -eps {
				d = -eps
			}
			v = od[i] + d
			ad[i] = clamp01(v)
		}
	}

	// Remember the refined patch (adv − clean over the bbox), reusing the
	// previous frame's patch buffer when the bbox size is unchanged.
	if c.prevPatch == nil || c.prevPatch.C != adv.C || c.prevPatch.H != bh || c.prevPatch.W != bw {
		c.prevPatch = imaging.NewImage(adv.C, bh, bw)
	}
	diffPatchInto(c.prevPatch, adv, img, y0, x0)
	c.prevBox = lb
	c.hasPrev = true
	return adv
}

// attributionThreshold returns the |grad| cutoff keeping roughly frac of
// the non-zero entries, computed with a 64-bin histogram (cheap and
// allocation-light for per-frame use).
func attributionThreshold(grad *tensor.Tensor, frac float64) float32 {
	if frac >= 1 {
		return 0
	}
	gd := grad.Data()
	maxAbs := float32(0)
	n := 0
	for _, g := range gd {
		if g == 0 {
			continue
		}
		n++
		if a := abs32(g); a > maxAbs {
			maxAbs = a
		}
	}
	if n == 0 || maxAbs == 0 {
		return 0
	}
	const bins = 64
	var hist [bins]int
	for _, g := range gd {
		if g == 0 {
			continue
		}
		b := int(abs32(g) / maxAbs * (bins - 1))
		hist[b]++
	}
	keep := int(float64(n) * frac)
	acc := 0
	for b := bins - 1; b >= 0; b-- {
		acc += hist[b]
		if acc >= keep {
			return maxAbs * float32(b) / (bins - 1)
		}
	}
	return 0
}

// pastePatch adds patch pixel values onto img at offset (y0, x0).
func pastePatch(img, patch *imaging.Image, y0, x0 int) {
	for c := 0; c < img.C; c++ {
		for y := 0; y < patch.H; y++ {
			ty := y0 + y
			if ty < 0 || ty >= img.H {
				continue
			}
			for x := 0; x < patch.W; x++ {
				tx := x0 + x
				if tx < 0 || tx >= img.W {
					continue
				}
				img.Pix[(c*img.H+ty)*img.W+tx] += patch.Pix[(c*patch.H+y)*patch.W+x]
			}
		}
	}
}

// diffPatchInto extracts adv − clean over the bbox window into the patch
// image p (whose geometry defines the window size).
func diffPatchInto(p, adv, clean *imaging.Image, y0, x0 int) {
	bh, bw := p.H, p.W
	clear(p.Pix)
	for c := 0; c < adv.C; c++ {
		for y := 0; y < bh; y++ {
			sy := y0 + y
			if sy < 0 || sy >= adv.H {
				continue
			}
			for x := 0; x < bw; x++ {
				sx := x0 + x
				if sx < 0 || sx >= adv.W {
					continue
				}
				p.Pix[(c*bh+y)*bw+x] = adv.Pix[(c*adv.H+sy)*adv.W+sx] - clean.Pix[(c*clean.H+sy)*clean.W+sx]
			}
		}
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
