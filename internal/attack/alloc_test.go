package attack

import (
	"testing"

	"repro/internal/testenv"

	"repro/internal/box"
	"repro/internal/imaging"
	"repro/internal/regress"
	"repro/internal/xrand"
)

// TestFGSMIntoSteadyStateAllocs guards the per-frame white-box attack
// budget: with the model workspace warm and the caller reusing its mask and
// destination frame, one FGSM step (forward + input-gradient backward +
// projection) must not touch the allocator. Threshold < 1 tolerates a rare
// GC clearing the matmul pack pool mid-measurement.
func TestFGSMIntoSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	rng := xrand.New(5)
	reg := regress.New(rng, 24)
	obj := &RegressionObjective{Reg: reg}
	img := imaging.NewImage(3, 24, 24)
	for i := range img.Pix {
		img.Pix[i] = float32(i%11) * 0.09
	}
	mask := BoxMask(3, 24, 24, box.Box{X0: 4, Y0: 4, X1: 18, Y1: 18}, 1)
	dst := imaging.NewImage(3, 24, 24)

	FGSMInto(dst, obj, img, 0.02, mask) // warm the workspace
	avg := testing.AllocsPerRun(50, func() { FGSMInto(dst, obj, img, 0.02, mask) })
	if avg >= 1 {
		t.Fatalf("FGSMInto allocates %.2f/op in steady state, want 0", avg)
	}
}

// TestFGSMIntoMatchesFGSM pins the destination-passing variant to the
// allocating one bit-for-bit.
func TestFGSMIntoMatchesFGSM(t *testing.T) {
	rng := xrand.New(6)
	reg := regress.New(rng, 24)
	obj := &RegressionObjective{Reg: reg}
	img := imaging.NewImage(3, 24, 24)
	for i := range img.Pix {
		img.Pix[i] = float32(i%7) * 0.13
	}
	mask := BoxMask(3, 24, 24, box.Box{X0: 2, Y0: 2, X1: 20, Y1: 20}, 0)

	want := FGSM(obj, img, 0.05, mask)
	dst := imaging.NewImage(3, 24, 24)
	got := FGSMInto(dst, obj, img, 0.05, mask)
	for i := range want.Pix {
		if want.Pix[i] != got.Pix[i] {
			t.Fatalf("FGSMInto diverges from FGSM at %d: %v vs %v", i, got.Pix[i], want.Pix[i])
		}
	}
}
