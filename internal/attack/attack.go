// Package attack implements the six adversarial perception attacks studied
// in the paper: Gaussian noise, FGSM, Auto-PGD, SimBA, RP2 and CAP-Attack.
//
// White-box attacks consume an Objective — the victim model wrapped with
// "what the attacker wants" — which exposes the loss whose increase harms
// the victim together with its pixel gradient. Black-box attacks (SimBA)
// only use the Objective's scalar Score query. Attacks optionally restrict
// perturbations to a pixel mask (the lead-vehicle region for the regression
// task, the sign surface for RP2), matching the paper's protocol of placing
// patches "in the region of the leading vehicle in each video frame".
package attack

import (
	"repro/internal/box"
	"repro/internal/imaging"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Objective is the attacker's view of a victim model.
type Objective interface {
	// LossGrad returns a loss whose increase harms the victim, and the
	// gradient of that loss with respect to the input pixels.
	LossGrad(img *imaging.Image) (float64, *tensor.Tensor)
	// Score returns a scalar the attacker wants to drive down (e.g. the
	// victim's detection confidence, or the negated predicted distance).
	// Black-box attacks use only this query.
	Score(img *imaging.Image) float64
}

// BoxMask builds a {0,1} pixel mask over a c×h×w image that is 1 inside
// the given box expanded by expand pixels; nil-mask semantics (attack the
// whole image) are expressed by passing a nil mask to the attacks.
func BoxMask(c, h, w int, b box.Box, expand float64) *tensor.Tensor {
	return BoxMaskInto(tensor.New(c, h, w), b, expand)
}

// BoxMaskInto is BoxMask writing into an existing (c,h,w) mask tensor,
// which per-frame attackers reuse across frames. The mask is zeroed first.
//
//advlint:noalloc
func BoxMaskInto(m *tensor.Tensor, b box.Box, expand float64) *tensor.Tensor {
	c, h, w := m.Dim(0), m.Dim(1), m.Dim(2)
	m.Zero()
	eb := b.Expand(expand).Clip(float64(w), float64(h))
	x0, y0 := int(eb.X0), int(eb.Y0)
	x1, y1 := int(eb.X1+0.999), int(eb.Y1+0.999)
	for ch := 0; ch < c; ch++ {
		for y := y0; y < y1 && y < h; y++ {
			if y < 0 {
				continue
			}
			for x := x0; x < x1 && x < w; x++ {
				if x < 0 {
					continue
				}
				m.Data()[(ch*h+y)*w+x] = 1
			}
		}
	}
	return m
}

// applyMask multiplies g by the mask in place when mask is non-nil.
func applyMask(g, mask *tensor.Tensor) {
	if mask != nil {
		g.MulInPlace(mask)
	}
}

// Gaussian adds zero-mean Gaussian noise with the given std dev, optionally
// restricted to a mask, and clamps to the valid pixel range. It is the
// paper's unoptimised baseline attack (Eq. 1).
func Gaussian(rng *xrand.RNG, img *imaging.Image, sigma float64, mask *tensor.Tensor) *imaging.Image {
	out := img.Clone()
	md := []float32(nil)
	if mask != nil {
		md = mask.Data()
	}
	for i := range out.Pix {
		if md != nil && md[i] == 0 {
			continue
		}
		out.Pix[i] += float32(rng.Normal(0, sigma))
	}
	return out.Clamp()
}

// FGSM performs the single-step fast gradient sign attack (Eq. 2):
// x_adv = clamp(x + ε·sign(∇x J)).
func FGSM(obj Objective, img *imaging.Image, eps float64, mask *tensor.Tensor) *imaging.Image {
	return FGSMInto(imaging.NewImage(img.C, img.H, img.W), obj, img, eps, mask)
}

// FGSMInto is FGSM writing the adversarial frame into dst, which must match
// img's geometry and not alias it. With the model workspace warm, a
// steady-state per-frame FGSM step allocates nothing.
//
//advlint:noalloc
func FGSMInto(dst *imaging.Image, obj Objective, img *imaging.Image, eps float64, mask *tensor.Tensor) *imaging.Image {
	_, grad := obj.LossGrad(img)
	grad.SignInPlace()
	applyMask(grad, mask)
	copy(dst.Pix, img.Pix)
	dst.Tensor().AddScaledInPlace(grad, float32(eps))
	return dst.Clamp()
}

// APGDConfig parameterises Auto-PGD.
type APGDConfig struct {
	Eps   float64 // L∞ budget
	Steps int     // total iterations
	Rho   float64 // step-halving success-rate threshold (Croce & Hein use 0.75)
	Alpha float64 // momentum mixing factor for the iterate update
}

// DefaultAPGDConfig returns the settings used across the experiments.
func DefaultAPGDConfig(eps float64) APGDConfig {
	return APGDConfig{Eps: eps, Steps: 40, Rho: 0.75, Alpha: 0.75}
}

// AutoPGD runs the auto projected gradient descent attack (Eq. 3): an
// iterative sign-gradient ascent on the objective loss with momentum and
// an adaptive step size that halves when progress stalls, always keeping
// the best iterate found. The perturbation stays inside the ε L∞ ball
// around the original image (optionally masked) and the valid pixel range.
// The loop allocates its perturbation, momentum and candidate buffers once
// and reuses them across all steps; the gradient evaluated for the
// best-iterate bookkeeping doubles as the next step's ascent direction
// (the iterate is unchanged in between, so the gradient is identical),
// halving the number of forward/backward passes per step.
func AutoPGD(obj Objective, img *imaging.Image, cfg APGDConfig, mask *tensor.Tensor) *imaging.Image {
	orig := img.Tensor()
	x := img.Clone()
	xT := x.Tensor()
	step := 2 * cfg.Eps // Croce & Hein's initial step size

	bestLoss, grad := obj.LossGrad(x)
	best := x.Clone()
	prev := x.Clone()
	prevT := prev.Tensor()

	// Reusable step buffers: candidate, momentum blend, carry term.
	z := xT.Clone()
	xNew := xT.Clone()
	carry := xT.Clone()

	checkpoint := cfg.Steps / 5
	if checkpoint < 1 {
		checkpoint = 1
	}
	improved := 0

	for t := 0; t < cfg.Steps; t++ {
		grad.SignInPlace()
		applyMask(grad, mask)

		// Candidate step.
		copy(z.Data(), xT.Data())
		z.AddScaledInPlace(grad, float32(step))
		project(z, orig, cfg.Eps, mask)

		// Momentum: blend the candidate with the previous movement direction.
		copy(xNew.Data(), z.Data())
		xNew.ScaleInPlace(float32(cfg.Alpha))
		copy(carry.Data(), xT.Data())
		carry.SubInPlace(prevT)
		carry.AddInPlace(xT)
		carry.ScaleInPlace(float32(1 - cfg.Alpha))
		xNew.AddInPlace(carry)
		project(xNew, orig, cfg.Eps, mask)

		copy(prev.Pix, x.Pix)
		copy(x.Pix, xNew.Data())
		x.Clamp()

		var loss float64
		loss, grad = obj.LossGrad(x)
		if loss > bestLoss {
			bestLoss = loss
			copy(best.Pix, x.Pix)
			improved++
		}

		// Adaptive step halving at checkpoints: if fewer than rho·interval
		// steps improved the best loss, halve the step and restart from the
		// best iterate found so far (refreshing the gradient there).
		if (t+1)%checkpoint == 0 {
			if float64(improved) < cfg.Rho*float64(checkpoint) {
				step /= 2
				copy(x.Pix, best.Pix)
				copy(prev.Pix, best.Pix)
				_, grad = obj.LossGrad(x)
			}
			improved = 0
		}
	}
	return best
}

// project clips z into the ε L∞ ball around orig (and zeroes any movement
// outside the mask), then into the valid pixel range.
func project(z, orig *tensor.Tensor, eps float64, mask *tensor.Tensor) {
	zd := z.Data()
	od := orig.Data()
	var md []float32
	if mask != nil {
		md = mask.Data()
	}
	e := float32(eps)
	for i := range zd {
		if md != nil && md[i] == 0 {
			zd[i] = od[i]
			continue
		}
		d := zd[i] - od[i]
		if d > e {
			d = e
		} else if d < -e {
			d = -e
		}
		v := od[i] + d
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		zd[i] = v
	}
}

// PGD is plain iterative FGSM without Auto-PGD's momentum or adaptive step
// halving; it exists as the ablation baseline for Auto-PGD.
func PGD(obj Objective, img *imaging.Image, eps float64, steps int, mask *tensor.Tensor) *imaging.Image {
	orig := img.Tensor()
	x := img.Clone()
	step := eps / float64(steps) * 2.5
	for t := 0; t < steps; t++ {
		_, grad := obj.LossGrad(x)
		grad.SignInPlace()
		applyMask(grad, mask)
		xt := x.Tensor()
		xt.AddScaledInPlace(grad, float32(step))
		project(xt, orig, eps, mask)
	}
	return x
}
