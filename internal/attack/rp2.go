package attack

import (
	"math"

	"repro/internal/box"
	"repro/internal/imaging"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// RP2Config parameterises the Robust Physical Perturbations attack
// (Eykholt et al., Eq. 6).
type RP2Config struct {
	Iters      int     // optimisation iterations
	LR         float32 // Adam learning rate on the patch
	EOTSamples int     // transform samples per iteration
	LambdaMask float64 // weight of the ‖M·δ‖ magnitude penalty
	LambdaNPS  float64 // weight of the non-printability score
	MaxDelta   float64 // hard cap on per-pixel patch magnitude
	Seed       int64
}

// DefaultRP2Config returns the settings used across the experiments.
func DefaultRP2Config() RP2Config {
	return RP2Config{
		Iters: 60, LR: 0.05, EOTSamples: 4,
		LambdaMask: 0.02, LambdaNPS: 0.01, MaxDelta: 0.55, Seed: 13,
	}
}

// printablePalette approximates the colors a commodity printer reproduces
// reliably; NPS penalises patch colors far from all palette entries.
var printablePalette = []imaging.Color{
	imaging.Black, imaging.White, imaging.Red, imaging.DarkRed,
	imaging.Gray, imaging.Yellow, imaging.Blue, imaging.Grass,
}

// RP2 optimises a physical-style patch confined to the sign surface (mask
// from the ground-truth box) that survives viewpoint and lighting changes.
// Each iteration ascends the expected victim loss over sampled transforms
// (expectation over transforms, EOT) while penalising patch magnitude and
// non-printable colors. The returned image is the clean input with the
// optimised patch applied.
func RP2(obj Objective, img *imaging.Image, signBox box.Box, cfg RP2Config) *imaging.Image {
	rng := xrand.New(cfg.Seed)
	mask := BoxMask(img.C, img.H, img.W, signBox, -1) // shrink 1px inside the sign
	delta := tensor.New(img.C, img.H, img.W)

	// Adam state for the patch.
	m := tensor.New(img.C, img.H, img.W)
	v := tensor.New(img.C, img.H, img.W)
	beta1, beta2 := 0.9, 0.999

	for it := 1; it <= cfg.Iters; it++ {
		grad := tensor.New(img.C, img.H, img.W)

		for s := 0; s < cfg.EOTSamples; s++ {
			// Sample a transform: brightness scale, small shift, sensor noise.
			scale := float32(rng.Uniform(0.8, 1.2))
			dy := rng.Intn(3) - 1
			dx := rng.Intn(3) - 1

			// Build the transformed adversarial image.
			adv := img.Clone()
			advT := adv.Tensor()
			advT.AddInPlace(delta.Mul(mask))
			adv.Clamp()
			tr := adv.Translate(dy, dx).AdjustBrightness(scale)
			tr = tr.AddGaussianNoise(rng, 0.01)
			tr.Clamp()

			// Victim gradient, mapped back through the transform: brightness
			// scales the gradient; translation shifts it back.
			_, g := obj.LossGrad(tr)
			g.ScaleInPlace(scale)
			gImg := imaging.FromTensor(g).Translate(-dy, -dx)
			grad.AddInPlace(gImg.Tensor())
		}
		grad.ScaleInPlace(1 / float32(cfg.EOTSamples))

		// Ascend victim loss => descend its negation; add penalty gradients.
		gd := grad.Data()
		dd := delta.Data()
		md := mask.Data()
		for i := range gd {
			if md[i] == 0 {
				gd[i] = 0
				continue
			}
			pen := float32(cfg.LambdaMask) * sign32(dd[i]) // d|δ|/dδ
			pen += float32(cfg.LambdaNPS) * npsGrad(img, delta, i)
			gd[i] = -gd[i] + pen
		}

		// Adam descent step on the combined objective.
		bc1 := 1 - math.Pow(beta1, float64(it))
		bc2 := 1 - math.Pow(beta2, float64(it))
		mdat := m.Data()
		vdat := v.Data()
		for i, g := range gd {
			mdat[i] = float32(beta1)*mdat[i] + float32(1-beta1)*g
			vdat[i] = float32(beta2)*vdat[i] + float32(1-beta2)*g*g
			mh := float64(mdat[i]) / bc1
			vh := float64(vdat[i]) / bc2
			dd[i] -= cfg.LR * float32(mh/(math.Sqrt(vh)+1e-8))
			// Hard patch-magnitude cap keeps the patch "physical".
			if dd[i] > float32(cfg.MaxDelta) {
				dd[i] = float32(cfg.MaxDelta)
			} else if dd[i] < -float32(cfg.MaxDelta) {
				dd[i] = -float32(cfg.MaxDelta)
			}
		}
	}

	out := img.Clone()
	out.Tensor().AddInPlace(delta.MulInPlace(mask))
	return out.Clamp()
}

// NPS returns the non-printability score of the patched region: for each
// patched pixel, the squared distance from its color to the nearest
// printable palette color.
func NPS(img *imaging.Image, delta *tensor.Tensor, mask *tensor.Tensor) float64 {
	patched := img.Clone()
	patched.Tensor().AddInPlace(delta.Mul(mask))
	patched.Clamp()
	md := mask.Data()
	plane := img.H * img.W
	var total float64
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			i := y*img.W + x
			if md[i] == 0 {
				continue
			}
			col := patched.RGBAt(y, x)
			total += nearestPaletteDist2(col)
		}
	}
	return total / float64(plane)
}

// npsGrad approximates the gradient of the per-pixel NPS term for flat
// index i (which lives in channel i/plane at spatial position i%plane):
// 2·(color − nearestPaletteColor) in that channel.
func npsGrad(img *imaging.Image, delta *tensor.Tensor, i int) float32 {
	plane := img.H * img.W
	ch := i / plane
	pos := i % plane
	y, x := pos/img.W, pos%img.W
	var col imaging.Color
	for c := 0; c < 3; c++ {
		v := img.Pix[c*plane+pos] + delta.Data()[c*plane+pos]
		col[c] = clamp01(v)
	}
	best := nearestPalette(col)
	_ = y
	_ = x
	return 2 * (col[ch] - best[ch])
}

func nearestPalette(col imaging.Color) imaging.Color {
	bestD := math.MaxFloat64
	best := printablePalette[0]
	for _, p := range printablePalette {
		d := colorDist2(col, p)
		if d < bestD {
			bestD, best = d, p
		}
	}
	return best
}

func nearestPaletteDist2(col imaging.Color) float64 {
	bestD := math.MaxFloat64
	for _, p := range printablePalette {
		if d := colorDist2(col, p); d < bestD {
			bestD = d
		}
	}
	return bestD
}

func colorDist2(a, b imaging.Color) float64 {
	var d float64
	for i := range a {
		x := float64(a[i] - b[i])
		d += x * x
	}
	return d
}

func sign32(v float32) float32 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}
