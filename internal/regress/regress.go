// Package regress implements DistNet, the convolutional lead-vehicle
// distance regressor standing in for the relative-distance output of
// OpenPilot's Supercombo model. The network maps a rendered driving frame
// to a scalar distance in meters (trained on a normalised target so the
// output head stays well-conditioned across the 4–90 m range).
package regress

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/imaging"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Regressor is the DistNet model.
type Regressor struct {
	Net     *nn.Sequential
	Size    int     // input image side (pixels)
	MaxDist float64 // normalisation constant: output 1.0 == MaxDist meters

	seed     *tensor.Tensor // reusable backward seed for DistanceGrad
	seedB    *tensor.Tensor // reusable [N,1] backward seed for DistanceGradBatch
	batchBuf *tensor.Tensor // reusable [N,3,S,S] input pack for PredictBatch
	trainBuf *tensor.Tensor // reusable [B,3,S,S] input pack for TrainImages
	trainTgt *tensor.Tensor // reusable [B,1] gradient seed for TrainImages
}

// BatchSize is the frame count PredictBatch feeds the network per forward:
// large enough to amortise per-layer dispatch and keep the SIMD kernels
// busy, small enough that the batched workspaces stay cache-resident.
const BatchSize = 8

// ArchVersion identifies the DistNet architecture for serialized weight
// artifacts: any change to the layer stack or widths must bump it so
// stored weights from the old architecture are never loaded into the new
// one.
const ArchVersion = 1

// New builds a DistNet for size×size RGB inputs.
func New(rng *xrand.RNG, size int) *Regressor {
	if size%8 != 0 {
		panic(fmt.Sprintf("regress: size %d must be divisible by 8", size))
	}
	g := size / 8
	net := nn.NewSequential(
		nn.NewConv2D(rng, 3, 12, 3, 2, 1),
		nn.NewLeakyReLU(0.1),
		nn.NewConv2D(rng, 12, 24, 3, 2, 1),
		nn.NewLeakyReLU(0.1),
		nn.NewConv2D(rng, 24, 32, 3, 2, 1),
		nn.NewLeakyReLU(0.1),
		nn.NewFlatten(),
		nn.NewLinear(rng, 32*g*g, 48),
		nn.NewLeakyReLU(0.1),
		nn.NewLinear(rng, 48, 1),
	)
	return &Regressor{Net: net, Size: size, MaxDist: 100}
}

// Clone returns an independent copy for concurrent use.
func (r *Regressor) Clone() *Regressor {
	return &Regressor{Net: r.Net.Clone(), Size: r.Size, MaxDist: r.MaxDist}
}

// Predict returns the predicted distance in meters.
func (r *Regressor) Predict(img *imaging.Image) float64 {
	out := r.Net.Forward(img.Tensor(), false)
	return float64(out.Data()[0]) * r.MaxDist
}

// ForwardBatch packs the given frames into one [N,3,S,S] tensor and runs a
// single batched forward, returning the raw [N,1] prediction map (owned by
// the model workspace, valid until the next model call). Results are
// bit-identical per frame to Predict.
func (r *Regressor) ForwardBatch(imgs []*imaging.Image) *tensor.Tensor {
	n := len(imgs)
	if r.batchBuf == nil || !r.batchBuf.ShapeEq(n, 3, r.Size, r.Size) {
		r.batchBuf = tensor.New(n, 3, r.Size, r.Size)
	}
	sample := 3 * r.Size * r.Size
	bd := r.batchBuf.Data()
	for i, img := range imgs {
		if len(img.Pix) != sample {
			panic(fmt.Sprintf("regress: ForwardBatch frame %d has %d pixels, want %d", i, len(img.Pix), sample))
		}
		copy(bd[i*sample:(i+1)*sample], img.Pix)
	}
	return r.Net.Forward(r.batchBuf, false)
}

// PredictBatch predicts the distance of every frame, feeding the network
// BatchSize frames per forward pass. It is the throughput path for
// dataset-style evaluation; predictions are bit-identical to calling
// Predict per frame.
func (r *Regressor) PredictBatch(imgs []*imaging.Image) []float64 {
	return r.PredictBatchInto(make([]float64, len(imgs)), imgs)
}

// PredictBatchInto is PredictBatch writing into dst, which must have
// len(imgs) elements; it returns dst. A final short block is padded to
// BatchSize by repeating the last frame (padding outputs are discarded):
// per-frame results are independent and bit-identical at any batch size,
// and the constant shape keeps the batched workspaces from reallocating
// between the tail and the next full block on every call.
func (r *Regressor) PredictBatchInto(dst []float64, imgs []*imaging.Image) []float64 {
	if len(dst) != len(imgs) {
		panic(fmt.Sprintf("regress: PredictBatchInto dst %d vs %d frames", len(dst), len(imgs)))
	}
	var padded [BatchSize]*imaging.Image
	for lo := 0; lo < len(imgs); lo += BatchSize {
		hi := lo + BatchSize
		block := imgs[lo:]
		if hi > len(imgs) {
			hi = len(imgs)
			n := copy(padded[:], imgs[lo:])
			for i := n; i < BatchSize; i++ {
				padded[i] = imgs[len(imgs)-1]
			}
			block = padded[:]
		} else {
			block = imgs[lo:hi]
		}
		out := r.ForwardBatch(block).Data()
		for i := 0; i < hi-lo; i++ {
			dst[lo+i] = float64(out[i]) * r.MaxDist
		}
	}
	return dst
}

// DistanceGrad returns the gradient of the predicted distance with respect
// to the input pixels — the primitive the regression attacks ascend to push
// the prediction toward larger (or smaller) distances. Only the input
// gradient is computed (BackwardInput): attacks never read parameter
// gradients, so the weight-gradient GEMMs of a full backward are skipped.
func (r *Regressor) DistanceGrad(img *imaging.Image) (pred float64, grad *tensor.Tensor) {
	out := r.Net.Forward(img.Tensor(), false)
	pred = float64(out.Data()[0]) * r.MaxDist
	if r.seed == nil {
		r.seed = tensor.New(1)
	}
	r.seed.Data()[0] = 1 // d(pred_norm)/d(out) = 1
	grad = r.Net.BackwardInput(r.seed)
	return pred, grad
}

// DistanceGradBatch is DistanceGrad over a whole block of frames: one
// batched forward and one batched input-gradient backward — two GEMM-shaped
// passes — instead of N per-frame pairs. preds must have len(imgs)
// elements and receives the predicted distances in meters; the returned
// [N,3,S,S] gradient is owned by the model workspace and valid until the
// model's next call. Per-frame predictions and gradients are bit-identical
// to DistanceGrad.
func (r *Regressor) DistanceGradBatch(preds []float64, imgs []*imaging.Image) *tensor.Tensor {
	if len(preds) != len(imgs) {
		panic(fmt.Sprintf("regress: DistanceGradBatch preds %d vs %d frames", len(preds), len(imgs)))
	}
	out := r.ForwardBatch(imgs)
	n := len(imgs)
	for i := 0; i < n; i++ {
		preds[i] = float64(out.Data()[i]) * r.MaxDist
	}
	if r.seedB == nil || !r.seedB.ShapeEq(n, 1) {
		r.seedB = tensor.New(n, 1)
	}
	r.seedB.Fill(1)
	return r.Net.BackwardInput(r.seedB)
}

// TrainConfig controls regressor training.
type TrainConfig struct {
	Epochs int
	Batch  int
	LR     float32
	Seed   int64
	Logf   func(format string, args ...any)
}

// DefaultTrainConfig returns settings that fit DistNet to a few meters of
// RMS error over the synthetic driving distribution.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, Batch: 16, LR: 2e-3, Seed: 2}
}

// Train fits the regressor on a driving set and returns final epoch loss
// (MSE in normalised units).
func (r *Regressor) Train(set *dataset.DriveSet, cfg TrainConfig) float64 {
	imgs := make([]*imaging.Image, set.Len())
	dists := make([]float64, set.Len())
	for i, sc := range set.Scenes {
		imgs[i] = sc.Img
		dists[i] = sc.Distance
	}
	return r.TrainImages(imgs, dists, cfg)
}

// TrainImages fits on explicit image/distance pairs (the adversarial-
// training defense passes perturbed frames). Each mini-batch runs as one
// batched forward and one batched backward — two GEMM-shaped passes —
// instead of per-sample loops; per-sample losses and gradient seeds match
// the old per-sample MSE exactly, with parameter gradients accumulating
// across the batch in one pass (float-rounding-level difference only).
func (r *Regressor) TrainImages(imgs []*imaging.Image, dists []float64, cfg TrainConfig) float64 {
	rng := xrand.New(cfg.Seed)
	opt := nn.NewAdam(cfg.LR)
	idx := make([]int, len(imgs))
	for i := range idx {
		idx[i] = i
	}
	sample := 3 * r.Size * r.Size
	var epochLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss = 0
		for _, batch := range dataset.Batches(len(idx), cfg.Batch) {
			nb := len(batch)
			// Pack buffers live at full cfg.Batch capacity; a short tail
			// batch is a view, so the epoch boundary never reallocates.
			if r.trainBuf == nil || r.trainBuf.Len() < cfg.Batch*sample {
				r.trainBuf = tensor.New(cfg.Batch, 3, r.Size, r.Size)
				r.trainTgt = tensor.New(cfg.Batch, 1)
			}
			in, tgt := r.trainBuf, r.trainTgt
			if nb != in.Dim(0) {
				in = tensor.FromSlice(in.Data()[:nb*sample], nb, 3, r.Size, r.Size)
				tgt = tensor.FromSlice(tgt.Data()[:nb], nb, 1)
			}
			bd := in.Data()
			for bi, b := range batch {
				copy(bd[bi*sample:(bi+1)*sample], imgs[idx[b]].Pix)
			}
			r.Net.ZeroGrad()
			out := r.Net.Forward(in, true)
			// Per-sample MSE on the single normalised output: loss 0.5·d²
			// and gradient seed d, exactly the old per-sample values.
			sd := tgt.Data()
			for bi, b := range batch {
				d := out.Data()[bi] - float32(dists[idx[b]]/r.MaxDist)
				epochLoss += 0.5 * float64(d) * float64(d)
				sd[bi] = d
			}
			r.Net.Backward(tgt)
			scaleGrads(r.Net.Params(), 1/float32(nb))
			nn.ClipGradNorm(r.Net.Params(), 10)
			opt.Step(r.Net.Params())
		}
		epochLoss /= float64(len(imgs))
		if cfg.Logf != nil {
			cfg.Logf("regress: epoch %d/%d loss %.6f", epoch+1, cfg.Epochs, epochLoss)
		}
	}
	return epochLoss
}

// RMSE returns the root-mean-square prediction error in meters over a set,
// evaluated through the batched forward path.
func (r *Regressor) RMSE(set *dataset.DriveSet) float64 {
	imgs := make([]*imaging.Image, set.Len())
	for i, sc := range set.Scenes {
		imgs[i] = sc.Img
	}
	preds := r.PredictBatch(imgs)
	var sq float64
	for i, sc := range set.Scenes {
		d := preds[i] - sc.Distance
		sq += d * d
	}
	return math.Sqrt(sq / float64(set.Len()))
}

// RangeErrors evaluates the attack-induced prediction shift per distance
// bucket: for every scene it compares the prediction on attacked(img)
// against the prediction on the clean image, exactly the paper's Table I
// protocol ("predicted relative distances under attack ... compared to the
// predictions on clean images in each frame"). Both sides run through the
// batched forward path, which is bit-identical to per-frame prediction;
// attacked(i) is called for every index up front, so its results must stay
// valid until the call returns (don't reuse one destination frame).
func (r *Regressor) RangeErrors(set *dataset.DriveSet, buckets [][2]float64, attacked func(i int) *imaging.Image) *metrics.RangeAccumulator {
	n := set.Len()
	clean := make([]*imaging.Image, n)
	adv := make([]*imaging.Image, n)
	for i, sc := range set.Scenes {
		clean[i] = sc.Img
		adv[i] = attacked(i)
	}
	cleanP := r.PredictBatch(clean)
	advP := r.PredictBatch(adv)
	acc := metrics.NewRangeAccumulator(buckets)
	for i, sc := range set.Scenes {
		acc.Add(sc.Distance, advP[i]-cleanP[i])
	}
	return acc
}

func scaleGrads(params []*nn.Param, s float32) {
	for _, p := range params {
		p.Grad.ScaleInPlace(s)
	}
}
