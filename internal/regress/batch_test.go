package regress

import (
	"runtime"
	"testing"

	"repro/internal/imaging"
	"repro/internal/xrand"
)

// batchFrames renders n deterministic pseudo-frames at the given size.
func batchFrames(n, size int) []*imaging.Image {
	rng := xrand.New(62)
	imgs := make([]*imaging.Image, n)
	for i := range imgs {
		img := imaging.NewRGB(size, size)
		rng.FillUniform(img.Pix, 0, 1)
		imgs[i] = img
	}
	return imgs
}

// TestPredictBatchBitIdentical is the model-level batch invariant the
// ISSUE names: the batched forward of N frames must equal N single
// forwards bit for bit, across GOMAXPROCS and across chunk boundaries
// (n > BatchSize exercises the tail batch).
func TestPredictBatchBitIdentical(t *testing.T) {
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		r := New(xrand.New(8), 16)
		imgs := batchFrames(BatchSize+3, 16)
		single := r.Clone()

		preds := r.PredictBatch(imgs)
		for i, img := range imgs {
			want := single.Predict(img)
			if preds[i] != want {
				t.Fatalf("procs=%d frame %d: batched %v vs single %v", procs, i, preds[i], want)
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestPredictBatchThenSingle interleaves batched and per-frame prediction
// on one instance: the workspace reshuffling must not perturb either path.
func TestPredictBatchThenSingle(t *testing.T) {
	r := New(xrand.New(8), 16)
	imgs := batchFrames(4, 16)
	want := r.Clone().Predict(imgs[1])

	r.PredictBatch(imgs)
	if got := r.Predict(imgs[1]); got != want {
		t.Fatalf("single predict drifts after batch: %v vs %v", got, want)
	}
	if got := r.PredictBatch(imgs)[1]; got != want {
		t.Fatalf("batched predict drifts after single: %v vs %v", got, want)
	}
}

// TestPredictBatchInto checks the destination-passing variant and length
// validation.
func TestPredictBatchInto(t *testing.T) {
	r := New(xrand.New(8), 16)
	imgs := batchFrames(3, 16)
	dst := make([]float64, 3)
	out := r.PredictBatchInto(dst, imgs)
	if &out[0] != &dst[0] {
		t.Fatal("PredictBatchInto must return dst")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	r.PredictBatchInto(make([]float64, 2), imgs)
}
