package regress

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/imaging"
	"repro/internal/metrics"
	"repro/internal/scene"
	"repro/internal/xrand"
)

func TestNewRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size not divisible by 8 must panic")
		}
	}()
	New(xrand.New(1), 50)
}

func TestPredictFiniteAndDeterministic(t *testing.T) {
	r := New(xrand.New(1), 64)
	sc := scene.GenerateDrive(xrand.New(2), scene.DefaultDriveConfig(), 30)
	a := r.Predict(sc.Img)
	b := r.Predict(sc.Img)
	if math.IsNaN(a) || math.IsInf(a, 0) {
		t.Fatalf("prediction %v", a)
	}
	if a != b {
		t.Fatal("Predict must be deterministic")
	}
}

func TestTrainReducesRMSE(t *testing.T) {
	rng := xrand.New(3)
	cfg := scene.DefaultDriveConfig()
	set := dataset.GenerateDriveSet(rng.Split(), cfg, 120, cfg.MinZ, cfg.MaxZ)
	train, test := set.Split(0.8)

	r := New(rng.Split(), cfg.Size)
	before := r.RMSE(test)
	tc := DefaultTrainConfig()
	tc.Epochs = 8
	r.Train(train, tc)
	after := r.RMSE(test)
	if after >= before {
		t.Fatalf("training did not reduce RMSE: %.2f -> %.2f", before, after)
	}
	if after > 25 {
		t.Fatalf("post-training RMSE %.2f m too high", after)
	}
}

func TestDistanceGradPointsUphill(t *testing.T) {
	rng := xrand.New(4)
	cfg := scene.DefaultDriveConfig()
	set := dataset.GenerateDriveSet(rng.Split(), cfg, 60, cfg.MinZ, cfg.MaxZ)
	r := New(rng.Split(), cfg.Size)
	tc := DefaultTrainConfig()
	tc.Epochs = 4
	r.Train(set, tc)

	sc := set.Scenes[0]
	pred, grad := r.DistanceGrad(sc.Img)
	// Step along the gradient: prediction must increase.
	stepped := sc.Img.Clone()
	g := grad.Clone()
	g.SignInPlace()
	stepped.Tensor().AddScaledInPlace(g, 0.01)
	after := r.Predict(stepped)
	if after <= pred {
		t.Fatalf("gradient ascent did not raise prediction: %.2f -> %.2f", pred, after)
	}
}

func TestRangeErrorsCleanIsZero(t *testing.T) {
	rng := xrand.New(5)
	cfg := scene.DefaultDriveConfig()
	set := dataset.GenerateDriveSetStratified(rng.Split(), cfg, 3, metrics.PaperRanges)
	r := New(rng.Split(), cfg.Size)
	acc := r.RangeErrors(set, metrics.PaperRanges, func(i int) *imaging.Image {
		return set.Scenes[i].Img // identity "attack"
	})
	for i, m := range acc.Means() {
		if m != 0 {
			t.Fatalf("bucket %d clean error %v, want 0", i, m)
		}
	}
}

func TestRangeErrorsDetectsShift(t *testing.T) {
	rng := xrand.New(6)
	cfg := scene.DefaultDriveConfig()
	set := dataset.GenerateDriveSetStratified(rng.Split(), cfg, 2, metrics.PaperRanges)
	r := New(rng.Split(), cfg.Size)
	// "Attack" = white image; predictions will differ from clean.
	white := imaging.NewRGB(cfg.Size, cfg.Size)
	white.Fill(imaging.White)
	acc := r.RangeErrors(set, metrics.PaperRanges, func(i int) *imaging.Image { return white })
	var nonzero bool
	for _, m := range acc.Means() {
		if m != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("range errors failed to register a prediction shift")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := xrand.New(7)
	r := New(rng.Split(), 64)
	c := r.Clone()
	sc := scene.GenerateDrive(xrand.New(8), scene.DefaultDriveConfig(), 25)
	a := r.Predict(sc.Img)
	c.Net.Params()[0].Value.Fill(0)
	if r.Predict(sc.Img) != a {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestTrainImagesMatchesTrain(t *testing.T) {
	rng := xrand.New(9)
	cfg := scene.DefaultDriveConfig()
	set := dataset.GenerateDriveSet(rng.Split(), cfg, 30, cfg.MinZ, cfg.MaxZ)

	imgs := make([]*imaging.Image, set.Len())
	dists := make([]float64, set.Len())
	for i, sc := range set.Scenes {
		imgs[i] = sc.Img
		dists[i] = sc.Distance
	}

	seed := rng.Split()
	a := New(seed, cfg.Size)
	b := &Regressor{Net: a.Net.Clone(), Size: a.Size, MaxDist: a.MaxDist}

	tc := DefaultTrainConfig()
	tc.Epochs = 2
	a.Train(set, tc)
	b.TrainImages(imgs, dists, tc)

	sc := set.Scenes[0]
	if a.Predict(sc.Img) != b.Predict(sc.Img) {
		t.Fatal("Train and TrainImages with identical data must agree")
	}
}
