package scene

import (
	"math"

	"repro/internal/box"
	"repro/internal/imaging"
	"repro/internal/xrand"
)

// Camera is a pinhole model relating road-frame geometry to pixels: a
// point at forward distance z and height h above the road projects to
// image row cy + f·(camH-h)/z, and an object of width w spans f·w/z pixels.
type Camera struct {
	Focal   float64 // focal length in pixels
	Height  float64 // camera height above road in meters
	CenterY float64 // image row of the horizon
	CenterX float64 // image column of the optical axis
}

// RowFor returns the image row of a point on the road surface (height 0)
// at forward distance z.
func (c Camera) RowFor(z float64) float64 { return c.CenterY + c.Focal*c.Height/z }

// Span returns the pixel extent of a lateral size w at distance z.
func (c Camera) Span(w, z float64) float64 { return c.Focal * w / z }

// DriveConfig controls the driving-scene generator.
type DriveConfig struct {
	Size      int     // square image side in pixels
	Focal     float64 // pinhole focal length in pixels
	CamHeight float64 // camera height in meters
	CarWidth  float64 // lead vehicle width in meters
	CarHeight float64 // lead vehicle height in meters
	LaneWidth float64 // lane width in meters
	MinZ      float64 // closest generated lead distance
	MaxZ      float64 // farthest generated lead distance
	Noise     float64 // sensor noise std dev

	// BrightMin/BrightMax bound the sampled global illumination for
	// closed-loop renderers. A zero value selects that bound's daylight
	// default (0.85 / 1.05) independently; low-visibility scenario
	// variants narrow the range toward darkness.
	BrightMin float64
	BrightMax float64
}

// brightRange returns the illumination sampling bounds, applying the
// daylight default for each bound the config leaves unset. An inverted
// range collapses onto its upper bound rather than panicking.
func (cfg DriveConfig) brightRange() (lo, hi float64) {
	lo, hi = cfg.BrightMin, cfg.BrightMax
	if lo == 0 {
		lo = 0.85
	}
	if hi == 0 {
		hi = 1.05
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// DefaultDriveConfig returns the configuration used across the experiments.
func DefaultDriveConfig() DriveConfig {
	return DriveConfig{
		Size: 64, Focal: 150, CamHeight: 1.4,
		CarWidth: 1.85, CarHeight: 1.45, LaneWidth: 3.7,
		MinZ: 4, MaxZ: 90, Noise: 0.01,
	}
}

// Camera builds the pinhole camera implied by the config.
func (cfg DriveConfig) Camera() Camera {
	return Camera{
		Focal:   cfg.Focal,
		Height:  cfg.CamHeight,
		CenterY: float64(cfg.Size) * 0.42,
		CenterX: float64(cfg.Size) / 2,
	}
}

// DriveScene is one generated driving frame.
type DriveScene struct {
	Img      *imaging.Image
	Distance float64 // true relative distance to the lead vehicle (m)
	LeadBox  box.Box // lead vehicle bounding box in pixels
}

// carPalette is the set of lead-vehicle body colors.
var carPalette = []imaging.Color{
	{0.75, 0.75, 0.78}, // silver
	{0.15, 0.15, 0.17}, // black
	{0.55, 0.10, 0.10}, // red
	{0.16, 0.25, 0.50}, // blue
	{0.85, 0.85, 0.85}, // white
}

// GenerateDrive renders a driving frame with the lead vehicle at the given
// distance. Appearance randomness (lighting, car color, lateral offset,
// clutter) comes from rng; geometry follows the pinhole camera exactly.
func GenerateDrive(rng *xrand.RNG, cfg DriveConfig, dist float64) DriveScene {
	s := cfg.Size
	cam := cfg.Camera()
	img := imaging.NewRGB(s, s)

	bright := float32(rng.Uniform(0.8, 1.1))
	horizon := int(cam.CenterY)

	// Sky and off-road terrain.
	img.VerticalGradient(0, horizon, imaging.SkyBlue.Scale(bright), imaging.White.Scale(bright*0.9))
	img.VerticalGradient(horizon, s, imaging.Grass.Scale(bright*0.8), imaging.Grass.Scale(bright*0.55))

	// Road: trapezoid from the horizon to the bottom edge. Edges follow the
	// projection of the lane borders (±laneWidth) at decreasing distance.
	drawRoad(img, cam, cfg, bright)

	// Distant scenery.
	n := rng.Intn(3)
	for i := 0; i < n; i++ {
		h := 3 + rng.Intn(6)
		x := rng.Intn(s)
		img.FillCircle(float64(horizon-h/2), float64(x), float64(h)/2, imaging.Grass.Scale(float32(rng.Uniform(0.4, 0.8))))
	}

	// Lead vehicle.
	lateral := rng.Uniform(-0.35, 0.35) // meters off lane center
	body := carPalette[rng.Intn(len(carPalette))]
	lead := drawLeadCar(img, cam, cfg, dist, lateral, body, bright)

	if cfg.Noise > 0 {
		noisy := img.AddGaussianNoise(rng, cfg.Noise).Clamp()
		copy(img.Pix, noisy.Pix)
	}
	return DriveScene{Img: img, Distance: dist, LeadBox: lead}
}

// drawRoad paints the asphalt trapezoid, shoulder lines and dashed center
// markings, all following the camera projection.
func drawRoad(img *imaging.Image, cam Camera, cfg DriveConfig, bright float32) {
	s := img.H
	half := cfg.LaneWidth // road spans one lane each side of center
	for y := int(cam.CenterY) + 1; y < s; y++ {
		// Invert RowFor: z = f*camH / (y - cy).
		z := cam.Focal * cam.Height / (float64(y) - cam.CenterY)
		halfSpan := cam.Span(half, z)
		x0 := int(cam.CenterX - halfSpan)
		x1 := int(cam.CenterX + halfSpan)
		shade := bright * float32(0.9+0.1*math.Min(1, z/50))
		img.FillRect(y, x0, y+1, x1, imaging.Asphalt.Scale(shade))
		// Shoulder lines.
		img.FillRect(y, x0, y+1, x0+1, imaging.White.Scale(bright))
		img.FillRect(y, x1-1, y+1, x1, imaging.White.Scale(bright))
		// Dashed center line: dashes every 4 m of road distance.
		if math.Mod(z, 8) < 4 {
			cx := int(cam.CenterX)
			img.FillRect(y, cx, y+1, cx+1, imaging.Yellow.Scale(bright))
		}
	}
}

// drawLeadCar renders the rear view of the lead vehicle at distance z and
// returns its bounding box. The box is the ground-truth region CAP-Attack
// confines its patch to.
func drawLeadCar(img *imaging.Image, cam Camera, cfg DriveConfig, z, lateral float64, body imaging.Color, bright float32) box.Box {
	w := cam.Span(cfg.CarWidth, z)
	h := cam.Span(cfg.CarHeight, z)
	bottom := cam.RowFor(z)
	cx := cam.CenterX + cam.Span(lateral, z)

	b := box.New(cx-w/2, bottom-h, cx+w/2, bottom)
	clipped := b.Clip(float64(img.W), float64(img.H))
	if clipped.Empty() || w < 1 {
		// Too far to resolve: a single dark pixel at the road position.
		if bottom >= 1 && bottom < float64(img.H) {
			img.FillRect(int(bottom)-1, int(cx), int(bottom), int(cx)+1, imaging.DarkGray)
		}
		return clipped
	}

	x0, y0, x1, y1 := int(b.X0), int(b.Y0), int(b.X1), int(b.Y1)

	// Body.
	img.FillRect(y0, x0, y1, x1, body.Scale(bright))
	// Rear window (top third, dark).
	winY1 := y0 + maxInt(1, (y1-y0)/3)
	img.FillRect(y0+maxInt(1, (y1-y0)/10), x0+maxInt(1, (x1-x0)/8), winY1, x1-maxInt(1, (x1-x0)/8), imaging.DarkGray.Scale(bright))
	// Tail lights at the lower corners.
	lw := maxInt(1, (x1-x0)/6)
	lh := maxInt(1, (y1-y0)/6)
	ly := y1 - 2*lh
	img.FillRect(ly, x0+1, ly+lh, x0+1+lw, imaging.Color{0.9, 0.1, 0.1}.Scale(bright))
	img.FillRect(ly, x1-1-lw, ly+lh, x1-1, imaging.Color{0.9, 0.1, 0.1}.Scale(bright))
	// Tires touching the road.
	th := maxInt(1, (y1-y0)/8)
	img.FillRect(y1-th, x0, y1, x0+lw, imaging.Black)
	img.FillRect(y1-th, x1-lw, y1, x1, imaging.Black)
	// Shadow under the car.
	if y1 < img.H {
		img.FillRect(y1, x0, minInt(img.H, y1+1), x1, imaging.Asphalt.Scale(0.6))
	}
	return clipped
}

// DriveFrame is one element of a kinematic driving sequence.
type DriveFrame struct {
	Scene DriveScene
	T     float64 // seconds since sequence start
}

// GenerateDriveSequence renders n frames at dt spacing while the lead
// vehicle's distance evolves from startZ with the given relative speed
// profile (m/s, positive = opening gap). Appearance (car color) is fixed
// across the sequence; per-frame noise varies. CAP-Attack consumes these.
func GenerateDriveSequence(rng *xrand.RNG, cfg DriveConfig, n int, dt, startZ float64, relSpeed func(t float64) float64) []DriveFrame {
	frames := make([]DriveFrame, 0, n)
	z := startZ
	// Freeze appearance choices by splitting a dedicated stream and reusing
	// identical draws each frame.
	carIdx := rng.Intn(len(carPalette))
	lateral := rng.Uniform(-0.3, 0.3)
	bright := float32(rng.Uniform(0.85, 1.05))
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		sc := generateDriveFixed(rng, cfg, z, lateral, carPalette[carIdx], bright)
		frames = append(frames, DriveFrame{Scene: sc, T: t})
		z += relSpeed(t) * dt
		if z < 1 {
			z = 1
		}
		if z > cfg.MaxZ {
			z = cfg.MaxZ
		}
	}
	return frames
}

// Renderer renders driving frames with frozen appearance (car color,
// lateral offset, lighting), so closed-loop simulations see a temporally
// coherent world where only geometry changes frame to frame.
type Renderer struct {
	Cfg     DriveConfig
	rng     *xrand.RNG
	body    imaging.Color
	lateral float64
	bright  float32
}

// NewRenderer samples the frozen appearance once from rng.
func NewRenderer(rng *xrand.RNG, cfg DriveConfig) *Renderer {
	lo, hi := cfg.brightRange()
	return &Renderer{
		Cfg:     cfg,
		rng:     rng,
		body:    carPalette[rng.Intn(len(carPalette))],
		lateral: rng.Uniform(-0.3, 0.3),
		bright:  float32(rng.Uniform(lo, hi)),
	}
}

// Render draws the frame for the given true lead distance.
func (r *Renderer) Render(dist float64) DriveScene {
	return generateDriveFixed(r.rng, r.Cfg, dist, r.lateral, r.body, r.bright)
}

// RenderAt draws the frame with an explicit lateral offset (meters off
// lane center), overriding the frozen one; cut-in scenarios script the
// lead vehicle sliding into the ego lane this way.
func (r *Renderer) RenderAt(dist, lateral float64) DriveScene {
	return generateDriveFixed(r.rng, r.Cfg, dist, lateral, r.body, r.bright)
}

// generateDriveFixed renders a frame with externally fixed appearance.
func generateDriveFixed(rng *xrand.RNG, cfg DriveConfig, dist, lateral float64, body imaging.Color, bright float32) DriveScene {
	s := cfg.Size
	cam := cfg.Camera()
	img := imaging.NewRGB(s, s)
	horizon := int(cam.CenterY)
	img.VerticalGradient(0, horizon, imaging.SkyBlue.Scale(bright), imaging.White.Scale(bright*0.9))
	img.VerticalGradient(horizon, s, imaging.Grass.Scale(bright*0.8), imaging.Grass.Scale(bright*0.55))
	drawRoad(img, cam, cfg, bright)
	lead := drawLeadCar(img, cam, cfg, dist, lateral, body, bright)
	if cfg.Noise > 0 {
		noisy := img.AddGaussianNoise(rng, cfg.Noise).Clamp()
		copy(img.Pix, noisy.Pix)
	}
	return DriveScene{Img: img, Distance: dist, LeadBox: lead}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
