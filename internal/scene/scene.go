// Package scene procedurally generates the two synthetic datasets used by
// the reproduction, standing in for the Traffic Signs Detection dataset and
// the comma2k19 driving video of the paper:
//
//   - Stop-sign scenes: outdoor backgrounds with clutter and a red octagon
//     sign (white rim + STOP glyphs) at a randomised position, scale,
//     rotation and illumination, with exact ground-truth bounding boxes.
//   - Driving scenes: a straight road rendered with a pinhole camera model
//     and a lead vehicle whose apparent size and road position follow the
//     true relative distance, with exact ground-truth distance and lead
//     bounding box. Sequences with smooth lead kinematics support the
//     frame-coherent CAP attack.
//
// All randomness flows through an explicit *xrand.RNG, so a seed fully
// determines a dataset.
package scene

import (
	"repro/internal/box"
	"repro/internal/imaging"
	"repro/internal/xrand"
)

// SignScene is one generated stop-sign example.
type SignScene struct {
	Img     *imaging.Image
	HasSign bool
	Box     box.Box // valid only when HasSign
}

// SignConfig controls the stop-sign generator.
type SignConfig struct {
	Size    int     // square image side in pixels
	MinR    float64 // min sign circumradius in pixels
	MaxR    float64 // max sign circumradius in pixels
	NegProb float64 // probability of a scene without a sign
	Noise   float64 // sensor noise std dev
}

// DefaultSignConfig returns the configuration used across the experiments.
// Signs are prominent (as in the paper's curated detection dataset) so the
// clean model reaches the high-90s detection scores the paper starts from.
func DefaultSignConfig() SignConfig {
	return SignConfig{Size: 64, MinR: 10, MaxR: 18, NegProb: 0.1, Noise: 0.01}
}

// GenerateSign renders one stop-sign scene.
func GenerateSign(rng *xrand.RNG, cfg SignConfig) SignScene {
	s := cfg.Size
	img := imaging.NewRGB(s, s)

	// Sky and ground with illumination jitter.
	bright := float32(rng.Uniform(0.75, 1.15))
	horizon := int(rng.Uniform(0.45, 0.65) * float64(s))
	img.VerticalGradient(0, horizon, imaging.SkyBlue.Scale(bright), imaging.LightGray.Scale(bright))
	img.VerticalGradient(horizon, s, imaging.Grass.Scale(bright), imaging.Grass.Scale(bright*0.7))

	// Road strip on the ground.
	roadY := horizon + rng.Intn(max(1, s/8))
	img.FillRect(roadY, 0, s, s, imaging.Asphalt.Scale(bright))

	// Background clutter: buildings and trees behind the horizon line.
	nClutter := 1 + rng.Intn(3)
	for i := 0; i < nClutter; i++ {
		w := 4 + rng.Intn(s/4)
		h := 4 + rng.Intn(s/3)
		x := rng.Intn(s)
		if rng.Bool(0.5) {
			col := imaging.Gray.Scale(float32(rng.Uniform(0.5, 1.1)))
			img.FillRect(horizon-h, x, horizon, x+w, col)
		} else {
			col := imaging.Grass.Scale(float32(rng.Uniform(0.5, 1.0)))
			img.FillCircle(float64(horizon-h/2), float64(x), float64(h)/2, col)
		}
	}

	sc := SignScene{Img: img}
	if !rng.Bool(cfg.NegProb) {
		r := rng.Uniform(cfg.MinR, cfg.MaxR)
		cx := rng.Uniform(r+2, float64(s)-r-2)
		cy := rng.Uniform(r+4, float64(s)*0.72)
		rot := rng.Uniform(-0.12, 0.12)
		drawStopSign(img, cx, cy, r, rot, bright)
		sc.HasSign = true
		sc.Box = box.FromCenter(cx, cy, 2*r*0.96, 2*r*0.96).Clip(float64(s), float64(s))
	}

	if cfg.Noise > 0 {
		noisy := img.AddGaussianNoise(rng, cfg.Noise).Clamp()
		copy(img.Pix, noisy.Pix)
	}
	return sc
}

// drawStopSign renders the pole, the white-rimmed red octagon and blocky
// STOP glyphs, matching the visual structure detectors key on.
func drawStopSign(img *imaging.Image, cx, cy, r, rot float64, bright float32) {
	// Pole below the sign.
	poleW := maxf(1, r/6)
	img.FillRect(int(cy), int(cx-poleW/2), img.H, int(cx+poleW/2), imaging.DarkGray.Scale(bright))

	// White rim octagon, then the red face slightly inset.
	rim := imaging.RegularPolygon(cx, cy, r, 8, rot+octRot)
	img.FillPolygon(rim, imaging.White.Scale(bright))
	face := imaging.RegularPolygon(cx, cy, r*0.88, 8, rot+octRot)
	img.FillPolygon(face, imaging.Red.Scale(bright))

	// STOP text: 4 glyphs of 3px + 3 gaps at unit scale = 15 units wide.
	scale := int(maxf(1, r/7))
	textW := (4*4 - 1) * scale
	textH := 5 * scale
	img.DrawGlyphText(int(cy)-textH/2, int(cx)-textW/2, "STOP", scale, imaging.White.Scale(bright))
}

// octRot orients the octagon flat-side-up like a real stop sign.
const octRot = 0.3926990816987241 // π/8

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
