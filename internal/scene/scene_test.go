package scene

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestGenerateSignDeterministic(t *testing.T) {
	cfg := DefaultSignConfig()
	a := GenerateSign(xrand.New(5), cfg)
	b := GenerateSign(xrand.New(5), cfg)
	if a.HasSign != b.HasSign {
		t.Fatal("same seed, different sign presence")
	}
	if a.Img.MeanAbsDiff(b.Img) != 0 {
		t.Fatal("same seed must render identical scenes")
	}
}

func TestGenerateSignBoxInBounds(t *testing.T) {
	cfg := DefaultSignConfig()
	rng := xrand.New(1)
	for i := 0; i < 50; i++ {
		sc := GenerateSign(rng, cfg)
		if !sc.HasSign {
			continue
		}
		b := sc.Box
		if b.X0 < 0 || b.Y0 < 0 || b.X1 > float64(cfg.Size) || b.Y1 > float64(cfg.Size) {
			t.Fatalf("box out of bounds: %+v", b)
		}
		if b.W() < cfg.MinR || b.H() < cfg.MinR {
			t.Fatalf("box too small: %+v", b)
		}
	}
}

// The sign region must actually be dominated by red-ish pixels — the
// ground-truth box and the rendering must agree.
func TestGenerateSignBoxCoversRedPixels(t *testing.T) {
	cfg := DefaultSignConfig()
	cfg.Noise = 0
	rng := xrand.New(2)
	for i := 0; i < 20; i++ {
		sc := GenerateSign(rng, cfg)
		if !sc.HasSign {
			continue
		}
		b := sc.Box
		var red, total int
		for y := int(b.Y0); y < int(b.Y1); y++ {
			for x := int(b.X0); x < int(b.X1); x++ {
				col := sc.Img.RGBAt(y, x)
				total++
				if col[0] > col[1]*1.5 && col[0] > col[2]*1.5 {
					red++
				}
			}
		}
		if total == 0 || float64(red)/float64(total) < 0.2 {
			t.Fatalf("sign box contains too few red pixels: %d/%d", red, total)
		}
	}
}

func TestGenerateSignNegativeRate(t *testing.T) {
	cfg := DefaultSignConfig()
	cfg.NegProb = 0.5
	rng := xrand.New(3)
	neg := 0
	const n = 400
	for i := 0; i < n; i++ {
		if !GenerateSign(rng, cfg).HasSign {
			neg++
		}
	}
	if neg < n/2-60 || neg > n/2+60 {
		t.Fatalf("negative rate %d/%d, want ~0.5", neg, n)
	}
}

func TestCameraProjection(t *testing.T) {
	cam := Camera{Focal: 100, Height: 1.5, CenterY: 30, CenterX: 32}
	// Road point at 10 m: row = 30 + 100*1.5/10 = 45.
	if got := cam.RowFor(10); math.Abs(got-45) > 1e-9 {
		t.Fatalf("RowFor = %v, want 45", got)
	}
	// 2 m wide object at 10 m spans 20 px.
	if got := cam.Span(2, 10); math.Abs(got-20) > 1e-9 {
		t.Fatalf("Span = %v, want 20", got)
	}
}

// Property: apparent size decreases monotonically with distance.
func TestLeadBoxShrinksWithDistance(t *testing.T) {
	cfg := DefaultDriveConfig()
	cfg.Noise = 0
	f := func(seed int64) bool {
		r := xrand.New(seed)
		z1 := r.Uniform(5, 30)
		z2 := z1 + r.Uniform(5, 40)
		a := GenerateDrive(xrand.New(seed), cfg, z1)
		b := GenerateDrive(xrand.New(seed), cfg, z2)
		if a.LeadBox.Empty() || b.LeadBox.Empty() {
			return true // far box may degenerate; nothing to compare
		}
		return a.LeadBox.Area() > b.LeadBox.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLeadBoxMatchesPinhole(t *testing.T) {
	cfg := DefaultDriveConfig()
	cfg.Noise = 0
	cam := cfg.Camera()
	sc := GenerateDrive(xrand.New(9), cfg, 20)
	wantW := cam.Span(cfg.CarWidth, 20)
	if math.Abs(sc.LeadBox.W()-wantW) > 2 {
		t.Fatalf("lead box width %v, want ~%v", sc.LeadBox.W(), wantW)
	}
	wantBottom := cam.RowFor(20)
	if math.Abs(sc.LeadBox.Y1-wantBottom) > 2 {
		t.Fatalf("lead box bottom %v, want ~%v", sc.LeadBox.Y1, wantBottom)
	}
}

func TestGenerateDriveSequenceKinematics(t *testing.T) {
	cfg := DefaultDriveConfig()
	frames := GenerateDriveSequence(xrand.New(4), cfg, 10, 0.1, 50, func(t float64) float64 { return -10 })
	if len(frames) != 10 {
		t.Fatalf("frames = %d", len(frames))
	}
	// Closing at 10 m/s with dt 0.1: distance drops 1 m per frame.
	for i := 1; i < len(frames); i++ {
		dd := frames[i-1].Scene.Distance - frames[i].Scene.Distance
		if math.Abs(dd-1) > 1e-9 {
			t.Fatalf("frame %d distance step %v, want 1", i, dd)
		}
	}
}

func TestGenerateDriveSequenceFloorsDistance(t *testing.T) {
	cfg := DefaultDriveConfig()
	frames := GenerateDriveSequence(xrand.New(4), cfg, 20, 1, 5, func(t float64) float64 { return -10 })
	last := frames[len(frames)-1].Scene.Distance
	if last < 1 {
		t.Fatalf("distance must floor at 1 m, got %v", last)
	}
}

func TestRendererFrozenAppearance(t *testing.T) {
	cfg := DefaultDriveConfig()
	cfg.Noise = 0
	r := NewRenderer(xrand.New(6), cfg)
	a := r.Render(30)
	b := r.Render(30)
	if a.Img.MeanAbsDiff(b.Img) != 0 {
		t.Fatal("renderer must be appearance-stable at fixed distance")
	}
	c := r.Render(10)
	if c.LeadBox.Area() <= a.LeadBox.Area() {
		t.Fatal("closer lead must appear bigger")
	}
}

func TestDriveSceneFarDistanceDegenerates(t *testing.T) {
	cfg := DefaultDriveConfig()
	sc := GenerateDrive(xrand.New(7), cfg, cfg.MaxZ)
	// At max range the car is just a couple of pixels, possibly empty —
	// this must not panic and any box must stay in bounds.
	if !sc.LeadBox.Empty() {
		if sc.LeadBox.X1 > float64(cfg.Size) || sc.LeadBox.Y1 > float64(cfg.Size) {
			t.Fatalf("far lead box out of bounds: %+v", sc.LeadBox)
		}
	}
}

func TestRendererRenderAtLateral(t *testing.T) {
	cfg := DefaultDriveConfig()
	cfg.Noise = 0
	r := NewRenderer(xrand.New(6), cfg)
	center := r.RenderAt(20, 0)
	offset := r.RenderAt(20, 1.5)
	if center.LeadBox.Empty() || offset.LeadBox.Empty() {
		t.Fatal("lead must be visible at 20 m")
	}
	cx := (center.LeadBox.X0 + center.LeadBox.X1) / 2
	ox := (offset.LeadBox.X0 + offset.LeadBox.X1) / 2
	if ox <= cx {
		t.Fatalf("positive lateral offset must shift the lead right: %v vs %v", cx, ox)
	}
}

func TestBrightRange(t *testing.T) {
	cfg := DefaultDriveConfig()
	lo, hi := cfg.brightRange()
	if lo != 0.85 || hi != 1.05 {
		t.Fatalf("unset bounds must select daylight defaults, got [%v,%v]", lo, hi)
	}
	cfg.BrightMin, cfg.BrightMax = 0.35, 0.5
	lo, hi = cfg.brightRange()
	if lo != 0.35 || hi != 0.5 {
		t.Fatalf("explicit bounds ignored: [%v,%v]", lo, hi)
	}
	cfg.BrightMin, cfg.BrightMax = 0.5, 0 // bounds default independently
	if lo, hi = cfg.brightRange(); lo != 0.5 || hi != 1.05 {
		t.Fatalf("raising only the floor must keep the default ceiling: [%v,%v]", lo, hi)
	}
	cfg.BrightMin, cfg.BrightMax = 0.4, 0.2 // inverted: clamp, don't panic
	if lo, hi = cfg.brightRange(); lo != hi || hi != 0.2 {
		t.Fatalf("inverted bounds must collapse onto the ceiling: [%v,%v]", lo, hi)
	}
}

func TestNightConfigDarkensScene(t *testing.T) {
	day := DefaultDriveConfig()
	day.Noise = 0
	night := day
	night.BrightMin, night.BrightMax = 0.35, 0.5
	dayScene := NewRenderer(xrand.New(3), day).Render(25)
	nightScene := NewRenderer(xrand.New(3), night).Render(25)
	var dsum, nsum float64
	for i := range dayScene.Img.Pix {
		dsum += float64(dayScene.Img.Pix[i])
		nsum += float64(nightScene.Img.Pix[i])
	}
	if nsum >= dsum {
		t.Fatalf("night scene must be darker: day %.1f vs night %.1f", dsum, nsum)
	}
}
