//go:build !race

// Package testenv exposes build-environment facts tests adapt to.
package testenv

// RaceEnabled reports whether the binary was built with -race. See
// race_on.go for why allocation-budget tests consult it.
const RaceEnabled = false
