//go:build race

// Package testenv exposes build-environment facts tests adapt to.
package testenv

// RaceEnabled reports whether the binary was built with -race. Allocation-
// budget tests skip under the race detector: its runtime allocates on
// paths that are allocation-free in normal builds, and sync.Pool
// deliberately drops items to widen the schedules it can observe.
const RaceEnabled = true
