//go:build amd64.v4 && !noasm

package tensor

// GOAMD64=v4 guarantees the full AVX-512 F+BW+CD+DQ+VL set (and therefore
// AVX2), so both runtime probes are skipped entirely and init selects the
// 16-wide ZMM kernel unconditionally.
const (
	compileTimeAVX2   = true
	compileTimeAVX512 = true
)
