package tensor

import (
	"testing"

	"repro/internal/xrand"
)

// batchOf stacks n randomly filled CHW samples into an [N,C,H,W] tensor and
// also returns the individual samples.
func batchOf(rng *xrand.RNG, n int, g ConvGeom) (*Tensor, []*Tensor) {
	batch := New(n, g.InC, g.InH, g.InW)
	rng.FillUniform(batch.Data(), -1, 1)
	per := make([]*Tensor, n)
	sampleLen := g.InC * g.InH * g.InW
	for s := 0; s < n; s++ {
		per[s] = FromSlice(batch.Data()[s*sampleLen:(s+1)*sampleLen], g.InC, g.InH, g.InW)
	}
	return batch, per
}

// TestIm2RowMatchesIm2Col checks the patch-major batched lowering against
// the per-sample column-major one: row (n·P + p) of Im2Row must equal
// column p of sample n's Im2Col.
func TestIm2RowMatchesIm2Col(t *testing.T) {
	rng := xrand.New(41)
	for _, g := range []ConvGeom{
		{InC: 3, InH: 8, InW: 8, K: 3, Stride: 2, Pad: 1},
		{InC: 2, InH: 7, InW: 5, K: 3, Stride: 1, Pad: 1},
		{InC: 1, InH: 6, InW: 6, K: 2, Stride: 2, Pad: 0},
		{InC: 2, InH: 9, InW: 9, K: 5, Stride: 2, Pad: 2},
	} {
		const n = 3
		batch, per := batchOf(rng, n, g)
		p := g.OutH() * g.OutW()
		l := g.InC * g.K * g.K
		rows := New(n*p, l)
		rows.Fill(99) // every element must be overwritten
		Im2RowInto(rows, batch, g)
		for s := 0; s < n; s++ {
			cols := Im2Col(per[s], g)
			for pi := 0; pi < p; pi++ {
				for li := 0; li < l; li++ {
					got := rows.At(s*p+pi, li)
					want := cols.At(li, pi)
					if got != want {
						t.Fatalf("geom %+v sample %d patch %d elem %d: im2row %v vs im2col %v", g, s, pi, li, got, want)
					}
				}
			}
		}
	}
}

// TestRow2ImIsAdjoint verifies <Im2Row(x), R> == <x, Row2Im(R)> — the
// defining property of the backward scatter — and that Row2Im matches the
// per-sample Col2Im on transposed operands.
func TestRow2ImIsAdjoint(t *testing.T) {
	rng := xrand.New(42)
	g := ConvGeom{InC: 2, InH: 8, InW: 6, K: 3, Stride: 2, Pad: 1}
	const n = 2
	batch, per := batchOf(rng, n, g)
	p := g.OutH() * g.OutW()
	l := g.InC * g.K * g.K

	rows := New(n*p, l)
	Im2RowInto(rows, batch, g)
	r := New(n*p, l)
	rng.FillUniform(r.Data(), -1, 1)

	back := New(n, g.InC, g.InH, g.InW)
	Row2ImInto(back, r, g)

	lhs := rows.Dot(r)
	var rhs float64
	for i, v := range back.Data() {
		rhs += float64(v) * float64(batch.Data()[i])
	}
	if diff := lhs - rhs; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("adjoint mismatch: <Ax,y>=%v <x,Aty>=%v", lhs, rhs)
	}

	// Per-sample agreement with Col2Im: transpose sample s's patch rows into
	// column layout and scatter both ways.
	sampleLen := g.InC * g.InH * g.InW
	for s := 0; s < n; s++ {
		colsGrad := New(l, p)
		for pi := 0; pi < p; pi++ {
			for li := 0; li < l; li++ {
				colsGrad.Set(r.At(s*p+pi, li), li, pi)
			}
		}
		want := Col2Im(colsGrad, g)
		got := back.Data()[s*sampleLen : (s+1)*sampleLen]
		for i := range got {
			d := float64(got[i] - want.Data()[i])
			if d > 1e-5 || d < -1e-5 {
				t.Fatalf("sample %d: Row2Im diverges from Col2Im at %d: %v vs %v", s, i, got[i], want.Data()[i])
			}
		}
	}
	_ = per
}
