package tensor

import "testing"

// Kernel micro-benchmarks at the shapes the perception models actually
// produce; the CI perf-smoke job runs these once per PR with -benchmem so
// allocation regressions in the hot kernels surface immediately.

// BenchmarkMatMulConvForward is the im2col product of DistNet's middle
// convolution: (24 × 108) · (108 × 576).
func BenchmarkMatMulConvForward(b *testing.B) {
	a, x, dst := New(24, 108), New(108, 576), New(24, 576)
	fillSeq(a)
	fillSeq(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, x)
	}
}

// BenchmarkMatMulKMajorConvForward is the unified conv forward product at
// the single-frame conv2 shape — (256×108) patches against the (108×24)
// k-major weight matrix — on the dispatched SIMD lane kernel.
func BenchmarkMatMulKMajorConvForward(b *testing.B) {
	a, x, dst := New(256, 108), New(108, 24), New(256, 24)
	fillSeq(a)
	fillSeq(x)
	b.Logf("kernel: %s", KMajorKernel())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulKMajorInto(dst, a, x)
	}
}

// BenchmarkMatMulKMajorSerial and BenchmarkMatMulKMajorParallel are the
// perf gate's row-shard pair: the same batch-8 conv patch product
// (2048×108 · 108×24, past parallelMinWork) through the serial driver and
// through the dispatched path (row-sharded at GOMAXPROCS > 1). On a
// multi-core runner the gap between them is the row-shard win; on one
// core they should be within noise of each other (dispatch overhead only).
func BenchmarkMatMulKMajorSerial(b *testing.B) {
	a, x, dst := New(2048, 108), New(108, 24), New(2048, 24)
	fillSeq(a)
	fillSeq(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matMulKMajorSerial(dst.Data(), a.Data(), x.Data(), 2048, 108, 24)
	}
}

func BenchmarkMatMulKMajorParallel(b *testing.B) {
	a, x, dst := New(2048, 108), New(108, 24), New(2048, 24)
	fillSeq(a)
	fillSeq(x)
	b.Logf("kernel: %s", KMajorKernel())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulKMajorInto(dst, a, x)
	}
}

// BenchmarkMatMulKMajorGemv is the single-frame dense-head gemv (1×2048 ·
// 2048×48), the shape the assembly single-row tail exists for.
func BenchmarkMatMulKMajorGemv(b *testing.B) {
	a, x, dst := New(1, 2048), New(2048, 48), New(1, 48)
	fillSeq(a)
	fillSeq(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulKMajorInto(dst, a, x)
	}
}

// BenchmarkMatMulTransBGradW is the weight-gradient product dW = G·colsᵀ
// at the same layer's shape, consuming the columns untransposed.
func BenchmarkMatMulTransBGradW(b *testing.B) {
	g, cols, dst := New(24, 576), New(108, 576), New(24, 108)
	fillSeq(g)
	fillSeq(cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(dst, g, cols)
	}
}

// BenchmarkMatMulTall is a tall product (the dCols backward shape) that
// exercises the row fan-out.
func BenchmarkMatMulTall(b *testing.B) {
	a, x, dst := New(216, 24), New(24, 576), New(216, 576)
	fillSeq(a)
	fillSeq(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, x)
	}
}

// BenchmarkIm2ColInto unrolls a 3×64×64 frame with a 3×3 stride-2 kernel.
func BenchmarkIm2ColInto(b *testing.B) {
	g := ConvGeom{InC: 3, InH: 64, InW: 64, K: 3, Stride: 2, Pad: 1}
	x := New(3, 64, 64)
	fillSeq(x)
	dst := New(3*3*3, g.OutH()*g.OutW())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColInto(dst, x, g)
	}
}

// BenchmarkCol2ImInto scatters the same geometry back.
func BenchmarkCol2ImInto(b *testing.B) {
	g := ConvGeom{InC: 3, InH: 64, InW: 64, K: 3, Stride: 2, Pad: 1}
	cols := New(3*3*3, g.OutH()*g.OutW())
	fillSeq(cols)
	dst := New(3, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Col2ImInto(dst, cols, g)
	}
}

// BenchmarkTranspose2DInto transposes the largest weight matrix in the
// repo's models.
func BenchmarkTranspose2DInto(b *testing.B) {
	a, dst := New(432, 48), New(48, 432)
	fillSeq(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transpose2DInto(dst, a)
	}
}
