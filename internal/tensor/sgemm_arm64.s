//go:build arm64 && !noasm

#include "textflag.h"

// NEON 4-wide lane kernel for the k-major SGEMM. Each SIMD lane owns one
// output element and accumulates a[i][l]·bk[l][j] in strictly ascending l
// with a separate FMUL/FADD rounding per step, so results are bit-identical
// to the scalar and amd64 kernels. Rows run in blocks of 4 with a
// single-row tail, so any m ≥ 1 is handled entirely in assembly (m = 1 is
// the gemv shape of the single-frame Linear forward).
//
// The Go assembler has no mnemonics for the unfused vector FMUL/FADD
// (only the fused VFMLA, which performs a single rounding and would break
// the bit-identity contract), so those two instructions are emitted as
// WORD directives with fixed registers:
//
//	WORD $0x6E28DD4B  =  FMUL V11.4S, V10.4S, V8.4S   (V11 = V10 * V8)
//	WORD $0x4E2BD400  =  FADD V0.4S,  V0.4S,  V11.4S  (V0  += V11)
//	WORD $0x4E2BD421  =  FADD V1.4S,  V1.4S,  V11.4S
//	WORD $0x4E2BD442  =  FADD V2.4S,  V2.4S,  V11.4S
//	WORD $0x4E2BD463  =  FADD V3.4S,  V3.4S,  V11.4S
//
// (FMUL vector: 0x6E20DC00 | m<<16 | n<<5 | d; FADD vector:
// 0x4E20D400 | m<<16 | n<<5 | d — encodings verified by disassembly.)

// func sgemmNeon4cols(a, bk, c *float32, m, k, n int)
//
// c[i][0:4] = sum over l of a[i][l] * bk[l][0:4] for i in [0,m).
//
// Register layout:
//   R0 a row-block base        R1 bk base          R2 c row-block base
//   R3 remaining rows          R4 k
//   R5 bk/c row stride (n*4)   R6 a row stride (k*4)
//   R7-R10 the four current a row pointers
//   R11 current bk row pointer R12 l countdown     R13 c store pointer
//   V0-V3 accumulators (one per row)
//   V8 bk row                  V10 broadcast a     V11 product scratch
TEXT ·sgemmNeon4cols(SB), NOSPLIT, $0-48
	MOVD a+0(FP), R0
	MOVD bk+8(FP), R1
	MOVD c+16(FP), R2
	MOVD m+24(FP), R3
	MOVD k+32(FP), R4
	MOVD n+40(FP), R5
	LSL  $2, R5, R5        // n*4: bk and c row stride in bytes
	LSL  $2, R4, R6        // k*4: a row stride in bytes
	CBZ  R4, ndone4

nrows4:
	CMP  $4, R3
	BLT  ntail4
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	MOVD R0, R7            // a row 0
	ADD  R6, R7, R8        // a row 1
	ADD  R6<<1, R7, R9     // a row 2
	ADD  R6<<1, R8, R10    // a row 3
	MOVD R1, R11           // bk row 0
	MOVD R4, R12

nl4:
	VLD1  (R11), [V8.S4]   // bk[l][0:4]

	VLD1R (R7), [V10.S4]   // broadcast a[i+0][l]
	WORD  $0x6E28DD4B      // FMUL V11.4S, V10.4S, V8.4S
	WORD  $0x4E2BD400      // FADD V0.4S, V0.4S, V11.4S

	VLD1R (R8), [V10.S4]
	WORD  $0x6E28DD4B
	WORD  $0x4E2BD421      // FADD V1.4S, V1.4S, V11.4S

	VLD1R (R9), [V10.S4]
	WORD  $0x6E28DD4B
	WORD  $0x4E2BD442      // FADD V2.4S, V2.4S, V11.4S

	VLD1R (R10), [V10.S4]
	WORD  $0x6E28DD4B
	WORD  $0x4E2BD463      // FADD V3.4S, V3.4S, V11.4S

	ADD  $4, R7
	ADD  $4, R8
	ADD  $4, R9
	ADD  $4, R10
	ADD  R5, R11
	SUBS $1, R12, R12
	BNE  nl4

	MOVD R2, R13
	VST1 [V0.S4], (R13)
	ADD  R5, R13
	VST1 [V1.S4], (R13)
	ADD  R5, R13
	VST1 [V2.S4], (R13)
	ADD  R5, R13
	VST1 [V3.S4], (R13)

	ADD  R6<<2, R0, R0     // advance a four rows
	ADD  R5<<2, R2, R2     // advance c four rows
	SUB  $4, R3, R3
	B    nrows4

ntail4:
	CBZ  R3, ndone4
	VEOR V0.B16, V0.B16, V0.B16
	MOVD R0, R7
	MOVD R1, R11
	MOVD R4, R12

nt4l:
	VLD1  (R11), [V8.S4]
	VLD1R (R7), [V10.S4]
	WORD  $0x6E28DD4B      // FMUL V11.4S, V10.4S, V8.4S
	WORD  $0x4E2BD400      // FADD V0.4S, V0.4S, V11.4S
	ADD  $4, R7
	ADD  R5, R11
	SUBS $1, R12, R12
	BNE  nt4l

	VST1 [V0.S4], (R2)
	ADD  R6, R0, R0
	ADD  R5, R2, R2
	SUB  $1, R3, R3
	B    ntail4

ndone4:
	RET
