package tensor

import (
	"testing"

	"repro/internal/testenv"
)

// The destination-passing kernels are the foundation of the repo's
// allocation-free hot paths; these guards fail CI when a change
// reintroduces steady-state allocations. Thresholds are < 1 rather than
// == 0 so a rare GC clearing the pack pool mid-measurement doesn't flake.

func TestMatMulIntoSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	a, b, dst := New(16, 64), New(64, 96), New(16, 96)
	fillSeq(a)
	fillSeq(b)
	MatMulInto(dst, a, b) // warm the pack pool
	if avg := testing.AllocsPerRun(100, func() { MatMulInto(dst, a, b) }); avg >= 1 {
		t.Fatalf("MatMulInto allocates %.2f/op in steady state, want 0", avg)
	}
}

func TestMatMulTransBIntoSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	a, b, dst := New(16, 64), New(96, 64), New(16, 96)
	fillSeq(a)
	fillSeq(b)
	if avg := testing.AllocsPerRun(100, func() { MatMulTransBInto(dst, a, b) }); avg != 0 {
		t.Fatalf("MatMulTransBInto allocates %.2f/op, want 0", avg)
	}
}

func TestTranspose2DIntoAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	a, dst := New(48, 37), New(37, 48)
	fillSeq(a)
	if avg := testing.AllocsPerRun(100, func() { Transpose2DInto(dst, a) }); avg != 0 {
		t.Fatalf("Transpose2DInto allocates %.2f/op, want 0", avg)
	}
}

func TestIm2ColCol2ImIntoAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	g := ConvGeom{InC: 3, InH: 16, InW: 16, K: 3, Stride: 2, Pad: 1}
	x := New(3, 16, 16)
	fillSeq(x)
	cols := New(3*3*3, g.OutH()*g.OutW())
	if avg := testing.AllocsPerRun(100, func() { Im2ColInto(cols, x, g) }); avg != 0 {
		t.Fatalf("Im2ColInto allocates %.2f/op, want 0", avg)
	}
	dx := New(3, 16, 16)
	if avg := testing.AllocsPerRun(100, func() { Col2ImInto(dx, cols, g) }); avg != 0 {
		t.Fatalf("Col2ImInto allocates %.2f/op, want 0", avg)
	}
}

// TestIntoVariantsMatchAllocating pins the destination-passing kernels to
// their allocating counterparts bit-for-bit.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	a, b := New(17, 23), New(23, 31)
	fillSeq(a)
	fillSeq(b)
	want := MatMul(a, b)
	dst := New(17, 31)
	dst.Fill(99)
	MatMulInto(dst, a, b)
	for i, v := range dst.Data() {
		if v != want.Data()[i] {
			t.Fatalf("MatMulInto[%d] = %v, want %v", i, v, want.Data()[i])
		}
	}

	bt := Transpose2D(b)
	got := MatMulTransB(a, bt)
	for i, v := range got.Data() {
		if v != want.Data()[i] {
			t.Fatalf("MatMulTransB[%d] = %v, want %v", i, v, want.Data()[i])
		}
	}

	tr := New(31, 23)
	tr.Fill(99)
	Transpose2DInto(tr, b)
	for i, v := range tr.Data() {
		if v != bt.Data()[i] {
			t.Fatalf("Transpose2DInto[%d] = %v, want %v", i, v, bt.Data()[i])
		}
	}

	g := ConvGeom{InC: 2, InH: 9, InW: 7, K: 3, Stride: 2, Pad: 1}
	x := New(2, 9, 7)
	fillSeq(x)
	wantCols := Im2Col(x, g)
	cols := New(2*3*3, g.OutH()*g.OutW())
	cols.Fill(99) // stale garbage must be fully overwritten
	Im2ColInto(cols, x, g)
	for i, v := range cols.Data() {
		if v != wantCols.Data()[i] {
			t.Fatalf("Im2ColInto[%d] = %v, want %v", i, v, wantCols.Data()[i])
		}
	}

	wantIm := Col2Im(cols, g)
	im := New(2, 9, 7)
	im.Fill(99)
	Col2ImInto(im, cols, g)
	for i, v := range im.Data() {
		if v != wantIm.Data()[i] {
			t.Fatalf("Col2ImInto[%d] = %v, want %v", i, v, wantIm.Data()[i])
		}
	}
}

// TestMatMulTransBAgreesWithMatMul checks A·Bᵀ against A·B with an
// explicitly transposed operand across the kernel's blocking edges (odd
// rows, odd columns, tails shorter than the 2×4 register block).
func TestMatMulTransBAgreesWithMatMul(t *testing.T) {
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 6}, {8, 16, 9}, {33, 20, 130}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a, b := New(m, k), New(k, n)
		fillSeq(a)
		fillSeq(b)
		want := MatMul(a, b)
		got := MatMulTransB(a, Transpose2D(b))
		for i := range want.Data() {
			if got.Data()[i] != want.Data()[i] {
				t.Fatalf("shape %v: MatMulTransB[%d] = %v, want %v", s, i, got.Data()[i], want.Data()[i])
			}
		}
	}
}
