package tensor

import (
	"os"
	"strings"
	"testing"

	"repro/internal/xrand"
)

// TestKMajorKernelExpectedRung asserts KMajorKernel() reports a rung from
// the comma-separated WANT_KMAJOR_KERNEL environment variable, and skips
// when the variable is unset. The CI kernel-ladder job sets it per leg —
// "generic" under -tags noasm, "avx2,avx512" under GOAMD64=v3 (v3
// guarantees AVX2 but the runtime probe may still find AVX-512) — so a
// dispatch bug that silently drops to a lower rung fails the build
// instead of just running slower.
func TestKMajorKernelExpectedRung(t *testing.T) {
	want := os.Getenv("WANT_KMAJOR_KERNEL")
	if want == "" {
		t.Skipf("WANT_KMAJOR_KERNEL unset; dispatched kernel is %q", KMajorKernel())
	}
	got := KMajorKernel()
	for _, w := range strings.Split(want, ",") {
		if got == strings.TrimSpace(w) {
			return
		}
	}
	t.Fatalf("KMajorKernel() = %q, want one of %q", got, want)
}

// naiveKMajor is the reference: one ascending-l scalar dot per element,
// exactly the accumulation order every kernel in the package must honour.
func naiveKMajor(a, bk *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := bk.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for l := 0; l < k; l++ {
				s += a.At(i, l) * bk.At(l, j)
			}
			c.Set(s, i, j)
		}
	}
	return c
}

// TestMatMulKMajorBitIdentical pins the SIMD driver (assembly on amd64,
// pure Go elsewhere), the generic lane kernel and MatMul itself to the
// naive ascending-dot reference, across row/column tails and both tile
// widths.
func TestMatMulKMajorBitIdentical(t *testing.T) {
	rng := xrand.New(51)
	shapes := [][3]int{
		{4, 8, 8},    // exact 4x8 tile
		{8, 27, 12},  // conv1 shape: 8-block plus 4-block
		{12, 16, 24}, // multiple 8-blocks
		{5, 9, 11},   // row and column tails
		{3, 7, 4},    // rows below the tile height
		{16, 1, 8},   // k=1
		{1024, 27, 12},
		{8, 2048, 48},   // batched linear shape
		{1, 2048, 48},   // single-frame linear gemv (assembly single-row tail)
		{1, 48, 2048},   // its backward input-gradient shape
		{2, 5, 9},       // sub-block rows with a scalar column tail
		{1024, 108, 24}, // single-frame conv2 patch product
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := New(m, k)
		rng.FillUniform(a.Data(), -2, 2)
		bk := New(k, n)
		rng.FillUniform(bk.Data(), -2, 2)
		// Sprinkle exact zeros so zero-skip paths are exercised too.
		a.Data()[0] = 0
		bk.Data()[n/2] = 0

		want := naiveKMajor(a, bk)
		got := New(m, n)
		got.Fill(99)
		MatMulKMajorInto(got, a, bk)
		for i := range want.Data() {
			if got.Data()[i] != want.Data()[i] {
				t.Fatalf("m=%d k=%d n=%d: kmajor diverges at %d: %v vs %v", m, k, n, i, got.Data()[i], want.Data()[i])
			}
		}

		// The generic lane kernel must agree bit for bit with whatever the
		// driver used (on amd64, that cross-checks the assembly).
		gen := New(m, n)
		j := 0
		for ; j+8 <= n; j += 8 {
			kmajorColsGeneric(gen.Data(), a.Data(), bk.Data(), 0, m, j, 8, k, n)
		}
		for ; j+4 <= n; j += 4 {
			kmajorColsGeneric(gen.Data(), a.Data(), bk.Data(), 0, m, j, 4, k, n)
		}
		if j < n {
			kmajorScalar(gen.Data(), a.Data(), bk.Data(), 0, m, j, n, k, n)
		}
		for i := range want.Data() {
			if gen.Data()[i] != want.Data()[i] {
				t.Fatalf("m=%d k=%d n=%d: generic lane kernel diverges at %d", m, k, n, i)
			}
		}

		// And MatMul (the packed scalar kernel) must agree as well: the
		// kernels are interchangeable bit for bit.
		ref := MatMul(a, bk)
		for i := range want.Data() {
			if ref.Data()[i] != want.Data()[i] {
				t.Fatalf("m=%d k=%d n=%d: MatMul diverges from naive at %d", m, k, n, i)
			}
		}
	}
}

// TestMatMulKMajorIntoAllocs keeps the kernel allocation-free.
func TestMatMulKMajorIntoAllocs(t *testing.T) {
	rng := xrand.New(52)
	a := New(16, 27)
	rng.FillUniform(a.Data(), -1, 1)
	bk := New(27, 12)
	rng.FillUniform(bk.Data(), -1, 1)
	c := New(16, 12)
	if avg := testing.AllocsPerRun(50, func() { MatMulKMajorInto(c, a, bk) }); avg != 0 {
		t.Fatalf("MatMulKMajorInto allocates %.2f/op, want 0", avg)
	}
}
