//go:build amd64 && !noasm

#include "textflag.h"

// SSE2 lane kernels for the k-major SGEMM. Each SIMD lane owns one output
// element and accumulates a[i][l]·bk[l][j] in strictly ascending l with a
// separate MULPS/ADDPS rounding per step, so results are bit-identical to
// the scalar kernels. Rows run in blocks of 4 with a single-row tail, so
// any m ≥ 1 is handled entirely in assembly (m = 1 is the gemv shape of
// the single-frame Linear forward and the batched input-gradient head).

// func sgemm8cols(a, bk, c *float32, m, k, n int)
//
// c[i][0:8] = sum over l of a[i][l] * bk[l][0:8] for i in [0,m).
//
// Register layout:
//   SI  a row-block base          DX  bk base        DI  c row-block base
//   R8  remaining rows            R9  k
//   R11 a row stride (k*4 bytes)  R12 b/c row stride (n*4 bytes)
//   AX,BX,R13,R14  the four current a row pointers
//   R15 current bk row pointer    CX  l countdown
//   X0..X7 accumulators (row r cols j in X{2r} j<4, X{2r+1} j>=4)
//   X8,X9 bk row halves           X10 broadcast a   X11 product scratch
TEXT ·sgemm8cols(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ bk+8(FP), DX
	MOVQ c+16(FP), DI
	MOVQ m+24(FP), R8
	MOVQ k+32(FP), R9
	MOVQ n+40(FP), R12
	SHLQ $2, R12           // n*4: bk and c row stride in bytes
	MOVQ R9, R11
	SHLQ $2, R11           // k*4: a row stride in bytes
	TESTQ R9, R9
	JZ   done8

rows8:
	CMPQ R8, $4
	JL   tail8
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7
	MOVQ SI, AX            // a row 0
	LEAQ (SI)(R11*1), BX   // a row 1
	LEAQ (SI)(R11*2), R13  // a row 2
	LEAQ (BX)(R11*2), R14  // a row 3
	MOVQ DX, R15           // bk row 0
	MOVQ R9, CX

l8:
	MOVUPS (R15), X8       // bk[l][0:4]
	MOVUPS 16(R15), X9     // bk[l][4:8]

	MOVSS (AX), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X8, X11
	MULPS X10, X11
	ADDPS X11, X0
	MULPS X9, X10
	ADDPS X10, X1

	MOVSS (BX), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X8, X11
	MULPS X10, X11
	ADDPS X11, X2
	MULPS X9, X10
	ADDPS X10, X3

	MOVSS (R13), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X8, X11
	MULPS X10, X11
	ADDPS X11, X4
	MULPS X9, X10
	ADDPS X10, X5

	MOVSS (R14), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X8, X11
	MULPS X10, X11
	ADDPS X11, X6
	MULPS X9, X10
	ADDPS X10, X7

	ADDQ $4, AX
	ADDQ $4, BX
	ADDQ $4, R13
	ADDQ $4, R14
	ADDQ R12, R15
	DECQ CX
	JNZ  l8

	MOVQ DI, AX
	MOVUPS X0, (AX)
	MOVUPS X1, 16(AX)
	ADDQ R12, AX
	MOVUPS X2, (AX)
	MOVUPS X3, 16(AX)
	ADDQ R12, AX
	MOVUPS X4, (AX)
	MOVUPS X5, 16(AX)
	ADDQ R12, AX
	MOVUPS X6, (AX)
	MOVUPS X7, 16(AX)

	LEAQ (SI)(R11*4), SI
	LEAQ (DI)(R12*4), DI
	SUBQ $4, R8
	JMP  rows8

tail8:
	TESTQ R8, R8
	JZ   done8
	XORPS X0, X0
	XORPS X1, X1
	MOVQ SI, AX
	MOVQ DX, R15
	MOVQ R9, CX

t8l:
	MOVUPS (R15), X8
	MOVUPS 16(R15), X9
	MOVSS (AX), X10
	SHUFPS $0x00, X10, X10
	MOVAPS X8, X11
	MULPS X10, X11
	ADDPS X11, X0
	MULPS X9, X10
	ADDPS X10, X1
	ADDQ $4, AX
	ADDQ R12, R15
	DECQ CX
	JNZ  t8l

	MOVUPS X0, (DI)
	MOVUPS X1, 16(DI)
	ADDQ R11, SI
	ADDQ R12, DI
	DECQ R8
	JMP  tail8

done8:
	RET

// func sgemm4cols(a, bk, c *float32, m, k, n int)
//
// The 4-column variant: one accumulator register per row.
TEXT ·sgemm4cols(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ bk+8(FP), DX
	MOVQ c+16(FP), DI
	MOVQ m+24(FP), R8
	MOVQ k+32(FP), R9
	MOVQ n+40(FP), R12
	SHLQ $2, R12
	MOVQ R9, R11
	SHLQ $2, R11
	TESTQ R9, R9
	JZ   done4

rows4:
	CMPQ R8, $4
	JL   tail4
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	MOVQ SI, AX
	LEAQ (SI)(R11*1), BX
	LEAQ (SI)(R11*2), R13
	LEAQ (BX)(R11*2), R14
	MOVQ DX, R15
	MOVQ R9, CX

l4:
	MOVUPS (R15), X8

	MOVSS (AX), X10
	SHUFPS $0x00, X10, X10
	MULPS X8, X10
	ADDPS X10, X0

	MOVSS (BX), X10
	SHUFPS $0x00, X10, X10
	MULPS X8, X10
	ADDPS X10, X1

	MOVSS (R13), X10
	SHUFPS $0x00, X10, X10
	MULPS X8, X10
	ADDPS X10, X2

	MOVSS (R14), X10
	SHUFPS $0x00, X10, X10
	MULPS X8, X10
	ADDPS X10, X3

	ADDQ $4, AX
	ADDQ $4, BX
	ADDQ $4, R13
	ADDQ $4, R14
	ADDQ R12, R15
	DECQ CX
	JNZ  l4

	MOVQ DI, AX
	MOVUPS X0, (AX)
	ADDQ R12, AX
	MOVUPS X1, (AX)
	ADDQ R12, AX
	MOVUPS X2, (AX)
	ADDQ R12, AX
	MOVUPS X3, (AX)

	LEAQ (SI)(R11*4), SI
	LEAQ (DI)(R12*4), DI
	SUBQ $4, R8
	JMP  rows4

tail4:
	TESTQ R8, R8
	JZ   done4
	XORPS X0, X0
	MOVQ SI, AX
	MOVQ DX, R15
	MOVQ R9, CX

t4l:
	MOVUPS (R15), X8
	MOVSS (AX), X10
	SHUFPS $0x00, X10, X10
	MULPS X8, X10
	ADDPS X10, X0
	ADDQ $4, AX
	ADDQ R12, R15
	DECQ CX
	JNZ  t4l

	MOVUPS X0, (DI)
	ADDQ R11, SI
	ADDQ R12, DI
	DECQ R8
	JMP  tail4

done4:
	RET

// func sgemm8colsAVX2(a, bk, c *float32, m, k, n int)
//
// The AVX2 8-wide variant of sgemm8cols: one YMM accumulator per row covers
// the whole 8-column block, halving the per-l instruction count. VMULPS and
// VADDPS stay separate (no FMA) so every lane performs the same two float32
// roundings per step as the SSE2 and scalar kernels — bit-identical output.
// Only reachable after the CPUID gate in sgemm_amd64.go confirms AVX2+OS
// support.
TEXT ·sgemm8colsAVX2(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ bk+8(FP), DX
	MOVQ c+16(FP), DI
	MOVQ m+24(FP), R8
	MOVQ k+32(FP), R9
	MOVQ n+40(FP), R12
	SHLQ $2, R12
	MOVQ R9, R11
	SHLQ $2, R11
	TESTQ R9, R9
	JZ   vdone8

vrows8:
	CMPQ R8, $4
	JL   vtail8
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ SI, AX
	LEAQ (SI)(R11*1), BX
	LEAQ (SI)(R11*2), R13
	LEAQ (BX)(R11*2), R14
	MOVQ DX, R15
	MOVQ R9, CX

vl8:
	VMOVUPS (R15), Y8      // bk[l][0:8]

	VBROADCASTSS (AX), Y10
	VMULPS Y8, Y10, Y10
	VADDPS Y10, Y0, Y0

	VBROADCASTSS (BX), Y10
	VMULPS Y8, Y10, Y10
	VADDPS Y10, Y1, Y1

	VBROADCASTSS (R13), Y10
	VMULPS Y8, Y10, Y10
	VADDPS Y10, Y2, Y2

	VBROADCASTSS (R14), Y10
	VMULPS Y8, Y10, Y10
	VADDPS Y10, Y3, Y3

	ADDQ $4, AX
	ADDQ $4, BX
	ADDQ $4, R13
	ADDQ $4, R14
	ADDQ R12, R15
	DECQ CX
	JNZ  vl8

	MOVQ DI, AX
	VMOVUPS Y0, (AX)
	ADDQ R12, AX
	VMOVUPS Y1, (AX)
	ADDQ R12, AX
	VMOVUPS Y2, (AX)
	ADDQ R12, AX
	VMOVUPS Y3, (AX)

	LEAQ (SI)(R11*4), SI
	LEAQ (DI)(R12*4), DI
	SUBQ $4, R8
	JMP  vrows8

vtail8:
	TESTQ R8, R8
	JZ   vdone8
	VXORPS Y0, Y0, Y0
	MOVQ SI, AX
	MOVQ DX, R15
	MOVQ R9, CX

vt8l:
	VMOVUPS (R15), Y8
	VBROADCASTSS (AX), Y10
	VMULPS Y8, Y10, Y10
	VADDPS Y10, Y0, Y0
	ADDQ $4, AX
	ADDQ R12, R15
	DECQ CX
	JNZ  vt8l

	VMOVUPS Y0, (DI)
	ADDQ R11, SI
	ADDQ R12, DI
	DECQ R8
	JMP  vtail8

vdone8:
	VZEROUPPER
	RET

// func sgemm16colsAVX512(a, bk, c *float32, m, k, n int)
//
// The AVX-512 16-wide variant: one ZMM accumulator per row covers a whole
// 16-column block, halving the per-l instruction count again over AVX2.
// VMULPS and VADDPS stay separate (no FMA) so every lane performs the same
// two float32 roundings per step as every other rung — bit-identical
// output. Accumulators are zeroed with VPXORQ (AVX512F) rather than
// VXORPS on ZMM (which would need only AVX512DQ, but F suffices here).
// Only reachable after the hasAVX512 gate in sgemm_amd64.go confirms the
// v4 feature set and OS ZMM state support.
TEXT ·sgemm16colsAVX512(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ bk+8(FP), DX
	MOVQ c+16(FP), DI
	MOVQ m+24(FP), R8
	MOVQ k+32(FP), R9
	MOVQ n+40(FP), R12
	SHLQ $2, R12           // n*4: bk and c row stride in bytes
	MOVQ R9, R11
	SHLQ $2, R11           // k*4: a row stride in bytes
	TESTQ R9, R9
	JZ   zdone16

zrows16:
	CMPQ R8, $4
	JL   ztail16
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	MOVQ SI, AX            // a row 0
	LEAQ (SI)(R11*1), BX   // a row 1
	LEAQ (SI)(R11*2), R13  // a row 2
	LEAQ (BX)(R11*2), R14  // a row 3
	MOVQ DX, R15           // bk row 0
	MOVQ R9, CX

zl16:
	VMOVUPS (R15), Z8      // bk[l][0:16]

	VBROADCASTSS (AX), Z10
	VMULPS Z8, Z10, Z10
	VADDPS Z10, Z0, Z0

	VBROADCASTSS (BX), Z10
	VMULPS Z8, Z10, Z10
	VADDPS Z10, Z1, Z1

	VBROADCASTSS (R13), Z10
	VMULPS Z8, Z10, Z10
	VADDPS Z10, Z2, Z2

	VBROADCASTSS (R14), Z10
	VMULPS Z8, Z10, Z10
	VADDPS Z10, Z3, Z3

	ADDQ $4, AX
	ADDQ $4, BX
	ADDQ $4, R13
	ADDQ $4, R14
	ADDQ R12, R15
	DECQ CX
	JNZ  zl16

	MOVQ DI, AX
	VMOVUPS Z0, (AX)
	ADDQ R12, AX
	VMOVUPS Z1, (AX)
	ADDQ R12, AX
	VMOVUPS Z2, (AX)
	ADDQ R12, AX
	VMOVUPS Z3, (AX)

	LEAQ (SI)(R11*4), SI
	LEAQ (DI)(R12*4), DI
	SUBQ $4, R8
	JMP  zrows16

ztail16:
	TESTQ R8, R8
	JZ   zdone16
	VPXORQ Z0, Z0, Z0
	MOVQ SI, AX
	MOVQ DX, R15
	MOVQ R9, CX

zt16l:
	VMOVUPS (R15), Z8
	VBROADCASTSS (AX), Z10
	VMULPS Z8, Z10, Z10
	VADDPS Z10, Z0, Z0
	ADDQ $4, AX
	ADDQ R12, R15
	DECQ CX
	JNZ  zt16l

	VMOVUPS Z0, (DI)
	ADDQ R11, SI
	ADDQ R12, DI
	DECQ R8
	JMP  ztail16

zdone16:
	VZEROUPPER
	RET
