package tensor

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/testenv"
	"repro/internal/xrand"
)

// sameBits fails the test at the first element whose float32 bit pattern
// differs — the parallel contract is byte equality, not approximate
// equality.
func sameBits(t *testing.T, what string, got, want []float32) {
	t.Helper()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: bits diverge at %d: %v (%#x) vs %v (%#x)",
				what, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

// parallelBoundaryShapes are the row-split edge cases: m one row below and
// above the work threshold (k·n = 648, so the gate flips between m=202
// and m=203), m far past it and not divisible by any swept worker count,
// the minimal two-row parallel shape, and the m=1 gemv that must stay
// serial no matter how large k·n gets.
var parallelBoundaryShapes = [][3]int{
	{202, 27, 24},  // just below parallelMinWork: serial
	{203, 27, 24},  // just above: parallel at GOMAXPROCS > 1
	{1000, 27, 24}, // not divisible by 2, 4 or 16 workers
	{2048, 108, 24},
	{2, 2048, 64}, // minimal parallel m
	{1, 4096, 64}, // gemv: m = 1 stays serial by construction
}

// TestMatMulKMajorParallelBitIdentical sweeps GOMAXPROCS ∈ {1,2,4,16}
// over the row-split boundary shapes and asserts the dispatched product
// is byte-identical to the serial lane-kernel driver: parallelism is
// dispatch only, never numerics.
func TestMatMulKMajorParallelBitIdentical(t *testing.T) {
	rng := xrand.New(83)
	for _, s := range parallelBoundaryShapes {
		m, k, n := s[0], s[1], s[2]
		a := New(m, k)
		rng.FillUniform(a.Data(), -2, 2)
		bk := New(k, n)
		rng.FillUniform(bk.Data(), -2, 2)

		want := New(m, n)
		matMulKMajorSerial(want.Data(), a.Data(), bk.Data(), m, k, n)

		for _, procs := range []int{1, 2, 4, 16} {
			old := runtime.GOMAXPROCS(procs)
			got := New(m, n)
			got.Fill(99) // stale garbage must be fully overwritten
			MatMulKMajorInto(got, a, bk)
			runtime.GOMAXPROCS(old)
			sameBits(t, "GOMAXPROCS="+itoa(procs)+" shape "+itoa(m)+"x"+itoa(k)+"x"+itoa(n),
				got.Data(), want.Data())
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestMatMulKMajorParallelExplicitWorkers drives the shard driver directly
// at worker counts the GOMAXPROCS gate would never pick — more workers
// than rows, row counts not divisible by the worker count, a single row —
// so the chunk arithmetic is pinned independently of the dispatch gate.
func TestMatMulKMajorParallelExplicitWorkers(t *testing.T) {
	rng := xrand.New(84)
	shapes := [][3]int{{1, 7, 9}, {2, 5, 17}, {7, 11, 13}, {33, 9, 20}, {64, 27, 24}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := New(m, k)
		rng.FillUniform(a.Data(), -2, 2)
		bk := New(k, n)
		rng.FillUniform(bk.Data(), -2, 2)

		want := New(m, n)
		matMulKMajorSerial(want.Data(), a.Data(), bk.Data(), m, k, n)

		for _, workers := range []int{1, 2, 3, 5, 16, m, m + 5} {
			got := New(m, n)
			got.Fill(99)
			matMulKMajorParallel(got.Data(), a.Data(), bk.Data(), m, k, n, workers)
			sameBits(t, "workers="+itoa(workers)+" m="+itoa(m), got.Data(), want.Data())
		}
	}
}

// TestMatMulKMajorConcurrentCallers hammers the persistent pool from many
// goroutines at once on a shape past the parallel threshold — the exact
// load profile of the matrix runner's per-worker models, whose conv
// products all funnel through MatMulKMajorInto. Under -race this
// certifies the pool tasks share no state beyond their disjoint output
// rows.
func TestMatMulKMajorConcurrentCallers(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	rng := xrand.New(85)
	const m, k, n = 512, 27, 24
	a := New(m, k)
	rng.FillUniform(a.Data(), -2, 2)
	bk := New(k, n)
	rng.FillUniform(bk.Data(), -2, 2)
	want := New(m, n)
	matMulKMajorSerial(want.Data(), a.Data(), bk.Data(), m, k, n)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := New(m, n)
			for rep := 0; rep < 4; rep++ {
				got.Fill(99)
				MatMulKMajorInto(got, a, bk)
				for i := range want.Data() {
					if math.Float32bits(got.Data()[i]) != math.Float32bits(want.Data()[i]) {
						t.Errorf("concurrent parallel GEMM diverged at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestMatMulKMajorParallelSteadyStateAllocs pins the parallel path to zero
// steady-state allocations once the pool is warm: tasks travel by value
// through the channel and the WaitGroups are recycled, so the batched
// conv products stay allocation-free even when sharded.
func TestMatMulKMajorParallelSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	rng := xrand.New(86)
	const m, k, n = 512, 27, 24 // past parallelMinWork: the sharded path
	a := New(m, k)
	rng.FillUniform(a.Data(), -1, 1)
	bk := New(k, n)
	rng.FillUniform(bk.Data(), -1, 1)
	c := New(m, n)
	MatMulKMajorInto(c, a, bk) // warm the pool and the WaitGroup cache
	if avg := testing.AllocsPerRun(100, func() { MatMulKMajorInto(c, a, bk) }); avg >= 1 {
		t.Fatalf("parallel MatMulKMajorInto allocates %.2f/op in steady state, want 0", avg)
	}
}
