//go:build !amd64

package tensor

// useSGEMM is false off amd64: MatMulKMajorInto runs the pure-Go lane
// kernel, which computes identical bits.
const useSGEMM = false

// The stubs keep the driver compiling; they are unreachable behind
// useSGEMM.

func sgemm8cols(a, bk, c *float32, m, k, n int) {
	panic("tensor: sgemm8cols without SIMD support")
}

func sgemm4cols(a, bk, c *float32, m, k, n int) {
	panic("tensor: sgemm4cols without SIMD support")
}
