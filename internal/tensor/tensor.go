// Package tensor implements the dense float32 tensor used by the neural
// network stack. Tensors are row-major and mutable; operations either write
// into the receiver, into a destination tensor, or return a fresh tensor —
// each method documents which. The package is deliberately small: the models
// in this repository only need elementwise algebra, matrix multiplication,
// im2col-based convolution support and a handful of reductions.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 array with an explicit shape.
// The zero value is an empty tensor; use New or helpers to construct one.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics on a non-positive dimension, since a malformed shape is a
// programming error rather than a runtime condition.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape without copying.
// The caller must not alias data elsewhere unless that sharing is intended.
// Like New it panics on a non-positive dimension: two negative dimensions
// would otherwise multiply to a plausible element count and produce a
// tensor whose shape no indexing code can use.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, data has %d", shape, n, len(data)))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Shape returns the tensor's dimensions. The returned slice is a copy.
func (t *Tensor) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view over the same storage with a new shape.
// The element count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes element count", t.shape, shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// ShapeEq reports whether the tensor's shape equals dims. It allocates
// nothing, which lets shape checks sit on allocation-free hot paths.
func (t *Tensor) ShapeEq(dims ...int) bool {
	if len(t.shape) != len(dims) {
		return false
	}
	for i, d := range dims {
		if t.shape[i] != d {
			return false
		}
	}
	return true
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) assertSame(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, o.shape))
	}
}

// Zero sets all elements to 0 in place.
func (t *Tensor) Zero() {
	clear(t.data)
}

// Fill sets all elements to v in place.
func (t *Tensor) Fill(v float32) {
	if v == 0 { //advlint:floatcmp-ok exact-zero fast path: clear writes the same bits
		clear(t.data)
		return
	}
	for i := range t.data {
		t.data[i] = v
	}
}

// AddInPlace adds o elementwise into t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.assertSame(o, "add")
	for i := range t.data {
		t.data[i] += o.data[i]
	}
	return t
}

// SubInPlace subtracts o elementwise from t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	t.assertSame(o, "sub")
	for i := range t.data {
		t.data[i] -= o.data[i]
	}
	return t
}

// MulInPlace multiplies t by o elementwise (Hadamard product).
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	t.assertSame(o, "mul")
	for i := range t.data {
		t.data[i] *= o.data[i]
	}
	return t
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float32) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AddScaledInPlace performs t += s*o, the axpy primitive used by optimizers.
func (t *Tensor) AddScaledInPlace(o *Tensor, s float32) *Tensor {
	t.assertSame(o, "addScaled")
	for i := range t.data {
		t.data[i] += s * o.data[i]
	}
	return t
}

// Add returns t + o as a new tensor.
func (t *Tensor) Add(o *Tensor) *Tensor { return t.Clone().AddInPlace(o) }

// Sub returns t - o as a new tensor.
func (t *Tensor) Sub(o *Tensor) *Tensor { return t.Clone().SubInPlace(o) }

// Mul returns the elementwise product as a new tensor.
func (t *Tensor) Mul(o *Tensor) *Tensor { return t.Clone().MulInPlace(o) }

// Scale returns s*t as a new tensor.
func (t *Tensor) Scale(s float32) *Tensor { return t.Clone().ScaleInPlace(s) }

// ClampInPlace clips every element to [lo, hi].
func (t *Tensor) ClampInPlace(lo, hi float32) *Tensor {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
	return t
}

// SignInPlace replaces each element with its sign (-1, 0, +1).
func (t *Tensor) SignInPlace() *Tensor {
	for i, v := range t.data {
		switch {
		case v > 0:
			t.data[i] = 1
		case v < 0:
			t.data[i] = -1
		default:
			t.data[i] = 0
		}
	}
	return t
}

// Sum returns the sum of all elements (accumulated in float64 for accuracy).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the largest element. It panics on an empty tensor.
func (t *Tensor) Max() float32 {
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest element. It panics on an empty tensor.
func (t *Tensor) Min() float32 {
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index (into flattened storage) of the largest element.
func (t *Tensor) ArgMax() int {
	best, bi := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	t.assertSame(o, "dot")
	var s float64
	for i := range t.data {
		s += float64(t.data[i]) * float64(o.data[i])
	}
	return s
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 { return math.Sqrt(t.Dot(t)) }

// L1Norm returns the sum of absolute values.
func (t *Tensor) L1Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += math.Abs(float64(v))
	}
	return s
}

// LInfNorm returns the maximum absolute value.
func (t *Tensor) LInfNorm() float64 {
	var m float64
	for _, v := range t.data {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	return m
}

// String implements fmt.Stringer with a compact summary.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(n=%d, mean=%.4g)", t.shape, len(t.data), t.Mean())
}
