package tensor

import (
	"runtime"
	"sync"
)

// This file is the package's single source of parallelism: the tuning
// constants every fan-out path gates on, the persistent worker pool they
// all dispatch over, and the row-shard driver for the unified k-major
// GEMM. Keeping them together means the legacy MatMul heuristics and the
// k-major GEMM threshold cannot drift apart, and every parallel kernel
// amortises goroutine startup over the same long-lived workers.
//
// Parallelism here is strictly a dispatch concern, never a numeric one:
// workers own disjoint contiguous row (or column) ranges of the output and
// every output element is still one ascending-k accumulation with per-step
// float32 rounding, so results are bit-identical at any GOMAXPROCS and any
// shard count. Tests sweep GOMAXPROCS ∈ {1,2,4,16} over the split
// boundaries to pin this.

// parallelThreshold is the number of result rows below which the legacy
// MatMul/MatMulTransB kernels run single-threaded; fan-out dispatch costs
// more than it saves on tiny matrices (the common case for the small heads
// in this repository).
const parallelThreshold = 32

// parallelMinWork is the m·k·n product below which every parallel path in
// the package — the k-major GEMM row shards and the legacy column splits —
// stays serial. One constant, one tuning decision: small and gemv-shaped
// products (the single-frame dense heads) never pay dispatch overhead,
// while the batched conv patch products (m in the thousands) shard across
// cores. Changing this value changes dispatch only, never bits.
const parallelMinWork = 1 << 17

// poolTask is one unit of work for the persistent pool: either a generic
// range closure (the legacy parallelRanges path) or, when fn is nil, a
// row shard of the k-major GEMM described by the remaining fields. The
// struct travels by value through the channel so steady-state dispatch
// allocates nothing.
type poolTask struct {
	fn       func(lo, hi int)
	c, a, bk []float32
	lo, hi   int
	k, n     int
	wg       *sync.WaitGroup
}

func (t poolTask) run() {
	if t.fn != nil {
		t.fn(t.lo, t.hi)
	} else {
		matMulKMajorRows(t.c, t.a, t.bk, t.lo, t.hi, t.k, t.n)
	}
	t.wg.Done()
}

// The persistent pool: started lazily on the first parallel dispatch and
// kept for the life of the process, so the ~thousands of GEMM calls in a
// run reuse the same workers instead of spawning goroutines per call.
// The worker count is fixed at NumCPU (floor 4 so shard queues still
// interleave on small machines); the Go scheduler caps actual parallelism
// at GOMAXPROCS. Shard *counts* follow GOMAXPROCS at call time, but since
// shards are numerically independent the pool size is invisible in the
// results.
var (
	poolOnce sync.Once
	poolCh   chan poolTask
)

// wgPool recycles the WaitGroups that tie a dispatch to its shards, so a
// parallel call allocates nothing in the steady state.
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

func startPool() {
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	poolCh = make(chan poolTask, 4*workers)
	for i := 0; i < workers; i++ {
		go func() {
			for t := range poolCh {
				t.run()
			}
		}()
	}
}

// parallelRanges splits [0, n) into one contiguous chunk per worker and
// runs fn on each chunk concurrently over the persistent pool. The caller
// computes the final chunk inline (it would otherwise idle in Wait), and
// pool workers never re-submit work, so nested dispatch cannot deadlock.
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	per := (n + workers - 1) / workers
	if workers <= 1 || per >= n {
		fn(0, n)
		return
	}
	poolOnce.Do(startPool)
	wg := wgPool.Get().(*sync.WaitGroup)
	lo := 0
	for ; lo+per < n; lo += per {
		wg.Add(1)
		poolCh <- poolTask{fn: fn, lo: lo, hi: lo + per, wg: wg}
	}
	fn(lo, n)
	wg.Wait()
	wgPool.Put(wg)
}

// matMulKMajorParallel row-shards dst = A·B_k across the pool: workers
// contiguous row ranges, each computed by the same serial lane-kernel
// driver restricted to its rows. Every lane still accumulates strictly
// ascending k with per-step rounding, so the split is invisible in the
// bits. The caller runs the last shard inline and allocates nothing once
// the pool is warm.
func matMulKMajorParallel(c, a, bk []float32, m, k, n, workers int) {
	if workers > m {
		workers = m
	}
	per := (m + workers - 1) / workers
	if workers <= 1 || per >= m {
		matMulKMajorSerial(c, a, bk, m, k, n)
		return
	}
	poolOnce.Do(startPool)
	wg := wgPool.Get().(*sync.WaitGroup)
	lo := 0
	for ; lo+per < m; lo += per {
		wg.Add(1)
		poolCh <- poolTask{c: c, a: a, bk: bk, lo: lo, hi: lo + per, k: k, n: n, wg: wg}
	}
	matMulKMajorRows(c, a, bk, lo, m, k, n)
	wg.Wait()
	wgPool.Put(wg)
}

// matMulKMajorRows computes rows [lo, hi) of the product: the same serial
// driver on row-offset views of A and C.
func matMulKMajorRows(c, a, bk []float32, lo, hi, k, n int) {
	matMulKMajorSerial(c[lo*n:], a[lo*k:], bk, hi-lo, k, n)
}
