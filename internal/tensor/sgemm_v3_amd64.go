//go:build amd64.v3 && !amd64.v4 && !noasm

package tensor

// compileTimeAVX2 is true when the binary is compiled with GOAMD64=v3: the
// v3 microarchitecture level guarantees AVX2, so the runtime CPUID probe
// for it is skipped entirely. AVX-512 is not part of v3 and is still
// probed at init (see hasAVX512).
const (
	compileTimeAVX2   = true
	compileTimeAVX512 = false
)
