//go:build amd64.v3 && !noasm

package tensor

// compileTimeAVX2 is true when the binary is compiled with GOAMD64=v3 or
// higher: the v3 microarchitecture level guarantees AVX2, so the runtime
// CPUID probe is skipped entirely.
const compileTimeAVX2 = true
