package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randTensor(rng *xrand.RNG, shape ...int) *Tensor {
	t := New(shape...)
	rng.FillNormal(t.Data(), 0, 1)
	return t
}

func TestNewShapeAndLen(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		want  int
	}{
		{"vector", []int{7}, 7},
		{"matrix", []int{3, 4}, 12},
		{"chw", []int{3, 8, 8}, 192},
		{"rank4", []int{2, 3, 4, 5}, 120},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := New(tt.shape...)
			if got := x.Len(); got != tt.want {
				t.Fatalf("Len() = %d, want %d", got, tt.want)
			}
			if got := x.Rank(); got != len(tt.shape) {
				t.Fatalf("Rank() = %d, want %d", got, len(tt.shape))
			}
			for i, d := range x.Shape() {
				if d != tt.shape[i] {
					t.Fatalf("Shape()[%d] = %d, want %d", i, d, tt.shape[i])
				}
			}
		})
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(3, 0) should panic")
		}
	}()
	New(3, 0)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(42, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 42 {
		t.Fatalf("At = %v, want 42", got)
	}
	// Row-major layout: offset of (1,2,3) = (1*3+2)*4+3 = 23.
	if got := x.Data()[23]; got != 42 {
		t.Fatalf("flat[23] = %v, want 42", got)
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds At should panic")
		}
	}()
	x.At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	x := New(4)
	x.Fill(1)
	c := x.Clone()
	c.Data()[0] = 9
	if x.Data()[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := New(2, 6)
	v := x.Reshape(3, 4)
	v.Data()[0] = 5
	if x.Data()[0] != 5 {
		t.Fatal("Reshape must view the same storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape should panic")
		}
	}()
	x.Reshape(5, 5)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if got := a.Add(b).Data(); got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a).Data(); got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Mul(b).Data(); got[1] != 10 {
		t.Fatalf("Mul = %v", got)
	}
	if got := a.Scale(2).Data(); got[2] != 6 {
		t.Fatalf("Scale = %v", got)
	}
	c := a.Clone()
	c.AddScaledInPlace(b, -1)
	if c.Data()[0] != -3 {
		t.Fatalf("AddScaled = %v", c.Data())
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := New(3)
	b := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes should panic")
		}
	}()
	a.Add(b)
}

func TestClampSignNorms(t *testing.T) {
	x := FromSlice([]float32{-3, -0.5, 0, 0.5, 3}, 5)
	c := x.Clone().ClampInPlace(-1, 1)
	want := []float32{-1, -0.5, 0, 0.5, 1}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("Clamp[%d] = %v, want %v", i, v, want[i])
		}
	}
	s := x.Clone().SignInPlace()
	wantS := []float32{-1, -1, 0, 1, 1}
	for i, v := range s.Data() {
		if v != wantS[i] {
			t.Fatalf("Sign[%d] = %v, want %v", i, v, wantS[i])
		}
	}
	if got := x.L1Norm(); !almostEq(got, 7, 1e-6) {
		t.Fatalf("L1 = %v", got)
	}
	if got := x.LInfNorm(); !almostEq(got, 3, 1e-6) {
		t.Fatalf("LInf = %v", got)
	}
	if got := x.L2Norm(); !almostEq(got, math.Sqrt(9+0.25+0.25+9), 1e-5) {
		t.Fatalf("L2 = %v", got)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{1, -2, 3, 0}, 4)
	if got := x.Sum(); !almostEq(got, 2, 1e-9) {
		t.Fatalf("Sum = %v", got)
	}
	if got := x.Mean(); !almostEq(got, 0.5, 1e-9) {
		t.Fatalf("Mean = %v", got)
	}
	if got := x.Max(); got != 3 {
		t.Fatalf("Max = %v", got)
	}
	if got := x.Min(); got != -2 {
		t.Fatalf("Min = %v", got)
	}
	if got := x.ArgMax(); got != 2 {
		t.Fatalf("ArgMax = %v", got)
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := xrand.New(1)
	// Big enough to trigger the parallel path.
	a := randTensor(rng, 64, 33)
	b := randTensor(rng, 33, 17)
	c := MatMul(a, b)
	// Serial reference.
	ref := New(64, 17)
	for i := 0; i < 64; i++ {
		for j := 0; j < 17; j++ {
			var s float64
			for k := 0; k < 33; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			ref.Set(float32(s), i, j)
		}
	}
	for i := range c.Data() {
		if !almostEq(float64(c.Data()[i]), float64(ref.Data()[i]), 1e-3) {
			t.Fatalf("parallel MatMul diverges at %d: %v vs %v", i, c.Data()[i], ref.Data()[i])
		}
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose2D(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("transpose shape %v", at.Shape())
	}
	if at.At(2, 1) != a.At(1, 2) {
		t.Fatal("transpose values wrong")
	}
}

// Property: matmul distributes over addition — A(B+C) == AB + AC.
func TestMatMulDistributiveProperty(t *testing.T) {
	rng := xrand.New(7)
	f := func(seed int64) bool {
		r := xrand.New(seed ^ rng.Int63())
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		c := randTensor(r, k, n)
		left := MatMul(a, b.Add(c))
		right := MatMul(a, b).Add(MatMul(a, c))
		for i := range left.Data() {
			if !almostEq(float64(left.Data()[i]), float64(right.Data()[i]), 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution and (AB)ᵀ == BᵀAᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		lhs := Transpose2D(MatMul(a, b))
		rhs := MatMul(Transpose2D(b), Transpose2D(a))
		for i := range lhs.Data() {
			if !almostEq(float64(lhs.Data()[i]), float64(rhs.Data()[i]), 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: dot(x, x) == L2Norm(x)².
func TestDotNormProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		x := randTensor(r, 1+r.Intn(32))
		return almostEq(x.Dot(x), x.L2Norm()*x.L2Norm(), 1e-3*(1+x.Dot(x)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// A 1x1 kernel with stride 1 and no padding must reproduce the input.
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	g := ConvGeom{InC: 1, InH: 2, InW: 2, K: 1, Stride: 1, Pad: 0}
	cols := Im2Col(x, g)
	if cols.Dim(0) != 1 || cols.Dim(1) != 4 {
		t.Fatalf("cols shape %v", cols.Shape())
	}
	for i, v := range cols.Data() {
		if v != x.Data()[i] {
			t.Fatalf("identity im2col mismatch at %d", i)
		}
	}
}

func TestIm2ColKnownWindow(t *testing.T) {
	// 3x3 input, 2x2 kernel, stride 1: output is 2x2 = 4 columns.
	x := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	g := ConvGeom{InC: 1, InH: 3, InW: 3, K: 2, Stride: 1, Pad: 0}
	cols := Im2Col(x, g)
	// Row 0 of cols holds the top-left tap of each window: 1,2,4,5.
	want := []float32{1, 2, 4, 5}
	for i, v := range cols.Data()[:4] {
		if v != want[i] {
			t.Fatalf("cols row0[%d] = %v, want %v", i, v, want[i])
		}
	}
	// Last row holds the bottom-right taps: 5,6,8,9.
	last := cols.Data()[3*4:]
	wantLast := []float32{5, 6, 8, 9}
	for i, v := range last {
		if v != wantLast[i] {
			t.Fatalf("cols row3[%d] = %v, want %v", i, v, wantLast[i])
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	g := ConvGeom{InC: 1, InH: 2, InW: 2, K: 3, Stride: 1, Pad: 1}
	if g.OutH() != 2 || g.OutW() != 2 {
		t.Fatalf("geom out %dx%d", g.OutH(), g.OutW())
	}
	cols := Im2Col(x, g)
	// Top-left kernel tap of the first window reads padding => 0.
	if cols.At(0, 0) != 0 {
		t.Fatalf("padded tap should be 0, got %v", cols.At(0, 0))
	}
	// Center tap (ky=1,kx=1 => row 4) of first window is x[0,0]=1.
	if cols.At(4, 0) != 1 {
		t.Fatalf("center tap = %v, want 1", cols.At(4, 0))
	}
}

// Property: Col2Im is the exact adjoint of Im2Col:
// <Im2Col(x), y> == <x, Col2Im(y)> for all x, y.
func TestIm2ColAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		g := ConvGeom{
			InC: 1 + r.Intn(3), InH: 4 + r.Intn(5), InW: 4 + r.Intn(5),
			K: 1 + r.Intn(3), Stride: 1 + r.Intn(2), Pad: r.Intn(2),
		}
		if g.Validate() != nil {
			return true // skip degenerate geometry
		}
		x := randTensor(r, g.InC, g.InH, g.InW)
		cols := Im2Col(x, g)
		y := randTensor(r, cols.Dim(0), cols.Dim(1))
		lhs := cols.Dot(y)
		rhs := x.Dot(Col2Im(y, g))
		return almostEq(lhs, rhs, 1e-2*(1+math.Abs(lhs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConvGeomValidate(t *testing.T) {
	tests := []struct {
		name    string
		g       ConvGeom
		wantErr bool
	}{
		{"ok", ConvGeom{InC: 3, InH: 8, InW: 8, K: 3, Stride: 1, Pad: 1}, false},
		{"zero channel", ConvGeom{InC: 0, InH: 8, InW: 8, K: 3, Stride: 1}, true},
		{"kernel too big", ConvGeom{InC: 1, InH: 2, InW: 2, K: 5, Stride: 1}, true},
		{"zero stride", ConvGeom{InC: 1, InH: 8, InW: 8, K: 3, Stride: 0}, true},
		{"negative pad", ConvGeom{InC: 1, InH: 8, InW: 8, K: 3, Stride: 1, Pad: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.g.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestMatMulIntoReusesStorage(t *testing.T) {
	rng := xrand.New(3)
	a := randTensor(rng, 4, 5)
	b := randTensor(rng, 5, 6)
	dst := New(4, 6)
	MatMulInto(dst, a, b)
	ref := MatMul(a, b)
	for i := range dst.Data() {
		if dst.Data()[i] != ref.Data()[i] {
			t.Fatal("MatMulInto differs from MatMul")
		}
	}
}
