package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of result rows below which MatMul runs
// single-threaded; goroutine fan-out costs more than it saves on tiny
// matrices (the common case for the small heads in this repository).
const parallelThreshold = 32

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n) and returns a
// new m×n tensor. Rows of C are computed in parallel across GOMAXPROCS
// workers when m is large enough to amortise goroutine startup.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	c := New(m, n)
	matMulInto(c.data, a.data, b.data, m, k, n)
	return c
}

// MatMulInto computes dst = A·B, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shapes %v = %v x %v", dst.shape, a.shape, b.shape))
	}
	matMulInto(dst.data, a.data, b.data, m, k, n)
}

func matMulInto(c, a, b []float32, m, k, n int) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 1 && m < parallelThreshold && n >= 4*parallelThreshold && m*k*n >= 1<<17 {
		// Short-and-wide product (the conv im2col shape): split columns.
		matMulCols(c, a, b, m, k, n, workers)
		return
	}
	if m < parallelThreshold || workers <= 1 {
		matMulRows(c, a, b, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	rowsPer := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := lo + rowsPer
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRows(c, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulCols splits the column range of C across workers; each worker runs
// the same ikj kernel restricted to its column window.
func matMulCols(c, a, b []float32, m, k, n, workers int) {
	colsPer := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * colsPer
		hi := lo + colsPer
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := 0; i < m; i++ {
				ci := c[i*n+lo : i*n+hi]
				for x := range ci {
					ci[x] = 0
				}
				for l := 0; l < k; l++ {
					av := a[i*k+l]
					if av == 0 {
						continue
					}
					bl := b[l*n+lo : l*n+hi]
					for j, bv := range bl {
						ci[j] += av * bv
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRows computes rows [lo,hi) of C using an ikj loop order so the inner
// loop streams through B and C rows sequentially (cache friendly, and the
// compiler can keep the scalar a[i][l] in a register).
func matMulRows(c, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		for l := 0; l < k; l++ {
			av := a[i*k+l]
			if av == 0 {
				continue
			}
			bl := b[l*n : (l+1)*n]
			for j, bv := range bl {
				ci[j] += av * bv
			}
		}
	}
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func Transpose2D(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D needs rank 2, got %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out
}
