package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// Shape gates for the packed (transposed-B) kernel: below these the pack
// pass costs more than the cache locality it buys, so the streaming ikj
// kernel is used instead. Both gates depend only on the operand shapes,
// never on GOMAXPROCS, so a given product always takes the same numeric
// path regardless of the worker count. The parallel gates
// (parallelThreshold, parallelMinWork) live in parallel.go, shared with
// the k-major GEMM so the two parallel paths tune from one source.
const (
	packMinRows = 8
	packMinWork = 1 << 12
)

// packPool recycles the scratch buffers the packed kernel transposes B
// into, so steady-state MatMul calls allocate nothing.
var packPool sync.Pool

func getPackBuf(n int) *[]float32 {
	if v := packPool.Get(); v != nil {
		p := v.(*[]float32)
		if cap(*p) >= n {
			*p = (*p)[:n]
			return p
		}
	}
	b := make([]float32, n)
	return &b
}

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n) and returns a
// new m×n tensor. Rows of C are computed in parallel across GOMAXPROCS
// workers when m is large enough to amortise goroutine startup.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	c := New(m, n)
	matMulInto(c.data, a.data, b.data, m, k, n)
	return c
}

// MatMulInto computes dst = A·B, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shapes %v = %v x %v", dst.shape, a.shape, b.shape))
	}
	matMulInto(dst.data, a.data, b.data, m, k, n)
}

// MatMulTransB returns A·Bᵀ for A (m×k) and B (n×k) as a new m×n tensor.
// B is consumed in its natural row-major layout, which makes this the
// no-pack fast path when the transposed operand already exists — e.g. the
// convolution weight-gradient product dW = G·colsᵀ, where cols is stored
// untransposed.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB needs rank-2 operands, got %v x %v", a.shape, b.shape))
	}
	if a.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d vs %d", a.shape[1], b.shape[1]))
	}
	c := New(a.shape[0], b.shape[0])
	MatMulTransBInto(c, a, b)
	return c
}

// MatMulTransBInto computes dst = A·Bᵀ for A (m×k) and B (n×k), reusing
// dst's storage. dst must be m×n.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto shapes %v = %v x %vᵀ", dst.shape, a.shape, b.shape))
	}
	matMulTransB(dst.data, a.data, b.data, m, k, n)
}

// matMulInto picks a kernel by operand shape only (never by GOMAXPROCS) so
// a given product is always computed with the same per-element floating-
// point order: results are bit-identical across runs and worker counts.
func matMulInto(c, a, b []float32, m, k, n int) {
	if m >= packMinRows && m*k*n >= packMinWork {
		// Packed kernel: transpose B once into pooled scratch so the inner
		// product streams both operands sequentially, then run the register-
		// blocked dot kernel over it.
		bp := getPackBuf(k * n)
		bT := *bp
		transposeInto(bT, b, k, n)
		matMulTransB(c, a, bT, m, k, n)
		packPool.Put(bp)
		return
	}
	// Small or very skinny products: the streaming ikj kernel.
	workers := runtime.GOMAXPROCS(0)
	if workers > 1 && m < parallelThreshold && n >= 4*parallelThreshold && m*k*n >= parallelMinWork {
		// Short-and-wide product: split columns.
		matMulCols(c, a, b, m, k, n, workers)
		return
	}
	if m < parallelThreshold || workers <= 1 {
		matMulRows(c, a, b, 0, m, k, n)
		return
	}
	parallelRanges(m, workers, func(lo, hi int) {
		matMulRows(c, a, b, lo, hi, k, n)
	})
}

// matMulTransB computes C = A·Bᵀ with bT stored n×k row-major. Work is
// fanned out across rows of C for tall products and across columns for
// short-and-wide ones; each output element is always a strictly sequential
// dot product over l, so the split never changes the numeric result.
func matMulTransB(c, a, bT []float32, m, k, n int) {
	workers := runtime.GOMAXPROCS(0)
	switch {
	case workers > 1 && m >= parallelThreshold:
		parallelRanges(m, workers, func(lo, hi int) {
			dotKernelRows(c, a, bT, lo, hi, k, n)
		})
	case workers > 1 && n >= 4*parallelThreshold && m*k*n >= parallelMinWork:
		parallelRanges(n, workers, func(lo, hi int) {
			dotKernelCols(c, a, bT, lo, hi, m, k, n)
		})
	default:
		dotKernelRows(c, a, bT, 0, m, k, n)
	}
}

// dotKernelRows computes rows [lo, hi) of C = A·Bᵀ with a 2×4 register
// block: two rows of A against four rows of Bᵀ, eight independent
// accumulators. Every accumulator sums strictly in ascending l with float32
// rounding at each step — the same per-element order as the ikj kernel —
// so all kernels in this file agree bit-for-bit.
func dotKernelRows(c, a, bT []float32, lo, hi, k, n int) {
	i := lo
	for ; i+1 < hi; i += 2 {
		a0 := a[i*k : i*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		c0 := c[i*n : i*n+n]
		c1 := c[(i+1)*n : (i+1)*n+n]
		j := 0
		for ; j+3 < n; j += 4 {
			b0 := bT[j*k : j*k+k]
			b1 := bT[(j+1)*k : (j+1)*k+k]
			b2 := bT[(j+2)*k : (j+2)*k+k]
			b3 := bT[(j+3)*k : (j+3)*k+k]
			var s00, s01, s02, s03, s10, s11, s12, s13 float32
			for l, av0 := range a0 {
				av1 := a1[l]
				s00 += av0 * b0[l]
				s01 += av0 * b1[l]
				s02 += av0 * b2[l]
				s03 += av0 * b3[l]
				s10 += av1 * b0[l]
				s11 += av1 * b1[l]
				s12 += av1 * b2[l]
				s13 += av1 * b3[l]
			}
			c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
			c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
		}
		for ; j < n; j++ {
			bj := bT[j*k : j*k+k]
			var s0, s1 float32
			for l, bv := range bj {
				s0 += a0[l] * bv
				s1 += a1[l] * bv
			}
			c0[j], c1[j] = s0, s1
		}
	}
	for ; i < hi; i++ {
		ai := a[i*k : i*k+k]
		ci := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			bj := bT[j*k : j*k+k]
			var s float32
			for l, bv := range bj {
				s += ai[l] * bv
			}
			ci[j] = s
		}
	}
}

// dotKernelCols computes columns [jlo, jhi) of C = A·Bᵀ for every row,
// using the same sequential-in-l dot products as dotKernelRows.
func dotKernelCols(c, a, bT []float32, jlo, jhi, m, k, n int) {
	for j := jlo; j < jhi; j++ {
		bj := bT[j*k : j*k+k]
		for i := 0; i < m; i++ {
			ai := a[i*k : i*k+k]
			var s float32
			for l, bv := range bj {
				s += ai[l] * bv
			}
			c[i*n+j] = s
		}
	}
}

// matMulCols splits the column range of C across workers; each worker runs
// the same ikj kernel restricted to its column window.
func matMulCols(c, a, b []float32, m, k, n, workers int) {
	parallelRanges(n, workers, func(lo, hi int) {
		for i := 0; i < m; i++ {
			ci := c[i*n+lo : i*n+hi]
			clear(ci)
			for l := 0; l < k; l++ {
				av := a[i*k+l]
				if av == 0 { //advlint:floatcmp-ok exact-zero skip in the legacy reference kernel
					continue
				}
				bl := b[l*n+lo : l*n+hi]
				for j, bv := range bl {
					ci[j] += av * bv
				}
			}
		}
	})
}

// matMulRows computes rows [lo,hi) of C using an ikj loop order so the inner
// loop streams through B and C rows sequentially (cache friendly, and the
// compiler can keep the scalar a[i][l] in a register).
func matMulRows(c, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		clear(ci)
		for l := 0; l < k; l++ {
			av := a[i*k+l]
			if av == 0 { //advlint:floatcmp-ok exact-zero skip in the legacy reference kernel
				continue
			}
			bl := b[l*n : (l+1)*n]
			for j, bv := range bl {
				ci[j] += av * bv
			}
		}
	}
}

// transposeBlock is the tile edge for the blocked transpose: 32×32 float32
// tiles keep both the source rows and destination rows inside L1.
const transposeBlock = 32

// transposeInto writes the transpose of the m×n matrix src into dst (n×m).
func transposeInto(dst, src []float32, m, n int) {
	for ib := 0; ib < m; ib += transposeBlock {
		imax := min(ib+transposeBlock, m)
		for jb := 0; jb < n; jb += transposeBlock {
			jmax := min(jb+transposeBlock, n)
			for i := ib; i < imax; i++ {
				row := src[i*n : (i+1)*n]
				for j := jb; j < jmax; j++ {
					dst[j*m+i] = row[j]
				}
			}
		}
	}
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func Transpose2D(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D needs rank 2, got %v", t.shape))
	}
	out := New(t.shape[1], t.shape[0])
	transposeInto(out.data, t.data, t.shape[0], t.shape[1])
	return out
}

// Transpose2DInto writes the transpose of the 2-D tensor t into dst, which
// must have the swapped shape, reusing dst's storage.
//
//advlint:noalloc
func Transpose2DInto(dst, t *Tensor) {
	if t.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2DInto needs rank 2, got %v <- %v", dst.shape, t.shape))
	}
	if dst.shape[0] != t.shape[1] || dst.shape[1] != t.shape[0] {
		panic(fmt.Sprintf("tensor: Transpose2DInto shape %v <- %v", dst.shape, t.shape))
	}
	transposeInto(dst.data, t.data, t.shape[0], t.shape[1])
}
