package tensor

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/xrand"
)

// mustPanicIff runs fn and fails the test unless fn panics exactly when
// wantPanic is set; the fuzz targets use it to pin the package's
// index/shape contract (panic on malformed input, never silent corruption).
func mustPanicIff(t *testing.T, wantPanic bool, what string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if wantPanic && r == nil {
			t.Fatalf("%s: expected panic", what)
		}
		if !wantPanic && r != nil {
			t.Fatalf("%s: unexpected panic: %v", what, r)
		}
	}()
	fn()
}

func FuzzTensorIndex(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(4), int16(1), int16(2), int16(3))
	f.Add(uint8(1), uint8(1), uint8(1), int16(0), int16(0), int16(0))
	f.Add(uint8(5), uint8(2), uint8(7), int16(-1), int16(0), int16(6))
	f.Add(uint8(3), uint8(3), uint8(3), int16(3), int16(2), int16(2))
	f.Fuzz(func(t *testing.T, d0, d1, d2 uint8, i0, i1, i2 int16) {
		dims := []int{int(d0)%6 + 1, int(d1)%6 + 1, int(d2)%6 + 1}
		tt := New(dims...)
		if tt.Len() != dims[0]*dims[1]*dims[2] {
			t.Fatalf("Len %d for shape %v", tt.Len(), dims)
		}

		idx := []int{int(i0), int(i1), int(i2)}
		inBounds := true
		for k := range idx {
			if idx[k] < 0 || idx[k] >= dims[k] {
				inBounds = false
			}
		}
		mustPanicIff(t, !inBounds, "At", func() { tt.At(idx...) })
		mustPanicIff(t, !inBounds, "Set", func() { tt.Set(1, idx...) })
		// Rank-mismatched indexing must panic regardless of values.
		mustPanicIff(t, true, "At rank", func() { tt.At(idx[0], idx[1]) })

		if inBounds {
			// A single Set touches exactly one storage slot.
			n := 0
			for _, v := range tt.Data() {
				if v != 0 {
					n++
				}
			}
			if n != 1 || tt.At(idx...) != 1 {
				t.Fatalf("Set/At inconsistent at %v in shape %v", idx, dims)
			}
		}
	})
}

func FuzzTensorReshape(f *testing.F) {
	f.Add(uint8(2), uint8(6), uint8(3), uint8(4))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1))
	f.Add(uint8(4), uint8(4), uint8(2), uint8(5))
	f.Fuzz(func(t *testing.T, a, b, c, d uint8) {
		m, n := int(a)%8+1, int(b)%8+1
		p, q := int(c)%8+1, int(d)%8+1
		tt := New(m, n)
		ok := m*n == p*q
		mustPanicIff(t, !ok, "Reshape", func() {
			v := tt.Reshape(p, q)
			// A reshape is a view: writes through it land in the original.
			v.Set(7, p-1, q-1)
			if tt.Data()[m*n-1] != 7 {
				t.Fatal("reshape must share storage")
			}
		})
	})
}

func FuzzFromSlice(f *testing.F) {
	f.Add(uint8(6), uint8(2), uint8(3))
	f.Add(uint8(5), uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, length, d0, d1 uint8) {
		n := int(length) % 65
		m, k := int(d0)%8+1, int(d1)%8+1
		data := make([]float32, n)
		mustPanicIff(t, n != m*k, "FromSlice", func() {
			tt := FromSlice(data, m, k)
			if tt.Len() != n {
				t.Fatalf("FromSlice Len %d, want %d", tt.Len(), n)
			}
		})
	})
}

// naiveMatMul is the reference ijk implementation the parallel kernels
// must agree with bit-for-bit (same per-element accumulation order).
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for l := 0; l < k; l++ {
			av := a.Data()[i*k+l]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c.Data()[i*n+j] += av * b.Data()[l*n+j]
			}
		}
	}
	return c
}

func fillSeq(t *Tensor) {
	for i := range t.Data() {
		t.Data()[i] = float32(i%13) * 0.25
	}
}

// FuzzMatMulKMajorVsRef differentially fuzzes the dispatched k-major
// kernel (assembly lanes on amd64, generic elsewhere) against a naive
// ascending-dot reference over random shapes, including K=0, single
// rows/columns and column counts that are not lane multiples. Any
// divergence — wrong value OR wrong bits — fails.
func FuzzMatMulKMajorVsRef(f *testing.F) {
	f.Add(uint8(4), uint8(8), uint8(8), int64(1))
	f.Add(uint8(0), uint8(0), uint8(8), int64(2))  // k = 0: output must be all zeros
	f.Add(uint8(0), uint8(6), uint8(0), int64(3))  // single row and column
	f.Add(uint8(4), uint8(2), uint8(12), int64(4)) // n ≡ 1 mod 4: scalar column tail
	f.Add(uint8(2), uint8(30), uint8(6), int64(5)) // row tail below the 4-row block
	f.Add(uint8(16), uint8(40), uint8(47), int64(6))
	f.Fuzz(func(t *testing.T, mr, kr, nr uint8, seed int64) {
		m := int(mr)%17 + 1
		k := int(kr) % 33 // 0 is a legal contraction length at the slice level
		n := int(nr)%41 + 1
		rng := xrand.New(seed)
		a := make([]float32, m*k)
		bk := make([]float32, k*n)
		rng.FillUniform(a, -3, 3)
		rng.FillUniform(bk, -3, 3)
		if len(a) > 0 {
			a[rng.Intn(len(a))] = 0 // exercise any zero-skip path
		}

		got := make([]float32, m*n)
		for i := range got {
			got[i] = 99 // stale garbage must be fully overwritten
		}
		matMulKMajor(got, a, bk, m, k, n)

		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for l := 0; l < k; l++ {
					s += a[i*k+l] * bk[l*n+j]
				}
				if got[i*n+j] != s {
					t.Fatalf("m=%d k=%d n=%d (%s): [%d,%d] = %v, want %v",
						m, k, n, KMajorKernel(), i, j, got[i*n+j], s)
				}
			}
		}
	})
}

// FuzzMatMulKMajorParallelVsSerial differentially fuzzes the row-shard
// driver against the serial lane-kernel driver at arbitrary worker counts
// (including more workers than rows), bypassing the work-threshold gate so
// even tiny products exercise the shard arithmetic. The two must agree in
// their bits: parallelism is dispatch, never numerics.
func FuzzMatMulKMajorParallelVsSerial(f *testing.F) {
	f.Add(uint8(4), uint8(8), uint8(8), uint8(2), int64(1))
	f.Add(uint8(0), uint8(6), uint8(0), uint8(16), int64(2)) // m=1, workers > m
	f.Add(uint8(6), uint8(2), uint8(12), uint8(3), int64(3)) // m not divisible by workers
	f.Add(uint8(16), uint8(40), uint8(47), uint8(5), int64(4))
	f.Fuzz(func(t *testing.T, mr, kr, nr, wr uint8, seed int64) {
		m := int(mr)%33 + 1
		k := int(kr)%33 + 1
		n := int(nr)%41 + 1
		workers := int(wr)%19 + 1
		rng := xrand.New(seed)
		a := make([]float32, m*k)
		bk := make([]float32, k*n)
		rng.FillUniform(a, -3, 3)
		rng.FillUniform(bk, -3, 3)

		want := make([]float32, m*n)
		matMulKMajorSerial(want, a, bk, m, k, n)

		got := make([]float32, m*n)
		for i := range got {
			got[i] = 99 // stale garbage must be fully overwritten
		}
		matMulKMajorParallel(got, a, bk, m, k, n, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("m=%d k=%d n=%d workers=%d (%s): [%d] = %v, want %v",
					m, k, n, workers, KMajorKernel(), i, got[i], want[i])
			}
		}
	})
}

// TestMatMulFanOutBitIdentical drives both fan-out paths (row split and
// the short-and-wide column split) and checks bit-identical results
// against the serial reference, at several GOMAXPROCS settings.
func TestMatMulFanOutBitIdentical(t *testing.T) {
	shapes := [][3]int{
		{64, 48, 40}, // row-split path (m >= parallelThreshold)
		{8, 64, 512}, // column-split path (short and wide, m*k*n >= 1<<17)
		{3, 5, 7},    // serial path
		{33, 1, 129}, // row split, degenerate inner dim
	}
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		for _, s := range shapes {
			a, b := New(s[0], s[1]), New(s[1], s[2])
			fillSeq(a)
			fillSeq(b)
			got := MatMul(a, b)
			want := naiveMatMul(a, b)
			for i := range want.Data() {
				if got.Data()[i] != want.Data()[i] {
					t.Fatalf("GOMAXPROCS=%d shape %v: element %d differs", procs, s, i)
				}
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestMatMulConcurrentCallers hammers the fan-out kernels from many
// goroutines at once; under -race this certifies the workers share no
// mutable state beyond their disjoint output windows.
func TestMatMulConcurrentCallers(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	a, b := New(64, 48), New(48, 256)
	fillSeq(a)
	fillSeq(b)
	want := naiveMatMul(a, b)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := MatMul(a, b)
			for i := range want.Data() {
				if got.Data()[i] != want.Data()[i] {
					t.Errorf("concurrent MatMul diverged at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}
