//go:build amd64

package tensor

// useSGEMM reports whether the hand-written SSE2 micro-kernels are
// available. SSE2 is part of the amd64 baseline (GOAMD64=v1), so no runtime
// feature detection is needed.
const useSGEMM = true

// sgemm8cols computes c[i][0:8] = Σ_l a[i][l]·bk[l][0:8] for i in [0,m),
// m a multiple of 4. a is row-major m×k, bk is k-major with row stride n
// floats (the pointer is pre-offset to the column block), c has row stride
// n floats. Each lane accumulates in strictly ascending l with separate
// MULPS/ADDPS roundings, so results are bit-identical to the scalar
// kernels.
//
//go:noescape
func sgemm8cols(a, bk, c *float32, m, k, n int)

// sgemm4cols is sgemm8cols for a 4-column block.
//
//go:noescape
func sgemm4cols(a, bk, c *float32, m, k, n int)
