//go:build amd64 && !noasm

package tensor

// Kernel selection for the k-major SGEMM on amd64. SSE2 is part of the
// amd64 baseline (GOAMD64=v1) so the 4-wide kernels are always available;
// the 8-wide AVX2 kernel is enabled by a one-time CPUID probe at package
// init (or unconditionally when the binary is compiled with GOAMD64=v3 or
// higher, which guarantees AVX2). The choice is made exactly once and
// depends only on the CPU, never on GOMAXPROCS or operand values, so a
// given product always runs the same kernel — and since every kernel
// performs the identical ascending-k per-lane accumulation, the choice is
// a pure throughput decision anyway.
//
// Escape hatches: build with -tags noasm to drop all assembly (pure-Go
// lane kernel, still bit-identical), or GOAMD64=v3 to skip the runtime
// probe.

// cpuid and xgetbv0 are implemented in cpuid_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// hasAVX2 reports whether the CPU supports AVX2 and the OS saves the YMM
// state (OSXSAVE + XCR0 bits 1-2), the standard gate before executing any
// VEX-256 instruction.
func hasAVX2() bool {
	if compileTimeAVX2 {
		return true
	}
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	_, _, c1, _ := cpuid(1, 0)
	if c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	if xlo, _ := xgetbv0(); xlo&6 != 6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

// The lane kernels, implemented in sgemm_amd64.s. Each computes
// c[i][0:w] = Σ_l a[i][l]·bk[l][0:w] for i in [0,m) — any m, rows in
// blocks of 4 plus a single-row tail — with bk and c pre-offset to the
// column block and using row stride n floats. Accumulation is strictly
// ascending l with separate mul/add roundings per step: bit-identical to
// the scalar kernels.

//go:noescape
func sgemm8cols(a, bk, c *float32, m, k, n int)

//go:noescape
func sgemm4cols(a, bk, c *float32, m, k, n int)

//go:noescape
func sgemm8colsAVX2(a, bk, c *float32, m, k, n int)

func init() {
	lanes4 = sgemm4cols
	if hasAVX2() {
		lanes8 = sgemm8colsAVX2
		kmajorKernelName = "avx2"
	} else {
		lanes8 = sgemm8cols
		kmajorKernelName = "sse2"
	}
}
