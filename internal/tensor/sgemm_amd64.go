//go:build amd64 && !noasm

package tensor

// Kernel selection for the k-major SGEMM on amd64. SSE2 is part of the
// amd64 baseline (GOAMD64=v1) so the 4-wide kernels are always available;
// the 8-wide AVX2 and 16-wide AVX-512 kernels are enabled by a one-time
// CPUID+XGETBV probe at package init (or unconditionally when the binary
// is compiled with GOAMD64=v3 / v4, which guarantee AVX2 / AVX-512
// respectively). The choice is made exactly once and depends only on the
// CPU, never on GOMAXPROCS or operand values, so a given product always
// runs the same kernel — and since every kernel performs the identical
// ascending-k per-lane accumulation, the choice is a pure throughput
// decision anyway.
//
// Escape hatches: build with -tags noasm to drop all assembly (pure-Go
// lane kernel, still bit-identical), or GOAMD64=v3/v4 to skip the runtime
// probe.

// cpuid and xgetbv0 are implemented in cpuid_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// hasAVX2 reports whether the CPU supports AVX2 and the OS saves the YMM
// state (OSXSAVE + XCR0 bits 1-2), the standard gate before executing any
// VEX-256 instruction.
func hasAVX2() bool {
	if compileTimeAVX2 {
		return true
	}
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	_, _, c1, _ := cpuid(1, 0)
	if c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	if xlo, _ := xgetbv0(); xlo&6 != 6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

// hasAVX512 reports whether the CPU and OS support the GOAMD64=v4 AVX-512
// feature set (F+BW+CD+DQ+VL — the 16-wide kernel itself needs F for the
// ZMM arithmetic and DQ for VXORPS on ZMM) and the OS saves the full
// AVX-512 state (XCR0 opmask + ZMM bits on top of XMM/YMM). Matching the
// v4 set keeps the runtime probe and the compile-time tag equivalent.
func hasAVX512() bool {
	if compileTimeAVX512 {
		return true
	}
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	_, _, c1, _ := cpuid(1, 0)
	if c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	// XMM|YMM (bits 1-2) plus opmask|ZMM_hi256|hi16_ZMM (bits 5-7).
	if xlo, _ := xgetbv0(); xlo&0xe6 != 0xe6 {
		return false
	}
	const need = 1<<16 | 1<<17 | 1<<28 | 1<<30 | 1<<31 // F, DQ, CD, BW, VL
	_, b7, _, _ := cpuid(7, 0)
	return b7&need == need
}

// The lane kernels, implemented in sgemm_amd64.s. Each computes
// c[i][0:w] = Σ_l a[i][l]·bk[l][0:w] for i in [0,m) — any m, rows in
// blocks of 4 plus a single-row tail — with bk and c pre-offset to the
// column block and using row stride n floats. Accumulation is strictly
// ascending l with separate mul/add roundings per step: bit-identical to
// the scalar kernels.

//go:noescape
func sgemm8cols(a, bk, c *float32, m, k, n int)

//go:noescape
func sgemm4cols(a, bk, c *float32, m, k, n int)

//go:noescape
func sgemm8colsAVX2(a, bk, c *float32, m, k, n int)

//go:noescape
func sgemm16colsAVX512(a, bk, c *float32, m, k, n int)

func init() {
	lanes4 = sgemm4cols
	switch {
	case hasAVX512() && hasAVX2():
		lanes16 = sgemm16colsAVX512
		lanes8 = sgemm8colsAVX2
		kmajorKernelName = "avx512"
	case hasAVX2():
		lanes8 = sgemm8colsAVX2
		kmajorKernelName = "avx2"
	default:
		lanes8 = sgemm8cols
		kmajorKernelName = "sse2"
	}
}
