//go:build arm64 && !noasm

package tensor

// Kernel selection for the k-major SGEMM on arm64. NEON (AdvSIMD) is part
// of the arm64 baseline, so the 4-wide lane kernel is always available and
// no runtime probe is needed: init selects it unconditionally. With only
// lanes4 assigned, the driver tiles the product into 4-column blocks
// (matMulKMajorSerial skips the 8-wide generic path when a native 4-wide
// kernel exists), keeping every block on SIMD.
//
// The kernel keeps multiply and add as separate instructions — FMUL then
// FADD, never the fused FMLA — so each lane performs the same two float32
// roundings per k step as the amd64 and pure-Go rungs: results are
// bit-identical across every ladder rung. Build with -tags noasm to fall
// back to the pure-Go lane kernel.

//go:noescape
func sgemmNeon4cols(a, bk, c *float32, m, k, n int)

func init() {
	lanes4 = sgemmNeon4cols
	kmajorKernelName = "neon"
}
