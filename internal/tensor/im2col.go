package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution over a CHW tensor.
// It is shared by the forward im2col transform and the backward col2im
// scatter so the two always agree.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	K             int // square kernel size
	Stride        int
	Pad           int
}

// OutH returns the output height implied by the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.K)/g.Stride + 1 }

// OutW returns the output width implied by the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.K)/g.Stride + 1 }

// Validate reports an error for geometries that would produce an empty
// output or are otherwise malformed.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 {
		return fmt.Errorf("conv geom: non-positive input dims %+v", g)
	}
	if g.K <= 0 || g.Stride <= 0 || g.Pad < 0 {
		return fmt.Errorf("conv geom: bad kernel/stride/pad %+v", g)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("conv geom: empty output %+v", g)
	}
	return nil
}

// Im2Col unrolls a CHW input tensor into a matrix of shape
// (InC*K*K) × (OutH*OutW), so convolution becomes a single MatMul with the
// (OutC)×(InC*K*K) weight matrix. Out-of-bounds taps (padding) read as 0.
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	out := New(g.InC*g.K*g.K, g.OutH()*g.OutW())
	Im2ColInto(out, x, g)
	return out
}

// Im2ColInto is Im2Col writing into dst, which must already have shape
// (InC*K*K) × (OutH*OutW). Every destination element is written (padding
// taps as 0), so dst's previous contents don't matter.
func Im2ColInto(dst, x *Tensor, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.K * g.K
	cols := outH * outW
	if dst.Rank() != 2 || dst.shape[0] != rows || dst.shape[1] != cols {
		panic(fmt.Sprintf("tensor: Im2ColInto dst %v, want [%d %d]", dst.shape, rows, cols))
	}
	xd := x.data
	od := dst.data
	for c := 0; c < g.InC; c++ {
		for ky := 0; ky < g.K; ky++ {
			for kx := 0; kx < g.K; kx++ {
				row := (c*g.K+ky)*g.K + kx
				base := row * cols
				for oy := 0; oy < outH; oy++ {
					dstRow := od[base+oy*outW : base+oy*outW+outW]
					iy := oy*g.Stride - g.Pad + ky
					if iy < 0 || iy >= g.InH {
						clear(dstRow)
						continue
					}
					srcRow := (c*g.InH + iy) * g.InW
					for ox := range dstRow {
						ix := ox*g.Stride - g.Pad + kx
						if ix < 0 || ix >= g.InW {
							dstRow[ox] = 0
						} else {
							dstRow[ox] = xd[srcRow+ix]
						}
					}
				}
			}
		}
	}
}

// Col2Im scatters a column matrix (the gradient of an Im2Col output) back
// into a CHW tensor, accumulating where kernel windows overlap. It is the
// exact adjoint of Im2Col, which is what backpropagation requires.
func Col2Im(cols *Tensor, g ConvGeom) *Tensor {
	x := New(g.InC, g.InH, g.InW)
	Col2ImInto(x, cols, g)
	return x
}

// Col2ImInto is Col2Im writing into dst, which must already have shape
// (InC, InH, InW). dst is zeroed before the scatter accumulates into it.
func Col2ImInto(dst, cols *Tensor, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	nCols := outH * outW
	if dst.Rank() != 3 || dst.shape[0] != g.InC || dst.shape[1] != g.InH || dst.shape[2] != g.InW {
		panic(fmt.Sprintf("tensor: Col2ImInto dst %v, want [%d %d %d]", dst.shape, g.InC, g.InH, g.InW))
	}
	dst.Zero()
	cd := cols.data
	xd := dst.data
	for c := 0; c < g.InC; c++ {
		for ky := 0; ky < g.K; ky++ {
			for kx := 0; kx < g.K; kx++ {
				row := (c*g.K+ky)*g.K + kx
				base := row * nCols
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride - g.Pad + ky
					if iy < 0 || iy >= g.InH {
						continue
					}
					srcRow := base + oy*outW
					dstRow := (c*g.InH + iy) * g.InW
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride - g.Pad + kx
						if ix < 0 || ix >= g.InW {
							continue
						}
						xd[dstRow+ix] += cd[srcRow+ox]
					}
				}
			}
		}
	}
}
