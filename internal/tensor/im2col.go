package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution over a CHW tensor.
// It is shared by the forward im2col transform and the backward col2im
// scatter so the two always agree.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	K             int // square kernel size
	Stride        int
	Pad           int
}

// OutH returns the output height implied by the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.K)/g.Stride + 1 }

// OutW returns the output width implied by the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.K)/g.Stride + 1 }

// Validate reports an error for geometries that would produce an empty
// output or are otherwise malformed.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 {
		return fmt.Errorf("conv geom: non-positive input dims %+v", g)
	}
	if g.K <= 0 || g.Stride <= 0 || g.Pad < 0 {
		return fmt.Errorf("conv geom: bad kernel/stride/pad %+v", g)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("conv geom: empty output %+v", g)
	}
	return nil
}

// Im2Col unrolls a CHW input tensor into a matrix of shape
// (InC*K*K) × (OutH*OutW), so convolution becomes a single MatMul with the
// (OutC)×(InC*K*K) weight matrix. Out-of-bounds taps (padding) read as 0.
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.K * g.K
	cols := outH * outW
	out := New(rows, cols)
	xd := x.data
	od := out.data
	for c := 0; c < g.InC; c++ {
		for ky := 0; ky < g.K; ky++ {
			for kx := 0; kx < g.K; kx++ {
				row := (c*g.K+ky)*g.K + kx
				base := row * cols
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride - g.Pad + ky
					if iy < 0 || iy >= g.InH {
						continue // stays zero
					}
					srcRow := (c*g.InH + iy) * g.InW
					dstRow := base + oy*outW
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride - g.Pad + kx
						if ix < 0 || ix >= g.InW {
							continue
						}
						od[dstRow+ox] = xd[srcRow+ix]
					}
				}
			}
		}
	}
	return out
}

// Col2Im scatters a column matrix (the gradient of an Im2Col output) back
// into a CHW tensor, accumulating where kernel windows overlap. It is the
// exact adjoint of Im2Col, which is what backpropagation requires.
func Col2Im(cols *Tensor, g ConvGeom) *Tensor {
	outH, outW := g.OutH(), g.OutW()
	nCols := outH * outW
	x := New(g.InC, g.InH, g.InW)
	cd := cols.data
	xd := x.data
	for c := 0; c < g.InC; c++ {
		for ky := 0; ky < g.K; ky++ {
			for kx := 0; kx < g.K; kx++ {
				row := (c*g.K+ky)*g.K + kx
				base := row * nCols
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride - g.Pad + ky
					if iy < 0 || iy >= g.InH {
						continue
					}
					srcRow := base + oy*outW
					dstRow := (c*g.InH + iy) * g.InW
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride - g.Pad + kx
						if ix < 0 || ix >= g.InW {
							continue
						}
						xd[dstRow+ix] += cd[srcRow+ox]
					}
				}
			}
		}
	}
	return x
}
