//go:build amd64 && !noasm

package tensor

import (
	"testing"

	"repro/internal/xrand"
)

// TestSGEMMKernelsAgree cross-checks every assembly lane kernel directly
// against the pure-Go lane kernel, independent of which one init selected:
// the SSE2 8- and 4-column kernels, and — when the CPU supports them — the
// AVX2 8-column and AVX-512 16-column kernels. This is the ladder's
// bit-identity proof: a machine that dispatches AVX-512 certifies AVX2 and
// SSE2 in the same run and vice versa. (The NEON rung is pinned the same
// way on arm64: its 4-wide lane semantics are exactly kmajorColsGeneric
// with w=4, which this test certifies against the assembly here.)
func TestSGEMMKernelsAgree(t *testing.T) {
	t.Logf("dispatched kernel: %s", KMajorKernel())
	rng := xrand.New(97)
	shapes := [][2]int{{1, 3}, {2, 7}, {3, 16}, {4, 1}, {5, 9}, {8, 27}, {13, 64}, {1, 2048}}
	for _, s := range shapes {
		m, k := s[0], s[1]
		const n = 16 // one 16-column block; the narrower kernels use its prefix
		a := New(m, k)
		rng.FillUniform(a.Data(), -2, 2)
		bk := New(k, n)
		rng.FillUniform(bk.Data(), -2, 2)

		want := New(m, n)
		kmajorColsGeneric(want.Data(), a.Data(), bk.Data(), 0, m, 0, 8, k, n)

		got := New(m, n)
		sgemm8cols(&a.Data()[0], &bk.Data()[0], &got.Data()[0], m, k, n)
		for i := range want.Data() {
			if got.Data()[i] != want.Data()[i] {
				t.Fatalf("sse2 8-col m=%d k=%d diverges at %d: %v vs %v", m, k, i, got.Data()[i], want.Data()[i])
			}
		}

		want4 := New(m, n)
		kmajorColsGeneric(want4.Data(), a.Data(), bk.Data(), 0, m, 0, 4, k, n)
		got4 := New(m, n)
		sgemm4cols(&a.Data()[0], &bk.Data()[0], &got4.Data()[0], m, k, n)
		for i := 0; i < m; i++ {
			for j := 0; j < 4; j++ {
				if got4.Data()[i*n+j] != want4.Data()[i*n+j] {
					t.Fatalf("sse2 4-col m=%d k=%d diverges at (%d,%d)", m, k, i, j)
				}
			}
		}

		if hasAVX2() {
			gotV := New(m, n)
			sgemm8colsAVX2(&a.Data()[0], &bk.Data()[0], &gotV.Data()[0], m, k, n)
			for i := range want.Data() {
				if gotV.Data()[i] != want.Data()[i] {
					t.Fatalf("avx2 8-col m=%d k=%d diverges at %d: %v vs %v", m, k, i, gotV.Data()[i], want.Data()[i])
				}
			}
		}

		if hasAVX512() {
			// The 16-column reference is two adjacent 8-column generic
			// blocks — lanes are independent, so the pairing is exact.
			want16 := New(m, n)
			kmajorColsGeneric(want16.Data(), a.Data(), bk.Data(), 0, m, 0, 8, k, n)
			kmajorColsGeneric(want16.Data(), a.Data(), bk.Data(), 0, m, 8, 8, k, n)
			got16 := New(m, n)
			sgemm16colsAVX512(&a.Data()[0], &bk.Data()[0], &got16.Data()[0], m, k, n)
			for i := range want16.Data() {
				if got16.Data()[i] != want16.Data()[i] {
					t.Fatalf("avx512 16-col m=%d k=%d diverges at %d: %v vs %v", m, k, i, got16.Data()[i], want16.Data()[i])
				}
			}
		}
	}
}

// TestSGEMMKernelsZeroK pins the k=0 contract of the assembly: the kernels
// must return without touching c (the driver never calls them with k=0,
// but the guard in the assembly should hold on its own).
func TestSGEMMKernelsZeroK(t *testing.T) {
	a := New(4, 1) // backing storage; k passed as 0 below
	c := New(4, 16)
	c.Fill(7)
	bk := New(1, 16)
	sgemm8cols(&a.Data()[0], &bk.Data()[0], &c.Data()[0], 4, 0, 16)
	sgemm4cols(&a.Data()[0], &bk.Data()[0], &c.Data()[0], 4, 0, 16)
	if hasAVX2() {
		sgemm8colsAVX2(&a.Data()[0], &bk.Data()[0], &c.Data()[0], 4, 0, 16)
	}
	if hasAVX512() {
		sgemm16colsAVX512(&a.Data()[0], &bk.Data()[0], &c.Data()[0], 4, 0, 16)
	}
	for i, v := range c.Data() {
		if v != 7 {
			t.Fatalf("k=0 kernel wrote c[%d] = %v", i, v)
		}
	}
}
