package tensor

import "fmt"

// Batched, patch-major convolution lowering. Im2Col lowers one sample into
// a (InC·K·K) × (OutH·OutW) column matrix, which is the right layout for
// the per-sample packed MatMul. For batches the roles flip: Im2RowInto
// lowers an [N,C,H,W] tensor into an (N·OutH·OutW) × (InC·K·K) patch
// matrix, so one blocked MatMulTransB against the (OutC) × (InC·K·K)
// weight matrix serves the whole batch while the small weight operand stays
// cache-resident and the patches stream through exactly once — the
// single-core-friendly orientation. Each output element remains an
// ascending-k dot product, so batched convolution is bit-identical per
// frame to the per-sample kernels.

// batchGeomCheck validates an [N,C,H,W] — or single-sample [C,H,W],
// treated as N=1 — operand against the conv geometry and returns N.
func batchGeomCheck(x *Tensor, g ConvGeom, op string) int {
	if x.Rank() == 3 && x.shape[0] == g.InC && x.shape[1] == g.InH && x.shape[2] == g.InW {
		return 1
	}
	if x.Rank() != 4 || x.shape[1] != g.InC || x.shape[2] != g.InH || x.shape[3] != g.InW {
		panic(fmt.Sprintf("tensor: %s input %v, want [%d %d %d] or [N %d %d %d]", op, x.shape, g.InC, g.InH, g.InW, g.InC, g.InH, g.InW))
	}
	return x.shape[0]
}

// Im2RowInto unrolls the batched input x ([N,C,H,W], or a single [C,H,W]
// sample treated as N=1) into dst, which must have shape
// (N·OutH·OutW) × (InC·K·K): row n·OutH·OutW + oy·OutW + ox holds the
// receptive-field window of output position (oy,ox) of sample n. Every
// destination element is written (padding taps as 0), so dst's previous
// contents don't matter.
//
//advlint:noalloc
func Im2RowInto(dst, x *Tensor, g ConvGeom) {
	n := batchGeomCheck(x, g, "Im2RowInto")
	outH, outW := g.OutH(), g.OutW()
	p := outH * outW
	l := g.InC * g.K * g.K
	if dst.Rank() != 2 || dst.shape[0] != n*p || dst.shape[1] != l {
		panic(fmt.Sprintf("tensor: Im2RowInto dst %v, want [%d %d]", dst.shape, n*p, l))
	}
	sampleLen := g.InC * g.InH * g.InW
	for s := 0; s < n; s++ {
		im2rowSample(dst.data[s*p*l:(s+1)*p*l], x.data[s*sampleLen:(s+1)*sampleLen], g, outH, outW, l)
	}
}

// im2rowSample lowers one CHW sample into patch-major rows. The inner copy
// is split into left-border / interior / right-border segments so the
// common case (window fully inside the image) runs without per-tap bounds
// tests, and the K==3 interior is unrolled (every conv in this repository
// is 3×3).
func im2rowSample(pd, xd []float32, g ConvGeom, outH, outW, l int) {
	k := g.K
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*g.Stride - g.Pad
		rowBase := oy * outW * l
		for c := 0; c < g.InC; c++ {
			for ky := 0; ky < k; ky++ {
				iy := iy0 + ky
				off := (c*k + ky) * k
				if iy < 0 || iy >= g.InH {
					for ox := 0; ox < outW; ox++ {
						clear(pd[rowBase+ox*l+off : rowBase+ox*l+off+k])
					}
					continue
				}
				src := xd[(c*g.InH+iy)*g.InW : (c*g.InH+iy+1)*g.InW]
				ox := 0
				// Left border: the window starts before the image edge.
				for ; ox < outW; ox++ {
					ix := ox*g.Stride - g.Pad
					if ix >= 0 {
						break
					}
					dst := pd[rowBase+ox*l+off : rowBase+ox*l+off+k]
					for kx := range dst {
						if ix+kx < 0 || ix+kx >= g.InW {
							dst[kx] = 0
						} else {
							dst[kx] = src[ix+kx]
						}
					}
				}
				// Interior: the window is fully inside the row.
				if k == 3 {
					for ; ox < outW && ox*g.Stride-g.Pad+3 <= g.InW; ox++ {
						ix := ox*g.Stride - g.Pad
						dst := pd[rowBase+ox*l+off : rowBase+ox*l+off+3]
						s := src[ix : ix+3]
						dst[0], dst[1], dst[2] = s[0], s[1], s[2]
					}
				} else {
					for ; ox < outW && ox*g.Stride-g.Pad+k <= g.InW; ox++ {
						ix := ox*g.Stride - g.Pad
						copy(pd[rowBase+ox*l+off:rowBase+ox*l+off+k], src[ix:ix+k])
					}
				}
				// Right border: the window runs past the image edge.
				for ; ox < outW; ox++ {
					ix := ox*g.Stride - g.Pad
					dst := pd[rowBase+ox*l+off : rowBase+ox*l+off+k]
					for kx := range dst {
						if ix+kx >= g.InW {
							dst[kx] = 0
						} else {
							dst[kx] = src[ix+kx]
						}
					}
				}
			}
		}
	}
}

// Row2ImInto scatters a patch-major gradient matrix (the gradient of an
// Im2RowInto output, shape (N·OutH·OutW) × (InC·K·K)) back into the batched
// input gradient dst ([N,C,H,W], or a single [C,H,W] sample treated as
// N=1), accumulating where windows overlap. It is the exact adjoint of
// Im2RowInto, which is what backpropagation requires.
//
//advlint:noalloc
func Row2ImInto(dst, rows *Tensor, g ConvGeom) {
	n := batchGeomCheck(dst, g, "Row2ImInto")
	outH, outW := g.OutH(), g.OutW()
	p := outH * outW
	l := g.InC * g.K * g.K
	if rows.Rank() != 2 || rows.shape[0] != n*p || rows.shape[1] != l {
		panic(fmt.Sprintf("tensor: Row2ImInto rows %v, want [%d %d]", rows.shape, n*p, l))
	}
	dst.Zero()
	sampleLen := g.InC * g.InH * g.InW
	for s := 0; s < n; s++ {
		row2imSample(dst.data[s*sampleLen:(s+1)*sampleLen], rows.data[s*p*l:(s+1)*p*l], g, outH, outW, l)
	}
}

// row2imSample accumulates one sample's patch rows back into CHW storage.
// The loop nest mirrors Col2ImInto exactly — (c,ky,kx) outer, (oy,ox)
// inner — so every input pixel receives its overlapping-window
// contributions in the same order and the batched backward's input
// gradient stays bit-identical to the per-sample path.
func row2imSample(xd, pd []float32, g ConvGeom, outH, outW, l int) {
	k := g.K
	for c := 0; c < g.InC; c++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				off := (c*k+ky)*k + kx
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride - g.Pad + ky
					if iy < 0 || iy >= g.InH {
						continue
					}
					srcRow := oy * outW
					dstRow := (c*g.InH + iy) * g.InW
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride - g.Pad + kx
						if ix < 0 || ix >= g.InW {
							continue
						}
						xd[dstRow+ix] += pd[(srcRow+ox)*l+off]
					}
				}
			}
		}
	}
}
