//go:build amd64 && !amd64.v3 && !noasm

package tensor

// compileTimeAVX2 and compileTimeAVX512 are false below GOAMD64=v3: both
// feature levels are probed at init via CPUID instead (see hasAVX2 and
// hasAVX512).
const (
	compileTimeAVX2   = false
	compileTimeAVX512 = false
)
