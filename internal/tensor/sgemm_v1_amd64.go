//go:build amd64 && !amd64.v3 && !noasm

package tensor

// compileTimeAVX2 is false below GOAMD64=v3: AVX2 is probed at init via
// CPUID instead (see hasAVX2).
const compileTimeAVX2 = false
