package tensor

import "fmt"

// K-major matmul: dst = A·B with B supplied in k-major layout (k×n), the
// natural layout of an untransposed right operand. Unlike the packed
// MatMulInto kernel it never materialises a transpose; instead it
// vectorizes across output columns — each SIMD lane owns one output element
// and accumulates a[i][l]·b[l][j] in strictly ascending l with a separate
// float32 rounding per multiply and add, exactly like the scalar kernels.
// Every output element is therefore bit-identical to MatMul/MatMulTransB,
// and the kernel choice remains a pure throughput decision.
//
// This is the batched-inference kernel: the batch-first Conv2D and Linear
// paths produce tall-skinny products (thousands of patch rows against a
// small k-major weight matrix) where lane-per-column SIMD beats the
// register-blocked scalar kernel by >2× on a single core.

// MatMulKMajorInto computes dst = A·B for A (m×k) and B (k×n) given in
// row-major (i.e. k-major for this product) layout, reusing dst's storage.
// dst must be m×n.
func MatMulKMajorInto(dst, a, bK *Tensor) {
	if a.Rank() != 2 || bK.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulKMajorInto needs rank-2 operands, got %v x %v", a.shape, bK.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n := bK.shape[1]
	if bK.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulKMajorInto shapes %v = %v x %v", dst.shape, a.shape, bK.shape))
	}
	matMulKMajor(dst.data, a.data, bK.data, m, k, n)
}

// matMulKMajor tiles the product into 4-row × 8-column (then 4-column)
// blocks for the SIMD kernel and finishes row/column tails with the scalar
// ascending-dot loop. All paths agree bit for bit.
func matMulKMajor(c, a, bk []float32, m, k, n int) {
	m4 := m - m%4
	j := 0
	if useSGEMM && m4 > 0 && k > 0 {
		for ; j+8 <= n; j += 8 {
			sgemm8cols(&a[0], &bk[j], &c[j], m4, k, n)
		}
		for ; j+4 <= n; j += 4 {
			sgemm4cols(&a[0], &bk[j], &c[j], m4, k, n)
		}
	} else if m4 > 0 && k > 0 {
		for ; j+8 <= n; j += 8 {
			kmajorColsGeneric(c, a, bk, 0, m4, j, 8, k, n)
		}
		for ; j+4 <= n; j += 4 {
			kmajorColsGeneric(c, a, bk, 0, m4, j, 4, k, n)
		}
	}
	if j < n {
		kmajorScalar(c, a, bk, 0, m4, j, n, k, n)
	}
	if m4 < m {
		kmajorScalar(c, a, bk, m4, m, 0, n, k, n)
	}
}

// kmajorColsGeneric is the pure-Go mirror of the assembly kernel: rows
// [i0,i1) in blocks of 4, a fixed block of w columns starting at j0. Each
// accumulator sums ascending l with per-step rounding — the lane semantics
// of the SIMD kernel, expressed scalar — so generic and assembly builds
// produce identical bits.
func kmajorColsGeneric(c, a, bk []float32, i0, i1, j0, w, k, n int) {
	var acc [4 * 8]float32
	for i := i0; i+3 < i1; i += 4 {
		for z := range acc[:4*w] {
			acc[z] = 0
		}
		for l := 0; l < k; l++ {
			brow := bk[l*n+j0 : l*n+j0+w]
			a0 := a[(i+0)*k+l]
			a1 := a[(i+1)*k+l]
			a2 := a[(i+2)*k+l]
			a3 := a[(i+3)*k+l]
			for z, bv := range brow {
				acc[z] += a0 * bv
				acc[w+z] += a1 * bv
				acc[2*w+z] += a2 * bv
				acc[3*w+z] += a3 * bv
			}
		}
		for r := 0; r < 4; r++ {
			copy(c[(i+r)*n+j0:(i+r)*n+j0+w], acc[r*w:(r+1)*w])
		}
	}
}

// kmajorScalar computes rows [i0,i1) × columns [j0,j1) one ascending dot at
// a time (the tail path; bk is read column-strided).
func kmajorScalar(c, a, bk []float32, i0, i1, j0, j1, k, n int) {
	for i := i0; i < i1; i++ {
		ai := a[i*k : i*k+k]
		for j := j0; j < j1; j++ {
			var s float32
			for l, av := range ai {
				s += av * bk[l*n+j]
			}
			c[i*n+j] = s
		}
	}
}
