package tensor

import (
	"fmt"
	"runtime"
)

// K-major matmul: dst = A·B with B supplied in k-major layout (k×n), the
// natural layout of an untransposed right operand. Unlike the packed
// MatMulInto kernel it never materialises a transpose; instead it
// vectorizes across output columns — each SIMD lane owns one output element
// and accumulates a[i][l]·b[l][j] in strictly ascending l with a separate
// float32 rounding per multiply and add, exactly like the scalar kernels.
// Every output element is therefore bit-identical to MatMul/MatMulTransB,
// and the kernel choice remains a pure throughput decision.
//
// This is the unified GEMM of the perception stack: the batched AND
// single-frame Conv2D/Linear forwards lower onto it (tall-skinny patch
// products, and m=1 gemv shapes that the single-row assembly tail keeps on
// SIMD), and the batched backward drives it for the input-gradient
// products. Lane width is dispatched once at init — AVX-512 16-wide or
// AVX2 8-wide where the CPU supports them, SSE2 4-wide on baseline amd64,
// NEON 4-wide on arm64, a pure-Go lane kernel elsewhere or under the
// noasm build tag (see sgemm_amd64.go / sgemm_arm64.go).
//
// Above the shared parallelMinWork threshold the row dimension is sharded
// across the persistent worker pool (parallel.go): each worker computes a
// contiguous row range with this same serial driver, so parallelism is
// pure dispatch and the bits never depend on GOMAXPROCS.

// laneKernel is the signature of the assembly column-lane kernels:
// c[i][0:w] = Σ_l a[i][l]·bk[l][0:w] for i in [0,m), with bk and c
// pre-offset to the column block and a row stride of n floats.
type laneKernel func(a, bk, c *float32, m, k, n int)

// lanes16, lanes8 and lanes4 are the kernels the driver dispatches to for
// 16-, 8- and 4-column blocks. They stay nil (pure-Go fallback) under the
// noasm tag and on platforms without a matching rung; package init assigns
// them once from CPU features (amd64: SSE2 baseline, AVX2/AVX-512 probed;
// arm64: NEON 4-wide). They never change after init, so kernel choice is
// CPU-gated only and can never vary with parallelism.
var (
	lanes16 laneKernel
	lanes8  laneKernel
	lanes4  laneKernel
)

// kmajorKernelName names the selected widest lane kernel for diagnostics.
var kmajorKernelName = "generic"

// KMajorKernel reports which lane kernel MatMulKMajorInto dispatches to in
// this process: "avx512", "avx2", "sse2", "neon" or "generic" (pure Go —
// builds without a matching rung and the noasm tag). Every rung computes
// identical bits; the name is for benchmarks, bug reports and the perf
// gate's machine-match check.
func KMajorKernel() string { return kmajorKernelName }

// MatMulKMajorInto computes dst = A·B for A (m×k) and B (k×n) given in
// row-major (i.e. k-major for this product) layout, reusing dst's storage.
// dst must be m×n.
//
//advlint:noalloc
func MatMulKMajorInto(dst, a, bK *Tensor) {
	if a.Rank() != 2 || bK.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulKMajorInto needs rank-2 operands, got %v x %v", a.shape, bK.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n := bK.shape[1]
	if bK.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulKMajorInto shapes %v = %v x %v", dst.shape, a.shape, bK.shape))
	}
	matMulKMajor(dst.data, a.data, bK.data, m, k, n)
}

// matMulKMajor is the dispatch point every MatMulKMajorInto call funnels
// through: products past the shared work threshold row-shard across the
// persistent pool, everything else (small shapes, gemv, GOMAXPROCS=1)
// runs the serial driver directly. The gate depends only on the operand
// shape and the worker count — never on values — and the shards reproduce
// the serial bits exactly, so this is a pure throughput decision.
func matMulKMajor(c, a, bk []float32, m, k, n int) {
	if w := runtime.GOMAXPROCS(0); w > 1 && m >= 2 && m*k*n >= parallelMinWork {
		matMulKMajorParallel(c, a, bk, m, k, n, w)
		return
	}
	matMulKMajorSerial(c, a, bk, m, k, n)
}

// matMulKMajorSerial tiles the product into the widest column blocks the
// selected ladder rung supports — 16 on AVX-512, 8 on AVX2/SSE2 and the
// generic kernel, 4 on NEON — and finishes the sub-4 column tail with the
// scalar ascending-dot loop. All paths agree bit for bit, so the tiling
// is invisible in the results.
func matMulKMajorSerial(c, a, bk []float32, m, k, n int) {
	j := 0
	if m > 0 && k > 0 {
		if lanes16 != nil {
			for ; j+16 <= n; j += 16 {
				lanes16(&a[0], &bk[j], &c[j], m, k, n)
			}
		}
		if lanes8 != nil || lanes4 == nil {
			for ; j+8 <= n; j += 8 {
				sgemmLanes(c, a, bk, m, j, 8, k, n)
			}
		}
		for ; j+4 <= n; j += 4 {
			sgemmLanes(c, a, bk, m, j, 4, k, n)
		}
	}
	if j < n {
		kmajorScalar(c, a, bk, 0, m, j, n, k, n)
	}
}

// sgemmLanes is the single dispatch point for the lane kernels: it computes
// the w-column block starting at j0 for every row of the product, using the
// assembly kernel selected at init when one is available and the pure-Go
// lane kernel otherwise. w must be 4 or 8 and k > 0.
func sgemmLanes(c, a, bk []float32, m, j0, w, k, n int) {
	switch {
	case w == 8 && lanes8 != nil:
		lanes8(&a[0], &bk[j0], &c[j0], m, k, n)
	case w == 4 && lanes4 != nil:
		lanes4(&a[0], &bk[j0], &c[j0], m, k, n)
	default:
		kmajorColsGeneric(c, a, bk, 0, m, j0, w, k, n)
	}
}

// kmajorColsGeneric is the pure-Go mirror of the assembly kernels: rows
// [i0,i1) in blocks of 4 plus a single-row tail, a fixed block of w
// columns starting at j0. Each accumulator sums ascending l with per-step
// rounding — the lane semantics of the SIMD kernels, expressed scalar — so
// generic and assembly builds produce identical bits.
func kmajorColsGeneric(c, a, bk []float32, i0, i1, j0, w, k, n int) {
	var acc [4 * 8]float32
	i := i0
	for ; i+3 < i1; i += 4 {
		for z := range acc[:4*w] {
			acc[z] = 0
		}
		for l := 0; l < k; l++ {
			brow := bk[l*n+j0 : l*n+j0+w]
			a0 := a[(i+0)*k+l]
			a1 := a[(i+1)*k+l]
			a2 := a[(i+2)*k+l]
			a3 := a[(i+3)*k+l]
			for z, bv := range brow {
				acc[z] += a0 * bv
				acc[w+z] += a1 * bv
				acc[2*w+z] += a2 * bv
				acc[3*w+z] += a3 * bv
			}
		}
		for r := 0; r < 4; r++ {
			copy(c[(i+r)*n+j0:(i+r)*n+j0+w], acc[r*w:(r+1)*w])
		}
	}
	for ; i < i1; i++ {
		for z := range acc[:w] {
			acc[z] = 0
		}
		for l := 0; l < k; l++ {
			brow := bk[l*n+j0 : l*n+j0+w]
			a0 := a[i*k+l]
			for z, bv := range brow {
				acc[z] += a0 * bv
			}
		}
		copy(c[i*n+j0:i*n+j0+w], acc[:w])
	}
}

// kmajorScalar computes rows [i0,i1) × columns [j0,j1) one ascending dot at
// a time (the sub-lane column tail; bk is read column-strided).
func kmajorScalar(c, a, bk []float32, i0, i1, j0, j1, k, n int) {
	for i := i0; i < i1; i++ {
		ai := a[i*k : i*k+k]
		for j := j0; j < j1; j++ {
			var s float32
			for l, av := range ai {
				s += av * bk[l*n+j]
			}
			c[i*n+j] = s
		}
	}
}
