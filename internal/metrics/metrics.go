// Package metrics implements the evaluation measures reported in the
// paper: mAP@50 / precision / recall for stop-sign detection, and mean
// prediction error bucketed by distance range for the regression task.
package metrics

import (
	"sort"

	"repro/internal/box"
)

// Detection is one scored box produced by a detector.
type Detection struct {
	Box   box.Box
	Score float64
}

// ImageEval pairs the detections on one image with its ground-truth boxes.
type ImageEval struct {
	Dets []Detection
	GT   []box.Box
}

// PrecisionRecall computes precision and recall over a set of images at a
// fixed IoU threshold and confidence threshold, using greedy score-ordered
// matching (each ground-truth box may match at most one detection).
func PrecisionRecall(evals []ImageEval, iouThresh, scoreThresh float64) (precision, recall float64) {
	var tp, fp, fn int
	for _, ev := range evals {
		dets := make([]Detection, 0, len(ev.Dets))
		for _, d := range ev.Dets {
			if d.Score >= scoreThresh {
				dets = append(dets, d)
			}
		}
		sort.Slice(dets, func(i, j int) bool { return dets[i].Score > dets[j].Score })
		matched := make([]bool, len(ev.GT))
		for _, d := range dets {
			best := -1
			bestIoU := iouThresh
			for gi, g := range ev.GT {
				if matched[gi] {
					continue
				}
				if iou := d.Box.IoU(g); iou >= bestIoU {
					best, bestIoU = gi, iou
				}
			}
			if best >= 0 {
				matched[best] = true
				tp++
			} else {
				fp++
			}
		}
		for _, m := range matched {
			if !m {
				fn++
			}
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	} else {
		precision = 1 // no detections: vacuous precision, matching common tooling
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}

// AveragePrecision computes AP at the given IoU threshold by sweeping the
// confidence threshold over all detections (all-point interpolation, the
// COCO-style area under the precision-recall curve). With a single class
// this equals the paper's mAP@50 when iouThresh = 0.5.
func AveragePrecision(evals []ImageEval, iouThresh float64) float64 {
	type flatDet struct {
		score float64
		img   int
		idx   int
	}
	var all []flatDet
	totalGT := 0
	for i, ev := range evals {
		totalGT += len(ev.GT)
		for j, d := range ev.Dets {
			all = append(all, flatDet{score: d.Score, img: i, idx: j})
		}
	}
	if totalGT == 0 {
		return 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })

	matched := make([][]bool, len(evals))
	for i, ev := range evals {
		matched[i] = make([]bool, len(ev.GT))
	}

	var tp, fp int
	recalls := make([]float64, 0, len(all))
	precisions := make([]float64, 0, len(all))
	for _, fd := range all {
		ev := evals[fd.img]
		d := ev.Dets[fd.idx]
		best := -1
		bestIoU := iouThresh
		for gi, g := range ev.GT {
			if matched[fd.img][gi] {
				continue
			}
			if iou := d.Box.IoU(g); iou >= bestIoU {
				best, bestIoU = gi, iou
			}
		}
		if best >= 0 {
			matched[fd.img][best] = true
			tp++
		} else {
			fp++
		}
		recalls = append(recalls, float64(tp)/float64(totalGT))
		precisions = append(precisions, float64(tp)/float64(tp+fp))
	}

	// Make precision monotone non-increasing from the right, then integrate.
	for i := len(precisions) - 2; i >= 0; i-- {
		if precisions[i] < precisions[i+1] {
			precisions[i] = precisions[i+1]
		}
	}
	ap := 0.0
	prevR := 0.0
	for i := range recalls {
		ap += (recalls[i] - prevR) * precisions[i]
		prevR = recalls[i]
	}
	return ap
}

// DetectionScores bundles the three detection metrics the paper reports.
type DetectionScores struct {
	MAP50     float64
	Precision float64
	Recall    float64
}

// EvalDetections computes mAP@50 plus precision/recall at the given
// confidence threshold.
func EvalDetections(evals []ImageEval, scoreThresh float64) DetectionScores {
	p, r := PrecisionRecall(evals, 0.5, scoreThresh)
	return DetectionScores{
		MAP50:     AveragePrecision(evals, 0.5),
		Precision: p,
		Recall:    r,
	}
}

// PaperRanges are the distance buckets of Tables I, II, III and V.
var PaperRanges = [][2]float64{{0, 20}, {20, 40}, {40, 60}, {60, 80}}

// RangeAccumulator averages a signed error per distance bucket.
type RangeAccumulator struct {
	Buckets [][2]float64
	sums    []float64
	counts  []int
}

// NewRangeAccumulator returns an accumulator over the given buckets.
func NewRangeAccumulator(buckets [][2]float64) *RangeAccumulator {
	return &RangeAccumulator{
		Buckets: buckets,
		sums:    make([]float64, len(buckets)),
		counts:  make([]int, len(buckets)),
	}
}

// Add records a signed error observed at the given true distance. Samples
// outside every bucket are dropped.
func (r *RangeAccumulator) Add(trueDist, err float64) {
	for i, b := range r.Buckets {
		if trueDist >= b[0] && trueDist < b[1] {
			r.sums[i] += err
			r.counts[i]++
			return
		}
	}
}

// Means returns the mean signed error per bucket (0 for empty buckets).
func (r *RangeAccumulator) Means() []float64 {
	out := make([]float64, len(r.Buckets))
	for i := range out {
		if r.counts[i] > 0 {
			out[i] = r.sums[i] / float64(r.counts[i])
		}
	}
	return out
}

// Counts returns the number of samples per bucket.
func (r *RangeAccumulator) Counts() []int {
	out := make([]int, len(r.counts))
	copy(out, r.counts)
	return out
}
