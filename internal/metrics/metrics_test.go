package metrics

import (
	"math"
	"testing"

	"repro/internal/box"
)

func det(x0, y0, x1, y1, score float64) Detection {
	return Detection{Box: box.New(x0, y0, x1, y1), Score: score}
}

func TestPrecisionRecallPerfect(t *testing.T) {
	evals := []ImageEval{{
		Dets: []Detection{det(0, 0, 10, 10, 0.9)},
		GT:   []box.Box{box.New(0, 0, 10, 10)},
	}}
	p, r := PrecisionRecall(evals, 0.5, 0.5)
	if p != 1 || r != 1 {
		t.Fatalf("P=%v R=%v, want 1,1", p, r)
	}
}

func TestPrecisionRecallFalsePositive(t *testing.T) {
	evals := []ImageEval{{
		Dets: []Detection{
			det(0, 0, 10, 10, 0.9),
			det(30, 30, 40, 40, 0.8), // no matching GT
		},
		GT: []box.Box{box.New(0, 0, 10, 10)},
	}}
	p, r := PrecisionRecall(evals, 0.5, 0.5)
	if p != 0.5 || r != 1 {
		t.Fatalf("P=%v R=%v, want 0.5,1", p, r)
	}
}

func TestPrecisionRecallMiss(t *testing.T) {
	evals := []ImageEval{{
		Dets: nil,
		GT:   []box.Box{box.New(0, 0, 10, 10)},
	}}
	p, r := PrecisionRecall(evals, 0.5, 0.5)
	if p != 1 || r != 0 {
		t.Fatalf("P=%v R=%v, want vacuous 1, 0", p, r)
	}
}

func TestPrecisionRecallScoreThreshold(t *testing.T) {
	evals := []ImageEval{{
		Dets: []Detection{det(0, 0, 10, 10, 0.3)}, // below threshold
		GT:   []box.Box{box.New(0, 0, 10, 10)},
	}}
	_, r := PrecisionRecall(evals, 0.5, 0.5)
	if r != 0 {
		t.Fatalf("low-score detection must not count, recall=%v", r)
	}
}

func TestGreedyMatchingPrefersHighScore(t *testing.T) {
	// Two detections overlap the single GT; only the higher-scoring one
	// may match, the other is a false positive.
	evals := []ImageEval{{
		Dets: []Detection{
			det(0, 0, 10, 10, 0.7),
			det(1, 1, 11, 11, 0.9),
		},
		GT: []box.Box{box.New(0, 0, 10, 10)},
	}}
	p, r := PrecisionRecall(evals, 0.5, 0.5)
	if p != 0.5 || r != 1 {
		t.Fatalf("P=%v R=%v, want 0.5,1", p, r)
	}
}

func TestAveragePrecisionPerfect(t *testing.T) {
	evals := []ImageEval{
		{Dets: []Detection{det(0, 0, 10, 10, 0.9)}, GT: []box.Box{box.New(0, 0, 10, 10)}},
		{Dets: []Detection{det(5, 5, 15, 15, 0.8)}, GT: []box.Box{box.New(5, 5, 15, 15)}},
	}
	if ap := AveragePrecision(evals, 0.5); math.Abs(ap-1) > 1e-12 {
		t.Fatalf("AP = %v, want 1", ap)
	}
}

func TestAveragePrecisionHalf(t *testing.T) {
	// One TP at high score, one GT never found: AP = 0.5.
	evals := []ImageEval{
		{Dets: []Detection{det(0, 0, 10, 10, 0.9)}, GT: []box.Box{box.New(0, 0, 10, 10)}},
		{Dets: nil, GT: []box.Box{box.New(5, 5, 15, 15)}},
	}
	if ap := AveragePrecision(evals, 0.5); math.Abs(ap-0.5) > 1e-12 {
		t.Fatalf("AP = %v, want 0.5", ap)
	}
}

func TestAveragePrecisionFPBelowTP(t *testing.T) {
	// TP at score .9 then FP at .5: precision stays 1 up to recall 1,
	// so AP = 1 despite the trailing false positive.
	evals := []ImageEval{{
		Dets: []Detection{det(0, 0, 10, 10, 0.9), det(30, 30, 40, 40, 0.5)},
		GT:   []box.Box{box.New(0, 0, 10, 10)},
	}}
	if ap := AveragePrecision(evals, 0.5); math.Abs(ap-1) > 1e-12 {
		t.Fatalf("AP = %v, want 1", ap)
	}
}

func TestAveragePrecisionFPAboveTP(t *testing.T) {
	// FP outranks the TP: at recall 1 precision is 0.5, AP = 0.5.
	evals := []ImageEval{{
		Dets: []Detection{det(30, 30, 40, 40, 0.95), det(0, 0, 10, 10, 0.9)},
		GT:   []box.Box{box.New(0, 0, 10, 10)},
	}}
	if ap := AveragePrecision(evals, 0.5); math.Abs(ap-0.5) > 1e-12 {
		t.Fatalf("AP = %v, want 0.5", ap)
	}
}

func TestAveragePrecisionNoGT(t *testing.T) {
	evals := []ImageEval{{Dets: []Detection{det(0, 0, 1, 1, 0.9)}}}
	if ap := AveragePrecision(evals, 0.5); ap != 0 {
		t.Fatalf("AP with no GT = %v, want 0", ap)
	}
}

func TestEvalDetectionsBundles(t *testing.T) {
	evals := []ImageEval{{
		Dets: []Detection{det(0, 0, 10, 10, 0.9)},
		GT:   []box.Box{box.New(0, 0, 10, 10)},
	}}
	s := EvalDetections(evals, 0.5)
	if s.MAP50 != 1 || s.Precision != 1 || s.Recall != 1 {
		t.Fatalf("scores = %+v", s)
	}
}

func TestRangeAccumulator(t *testing.T) {
	acc := NewRangeAccumulator(PaperRanges)
	acc.Add(10, 2)
	acc.Add(15, 4)
	acc.Add(25, -1)
	acc.Add(70, 10)
	acc.Add(95, 100) // outside all buckets: dropped
	means := acc.Means()
	if means[0] != 3 {
		t.Fatalf("bucket0 mean = %v, want 3", means[0])
	}
	if means[1] != -1 {
		t.Fatalf("bucket1 mean = %v, want -1", means[1])
	}
	if means[2] != 0 {
		t.Fatalf("empty bucket mean = %v, want 0", means[2])
	}
	if means[3] != 10 {
		t.Fatalf("bucket3 mean = %v, want 10", means[3])
	}
	counts := acc.Counts()
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 0 || counts[3] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestRangeAccumulatorBoundaries(t *testing.T) {
	acc := NewRangeAccumulator(PaperRanges)
	acc.Add(20, 1) // falls in [20,40), not [0,20)
	if acc.Counts()[0] != 0 || acc.Counts()[1] != 1 {
		t.Fatalf("boundary sample misrouted: %v", acc.Counts())
	}
}
