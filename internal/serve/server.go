package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/exp"
)

// Runner executes validated specs; *exp.Experiment is the production
// implementation. Tests substitute fakes to pin the serving semantics
// (dedup, disconnect, caching) without training victims.
type Runner interface {
	RunObserved(ctx context.Context, s exp.Spec, obs exp.Observer) (*exp.Result, error)
}

// RunnerFactory builds the Runner for one preset. The factory runs under
// the server's context (not a request's): a client disconnecting during
// victim training must not abort the build other requests will share.
// Build-time progress goes to logf.
type RunnerFactory func(ctx context.Context, preset string, logf func(format string, args ...any)) (Runner, error)

// Config configures a Server.
type Config struct {
	// Cache stores serialized result payloads by canonical spec hash.
	// Nil selects a fresh in-memory cache.
	Cache exp.ResultCache
	// ArtifactDir, when set, backs runner construction with a
	// trained-model artifact store (warm environment starts).
	ArtifactDir string
	// Workers caps each runner's worker pool (0 = GOMAXPROCS).
	Workers int
	// MaxRuns bounds how many flights may compute at once (0 =
	// unbounded). A request that would START a new flight beyond the
	// bound is refused with 503 + Retry-After; joining an existing
	// flight and cache hits are always served — they add no compute.
	MaxRuns int
	// Store backs the /store object endpoints the fleet dispatcher's
	// store checkpoint transport streams lane segments into. Nil selects
	// an in-memory store; point it at a DirStore for durability across
	// daemon restarts.
	Store ObjectStore
	// Logf receives server lifecycle logs (nil = silent).
	Logf func(format string, args ...any)
	// NewRunner overrides the runner factory (tests); nil builds real
	// Experiments via exp.New.
	NewRunner RunnerFactory
}

// Server is the advrepro daemon: it validates posted specs, deduplicates
// concurrent submissions single-flight by canonical spec hash, streams
// Observer events to every subscriber as NDJSON, and serves repeat
// queries from the content-addressed result cache with zero compute.
type Server struct {
	ctx   context.Context
	cfg   Config
	cache exp.ResultCache
	store ObjectStore

	mu      sync.Mutex
	flights map[string]*flight
	runners map[string]*runnerFuture

	computes atomic.Int64
	hits     atomic.Int64
	rejected atomic.Int64
}

// New builds a Server. ctx scopes every computation and runner build:
// cancelling it shuts the serving core down.
func New(ctx context.Context, cfg Config) *Server {
	if cfg.Cache == nil {
		cfg.Cache = exp.NewMemoryCache()
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.NewRunner == nil {
		cfg.NewRunner = experimentFactory(cfg)
	}
	return &Server{
		ctx:     ctx,
		cfg:     cfg,
		cache:   cfg.Cache,
		store:   cfg.Store,
		flights: map[string]*flight{},
		runners: map[string]*runnerFuture{},
	}
}

// experimentFactory is the production RunnerFactory: a real Experiment
// per preset, artifact-store-backed when configured.
func experimentFactory(cfg Config) RunnerFactory {
	return func(ctx context.Context, preset string, logf func(format string, args ...any)) (Runner, error) {
		opts := []exp.Option{
			exp.WithPresetName(preset),
			exp.WithLogger(logf),
			exp.WithWorkers(cfg.Workers),
		}
		if cfg.ArtifactDir != "" {
			opts = append(opts, exp.WithArtifactDir(cfg.ArtifactDir))
		}
		return exp.New(ctx, opts...)
	}
}

// Stats reports serving counters: completed computations, cache hits,
// and currently in-flight runs.
func (s *Server) Stats() (computes, hits int64, flights int) {
	s.mu.Lock()
	flights = len(s.flights)
	s.mu.Unlock()
	return s.computes.Load(), s.hits.Load(), flights
}

// Warm builds the runner for a preset eagerly (datasets + victim
// training, or an artifact-store warm start), so the first /run request
// pays no construction cost.
func (s *Server) Warm(ctx context.Context, preset string) error {
	p, err := exp.PresetByName(preset)
	if err != nil {
		return err
	}
	_, err = s.runner(ctx, p.Name, nil)
	return err
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("POST /validate", s.handleValidate)
	mux.HandleFunc("GET /results/{key}", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("PUT /store/{key...}", s.handleStorePut)
	mux.HandleFunc("GET /store/{key...}", s.handleStoreGet)
	mux.HandleFunc("DELETE /store/{key...}", s.handleStoreDelete)
	mux.HandleFunc("GET /storelist", s.handleStoreList)
	return mux
}

// readSpec decodes and validates the request body as a Spec, returning
// the spec and its canonical hash.
func readSpec(w http.ResponseWriter, r *http.Request) (exp.Spec, string, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, fmt.Sprintf("read spec: %v", err), http.StatusBadRequest)
		return exp.Spec{}, "", false
	}
	spec, err := exp.ParseSpec(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return exp.Spec{}, "", false
	}
	key, err := exp.SpecHash(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return exp.Spec{}, "", false
	}
	return spec, key, true
}

// handleRun is the core endpoint: POST a spec, stream the run as NDJSON.
// A cached result streams just the terminal section (cache marker +
// payload); otherwise the request joins or starts the single flight for
// the spec's hash and streams its event broadcast.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	spec, key, ok := readSpec(w, r)
	if !ok {
		return
	}

	fl, cached, rejected := s.joinFlight(key, spec)
	if rejected {
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "5")
		http.Error(w, fmt.Sprintf("serve: at capacity (%d runs in flight, -maxruns %d); retry later",
			s.cfg.MaxRuns, s.cfg.MaxRuns), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Spec-Hash", key)
	if cached != nil {
		s.hits.Add(1)
		writeLine(w, cacheLine(key, true))
		writeLine(w, cached)
		return
	}

	sub := fl.subscribe()
	defer fl.unsubscribe(sub)
	for {
		line, more, err := sub.next(r.Context())
		if err != nil || !more {
			return // client gone, or stream complete
		}
		writeLine(w, line)
	}
}

// writeLine emits one NDJSON line and flushes it to the client so
// progress streams in real time.
func writeLine(w http.ResponseWriter, line []byte) {
	w.Write(line)
	io.WriteString(w, "\n")
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// joinFlight returns either the cached payload for key, or the flight
// computing it — joining the in-flight computation if one exists,
// starting one otherwise. Cache lookup and flight lookup happen under
// one mutex hold, and the compute path inserts into the cache and
// removes the flight under the same mutex, so every request lands on
// exactly one of the two: there is no window where a finished result is
// neither cached nor in flight. With MaxRuns set, a request that would
// have to start a NEW flight past the bound is rejected instead (cache
// hits and joins always succeed: they cost no compute).
func (s *Server) joinFlight(key string, spec exp.Spec) (fl *flight, cached []byte, rejected bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if payload, ok := s.cache.Get(key); ok {
		return nil, payload, false
	}
	if fl, ok := s.flights[key]; ok {
		return fl, nil, false
	}
	if s.cfg.MaxRuns > 0 && len(s.flights) >= s.cfg.MaxRuns {
		return nil, nil, true
	}
	fctx, cancel := context.WithCancel(s.ctx)
	fl = newFlight(key, cancel)
	s.flights[key] = fl
	go s.compute(fctx, fl, spec)
	return fl, nil, false
}

// compute runs one flight to completion: resolve the preset's runner
// (shared, built under the server context), execute the spec with an
// observer broadcasting every event to the flight's subscribers, and
// finish with either the terminal result section (cached) or an error
// line (never cached — a failed or client-abandoned run cannot poison
// the cache).
func (s *Server) compute(fctx context.Context, fl *flight, spec exp.Spec) {
	res, err := s.computeResult(fctx, fl, spec)
	if err != nil {
		s.logf("serve: run %s failed: %v", fl.key[:12], err)
		s.dropFlight(fl.key)
		fl.finish(errorLine(err))
		return
	}
	payload, err := EncodeResult(fl.key, res)
	if err != nil {
		s.dropFlight(fl.key)
		fl.finish(errorLine(err))
		return
	}
	s.computes.Add(1)
	s.mu.Lock()
	s.cache.Put(fl.key, payload)
	delete(s.flights, fl.key)
	s.mu.Unlock()
	fl.finish(cacheLine(fl.key, false), payload)
}

// computeResult resolves the runner and executes the spec under the
// flight context.
func (s *Server) computeResult(fctx context.Context, fl *flight, spec exp.Spec) (*exp.Result, error) {
	p, err := exp.PresetByName(spec.Preset)
	if err != nil {
		return nil, err
	}
	// Runner build logs (dataset generation, victim training or warm
	// start) stream to this flight's subscribers while they wait.
	runner, err := s.runner(fctx, p.Name, func(format string, args ...any) {
		fl.broadcast(mustMarshal(WireEvent{Event: "log", Msg: fmt.Sprintf(format, args...)}))
	})
	if err != nil {
		return nil, err
	}
	// Grid kinds stream full checkpoint records on every cell-done, so
	// remote clients can maintain a resumable local lane file.
	rc, err := specRecordContext(spec)
	if err != nil {
		return nil, err
	}
	obs := exp.ObserverFunc(func(ev exp.Event) { fl.broadcast(encodeEventLine(ev, rc)) })
	return runner.RunObserved(fctx, spec, obs)
}

// dropFlight removes a flight from the map (failed runs only; successful
// runs are removed by compute under the same lock as the cache insert).
func (s *Server) dropFlight(key string) {
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
}

// runnerFuture is the once-per-preset runner build. The log sink is
// detachable: the flight that initiated the build streams its progress,
// and detaches once the build resolves.
type runnerFuture struct {
	done   chan struct{}
	runner Runner
	err    error

	mu   sync.Mutex
	sink func(format string, args ...any)
}

func (rf *runnerFuture) logf(format string, args ...any) {
	rf.mu.Lock()
	sink := rf.sink
	rf.mu.Unlock()
	if sink != nil {
		sink(format, args...)
	}
}

func (rf *runnerFuture) detach() {
	rf.mu.Lock()
	rf.sink = nil
	rf.mu.Unlock()
}

// runner resolves the shared Runner for a preset, building it on first
// use under the SERVER context — a request vanishing mid-build must not
// abort a build other requests will reuse. The waiter respects its own
// ctx: it can give up while the build continues for the next caller. A
// failed build is forgotten so a later request can retry.
func (s *Server) runner(ctx context.Context, preset string, sink func(format string, args ...any)) (Runner, error) {
	s.mu.Lock()
	rf, ok := s.runners[preset]
	if !ok {
		rf = &runnerFuture{done: make(chan struct{}), sink: sink}
		s.runners[preset] = rf
		// Build logs tee to the daemon log (operators watch training and
		// warm starts there) and to the initiating flight's subscribers.
		buildLogf := func(format string, args ...any) {
			s.logf(format, args...)
			rf.logf(format, args...)
		}
		go func() {
			s.logf("serve: building %s runner", preset)
			rf.runner, rf.err = s.cfg.NewRunner(s.ctx, preset, buildLogf)
			rf.detach()
			if rf.err != nil {
				s.mu.Lock()
				delete(s.runners, preset)
				s.mu.Unlock()
			}
			close(rf.done)
		}()
	}
	s.mu.Unlock()

	select {
	case <-rf.done:
		return rf.runner, rf.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// handleStorePut stores one object under a validated key — a lane
// segment streamed off-machine by the dispatcher's store transport.
func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !ValidStoreKey(key) {
		http.Error(w, fmt.Sprintf("bad object key %q", key), http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		http.Error(w, fmt.Sprintf("read object: %v", err), http.StatusBadRequest)
		return
	}
	if err := s.store.Put(key, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStoreGet serves one stored object.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !ValidStoreKey(key) {
		http.Error(w, fmt.Sprintf("bad object key %q", key), http.StatusBadRequest)
		return
	}
	data, err := s.store.Get(key)
	if err != nil {
		if err == ErrNoObject {
			http.Error(w, "no such object", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// handleStoreDelete removes one stored object (idempotent).
func (s *Server) handleStoreDelete(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !ValidStoreKey(key) {
		http.Error(w, fmt.Sprintf("bad object key %q", key), http.StatusBadRequest)
		return
	}
	if err := s.store.Delete(key); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStoreList enumerates stored keys under ?prefix= as a JSON array.
func (s *Server) handleStoreList(w http.ResponseWriter, r *http.Request) {
	keys, err := s.store.List(r.URL.Query().Get("prefix"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if keys == nil {
		keys = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(mustMarshal(keys), '\n'))
}

// handleValidate checks a spec without running it, returning its
// canonical hash and whether the result is already cached.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	_, key, ok := readSpec(w, r)
	if !ok {
		return
	}
	_, hit := s.cache.Get(key)
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(mustMarshal(struct {
		Key    string `json:"key"`
		Cached bool   `json:"cached"`
	}{key, hit}), '\n'))
}

// handleResult serves a cached result payload by content address.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	payload, ok := s.cache.Get(key)
	if !ok {
		http.Error(w, "no cached result for key", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(payload, '\n'))
}

// handleHealthz reports liveness, serving counters and load state: the
// in-flight run count against the -maxruns bound and how many requests
// have been shed, so a dispatcher (or an operator) can read back-pressure
// without probing /run.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	computes, hits, flights := s.Stats()
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(mustMarshal(struct {
		Status   string `json:"status"`
		Computes int64  `json:"computes"`
		Hits     int64  `json:"hits"`
		Flights  int    `json:"flights"`
		InFlight int    `json:"in_flight"`
		MaxRuns  int    `json:"max_runs"`
		Rejected int64  `json:"rejected"`
	}{"ok", computes, hits, flights, flights, s.cfg.MaxRuns, s.rejected.Load()}), '\n'))
}

// logf logs through the configured sink.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
