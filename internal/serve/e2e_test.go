package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/exp"
)

// e2eMicroPreset is the tiny preset of the real-Experiment e2e tests:
// they certify the serving pipeline end to end (validate → train →
// stream → cache), not experiment quality.
func e2eMicroPreset() eval.Preset {
	return eval.Preset{
		Name:      "micro",
		SignTrain: 40, SignTest: 12,
		DriveTrain: 50, DrivePerBucket: 3,
		DetEpochs: 4, RegEpochs: 4,
		AdvEpochs: 1, ContrastiveEpochs: 1,
		DiffusionSteps: 10, DiffPIRSteps: 3,
		APGDSteps: 4, SimBASteps: 20, RP2Iters: 4,
		Seed: 5,
	}
}

// microFactory builds real Experiments over the micro preset, ignoring
// the requested preset name (specs with an empty preset address any
// environment).
func microFactory(ctx context.Context, _ string, logf func(string, ...any)) (Runner, error) {
	return exp.New(ctx, exp.WithPreset(e2eMicroPreset()), exp.WithLogger(logf), exp.WithWorkers(1))
}

// microMatrixSpec is a 2-cell grid: enough to observe a real event
// sequence without noticeable runtime.
const microMatrixSpec = `{"kind":"matrix","matrix":{"scenarios":["highway-cruise"],"attacks":["None"],"defenses":["None","Median Blurring"],"duration":0.5,"dt":0.1,"base_seed":11}}`

// assertWellFormedStream checks the JSONL grammar of one /run response:
// optional log lines anywhere, exactly one run-start before any cell
// event, cell-start/cell-done pairs, one run-done, then the terminal
// cache marker followed by the result payload.
func assertWellFormedStream(t *testing.T, lines [][]byte, wantCells int, wantHit bool) []byte {
	t.Helper()
	if len(lines) < 2 {
		t.Fatalf("stream has %d lines", len(lines))
	}
	var runStarts, runDones, cellStarts, cellDones int
	terminalAt := -1
	for i, line := range lines[:len(lines)-1] {
		var ev WireEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d %q: %v", i, line, err)
		}
		switch ev.Event {
		case "run-start":
			if cellStarts > 0 || runDones > 0 {
				t.Fatalf("line %d: run-start after cell/run-done events", i)
			}
			runStarts++
		case "cell-start":
			if runStarts == 0 {
				t.Fatalf("line %d: cell-start before run-start", i)
			}
			if ev.Cell == nil {
				t.Fatalf("line %d: cell-start without a cell identity", i)
			}
			cellStarts++
		case "cell-done":
			if ev.Cell == nil || ev.Metrics == nil {
				t.Fatalf("line %d: cell-done lacks cell/metrics: %s", i, line)
			}
			cellDones++
		case "run-done":
			if ev.Err != "" {
				t.Fatalf("run failed: %s", ev.Err)
			}
			runDones++
		case "log":
			// Free-position progress lines.
		case "cache":
			if i != len(lines)-2 {
				t.Fatalf("cache marker at line %d, want second-to-last", i)
			}
			if ev.Hit != wantHit {
				t.Fatalf("cache hit=%v, want %v", ev.Hit, wantHit)
			}
			terminalAt = i
		default:
			t.Fatalf("line %d: unknown event %q", i, ev.Event)
		}
	}
	if terminalAt == -1 {
		t.Fatal("stream has no cache marker")
	}
	if !wantHit {
		if runStarts != 1 || runDones != 1 {
			t.Fatalf("run bracketing %d/%d, want 1/1", runStarts, runDones)
		}
		if cellStarts != wantCells || cellDones != wantCells {
			t.Fatalf("cells %d/%d, want %d", cellStarts, cellDones, wantCells)
		}
	} else if runStarts+runDones+cellStarts+cellDones != 0 {
		t.Fatal("cache hit replayed run events")
	}

	var payload ResultPayload
	last := lines[len(lines)-1]
	if err := json.Unmarshal(last, &payload); err != nil {
		t.Fatalf("payload %q: %v", last, err)
	}
	if payload.Event != "result" || payload.Key == "" || payload.Text == "" {
		t.Fatalf("malformed payload: %s", last)
	}
	return last
}

// TestServeE2EMicroStream drives the full serving pipeline with real
// victims (micro preset): stream grammar, cache round-trip, byte
// identity, and the dedup counters — fast enough for -short.
func TestServeE2EMicroStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := New(ctx, Config{NewRunner: microFactory})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	first := postRun(t, hs.URL, microMatrixSpec)
	p1 := assertWellFormedStream(t, first, 2, false)
	second := postRun(t, hs.URL, microMatrixSpec)
	p2 := assertWellFormedStream(t, second, 2, true)
	if !bytes.Equal(p1, p2) {
		t.Fatalf("cached payload differs:\n%s\n%s", p1, p2)
	}
	var payload ResultPayload
	if err := json.Unmarshal(p1, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.CSV == "" || !strings.Contains(payload.Text, "highway-cruise") {
		t.Fatalf("matrix payload lacks grid content: %s", p1)
	}
	if computes, hits, _ := srv.Stats(); computes != 1 || hits != 1 {
		t.Fatalf("computes=%d hits=%d, want 1/1", computes, hits)
	}

	// Parallel identical submissions after the cache is warm all hit.
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := hs.Client().Post(hs.URL+"/run", "application/json", strings.NewReader(microMatrixSpec))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			lines := readLines(t, resp.Body)
			if !bytes.Equal(lines[len(lines)-1], p1) {
				t.Error("parallel hit returned different bytes")
			}
		}()
	}
	wg.Wait()
	if computes, hits, _ := srv.Stats(); computes != 1 || hits != 4 {
		t.Fatalf("computes=%d hits=%d, want 1/4", computes, hits)
	}
}

// TestServeE2EQuickCommittedSpec is the full-fat harness of the ISSUE:
// a daemon on a loopback port under the real quick preset, the committed
// specs/quick_matrix.json submitted twice (second response a byte-
// identical cache hit), then a daemon restart over the same artifact
// store proving the rebuilt environment warm-starts with zero training
// and reproduces the payload bit for bit.
func TestServeE2EQuickCommittedSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the quick preset (~1 min)")
	}
	specJSON, err := os.ReadFile(filepath.Join("..", "..", "specs", "quick_matrix.json"))
	if err != nil {
		t.Fatal(err)
	}
	artifacts := t.TempDir()
	var logMu sync.Mutex
	var coldLog, warmLog strings.Builder

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv1 := New(ctx, Config{
		ArtifactDir: artifacts,
		Logf: func(format string, a ...any) {
			logMu.Lock()
			fmt.Fprintf(&coldLog, format+"\n", a...)
			logMu.Unlock()
		},
	})
	hs1 := httptest.NewServer(srv1.Handler())
	defer hs1.Close()

	// The spec addresses a 3-scenario grid over the default axes: 27 cells.
	spec, err := exp.ParseSpec(specJSON)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := spec.CellIDs()
	if err != nil {
		t.Fatal(err)
	}

	first := postRun(t, hs1.URL, string(specJSON))
	p1 := assertWellFormedStream(t, first, len(ids), false)
	second := postRun(t, hs1.URL, string(specJSON))
	p2 := assertWellFormedStream(t, second, len(ids), true)
	if !bytes.Equal(p1, p2) {
		t.Fatalf("cache hit not byte-identical:\n%s\n%s", p1, p2)
	}
	if computes, hits, _ := srv1.Stats(); computes != 1 || hits != 1 {
		t.Fatalf("server 1: computes=%d hits=%d", computes, hits)
	}
	// The cold build trained (training epochs stream as log events to
	// the first subscriber).
	trained := false
	for _, line := range first {
		var ev WireEvent
		if json.Unmarshal(line, &ev) == nil && ev.Event == "log" && strings.Contains(ev.Msg, "epoch") {
			trained = true
			break
		}
	}
	if !trained {
		t.Fatal("cold server streamed no training epochs")
	}

	// Restart: a fresh daemon (empty result cache) over the same artifact
	// directory must warm-start the environment — zero training — and the
	// recomputed result must be bit-identical to the first daemon's.
	srv2 := New(ctx, Config{
		ArtifactDir: artifacts,
		Logf: func(format string, a ...any) {
			logMu.Lock()
			fmt.Fprintf(&warmLog, format+"\n", a...)
			logMu.Unlock()
		},
	})
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	third := postRun(t, hs2.URL, string(specJSON))
	p3 := assertWellFormedStream(t, third, len(ids), false) // fresh cache: a compute, not a hit
	if !bytes.Equal(p1, p3) {
		t.Fatalf("warm-started compute differs from the original:\n%s\n%s", p1, p3)
	}
	warmStarted := 0
	for _, line := range third {
		var ev WireEvent
		if json.Unmarshal(line, &ev) != nil || ev.Event != "log" {
			continue
		}
		if strings.Contains(ev.Msg, "epoch") {
			t.Fatalf("warm-started server trained anyway: %s", ev.Msg)
		}
		if strings.Contains(ev.Msg, "warm start from artifact") {
			warmStarted++
		}
	}
	if warmStarted != 2 {
		t.Fatalf("expected detector+regressor warm starts, saw %d", warmStarted)
	}
}
