package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestObjectStoreConformance drives the shared ObjectStore contract
// through every implementation: put/get round-trip, overwrite semantics,
// ErrNoObject, prefix listing in lexical order, idempotent delete, and
// key validation. The HTTP store runs against a real daemon handler, so
// the /store endpoints are covered by the same table.
func TestObjectStoreConformance(t *testing.T) {
	srv := New(context.Background(), Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	stores := map[string]ObjectStore{
		"mem":  NewMemStore(),
		"dir":  NewDirStore(filepath.Join(t.TempDir(), "objects")),
		"http": &HTTPStore{Base: hs.URL},
	}
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Get("lanes/none/seg_000000"); !errors.Is(err, ErrNoObject) {
				t.Fatalf("absent key: err = %v, want ErrNoObject", err)
			}
			if err := s.Put("lanes/h1/a/seg_000000", []byte("one")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("lanes/h1/a/seg_000001", []byte("two")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("lanes/h1/b/seg_000000", []byte("three")); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("lanes/h1/a/seg_000000")
			if err != nil || !bytes.Equal(got, []byte("one")) {
				t.Fatalf("get = %q, %v", got, err)
			}
			// Put overwrites: re-delivery self-heals a torn upload.
			if err := s.Put("lanes/h1/a/seg_000000", []byte("one-again")); err != nil {
				t.Fatal(err)
			}
			if got, _ := s.Get("lanes/h1/a/seg_000000"); !bytes.Equal(got, []byte("one-again")) {
				t.Fatalf("overwrite lost: %q", got)
			}
			keys, err := s.List("lanes/h1/a/")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"lanes/h1/a/seg_000000", "lanes/h1/a/seg_000001"}
			if !reflect.DeepEqual(keys, want) {
				t.Fatalf("list = %v, want %v", keys, want)
			}
			if err := s.Delete("lanes/h1/a/seg_000001"); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("lanes/h1/a/seg_000001"); err != nil {
				t.Fatalf("second delete: %v, want idempotent nil", err)
			}
			if keys, _ := s.List("lanes/h1/a/"); len(keys) != 1 {
				t.Fatalf("after delete, list = %v", keys)
			}
			for _, bad := range []string{"", "a//b", "../escape", "a/../b", "sp ace"} {
				if err := s.Put(bad, []byte("x")); err == nil {
					t.Fatalf("bad key %q accepted", bad)
				}
			}
		})
	}
}

// TestValidStoreKey pins the key alphabet down.
func TestValidStoreKey(t *testing.T) {
	for _, ok := range []string{"a", "lanes/abc123/shard_0_of_2.jsonl/seg_000000", "A-b_c.d"} {
		if !ValidStoreKey(ok) {
			t.Fatalf("ValidStoreKey(%q) = false", ok)
		}
	}
	long := strings.Repeat("a", 513)
	for _, bad := range []string{"", ".", "..", "a/..", "/a", "a/", "a b", "a\x00b", long} {
		if ValidStoreKey(bad) {
			t.Fatalf("ValidStoreKey(%q) = true", bad)
		}
	}
}

// TestStoreEndpointsRejectBadKeys: the daemon refuses malformed keys at
// the edge, before touching its backend.
func TestStoreEndpointsRejectBadKeys(t *testing.T) {
	srv := New(context.Background(), Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	req, err := http.NewRequest(http.MethodPut, hs.URL+"/store/bad%2F..%2Fkey", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("traversal key: %s, want 400", resp.Status)
	}
}

// TestDirStoreTempFilesInvisible: a concurrent writer's temp files never
// appear in listings — an object is absent or complete.
func TestDirStoreTempFilesInvisible(t *testing.T) {
	root := t.TempDir()
	s := NewDirStore(root)
	if err := s.Put("lanes/h/a/seg_000000", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Simulate an in-flight atomic write.
	if err := os.WriteFile(filepath.Join(root, "lanes", "h", "a", ".obj_inflight"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.List("lanes/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "lanes/h/a/seg_000000" {
		t.Fatalf("list leaked temp files: %v", keys)
	}
}

// TestDiskCacheRestartRoundTrip: entries written by one DiskCache
// instance are served byte-identically by a fresh instance over the same
// directory — the restart survival contract — and entries are
// write-once.
func TestDiskCacheRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewDiskCache(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32) // hash-shaped
	payload := []byte(`{"text":"result payload"}`)
	c1.Put(key, payload)
	if got, ok := c1.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("same-instance get = %q, %v", got, ok)
	}

	c2, err := NewDiskCache(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("post-restart get = %q, %v; want the exact pre-restart bytes", got, ok)
	}
	if c2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c2.Len())
	}

	// Write-once: equal hashes denote identical payloads, so the first
	// write is final.
	c2.Put(key, []byte("imposter"))
	if got, _ := c2.Get(key); !bytes.Equal(got, payload) {
		t.Fatalf("write-once violated: %q", got)
	}

	// Hostile keys never touch the filesystem.
	c2.Put("../escape", payload)
	if _, ok := c2.Get("../escape"); ok {
		t.Fatal("path-traversal key round-tripped")
	}
	if c2.Len() != 1 {
		t.Fatalf("hostile key persisted: Len = %d", c2.Len())
	}
}

// TestServeDiskCacheSurvivesRestart is the daemon-level restart test: a
// second server generation over the same -cachedir answers the repeat
// query from disk with zero computes and byte-identical text.
func TestServeDiskCacheSurvivesRestart(t *testing.T) {
	cacheDir := t.TempDir()
	run := func(fake *fakeRunner) [][]byte {
		dc, err := NewDiskCache(cacheDir, t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		srv := New(ctx, Config{
			Cache: dc,
			NewRunner: func(context.Context, string, func(string, ...any)) (Runner, error) {
				return fake, nil
			},
		})
		hs := httptest.NewServer(srv.Handler())
		defer hs.Close()
		return postRun(t, hs.URL, testSpecJSON)
	}

	gen1 := &fakeRunner{}
	lines1 := run(gen1)
	if gen1.count() != 1 {
		t.Fatalf("first generation computed %d times, want 1", gen1.count())
	}

	gen2 := &fakeRunner{}
	lines2 := run(gen2)
	if gen2.count() != 0 {
		t.Fatalf("second generation computed %d times, want 0 (disk cache hit)", gen2.count())
	}
	// The terminal result line must be byte-identical across the restart.
	last1, last2 := lines1[len(lines1)-1], lines2[len(lines2)-1]
	if !bytes.Equal(last1, last2) {
		t.Fatalf("result diverged across restart:\ngen1: %s\ngen2: %s", last1, last2)
	}
}
