package serve

// The object store is the serving layer's blob facility: a flat keyed
// byte store the fleet dispatcher's store checkpoint transport streams
// lane segments into, so shard results survive the machine that computed
// them. Keys are slash-separated paths (lanes/<grid-hash>/<lane>/seg_N);
// values are opaque. Three implementations cover the deployment ladder:
// MemStore (in-process, tests and default daemon state), DirStore (a
// directory tree with atomic temp+rename publication — an object is
// either absent or complete, never torn by the writer), and HTTPStore (a
// client for the daemon's /store endpoints, the off-machine path).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNoObject marks a Get against a key the store holds no object for.
var ErrNoObject = errors.New("serve: no such object")

// ObjectStore is the minimal blob API behind the store checkpoint
// transport. Put overwrites (re-delivery of a segment is idempotent when
// the bytes match and self-healing when a retry replaces a torn upload);
// Get returns ErrNoObject for absent keys; List enumerates keys under a
// prefix in lexical order; Delete is idempotent (absent keys succeed).
// Implementations must be safe for concurrent use.
type ObjectStore interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	List(prefix string) ([]string, error)
	Delete(key string) error
}

// ValidStoreKey reports whether key is an acceptable object key: one or
// more non-empty slash-separated segments, none of them path-traversal
// tokens, drawn from a filesystem- and URL-safe alphabet. Both the
// DirStore (which maps keys to paths) and the daemon endpoints enforce
// this before touching storage.
func ValidStoreKey(key string) bool {
	if key == "" || len(key) > 512 {
		return false
	}
	for _, seg := range strings.Split(key, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return false
		}
		for _, r := range seg {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			case r == '.' || r == '_' || r == '-':
			default:
				return false
			}
		}
	}
	return true
}

// MemStore is the in-process ObjectStore: a mutex-guarded map. It backs
// the daemon when no -storedir is configured and the unit tests.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory object store.
func NewMemStore() *MemStore { return &MemStore{m: map[string][]byte{}} }

// Put implements ObjectStore.
func (s *MemStore) Put(key string, data []byte) error {
	if !ValidStoreKey(key) {
		return fmt.Errorf("serve: bad object key %q", key)
	}
	s.mu.Lock()
	s.m[key] = append([]byte(nil), data...)
	s.mu.Unlock()
	return nil
}

// Get implements ObjectStore.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[key]
	if !ok {
		return nil, ErrNoObject
	}
	return append([]byte(nil), v...), nil
}

// List implements ObjectStore.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements ObjectStore.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
	return nil
}

// DirStore is a directory-tree ObjectStore: each key maps to a file under
// the root, published atomically (temp file + rename), so a reader never
// observes a half-written object from this writer — the only torn
// segments are ones a faulty uploader stored torn, which the checkpoint
// load path tolerates. The root is created lazily on first Put.
type DirStore struct {
	root string
}

// NewDirStore returns a DirStore rooted at dir.
func NewDirStore(dir string) *DirStore { return &DirStore{root: dir} }

func (s *DirStore) path(key string) (string, error) {
	if !ValidStoreKey(key) {
		return "", fmt.Errorf("serve: bad object key %q", key)
	}
	return filepath.Join(s.root, filepath.FromSlash(key)), nil
}

// Put implements ObjectStore.
func (s *DirStore) Put(key string, data []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("serve: store put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".obj_*")
	if err != nil {
		return fmt.Errorf("serve: store put: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close() //advlint:close-ok error-path cleanup; the write failure is returned
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store put: %w", err)
	}
	return nil
}

// Get implements ObjectStore.
func (s *DirStore) Get(key string) ([]byte, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoObject
	}
	if err != nil {
		return nil, fmt.Errorf("serve: store get: %w", err)
	}
	return data, nil
}

// List implements ObjectStore.
func (s *DirStore) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil // empty store
			}
			return err
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), ".obj_") {
			return nil
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		if key := filepath.ToSlash(rel); strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("serve: store list: %w", err)
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements ObjectStore.
func (s *DirStore) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("serve: store delete: %w", err)
	}
	return nil
}

// HTTPStore is the ObjectStore client for a daemon's /store endpoints:
// the off-machine leg of the store checkpoint transport. It is a thin
// wire adapter — retry/backoff policy belongs to the caller (the store
// transport wraps every operation in capped jittered retries).
type HTTPStore struct {
	// Base is the daemon's base URL (http://host:port).
	Base string
	// Client overrides the HTTP client (nil = http.DefaultClient).
	Client *http.Client
}

func (s *HTTPStore) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

func (s *HTTPStore) do(method, key string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, s.Base+"/store/"+key, body)
	if err != nil {
		return nil, err
	}
	return s.client().Do(req)
}

// Put implements ObjectStore.
func (s *HTTPStore) Put(key string, data []byte) error {
	resp, err := s.do(http.MethodPut, key, strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("serve: store put %s: %s", key, httpErrorBody(resp))
	}
	return nil
}

// Get implements ObjectStore.
func (s *HTTPStore) Get(key string) ([]byte, error) {
	resp, err := s.do(http.MethodGet, key, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrNoObject
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: store get %s: %s", key, httpErrorBody(resp))
	}
	return io.ReadAll(resp.Body)
}

// List implements ObjectStore.
func (s *HTTPStore) List(prefix string) ([]string, error) {
	resp, err := s.client().Get(s.Base + "/storelist?prefix=" + url.QueryEscape(prefix))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: store list: %s", httpErrorBody(resp))
	}
	var keys []string
	if err := json.NewDecoder(resp.Body).Decode(&keys); err != nil {
		return nil, fmt.Errorf("serve: store list: %w", err)
	}
	return keys, nil
}

// Delete implements ObjectStore.
func (s *HTTPStore) Delete(key string) error {
	resp, err := s.do(http.MethodDelete, key, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("serve: store delete %s: %s", key, httpErrorBody(resp))
	}
	return nil
}

// httpErrorBody renders a non-OK response for an error message.
func httpErrorBody(resp *http.Response) string {
	buf, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	return fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(buf)))
}
