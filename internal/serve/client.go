package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// StreamConfig configures a StreamSpec call.
type StreamConfig struct {
	// MaxReconnects bounds how many times a dropped stream is re-POSTed
	// (0 = no reconnects: first drop is fatal). The daemon deduplicates
	// by canonical spec hash, so a reconnect either rejoins the same
	// in-flight run or lands a free cache hit — it never doubles work.
	MaxReconnects int
	// ReconnectWait is the pause before each reconnect (default 1s). A
	// 503's Retry-After header overrides it for that attempt.
	ReconnectWait time.Duration
	// OnEvent receives every non-terminal wire event in stream order. A
	// non-nil return aborts the stream with that error. On a reconnect
	// the run's events replay from the flight's broadcast position — the
	// callback must tolerate duplicates (cell records carry their grid
	// index, so dedup by index is natural).
	OnEvent func(WireEvent) error
	// Client overrides the HTTP client (nil = http.DefaultClient).
	Client *http.Client
	// Logf narrates reconnect attempts (nil = silent).
	Logf func(format string, args ...any)
}

// permanentErr marks a server-reported failure: reconnecting cannot help,
// the run itself failed.
type permanentErr struct{ err error }

func (p permanentErr) Error() string { return p.err.Error() }
func (p permanentErr) Unwrap() error { return p.err }

// StreamSpec POSTs a spec to a daemon's /run and consumes the NDJSON
// stream to its terminal result, reconnecting through transient drops
// (dial failures, mid-stream disconnects, 503 shedding) up to the
// configured bound. Returns the terminal payload and whether the LAST
// attempt was served from the daemon's cache. Remote "error" events and
// non-retriable HTTP statuses fail immediately — those are run failures,
// not transport failures.
func StreamSpec(ctx context.Context, baseURL string, specJSON []byte, cfg StreamConfig) (*ResultPayload, bool, error) {
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	wait := cfg.ReconnectWait
	if wait <= 0 {
		wait = time.Second
	}
	url := strings.TrimRight(baseURL, "/") + "/run"

	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > cfg.MaxReconnects {
				return nil, false, fmt.Errorf("serve: stream failed after %d reconnect(s): %w", cfg.MaxReconnects, lastErr)
			}
			if cfg.Logf != nil {
				cfg.Logf("reconnected (attempt %d)", attempt)
			}
			if cfg.OnEvent != nil {
				// Surface the reconnect in the event stream too, so
				// progress renderers show it inline.
				ev := WireEvent{Event: "log", Msg: fmt.Sprintf("reconnected (attempt %d)", attempt)}
				if err := cfg.OnEvent(ev); err != nil {
					return nil, false, err
				}
			}
		}
		payload, hit, retryIn, err := streamOnce(ctx, client, url, specJSON, cfg.OnEvent)
		if err == nil {
			return payload, hit, nil
		}
		var perm permanentErr
		if errors.As(err, &perm) {
			return nil, false, perm.err
		}
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		lastErr = err
		sleep := wait
		if retryIn > 0 {
			sleep = retryIn
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// streamOnce performs one POST + stream consumption. retryIn carries a
// 503 Retry-After hint; a nil error means the terminal payload arrived.
func streamOnce(ctx context.Context, client *http.Client, url string, specJSON []byte, onEvent func(WireEvent) error) (payload *ResultPayload, cacheHit bool, retryIn time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(specJSON))
	if err != nil {
		return nil, false, 0, permanentErr{err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, false, 0, fmt.Errorf("serve: dial: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusServiceUnavailable:
		// Load shedding: transient by definition, honor Retry-After.
		retry := time.Duration(0)
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, perr := strconv.Atoi(strings.TrimSpace(s)); perr == nil && secs > 0 {
				retry = time.Duration(secs) * time.Second
			}
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, false, retry, fmt.Errorf("serve: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	default:
		// 4xx (bad spec) and unexpected statuses: retrying re-sends the
		// same bytes to the same server — fail now.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, false, 0, permanentErr{fmt.Errorf("serve: %s: %s", resp.Status, strings.TrimSpace(string(msg)))}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 32<<20) // result payloads carry full grids
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev WireEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, false, 0, fmt.Errorf("serve: bad stream line %q: %w", line, err)
		}
		switch ev.Event {
		case "error":
			return nil, false, 0, permanentErr{fmt.Errorf("serve: remote: %s", ev.Err)}
		case "cache":
			cacheHit = ev.Hit
		case "result":
			var p ResultPayload
			if err := json.Unmarshal(line, &p); err != nil {
				return nil, false, 0, fmt.Errorf("serve: bad result payload: %w", err)
			}
			payload = &p
		default:
			if onEvent != nil {
				if err := onEvent(ev); err != nil {
					return nil, false, 0, permanentErr{err}
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, false, 0, fmt.Errorf("serve: stream: %w", err)
	}
	if payload == nil {
		return nil, false, 0, fmt.Errorf("serve: stream ended without a result (connection dropped mid-run?)")
	}
	return payload, cacheHit, 0, nil
}
