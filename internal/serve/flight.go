package serve

import (
	"context"
	"sync"
)

// This file implements the single-flight machinery of the /run endpoint:
// one in-flight computation per canonical spec hash, with every
// subscriber (the initiating request plus any duplicate submissions that
// arrive while it runs) streaming the same event broadcast. The run's
// context is cancelled only when the last subscriber disconnects, and a
// cancelled run is never cached — so a mid-stream disconnect aborts the
// compute without poisoning the cache.

// subscriber is one client's view of a flight: an unbounded FIFO of wire
// lines fed by the broadcaster and drained by the HTTP handler. The
// queue is unbounded so a slow client can never stall the compute or the
// other subscribers; memory is bounded in practice by the run's finite
// event count.
type subscriber struct {
	mu     sync.Mutex
	lines  [][]byte
	closed bool
	wake   chan struct{} // 1-buffered wakeup signal
}

func newSubscriber() *subscriber {
	return &subscriber{wake: make(chan struct{}, 1)}
}

// push appends a line to the queue and wakes the drainer.
func (s *subscriber) push(line []byte) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.lines = append(s.lines, line)
	s.mu.Unlock()
	s.signal()
}

// close marks the stream complete; queued lines remain drainable.
func (s *subscriber) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.signal()
}

func (s *subscriber) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// next returns the next queued line, blocking until one arrives, the
// stream completes (ok=false), or ctx is done (the client disconnected).
func (s *subscriber) next(ctx context.Context) (line []byte, ok bool, err error) {
	for {
		s.mu.Lock()
		if len(s.lines) > 0 {
			line = s.lines[0]
			s.lines = s.lines[1:]
			s.mu.Unlock()
			return line, true, nil
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return nil, false, nil
		}
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-s.wake:
		}
	}
}

// flight is one in-flight spec computation and its subscriber set.
type flight struct {
	key string

	mu       sync.Mutex
	subs     map[*subscriber]struct{}
	cancel   context.CancelFunc
	finished bool
	terminal [][]byte // terminal lines, replayed to late subscribers
}

func newFlight(key string, cancel context.CancelFunc) *flight {
	return &flight{key: key, cancel: cancel, subs: map[*subscriber]struct{}{}}
}

// subscribe attaches a new subscriber. A flight that already finished
// replays its terminal lines immediately.
func (f *flight) subscribe() *subscriber {
	sub := newSubscriber()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.finished {
		for _, line := range f.terminal {
			sub.lines = append(sub.lines, line)
		}
		sub.closed = true
		sub.signal()
		return sub
	}
	f.subs[sub] = struct{}{}
	return sub
}

// unsubscribe detaches a subscriber (client gone or stream drained).
// When the last subscriber of an unfinished flight leaves, the compute
// context is cancelled: nobody is listening, so the run aborts — and
// because aborted runs are never cached, this cannot poison the cache.
func (f *flight) unsubscribe(sub *subscriber) {
	f.mu.Lock()
	if _, attached := f.subs[sub]; !attached {
		f.mu.Unlock()
		return
	}
	delete(f.subs, sub)
	lastGone := len(f.subs) == 0 && !f.finished
	cancel := f.cancel
	f.mu.Unlock()
	sub.close()
	if lastGone && cancel != nil {
		cancel()
	}
}

// subscribers returns the current subscriber count (tests and /healthz).
func (f *flight) subscribers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// broadcast pushes one line to every subscriber.
func (f *flight) broadcast(line []byte) {
	f.mu.Lock()
	for sub := range f.subs {
		sub.push(line)
	}
	f.mu.Unlock()
}

// finish delivers the terminal lines and completes every subscriber's
// stream. Subsequent subscribe calls replay the terminal lines.
func (f *flight) finish(terminal ...[]byte) {
	f.mu.Lock()
	f.finished = true
	f.terminal = terminal
	for sub := range f.subs {
		for _, line := range terminal {
			sub.push(line)
		}
		sub.close()
	}
	f.subs = map[*subscriber]struct{}{}
	f.mu.Unlock()
}
