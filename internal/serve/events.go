// Package serve implements `advrepro serve`: a long-lived HTTP daemon
// over the v2 experiment core. Clients POST a serializable exp.Spec to
// /run; the server validates it against the registries, executes it
// under a per-request context, and streams Observer events back as
// newline-delimited JSON, terminated by a cache marker and the result
// payload. Results are served from a content-addressed cache keyed by
// the canonical spec hash (exp.SpecHash) — equal specs denote
// bit-identical runs, so a cache hit returns exactly the bytes a fresh
// compute would produce, with zero compute. Concurrent submissions of
// the same spec are deduplicated single-flight: one computation runs,
// every subscriber streams its events, and the run's context is
// cancelled only when the last subscriber disconnects (an abandoned run
// is never cached, so a disconnect cannot poison the cache).
package serve

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/eval"
	"repro/internal/exp"
)

// WireFloat is a float64 whose JSON round-trips IEEE infinities (MinTTC
// is +Inf whenever the gap never closes, which encoding/json rejects).
type WireFloat float64

// MarshalJSON implements json.Marshaler.
func (f WireFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *WireFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"+Inf"`:
		*f = WireFloat(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = WireFloat(math.Inf(-1))
		return nil
	case `"NaN"`:
		*f = WireFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = WireFloat(v)
	return nil
}

// WireCell identifies one grid cell on the wire.
type WireCell struct {
	Index    int    `json:"index"`
	Seed     int64  `json:"seed"`
	Scenario string `json:"scenario"`
	Attack   string `json:"attack"`
	Defense  string `json:"defense"`
}

// WireMetrics carries the safety metrics of a finished cell.
type WireMetrics struct {
	MinGap     WireFloat `json:"min_gap_m"`
	MinTTC     WireFloat `json:"min_ttc_s"`
	MeanGapErr WireFloat `json:"mean_gap_err_m"`
	Collision  bool      `json:"collision"`
	Steps      int       `json:"steps"`
}

// WireEvent is one JSONL line of the /run stream. Event discriminates:
// the Observer kinds ("run-start", "cell-start", "cell-done", "log",
// "run-done") stream while the run executes; "cache" marks the terminal
// section with the result's content address and whether it was served
// from the cache; "error" reports a failed run. The line following
// "cache" is the ResultPayload.
type WireEvent struct {
	Event string `json:"event"`

	Total   int          `json:"total,omitempty"`
	Done    int          `json:"done,omitempty"`
	Cell    *WireCell    `json:"cell,omitempty"`
	Metrics *WireMetrics `json:"metrics,omitempty"`
	Msg     string       `json:"msg,omitempty"`
	Err     string       `json:"err,omitempty"`

	// Record, on grid-kind "cell-done" events, is the cell's full
	// eval.SweepRecord checkpoint line: a client appending it to a local
	// JSONL lane file reconstructs exactly the checkpoint the worker
	// would have written, which is what lets the fleet dispatcher resume
	// remote shards from local state.
	Record json.RawMessage `json:"record,omitempty"`

	Key string `json:"key,omitempty"` // "cache": canonical spec hash
	Hit bool   `json:"hit,omitempty"` // "cache": served from cache
}

// ResultPayload is the terminal line of a successful /run stream and the
// unit the result cache stores: for one canonical spec hash this line is
// byte-identical on every response, computed or cached.
type ResultPayload struct {
	Event  string `json:"event"` // always "result"
	Key    string `json:"key"`   // canonical spec hash
	Kind   string `json:"kind"`
	Preset string `json:"preset"`
	Text   string `json:"text"`          // the formatted report
	CSV    string `json:"csv,omitempty"` // machine-readable grid (matrix/sweep kinds)

	// Records holds every grid cell as a checkpoint line (grid kinds
	// only). A cache hit streams no cell-done events, and a reconnecting
	// client may have missed some — the terminal payload always carries
	// the complete set, so a lane file can be backfilled from it alone.
	Records []json.RawMessage `json:"records,omitempty"`
}

// recordContext carries the run configuration a grid cell's checkpoint
// record is stamped with — the same values the in-process jsonlWriter
// uses, so wire records and locally-written records are byte-identical.
// Nil disables record emission (non-grid kinds).
type recordContext struct {
	preset   string
	duration float64
	dt       float64
}

// specRecordContext derives the record context of a grid-kind spec; nil
// for kinds without a grid.
func specRecordContext(spec exp.Spec) (*recordContext, error) {
	if spec.Kind != exp.KindMatrix && spec.Kind != exp.KindSweep {
		return nil, nil
	}
	p, err := exp.PresetByName(spec.Preset)
	if err != nil {
		return nil, err
	}
	rc := &recordContext{preset: p.Name}
	if spec.Matrix != nil {
		rc.duration, rc.dt = spec.Matrix.Duration, spec.Matrix.DT
	}
	return rc, nil
}

// checkpointRecord encodes one finished cell as its JSONL checkpoint line.
func (rc *recordContext) checkpointRecord(index int, seed int64, cell eval.MatrixCell) json.RawMessage {
	buf, err := json.Marshal(eval.SweepRecord{
		Index: index, Seed: seed, Preset: rc.preset,
		Duration: rc.duration, DT: rc.dt, Cell: cell,
	})
	if err != nil {
		// Unreachable: SweepRecord marshals through the infinity-safe
		// checkpoint schema.
		panic(err)
	}
	return buf
}

// encodeEventLine converts an Observer event to its wire line. rc, when
// non-nil, attaches the full checkpoint record to cell-done events.
func encodeEventLine(ev exp.Event, rc *recordContext) []byte {
	we := WireEvent{Event: ev.Kind.String(), Total: ev.Total, Done: ev.Done, Msg: ev.Msg}
	if ev.Err != nil {
		we.Err = ev.Err.Error()
	}
	switch ev.Kind {
	case eval.EventCellStart, eval.EventCellDone:
		we.Cell = &WireCell{
			Index: ev.Cell.Index, Seed: ev.Cell.Seed,
			Scenario: ev.Cell.Scenario, Attack: ev.Cell.Attack, Defense: ev.Cell.Defense,
		}
	}
	if ev.Kind == eval.EventCellDone && ev.Result != nil {
		we.Metrics = &WireMetrics{
			MinGap: WireFloat(ev.Result.MinGap), MinTTC: WireFloat(ev.Result.MinTTC),
			MeanGapErr: WireFloat(ev.Result.MeanGapErr),
			Collision:  ev.Result.Collision, Steps: ev.Result.Steps,
		}
		if rc != nil {
			we.Record = rc.checkpointRecord(ev.Cell.Index, ev.Cell.Seed, *ev.Result)
		}
	}
	return mustMarshal(we)
}

// cacheLine builds the terminal cache-marker line.
func cacheLine(key string, hit bool) []byte {
	return mustMarshal(WireEvent{Event: "cache", Key: key, Hit: hit})
}

// errorLine builds the terminal line of a failed run.
func errorLine(err error) []byte {
	return mustMarshal(WireEvent{Event: "error", Err: err.Error()})
}

// EncodeResult serializes a run result into the cacheable payload line.
// Encoding is deterministic (fixed field order, minimal floats), so
// bit-identical results — the Spec guarantee — yield byte-identical
// payloads.
func EncodeResult(key string, res *exp.Result) ([]byte, error) {
	p, err := exp.PresetByName(res.Spec.Preset)
	if err != nil {
		return nil, err
	}
	payload := ResultPayload{
		Event: "result", Key: key,
		Kind: res.Spec.Kind, Preset: p.Name,
		Text: res.Text,
	}
	if res.Matrix != nil {
		payload.CSV = res.Matrix.CSV()
		rc, err := specRecordContext(res.Spec)
		if err != nil {
			return nil, err
		}
		switch {
		case rc == nil:
		case res.Sweep != nil:
			// A sweep shard's cells carry their GLOBAL grid indices in
			// Indices — a record stamped with the slice position would
			// fail grid validation on any shard but 0/1.
			payload.Records = make([]json.RawMessage, len(res.Sweep.Cells))
			for i, cell := range res.Sweep.Cells {
				payload.Records[i] = rc.checkpointRecord(res.Sweep.Indices[i], cell.Seed, cell)
			}
		default:
			payload.Records = make([]json.RawMessage, len(res.Matrix.Cells))
			for i, cell := range res.Matrix.Cells {
				payload.Records[i] = rc.checkpointRecord(i, cell.Seed, cell)
			}
		}
	}
	buf, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("serve: encode result: %w", err)
	}
	return buf, nil
}

// mustMarshal encodes a wire value whose types cannot fail to marshal.
func mustMarshal(v any) []byte {
	buf, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return buf
}
