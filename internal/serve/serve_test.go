package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
)

// fakeRunner is a Runner with controllable blocking: each RunObserved
// emits a minimal well-formed event sequence, then (when gate is set)
// waits for one gate send — or its context — before returning.
type fakeRunner struct {
	mu    sync.Mutex
	calls int
	gate  chan struct{} // nil: return immediately
}

func (f *fakeRunner) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *fakeRunner) RunObserved(ctx context.Context, s exp.Spec, obs exp.Observer) (*exp.Result, error) {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	if obs != nil {
		obs.Observe(exp.Event{Kind: exp.EventRunStart, Total: 1})
	}
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if obs != nil {
		obs.Observe(exp.Event{Kind: exp.EventRunDone, Total: 1})
	}
	return &exp.Result{Spec: s, Text: "fake result for " + s.Kind}, nil
}

// newFakeServer wires a Server around a fakeRunner behind an HTTP
// test listener.
func newFakeServer(t *testing.T, fake *fakeRunner) (*Server, *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	srv := New(ctx, Config{
		NewRunner: func(context.Context, string, func(string, ...any)) (Runner, error) {
			return fake, nil
		},
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

const testSpecJSON = `{"kind":"table1","preset":"quick"}`

// postRun submits a spec and returns the raw NDJSON lines.
func postRun(t *testing.T, base, spec string) [][]byte {
	t.Helper()
	resp, err := http.Post(base+"/run", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /run: %s: %s", resp.Status, msg)
	}
	return readLines(t, resp.Body)
}

func readLines(t *testing.T, r io.Reader) [][]byte {
	t.Helper()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 32<<20)
	var lines [][]byte
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			lines = append(lines, append([]byte(nil), sc.Bytes()...))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// eventNames decodes the "event" discriminator of each line.
func eventNames(t *testing.T, lines [][]byte) []string {
	t.Helper()
	names := make([]string, len(lines))
	for i, line := range lines {
		var ev WireEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d %q: %v", i, line, err)
		}
		names[i] = ev.Event
	}
	return names
}

func TestServeCacheHitByteIdentical(t *testing.T) {
	fake := &fakeRunner{}
	srv, hs := newFakeServer(t, fake)

	first := postRun(t, hs.URL, testSpecJSON)
	names := eventNames(t, first)
	want := []string{"run-start", "run-done", "cache", "result"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("first stream %v, want %v", names, want)
	}
	var cacheEv WireEvent
	if err := json.Unmarshal(first[2], &cacheEv); err != nil {
		t.Fatal(err)
	}
	if cacheEv.Hit {
		t.Fatal("first submission reported a cache hit")
	}

	// The second submission is syntactically different JSON addressing
	// the same run: it must be a hit, and the payload byte-identical.
	second := postRun(t, hs.URL, `{
	  "preset": "quick",
	  "kind":   "table1"
	}`)
	if names := eventNames(t, second); fmt.Sprint(names) != fmt.Sprint([]string{"cache", "result"}) {
		t.Fatalf("cached stream %v", names)
	}
	if err := json.Unmarshal(second[0], &cacheEv); err != nil {
		t.Fatal(err)
	}
	if !cacheEv.Hit {
		t.Fatal("second submission missed the cache")
	}
	if !bytes.Equal(first[3], second[1]) {
		t.Fatalf("cached payload differs:\n%s\n%s", first[3], second[1])
	}
	if fake.count() != 1 {
		t.Fatalf("runner ran %d times, want 1", fake.count())
	}
	computes, hits, flights := srv.Stats()
	if computes != 1 || hits != 1 || flights != 0 {
		t.Fatalf("stats computes=%d hits=%d flights=%d", computes, hits, flights)
	}
}

// flightFor returns the live flight for a spec hash, if any.
func (s *Server) flightFor(key string) *flight {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flights[key]
}

func TestServeSingleFlightDedup(t *testing.T) {
	fake := &fakeRunner{gate: make(chan struct{})}
	srv, hs := newFakeServer(t, fake)
	spec, err := exp.ParseSpec([]byte(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	key, err := exp.SpecHash(spec)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 4
	results := make(chan [][]byte, clients)
	for c := 0; c < clients; c++ {
		go func() {
			resp, err := http.Post(hs.URL+"/run", "application/json", strings.NewReader(testSpecJSON))
			if err != nil {
				results <- nil
				return
			}
			defer resp.Body.Close()
			lines, _ := io.ReadAll(resp.Body)
			results <- bytes.Split(bytes.TrimSpace(lines), []byte("\n"))
		}()
	}

	// Wait until every client has subscribed to the single flight, then
	// release the (single) computation.
	deadline := time.Now().Add(10 * time.Second)
	for {
		fl := srv.flightFor(key)
		if fl != nil && fl.subscribers() == clients {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clients never converged on one flight (flight=%v)", fl != nil)
		}
		time.Sleep(time.Millisecond)
	}
	close(fake.gate)

	var payloads [][]byte
	for c := 0; c < clients; c++ {
		lines := <-results
		if lines == nil {
			t.Fatal("a client failed")
		}
		payloads = append(payloads, lines[len(lines)-1])
	}
	for _, p := range payloads[1:] {
		if !bytes.Equal(p, payloads[0]) {
			t.Fatalf("subscribers saw different payloads:\n%s\n%s", payloads[0], p)
		}
	}
	if fake.count() != 1 {
		t.Fatalf("deduplicated submission computed %d times, want 1", fake.count())
	}
	if computes, _, _ := statsOf(srv); computes != 1 {
		t.Fatalf("computes=%d, want 1", computes)
	}
}

func statsOf(s *Server) (int64, int64, int) { return s.Stats() }

func TestServeDisconnectCancelsWithoutPoisoningCache(t *testing.T) {
	fake := &fakeRunner{gate: make(chan struct{})}
	srv, hs := newFakeServer(t, fake)
	spec, _ := exp.ParseSpec([]byte(testSpecJSON))
	key, _ := exp.SpecHash(spec)

	// First client connects, then vanishes mid-stream: the flight's
	// context must cancel the run, and nothing may be cached.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/run", strings.NewReader(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		errc <- err
	}()

	deadline := time.Now().Add(10 * time.Second)
	for srv.flightFor(key) == nil {
		if time.Now().After(deadline) {
			t.Fatal("flight never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel() // client gone; last subscriber leaving cancels the compute
	if err := <-errc; err == nil {
		t.Fatal("cancelled request reported success")
	}
	for srv.flightFor(key) != nil {
		if time.Now().After(deadline) {
			t.Fatal("cancelled flight never cleaned up")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := srv.cache.Get(key); ok {
		t.Fatal("abandoned run poisoned the cache")
	}
	if computes, _, _ := srv.Stats(); computes != 0 {
		t.Fatalf("abandoned run counted as a compute (%d)", computes)
	}

	// A fresh submission computes cleanly from scratch.
	go func() { fake.gate <- struct{}{} }()
	lines := postRun(t, hs.URL, testSpecJSON)
	names := eventNames(t, lines)
	if names[len(names)-1] != "result" {
		t.Fatalf("retry stream %v", names)
	}
	if fake.count() != 2 {
		t.Fatalf("runner ran %d times, want 2 (one cancelled, one clean)", fake.count())
	}
}

func TestServeValidateAndResultsEndpoints(t *testing.T) {
	fake := &fakeRunner{}
	_, hs := newFakeServer(t, fake)

	// Invalid specs are rejected with a 400 naming the problem.
	resp, err := http.Post(hs.URL+"/validate", "application/json", strings.NewReader(`{"kind":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: %s", resp.Status)
	}
	resp, err = http.Post(hs.URL+"/run", "application/json", strings.NewReader(`{"kind":"table1","typo":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %s", resp.Status)
	}

	// Validate returns the canonical hash without running anything.
	resp, err = http.Post(hs.URL+"/validate", "application/json", strings.NewReader(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		Key    string `json:"key"`
		Cached bool   `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	spec, _ := exp.ParseSpec([]byte(testSpecJSON))
	wantKey, _ := exp.SpecHash(spec)
	if v.Key != wantKey || v.Cached {
		t.Fatalf("validate: %+v, want key %s uncached", v, wantKey)
	}
	if fake.count() != 0 {
		t.Fatal("validate ran the spec")
	}

	// Results: 404 before the run, the cached payload after.
	resp, err = http.Get(hs.URL + "/results/" + wantKey)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("uncomputed result: %s", resp.Status)
	}
	lines := postRun(t, hs.URL, testSpecJSON)
	payload := lines[len(lines)-1]
	resp, err = http.Get(hs.URL + "/results/" + wantKey)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached result: %s", resp.Status)
	}
	if !bytes.Equal(bytes.TrimSpace(body), payload) {
		t.Fatalf("GET /results differs from the streamed payload:\n%s\n%s", body, payload)
	}
}
