package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/exp"
)

// Fleet-facing serving behaviour: load shedding under -maxruns, the
// reconnecting stream client, and the checkpoint records that ride the
// wire so a dispatcher can rebuild lane files from remote runs.

// newShedServer wires a gated fakeRunner behind a server with MaxRuns=1.
func newShedServer(t *testing.T, fake *fakeRunner) (*Server, *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	srv := New(ctx, Config{
		MaxRuns: 1,
		NewRunner: func(context.Context, string, func(string, ...any)) (Runner, error) {
			return fake, nil
		},
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func TestServeMaxRunsShedsNewFlights(t *testing.T) {
	fake := &fakeRunner{gate: make(chan struct{})}
	srv, hs := newShedServer(t, fake)
	spec, _ := exp.ParseSpec([]byte(testSpecJSON))
	key, _ := exp.SpecHash(spec)

	// Occupy the single run slot.
	first := make(chan [][]byte, 1)
	go func() {
		resp, err := http.Post(hs.URL+"/run", "application/json", strings.NewReader(testSpecJSON))
		if err != nil {
			first <- nil
			return
		}
		defer resp.Body.Close()
		first <- readLines(t, resp.Body)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for srv.flightFor(key) == nil {
		if time.Now().After(deadline) {
			t.Fatal("first flight never started")
		}
		time.Sleep(time.Millisecond)
	}

	// A DIFFERENT spec would need a second flight: refused with 503 and
	// a Retry-After hint, not queued and not computed.
	resp, err := http.Post(hs.URL+"/run", "application/json", strings.NewReader(`{"kind":"table2","preset":"quick"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity flight: %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 carries no Retry-After hint")
	}

	// The SAME spec joins the existing flight: no new compute, served.
	joined := make(chan [][]byte, 1)
	go func() {
		resp, err := http.Post(hs.URL+"/run", "application/json", strings.NewReader(testSpecJSON))
		if err != nil {
			joined <- nil
			return
		}
		defer resp.Body.Close()
		joined <- readLines(t, resp.Body)
	}()
	for {
		fl := srv.flightFor(key)
		if fl != nil && fl.subscribers() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("join was refused at capacity")
		}
		time.Sleep(time.Millisecond)
	}

	// /healthz exposes the pressure the dispatcher's client reacts to.
	hr, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		InFlight int   `json:"in_flight"`
		MaxRuns  int   `json:"max_runs"`
		Rejected int64 `json:"rejected"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health.InFlight != 1 || health.MaxRuns != 1 || health.Rejected != 1 {
		t.Fatalf("healthz pressure counters: %+v", health)
	}

	close(fake.gate)
	if lines := <-first; lines == nil {
		t.Fatal("occupying client failed")
	}
	if lines := <-joined; lines == nil {
		t.Fatal("joining client failed")
	}
	if fake.count() != 1 {
		t.Fatalf("runner ran %d times, want 1 (join adds no compute)", fake.count())
	}

	// With the slot free again, a cache hit is always served.
	lines := postRun(t, hs.URL, testSpecJSON)
	if names := eventNames(t, lines); names[0] != "cache" {
		t.Fatalf("cache hit refused after capacity freed: %v", names)
	}
}

func TestStreamSpecReconnectsThroughDrop(t *testing.T) {
	// A flaky daemon: the first response dies mid-stream after one
	// event; the second completes with a result payload.
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"event":"run-start","total":1}`)
		if n == 1 {
			return // connection ends with no terminal line: a mid-run drop
		}
		fmt.Fprintln(w, `{"event":"cache","key":"k","hit":false}`)
		fmt.Fprintln(w, `{"event":"result","key":"k","kind":"table1","preset":"quick","text":"ok"}`)
	}))
	defer flaky.Close()

	var logs []string
	var events []string
	payload, hit, err := StreamSpec(context.Background(), flaky.URL, []byte(testSpecJSON), StreamConfig{
		MaxReconnects: 2,
		ReconnectWait: time.Millisecond,
		Logf:          func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) },
		OnEvent:       func(ev WireEvent) error { events = append(events, ev.Event); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit || payload == nil || payload.Text != "ok" {
		t.Fatalf("payload = %+v hit=%v", payload, hit)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
	if len(logs) != 1 || !strings.Contains(logs[0], "reconnected (attempt 1)") {
		t.Fatalf("reconnect logs = %q", logs)
	}
	// The reconnect is surfaced in the event stream too, and the dropped
	// window's events replay (the consumer must dedup).
	joined := strings.Join(events, ",")
	if !strings.Contains(joined, "log") || strings.Count(joined, "run-start") != 2 {
		t.Fatalf("event stream = %q", joined)
	}
}

func TestStreamSpecBoundsAndClassifiesFailures(t *testing.T) {
	// Zero reconnect budget: the first drop is fatal and says so.
	dropping := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"event":"run-start","total":1}`)
	}))
	defer dropping.Close()
	_, _, err := StreamSpec(context.Background(), dropping.URL, []byte(testSpecJSON), StreamConfig{
		ReconnectWait: time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "stream failed after 0 reconnect(s)") {
		t.Fatalf("drop with no budget: %v", err)
	}

	// 503 shedding is transient: the client retries and succeeds.
	var calls atomic.Int32
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "at capacity", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"event":"cache","key":"k","hit":true}`)
		fmt.Fprintln(w, `{"event":"result","key":"k","kind":"table1","preset":"quick","text":"ok"}`)
	}))
	defer shedding.Close()
	payload, hit, err := StreamSpec(context.Background(), shedding.URL, []byte(testSpecJSON), StreamConfig{
		MaxReconnects: 3,
		ReconnectWait: time.Millisecond,
	})
	if err != nil || !hit || payload == nil {
		t.Fatalf("recovery from 503: payload=%v hit=%v err=%v", payload, hit, err)
	}

	// A remote run failure is permanent: no retry can change it.
	calls.Store(0)
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		fmt.Fprintln(w, `{"event":"error","err":"victim exploded"}`)
	}))
	defer failing.Close()
	_, _, err = StreamSpec(context.Background(), failing.URL, []byte(testSpecJSON), StreamConfig{
		MaxReconnects: 3,
		ReconnectWait: time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "victim exploded") {
		t.Fatalf("remote failure: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("permanent failure retried %d times", calls.Load())
	}
}

// gridRunner fakes a sweep compute: deterministic cells for the spec's
// shard, streamed as cell events.
type gridRunner struct{}

func (gridRunner) RunObserved(ctx context.Context, s exp.Spec, obs exp.Observer) (*exp.Result, error) {
	ids, err := s.CellIDs()
	if err != nil {
		return nil, err
	}
	n, shard := 1, 0
	if s.Sweep != nil {
		shard = s.Sweep.Shard
		if s.Sweep.NumShards > 0 {
			n = s.Sweep.NumShards
		}
	}
	sr := eval.SweepReport{Preset: "quick", Total: len(ids), Shard: shard, NumShards: n}
	for _, id := range ids {
		if id.Index%n != shard {
			continue
		}
		cell := eval.MatrixCell{
			Scenario: id.Scenario, Attack: id.Attack, Defense: id.Defense, Seed: id.Seed,
			MinGap: float64(id.Index), MinTTC: 1.0, Steps: id.Index,
		}
		sr.Indices = append(sr.Indices, id.Index)
		sr.Cells = append(sr.Cells, cell)
		if obs != nil {
			obs.Observe(exp.Event{Kind: eval.EventCellDone, Total: len(ids), Done: len(sr.Cells), Cell: id, Result: &cell})
		}
	}
	mrep := sr.Matrix()
	return &exp.Result{Spec: s, Text: "grid", Matrix: &mrep, Sweep: &sr}, nil
}

func TestServeGridStreamCarriesCheckpointRecords(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	srv := New(ctx, Config{
		NewRunner: func(context.Context, string, func(string, ...any)) (Runner, error) {
			return gridRunner{}, nil
		},
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	specJSON := `{"kind":"sweep","preset":"quick","matrix":{
		"scenarios":["gentle-brake"],"attacks":["None","FGSM"],"defenses":["None"],
		"duration":1.0,"dt":0.1,"base_seed":777},
		"sweep":{"shard":1,"num_shards":2}}`
	spec, err := exp.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	ids, err := spec.CellIDs()
	if err != nil {
		t.Fatal(err)
	}

	lines := postRun(t, hs.URL, specJSON)
	var records int
	var payload ResultPayload
	for _, line := range lines {
		var ev WireEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		switch ev.Event {
		case "cell-done":
			// Every grid completion carries the full checkpoint record,
			// valid against the grid identity and stamped with the RAW
			// spec duration/dt — byte-compatible with a local lane file.
			if len(ev.Record) == 0 {
				t.Fatalf("cell-done without record: %s", line)
			}
			var rec eval.SweepRecord
			if err := json.Unmarshal(ev.Record, &rec); err != nil {
				t.Fatal(err)
			}
			if err := rec.Validate(ids, "quick", 1.0, 0.1); err != nil {
				t.Fatalf("wire record rejected by grid validation: %v", err)
			}
			records++
		case "result":
			if err := json.Unmarshal(line, &payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Shard 1 of 2 over a 2-cell grid owns exactly one cell.
	if records != 1 {
		t.Fatalf("streamed %d cell records, want 1", records)
	}
	// The terminal payload carries the complete record set (cache hits
	// and reconnect gaps are backfilled from it alone), under GLOBAL
	// grid indices.
	if len(payload.Records) != 1 {
		t.Fatalf("payload carries %d records, want 1", len(payload.Records))
	}
	var rec eval.SweepRecord
	if err := json.Unmarshal(payload.Records[0], &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Index != 1 {
		t.Fatalf("payload record index %d, want the global grid index 1", rec.Index)
	}
	if err := rec.Validate(ids, "quick", 1.0, 0.1); err != nil {
		t.Fatalf("payload record rejected: %v", err)
	}
}
