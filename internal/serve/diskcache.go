package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// DiskCache is a disk-backed exp.ResultCache: result payloads persist as
// one file per canonical spec hash, so a restarted daemon answers repeat
// queries from disk with the exact bytes the pre-restart compute produced
// — the cache analogue of the artifact store's warm start. Writes are
// atomic (temp file + rename) and write-once: because equal hashes denote
// bit-identical results, the first published payload is already the only
// possible value, and a concurrent second Put simply loses the rename
// race to identical bytes. A corrupt or torn entry cannot exist by
// construction; an unreadable one degrades to a cache miss, never an
// error on the serving path.
type DiskCache struct {
	dir  string
	logf func(format string, args ...any)
}

// NewDiskCache opens (creating if needed) a disk cache rooted at dir.
// logf, when non-nil, receives I/O degradation notices — the ResultCache
// interface is miss-or-hit, so failures log and degrade rather than
// surface.
func NewDiskCache(dir string, logf func(format string, args ...any)) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	return &DiskCache{dir: dir, logf: logf}, nil
}

// path maps a cache key to its entry file; false for keys that are not
// plausible spec hashes (defense in depth against path traversal — real
// keys are hex SHA-256).
func (c *DiskCache) path(key string) (string, bool) {
	if key == "" || len(key) > 128 || !ValidStoreKey(key) || strings.Contains(key, "/") {
		return "", false
	}
	return filepath.Join(c.dir, key+".json"), true
}

// Get implements exp.ResultCache.
func (c *DiskCache) Get(key string) ([]byte, bool) {
	p, ok := c.path(key)
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			c.log("serve: disk cache read %s: %v", key[:12], err)
		}
		return nil, false
	}
	return data, true
}

// Put implements exp.ResultCache.
func (c *DiskCache) Put(key string, val []byte) {
	p, ok := c.path(key)
	if !ok {
		return
	}
	if _, err := os.Stat(p); err == nil {
		return // write-once: the entry can only ever hold these bytes
	}
	tmp, err := os.CreateTemp(c.dir, ".cache_*")
	if err != nil {
		c.log("serve: disk cache write %s: %v", key[:12], err)
		return
	}
	if _, err := tmp.Write(val); err != nil {
		tmp.Close() //advlint:close-ok error-path cleanup; the write failure is returned
		os.Remove(tmp.Name())
		c.log("serve: disk cache write %s: %v", key[:12], err)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		c.log("serve: disk cache write %s: %v", key[:12], err)
		return
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		c.log("serve: disk cache write %s: %v", key[:12], err)
	}
}

// Len returns the number of persisted entries (diagnostics and tests).
func (c *DiskCache) Len() int {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

func (c *DiskCache) log(format string, args ...any) {
	if c.logf != nil {
		c.logf(format, args...)
	}
}
