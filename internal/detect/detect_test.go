package detect

import (
	"math"
	"testing"

	"repro/internal/box"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/scene"
	"repro/internal/xrand"
)

func TestNewRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size not divisible by 8 must panic")
		}
	}()
	New(xrand.New(1), 60)
}

func TestForwardShape(t *testing.T) {
	d := New(xrand.New(1), 64)
	sc := scene.GenerateSign(xrand.New(2), scene.DefaultSignConfig())
	raw := d.Forward(sc.Img)
	if raw.Dim(0) != 5 || raw.Dim(1) != 8 || raw.Dim(2) != 8 {
		t.Fatalf("raw shape %v", raw.Shape())
	}
}

func TestTargetsEncodeDecode(t *testing.T) {
	d := New(xrand.New(1), 64)
	gt := box.FromCenter(28, 36, 20, 22)
	target, weight := d.Targets([]box.Box{gt})

	// The positive cell is the one containing the center (28/8=3, 36/8=4).
	if target.At(0, 4, 3) != 1 {
		t.Fatal("objectness target not set at center cell")
	}
	if weight.At(1, 4, 3) == 0 {
		t.Fatal("box weights not set at positive cell")
	}
	// A perfect prediction must decode back to (approximately) the GT box.
	// Background cells need strongly negative logits (sigmoid(0) = 0.5
	// would pass the threshold).
	raw := target.Clone()
	for gy := 0; gy < d.Grid; gy++ {
		for gx := 0; gx < d.Grid; gx++ {
			raw.Set(-8, 0, gy, gx)
		}
	}
	raw.Set(8, 0, 4, 3) // objectness logit large => sigmoid ~1
	dets := d.Decode(raw, 0.5)
	if len(dets) != 1 {
		t.Fatalf("decoded %d boxes, want 1", len(dets))
	}
	if iou := dets[0].Box.IoU(gt); iou < 0.95 {
		t.Fatalf("decode IoU %v, want ~1", iou)
	}
}

func TestTargetsIgnoreOutOfBounds(t *testing.T) {
	d := New(xrand.New(1), 64)
	target, _ := d.Targets([]box.Box{box.FromCenter(200, 200, 10, 10)})
	if target.Sum() != 0 {
		t.Fatal("out-of-bounds GT must not set targets")
	}
}

func TestNMSSuppressesOverlaps(t *testing.T) {
	dets := []metrics.Detection{
		{Box: box.New(0, 0, 10, 10), Score: 0.9},
		{Box: box.New(1, 1, 11, 11), Score: 0.8}, // heavy overlap: suppressed
		{Box: box.New(30, 30, 40, 40), Score: 0.7},
	}
	keep := NMS(dets, 0.45)
	if len(keep) != 2 {
		t.Fatalf("NMS kept %d, want 2", len(keep))
	}
	if keep[0].Score != 0.9 || keep[1].Score != 0.7 {
		t.Fatalf("NMS kept wrong boxes: %+v", keep)
	}
}

func TestNMSKeepsDisjoint(t *testing.T) {
	dets := []metrics.Detection{
		{Box: box.New(0, 0, 5, 5), Score: 0.6},
		{Box: box.New(20, 20, 25, 25), Score: 0.9},
	}
	keep := NMS(dets, 0.45)
	if len(keep) != 2 {
		t.Fatalf("NMS dropped disjoint boxes: %+v", keep)
	}
	// Sorted by score.
	if keep[0].Score < keep[1].Score {
		t.Fatal("NMS output not score-sorted")
	}
}

func TestLossGradDirection(t *testing.T) {
	d := New(xrand.New(3), 64)
	sc := scene.GenerateSign(xrand.New(4), scene.DefaultSignConfig())
	raw := d.Forward(sc.Img)
	loss, grad := d.LossGrad(raw, GTBoxes(sc))
	if loss <= 0 {
		t.Fatalf("untrained loss %v, want > 0", loss)
	}
	// One gradient-descent step on the raw map must reduce the loss.
	stepped := raw.Clone()
	stepped.AddScaledInPlace(grad, -5)
	loss2, _ := d.LossGrad(stepped, GTBoxes(sc))
	if loss2 >= loss {
		t.Fatalf("loss did not decrease along -grad: %v -> %v", loss, loss2)
	}
}

func TestTrainImprovesDetection(t *testing.T) {
	rng := xrand.New(5)
	cfg := scene.DefaultSignConfig()
	set := dataset.GenerateSignSet(rng.Split(), cfg, 130)
	train, test := set.Split(0.8)

	d := New(rng.Split(), cfg.Size)
	before := d.Evaluate(test, 0.5)

	tc := DefaultTrainConfig()
	tc.Epochs = 12
	lastLoss := d.Train(train, tc)
	after := d.Evaluate(test, 0.5)

	if lastLoss <= 0 || math.IsNaN(lastLoss) {
		t.Fatalf("bad final loss %v", lastLoss)
	}
	if after.MAP50 <= before.MAP50 {
		t.Fatalf("training did not improve mAP: %.3f -> %.3f", before.MAP50, after.MAP50)
	}
	if after.MAP50 < 0.3 {
		t.Fatalf("post-training mAP %.3f suspiciously low", after.MAP50)
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := xrand.New(6)
	d := New(rng.Split(), 64)
	c := d.Clone()
	sc := scene.GenerateSign(xrand.New(7), scene.DefaultSignConfig())
	a := d.Forward(sc.Img).Clone()
	c.Net.Params()[0].Value.Fill(0)
	b := d.Forward(sc.Img)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("clone mutation leaked into original")
		}
	}
}

func TestMaxObjectnessInUnitRange(t *testing.T) {
	d := New(xrand.New(8), 64)
	sc := scene.GenerateSign(xrand.New(9), scene.DefaultSignConfig())
	s := d.MaxObjectness(sc.Img)
	if s <= 0 || s >= 1 {
		t.Fatalf("objectness %v outside (0,1)", s)
	}
}

func TestTrainLossReturnsInputGradient(t *testing.T) {
	d := New(xrand.New(10), 64)
	sc := scene.GenerateSign(xrand.New(11), scene.DefaultSignConfig())
	_, grad := d.TrainLoss(sc.Img, GTBoxes(sc))
	if grad.Dim(0) != 3 || grad.Dim(1) != 64 || grad.Dim(2) != 64 {
		t.Fatalf("input grad shape %v", grad.Shape())
	}
	if grad.L2Norm() == 0 {
		t.Fatal("input gradient is identically zero")
	}
}

func TestGTBoxes(t *testing.T) {
	sc := scene.SignScene{HasSign: false}
	if GTBoxes(sc) != nil {
		t.Fatal("negative scene must yield nil GT")
	}
	sc = scene.SignScene{HasSign: true, Box: box.New(0, 0, 5, 5)}
	if len(GTBoxes(sc)) != 1 {
		t.Fatal("positive scene must yield one GT box")
	}
}
