// Package detect implements TinyDet, the single-class grid detector that
// stands in for the paper's single-class YOLOv8 stop-sign model. The
// detector divides the image into an G×G grid; each cell predicts an
// objectness logit and a box (center offset within the cell plus width and
// height as fractions of the image). Decoding applies a confidence
// threshold and non-maximum suppression.
package detect

import (
	"fmt"

	"repro/internal/box"
	"repro/internal/imaging"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Output channel layout per grid cell.
const (
	chObj = 0 // objectness logit
	chTX  = 1 // center x offset within cell, target in [0,1]
	chTY  = 2 // center y offset within cell, target in [0,1]
	chTW  = 3 // box width / image size
	chTH  = 4 // box height / image size

	numCh = 5
)

// Loss balancing: one positive cell vs ~63 background cells.
const (
	wPositiveObj = 5.0
	wNegativeObj = 0.6
	wBox         = 14.0
)

// Detector is the TinyDet model.
type Detector struct {
	Net  *nn.Sequential
	Size int // input image side (pixels)
	Grid int // grid side (cells)
}

// New builds a TinyDet for size×size RGB inputs. The backbone is three
// stride-2 convolutions (size/8 grid) followed by a 1×1 prediction head.
func New(rng *xrand.RNG, size int) *Detector {
	if size%8 != 0 {
		panic(fmt.Sprintf("detect: size %d must be divisible by 8", size))
	}
	net := nn.NewSequential(
		nn.NewConv2D(rng, 3, 12, 3, 2, 1),
		nn.NewLeakyReLU(0.1),
		nn.NewConv2D(rng, 12, 24, 3, 2, 1),
		nn.NewLeakyReLU(0.1),
		nn.NewConv2D(rng, 24, 48, 3, 2, 1),
		nn.NewLeakyReLU(0.1),
		nn.NewConv2D(rng, 48, 48, 3, 1, 1), // grid-level context: widen the
		nn.NewLeakyReLU(0.1),               // receptive field beyond one cell
		nn.NewConv2D(rng, 48, numCh, 3, 1, 1),
	)
	return &Detector{Net: net, Size: size, Grid: size / 8}
}

// Clone returns an independent copy for concurrent use.
func (d *Detector) Clone() *Detector {
	return &Detector{Net: d.Net.Clone(), Size: d.Size, Grid: d.Grid}
}

// BackboneLayers returns the feature-extraction layers (everything but the
// prediction head); contrastive fine-tuning operates on these.
func (d *Detector) BackboneLayers() []nn.Layer {
	ls := d.Net.Layers()
	return ls[:len(ls)-1]
}

// Forward runs the network, returning the raw (5,G,G) prediction map.
func (d *Detector) Forward(img *imaging.Image) *tensor.Tensor {
	return d.Net.Forward(img.Tensor(), false)
}

// Detect runs the detector and decodes boxes with the given confidence
// threshold, applying NMS at IoU 0.45.
func (d *Detector) Detect(img *imaging.Image, minScore float64) []metrics.Detection {
	raw := d.Forward(img)
	return d.Decode(raw, minScore)
}

// Decode converts a raw prediction map into scored, NMS-filtered boxes.
func (d *Detector) Decode(raw *tensor.Tensor, minScore float64) []metrics.Detection {
	g := d.Grid
	cell := float64(d.Size) / float64(g)
	var dets []metrics.Detection
	for gy := 0; gy < g; gy++ {
		for gx := 0; gx < g; gx++ {
			score := float64(nn.SigmoidScalar(raw.At(chObj, gy, gx)))
			if score < minScore {
				continue
			}
			tx := clampF(raw.At(chTX, gy, gx), 0, 1)
			ty := clampF(raw.At(chTY, gy, gx), 0, 1)
			tw := clampF(raw.At(chTW, gy, gx), 0.01, 1)
			th := clampF(raw.At(chTH, gy, gx), 0.01, 1)
			cx := (float64(gx) + float64(tx)) * cell
			cy := (float64(gy) + float64(ty)) * cell
			w := float64(tw) * float64(d.Size)
			h := float64(th) * float64(d.Size)
			dets = append(dets, metrics.Detection{
				Box:   box.FromCenter(cx, cy, w, h).Clip(float64(d.Size), float64(d.Size)),
				Score: score,
			})
		}
	}
	return NMS(dets, 0.45)
}

// NMS performs greedy non-maximum suppression at the given IoU threshold.
func NMS(dets []metrics.Detection, iouThresh float64) []metrics.Detection {
	// Sort by score descending (insertion sort: lists are short).
	for i := 1; i < len(dets); i++ {
		for j := i; j > 0 && dets[j].Score > dets[j-1].Score; j-- {
			dets[j], dets[j-1] = dets[j-1], dets[j]
		}
	}
	var keep []metrics.Detection
	suppressed := make([]bool, len(dets))
	for i := range dets {
		if suppressed[i] {
			continue
		}
		keep = append(keep, dets[i])
		for j := i + 1; j < len(dets); j++ {
			if !suppressed[j] && dets[i].Box.IoU(dets[j].Box) > iouThresh {
				suppressed[j] = true
			}
		}
	}
	return keep
}

// Targets encodes ground-truth boxes into the (5,G,G) target map and the
// per-element loss weights.
func (d *Detector) Targets(gt []box.Box) (target, weight *tensor.Tensor) {
	g := d.Grid
	cell := float64(d.Size) / float64(g)
	target = tensor.New(numCh, g, g)
	weight = tensor.New(numCh, g, g)
	// Background objectness weight everywhere, overwritten at positives.
	for gy := 0; gy < g; gy++ {
		for gx := 0; gx < g; gx++ {
			weight.Set(wNegativeObj, chObj, gy, gx)
		}
	}
	for _, b := range gt {
		if b.Empty() {
			continue
		}
		gx := int(b.CX() / cell)
		gy := int(b.CY() / cell)
		if gx < 0 || gx >= g || gy < 0 || gy >= g {
			continue
		}
		target.Set(1, chObj, gy, gx)
		weight.Set(wPositiveObj, chObj, gy, gx)
		target.Set(float32(b.CX()/cell-float64(gx)), chTX, gy, gx)
		target.Set(float32(b.CY()/cell-float64(gy)), chTY, gy, gx)
		target.Set(float32(b.W()/float64(d.Size)), chTW, gy, gx)
		target.Set(float32(b.H()/float64(d.Size)), chTH, gy, gx)
		for c := chTX; c <= chTH; c++ {
			weight.Set(wBox, c, gy, gx)
		}
	}
	return target, weight
}

// LossGrad computes the detection loss of a raw prediction map against
// ground truth, returning the loss and its gradient w.r.t. the raw map.
// The objectness channel uses weighted BCE on logits; box channels use
// weighted MSE restricted to positive cells.
func (d *Detector) LossGrad(raw *tensor.Tensor, gt []box.Box) (float64, *tensor.Tensor) {
	target, weight := d.Targets(gt)
	return d.lossWithTargets(raw, target, weight)
}

func (d *Detector) lossWithTargets(raw, target, weight *tensor.Tensor) (float64, *tensor.Tensor) {
	g := d.Grid
	plane := g * g
	grad := tensor.New(numCh, g, g)
	rawD := raw.Data()
	tD := target.Data()
	wD := weight.Data()
	gD := grad.Data()
	n := float64(plane) // normalise per-cell so loss scale is grid-independent

	var loss float64
	// Objectness: weighted BCE with logits.
	for i := 0; i < plane; i++ {
		w := float64(wD[i])
		if w == 0 {
			continue
		}
		z := float64(rawD[i])
		t := float64(tD[i])
		loss += w * (maxF64(z, 0) - z*t + log1pExpNegAbs(z))
		gD[i] = float32(w * (float64(nn.SigmoidScalar(rawD[i])) - t) / n)
	}
	// Box channels: weighted MSE.
	for i := plane; i < numCh*plane; i++ {
		w := float64(wD[i])
		if w == 0 {
			continue
		}
		diff := float64(rawD[i] - tD[i])
		loss += 0.5 * w * diff * diff
		gD[i] = float32(w * diff / n)
	}
	return loss / n, grad
}

// TrainLoss runs a forward pass and returns loss and input gradient; it is
// the primitive white-box attacks use (∇x of the training loss).
func (d *Detector) TrainLoss(img *imaging.Image, gt []box.Box) (float64, *tensor.Tensor) {
	raw := d.Net.Forward(img.Tensor(), false)
	loss, grad := d.LossGrad(raw, gt)
	d.Net.ZeroGrad()
	return loss, d.Net.Backward(grad)
}

// MaxObjectness returns the maximum post-sigmoid objectness over the grid,
// the scalar "sign present" confidence that SimBA queries.
func (d *Detector) MaxObjectness(img *imaging.Image) float64 {
	raw := d.Forward(img)
	plane := d.Grid * d.Grid
	best := raw.Data()[0]
	for _, v := range raw.Data()[1:plane] {
		if v > best {
			best = v
		}
	}
	return float64(nn.SigmoidScalar(best))
}

func clampF(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxF64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// log1pExpNegAbs computes log(1+exp(-|z|)) stably.
func log1pExpNegAbs(z float64) float64 {
	if z < 0 {
		z = -z
	}
	// For large z, exp(-z) underflows harmlessly to 0.
	return log1p(exp(-z))
}
