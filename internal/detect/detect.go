// Package detect implements TinyDet, the single-class grid detector that
// stands in for the paper's single-class YOLOv8 stop-sign model. The
// detector divides the image into an G×G grid; each cell predicts an
// objectness logit and a box (center offset within the cell plus width and
// height as fractions of the image). Decoding applies a confidence
// threshold and non-maximum suppression.
package detect

import (
	"fmt"

	"repro/internal/box"
	"repro/internal/imaging"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Output channel layout per grid cell.
const (
	chObj = 0 // objectness logit
	chTX  = 1 // center x offset within cell, target in [0,1]
	chTY  = 2 // center y offset within cell, target in [0,1]
	chTW  = 3 // box width / image size
	chTH  = 4 // box height / image size

	numCh = 5
)

// Loss balancing: one positive cell vs ~63 background cells.
const (
	wPositiveObj = 5.0
	wNegativeObj = 0.6
	wBox         = 14.0
)

// Detector is the TinyDet model.
type Detector struct {
	Net  *nn.Sequential
	Size int // input image side (pixels)
	Grid int // grid side (cells)

	batchBuf *tensor.Tensor // reusable [N,3,S,S] input pack for ForwardBatch

	// Reusable loss scratch: LossGrad/TrainLoss encode targets and build
	// the raw-map gradient into these, so steady-state attack and training
	// loops never touch the allocator. The tensors follow the workspace
	// retention rule: a returned gradient is valid until the next
	// LossGrad/TrainLoss call on this detector.
	lossTarget *tensor.Tensor
	lossWeight *tensor.Tensor
	lossGrad   *tensor.Tensor
	lossGradB  *tensor.Tensor // [N,5,G,G] raw-map gradient for the batched loss
}

// BatchSize is the frame count DetectBatch feeds the network per forward,
// sized like regress.BatchSize to keep the batched workspaces in cache.
const BatchSize = 8

// ArchVersion identifies the TinyDet architecture for serialized weight
// artifacts: any change to the layer stack, channel widths or output
// layout must bump it so stored weights from the old architecture are
// never loaded into the new one.
const ArchVersion = 1

// New builds a TinyDet for size×size RGB inputs. The backbone is three
// stride-2 convolutions (size/8 grid) followed by a 1×1 prediction head.
func New(rng *xrand.RNG, size int) *Detector {
	if size%8 != 0 {
		panic(fmt.Sprintf("detect: size %d must be divisible by 8", size))
	}
	net := nn.NewSequential(
		nn.NewConv2D(rng, 3, 12, 3, 2, 1),
		nn.NewLeakyReLU(0.1),
		nn.NewConv2D(rng, 12, 24, 3, 2, 1),
		nn.NewLeakyReLU(0.1),
		nn.NewConv2D(rng, 24, 48, 3, 2, 1),
		nn.NewLeakyReLU(0.1),
		nn.NewConv2D(rng, 48, 48, 3, 1, 1), // grid-level context: widen the
		nn.NewLeakyReLU(0.1),               // receptive field beyond one cell
		nn.NewConv2D(rng, 48, numCh, 3, 1, 1),
	)
	return &Detector{Net: net, Size: size, Grid: size / 8}
}

// Clone returns an independent copy for concurrent use.
func (d *Detector) Clone() *Detector {
	return &Detector{Net: d.Net.Clone(), Size: d.Size, Grid: d.Grid}
}

// BackboneLayers returns the feature-extraction layers (everything but the
// prediction head); contrastive fine-tuning operates on these.
func (d *Detector) BackboneLayers() []nn.Layer {
	ls := d.Net.Layers()
	return ls[:len(ls)-1]
}

// Forward runs the network, returning the raw (5,G,G) prediction map.
func (d *Detector) Forward(img *imaging.Image) *tensor.Tensor {
	return d.Net.Forward(img.Tensor(), false)
}

// ForwardBatch packs the given frames into one [N,3,S,S] tensor and runs a
// single batched forward, returning the raw [N,5,G,G] prediction maps
// (owned by the model workspace, valid until the next model call). Results
// are bit-identical per frame to Forward.
func (d *Detector) ForwardBatch(imgs []*imaging.Image) *tensor.Tensor {
	n := len(imgs)
	if d.batchBuf == nil || !d.batchBuf.ShapeEq(n, 3, d.Size, d.Size) {
		d.batchBuf = tensor.New(n, 3, d.Size, d.Size)
	}
	sample := 3 * d.Size * d.Size
	bd := d.batchBuf.Data()
	for i, img := range imgs {
		if len(img.Pix) != sample {
			panic(fmt.Sprintf("detect: ForwardBatch frame %d has %d pixels, want %d", i, len(img.Pix), sample))
		}
		copy(bd[i*sample:(i+1)*sample], img.Pix)
	}
	return d.Net.Forward(d.batchBuf, false)
}

// Detect runs the detector and decodes boxes with the given confidence
// threshold, applying NMS at IoU 0.45.
func (d *Detector) Detect(img *imaging.Image, minScore float64) []metrics.Detection {
	raw := d.Forward(img)
	return d.Decode(raw, minScore)
}

// DetectBatch detects over every frame, feeding the network BatchSize
// frames per forward pass and decoding each sample's map. The decoded
// boxes are identical to per-frame Detect calls. A final short block is
// padded to BatchSize by repeating the last frame (padding outputs are
// discarded), so the batched workspaces keep one shape across calls
// instead of reallocating between the tail and the next full block.
func (d *Detector) DetectBatch(imgs []*imaging.Image, minScore float64) [][]metrics.Detection {
	out := make([][]metrics.Detection, len(imgs))
	plane := numCh * d.Grid * d.Grid
	var padded [BatchSize]*imaging.Image
	for lo := 0; lo < len(imgs); lo += BatchSize {
		hi := lo + BatchSize
		block := imgs[lo:]
		if hi > len(imgs) {
			hi = len(imgs)
			n := copy(padded[:], imgs[lo:])
			for i := n; i < BatchSize; i++ {
				padded[i] = imgs[len(imgs)-1]
			}
			block = padded[:]
		} else {
			block = imgs[lo:hi]
		}
		raw := d.ForwardBatch(block)
		for i := 0; i < hi-lo; i++ {
			view := tensor.FromSlice(raw.Data()[i*plane:(i+1)*plane], numCh, d.Grid, d.Grid)
			out[lo+i] = d.Decode(view, minScore)
		}
	}
	return out
}

// Decode converts a raw prediction map into scored, NMS-filtered boxes.
func (d *Detector) Decode(raw *tensor.Tensor, minScore float64) []metrics.Detection {
	g := d.Grid
	cell := float64(d.Size) / float64(g)
	var dets []metrics.Detection
	for gy := 0; gy < g; gy++ {
		for gx := 0; gx < g; gx++ {
			score := float64(nn.SigmoidScalar(raw.At(chObj, gy, gx)))
			if score < minScore {
				continue
			}
			tx := clampF(raw.At(chTX, gy, gx), 0, 1)
			ty := clampF(raw.At(chTY, gy, gx), 0, 1)
			tw := clampF(raw.At(chTW, gy, gx), 0.01, 1)
			th := clampF(raw.At(chTH, gy, gx), 0.01, 1)
			cx := (float64(gx) + float64(tx)) * cell
			cy := (float64(gy) + float64(ty)) * cell
			w := float64(tw) * float64(d.Size)
			h := float64(th) * float64(d.Size)
			dets = append(dets, metrics.Detection{
				Box:   box.FromCenter(cx, cy, w, h).Clip(float64(d.Size), float64(d.Size)),
				Score: score,
			})
		}
	}
	return NMS(dets, 0.45)
}

// NMS performs greedy non-maximum suppression at the given IoU threshold.
func NMS(dets []metrics.Detection, iouThresh float64) []metrics.Detection {
	// Sort by score descending (insertion sort: lists are short).
	for i := 1; i < len(dets); i++ {
		for j := i; j > 0 && dets[j].Score > dets[j-1].Score; j-- {
			dets[j], dets[j-1] = dets[j-1], dets[j]
		}
	}
	var keep []metrics.Detection
	suppressed := make([]bool, len(dets))
	for i := range dets {
		if suppressed[i] {
			continue
		}
		keep = append(keep, dets[i])
		for j := i + 1; j < len(dets); j++ {
			if !suppressed[j] && dets[i].Box.IoU(dets[j].Box) > iouThresh {
				suppressed[j] = true
			}
		}
	}
	return keep
}

// Targets encodes ground-truth boxes into the (5,G,G) target map and the
// per-element loss weights, as fresh tensors the caller owns.
func (d *Detector) Targets(gt []box.Box) (target, weight *tensor.Tensor) {
	g := d.Grid
	target = tensor.New(numCh, g, g)
	weight = tensor.New(numCh, g, g)
	d.targetsInto(target, weight, gt)
	return target, weight
}

// targetsInto encodes ground truth into caller-held (5,G,G) tensors,
// overwriting their previous contents — the allocation-free body of
// Targets that LossGrad's scratch path reuses every call. Elements are
// addressed through the raw storage (variadic Set escapes its index
// slice, which would put ~G² allocations on the attack hot path).
func (d *Detector) targetsInto(target, weight *tensor.Tensor, gt []box.Box) {
	g := d.Grid
	plane := g * g
	cell := float64(d.Size) / float64(g)
	target.Zero()
	weight.Zero()
	tD := target.Data()
	wD := weight.Data()
	// Background objectness weight everywhere, overwritten at positives.
	objPlane := wD[chObj*plane : (chObj+1)*plane]
	for i := range objPlane {
		objPlane[i] = wNegativeObj
	}
	for _, b := range gt {
		if b.Empty() {
			continue
		}
		gx := int(b.CX() / cell)
		gy := int(b.CY() / cell)
		if gx < 0 || gx >= g || gy < 0 || gy >= g {
			continue
		}
		at := gy*g + gx
		tD[chObj*plane+at] = 1
		wD[chObj*plane+at] = wPositiveObj
		tD[chTX*plane+at] = float32(b.CX()/cell - float64(gx))
		tD[chTY*plane+at] = float32(b.CY()/cell - float64(gy))
		tD[chTW*plane+at] = float32(b.W() / float64(d.Size))
		tD[chTH*plane+at] = float32(b.H() / float64(d.Size))
		for c := chTX; c <= chTH; c++ {
			wD[c*plane+at] = wBox
		}
	}
}

// LossGrad computes the detection loss of a raw prediction map against
// ground truth, returning the loss and its gradient w.r.t. the raw map.
// The objectness channel uses weighted BCE on logits; box channels use
// weighted MSE restricted to positive cells. Targets and gradient live in
// reusable detector scratch, so steady-state calls allocate nothing; the
// returned gradient is valid until the next LossGrad/TrainLoss call.
func (d *Detector) LossGrad(raw *tensor.Tensor, gt []box.Box) (float64, *tensor.Tensor) {
	g := d.Grid
	if d.lossTarget == nil || !d.lossTarget.ShapeEq(numCh, g, g) {
		d.lossTarget = tensor.New(numCh, g, g)
		d.lossWeight = tensor.New(numCh, g, g)
	}
	d.targetsInto(d.lossTarget, d.lossWeight, gt)
	return d.lossWithTargets(raw, d.lossTarget, d.lossWeight)
}

func (d *Detector) lossWithTargets(raw, target, weight *tensor.Tensor) (float64, *tensor.Tensor) {
	g := d.Grid
	if d.lossGrad == nil || !d.lossGrad.ShapeEq(numCh, g, g) {
		d.lossGrad = tensor.New(numCh, g, g)
	}
	loss := d.lossInto(d.lossGrad.Data(), raw.Data(), target.Data(), weight.Data())
	return loss, d.lossGrad
}

// lossInto computes one sample's detection loss and writes its raw-map
// gradient into gD (fully overwritten) — the slice-level body both the
// per-sample and batched loss paths share.
func (d *Detector) lossInto(gD, rawD, tD, wD []float32) float64 {
	plane := d.Grid * d.Grid
	clear(gD[:numCh*plane])
	n := float64(plane) // normalise per-cell so loss scale is grid-independent

	var loss float64
	// Objectness: weighted BCE with logits.
	for i := 0; i < plane; i++ {
		w := float64(wD[i])
		if w == 0 {
			continue
		}
		z := float64(rawD[i])
		t := float64(tD[i])
		loss += w * (maxF64(z, 0) - z*t + log1pExpNegAbs(z))
		gD[i] = float32(w * (float64(nn.SigmoidScalar(rawD[i])) - t) / n)
	}
	// Box channels: weighted MSE.
	for i := plane; i < numCh*plane; i++ {
		w := float64(wD[i])
		if w == 0 {
			continue
		}
		diff := float64(rawD[i] - tD[i])
		loss += 0.5 * w * diff * diff
		gD[i] = float32(w * diff / n)
	}
	return loss / n
}

// LossGradBatch computes the detection loss of every sample in a batched
// [N,5,G,G] prediction map against per-sample ground truth, writing
// per-sample losses into losses and returning the [N,5,G,G] gradient
// (detector-owned scratch, valid until the next loss call). Per-sample
// losses and gradients are bit-identical to LossGrad.
func (d *Detector) LossGradBatch(losses []float64, raw *tensor.Tensor, gts [][]Box) *tensor.Tensor {
	g := d.Grid
	n := len(gts)
	if raw.Len() != n*numCh*g*g || len(losses) != n {
		panic(fmt.Sprintf("detect: LossGradBatch raw %v / %d losses vs %d samples", raw.Shape(), len(losses), n))
	}
	if d.lossTarget == nil || !d.lossTarget.ShapeEq(numCh, g, g) {
		d.lossTarget = tensor.New(numCh, g, g)
		d.lossWeight = tensor.New(numCh, g, g)
	}
	if d.lossGradB == nil || !d.lossGradB.ShapeEq(n, numCh, g, g) {
		d.lossGradB = tensor.New(n, numCh, g, g)
	}
	plane5 := numCh * g * g
	rawD := raw.Data()
	gD := d.lossGradB.Data()
	for i, gt := range gts {
		d.targetsInto(d.lossTarget, d.lossWeight, gt)
		losses[i] = d.lossInto(gD[i*plane5:(i+1)*plane5], rawD[i*plane5:(i+1)*plane5],
			d.lossTarget.Data(), d.lossWeight.Data())
	}
	return d.lossGradB
}

// TrainLoss runs a forward pass and returns loss and input gradient; it is
// the primitive white-box attacks use (∇x of the training loss). Only the
// input gradient is computed (BackwardInput): attacks never read parameter
// gradients, so the weight-gradient GEMMs of a full backward are skipped.
func (d *Detector) TrainLoss(img *imaging.Image, gt []box.Box) (float64, *tensor.Tensor) {
	raw := d.Net.Forward(img.Tensor(), false)
	loss, grad := d.LossGrad(raw, gt)
	return loss, d.Net.BackwardInput(grad)
}

// TrainLossBatch is TrainLoss over a whole block of frames: one batched
// forward and one batched input-gradient backward — two GEMM-shaped passes
// — instead of N per-frame pairs. losses must have len(imgs) elements;
// gts holds one ground-truth list per frame. The returned [N,3,S,S] pixel
// gradient is owned by the model workspace and valid until the model's
// next call. Per-frame losses and gradients are bit-identical to TrainLoss.
func (d *Detector) TrainLossBatch(losses []float64, imgs []*imaging.Image, gts [][]Box) *tensor.Tensor {
	if len(losses) != len(imgs) || len(gts) != len(imgs) {
		panic(fmt.Sprintf("detect: TrainLossBatch %d losses / %d gts vs %d frames", len(losses), len(gts), len(imgs)))
	}
	raw := d.ForwardBatch(imgs)
	grad := d.LossGradBatch(losses, raw, gts)
	return d.Net.BackwardInput(grad)
}

// MaxObjectness returns the maximum post-sigmoid objectness over the grid,
// the scalar "sign present" confidence that SimBA queries.
func (d *Detector) MaxObjectness(img *imaging.Image) float64 {
	raw := d.Forward(img)
	plane := d.Grid * d.Grid
	best := raw.Data()[0]
	for _, v := range raw.Data()[1:plane] {
		if v > best {
			best = v
		}
	}
	return float64(nn.SigmoidScalar(best))
}

func clampF(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxF64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// log1pExpNegAbs computes log(1+exp(-|z|)) stably.
func log1pExpNegAbs(z float64) float64 {
	if z < 0 {
		z = -z
	}
	// For large z, exp(-z) underflows harmlessly to 0.
	return log1p(exp(-z))
}
