package detect

import (
	"math"

	"repro/internal/box"
	"repro/internal/dataset"
	"repro/internal/imaging"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/scene"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

func log1p(x float64) float64 { return math.Log1p(x) }
func exp(x float64) float64   { return math.Exp(x) }

// Box aliases box.Box so callers of the detect API do not need a separate
// import for ground-truth plumbing.
type Box = box.Box

// gtBoxes extracts the ground-truth box list of a scene (empty for
// negative scenes).
func gtBoxes(sc scene.SignScene) []Box {
	if !sc.HasSign {
		return nil
	}
	return []Box{sc.Box}
}

// GTBoxes exposes gtBoxes for the attack and defense packages.
func GTBoxes(sc scene.SignScene) []Box { return gtBoxes(sc) }

// TrainConfig controls detector training.
type TrainConfig struct {
	Epochs int
	Batch  int
	LR     float32
	Seed   int64
	// DecayAt is the fraction of epochs after which LR is multiplied by
	// DecayFactor (0 disables the schedule).
	DecayAt     float64
	DecayFactor float32
	// Logf, when non-nil, receives one line per epoch.
	Logf func(format string, args ...any)
}

// DefaultTrainConfig returns settings that train TinyDet to high clean
// accuracy on the synthetic stop-sign distribution.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, Batch: 16, LR: 3e-3, Seed: 1, DecayAt: 0.6, DecayFactor: 0.3}
}

// Train fits the detector on the sign set. Each epoch shuffles the data
// and runs each mini-batch as one batched forward and one batched backward
// (two GEMM-shaped passes) before applying an Adam step. It returns the
// final mean epoch loss.
func (d *Detector) Train(set *dataset.SignSet, cfg TrainConfig) float64 {
	imgs := make([]*imaging.Image, set.Len())
	gts := make([][]Box, set.Len())
	for i, sc := range set.Scenes {
		imgs[i] = sc.Img
		gts[i] = gtBoxes(sc)
	}
	return d.TrainImages(imgs, gts, cfg)
}

// TrainImages fits the detector on explicit image/ground-truth pairs; the
// adversarial-training defense uses it with perturbed images. Per-sample
// losses and raw-map gradients match the old per-sample loop exactly;
// parameter gradients accumulate across each batch in one backward pass
// (float-rounding-level difference only).
func (d *Detector) TrainImages(imgs []*imaging.Image, gts [][]Box, cfg TrainConfig) float64 {
	rng := xrand.New(cfg.Seed)
	opt := nn.NewAdam(cfg.LR)
	idx := make([]int, len(imgs))
	for i := range idx {
		idx[i] = i
	}
	var (
		batchBuf  *tensor.Tensor
		batchGTs  [][]Box
		losses    []float64
		sample    = 3 * d.Size * d.Size
		epochLoss float64
	)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		maybeDecay(opt, cfg, epoch)
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss = 0
		for _, batch := range dataset.Batches(len(idx), cfg.Batch) {
			nb := len(batch)
			// Pack buffers live at full cfg.Batch capacity; a short tail
			// batch is a view, so the epoch boundary never reallocates.
			if batchBuf == nil || batchBuf.Len() < cfg.Batch*sample {
				batchBuf = tensor.New(cfg.Batch, 3, d.Size, d.Size)
				batchGTs = make([][]Box, cfg.Batch)
				losses = make([]float64, cfg.Batch)
			}
			in := batchBuf
			if nb != in.Dim(0) {
				in = tensor.FromSlice(in.Data()[:nb*sample], nb, 3, d.Size, d.Size)
			}
			bd := in.Data()
			for bi, b := range batch {
				k := idx[b]
				copy(bd[bi*sample:(bi+1)*sample], imgs[k].Pix)
				batchGTs[bi] = gts[k]
			}
			d.Net.ZeroGrad()
			raw := d.Net.Forward(in, true)
			grad := d.LossGradBatch(losses[:nb], raw, batchGTs[:nb])
			for _, l := range losses[:nb] {
				epochLoss += l
			}
			d.Net.Backward(grad)
			scaleGrads(d.Net.Params(), 1/float32(nb))
			nn.ClipGradNorm(d.Net.Params(), 10)
			opt.Step(d.Net.Params())
		}
		epochLoss /= float64(len(imgs))
		if cfg.Logf != nil {
			cfg.Logf("detect: epoch %d/%d loss %.5f", epoch+1, cfg.Epochs, epochLoss)
		}
	}
	return epochLoss
}

// Evaluate runs the detector over a set and returns the paper's three
// detection metrics at the given confidence threshold. Frames run through
// the batched forward path (bit-identical to per-frame detection).
func (d *Detector) Evaluate(set *dataset.SignSet, scoreThresh float64) metrics.DetectionScores {
	imgs := make([]*imaging.Image, set.Len())
	for i, sc := range set.Scenes {
		imgs[i] = sc.Img
	}
	dets := d.DetectBatch(imgs, 0.05) // low floor so AP sweep sees the full curve
	evals := make([]metrics.ImageEval, set.Len())
	for i, sc := range set.Scenes {
		evals[i] = metrics.ImageEval{Dets: dets[i], GT: gtBoxes(sc)}
	}
	return metrics.EvalDetections(evals, scoreThresh)
}

// EvaluateImages evaluates on explicit image/GT pairs (used when images
// have been attacked or defended), batching frames through the detector.
func (d *Detector) EvaluateImages(imgs []*imaging.Image, gts [][]Box, scoreThresh float64) metrics.DetectionScores {
	dets := d.DetectBatch(imgs, 0.05)
	evals := make([]metrics.ImageEval, len(imgs))
	for i := range imgs {
		evals[i] = metrics.ImageEval{Dets: dets[i], GT: gts[i]}
	}
	return metrics.EvalDetections(evals, scoreThresh)
}

// maybeDecay applies the one-step learning-rate schedule at the epoch
// boundary given by cfg.DecayAt.
func maybeDecay(opt *nn.Adam, cfg TrainConfig, epoch int) {
	if cfg.DecayAt <= 0 || cfg.DecayFactor <= 0 {
		return
	}
	if epoch == int(cfg.DecayAt*float64(cfg.Epochs)) {
		opt.LR *= cfg.DecayFactor
	}
}

func scaleGrads(params []*nn.Param, s float32) {
	for _, p := range params {
		p.Grad.ScaleInPlace(s)
	}
}
