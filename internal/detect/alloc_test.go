package detect

import (
	"testing"

	"repro/internal/box"
	"repro/internal/imaging"
	"repro/internal/testenv"
	"repro/internal/xrand"
)

// TestTrainLossSteadyStateAllocs guards the attack primitive's budget:
// once the model workspace and the detector's loss scratch are warm, a
// full TrainLoss (forward + loss encode + backward) must not allocate —
// the ROADMAP leftover this PR closes.
func TestTrainLossSteadyStateAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	d := New(xrand.New(3), 32)
	img := imaging.NewRGB(32, 32)
	for i := range img.Pix {
		img.Pix[i] = float32(i%31) * 0.03
	}
	gt := []box.Box{box.New(8, 8, 24, 24)}
	d.TrainLoss(img, gt) // size workspace and loss scratch
	if avg := testing.AllocsPerRun(50, func() { d.TrainLoss(img, gt) }); avg >= 1 {
		t.Fatalf("TrainLoss allocates %.2f/op in steady state, want 0", avg)
	}
}

// TestLossGradScratchMatchesTargets pins the scratch-backed LossGrad to the
// allocating Targets encoding: reusing buffers must not change the loss.
func TestLossGradScratchMatchesTargets(t *testing.T) {
	d := New(xrand.New(4), 32)
	img := imaging.NewRGB(32, 32)
	for i := range img.Pix {
		img.Pix[i] = float32(i%17) * 0.05
	}
	raw := d.Forward(img).Clone()
	gtA := []box.Box{box.New(4, 4, 16, 16)}
	lossA1, gradA := d.LossGrad(raw, gtA)
	gA := append([]float32(nil), gradA.Data()...)

	// A different ground truth in between must fully re-encode the scratch.
	d.LossGrad(raw, nil)
	lossA2, gradA2 := d.LossGrad(raw, gtA)
	if lossA1 != lossA2 {
		t.Fatalf("scratch reuse changed the loss: %v vs %v", lossA1, lossA2)
	}
	for i := range gA {
		if gradA2.Data()[i] != gA[i] {
			t.Fatalf("scratch reuse changed the gradient at %d", i)
		}
	}

	target, weight := d.Targets(gtA)
	lossB, gradB := d.lossWithTargets(raw, target, weight)
	if lossB != lossA1 {
		t.Fatalf("Targets path loss %v vs scratch path %v", lossB, lossA1)
	}
	for i := range gA {
		if gradB.Data()[i] != gA[i] {
			t.Fatalf("Targets path gradient differs at %d", i)
		}
	}
}
