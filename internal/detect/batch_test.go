package detect

import (
	"runtime"
	"testing"

	"repro/internal/imaging"
	"repro/internal/xrand"
)

// testFrames renders n deterministic pseudo-frames.
func testFrames(n, size int) []*imaging.Image {
	rng := xrand.New(61)
	imgs := make([]*imaging.Image, n)
	for i := range imgs {
		img := imaging.NewRGB(size, size)
		rng.FillUniform(img.Pix, 0, 1)
		imgs[i] = img
	}
	return imgs
}

// TestDetectorBatchBitIdentical: the batched forward and decode of N
// frames must match N per-frame detections exactly, across GOMAXPROCS
// (kernel choice is shape-gated, never worker-count-gated).
func TestDetectorBatchBitIdentical(t *testing.T) {
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		d := New(xrand.New(9), 32)
		imgs := testFrames(11, 32) // spans a full chunk plus a tail
		single := d.Clone()

		batched := d.DetectBatch(imgs, 0.05)
		for i, img := range imgs {
			want := single.Detect(img, 0.05)
			got := batched[i]
			if len(got) != len(want) {
				t.Fatalf("procs=%d frame %d: %d dets batched vs %d single", procs, i, len(got), len(want))
			}
			for j := range want {
				if got[j].Score != want[j].Score || got[j].Box != want[j].Box {
					t.Fatalf("procs=%d frame %d det %d differs: %+v vs %+v", procs, i, j, got[j], want[j])
				}
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestDetectorForwardBatchRaw pins the raw batched maps to per-frame
// Forward outputs bit for bit.
func TestDetectorForwardBatchRaw(t *testing.T) {
	d := New(xrand.New(10), 32)
	imgs := testFrames(5, 32)
	single := d.Clone()

	raw := d.ForwardBatch(imgs)
	plane := raw.Len() / len(imgs)
	for i, img := range imgs {
		want := single.Forward(img)
		row := raw.Data()[i*plane : (i+1)*plane]
		for j, v := range row {
			if v != want.Data()[j] {
				t.Fatalf("frame %d raw elem %d: %v vs %v", i, j, v, want.Data()[j])
			}
		}
	}
}
