// Package sim provides the longitudinal vehicle simulation and the
// adaptive-cruise-control (ACC) controller that close the loop around the
// distance-regression model, standing in for the OpenPilot Level-2 stack
// whose Supercombo output the paper attacks. The simulator exposes the
// safety measures (minimum gap, minimum time-to-collision, collision flag)
// that make the consequence of a perception attack observable.
package sim

import "math"

// ACCConfig parameterises the ACC controller.
type ACCConfig struct {
	TimeGap  float64 // desired time headway in seconds
	MinGap   float64 // standstill gap in meters
	MaxAccel float64 // acceleration limit, m/s²
	MaxBrake float64 // braking limit (positive), m/s²
	Kp       float64 // gap error gain
	Kv       float64 // relative speed gain
}

// DefaultACCConfig returns a conservative production-like tuning.
func DefaultACCConfig() ACCConfig {
	return ACCConfig{
		TimeGap: 1.6, MinGap: 4, MaxAccel: 1.5, MaxBrake: 3.5,
		Kp: 0.25, Kv: 0.8,
	}
}

// ACC computes ego acceleration commands from the perceived gap and an
// estimate of the relative speed (perceived gap derivative).
type ACC struct {
	Cfg ACCConfig
}

// Accel returns the commanded ego acceleration for a perceived gap,
// ego speed and perceived relative speed (lead − ego, positive = opening).
func (a *ACC) Accel(gap, egoSpeed, relSpeed float64) float64 {
	desired := a.Cfg.MinGap + a.Cfg.TimeGap*egoSpeed
	u := a.Cfg.Kp*(gap-desired) + a.Cfg.Kv*relSpeed
	return clamp(u, -a.Cfg.MaxBrake, a.Cfg.MaxAccel)
}

// State is the longitudinal world state: ego and lead positions along the
// same lane and their speeds.
type State struct {
	EgoPos    float64
	EgoSpeed  float64
	LeadPos   float64
	LeadSpeed float64
}

// Gap returns the bumper-to-bumper distance.
func (s State) Gap() float64 { return s.LeadPos - s.EgoPos }

// TTC returns the time to collision (+Inf when the gap is opening).
func (s State) TTC() float64 {
	closing := s.EgoSpeed - s.LeadSpeed
	if closing <= 0 {
		return math.Inf(1)
	}
	return s.Gap() / closing
}

// Result aggregates a closed-loop run.
type Result struct {
	Times         []float64
	TrueGaps      []float64
	PerceivedGaps []float64
	EgoSpeeds     []float64
	LeadSpeeds    []float64

	MinGap    float64
	MinTTC    float64
	Collision bool
}

// Simulation advances the two-vehicle world with simple kinematics.
type Simulation struct {
	State State
	DT    float64
}

// NewSimulation starts the world with the given initial gap and speeds.
func NewSimulation(initGap, egoSpeed, leadSpeed, dt float64) *Simulation {
	return &Simulation{
		State: State{EgoPos: 0, EgoSpeed: egoSpeed, LeadPos: initGap, LeadSpeed: leadSpeed},
		DT:    dt,
	}
}

// Step advances one tick with the given ego and lead accelerations.
// Speeds are floored at zero (no reversing).
func (s *Simulation) Step(egoAccel, leadAccel float64) {
	st := &s.State
	st.EgoPos += st.EgoSpeed*s.DT + 0.5*egoAccel*s.DT*s.DT
	st.EgoSpeed = math.Max(0, st.EgoSpeed+egoAccel*s.DT)
	st.LeadPos += st.LeadSpeed*s.DT + 0.5*leadAccel*s.DT*s.DT
	st.LeadSpeed = math.Max(0, st.LeadSpeed+leadAccel*s.DT)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
