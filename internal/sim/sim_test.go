package sim

import (
	"math"
	"testing"
)

func TestACCMaintainsGapInSteadyState(t *testing.T) {
	acc := ACC{Cfg: DefaultACCConfig()}
	world := NewSimulation(40, 25, 25, 0.05)
	for i := 0; i < 2000; i++ {
		st := world.State
		a := acc.Accel(st.Gap(), st.EgoSpeed, st.LeadSpeed-st.EgoSpeed)
		world.Step(a, 0)
	}
	st := world.State
	desired := acc.Cfg.MinGap + acc.Cfg.TimeGap*st.EgoSpeed
	if math.Abs(st.Gap()-desired) > 3 {
		t.Fatalf("steady-state gap %.2f, want ~%.2f", st.Gap(), desired)
	}
	if math.Abs(st.EgoSpeed-st.LeadSpeed) > 0.5 {
		t.Fatalf("speeds did not converge: ego %.2f lead %.2f", st.EgoSpeed, st.LeadSpeed)
	}
}

func TestACCBrakesWhenLeadStops(t *testing.T) {
	acc := ACC{Cfg: DefaultACCConfig()}
	world := NewSimulation(50, 25, 25, 0.05)
	collided := false
	for i := 0; i < 4000; i++ {
		st := world.State
		if st.Gap() <= 0 {
			collided = true
			break
		}
		a := acc.Accel(st.Gap(), st.EgoSpeed, st.LeadSpeed-st.EgoSpeed)
		leadA := 0.0
		if i > 100 && st.LeadSpeed > 0 {
			leadA = -4
		}
		world.Step(a, leadA)
	}
	if collided {
		t.Fatal("ACC with truthful perception must not collide in this scenario")
	}
	if world.State.EgoSpeed > 0.5 {
		t.Fatalf("ego should have stopped behind the lead, speed %.2f", world.State.EgoSpeed)
	}
}

func TestACCAccelClamped(t *testing.T) {
	cfg := DefaultACCConfig()
	acc := ACC{Cfg: cfg}
	if a := acc.Accel(1000, 0, 15); a != cfg.MaxAccel {
		t.Fatalf("huge gap accel %v, want clamp at %v", a, cfg.MaxAccel)
	}
	if a := acc.Accel(1, 40, -15); a != -cfg.MaxBrake {
		t.Fatalf("tiny gap accel %v, want clamp at %v", a, -cfg.MaxBrake)
	}
}

func TestInflatedPerceptionCausesCollision(t *testing.T) {
	// The attack model of the paper: the perceived gap is inflated, so the
	// controller accelerates into a braking lead.
	acc := ACC{Cfg: DefaultACCConfig()}
	world := NewSimulation(30, 25, 25, 0.05)
	collided := false
	for i := 0; i < 4000; i++ {
		st := world.State
		if st.Gap() <= 0 {
			collided = true
			break
		}
		perceived := st.Gap() + 40 // adversarially inflated
		a := acc.Accel(perceived, st.EgoSpeed, 0)
		leadA := 0.0
		if i > 100 && st.LeadSpeed > 0 {
			leadA = -4
		}
		world.Step(a, leadA)
	}
	if !collided {
		t.Fatal("inflated perception should cause a collision in this scenario")
	}
}

func TestStepKinematics(t *testing.T) {
	world := NewSimulation(20, 10, 12, 0.1)
	world.Step(1, -1)
	st := world.State
	if math.Abs(st.EgoSpeed-10.1) > 1e-9 {
		t.Fatalf("ego speed %v, want 10.1", st.EgoSpeed)
	}
	if math.Abs(st.LeadSpeed-11.9) > 1e-9 {
		t.Fatalf("lead speed %v, want 11.9", st.LeadSpeed)
	}
	wantGap := 20 + (12*0.1 - 0.5*1*0.01) - (10*0.1 + 0.5*1*0.01)
	if math.Abs(st.Gap()-wantGap) > 1e-9 {
		t.Fatalf("gap %v, want %v", st.Gap(), wantGap)
	}
}

func TestSpeedsFloorAtZero(t *testing.T) {
	world := NewSimulation(20, 0.1, 0.1, 1)
	world.Step(-5, -5)
	if world.State.EgoSpeed != 0 || world.State.LeadSpeed != 0 {
		t.Fatal("speeds must floor at zero (no reversing)")
	}
}

func TestTTC(t *testing.T) {
	st := State{EgoPos: 0, EgoSpeed: 20, LeadPos: 30, LeadSpeed: 10}
	if got := st.TTC(); math.Abs(got-3) > 1e-9 {
		t.Fatalf("TTC %v, want 3", got)
	}
	opening := State{EgoPos: 0, EgoSpeed: 10, LeadPos: 30, LeadSpeed: 20}
	if !math.IsInf(opening.TTC(), 1) {
		t.Fatal("opening gap must give +Inf TTC")
	}
}
