package exp

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/box"
	"repro/internal/defense"
	"repro/internal/eval"
	"repro/internal/imaging"
	"repro/internal/pipeline"
	"repro/internal/regress"
)

// microPreset mirrors the eval test suite's preset: the exp tests pin the
// spec-routed entrypoints against the same goldens.
func microPreset() eval.Preset {
	return eval.Preset{
		Name:      "micro",
		SignTrain: 40, SignTest: 12,
		DriveTrain: 50, DrivePerBucket: 3,
		DetEpochs: 4, RegEpochs: 4,
		AdvEpochs: 1, ContrastiveEpochs: 1,
		DiffusionSteps: 10, DiffPIRSteps: 3,
		APGDSteps: 4, SimBASteps: 20, RP2Iters: 4,
		Seed: 5,
	}
}

var (
	expOnce sync.Once
	testExp *Experiment
)

func sharedExperiment(t testing.TB) *Experiment {
	t.Helper()
	expOnce.Do(func() {
		x, err := New(context.Background(), WithPreset(microPreset()))
		if err != nil {
			panic(err)
		}
		testExp = x
	})
	return testExp
}

func readGolden(t *testing.T, name string) string {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join("..", "eval", "testdata", name))
	if err != nil {
		t.Fatalf("golden %s missing (regenerate with go run ./cmd/gengolden): %v", name, err)
	}
	return string(buf)
}

// goldenMatrixSpec addresses the exact grid cmd/gengolden pinned.
func goldenMatrixSpec() Spec {
	return Spec{
		Kind: KindMatrix,
		Matrix: &MatrixSpec{
			Scenarios: []string{"gentle-brake", "highway-cruise"},
			Duration:  0.8, DT: 0.1,
			BaseSeed: 4242,
		},
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := Spec{
		Version: SpecVersion,
		Kind:    KindSweep,
		Preset:  "quick",
		Matrix: &MatrixSpec{
			Scenarios: []string{"hard-brake"},
			Attacks:   []string{"None", "CAP-Attack"},
			Defenses:  []string{"None", "Median Blurring"},
			Duration:  2.5, DT: 0.05, BaseSeed: 99,
		},
		Sweep: &SweepSpec{Shard: 1, NumShards: 4, JSONL: "cells.jsonl", Resume: true},
	}
	buf, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed the spec:\n%+v\nvs\n%+v", s, back)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"kind":"matrix","matrx":{}}`)); err == nil {
		t.Fatal("typo field must be rejected")
	}
	if _, err := ParseSpec([]byte(`{"kind":"matrix"}{"kind":"sweep"}`)); err == nil {
		t.Fatal("trailing content after the spec object must be rejected")
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error
	}{
		{"unknown kind", Spec{Kind: "table9"}, "unknown spec kind"},
		{"unknown preset", Spec{Kind: KindTable1, Preset: "huge"}, "unknown preset"},
		{"bad version", Spec{Version: 9, Kind: KindTable1}, "version"},
		{"matrix section on table", Spec{Kind: KindTable1, Matrix: &MatrixSpec{}}, "no matrix section"},
		{"sweep section on matrix", Spec{Kind: KindMatrix, Sweep: &SweepSpec{}}, "no sweep section"},
		{"unknown scenario", Spec{Kind: KindMatrix, Matrix: &MatrixSpec{Scenarios: []string{"warp-drive"}}}, "unknown scenario"},
		{"unknown attack", Spec{Kind: KindMatrix, Matrix: &MatrixSpec{Attacks: []string{"Nope"}}}, "unknown attack"},
		{"dataset-only attack on axis", Spec{Kind: KindMatrix, Matrix: &MatrixSpec{Attacks: []string{"SimBA"}}}, "no closed-loop runtime form"},
		{"unknown defense", Spec{Kind: KindMatrix, Matrix: &MatrixSpec{Defenses: []string{"Prayer"}}}, "unknown defense"},
		{"negative duration", Spec{Kind: KindMatrix, Matrix: &MatrixSpec{Duration: -1}}, "non-negative"},
		{"shard out of range", Spec{Kind: KindSweep, Sweep: &SweepSpec{Shard: 3, NumShards: 3}}, "out of range"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	ok := goldenMatrixSpec()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestRegistryDuplicatesAndUnknowns(t *testing.T) {
	if err := RegisterAttack(AttackDef{Name: "FGSM"}); err == nil {
		t.Fatal("duplicate attack registration must fail")
	}
	if err := RegisterDefense(DefenseDef{Name: "Median Blurring"}); err == nil {
		t.Fatal("duplicate defense registration must fail")
	}
	if err := RegisterScenario(pipeline.Scenario{Name: "hard-brake"}); err == nil {
		t.Fatal("shadowing a built-in scenario must fail")
	}
	if err := RegisterAttack(AttackDef{}); err == nil {
		t.Fatal("empty attack name must fail")
	}
	if _, ok := LookupAttack("definitely-not-registered"); ok {
		t.Fatal("unknown attack lookup must miss")
	}
	for _, name := range []string{"None", "Gaussian", "FGSM", "Auto-PGD", "SimBA", "RP2", "CAP-Attack"} {
		if _, ok := LookupAttack(name); !ok {
			t.Fatalf("built-in attack %q missing from registry", name)
		}
	}
	for _, name := range []string{"None", "Median Blurring", "DiffPIR", "Randomization", "Bit Depth"} {
		if _, ok := LookupDefense(name); !ok {
			t.Fatalf("built-in defense %q missing from registry", name)
		}
	}
	if got := len(Scenarios()); got < 8 {
		t.Fatalf("scenario registry lists %d names, want >= 8", got)
	}
	if want := []string{"None", "CAP-Attack", "FGSM"}; !reflect.DeepEqual(DefaultMatrixAttacks(), want) {
		t.Fatalf("default attack axis %v, want %v", DefaultMatrixAttacks(), want)
	}
	if want := []string{"None", "Median Blurring", "DiffPIR"}; !reflect.DeepEqual(DefaultMatrixDefenses(), want) {
		t.Fatalf("default defense axis %v, want %v", DefaultMatrixDefenses(), want)
	}
}

// TestSpecRoutedRunsMatchGoldens is the redesign's acceptance pin: the
// spec-addressed runs must be byte-identical to the pre-redesign goldens.
func TestSpecRoutedRunsMatchGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("byte-pin goldens are compute-heavy; the non-short job runs them")
	}
	x := sharedExperiment(t)
	ctx := context.Background()

	res, err := x.Run(ctx, Spec{Kind: KindTable1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != readGolden(t, "golden_table1.txt") || res.Table1 == nil {
		t.Fatalf("spec-routed table1 diverged from the pre-redesign golden:\n%s", res.Text)
	}

	res, err = x.Run(ctx, Spec{Kind: KindFig2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != readGolden(t, "golden_fig2.txt") || res.Fig2 == nil {
		t.Fatalf("spec-routed fig2 diverged from the pre-redesign golden:\n%s", res.Text)
	}

	res, err = x.Run(ctx, goldenMatrixSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix == nil {
		t.Fatal("matrix result missing")
	}
	if got := res.Matrix.CSV(); got != readGolden(t, "golden_matrix.csv") {
		t.Fatalf("spec-routed matrix diverged from the pre-redesign golden:\n%s", got)
	}

	// The same grid as a single-shard sweep spec.
	sweep := goldenMatrixSpec()
	sweep.Kind = KindSweep
	res, err = x.Run(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweep == nil || res.Matrix == nil {
		t.Fatal("sweep result missing payloads")
	}
	if got := res.Matrix.CSV(); got != readGolden(t, "golden_matrix.csv") {
		t.Fatal("spec-routed sweep diverged from the pre-redesign golden")
	}
}

// TestSpecSweepShardsMergeToMatrix: two sweep shards run via specs, then
// Experiment.Merge verifies coverage and reassembles the unsharded grid.
func TestSpecSweepShardsMergeToMatrix(t *testing.T) {
	x := sharedExperiment(t)
	ctx := context.Background()
	dir := t.TempDir()

	grid := goldenMatrixSpec()
	grid.Kind = KindSweep
	if testing.Short() {
		// DiffPIR-free axes keep the two shard runs cheap under -race;
		// the merged result is then checked against a direct matrix run
		// instead of the committed golden.
		grid.Matrix.Attacks = []string{"None", "CAP-Attack"}
		grid.Matrix.Defenses = []string{"None", "Median Blurring"}
	}
	paths := []string{filepath.Join(dir, "s0.jsonl"), filepath.Join(dir, "s1.jsonl")}
	for shard, path := range paths {
		s := grid
		s.Sweep = &SweepSpec{Shard: shard, NumShards: 2, JSONL: path}
		if _, err := x.Run(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := x.Merge(grid, paths)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		m := grid
		m.Kind = KindMatrix
		res, err := x.Run(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		if merged.CSV() != res.Matrix.CSV() {
			t.Fatal("merged shard specs diverge from the unsharded grid")
		}
	} else if got := merged.CSV(); got != readGolden(t, "golden_matrix.csv") {
		t.Fatal("merged shard specs diverge from the unsharded golden grid")
	}
	if _, err := x.Merge(grid, paths[:1]); err == nil {
		t.Fatal("merge with a missing shard must be rejected")
	}
}

// TestRegisteredAxesAreRunnable registers a brand-new attack, defense and
// scenario, then addresses them from a spec — diversity as a registration,
// not a code change.
func TestRegisteredAxesAreRunnable(t *testing.T) {
	x := sharedExperiment(t)
	MustRegisterAttack(AttackDef{
		Name: "test-blackout", Description: "zeroes the lead box",
		Runtime: func(e *eval.Env, reg *regress.Regressor, seed int64) pipeline.Attacker {
			return pipeline.AttackerFunc(func(img *imaging.Image, leadBox box.Box) *imaging.Image {
				out := img.Clone()
				lb := leadBox.Clip(float64(img.W), float64(img.H))
				for c := 0; c < out.C; c++ {
					for y := int(lb.Y0); y < int(lb.Y1); y++ {
						for xx := int(lb.X0); xx < int(lb.X1); xx++ {
							if y >= 0 && y < out.H && xx >= 0 && xx < out.W {
								out.Pix[(c*out.H+y)*out.W+xx] = 0
							}
						}
					}
				}
				return out
			})
		},
	})
	MustRegisterDefense(DefenseDef{
		Name: "test-identity",
		New: func(e *eval.Env, seed int64) defense.Preprocessor {
			return defense.NewMedianBlur()
		},
	})
	MustRegisterScenario(pipeline.Scenario{
		Name:        "test-tailgate",
		Description: "short gap cruise",
		Mutate: func(cfg *pipeline.Config) {
			cfg.InitGap = 12
			cfg.EgoSpeed, cfg.LeadSpeed = 20, 20
		},
		LeadAccel: func(t float64) float64 { return 0 },
	})

	s := Spec{
		Kind: KindMatrix,
		Matrix: &MatrixSpec{
			Scenarios: []string{"test-tailgate"},
			Attacks:   []string{"None", "test-blackout", "Auto-PGD"},
			Defenses:  []string{"None", "test-identity"},
			Duration:  0.5, DT: 0.1, BaseSeed: 77,
		},
	}
	res, err := x.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matrix.Cells) != 6 {
		t.Fatalf("registered-axes grid ran %d cells, want 6", len(res.Matrix.Cells))
	}
	names := map[string]bool{}
	for _, c := range res.Matrix.Cells {
		names[c.Attack] = true
		if c.Scenario != "test-tailgate" {
			t.Fatalf("cell scenario %q", c.Scenario)
		}
	}
	if !names["test-blackout"] || !names["Auto-PGD"] {
		t.Fatalf("registered attacks missing from the grid: %v", names)
	}

	// Determinism holds for registered axes too.
	again, err := x.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Matrix.Cells, again.Matrix.Cells) {
		t.Fatal("registered-axes grid must be bit-identical across runs")
	}
}

// TestAutoPGDRuntimeAxisBites: the new closed-loop Auto-PGD axis must
// actually perturb perception (its cells differ from clean cells).
func TestAutoPGDRuntimeAxisBites(t *testing.T) {
	x := sharedExperiment(t)
	s := Spec{
		Kind: KindMatrix,
		Matrix: &MatrixSpec{
			Scenarios: []string{"gentle-brake"},
			Attacks:   []string{"None", "Auto-PGD"},
			Defenses:  []string{"None"},
			Duration:  0.8, DT: 0.1, BaseSeed: 4242,
		},
	}
	res, err := x.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matrix.Cells) != 2 {
		t.Fatalf("cells %d", len(res.Matrix.Cells))
	}
	clean, apgd := res.Matrix.Cells[0], res.Matrix.Cells[1]
	if apgd.Attack != "Auto-PGD" {
		t.Fatalf("second cell attack %q", apgd.Attack)
	}
	// The attacker must actually perturb perception: the perceived-gap
	// trajectory diverges from the clean cell's (the micro victim is too
	// weakly trained to assert error direction, only effect).
	if reflect.DeepEqual(clean.Result.PerceivedGaps, apgd.Result.PerceivedGaps) {
		t.Fatal("Auto-PGD runtime attack left perception untouched")
	}
}

func TestRunChecksPreset(t *testing.T) {
	x := sharedExperiment(t)
	if _, err := x.Run(context.Background(), Spec{Kind: KindTable1, Preset: "quick"}); err == nil {
		t.Fatal("spec addressing a different preset must be rejected")
	}
}

func TestNewOptionErrors(t *testing.T) {
	if _, err := New(context.Background(), WithPresetName("galactic")); err == nil {
		t.Fatal("unknown preset name must fail New")
	}
	x := sharedExperiment(t)
	if _, err := New(context.Background(), WithEnv(x.Env()), WithPreset(eval.Quick())); err == nil {
		t.Fatal("WithEnv conflicting with WithPreset must fail")
	}
	// Adopting the env without a conflicting preset works and shares it.
	y, err := New(context.Background(), WithEnv(x.Env()), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if y.Env() != x.Env() {
		t.Fatal("WithEnv must adopt, not copy")
	}
	y.Env().Workers = 0 // restore for other tests
}

func TestNewCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(ctx, WithPreset(microPreset())); err == nil {
		t.Fatal("cancelled construction must fail")
	}
}

func TestProgressPrinter(t *testing.T) {
	x := sharedExperiment(t)
	var buf bytes.Buffer
	s := Spec{
		Kind: KindMatrix,
		Matrix: &MatrixSpec{
			Scenarios: []string{"highway-cruise"},
			Attacks:   []string{"None"},
			Defenses:  []string{"None", "Median Blurring"},
			Duration:  0.5, DT: 0.1, BaseSeed: 11,
		},
	}
	y, err := New(context.Background(), WithEnv(x.Env()), WithObserver(&ProgressPrinter{W: &buf}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := y.Run(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "run: 2 cells") || !strings.Contains(out, "[2/2]") || !strings.Contains(out, "run complete") {
		t.Fatalf("progress output missing lines:\n%s", out)
	}
}

// TestMergeSpecGridIdentity exercises the env-less merge path's
// validation (quick-preset grid identity, no training required).
func TestMergeSpecGridIdentity(t *testing.T) {
	s := Spec{Kind: KindTable1}
	if _, err := MergeSpec(s, nil); err == nil {
		t.Fatal("merge of a non-grid spec must be rejected")
	}
	grid := goldenMatrixSpec()
	grid.Kind = KindSweep
	grid.Preset = "quick"
	ids, err := grid.CellIDs()
	if err != nil {
		t.Fatal(err)
	}
	// 2 scenarios x default axes (3x3).
	if len(ids) != 18 {
		t.Fatalf("grid identity has %d cells, want 18", len(ids))
	}
	if ids[1].Seed != ids[0].Seed+100003 {
		t.Fatalf("cell seed stride broken: %d then %d", ids[0].Seed, ids[1].Seed)
	}
	if _, err := MergeSpec(grid, []string{filepath.Join(t.TempDir(), "absent.jsonl")}); err == nil {
		t.Fatal("merge with an absent shard file must be rejected")
	}
}

// TestSpecFileOnDiskParses pins the committed CI smoke specs: they must
// parse and validate exactly as the CI job will consume them.
func TestSpecFileOnDiskParses(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no committed specs found: %v", err)
	}
	for _, p := range paths {
		buf, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseSpec(buf); err != nil {
			t.Fatalf("committed spec %s invalid: %v", p, err)
		}
	}
}
