package exp

import (
	"strings"
	"sync"
	"testing"
)

// The canonicalization suite pins the serving layer's cache-key
// semantics without training anything: syntactic degrees of freedom
// (field order, whitespace, implicit defaults) must hash equal, and
// every semantic difference (an axis value, a seed, a shard) must hash
// differently — cell seeds derive from grid position, so even axis
// ORDER is semantic.

// hashOfJSON parses a raw spec document and hashes it.
func hashOfJSON(t *testing.T, doc string) string {
	t.Helper()
	s, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatalf("parse %s: %v", doc, err)
	}
	h, err := SpecHash(s)
	if err != nil {
		t.Fatalf("hash %s: %v", doc, err)
	}
	return h
}

func TestSpecHashSyntacticInvariance(t *testing.T) {
	base := `{"kind":"matrix","preset":"quick","matrix":{"scenarios":["highway-cruise"],"duration":1,"dt":0.1,"base_seed":7}}`
	variants := map[string]string{
		"permuted top-level keys": `{"matrix":{"scenarios":["highway-cruise"],"duration":1,"dt":0.1,"base_seed":7},"preset":"quick","kind":"matrix"}`,
		"permuted matrix keys":    `{"kind":"matrix","preset":"quick","matrix":{"base_seed":7,"dt":0.1,"duration":1,"scenarios":["highway-cruise"]}}`,
		"whitespace and newlines": "{\n  \"kind\": \"matrix\",\n  \"preset\": \"quick\",\n  \"matrix\": {\n    \"scenarios\": [ \"highway-cruise\" ],\n    \"duration\": 1.0,\n    \"dt\": 0.1,\n    \"base_seed\": 7\n  }\n}",
		"explicit version":        `{"version":1,"kind":"matrix","preset":"quick","matrix":{"scenarios":["highway-cruise"],"duration":1,"dt":0.1,"base_seed":7}}`,
	}
	want := hashOfJSON(t, base)
	for name, doc := range variants {
		if got := hashOfJSON(t, doc); got != want {
			t.Errorf("%s: hash %s != base %s", name, got, want)
		}
	}
}

func TestSpecHashDefaultResolution(t *testing.T) {
	// The implicit default and the same default spelled out are the same
	// run, so they must share a content address.
	cases := []struct {
		name             string
		implied, spelled string
	}{
		{
			"implicit preset is quick",
			`{"kind":"table1"}`,
			`{"kind":"table1","preset":"quick"}`,
		},
		{
			"implicit axes are the registry defaults",
			`{"kind":"matrix","matrix":{"base_seed":7}}`,
			`{"kind":"matrix","matrix":{"scenarios":` + jsonNames(defaultScenarioNames()) +
				`,"attacks":` + jsonNames(DefaultMatrixAttacks()) +
				`,"defenses":` + jsonNames(DefaultMatrixDefenses()) + `,"base_seed":7}}`,
		},
		{
			"implicit matrix section is the default grid",
			`{"kind":"matrix"}`,
			`{"kind":"matrix","matrix":{}}`,
		},
		{
			"implicit base seed resolves from the preset",
			`{"kind":"matrix","preset":"quick","matrix":{"scenarios":["highway-cruise"]}}`,
			`{"kind":"matrix","preset":"quick","matrix":{"scenarios":["highway-cruise"],"base_seed":1707}}`,
		},
		{
			"implicit num_shards is 1",
			`{"kind":"sweep","sweep":{"shard":0}}`,
			`{"kind":"sweep","sweep":{"shard":0,"num_shards":1}}`,
		},
		{
			"checkpoint path and resume are execution details",
			`{"kind":"sweep","sweep":{"shard":1,"num_shards":4}}`,
			`{"kind":"sweep","sweep":{"shard":1,"num_shards":4,"jsonl":"cells.jsonl","resume":true}}`,
		},
	}
	for _, tc := range cases {
		if a, b := hashOfJSON(t, tc.implied), hashOfJSON(t, tc.spelled); a != b {
			t.Errorf("%s: implied %s != spelled %s", tc.name, a, b)
		}
	}
	// Sanity-check the resolved implicit base seed really mirrors the
	// runner's derivation (preset seed + 1700).
	q, err := PresetByName("quick")
	if err != nil {
		t.Fatal(err)
	}
	if q.Seed+1700 != 1707 {
		t.Fatalf("quick implicit base seed is %d; update the spelled-out case", q.Seed+1700)
	}
}

func TestSpecHashSemanticDifferences(t *testing.T) {
	base := `{"kind":"matrix","preset":"quick","matrix":{"scenarios":["gentle-brake","hard-brake"],"attacks":["None","FGSM"],"duration":1,"dt":0.1,"base_seed":7}}`
	different := map[string]string{
		"changed axis value":  `{"kind":"matrix","preset":"quick","matrix":{"scenarios":["gentle-brake","highway-cruise"],"attacks":["None","FGSM"],"duration":1,"dt":0.1,"base_seed":7}}`,
		"reordered axis":      `{"kind":"matrix","preset":"quick","matrix":{"scenarios":["hard-brake","gentle-brake"],"attacks":["None","FGSM"],"duration":1,"dt":0.1,"base_seed":7}}`,
		"dropped axis value":  `{"kind":"matrix","preset":"quick","matrix":{"scenarios":["gentle-brake"],"attacks":["None","FGSM"],"duration":1,"dt":0.1,"base_seed":7}}`,
		"different duration":  `{"kind":"matrix","preset":"quick","matrix":{"scenarios":["gentle-brake","hard-brake"],"attacks":["None","FGSM"],"duration":2,"dt":0.1,"base_seed":7}}`,
		"different base seed": `{"kind":"matrix","preset":"quick","matrix":{"scenarios":["gentle-brake","hard-brake"],"attacks":["None","FGSM"],"duration":1,"dt":0.1,"base_seed":8}}`,
		"different kind":      `{"kind":"sweep","preset":"quick","matrix":{"scenarios":["gentle-brake","hard-brake"],"attacks":["None","FGSM"],"duration":1,"dt":0.1,"base_seed":7}}`,
		"different preset":    `{"kind":"matrix","preset":"paper","matrix":{"scenarios":["gentle-brake","hard-brake"],"attacks":["None","FGSM"],"duration":1,"dt":0.1,"base_seed":7}}`,
	}
	want := hashOfJSON(t, base)
	seen := map[string]string{base: "base"}
	for name, doc := range different {
		got := hashOfJSON(t, doc)
		if got == want {
			t.Errorf("%s: hash collides with base", name)
		}
		if prev, dup := seen[doc]; dup {
			t.Fatalf("test bug: %s duplicates %s", name, prev)
		}
		seen[doc] = name
	}
	// Shard selection is semantic: different shards compute different cells.
	s0 := hashOfJSON(t, `{"kind":"sweep","sweep":{"shard":0,"num_shards":4}}`)
	s1 := hashOfJSON(t, `{"kind":"sweep","sweep":{"shard":1,"num_shards":4}}`)
	if s0 == s1 {
		t.Error("different shards hash equal")
	}
}

func TestSpecHashRejectsInvalidSpecs(t *testing.T) {
	bad := []Spec{
		{Kind: "no-such-kind"},
		{Kind: KindMatrix, Preset: "no-such-preset"},
		{Kind: KindMatrix, Matrix: &MatrixSpec{Scenarios: []string{"no-such-scenario"}}},
		{Kind: KindTable1, Matrix: &MatrixSpec{}},
		{Kind: KindSweep, Sweep: &SweepSpec{Shard: 5, NumShards: 4}},
	}
	for i, s := range bad {
		if _, err := SpecHash(s); err == nil {
			t.Errorf("case %d: invalid spec hashed without error", i)
		}
	}
}

// jsonNames renders a name list as a JSON array literal.
func jsonNames(names []string) string {
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = `"` + n + `"`
	}
	return "[" + strings.Join(quoted, ",") + "]"
}

func TestMemoryCacheWriteOnceAndConcurrency(t *testing.T) {
	c := NewMemoryCache()
	c.Put("k", []byte("first"))
	c.Put("k", []byte("second"))
	if v, ok := c.Get("k"); !ok || string(v) != "first" {
		t.Fatalf("write-once violated: got %q ok=%v", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("missing key reported present")
	}

	// Put must copy: mutating the caller's buffer after Put must not
	// change the cached bytes.
	buf := []byte("payload")
	c.Put("copy", buf)
	buf[0] = 'X'
	if v, _ := c.Get("copy"); string(v) != "payload" {
		t.Fatalf("cache aliases the caller's buffer: %q", v)
	}

	// Concurrent writers and readers over a shared key set (-race).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys := []string{"a", "b", "c", "d"}
			for i := 0; i < 200; i++ {
				k := keys[(g+i)%len(keys)]
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && string(v) != k {
					t.Errorf("key %s holds %q", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 4+2 {
		t.Fatalf("cache holds %d entries, want 6", c.Len())
	}
}
