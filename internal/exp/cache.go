package exp

import "sync"

// ResultCache is the content-addressed result cache of the serving layer:
// keys are canonical spec hashes (SpecHash), values the serialized result
// payload of the run the spec addresses. Because equal hashes denote
// bit-identical runs, Get either misses or returns exactly the bytes a
// fresh compute would produce — a hit is zero-compute and provably
// correct. Implementations must be safe for concurrent use.
type ResultCache interface {
	// Get returns the payload stored under key. Callers must not mutate
	// the returned slice.
	Get(key string) ([]byte, bool)
	// Put stores the payload under key. Put copies val, so callers may
	// reuse their buffer. Entries are write-once by construction (the
	// same key can only ever map to the same bytes); a second Put under
	// an existing key keeps the first value.
	Put(key string, val []byte)
}

// MemoryCache is the in-process ResultCache: a mutex-guarded map. It
// lives as long as the daemon; restart invalidates (the artifact store,
// not this cache, is the cross-restart warm path).
type MemoryCache struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemoryCache returns an empty in-memory result cache.
func NewMemoryCache() *MemoryCache {
	return &MemoryCache{m: map[string][]byte{}}
}

// Get implements ResultCache.
func (c *MemoryCache) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.m[key]
	return v, ok
}

// Put implements ResultCache.
func (c *MemoryCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.m[key]; dup {
		return
	}
	c.m[key] = append([]byte(nil), val...)
}

// Len returns the number of cached results.
func (c *MemoryCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
