package exp

import (
	"fmt"
	"io"
	"sync"
)

// ProgressPrinter is the stock CLI observer: it renders the run's event
// stream as one line per finished cell plus run bracketing, serialised
// through an internal mutex so concurrent workers never interleave lines.
// It prints only — results are never touched, so subscribing it cannot
// change a report.
type ProgressPrinter struct {
	W io.Writer

	mu   sync.Mutex
	done int // cells this run actually executed (a sweep shard runs a subset)
}

// Observe implements Observer.
func (p *ProgressPrinter) Observe(ev Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch ev.Kind {
	case EventRunStart:
		p.done = 0
		fmt.Fprintf(p.W, "run: %d cells\n", ev.Total)
	case EventCellDone:
		p.done++
		status := "ok"
		if ev.Result != nil && ev.Result.Collision {
			status = "COLLISION"
		}
		minGap := 0.0
		if ev.Result != nil {
			minGap = ev.Result.MinGap
		}
		fmt.Fprintf(p.W, "[%d/%d] cell %d  %s / %s / %s  min-gap %.2f m  %s\n",
			ev.Done, ev.Total, ev.Cell.Index, ev.Cell.Scenario, ev.Cell.Attack, ev.Cell.Defense, minGap, status)
	case EventRunDone:
		if ev.Err != nil {
			fmt.Fprintf(p.W, "run stopped after %d cells: %v\n", p.done, ev.Err)
			return
		}
		// A sweep shard (or a resumed run) executes a subset of the
		// grid, so report what actually ran here, not the grid size.
		fmt.Fprintf(p.W, "run complete: %d of %d grid cells executed here\n", p.done, ev.Total)
	}
}
