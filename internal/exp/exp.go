package exp

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/eval"
)

// Observer re-exports: the exp package is the public face of the event
// stream the grid runners emit.
type (
	// Observer receives run progress events (concurrency-safe Observe).
	Observer = eval.Observer
	// ObserverFunc adapts a function to Observer.
	ObserverFunc = eval.ObserverFunc
	// Event is one progress notification.
	Event = eval.Event
	// EventKind discriminates events.
	EventKind = eval.EventKind
)

// Observer event kinds.
const (
	EventRunStart  = eval.EventRunStart
	EventCellStart = eval.EventCellStart
	EventCellDone  = eval.EventCellDone
	EventLog       = eval.EventLog
	EventRunDone   = eval.EventRunDone
)

// MultiObserver fans events out to every non-nil observer.
func MultiObserver(obs ...Observer) Observer { return eval.MultiObserver(obs...) }

// config collects the functional options of New.
type config struct {
	preset    eval.Preset
	presetSet bool
	env       *eval.Env
	logf      func(format string, args ...any)
	workers   int
	observers []Observer
	store     *eval.ModelStore
	err       error // first option error, surfaced by New
}

// Option configures Experiment construction.
type Option func(*config)

// WithPreset selects the experiment preset (dataset sizes, training
// schedules, budgets). Default: eval.Quick().
func WithPreset(p eval.Preset) Option {
	return func(c *config) { c.preset = p; c.presetSet = true }
}

// WithPresetName selects a named preset ("quick" or "paper"); unknown
// names surface as an error from New.
func WithPresetName(name string) Option {
	return func(c *config) {
		p, err := PresetByName(name)
		if err != nil {
			if c.err == nil {
				c.err = err
			}
			return
		}
		c.preset = p
		c.presetSet = true
	}
}

// WithEnv adopts an already-built environment instead of training a new
// one — an Experiment view over existing victims (tests, notebooks,
// multi-spec sessions share one expensive Env). The environment is
// shared, not copied: combining WithEnv with WithLogger or WithWorkers
// reconfigures the adopted Env in place, visibly to every other
// Experiment built over it.
func WithEnv(e *eval.Env) Option {
	return func(c *config) { c.env = e }
}

// WithLogger installs the progress logger before anything trains, so
// dataset generation and victim training log through it too. Library code
// logs nowhere else.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(c *config) { c.logf = logf }
}

// WithWorkers caps the worker pool of every parallel run (0 = GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithObserver subscribes observers to every run of the Experiment; they
// receive the run/cell event stream alongside any per-spec observer.
func WithObserver(obs ...Observer) Option {
	return func(c *config) { c.observers = append(c.observers, obs...) }
}

// WithArtifacts backs environment construction with a trained-model
// artifact store: victim weights cached under the preset key are loaded
// instead of trained (bit-identical, training is deterministic), and a
// cold construction stores what it trains. Ignored when WithEnv adopts an
// already-built environment.
func WithArtifacts(store *eval.ModelStore) Option {
	return func(c *config) { c.store = store }
}

// WithArtifactDir is WithArtifacts over a directory path, creating the
// store (and directory) on demand; errors surface from New.
func WithArtifactDir(dir string) Option {
	return func(c *config) {
		store, err := eval.NewModelStore(dir)
		if err != nil {
			if c.err == nil {
				c.err = err
			}
			return
		}
		c.store = store
	}
}

// Experiment is the v2 core: a trained environment plus the registries,
// running serializable Specs under a context with observers streaming
// progress. Every legacy entrypoint — the table runners, the scenario
// matrix, the sharded sweep — routes through Run.
type Experiment struct {
	env *eval.Env
	obs Observer
}

// New builds an Experiment: it resolves options, then generates datasets
// and trains the victim models under the preset (unless WithEnv adopted an
// existing environment). Construction respects ctx — a cancelled context
// aborts between the expensive stages.
func New(ctx context.Context, opts ...Option) (*Experiment, error) {
	c := config{preset: eval.Quick()}
	for _, opt := range opts {
		opt(&c)
	}
	if c.err != nil {
		return nil, c.err
	}
	env := c.env
	if env == nil {
		var err error
		env, err = eval.NewEnvCached(ctx, c.preset, c.logf, c.store)
		if err != nil {
			return nil, err
		}
	} else {
		if c.presetSet && env.Preset.Name != c.preset.Name {
			return nil, fmt.Errorf("exp: WithEnv preset %q conflicts with WithPreset %q", env.Preset.Name, c.preset.Name)
		}
		if c.logf != nil {
			env.Logf = c.logf
		}
	}
	if c.workers != 0 {
		env.Workers = c.workers
	}
	return &Experiment{env: env, obs: MultiObserver(c.observers...)}, nil
}

// Env exposes the underlying environment (datasets, victims, budgets).
func (x *Experiment) Env() *eval.Env { return x.env }

// Result is the outcome of one spec run: the formatted report plus the
// typed payload of whichever experiment the spec addressed.
type Result struct {
	Spec Spec
	// Text is the experiment's formatted report (the paper-shaped table,
	// the matrix grid, the shard summary).
	Text string

	Table1   *eval.TableI
	Table2   *eval.TableII
	Table3   *eval.TableIII
	Table4   *eval.TableIV
	Table5   *eval.TableV
	Fig2     *eval.Fig2
	Pipeline []eval.PipelineRow
	Matrix   *eval.MatrixReport
	Sweep    *eval.SweepReport
}

// Run executes the spec against this environment. Grid kinds (matrix,
// sweep) stream cell events to the Experiment's observers, honour ctx
// cancellation promptly, and are bit-identical to the legacy
// entrypoints. Table kinds check ctx only at entry: once a table starts
// it runs to completion (their runners predate the context plumbing —
// fine-grained table cancellation is future work). The spec's preset
// must match the environment's (an empty spec preset matches any).
func (x *Experiment) Run(ctx context.Context, s Spec) (*Result, error) {
	return x.RunObserved(ctx, s, nil)
}

// RunObserved is Run with a per-run observer subscribed alongside the
// Experiment's own: the serving layer hands each request its own event
// sink this way. Grid kinds stream the runner's native event sequence;
// non-grid kinds (tables, fig2, pipeline, ablations) have no cell
// granularity, so RunObserved brackets them with a synthetic
// run-start/run-done pair (Total 1) — every observed run therefore emits
// a well-formed run-start … run-done sequence regardless of kind.
func (x *Experiment) RunObserved(ctx context.Context, s Spec, obs Observer) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Preset != "" && s.Preset != x.env.Preset.Name {
		return nil, fmt.Errorf("exp: spec preset %q does not address this environment (preset %q)", s.Preset, x.env.Preset.Name)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	runObs := MultiObserver(x.obs, obs)

	if s.Kind != KindMatrix && s.Kind != KindSweep {
		if runObs != nil {
			runObs.Observe(Event{Kind: EventRunStart, Total: 1})
		}
		res, err := x.runTable(s)
		if runObs != nil {
			runObs.Observe(Event{Kind: EventRunDone, Total: 1, Err: err})
		}
		return res, err
	}

	res := &Result{Spec: s}
	switch s.Kind {
	case KindMatrix:
		cfg, err := s.matrixConfig()
		if err != nil {
			return nil, err
		}
		cfg.Observer = MultiObserver(runObs, cfg.Observer)
		rep, err := x.env.RunMatrixCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		res.Matrix, res.Text = &rep, rep.Format()
	case KindSweep:
		cfg, err := s.sweepConfig()
		if err != nil {
			return nil, err
		}
		cfg.Matrix.Observer = MultiObserver(runObs, cfg.Matrix.Observer)
		rep, err := x.env.RunSweepCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		res.Sweep = &rep
		m := rep.Matrix()
		res.Matrix, res.Text = &m, m.Format()
	}
	return res, nil
}

// runTable executes the non-grid spec kinds (validated by the caller).
func (x *Experiment) runTable(s Spec) (*Result, error) {
	res := &Result{Spec: s}
	switch s.Kind {
	case KindTable1:
		t := x.env.RunTableI()
		res.Table1, res.Text = &t, t.Format()
	case KindTable2:
		t := x.env.RunTableII()
		res.Table2, res.Text = &t, t.Format()
	case KindTable3:
		t := x.env.RunTableIII()
		res.Table3, res.Text = &t, t.Format()
	case KindTable4:
		t := x.env.RunTableIV()
		res.Table4, res.Text = &t, t.Format()
	case KindTable5:
		t := x.env.RunTableV()
		res.Table5, res.Text = &t, t.Format()
	case KindFig2:
		f := x.env.RunFig2()
		res.Fig2, res.Text = &f, f.Format()
	case KindPipeline:
		rows := eval.PipelineScenarios(x.env)
		res.Pipeline, res.Text = rows, formatPipeline(rows)
	case KindAblations:
		res.Text = formatAblations(x.env)
	default:
		return nil, fmt.Errorf("exp: unhandled spec kind %q", s.Kind)
	}
	return res, nil
}

// Merge joins shard JSONL files against the spec's grid identity under
// this environment's preset (supporting custom presets, unlike the
// standalone MergeSpec).
func (x *Experiment) Merge(s Spec, paths []string) (eval.MatrixReport, error) {
	if s.Kind != KindMatrix && s.Kind != KindSweep {
		return eval.MatrixReport{}, fmt.Errorf("exp: merge needs a matrix or sweep spec, got kind %q", s.Kind)
	}
	if err := s.Validate(); err != nil {
		return eval.MatrixReport{}, err
	}
	if s.Preset != "" && s.Preset != x.env.Preset.Name {
		return eval.MatrixReport{}, fmt.Errorf("exp: spec preset %q does not address this environment (preset %q)", s.Preset, x.env.Preset.Name)
	}
	cfg, err := s.matrixConfig()
	if err != nil {
		return eval.MatrixReport{}, err
	}
	ids := eval.CellIDs(cfg, x.env.Preset.Seed)
	return eval.MergeSweeps(ids, x.env.Preset.Name, cfg.Duration, cfg.DT, paths)
}

// MergeSpec joins the JSONL shard files of a distributed sweep back into
// the combined grid report, verifying coverage and per-cell consistency
// against the spec's grid identity. It needs no trained environment —
// merge runs on any machine holding the shard files.
func MergeSpec(s Spec, paths []string) (eval.MatrixReport, error) {
	ids, err := s.CellIDs()
	if err != nil {
		return eval.MatrixReport{}, err
	}
	p, err := PresetByName(s.Preset)
	if err != nil {
		return eval.MatrixReport{}, err
	}
	var duration, dt float64
	if s.Matrix != nil {
		duration, dt = s.Matrix.Duration, s.Matrix.DT
	}
	return eval.MergeSweeps(ids, p.Name, duration, dt, paths)
}

// formatPipeline renders the closed-loop demo rows (clean / attacked /
// defended), the safety consequence the Table I errors imply.
func formatPipeline(rows []eval.PipelineRow) string {
	var b strings.Builder
	b.WriteString("CLOSED-LOOP ACC (lead brakes at t=4s for 2s)\n")
	b.WriteString(fmt.Sprintf("%-24s %10s %10s %10s\n", "Configuration", "MinGap(m)", "MinTTC(s)", "Collision"))
	for _, row := range rows {
		b.WriteString(fmt.Sprintf("%-24s %10.2f %10.2f %10v\n", row.Name, row.Result.MinGap, cappedTTC(row.Result.MinTTC), row.Result.Collision))
	}
	return b.String()
}

func cappedTTC(v float64) float64 {
	if v > 999 {
		return 999
	}
	return v
}

// formatAblations exercises the four design-choice ablations.
func formatAblations(env *eval.Env) string {
	var b strings.Builder
	b.WriteString("ABLATIONS\n")
	a, p := env.APGDvsPGD()
	b.WriteString(fmt.Sprintf("Auto-PGD vs plain PGD, near-range induced error: %.2f m vs %.2f m\n", a, p))
	w, c := env.CAPWarmVsCold()
	b.WriteString(fmt.Sprintf("CAP warm-start vs cold-start, mean induced error: %.2f m vs %.2f m\n", w, c))
	eot := env.RP2EOTSweep([]int{1, 4})
	b.WriteString(fmt.Sprintf("RP2 EOT samples {1,4} -> post-attack mAP50: %.2f%%, %.2f%%\n", 100*eot[0], 100*eot[1]))
	steps := env.DiffPIRStepSweep([]int{4, 12})
	b.WriteString(fmt.Sprintf("DiffPIR steps {4,12} -> restored mAP50: %.2f%%, %.2f%%\n", 100*steps[0], 100*steps[1]))
	return b.String()
}
