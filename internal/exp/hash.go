package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/eval"
)

// This file defines the canonical spec encoding and its content hash: the
// cache key of the serving layer. Two specs that address the same run —
// regardless of JSON field order, whitespace, omitted-vs-explicit
// defaults, or version shorthand — canonicalize to the same bytes and
// therefore the same SHA-256; any semantic difference (one axis value, a
// seed, a shard) changes the hash. Combined with the Spec determinism
// guarantee (equal specs denote bit-identical results), a cache hit on
// the canonical hash is provably the same answer.

// canonicalSpec is the normal form hashed by SpecHash. Every field is
// explicit (no omitempty on resolved fields), so a default written out by
// hand and a default left implicit encode identically. encoding/json
// marshals struct fields in declaration order, which makes the encoding
// deterministic.
type canonicalSpec struct {
	Version int              `json:"version"`
	Kind    string           `json:"kind"`
	Preset  string           `json:"preset"`
	Matrix  *canonicalMatrix `json:"matrix,omitempty"`
	Shard   *canonicalShard  `json:"shard,omitempty"`
}

// canonicalMatrix is the grid section with its axes and seed resolved:
// empty axes are replaced by the default axis names and a zero base seed
// by the preset-derived default, so "the default grid, spelled out"
// hashes equal to "the default grid, implied". Axis order is preserved —
// cell seeds derive from grid position, so reordering an axis is a
// semantically different run and must hash differently.
type canonicalMatrix struct {
	Scenarios []string `json:"scenarios"`
	Attacks   []string `json:"attacks"`
	Defenses  []string `json:"defenses"`
	Duration  float64  `json:"duration"`
	DT        float64  `json:"dt"`
	BaseSeed  int64    `json:"base_seed"`
}

// canonicalShard is the sweep section reduced to what selects cells.
// JSONL path and resume flag are execution details — they never change
// the cells a shard computes — so they are excluded from the hash.
type canonicalShard struct {
	Shard     int `json:"shard"`
	NumShards int `json:"num_shards"`
}

// CanonicalSpec returns the canonical JSON encoding of a valid spec: the
// semantic content with every syntactic degree of freedom removed. Specs
// that denote the same run encode to the same bytes.
func CanonicalSpec(s Spec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p, err := PresetByName(s.Preset)
	if err != nil {
		return nil, err
	}
	c := canonicalSpec{
		Version: SpecVersion,
		Kind:    s.Kind,
		Preset:  p.Name,
	}
	if s.Kind == KindMatrix || s.Kind == KindSweep {
		c.Matrix = canonicalizeMatrix(s.Matrix, p)
	}
	if s.Kind == KindSweep {
		sh := canonicalShard{NumShards: 1}
		if s.Sweep != nil {
			sh.Shard = s.Sweep.Shard
			if s.Sweep.NumShards > 0 {
				sh.NumShards = s.Sweep.NumShards
			}
		}
		c.Shard = &sh
	}
	buf, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("exp: canonicalize spec: %w", err)
	}
	return buf, nil
}

// canonicalizeMatrix resolves a (possibly nil) matrix section against the
// registry defaults and the preset seed.
func canonicalizeMatrix(m *MatrixSpec, p eval.Preset) *canonicalMatrix {
	c := &canonicalMatrix{}
	if m != nil {
		c.Scenarios = append([]string(nil), m.Scenarios...)
		c.Attacks = append([]string(nil), m.Attacks...)
		c.Defenses = append([]string(nil), m.Defenses...)
		c.Duration, c.DT, c.BaseSeed = m.Duration, m.DT, m.BaseSeed
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = defaultScenarioNames()
	}
	if len(c.Attacks) == 0 {
		c.Attacks = DefaultMatrixAttacks()
	}
	if len(c.Defenses) == 0 {
		c.Defenses = DefaultMatrixDefenses()
	}
	if c.BaseSeed == 0 {
		// Mirror eval.matrixBaseSeed: the implicit base seed is derived
		// from the preset, so it resolves to a concrete value here.
		c.BaseSeed = p.Seed + 1700
	}
	return c
}

// defaultScenarioNames names the scenario axis an empty spec selects: the
// built-in pipeline registry, exactly as eval's axis resolution does.
func defaultScenarioNames() []string {
	scs := eval.DefaultMatrixScenarios()
	names := make([]string, len(scs))
	for i, sc := range scs {
		names[i] = sc.Name
	}
	return names
}

// SpecHash returns the content address of a valid spec: the hex SHA-256
// of its canonical encoding. Equal hashes imply the same run and — by the
// Spec determinism guarantee — bit-identical results, which is what makes
// a result cache keyed by this hash provably correct.
func SpecHash(s Spec) (string, error) {
	buf, err := CanonicalSpec(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:]), nil
}
