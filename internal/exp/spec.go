package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/eval"
)

// SpecVersion is the current Spec schema version.
const SpecVersion = 1

// Spec kinds: the experiments a spec can address.
const (
	KindTable1    = "table1"
	KindTable2    = "table2"
	KindTable3    = "table3"
	KindTable4    = "table4"
	KindTable5    = "table5"
	KindFig2      = "fig2"
	KindPipeline  = "pipeline"
	KindAblations = "ablations"
	KindMatrix    = "matrix"
	KindSweep     = "sweep"
)

// specKinds lists every valid kind (error-message order).
var specKinds = []string{
	KindTable1, KindTable2, KindTable3, KindTable4, KindTable5,
	KindFig2, KindPipeline, KindAblations, KindMatrix, KindSweep,
}

// Spec is the serializable address of one run: any experiment of the
// harness — a paper table, the scenario matrix, one shard of a sweep — as
// a JSON-round-trippable value validated against the registries. Equal
// specs denote bit-identical runs: every seed derives from the preset and
// the grid indices, never from the machine executing it.
type Spec struct {
	// Version is the schema version; zero means SpecVersion.
	Version int `json:"version,omitempty"`
	// Kind selects the experiment: table1..table5, fig2, pipeline,
	// ablations, matrix or sweep.
	Kind string `json:"kind"`
	// Preset names the experiment preset ("quick" or "paper"); empty
	// means quick. An Experiment built over a custom preset accepts
	// specs whose Preset is empty or equal to that preset's name.
	Preset string `json:"preset,omitempty"`

	// Matrix configures the grid for matrix and sweep kinds; nil selects
	// the full default grid.
	Matrix *MatrixSpec `json:"matrix,omitempty"`
	// Sweep configures sharding/checkpointing; sweep kind only.
	Sweep *SweepSpec `json:"sweep,omitempty"`
}

// MatrixSpec declares a scenario × attack × defense grid by registry
// names. Empty axes select the defaults (full scenario registry, default
// attack/defense columns).
type MatrixSpec struct {
	Scenarios []string `json:"scenarios,omitempty"`
	Attacks   []string `json:"attacks,omitempty"`
	Defenses  []string `json:"defenses,omitempty"`

	Duration float64 `json:"duration,omitempty"` // seconds; 0 = scenario default
	DT       float64 `json:"dt,omitempty"`       // control period; 0 = default
	BaseSeed int64   `json:"base_seed,omitempty"`
}

// SweepSpec declares one shard of a checkpointed sweep.
type SweepSpec struct {
	Shard     int    `json:"shard"`
	NumShards int    `json:"num_shards,omitempty"` // 0 means 1
	JSONL     string `json:"jsonl,omitempty"`
	Resume    bool   `json:"resume,omitempty"`
}

// ParseSpec decodes and validates a JSON spec. Unknown fields and
// trailing content after the spec object are rejected so a typo (or a
// concatenated second document) addresses nothing silently.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("exp: parse spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("exp: parse spec: trailing content after the spec object")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// JSON encodes the spec (indented, stable field order).
func (s Spec) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// PresetByName resolves a spec preset name; empty selects quick.
func PresetByName(name string) (eval.Preset, error) {
	switch name {
	case "", "quick":
		return eval.Quick(), nil
	case "paper":
		return eval.Paper(), nil
	default:
		return eval.Preset{}, fmt.Errorf("exp: unknown preset %q (want quick or paper)", name)
	}
}

// Validate checks the spec against the schema and the registries: kind
// and preset must be known, every named scenario/attack/defense must be
// registered (attacks runtime-capable, since the grid is the closed-loop
// protocol), and shard/duration values must be in range.
func (s Spec) Validate() error {
	if s.Version != 0 && s.Version != SpecVersion {
		return fmt.Errorf("exp: spec version %d unsupported (want %d)", s.Version, SpecVersion)
	}
	valid := false
	for _, k := range specKinds {
		if s.Kind == k {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("exp: unknown spec kind %q (want one of %s)", s.Kind, strings.Join(specKinds, ", "))
	}
	if _, err := PresetByName(s.Preset); err != nil {
		return err
	}

	gridKind := s.Kind == KindMatrix || s.Kind == KindSweep
	if s.Matrix != nil && !gridKind {
		return fmt.Errorf("exp: spec kind %q takes no matrix section", s.Kind)
	}
	if s.Sweep != nil && s.Kind != KindSweep {
		return fmt.Errorf("exp: spec kind %q takes no sweep section", s.Kind)
	}

	if m := s.Matrix; m != nil {
		if m.Duration < 0 || m.DT < 0 {
			return fmt.Errorf("exp: matrix duration/dt must be non-negative (got %v/%v)", m.Duration, m.DT)
		}
		for _, name := range m.Scenarios {
			if _, ok := LookupScenario(name); !ok {
				return fmt.Errorf("exp: unknown scenario %q (registry: %s)", name, strings.Join(Scenarios(), ", "))
			}
		}
		for _, name := range m.Attacks {
			d, ok := LookupAttack(name)
			if !ok {
				return fmt.Errorf("exp: unknown attack %q (registry: %s)", name, strings.Join(sortedClone(Attacks()), ", "))
			}
			if !d.RuntimeCapable() {
				return fmt.Errorf("exp: attack %q has no closed-loop runtime form; it cannot sit on the matrix axis", name)
			}
		}
		for _, name := range m.Defenses {
			if _, ok := LookupDefense(name); !ok {
				return fmt.Errorf("exp: unknown defense %q (registry: %s)", name, strings.Join(sortedClone(Defenses()), ", "))
			}
		}
	}
	if sw := s.Sweep; sw != nil {
		n := sw.NumShards
		if n == 0 {
			n = 1
		}
		if n < 1 || sw.Shard < 0 || sw.Shard >= n {
			return fmt.Errorf("exp: sweep shard %d/%d out of range", sw.Shard, n)
		}
	}
	return nil
}

// matrixConfig resolves the spec's named axes into the executable grid
// config (factories attached). The spec must have validated.
func (s Spec) matrixConfig() (eval.MatrixConfig, error) {
	var cfg eval.MatrixConfig
	m := s.Matrix
	if m == nil {
		return cfg, nil
	}
	cfg.Duration, cfg.DT, cfg.BaseSeed = m.Duration, m.DT, m.BaseSeed
	for _, name := range m.Scenarios {
		sc, ok := LookupScenario(name)
		if !ok {
			return cfg, fmt.Errorf("exp: unknown scenario %q", name)
		}
		cfg.Scenarios = append(cfg.Scenarios, sc)
	}
	for _, name := range m.Attacks {
		d, ok := LookupAttack(name)
		if !ok || !d.RuntimeCapable() {
			return cfg, fmt.Errorf("exp: attack %q not usable on the matrix axis", name)
		}
		cfg.Attacks = append(cfg.Attacks, eval.AttackSpec{Name: d.Name, New: d.Runtime})
	}
	for _, name := range m.Defenses {
		d, ok := LookupDefense(name)
		if !ok {
			return cfg, fmt.Errorf("exp: unknown defense %q", name)
		}
		cfg.Defenses = append(cfg.Defenses, eval.DefenseSpec{Name: d.Name, New: d.New})
	}
	return cfg, nil
}

// sweepConfig resolves the spec into the executable sweep shard config.
func (s Spec) sweepConfig() (eval.SweepConfig, error) {
	mcfg, err := s.matrixConfig()
	if err != nil {
		return eval.SweepConfig{}, err
	}
	cfg := eval.SweepConfig{Matrix: mcfg}
	if sw := s.Sweep; sw != nil {
		cfg.Shard, cfg.NumShards = sw.Shard, sw.NumShards
		cfg.JSONL, cfg.Resume = sw.JSONL, sw.Resume
	}
	return cfg, nil
}

// CellIDs expands the spec's grid identity — per-cell index, seed and axis
// names — without training anything: the verification key for sweep-merge
// and for cross-machine grid addressing. Matrix and sweep kinds only.
func (s Spec) CellIDs() ([]eval.CellID, error) {
	if s.Kind != KindMatrix && s.Kind != KindSweep {
		return nil, fmt.Errorf("exp: spec kind %q has no grid", s.Kind)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg, err := s.matrixConfig()
	if err != nil {
		return nil, err
	}
	p, err := PresetByName(s.Preset)
	if err != nil {
		return nil, err
	}
	return eval.CellIDs(cfg, p.Seed), nil
}
