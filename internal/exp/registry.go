// Package exp is the v2 experiment core: one registry-driven,
// spec-addressable, streaming runner behind every entrypoint of the
// harness. The paper's protocol — the same attacks and defense families
// measured on the same victims — is exposed as data, not methods:
//
//   - string-keyed registries name every attack, defense and scenario
//     (RegisterAttack / RegisterDefense / RegisterScenario make a new axis
//     a registration, not a code change);
//   - a serializable Spec addresses any run — dataset tables, the
//     scenario matrix, one shard of a sweep — and validates against the
//     registries before anything trains;
//   - Experiment (New with functional options) owns the trained
//     environment and runs specs under a context.Context with Observer
//     sinks streaming per-cell progress;
//   - MergeSpec joins the JSONL shards of a distributed sweep back into
//     the one grid the spec describes.
package exp

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/defense"
	"repro/internal/eval"
	"repro/internal/pipeline"
	"repro/internal/regress"
)

// AttackDef registers one attack in the harness. The capability fields
// mirror the two ways the paper measures an attack: dataset attacks
// (Detection/Regression — the table experiments) and closed-loop runtime
// attacks (Runtime — a matrix/sweep axis column).
type AttackDef struct {
	Name        string
	Description string

	// Detection/Regression mark the dataset tasks the attack applies to
	// (AttackSignSet / AttackDriveSet in the table protocol).
	Detection  bool
	Regression bool

	// Runtime builds a fresh closed-loop attacker for one grid cell; the
	// factory runs once per cell, so stateful attackers (CAP's inherited
	// patch) stay confined to their cell. nil for the clean baseline and
	// for dataset-only attacks.
	Runtime func(e *eval.Env, reg *regress.Regressor, seed int64) pipeline.Attacker
}

// RuntimeCapable reports whether the attack can sit on the matrix axis:
// it either builds a runtime attacker or is the clean baseline.
func (d AttackDef) RuntimeCapable() bool { return d.Runtime != nil || d.Name == "None" }

// DefenseDef registers one input-level defense. New builds a fresh
// preprocessor per grid cell (stateful defenses and model-backed defenses
// must not share instances across concurrent cells); nil marks the
// undefended baseline.
type DefenseDef struct {
	Name        string
	Description string

	New func(e *eval.Env, seed int64) defense.Preprocessor
}

// registry is a string-keyed, insertion-ordered, concurrency-safe table.
type registry[T any] struct {
	mu    sync.RWMutex
	kind  string
	names []string
	byKey map[string]T
}

func newRegistry[T any](kind string) *registry[T] {
	return &registry[T]{kind: kind, byKey: map[string]T{}}
}

func (r *registry[T]) register(name string, v T) error {
	if name == "" {
		return fmt.Errorf("exp: %s registration needs a name", r.kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byKey[name]; dup {
		return fmt.Errorf("exp: %s %q already registered", r.kind, name)
	}
	r.byKey[name] = v
	r.names = append(r.names, name)
	return nil
}

func (r *registry[T]) lookup(name string) (T, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.byKey[name]
	return v, ok
}

func (r *registry[T]) list() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

var (
	attackReg   = newRegistry[AttackDef]("attack")
	defenseReg  = newRegistry[DefenseDef]("defense")
	scenarioReg = newRegistry[pipeline.Scenario]("scenario")
)

// RegisterAttack adds an attack to the registry. Names are unique across
// the built-ins and every prior registration.
func RegisterAttack(d AttackDef) error { return attackReg.register(d.Name, d) }

// MustRegisterAttack is RegisterAttack, panicking on error (init-time use).
func MustRegisterAttack(d AttackDef) {
	if err := RegisterAttack(d); err != nil {
		panic(err)
	}
}

// LookupAttack returns the registered attack with the given name.
func LookupAttack(name string) (AttackDef, bool) { return attackReg.lookup(name) }

// Attacks lists every registered attack name in registration order
// (built-ins first).
func Attacks() []string { return attackReg.list() }

// RegisterDefense adds a defense to the registry.
func RegisterDefense(d DefenseDef) error { return defenseReg.register(d.Name, d) }

// MustRegisterDefense is RegisterDefense, panicking on error.
func MustRegisterDefense(d DefenseDef) {
	if err := RegisterDefense(d); err != nil {
		panic(err)
	}
}

// LookupDefense returns the registered defense with the given name.
func LookupDefense(name string) (DefenseDef, bool) { return defenseReg.lookup(name) }

// Defenses lists every registered defense name in registration order.
func Defenses() []string { return defenseReg.list() }

// RegisterScenario adds a closed-loop scenario to the registry, alongside
// the built-in pipeline registry.
func RegisterScenario(s pipeline.Scenario) error {
	if _, builtin := pipeline.FindScenario(s.Name); builtin {
		return fmt.Errorf("exp: scenario %q already registered", s.Name)
	}
	return scenarioReg.register(s.Name, s)
}

// MustRegisterScenario is RegisterScenario, panicking on error.
func MustRegisterScenario(s pipeline.Scenario) {
	if err := RegisterScenario(s); err != nil {
		panic(err)
	}
}

// LookupScenario resolves a scenario name against the built-in pipeline
// registry first, then exp registrations.
func LookupScenario(name string) (pipeline.Scenario, bool) {
	if s, ok := pipeline.FindScenario(name); ok {
		return s, true
	}
	return scenarioReg.lookup(name)
}

// Scenarios lists every scenario name: built-ins in registry order, then
// exp registrations.
func Scenarios() []string {
	var names []string
	for _, s := range pipeline.Scenarios() {
		names = append(names, s.Name)
	}
	return append(names, scenarioReg.list()...)
}

// DefaultMatrixAttacks / DefaultMatrixDefenses name the default grid axes
// — the columns a spec gets when it lists none. They are pinned to the
// pre-registry defaults so default grids stay bit-identical.
func DefaultMatrixAttacks() []string { return namesOfAttacks(eval.DefaultMatrixAttacks()) }

// DefaultMatrixDefenses names the default defense axis.
func DefaultMatrixDefenses() []string { return namesOfDefenses(eval.DefaultMatrixDefenses()) }

func namesOfAttacks(specs []eval.AttackSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

func namesOfDefenses(specs []eval.DefenseSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// sortedClone returns a sorted copy for stable error messages.
func sortedClone(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}

func init() {
	// The six attacks of the paper's protocol. Runtime factories make
	// CAP, FGSM and — new with the registry — Auto-PGD available as
	// closed-loop matrix axes; the Detection/Regression capabilities are
	// the dataset-attack protocol of Tables I–V and Fig. 2.
	MustRegisterAttack(AttackDef{
		Name: "None", Description: "clean baseline",
		Detection: true, Regression: true,
	})
	MustRegisterAttack(AttackDef{
		Name: "Gaussian", Description: "unoptimised Gaussian noise",
		Detection: true, Regression: true,
	})
	MustRegisterAttack(AttackDef{
		Name: "FGSM", Description: "single-step fast gradient sign attack",
		Detection: true, Regression: true, Runtime: eval.RuntimeFGSM,
	})
	MustRegisterAttack(AttackDef{
		Name: "Auto-PGD", Description: "adaptive iterative gradient attack (closed-loop: a few steps per frame)",
		Detection: true, Regression: true, Runtime: eval.RuntimeAutoPGD,
	})
	MustRegisterAttack(AttackDef{
		Name: "SimBA", Description: "query-based black-box attack",
		Detection: true,
	})
	MustRegisterAttack(AttackDef{
		Name: "RP2", Description: "physical sign-patch attack",
		Detection: true,
	})
	MustRegisterAttack(AttackDef{
		Name: "CAP-Attack", Description: "runtime contextually adversarial patch with warm-started inheritance",
		Regression: true, Runtime: eval.RuntimeCAP,
	})

	// The preprocessing defense family, all addressable as grid axes.
	MustRegisterDefense(DefenseDef{Name: "None", Description: "undefended baseline"})
	MustRegisterDefense(DefenseDef{
		Name: "Median Blurring", Description: "3x3 median filter",
		New: eval.NewMedianBlurDefense,
	})
	MustRegisterDefense(DefenseDef{
		Name: "DiffPIR", Description: "diffusion restoration through the trained DDPM prior",
		New: eval.NewDiffPIRDefense,
	})
	MustRegisterDefense(DefenseDef{
		Name: "Randomization", Description: "random resize-and-pad",
		New: func(e *eval.Env, seed int64) defense.Preprocessor {
			return defense.NewRandomization(seed)
		},
	})
	MustRegisterDefense(DefenseDef{
		Name: "Bit Depth", Description: "bit-depth reduction",
		New: func(e *eval.Env, seed int64) defense.Preprocessor {
			return defense.NewBitDepth()
		},
	})
}
