package imaging

import (
	"repro/internal/xrand"
)

// ResizeBilinear returns the image resampled to (h, w) with bilinear
// interpolation; the standard resizer used by the randomization defense and
// by RP2's expectation-over-transforms sampling.
func (im *Image) ResizeBilinear(h, w int) *Image {
	return im.ResizeBilinearInto(NewImage(im.C, h, w))
}

// ResizeBilinearInto resamples im into dst (whose geometry defines the
// target size; same channel count, no aliasing) and returns dst.
func (im *Image) ResizeBilinearInto(dst *Image) *Image {
	if dst.C != im.C {
		panic("imaging: ResizeBilinearInto channel mismatch")
	}
	out, h, w := dst, dst.H, dst.W
	if h == im.H && w == im.W {
		copy(out.Pix, im.Pix)
		return out
	}
	sy := float64(im.H) / float64(h)
	sx := float64(im.W) / float64(w)
	for c := 0; c < im.C; c++ {
		for y := 0; y < h; y++ {
			fy := (float64(y)+0.5)*sy - 0.5
			y0 := int(fy)
			if fy < 0 {
				y0, fy = 0, 0
			}
			y1 := y0 + 1
			if y1 >= im.H {
				y1 = im.H - 1
			}
			wy := float32(fy - float64(y0))
			for x := 0; x < w; x++ {
				fx := (float64(x)+0.5)*sx - 0.5
				x0 := int(fx)
				if fx < 0 {
					x0, fx = 0, 0
				}
				x1 := x0 + 1
				if x1 >= im.W {
					x1 = im.W - 1
				}
				wx := float32(fx - float64(x0))
				v00 := im.At(c, y0, x0)
				v01 := im.At(c, y0, x1)
				v10 := im.At(c, y1, x0)
				v11 := im.At(c, y1, x1)
				top := v00*(1-wx) + v01*wx
				bot := v10*(1-wx) + v11*wx
				out.Set(c, y, x, top*(1-wy)+bot*wy)
			}
		}
	}
	return out
}

// PadTo embeds the image in a (h, w) canvas filled with fill, placing the
// original at offset (oy, ox). Pixels falling outside are dropped.
func (im *Image) PadTo(h, w, oy, ox int, fill Color) *Image {
	return im.PadToInto(NewImage(im.C, h, w), oy, ox, fill)
}

// PadToInto is PadTo writing into dst (whose geometry defines the canvas;
// same channel count, no aliasing) and returns dst.
func (im *Image) PadToInto(dst *Image, oy, ox int, fill Color) *Image {
	if dst.C != im.C {
		panic("imaging: PadToInto channel mismatch")
	}
	out, h, w := dst, dst.H, dst.W
	out.Fill(fill)
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			ty := y + oy
			if ty < 0 || ty >= h {
				continue
			}
			for x := 0; x < im.W; x++ {
				tx := x + ox
				if tx < 0 || tx >= w {
					continue
				}
				out.Set(c, ty, tx, im.At(c, y, x))
			}
		}
	}
	return out
}

// FlipH returns the image mirrored left-right.
func (im *Image) FlipH() *Image {
	out := NewImage(im.C, im.H, im.W)
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				out.Set(c, y, x, im.At(c, y, im.W-1-x))
			}
		}
	}
	return out
}

// AdjustBrightness multiplies all pixels by s and clamps to [0,1].
func (im *Image) AdjustBrightness(s float32) *Image {
	out := im.Clone()
	for i, v := range out.Pix {
		x := v * s
		if x > 1 {
			x = 1
		} else if x < 0 {
			x = 0
		}
		out.Pix[i] = x
	}
	return out
}

// AddGaussianNoise adds N(0, std²) noise to every pixel (no clamping; the
// caller decides whether the result is a sensor image or a raw tensor).
func (im *Image) AddGaussianNoise(rng *xrand.RNG, std float64) *Image {
	out := im.Clone()
	for i := range out.Pix {
		out.Pix[i] += float32(rng.Normal(0, std))
	}
	return out
}

// Translate shifts the image by (dy, dx) pixels, filling vacated space
// with the edge pixel (clamp-to-edge), approximating small viewpoint jitter.
func (im *Image) Translate(dy, dx int) *Image {
	out := NewImage(im.C, im.H, im.W)
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			sy := clampInt(y-dy, 0, im.H-1)
			for x := 0; x < im.W; x++ {
				sx := clampInt(x-dx, 0, im.W-1)
				out.Set(c, y, x, im.At(c, sy, sx))
			}
		}
	}
	return out
}

// RandomResizePad implements the randomization defense of Xie et al.:
// resize to a random smaller size, then pad back to the original size at a
// random offset. A small amount of noise is added to further break
// adversarial pixel alignment.
func RandomResizePad(rng *xrand.RNG, im *Image, minScale float64, noiseStd float64) *Image {
	return RandomResizePadInto(rng, NewImage(im.C, im.H, im.W), im, minScale, noiseStd)
}

// RandomResizePadInto is RandomResizePad writing into dst, which must match
// im's geometry and not alias it. The resized intermediate comes from the
// package image pool, so the steady state allocates nothing.
func RandomResizePadInto(rng *xrand.RNG, dst, im *Image, minScale float64, noiseStd float64) *Image {
	checkInto(dst, im, "RandomResizePadInto")
	scale := rng.Uniform(minScale, 1.0)
	nh := max(8, int(float64(im.H)*scale))
	nw := max(8, int(float64(im.W)*scale))
	small := im.ResizeBilinearInto(GetImage(im.C, nh, nw))
	oy := 0
	if im.H > nh {
		oy = rng.Intn(im.H - nh + 1)
	}
	ox := 0
	if im.W > nw {
		ox = rng.Intn(im.W - nw + 1)
	}
	small.PadToInto(dst, oy, ox, Gray)
	PutImage(small)
	if noiseStd > 0 {
		for i := range dst.Pix {
			dst.Pix[i] += float32(rng.Normal(0, noiseStd))
		}
	}
	return dst.Clamp()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
