package imaging

import "math"

// Point is a 2-D coordinate in pixel space (x right, y down). Fractional
// coordinates are allowed; rasterisation rounds per scanline.
type Point struct{ X, Y float64 }

// FillRect paints the axis-aligned rectangle [y0,y1)×[x0,x1), clipped to
// the image bounds.
func (im *Image) FillRect(y0, x0, y1, x1 int, col Color) {
	y0, x0 = max(0, y0), max(0, x0)
	y1, x1 = min(im.H, y1), min(im.W, x1)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			im.SetRGB(y, x, col)
		}
	}
}

// VerticalGradient fills rows [y0,y1) with a vertical blend from top to
// bottom color.
func (im *Image) VerticalGradient(y0, y1 int, top, bottom Color) {
	y0 = max(0, y0)
	y1 = min(im.H, y1)
	span := float32(y1 - y0)
	if span <= 0 {
		return
	}
	for y := y0; y < y1; y++ {
		t := float32(y-y0) / span
		var col Color
		for c := 0; c < 3; c++ {
			col[c] = top[c]*(1-t) + bottom[c]*t
		}
		for x := 0; x < im.W; x++ {
			im.SetRGB(y, x, col)
		}
	}
}

// FillPolygon rasterises a simple (convex or concave, non-self-
// intersecting) polygon with the even-odd scanline rule.
func (im *Image) FillPolygon(pts []Point, col Color) {
	if len(pts) < 3 {
		return
	}
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	y0 := max(0, int(math.Floor(minY)))
	y1 := min(im.H-1, int(math.Ceil(maxY)))
	xs := make([]float64, 0, len(pts))
	for y := y0; y <= y1; y++ {
		cy := float64(y) + 0.5
		xs = xs[:0]
		j := len(pts) - 1
		for i := 0; i < len(pts); i++ {
			a, b := pts[i], pts[j]
			if (a.Y <= cy && b.Y > cy) || (b.Y <= cy && a.Y > cy) {
				t := (cy - a.Y) / (b.Y - a.Y)
				xs = append(xs, a.X+t*(b.X-a.X))
			}
			j = i
		}
		// Insertion sort — crossing lists are tiny.
		for i := 1; i < len(xs); i++ {
			for k := i; k > 0 && xs[k] < xs[k-1]; k-- {
				xs[k], xs[k-1] = xs[k-1], xs[k]
			}
		}
		for i := 0; i+1 < len(xs); i += 2 {
			x0 := max(0, int(math.Ceil(xs[i]-0.5)))
			x1 := min(im.W-1, int(math.Floor(xs[i+1]-0.5)))
			for x := x0; x <= x1; x++ {
				im.SetRGB(y, x, col)
			}
		}
	}
}

// RegularPolygon returns n vertices of a regular polygon centred at
// (cx, cy) with circumradius r, rotated by rot radians.
func RegularPolygon(cx, cy, r float64, n int, rot float64) []Point {
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		a := rot + 2*math.Pi*float64(i)/float64(n)
		pts[i] = Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)}
	}
	return pts
}

// FillCircle paints a filled disc.
func (im *Image) FillCircle(cy, cx, r float64, col Color) {
	y0 := max(0, int(cy-r-1))
	y1 := min(im.H-1, int(cy+r+1))
	x0 := max(0, int(cx-r-1))
	x1 := min(im.W-1, int(cx+r+1))
	r2 := r * r
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dy := float64(y) + 0.5 - cy
			dx := float64(x) + 0.5 - cx
			if dy*dy+dx*dx <= r2 {
				im.SetRGB(y, x, col)
			}
		}
	}
}

// DrawLine draws a 1-pixel line from (y0,x0) to (y1,x1) using DDA stepping.
func (im *Image) DrawLine(y0, x0, y1, x1 float64, col Color) {
	dy, dx := y1-y0, x1-x0
	steps := int(math.Max(math.Abs(dy), math.Abs(dx))) + 1
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		y := int(y0 + t*dy)
		x := int(x0 + t*dx)
		if y >= 0 && y < im.H && x >= 0 && x < im.W {
			im.SetRGB(y, x, col)
		}
	}
}

// DrawThickLine draws a line with the given half-width by stamping discs.
func (im *Image) DrawThickLine(y0, x0, y1, x1, halfWidth float64, col Color) {
	dy, dx := y1-y0, x1-x0
	steps := int(math.Max(math.Abs(dy), math.Abs(dx))) + 1
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		im.FillCircle(y0+t*dy, x0+t*dx, halfWidth, col)
	}
}

// glyphRows is a 5x3 block font for the letters of "STOP"; enough to give
// the synthetic sign the white-on-red glyph texture the detector keys on.
var glyphRows = map[rune][5]uint8{
	'S': {0b111, 0b100, 0b111, 0b001, 0b111},
	'T': {0b111, 0b010, 0b010, 0b010, 0b010},
	'O': {0b111, 0b101, 0b101, 0b101, 0b111},
	'P': {0b111, 0b101, 0b111, 0b100, 0b100},
}

// DrawGlyphText renders text in the 5x3 block font with the given pixel
// scale, anchored at top-left (y, x). Unknown runes are skipped.
func (im *Image) DrawGlyphText(y, x int, text string, scale int, col Color) {
	cx := x
	for _, r := range text {
		rows, ok := glyphRows[r]
		if !ok {
			cx += 4 * scale
			continue
		}
		for ry, bits := range rows {
			for rx := 0; rx < 3; rx++ {
				if bits&(1<<(2-rx)) == 0 {
					continue
				}
				im.FillRect(y+ry*scale, cx+rx*scale, y+(ry+1)*scale, cx+(rx+1)*scale, col)
			}
		}
		cx += 4 * scale
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
