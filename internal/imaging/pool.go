package imaging

import "sync"

// imgPool recycles intermediate images so per-frame filters (the Gaussian
// blur's separable passes, the randomization defense's resize stage) don't
// allocate a full image of garbage per frame. Pooled images keep their
// backing pixel slice and are resliced to the requested size.
var imgPool sync.Pool

// GetImage returns an image of the given size from the internal pool,
// allocating only when no pooled buffer is large enough. The pixel contents
// are undefined; callers must fully overwrite them.
func GetImage(c, h, w int) *Image {
	n := c * h * w
	if v := imgPool.Get(); v != nil {
		im := v.(*Image)
		if cap(im.Pix) >= n {
			im.Pix = im.Pix[:n]
			im.C, im.H, im.W = c, h, w
			im.view = nil // shape may have changed; rebuild lazily
			return im
		}
	}
	return NewImage(c, h, w)
}

// PutImage returns an image to the pool. The caller must not use im (or
// any view of its pixels) afterwards.
func PutImage(im *Image) {
	if im != nil {
		imgPool.Put(im)
	}
}

// EnsureLike returns buf when it already matches the geometry of ref,
// otherwise a fresh image of ref's size. Callers use it to keep one
// reusable destination buffer across a frame loop:
//
//	buf = imaging.EnsureLike(buf, frame)
//	defended := d.ProcessInto(buf, frame)
func EnsureLike(buf, ref *Image) *Image {
	if buf != nil && buf.C == ref.C && buf.H == ref.H && buf.W == ref.W {
		return buf
	}
	return NewImage(ref.C, ref.H, ref.W)
}
