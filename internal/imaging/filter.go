package imaging

import "math"

// MedianBlur replaces each pixel with the median of its k×k neighbourhood
// (k odd, clamp-to-edge borders). Median filtering suppresses isolated
// adversarial pixels while preserving edges, which is why it is the
// strongest of the classical preprocessing defenses in the paper.
func MedianBlur(im *Image, k int) *Image {
	out := NewImage(im.C, im.H, im.W)
	MedianBlurInto(out, im, k)
	return out
}

// medianStackWindow is the largest kernel whose sort window lives on the
// stack; bigger (unusual) kernels fall back to one heap window per call.
const medianStackWindow = 7

// MedianBlurInto is MedianBlur writing into dst, which must match im's
// geometry and not alias it. The per-pixel window is sorted with insertion
// sort on a stack buffer: for the 3×3–7×7 kernels the defenses use that is
// both faster than a general sort and allocation-free, so per-frame latency
// measures filtering rather than the allocator.
func MedianBlurInto(dst, im *Image, k int) *Image {
	if k%2 == 0 {
		panic("imaging: MedianBlur kernel must be odd")
	}
	checkInto(dst, im, "MedianBlurInto")
	r := k / 2
	var stack [medianStackWindow * medianStackWindow]float32
	window := stack[:0]
	if k > medianStackWindow {
		window = make([]float32, 0, k*k)
	}
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				window = window[:0]
				for dy := -r; dy <= r; dy++ {
					sy := clampInt(y+dy, 0, im.H-1)
					row := im.Pix[(c*im.H+sy)*im.W : (c*im.H+sy+1)*im.W]
					for dx := -r; dx <= r; dx++ {
						// Insertion sort as we go: shift the tail up until
						// the new sample's slot appears.
						v := row[clampInt(x+dx, 0, im.W-1)]
						i := len(window)
						window = window[:i+1]
						for i > 0 && window[i-1] > v {
							window[i] = window[i-1]
							i--
						}
						window[i] = v
					}
				}
				dst.Set(c, y, x, window[len(window)/2])
			}
		}
	}
	return dst
}

// BitDepthReduce quantises pixel values to the given number of bits per
// channel (feature squeezing); quantisation floors small perturbations to
// the nearest representable level.
func BitDepthReduce(im *Image, bits int) *Image {
	out := NewImage(im.C, im.H, im.W)
	return BitDepthReduceInto(out, im, bits)
}

// BitDepthReduceInto is BitDepthReduce writing into dst, which must match
// im's geometry (dst == im quantises in place).
func BitDepthReduceInto(dst, im *Image, bits int) *Image {
	if bits < 1 || bits > 8 {
		panic("imaging: BitDepthReduce bits must be in [1,8]")
	}
	checkInto(dst, im, "BitDepthReduceInto")
	levels := float32(int(1)<<bits - 1)
	for i, v := range im.Pix {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		dst.Pix[i] = float32(math.Round(float64(v*levels))) / levels
	}
	return dst
}

// GaussianBlur convolves each channel with a separable Gaussian kernel of
// the given sigma (radius 3σ, clamp-to-edge).
func GaussianBlur(im *Image, sigma float64) *Image {
	out := NewImage(im.C, im.H, im.W)
	return GaussianBlurInto(out, im, sigma)
}

// GaussianBlurInto is GaussianBlur writing into dst, which must match im's
// geometry and not alias it. The intermediate horizontal-pass image comes
// from the package image pool.
func GaussianBlurInto(dst, im *Image, sigma float64) *Image {
	checkInto(dst, im, "GaussianBlurInto")
	// The negated comparison also catches NaN, which would otherwise
	// produce a garbage kernel radius below; the second clause catches a
	// sigma so small that 2σ² underflows to zero, which would make the
	// kernel center 0/0 = NaN. Either way the blur is an identity.
	if !(sigma > 0) || 2*sigma*sigma == 0 {
		copy(dst.Pix, im.Pix)
		return dst
	}
	// Cap the radius at the image extent before the int conversion: past
	// that point a wider kernel only flattens the (already near-uniform)
	// result, while an unbounded sigma (up to +Inf) would overflow the
	// conversion or attempt an enormous allocation.
	rf := math.Ceil(3 * sigma)
	if limit := float64(max(im.H, im.W)); rf > limit {
		rf = limit
	}
	r := int(rf)
	kernel := make([]float32, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		kernel[i+r] = float32(v)
		sum += v
	}
	for i := range kernel {
		kernel[i] = float32(float64(kernel[i]) / sum)
	}

	// Horizontal pass.
	tmp := GetImage(im.C, im.H, im.W)
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				var acc float32
				for i := -r; i <= r; i++ {
					sx := clampInt(x+i, 0, im.W-1)
					acc += kernel[i+r] * im.At(c, y, sx)
				}
				tmp.Set(c, y, x, acc)
			}
		}
	}
	// Vertical pass.
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				var acc float32
				for i := -r; i <= r; i++ {
					sy := clampInt(y+i, 0, im.H-1)
					acc += kernel[i+r] * tmp.At(c, sy, x)
				}
				dst.Set(c, y, x, acc)
			}
		}
	}
	PutImage(tmp)
	return dst
}

// BoxBlur is a cheap k×k mean filter (k odd), used by scene generation for
// soft shadows and by tests as a smoothing reference.
func BoxBlur(im *Image, k int) *Image {
	if k%2 == 0 {
		panic("imaging: BoxBlur kernel must be odd")
	}
	r := k / 2
	out := NewImage(im.C, im.H, im.W)
	norm := float32(1) / float32(k*k)
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				var acc float32
				for dy := -r; dy <= r; dy++ {
					sy := clampInt(y+dy, 0, im.H-1)
					for dx := -r; dx <= r; dx++ {
						sx := clampInt(x+dx, 0, im.W-1)
						acc += im.At(c, sy, sx)
					}
				}
				out.Set(c, y, x, acc*norm)
			}
		}
	}
	return out
}

// checkInto validates the destination-passing contract shared by the
// *Into filters: matching geometry.
func checkInto(dst, im *Image, op string) {
	if dst.C != im.C || dst.H != im.H || dst.W != im.W {
		panic("imaging: " + op + " destination geometry mismatch")
	}
}
