package imaging

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// fuzzImage builds a small image with pseudo-random pixels; out-of-range
// values are included deliberately since attacks can push pixels outside
// [0,1] before a defense filter sees them.
func fuzzImage(h, w uint8, seed int64, wild bool) *Image {
	im := NewRGB(int(h)%12+1, int(w)%12+1)
	rng := xrand.New(seed)
	for i := range im.Pix {
		if wild {
			im.Pix[i] = float32(rng.Uniform(-0.5, 1.5))
		} else {
			im.Pix[i] = rng.Float32()
		}
	}
	return im
}

// channelBounds returns the min/max pixel value per channel.
func channelBounds(im *Image, c int) (lo, hi float32) {
	plane := im.Pix[c*im.H*im.W : (c+1)*im.H*im.W]
	lo, hi = plane[0], plane[0]
	for _, v := range plane {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func FuzzMedianBlur(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(1), int64(1))
	f.Add(uint8(1), uint8(1), uint8(0), int64(2))
	f.Add(uint8(7), uint8(11), uint8(2), int64(3))
	f.Fuzz(func(t *testing.T, h, w, kRaw uint8, seed int64) {
		im := fuzzImage(h, w, seed, false)
		k := int(kRaw)%3*2 + 1 // 1, 3 or 5: kernel must be odd
		out := MedianBlur(im, k)
		if out.C != im.C || out.H != im.H || out.W != im.W {
			t.Fatalf("shape changed: %dx%dx%d -> %dx%dx%d", im.C, im.H, im.W, out.C, out.H, out.W)
		}
		// A median is always one of the input samples: every output value
		// must exist somewhere in the same input channel.
		for c := 0; c < im.C; c++ {
			plane := im.Pix[c*im.H*im.W : (c+1)*im.H*im.W]
			for i, v := range out.Pix[c*im.H*im.W : (c+1)*im.H*im.W] {
				found := false
				for _, u := range plane {
					if u == v {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("output pixel %d in channel %d (%v) is not an input sample", i, c, v)
				}
			}
		}
	})
}

func FuzzBitDepthReduce(f *testing.F) {
	f.Add(uint8(4), uint8(6), uint8(4), int64(1))
	f.Add(uint8(2), uint8(2), uint8(1), int64(9))
	f.Add(uint8(9), uint8(3), uint8(8), int64(5))
	f.Fuzz(func(t *testing.T, h, w, bitsRaw uint8, seed int64) {
		im := fuzzImage(h, w, seed, true)
		bits := int(bitsRaw)%8 + 1
		out := BitDepthReduce(im, bits)
		levels := float32(int(1)<<bits - 1)
		for i, v := range out.Pix {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %d out of range: %v", i, v)
			}
			q := v * levels
			if diff := q - float32(int(q+0.5)); diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("pixel %d not on a quantisation level: %v (bits=%d)", i, v, bits)
			}
		}
		// Quantisation must be idempotent.
		again := BitDepthReduce(out, bits)
		if out.MeanAbsDiff(again) != 0 {
			t.Fatal("BitDepthReduce not idempotent")
		}
	})
}

func FuzzGaussianBlur(f *testing.F) {
	f.Add(uint8(5), uint8(5), float64(1.0), int64(1))
	f.Add(uint8(1), uint8(8), float64(0.3), int64(2))
	f.Add(uint8(10), uint8(2), float64(-1), int64(3))
	f.Add(uint8(3), uint8(3), math.Inf(1), int64(4))
	f.Add(uint8(4), uint8(4), math.NaN(), int64(5))
	f.Fuzz(func(t *testing.T, h, w uint8, sigma float64, seed int64) {
		im := fuzzImage(h, w, seed, false)
		out := GaussianBlur(im, sigma)
		if out.C != im.C || out.H != im.H || out.W != im.W {
			t.Fatal("shape changed")
		}
		// A normalised non-negative kernel yields convex combinations:
		// output stays within the input's per-channel range (+ float slop).
		const eps = 1e-4
		for c := 0; c < im.C; c++ {
			lo, hi := channelBounds(im, c)
			for i, v := range out.Pix[c*im.H*im.W : (c+1)*im.H*im.W] {
				if v < lo-eps || v > hi+eps {
					t.Fatalf("channel %d pixel %d escaped input range: %v not in [%v,%v]", c, i, v, lo, hi)
				}
			}
		}
	})
}

func FuzzBoxBlur(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(1), int64(1))
	f.Add(uint8(6), uint8(2), uint8(2), int64(7))
	f.Fuzz(func(t *testing.T, h, w, kRaw uint8, seed int64) {
		im := fuzzImage(h, w, seed, false)
		k := int(kRaw)%3*2 + 1
		out := BoxBlur(im, k)
		if out.C != im.C || out.H != im.H || out.W != im.W {
			t.Fatal("shape changed")
		}
		const eps = 1e-4
		for c := 0; c < im.C; c++ {
			lo, hi := channelBounds(im, c)
			for i, v := range out.Pix[c*im.H*im.W : (c+1)*im.H*im.W] {
				if v < lo-eps || v > hi+eps {
					t.Fatalf("channel %d pixel %d escaped input range: %v not in [%v,%v]", c, i, v, lo, hi)
				}
			}
		}
	})
}
