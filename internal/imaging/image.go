// Package imaging provides the float image type shared by the scene
// generators, the attacks and the defenses, plus the drawing primitives,
// geometric transforms and classical filters the paper's pipeline needs.
//
// Images are stored channels-first (CHW) with values in [0, 1] so that a
// model input is simply a view of the pixel buffer — no conversion between
// the "image domain" (where attacks perturb pixels) and the "tensor domain"
// (where gradients live).
package imaging

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"

	"repro/internal/tensor"
)

// Color is an RGB triple with components in [0, 1].
type Color [3]float32

// Common palette used by the scene generators and the RP2 printability set.
var (
	Black     = Color{0, 0, 0}
	White     = Color{1, 1, 1}
	Red       = Color{0.82, 0.07, 0.07}
	DarkRed   = Color{0.55, 0.04, 0.04}
	Gray      = Color{0.5, 0.5, 0.5}
	DarkGray  = Color{0.25, 0.25, 0.27}
	LightGray = Color{0.75, 0.75, 0.75}
	Asphalt   = Color{0.32, 0.32, 0.34}
	SkyBlue   = Color{0.62, 0.77, 0.92}
	Grass     = Color{0.30, 0.52, 0.25}
	Yellow    = Color{0.95, 0.85, 0.15}
	Blue      = Color{0.15, 0.25, 0.75}
)

// Scale returns the color with every component multiplied by s (clamped).
func (c Color) Scale(s float32) Color {
	out := Color{}
	for i, v := range c {
		x := v * s
		if x < 0 {
			x = 0
		} else if x > 1 {
			x = 1
		}
		out[i] = x
	}
	return out
}

// Image is a dense CHW float image with C channels (3 for RGB) and values
// nominally in [0, 1]. Attacks may push values outside the range; Clamp
// restores validity before the image is treated as a sensor output.
type Image struct {
	C, H, W int
	Pix     []float32 // len = C*H*W, channel-major

	// view is the memoised Tensor() wrapper over Pix. Constructors set it
	// eagerly so Tensor() is a pure read — safe for concurrent readers
	// sharing one image (the evaluation workers do exactly that).
	view *tensor.Tensor
}

// NewImage returns a black image of the given size.
func NewImage(c, h, w int) *Image {
	im := &Image{C: c, H: h, W: w, Pix: make([]float32, c*h*w)}
	im.view = tensor.FromSlice(im.Pix, c, h, w)
	return im
}

// NewRGB returns a black 3-channel image.
func NewRGB(h, w int) *Image { return NewImage(3, h, w) }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := NewImage(im.C, im.H, im.W)
	copy(out.Pix, im.Pix)
	return out
}

// At returns the pixel value of channel c at row y, column x.
func (im *Image) At(c, y, x int) float32 { return im.Pix[(c*im.H+y)*im.W+x] }

// Set stores v in channel c at row y, column x.
func (im *Image) Set(c, y, x int, v float32) { im.Pix[(c*im.H+y)*im.W+x] = v }

// SetRGB writes an RGB color at (y, x). The image must have 3 channels.
func (im *Image) SetRGB(y, x int, col Color) {
	for c := 0; c < 3; c++ {
		im.Pix[(c*im.H+y)*im.W+x] = col[c]
	}
}

// RGBAt reads the RGB color at (y, x).
func (im *Image) RGBAt(y, x int) Color {
	var col Color
	for c := 0; c < 3; c++ {
		col[c] = im.Pix[(c*im.H+y)*im.W+x]
	}
	return col
}

// Fill paints the whole image with a color.
func (im *Image) Fill(col Color) {
	plane := im.H * im.W
	for c := 0; c < im.C; c++ {
		v := col[c%3]
		row := im.Pix[c*plane : (c+1)*plane]
		for i := range row {
			row[i] = v
		}
	}
}

// Clamp clips all pixels to [0, 1] in place and returns the image.
func (im *Image) Clamp() *Image {
	for i, v := range im.Pix {
		if v < 0 {
			im.Pix[i] = 0
		} else if v > 1 {
			im.Pix[i] = 1
		}
	}
	return im
}

// Tensor returns a tensor view sharing the pixel buffer (no copy); writing
// to the tensor mutates the image. The view is memoised, so repeated calls
// on the hot perception/attack paths allocate nothing.
func (im *Image) Tensor() *tensor.Tensor {
	if v := im.view; v != nil {
		vd := v.Data()
		if len(vd) == len(im.Pix) && len(vd) > 0 && &vd[0] == &im.Pix[0] && v.ShapeEq(im.C, im.H, im.W) {
			return v
		}
	}
	im.view = tensor.FromSlice(im.Pix, im.C, im.H, im.W)
	return im.view
}

// FromTensor wraps a CHW tensor as an image sharing storage.
func FromTensor(t *tensor.Tensor) *Image {
	if t.Rank() != 3 {
		panic(fmt.Sprintf("imaging: FromTensor needs CHW, got %v", t.Shape()))
	}
	return &Image{C: t.Dim(0), H: t.Dim(1), W: t.Dim(2), Pix: t.Data(), view: t}
}

// Sub returns a deep copy of the axis-aligned window [y0,y1)×[x0,x1),
// clipped to the image bounds.
func (im *Image) Sub(y0, x0, y1, x1 int) *Image {
	y0, x0 = max(0, y0), max(0, x0)
	y1, x1 = min(im.H, y1), min(im.W, x1)
	if y1 <= y0 || x1 <= x0 {
		return NewImage(im.C, 1, 1)
	}
	out := NewImage(im.C, y1-y0, x1-x0)
	for c := 0; c < im.C; c++ {
		for y := y0; y < y1; y++ {
			src := im.Pix[(c*im.H+y)*im.W+x0 : (c*im.H+y)*im.W+x1]
			dst := out.Pix[(c*out.H+y-y0)*out.W : (c*out.H+y-y0)*out.W+out.W]
			copy(dst, src)
		}
	}
	return out
}

// MeanAbsDiff returns the mean absolute per-pixel difference between two
// same-sized images; tests and metrics use it as a cheap distortion gauge.
func (im *Image) MeanAbsDiff(o *Image) float64 {
	if len(im.Pix) != len(o.Pix) {
		panic("imaging: MeanAbsDiff size mismatch")
	}
	var s float64
	for i := range im.Pix {
		d := float64(im.Pix[i] - o.Pix[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(len(im.Pix))
}

// EncodePNG writes the image as an 8-bit PNG.
func (im *Image) EncodePNG(w io.Writer) error {
	if im.C != 3 && im.C != 1 {
		return fmt.Errorf("imaging: EncodePNG supports 1 or 3 channels, have %d", im.C)
	}
	out := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var r, g, b float32
			if im.C == 3 {
				r, g, b = im.At(0, y, x), im.At(1, y, x), im.At(2, y, x)
			} else {
				r = im.At(0, y, x)
				g, b = r, r
			}
			out.Set(x, y, color.RGBA{to8(r), to8(g), to8(b), 255})
		}
	}
	return png.Encode(w, out)
}

// SavePNG writes the image to a PNG file.
func (im *Image) SavePNG(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return im.EncodePNG(f)
}

// DecodePNG reads an 8-bit PNG into a 3-channel float image.
func DecodePNG(r io.Reader) (*Image, error) {
	src, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("decode png: %w", err)
	}
	b := src.Bounds()
	out := NewRGB(b.Dy(), b.Dx())
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			r16, g16, b16, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			out.Set(0, y, x, float32(r16)/65535)
			out.Set(1, y, x, float32(g16)/65535)
			out.Set(2, y, x, float32(b16)/65535)
		}
	}
	return out, nil
}

func to8(v float32) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v*255 + 0.5)
}
