package imaging

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func randImage(rng *xrand.RNG, h, w int) *Image {
	im := NewRGB(h, w)
	rng.FillUniform(im.Pix, 0, 1)
	return im
}

func TestAtSetRGB(t *testing.T) {
	im := NewRGB(4, 4)
	im.SetRGB(1, 2, Red)
	got := im.RGBAt(1, 2)
	if got != Red {
		t.Fatalf("RGBAt = %v, want %v", got, Red)
	}
	im.Set(1, 3, 3, 0.5)
	if im.At(1, 3, 3) != 0.5 {
		t.Fatal("At/Set channel access broken")
	}
}

func TestCloneIndependent(t *testing.T) {
	im := NewRGB(2, 2)
	c := im.Clone()
	c.Pix[0] = 1
	if im.Pix[0] != 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestFillAndClamp(t *testing.T) {
	im := NewRGB(2, 2)
	im.Fill(Color{0.5, 0.6, 0.7})
	if im.At(2, 1, 1) != 0.7 {
		t.Fatal("Fill wrong")
	}
	im.Pix[0] = -3
	im.Pix[1] = 9
	im.Clamp()
	if im.Pix[0] != 0 || im.Pix[1] != 1 {
		t.Fatal("Clamp wrong")
	}
}

func TestTensorSharesStorage(t *testing.T) {
	im := NewRGB(2, 2)
	tt := im.Tensor()
	tt.Data()[0] = 0.25
	if im.Pix[0] != 0.25 {
		t.Fatal("Tensor must view the pixel buffer")
	}
	back := FromTensor(tt)
	if back.H != 2 || back.W != 2 || back.C != 3 {
		t.Fatalf("FromTensor shape %dx%dx%d", back.C, back.H, back.W)
	}
}

func TestPNGRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	im := randImage(rng, 8, 9)
	var buf bytes.Buffer
	if err := im.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.H != 8 || back.W != 9 {
		t.Fatalf("decoded size %dx%d", back.H, back.W)
	}
	// 8-bit quantisation: error bounded by 1/255.
	if d := im.MeanAbsDiff(back); d > 1.0/255 {
		t.Fatalf("PNG round-trip error %v", d)
	}
}

func TestFillRectClipped(t *testing.T) {
	im := NewRGB(4, 4)
	im.FillRect(-2, -2, 2, 2, White) // partially off-canvas
	if im.RGBAt(0, 0) != White || im.RGBAt(1, 1) != White {
		t.Fatal("in-bounds region not painted")
	}
	if im.RGBAt(2, 2) == White {
		t.Fatal("painted outside requested rect")
	}
}

func TestFillPolygonSquare(t *testing.T) {
	im := NewRGB(10, 10)
	im.FillPolygon([]Point{{X: 2, Y: 2}, {X: 8, Y: 2}, {X: 8, Y: 8}, {X: 2, Y: 8}}, White)
	if im.RGBAt(5, 5) != White {
		t.Fatal("polygon interior not filled")
	}
	if im.RGBAt(0, 0) == White || im.RGBAt(9, 9) == White {
		t.Fatal("polygon exterior painted")
	}
}

func TestRegularPolygonGeometry(t *testing.T) {
	pts := RegularPolygon(10, 10, 5, 8, 0)
	if len(pts) != 8 {
		t.Fatalf("vertices = %d", len(pts))
	}
	for _, p := range pts {
		r := math.Hypot(p.X-10, p.Y-10)
		if math.Abs(r-5) > 1e-9 {
			t.Fatalf("vertex radius %v, want 5", r)
		}
	}
}

func TestFillCircle(t *testing.T) {
	im := NewRGB(11, 11)
	im.FillCircle(5, 5, 3, Red)
	if im.RGBAt(5, 5) != Red {
		t.Fatal("circle center not painted")
	}
	if im.RGBAt(0, 0) == Red {
		t.Fatal("far corner painted")
	}
}

func TestDrawGlyphText(t *testing.T) {
	im := NewRGB(10, 20)
	im.DrawGlyphText(1, 1, "STOP", 1, White)
	var lit int
	for _, v := range im.Pix {
		if v == 1 {
			lit++
		}
	}
	if lit == 0 {
		t.Fatal("glyph text painted nothing")
	}
}

func TestResizeBilinearConstant(t *testing.T) {
	im := NewRGB(6, 6)
	im.Fill(Color{0.3, 0.3, 0.3})
	out := im.ResizeBilinear(3, 9)
	if out.H != 3 || out.W != 9 {
		t.Fatalf("resize shape %dx%d", out.H, out.W)
	}
	for _, v := range out.Pix {
		if math.Abs(float64(v)-0.3) > 1e-6 {
			t.Fatalf("constant image changed value: %v", v)
		}
	}
}

// Property: resizing preserves the value range of the source image.
func TestResizePreservesRange(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		im := randImage(r, 4+r.Intn(8), 4+r.Intn(8))
		out := im.ResizeBilinear(3+r.Intn(12), 3+r.Intn(12))
		for _, v := range out.Pix {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPadTo(t *testing.T) {
	im := NewRGB(2, 2)
	im.Fill(White)
	out := im.PadTo(4, 4, 1, 1, Black)
	if out.RGBAt(0, 0) != Black || out.RGBAt(1, 1) != White || out.RGBAt(2, 2) != White {
		t.Fatal("PadTo placement wrong")
	}
}

func TestFlipH(t *testing.T) {
	im := NewRGB(1, 3)
	im.SetRGB(0, 0, Red)
	out := im.FlipH()
	if out.RGBAt(0, 2) != Red {
		t.Fatal("FlipH wrong")
	}
	// Involution.
	back := out.FlipH()
	if back.MeanAbsDiff(im) != 0 {
		t.Fatal("FlipH twice must be identity")
	}
}

func TestTranslateClampEdge(t *testing.T) {
	im := NewRGB(3, 3)
	im.SetRGB(0, 0, Red)
	out := im.Translate(1, 1)
	if out.RGBAt(1, 1) != Red {
		t.Fatal("Translate moved content wrong")
	}
	if out.RGBAt(0, 0) != Red {
		t.Fatal("clamp-to-edge fill expected at origin")
	}
}

func TestMedianBlurRemovesImpulse(t *testing.T) {
	im := NewRGB(9, 9)
	im.Fill(Gray)
	im.SetRGB(4, 4, White) // single-pixel impulse = adversarial salt
	out := MedianBlur(im, 3)
	if out.RGBAt(4, 4) != Gray {
		t.Fatalf("median blur failed to remove impulse: %v", out.RGBAt(4, 4))
	}
}

func TestMedianBlurPreservesConstant(t *testing.T) {
	im := NewRGB(5, 5)
	im.Fill(Color{0.4, 0.5, 0.6})
	out := MedianBlur(im, 3)
	if out.MeanAbsDiff(im) > 1e-6 {
		t.Fatal("median blur changed a constant image")
	}
}

func TestMedianBlurRejectsEvenKernel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("even kernel must panic")
		}
	}()
	MedianBlur(NewRGB(4, 4), 2)
}

func TestBitDepthLevels(t *testing.T) {
	im := NewRGB(1, 1)
	im.Fill(Color{0.49, 0.51, 1})
	out := BitDepthReduce(im, 1) // levels {0, 1}
	if out.At(0, 0, 0) != 0 || out.At(1, 0, 0) != 1 || out.At(2, 0, 0) != 1 {
		t.Fatalf("1-bit quantisation wrong: %v", out.Pix)
	}
}

// Property: bit-depth reduction is idempotent and outputs only valid levels.
func TestBitDepthIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		im := randImage(r, 4, 4)
		bits := 1 + r.Intn(8)
		once := BitDepthReduce(im, bits)
		twice := BitDepthReduce(once, bits)
		return once.MeanAbsDiff(twice) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianBlurSmooths(t *testing.T) {
	rng := xrand.New(2)
	im := randImage(rng, 16, 16)
	out := GaussianBlur(im, 1.0)
	// Smoothing must reduce total variation.
	tv := func(x *Image) float64 {
		var s float64
		for c := 0; c < 3; c++ {
			for y := 0; y < x.H; y++ {
				for xx := 1; xx < x.W; xx++ {
					s += math.Abs(float64(x.At(c, y, xx) - x.At(c, y, xx-1)))
				}
			}
		}
		return s
	}
	if tv(out) >= tv(im) {
		t.Fatal("Gaussian blur did not smooth")
	}
}

func TestBoxBlurConstant(t *testing.T) {
	im := NewRGB(5, 5)
	im.Fill(Color{0.2, 0.4, 0.8})
	out := BoxBlur(im, 3)
	if out.MeanAbsDiff(im) > 1e-5 {
		t.Fatal("box blur changed constant image")
	}
}

func TestRandomResizePadShapeAndDeterminism(t *testing.T) {
	im := randImage(xrand.New(3), 16, 16)
	a := RandomResizePad(xrand.New(7), im, 0.8, 0.02)
	b := RandomResizePad(xrand.New(7), im, 0.8, 0.02)
	if a.H != 16 || a.W != 16 {
		t.Fatalf("output shape %dx%d", a.H, a.W)
	}
	if a.MeanAbsDiff(b) != 0 {
		t.Fatal("same seed must give identical randomization")
	}
	c := RandomResizePad(xrand.New(8), im, 0.8, 0.02)
	if a.MeanAbsDiff(c) == 0 {
		t.Fatal("different seeds should differ")
	}
}

func TestSubWindow(t *testing.T) {
	im := randImage(xrand.New(4), 8, 8)
	sub := im.Sub(2, 3, 6, 7)
	if sub.H != 4 || sub.W != 4 {
		t.Fatalf("Sub shape %dx%d", sub.H, sub.W)
	}
	if sub.At(0, 0, 0) != im.At(0, 2, 3) {
		t.Fatal("Sub content wrong")
	}
}

func TestAdjustBrightnessClamps(t *testing.T) {
	im := NewRGB(1, 1)
	im.Fill(Color{0.8, 0.8, 0.8})
	out := im.AdjustBrightness(2)
	if out.At(0, 0, 0) != 1 {
		t.Fatal("brightness must clamp at 1")
	}
}
