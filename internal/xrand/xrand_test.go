package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	// Children of the same parent state diverge from the parent and from
	// each other.
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same12, sameP1 := 0, 0
	ref := New(7)
	refChild := ref.Split()
	_ = refChild
	for i := 0; i < 50; i++ {
		v1, v2 := c1.Float64(), c2.Float64()
		if v1 == v2 {
			same12++
		}
		if v1 == parent.Float64() {
			sameP1++
		}
	}
	if same12 > 2 || sameP1 > 2 {
		t.Fatalf("split streams correlate: same12=%d sameP1=%d", same12, sameP1)
	}
}

func TestSplitReproducible(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 20; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("Split must be deterministic from the parent seed")
		}
	}
}

func TestUniformRange(t *testing.T) {
	f := func(seed int64) bool {
		r := New(seed)
		lo, hi := -3.0, 5.0
		for i := 0; i < 50; i++ {
			v := r.Uniform(lo, hi)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(3)
	const n = 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal(2, 3)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-2) > 0.1 {
		t.Fatalf("mean %v, want ~2", mean)
	}
	if math.Abs(std-3) > 0.1 {
		t.Fatalf("std %v, want ~3", std)
	}
}

func TestSignIsBalanced(t *testing.T) {
	r := New(11)
	pos := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Sign() > 0 {
			pos++
		}
	}
	if pos < n/2-300 || pos > n/2+300 {
		t.Fatalf("Sign imbalance: %d/%d positive", pos, n)
	}
}

func TestXavierBounds(t *testing.T) {
	r := New(13)
	dst := make([]float32, 1000)
	r.Xavier(dst, 100, 50)
	limit := math.Sqrt(6.0 / 150.0)
	for i, v := range dst {
		if float64(v) < -limit || float64(v) > limit {
			t.Fatalf("Xavier[%d]=%v outside ±%v", i, v, limit)
		}
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := New(17)
	counts := [3]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Choice([]float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight option chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight ratio %v, want ~3", ratio)
	}
}

func TestChoiceZeroWeightsFallsBack(t *testing.T) {
	r := New(19)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Choice([]float64{0, 0, 0})] = true
	}
	if len(seen) < 2 {
		t.Fatal("zero-weight Choice should fall back to uniform")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestFillHelpers(t *testing.T) {
	r := New(29)
	buf := make([]float32, 500)
	r.FillUniform(buf, 0.2, 0.4)
	for _, v := range buf {
		if v < 0.2 || v >= 0.4 {
			t.Fatalf("FillUniform out of range: %v", v)
		}
	}
	r.FillNormal(buf, 0, 1)
	var nonzero int
	for _, v := range buf {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 490 {
		t.Fatal("FillNormal left too many zeros")
	}
}
