// Package xrand provides deterministic, splittable random number helpers.
//
// Every stochastic component in this repository (scene generation, weight
// initialisation, attacks, data augmentation) receives an explicit *RNG so
// that experiments are reproducible from a single seed. Sub-streams derived
// with Split are statistically independent of the parent stream, which lets
// parallel workers draw randomness without locking or cross-talk.
package xrand

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source. It wraps math/rand with a few
// convenience samplers used throughout the library. RNG is not safe for
// concurrent use; Split off one RNG per goroutine instead.
type RNG struct {
	src *rand.Rand
}

// New returns an RNG seeded with the given seed.
func New(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Reseed resets the stream to the exact state of New(seed), reusing the
// receiver's storage — the allocation-free way for steady-state loops
// (DiffPIR restorations) to start a fresh deterministic stream per call.
func (r *RNG) Reseed(seed int64) { r.src.Seed(seed) }

// Split derives an independent child stream. The child's seed mixes the
// parent stream state with a large odd constant so sibling splits diverge.
func (r *RNG) Split() *RNG {
	return New(r.src.Int63() ^ 0x1e3779b97f4a7c15)
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 { return r.src.Float32() }

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.src.NormFloat64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.src.Float64() < p }

// Sign returns +1 or -1 with equal probability.
func (r *RNG) Sign() float32 {
	if r.src.Intn(2) == 0 {
		return 1
	}
	return -1
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomises the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// FillNormal fills dst with N(mean, std) samples.
func (r *RNG) FillNormal(dst []float32, mean, std float64) {
	for i := range dst {
		dst[i] = float32(r.Normal(mean, std))
	}
}

// FillUniform fills dst with uniform samples in [lo, hi).
func (r *RNG) FillUniform(dst []float32, lo, hi float64) {
	for i := range dst {
		dst[i] = float32(r.Uniform(lo, hi))
	}
}

// Xavier fills dst with Glorot-uniform samples for a layer with the given
// fan-in and fan-out, the initialisation used by all conv/linear layers.
func (r *RNG) Xavier(dst []float32, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	r.FillUniform(dst, -limit, limit)
}

// Choice returns a uniformly chosen index weighted by w (all w >= 0).
// If the weights sum to zero it falls back to uniform choice.
func (r *RNG) Choice(w []float64) int {
	var total float64
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		return r.Intn(len(w))
	}
	x := r.Uniform(0, total)
	for i, v := range w {
		x -= v
		if x < 0 {
			return i
		}
	}
	return len(w) - 1
}
