package pipeline

import (
	"math"

	"repro/internal/imaging"
	"repro/internal/xrand"
)

// Scenario is a named, declarative closed-loop driving maneuver: a config
// mutator that sets the initial kinematics (and scene appearance, e.g.
// lighting) plus the lead vehicle's acceleration script. Scenarios are the
// rows of the attack × defense evaluation matrix; adding one here makes it
// visible to the matrix runner, the advrepro CLI and the facade.
type Scenario struct {
	Name        string
	Description string
	// Mutate adjusts the base pipeline config (initial gap and speeds,
	// duration, drive-scene appearance). It runs after DefaultConfig, so
	// it only needs to state what differs from the cruise baseline.
	Mutate func(cfg *Config)
	// LeadAccel is the lead vehicle's acceleration script (m/s² over
	// seconds since scenario start).
	LeadAccel func(t float64) float64
	// LeadLateral optionally scripts the lead's lateral offset in meters
	// off lane center (nil = frozen renderer offset). The offset affects
	// only what the camera sees: the underlying simulation is purely
	// longitudinal, so gap/TTC/collision metrics treat the lead as
	// in-lane for the whole run. Keep cut-in scripts merged well before
	// the longitudinal gap gets critical.
	LeadLateral func(t float64) float64
}

// Apply returns the base config specialised to the scenario.
func (s Scenario) Apply(cfg Config) Config {
	if s.Mutate != nil {
		s.Mutate(&cfg)
	}
	if s.LeadAccel != nil {
		cfg.LeadAccel = s.LeadAccel
	}
	if s.LeadLateral != nil {
		cfg.LeadLateral = s.LeadLateral
	}
	return cfg
}

// newFogFilter returns a frame filter layering a fog veil over the scene:
// every pixel is pulled toward a bright haze color (a contrast wash whose
// strength is the veil density) and the frame is then softened with a
// small Gaussian blur — distant structure, including the lead vehicle,
// loses contrast first, exactly the degradation fog inflicts on a camera.
// The filter owns its blur scratch, so each config (and therefore each
// concurrently running matrix cell) must construct its own via Mutate.
func newFogFilter(density float64, blurSigma float64) func(img *imaging.Image, rng *xrand.RNG) {
	var blurBuf *imaging.Image
	haze := imaging.Color{0.82, 0.84, 0.87}
	return func(img *imaging.Image, rng *xrand.RNG) {
		f := float32(density)
		for c := 0; c < img.C && c < 3; c++ {
			plane := img.Pix[c*img.H*img.W : (c+1)*img.H*img.W]
			hc := haze[c] * f
			for i, v := range plane {
				plane[i] = v*(1-f) + hc
			}
		}
		if blurSigma > 0 {
			blurBuf = imaging.EnsureLike(blurBuf, img)
			imaging.GaussianBlurInto(blurBuf, img, blurSigma)
			copy(img.Pix, blurBuf.Pix)
		}
	}
}

// newRainFilter returns a frame filter for heavy rain: a dimming wash, a
// few bright diagonal streaks across the frame (fresh positions per frame
// from the filter's rng stream) and a boosted noise veil standing in for
// droplet scatter on the lens.
func newRainFilter(dim float64, streaks int, noiseStd float64) func(img *imaging.Image, rng *xrand.RNG) {
	streakCol := imaging.Color{0.78, 0.80, 0.85}
	return func(img *imaging.Image, rng *xrand.RNG) {
		d := float32(1 - dim)
		for i, v := range img.Pix {
			img.Pix[i] = v * d
		}
		for s := 0; s < streaks; s++ {
			x0 := rng.Uniform(0, float64(img.W))
			y0 := rng.Uniform(0, float64(img.H))
			length := rng.Uniform(3, 8)
			img.DrawLine(y0, x0, y0+length, x0-length*0.3, streakCol)
		}
		if noiseStd > 0 {
			for i, v := range img.Pix {
				img.Pix[i] = v + float32(rng.Normal(0, noiseStd))
			}
		}
		img.Clamp()
	}
}

// constAccel returns a script holding the given acceleration forever.
func constAccel(a float64) func(t float64) float64 {
	return func(float64) float64 { return a }
}

// brakePulse returns a script braking at -decel for [from, to) seconds.
func brakePulse(from, to, decel float64) func(t float64) float64 {
	return func(t float64) float64 {
		if t >= from && t < to {
			return -decel
		}
		return 0
	}
}

// Scenarios returns the registry of named lead maneuvers, the scenario
// axis of the evaluation matrix. The list covers steady cruising, two
// braking severities, congested stop-and-go, a cut-in with a scripted
// lateral slide, and a low-visibility night variant of the emergency
// brake — the system-level diversity Wang et al. argue attack impact
// must be judged over.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "highway-cruise",
			Description: "steady 30 m/s cruise, lead holds speed",
			Mutate: func(cfg *Config) {
				cfg.InitGap = 45
				cfg.EgoSpeed, cfg.LeadSpeed = 31, 30
			},
			LeadAccel: constAccel(0),
		},
		{
			Name:        "gentle-brake",
			Description: "lead brakes -2.5 m/s² for 3 s mid-run",
			Mutate: func(cfg *Config) {
				cfg.InitGap = 35
				cfg.EgoSpeed, cfg.LeadSpeed = 27, 25
			},
			LeadAccel: brakePulse(4, 7, 2.5),
		},
		{
			Name:        "hard-brake",
			Description: "emergency stop: lead brakes -5 m/s² until stationary",
			Mutate: func(cfg *Config) {
				cfg.InitGap = 40
				cfg.EgoSpeed, cfg.LeadSpeed = 28, 27
			},
			LeadAccel: brakePulse(3, 9, 5),
		},
		{
			Name:        "stop-and-go",
			Description: "congested traffic: lead alternates braking and pulling away",
			Mutate: func(cfg *Config) {
				cfg.InitGap = 20
				cfg.EgoSpeed, cfg.LeadSpeed = 14, 12
			},
			LeadAccel: func(t float64) float64 {
				// ~6 s wave: brake for half the cycle, accelerate the rest.
				return 2.2 * math.Sin(2*math.Pi*t/6)
			},
		},
		{
			Name:        "cut-in",
			Description: "lead slides from the adjacent lane into the ego lane, then brakes",
			Mutate: func(cfg *Config) {
				cfg.InitGap = 25
				cfg.EgoSpeed, cfg.LeadSpeed = 25, 22
			},
			LeadAccel: brakePulse(5, 7, 2),
			LeadLateral: func(t float64) float64 {
				// Start one lane over (≈3.2 m) and merge to center by t=3 s.
				const merge = 3.0
				if t >= merge {
					return 0
				}
				return 3.2 * (1 - t/merge)
			},
		},
		{
			Name:        "night-brake",
			Description: "hard brake under low-visibility night lighting",
			Mutate: func(cfg *Config) {
				cfg.InitGap = 38
				cfg.EgoSpeed, cfg.LeadSpeed = 26, 25
				cfg.Drive.BrightMin, cfg.Drive.BrightMax = 0.35, 0.5
				cfg.Drive.Noise *= 2 // sensor noise dominates in the dark
			},
			LeadAccel: brakePulse(4, 8, 4),
		},
		{
			Name:        "fog-brake",
			Description: "lead brakes inside dense fog: contrast wash + blur veil",
			Mutate: func(cfg *Config) {
				cfg.InitGap = 42
				cfg.EgoSpeed, cfg.LeadSpeed = 24, 23
				// Flat gray light under the cloud deck, a little extra
				// sensor noise, and a fresh fog filter per config so
				// concurrent cells never share blur scratch.
				cfg.Drive.BrightMin, cfg.Drive.BrightMax = 0.7, 0.8
				cfg.Drive.Noise *= 1.5
				cfg.FrameFilter = newFogFilter(0.45, 0.7)
			},
			LeadAccel: brakePulse(4, 8, 3.5),
		},
		{
			Name:        "rain-cruise",
			Description: "steady cruise through heavy rain: streaks, dimming and lens noise",
			Mutate: func(cfg *Config) {
				cfg.InitGap = 40
				cfg.EgoSpeed, cfg.LeadSpeed = 26, 25
				cfg.Drive.BrightMin, cfg.Drive.BrightMax = 0.55, 0.7
				cfg.FrameFilter = newRainFilter(0.18, 10, 0.03)
			},
			// Spray reduces traction: the lead eases off mid-run rather
			// than holding a perfectly steady speed.
			LeadAccel: brakePulse(6, 8, 1.2),
		},
	}
}

// FindScenario returns the registered scenario with the given name.
func FindScenario(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
