package pipeline

import (
	"reflect"
	"runtime"
	"sync"
	"testing"
)

func TestScenarioRegistry(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 5 {
		t.Fatalf("registry has %d scenarios, want >= 5", len(scs))
	}
	seen := map[string]bool{}
	for _, s := range scs {
		if s.Name == "" || s.Description == "" {
			t.Fatalf("scenario %+v missing name or description", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.LeadAccel == nil {
			t.Fatalf("scenario %q has no lead acceleration script", s.Name)
		}
	}
	for _, want := range []string{"highway-cruise", "hard-brake", "stop-and-go", "cut-in", "night-brake", "fog-brake", "rain-cruise"} {
		if !seen[want] {
			t.Fatalf("registry missing %q", want)
		}
	}
}

func TestFindScenario(t *testing.T) {
	if _, ok := FindScenario("cut-in"); !ok {
		t.Fatal("cut-in must be registered")
	}
	if _, ok := FindScenario("no-such-maneuver"); ok {
		t.Fatal("unknown name must not resolve")
	}
}

func TestScenarioApplyOverrides(t *testing.T) {
	sc, _ := FindScenario("night-brake")
	cfg := sc.Apply(DefaultConfig(nil))
	if cfg.Drive.BrightMax > 0.6 {
		t.Fatalf("night variant must darken the scene, BrightMax=%v", cfg.Drive.BrightMax)
	}
	if cfg.LeadAccel(5) >= 0 {
		t.Fatal("night-brake lead must brake at t=5s")
	}

	cut, _ := FindScenario("cut-in")
	cfg = cut.Apply(DefaultConfig(nil))
	if cfg.LeadLateral == nil {
		t.Fatal("cut-in must script a lateral offset")
	}
	if off := cfg.LeadLateral(0); off < 2 {
		t.Fatalf("cut-in must start in the adjacent lane, offset %v", off)
	}
	if off := cfg.LeadLateral(10); off != 0 {
		t.Fatalf("cut-in must finish on lane center, offset %v", off)
	}
}

// shortScenarioCfg specialises a scenario to a cheap run for determinism
// checks.
func shortScenarioCfg(t *testing.T, name string) Config {
	t.Helper()
	sc, ok := FindScenario(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	cfg := sc.Apply(DefaultConfig(trainedReg(t)))
	cfg.Duration = 2
	cfg.DT = 0.1
	cfg.Seed = 123
	return cfg
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	for _, name := range []string{"hard-brake", "cut-in", "night-brake", "fog-brake", "rain-cruise"} {
		a := Run(shortScenarioCfg(t, name))
		b := Run(shortScenarioCfg(t, name))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed must give bit-identical results", name)
		}
	}
}

// TestWeatherScenarios covers the fog/rain appearance variants: both must
// be registered, construct a fresh frame filter per Apply (no shared blur
// scratch between concurrently running cells), and actually change what
// the camera perceives relative to a filter-free run.
func TestWeatherScenarios(t *testing.T) {
	for _, name := range []string{"fog-brake", "rain-cruise"} {
		sc, ok := FindScenario(name)
		if !ok {
			t.Fatalf("%s missing from registry", name)
		}
		if cfg := sc.Apply(DefaultConfig(nil)); cfg.FrameFilter == nil {
			t.Fatalf("%s must install a frame filter", name)
		}

		// Two configs applied from one Scenario value must be runnable
		// concurrently: Apply builds a fresh filter (own blur scratch) per
		// config, which the -race CI job verifies here. Each run gets its
		// own regressor clone, matching the matrix runner's worker model.
		cfgA := shortScenarioCfg(t, name)
		cfgB := shortScenarioCfg(t, name)
		cfgB.Reg = cfgB.Reg.Clone()
		var wg sync.WaitGroup
		for _, cfg := range []Config{cfgA, cfgB} {
			wg.Add(1)
			go func(c Config) {
				defer wg.Done()
				Run(c)
			}(cfg)
		}
		wg.Wait()

		// The veil must alter perception: drop only the filter and compare.
		withVeil := shortScenarioCfg(t, name)
		clear := withVeil
		clear.FrameFilter = nil
		av, ac := Run(withVeil), Run(clear)
		same := len(av.PerceivedGaps) == len(ac.PerceivedGaps)
		if same {
			for i := range av.PerceivedGaps {
				if av.PerceivedGaps[i] != ac.PerceivedGaps[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("%s: frame filter had no effect on perception", name)
		}
	}
}

func TestRunDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := shortScenarioCfg(t, "stop-and-go")

	old := runtime.GOMAXPROCS(1)
	serial := Run(cfg)
	runtime.GOMAXPROCS(4)
	parallel := Run(cfg)
	runtime.GOMAXPROCS(old)

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("results must be bit-identical across GOMAXPROCS settings")
	}
}

func TestLeadLateralReachesRenderer(t *testing.T) {
	// A scripted lateral offset must change what the camera sees: two
	// otherwise-identical runs with different constant offsets perceive
	// different worlds.
	centered := shortScenarioCfg(t, "highway-cruise")
	centered.LeadLateral = func(float64) float64 { return 0 }
	offset := shortScenarioCfg(t, "highway-cruise")
	offset.LeadLateral = func(float64) float64 { return 2.5 }

	a, b := Run(centered), Run(offset)
	same := true
	for i := range a.PerceivedGaps {
		if i >= len(b.PerceivedGaps) || a.PerceivedGaps[i] != b.PerceivedGaps[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("lateral script had no effect on perception")
	}
}
