// Package pipeline wires the perception stack into the closed control
// loop: rendered camera frame → (optional) runtime attacker → (optional)
// defense preprocessor → distance model → ACC controller → vehicle
// simulation. This is the reproduction's analogue of running OpenPilot
// with the Supercombo model in the loop, and it is where the safety
// consequence of a perception attack (a collision the paper's Table I
// errors imply) becomes measurable.
package pipeline

import (
	"math"

	"repro/internal/box"
	"repro/internal/defense"
	"repro/internal/imaging"
	"repro/internal/regress"
	"repro/internal/scene"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Attacker perturbs a frame at runtime given the current lead bounding box
// (the CAP threat model). A nil Attacker runs the clean pipeline.
type Attacker interface {
	Apply(img *imaging.Image, leadBox box.Box) *imaging.Image
}

// AttackerFunc adapts a closure to the Attacker interface.
type AttackerFunc func(img *imaging.Image, leadBox box.Box) *imaging.Image

// Apply implements Attacker.
func (f AttackerFunc) Apply(img *imaging.Image, leadBox box.Box) *imaging.Image {
	return f(img, leadBox)
}

// Config assembles one closed-loop scenario.
type Config struct {
	Reg      *regress.Regressor
	Attacker Attacker             // nil = no attack
	Defense  defense.Preprocessor // nil = no defense
	Drive    scene.DriveConfig

	Duration  float64 // seconds
	DT        float64 // control period (20 Hz in OpenPilot's planner)
	InitGap   float64 // meters
	EgoSpeed  float64 // m/s initial
	LeadSpeed float64 // m/s initial
	// LeadAccel gives the lead vehicle's acceleration over time, the
	// scenario script (e.g. a hard-brake event).
	LeadAccel func(t float64) float64
	// LeadLateral optionally scripts the lead vehicle's lateral offset
	// (meters off lane center) over time; nil keeps the renderer's frozen
	// offset. Cut-in scenarios use it to slide the lead into the ego
	// lane. Rendering-only: the simulation stays longitudinal, so safety
	// metrics treat the lead as in-lane regardless of the offset.
	LeadLateral func(t float64) float64

	// FrameFilter optionally post-processes each rendered frame in place
	// before the attacker and defense see it — the appearance layer for
	// weather veils (fog contrast wash, rain streaks). The rng is a
	// dedicated stream split from the run seed, so filters can draw
	// per-frame randomness without perturbing the renderer's stream.
	// Scenario registrations must construct a fresh filter per config
	// (inside Mutate) when the filter keeps scratch buffers: one Scenario
	// value is applied from many concurrently running matrix cells.
	FrameFilter func(img *imaging.Image, rng *xrand.RNG)

	Seed int64
}

// DefaultConfig returns a cruising scenario: both vehicles at 25 m/s with
// a 40 m gap, lead braking gently mid-run.
func DefaultConfig(reg *regress.Regressor) Config {
	return Config{
		Reg:      reg,
		Drive:    scene.DefaultDriveConfig(),
		Duration: 14, DT: 0.05,
		InitGap:  35,
		EgoSpeed: 27, LeadSpeed: 25,
		LeadAccel: func(t float64) float64 {
			if t > 4 && t < 7 {
				return -2.5 // lead brakes hard for three seconds
			}
			return 0
		},
		Seed: 77,
	}
}

// Run executes the closed loop and returns the trajectory and safety
// summary. Perceived relative speed is estimated by differentiating the
// (low-pass filtered) perceived gap, as a production ACC would from a
// vision-only distance.
func Run(cfg Config) sim.Result {
	rng := xrand.New(cfg.Seed)
	// The filter stream is split off before the renderer consumes rng, and
	// only when a filter is configured, so filter-free scenarios keep the
	// exact random streams (and therefore trajectories) they had before
	// FrameFilter existed.
	var filterRNG *xrand.RNG
	if cfg.FrameFilter != nil {
		filterRNG = rng.Split()
	}
	renderer := scene.NewRenderer(rng, cfg.Drive)
	acc := sim.ACC{Cfg: sim.DefaultACCConfig()}
	world := sim.NewSimulation(cfg.InitGap, cfg.EgoSpeed, cfg.LeadSpeed, cfg.DT)

	res := sim.Result{MinGap: math.Inf(1), MinTTC: math.Inf(1)}
	steps := int(cfg.Duration / cfg.DT)

	var prevPerceived float64
	var havePrev bool
	filtered := 0.0
	const filterAlpha = 0.5 // one-pole smoothing of the perceived gap

	// One reusable destination frame for defenses that support destination
	// passing, so the 20 Hz loop doesn't allocate a frame per step.
	var defBuf *imaging.Image

	for i := 0; i < steps; i++ {
		t := float64(i) * cfg.DT
		trueGap := world.State.Gap()
		if trueGap <= 0 {
			res.Collision = true
			break
		}

		// Perception.
		var frame scene.DriveScene
		if cfg.LeadLateral != nil {
			frame = renderer.RenderAt(trueGap, cfg.LeadLateral(t))
		} else {
			frame = renderer.Render(trueGap)
		}
		img := frame.Img
		if cfg.FrameFilter != nil {
			cfg.FrameFilter(img, filterRNG)
		}
		if cfg.Attacker != nil {
			img = cfg.Attacker.Apply(img, frame.LeadBox)
		}
		if cfg.Defense != nil {
			if _, ok := cfg.Defense.(defense.IntoPreprocessor); ok {
				defBuf = imaging.EnsureLike(defBuf, img)
			}
			img = defense.Apply(cfg.Defense, defBuf, img)
		}
		perceived := cfg.Reg.Predict(img)
		if perceived < 0 {
			perceived = 0
		}

		// Relative-speed estimate from the filtered perceived gap.
		if !havePrev {
			filtered = perceived
			prevPerceived = perceived
			havePrev = true
		}
		filtered = filterAlpha*perceived + (1-filterAlpha)*filtered
		relSpeed := (filtered - prevPerceived) / cfg.DT
		relSpeed = clamp(relSpeed, -15, 15)
		prevPerceived = filtered

		// Control + physics.
		egoAccel := acc.Accel(filtered, world.State.EgoSpeed, relSpeed)
		world.Step(egoAccel, cfg.LeadAccel(t))

		// Telemetry.
		res.Times = append(res.Times, t)
		res.TrueGaps = append(res.TrueGaps, trueGap)
		res.PerceivedGaps = append(res.PerceivedGaps, perceived)
		res.EgoSpeeds = append(res.EgoSpeeds, world.State.EgoSpeed)
		res.LeadSpeeds = append(res.LeadSpeeds, world.State.LeadSpeed)
		if trueGap < res.MinGap {
			res.MinGap = trueGap
		}
		if ttc := world.State.TTC(); ttc < res.MinTTC {
			res.MinTTC = ttc
		}
	}
	if world.State.Gap() <= 0 {
		res.Collision = true
		res.MinGap = 0
	}
	return res
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
