package pipeline

import (
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/box"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/imaging"
	"repro/internal/regress"
	"repro/internal/scene"
	"repro/internal/xrand"
)

var (
	regOnce sync.Once
	reg     *regress.Regressor
)

func trainedReg(t testing.TB) *regress.Regressor {
	t.Helper()
	regOnce.Do(func() {
		rng := xrand.New(55)
		cfg := scene.DefaultDriveConfig()
		set := dataset.GenerateDriveSet(rng.Split(), cfg, 150, cfg.MinZ, cfg.MaxZ)
		reg = regress.New(rng.Split(), cfg.Size)
		rc := regress.DefaultTrainConfig()
		rc.Epochs = 10
		reg.Train(set, rc)
	})
	return reg
}

func TestCleanLoopIsSafe(t *testing.T) {
	cfg := DefaultConfig(trainedReg(t))
	res := Run(cfg)
	if res.Collision {
		t.Fatal("clean pipeline must not collide in the default scenario")
	}
	if len(res.Times) == 0 || len(res.TrueGaps) != len(res.PerceivedGaps) {
		t.Fatal("telemetry incomplete")
	}
	if res.MinGap <= 0 {
		t.Fatalf("min gap %v", res.MinGap)
	}
}

func TestPerceptionTracksTruth(t *testing.T) {
	cfg := DefaultConfig(trainedReg(t))
	res := Run(cfg)
	var worst float64
	for i := range res.TrueGaps {
		d := res.PerceivedGaps[i] - res.TrueGaps[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 30 {
		t.Fatalf("perception diverged from truth by %.1f m", worst)
	}
}

func TestAttackerDegradesSafety(t *testing.T) {
	r := trainedReg(t)
	clean := Run(DefaultConfig(r))

	attacked := DefaultConfig(r)
	obj := &attack.RegressionObjective{Reg: r.Clone()}
	attacked.Attacker = AttackerFunc(func(img *imaging.Image, leadBox box.Box) *imaging.Image {
		if leadBox.Empty() {
			return img
		}
		mask := attack.BoxMask(img.C, img.H, img.W, leadBox, 1)
		return attack.FGSM(obj, img, 0.08, mask)
	})
	adv := Run(attacked)

	// Inflating the perceived gap must not leave safety unaffected: either
	// the minimum gap shrinks or a collision occurs.
	if !adv.Collision && adv.MinGap >= clean.MinGap-0.5 {
		t.Fatalf("attack had no safety effect: clean min gap %.2f, attacked %.2f", clean.MinGap, adv.MinGap)
	}
}

func TestDefenseHookRuns(t *testing.T) {
	r := trainedReg(t)
	cfg := DefaultConfig(r)
	cfg.Defense = defense.NewMedianBlur()
	res := Run(cfg)
	if len(res.Times) == 0 {
		t.Fatal("defended run produced no telemetry")
	}
}

func TestAttackerFuncAdapter(t *testing.T) {
	called := false
	f := AttackerFunc(func(img *imaging.Image, leadBox box.Box) *imaging.Image {
		called = true
		return img
	})
	img := imaging.NewRGB(4, 4)
	if f.Apply(img, box.Box{}) != img || !called {
		t.Fatal("AttackerFunc adapter broken")
	}
}
