package box

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewNormalises(t *testing.T) {
	b := New(5, 8, 1, 2)
	if b.X0 != 1 || b.X1 != 5 || b.Y0 != 2 || b.Y1 != 8 {
		t.Fatalf("New did not normalise: %+v", b)
	}
}

func TestFromCenterRoundTrip(t *testing.T) {
	b := FromCenter(10, 20, 4, 6)
	if b.CX() != 10 || b.CY() != 20 || b.W() != 4 || b.H() != 6 {
		t.Fatalf("FromCenter round trip failed: %+v", b)
	}
}

func TestAreaAndEmpty(t *testing.T) {
	tests := []struct {
		name  string
		b     Box
		area  float64
		empty bool
	}{
		{"unit", New(0, 0, 1, 1), 1, false},
		{"rect", New(1, 1, 4, 3), 6, false},
		{"line", Box{X0: 0, Y0: 0, X1: 5, Y1: 0}, 0, true},
		{"point", Box{}, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.b.Area(); got != tt.area {
				t.Fatalf("Area = %v, want %v", got, tt.area)
			}
			if got := tt.b.Empty(); got != tt.empty {
				t.Fatalf("Empty = %v, want %v", got, tt.empty)
			}
		})
	}
}

func TestIoUKnownValues(t *testing.T) {
	tests := []struct {
		name string
		a, b Box
		want float64
	}{
		{"identical", New(0, 0, 2, 2), New(0, 0, 2, 2), 1},
		{"disjoint", New(0, 0, 1, 1), New(2, 2, 3, 3), 0},
		{"touching", New(0, 0, 1, 1), New(1, 0, 2, 1), 0},
		{"half overlap", New(0, 0, 2, 1), New(1, 0, 3, 1), 1.0 / 3.0},
		{"nested quarter", New(0, 0, 2, 2), New(0, 0, 1, 1), 0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.IoU(tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("IoU = %v, want %v", got, tt.want)
			}
		})
	}
}

func randBox(r *xrand.RNG) Box {
	return New(r.Uniform(0, 50), r.Uniform(0, 50), r.Uniform(0, 50), r.Uniform(0, 50))
}

// Property: IoU is symmetric and bounded in [0,1]; IoU(b,b)=1 for
// non-empty boxes.
func TestIoUProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		a, b := randBox(r), randBox(r)
		ab, ba := a.IoU(b), b.IoU(a)
		if math.Abs(ab-ba) > 1e-12 || ab < 0 || ab > 1 {
			return false
		}
		if !a.Empty() && math.Abs(a.IoU(a)-1) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: intersection area never exceeds either operand's area.
func TestIntersectBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := xrand.New(seed)
		a, b := randBox(r), randBox(r)
		inter := a.Intersect(b).Area()
		return inter <= a.Area()+1e-9 && inter <= b.Area()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClip(t *testing.T) {
	b := New(-5, -5, 100, 100).Clip(64, 48)
	if b.X0 != 0 || b.Y0 != 0 || b.X1 != 64 || b.Y1 != 48 {
		t.Fatalf("Clip = %+v", b)
	}
}

func TestExpandAndScale(t *testing.T) {
	b := New(2, 2, 4, 4)
	e := b.Expand(1)
	if e.X0 != 1 || e.Y1 != 5 {
		t.Fatalf("Expand = %+v", e)
	}
	s := b.Scale(2)
	if s.X0 != 4 || s.X1 != 8 {
		t.Fatalf("Scale = %+v", s)
	}
}

func TestContains(t *testing.T) {
	b := New(0, 0, 10, 10)
	if !b.Contains(5, 5) || b.Contains(10, 5) || b.Contains(-1, 5) {
		t.Fatal("Contains boundary semantics wrong")
	}
}
