// Package box defines axis-aligned bounding boxes and the IoU arithmetic
// shared by the scene generators, the detector and the evaluation metrics.
package box

import "math"

// Box is an axis-aligned box in pixel coordinates with inclusive-exclusive
// extents: x in [X0, X1), y in [Y0, Y1).
type Box struct {
	X0, Y0, X1, Y1 float64
}

// New returns a box with coordinates normalised so X0<=X1 and Y0<=Y1.
func New(x0, y0, x1, y1 float64) Box {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Box{X0: x0, Y0: y0, X1: x1, Y1: y1}
}

// FromCenter builds a box from a center point and full width/height.
func FromCenter(cx, cy, w, h float64) Box {
	return Box{X0: cx - w/2, Y0: cy - h/2, X1: cx + w/2, Y1: cy + h/2}
}

// W returns the box width.
func (b Box) W() float64 { return b.X1 - b.X0 }

// H returns the box height.
func (b Box) H() float64 { return b.Y1 - b.Y0 }

// CX returns the center x coordinate.
func (b Box) CX() float64 { return (b.X0 + b.X1) / 2 }

// CY returns the center y coordinate.
func (b Box) CY() float64 { return (b.Y0 + b.Y1) / 2 }

// Area returns the box area (0 for degenerate boxes).
func (b Box) Area() float64 {
	w, h := b.W(), b.H()
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Empty reports whether the box has no area.
func (b Box) Empty() bool { return b.Area() <= 0 }

// Intersect returns the overlapping region of two boxes (possibly empty).
func (b Box) Intersect(o Box) Box {
	return Box{
		X0: math.Max(b.X0, o.X0),
		Y0: math.Max(b.Y0, o.Y0),
		X1: math.Min(b.X1, o.X1),
		Y1: math.Min(b.Y1, o.Y1),
	}
}

// IoU returns the intersection-over-union of two boxes in [0, 1].
func (b Box) IoU(o Box) float64 {
	inter := b.Intersect(o).Area()
	if inter <= 0 {
		return 0
	}
	union := b.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Clip restricts the box to [0,w)×[0,h).
func (b Box) Clip(w, h float64) Box {
	return Box{
		X0: math.Max(0, b.X0),
		Y0: math.Max(0, b.Y0),
		X1: math.Min(w, b.X1),
		Y1: math.Min(h, b.Y1),
	}
}

// Scale returns the box with all coordinates multiplied by s.
func (b Box) Scale(s float64) Box {
	return Box{X0: b.X0 * s, Y0: b.Y0 * s, X1: b.X1 * s, Y1: b.Y1 * s}
}

// Expand grows the box by m pixels on every side.
func (b Box) Expand(m float64) Box {
	return Box{X0: b.X0 - m, Y0: b.Y0 - m, X1: b.X1 + m, Y1: b.Y1 + m}
}

// Contains reports whether the point (x, y) lies inside the box.
func (b Box) Contains(x, y float64) bool {
	return x >= b.X0 && x < b.X1 && y >= b.Y0 && y < b.Y1
}
