package eval

import (
	"fmt"
	"strings"
)

// Format renders Table I in the paper's layout.
func (t TableI) Format() string {
	var b strings.Builder
	b.WriteString("TABLE I: Avg. errors at different ranges (m) under attack\n")
	b.WriteString(fmt.Sprintf("%-14s %9s %9s %9s %9s\n", "Attack Method", "[0,20]", "[20,40]", "[40,60]", "[60,80]"))
	for _, r := range t.Rows {
		b.WriteString(fmt.Sprintf("%-14s %9.2f %9.2f %9.2f %9.2f\n",
			displayKind(r.Attack), r.Errs[0], r.Errs[1], r.Errs[2], r.Errs[3]))
	}
	return b.String()
}

// Format renders Fig. 2 as the score table behind the bar chart.
func (f Fig2) Format() string {
	var b strings.Builder
	b.WriteString("FIG 2: Performance of stop sign detection with or w/o attacks\n")
	b.WriteString(fmt.Sprintf("%-14s %8s %10s %8s\n", "Attack", "mAP50", "Precision", "Recall"))
	for _, r := range f.Rows {
		b.WriteString(fmt.Sprintf("%-14s %8.2f %10.2f %8.2f\n",
			displayKind(r.Attack), 100*r.Scores.MAP50, 100*r.Scores.Precision, 100*r.Scores.Recall))
	}
	return b.String()
}

// Format renders Table II in the paper's layout.
func (t TableII) Format() string {
	var b strings.Builder
	b.WriteString("TABLE II: Performance after image processing\n")
	b.WriteString(fmt.Sprintf("%-12s %-17s | %8s %8s %8s %8s | %7s %7s %7s\n",
		"Attack", "Defense", "[0,20]", "[20,40]", "[40,60]", "[60,80]", "mAP50", "Prec.", "Recall"))
	prev := Kind("")
	for _, r := range t.Rows {
		label := ""
		if r.Attack != prev {
			label = displayKind(r.Attack)
			prev = r.Attack
		}
		b.WriteString(fmt.Sprintf("%-12s %-17s | %8.2f %8.2f %8.2f %8.2f | %7.2f %7.2f %7.2f\n",
			label, r.Defense,
			r.Errs[0], r.Errs[1], r.Errs[2], r.Errs[3],
			100*r.Scores.MAP50, 100*r.Scores.Precision, 100*r.Scores.Recall))
	}
	return b.String()
}

// Format renders Table III in the paper's layout.
func (t TableIII) Format() string {
	var b strings.Builder
	b.WriteString("TABLE III: Performance after adversarial training\n")
	b.WriteString(fmt.Sprintf("%-12s %-12s | %8s %8s %8s %8s | %7s %7s %7s\n",
		"Adv.Example", "Attack", "[0,20]", "[20,40]", "[40,60]", "[60,80]", "mAP50", "Prec.", "Recall"))
	prev := Kind("")
	for _, c := range t.Cells {
		label := ""
		if c.TrainOn != prev {
			label = displayKind(c.TrainOn)
			prev = c.TrainOn
		}
		reg := fmt.Sprintf("%8s %8s %8s %8s", "-", "-", "-", "-")
		if c.HasReg {
			reg = fmt.Sprintf("%8.2f %8.2f %8.2f %8.2f", c.Errs[0], c.Errs[1], c.Errs[2], c.Errs[3])
		}
		b.WriteString(fmt.Sprintf("%-12s %-12s | %s | %7.2f %7.2f %7.2f\n",
			label, displayKind(c.TestOn), reg,
			100*c.Scores.MAP50, 100*c.Scores.Precision, 100*c.Scores.Recall))
	}
	return b.String()
}

// Format renders Table IV in the paper's layout.
func (t TableIV) Format() string {
	var b strings.Builder
	b.WriteString("TABLE IV: Performance after contrastive learning\n")
	b.WriteString(fmt.Sprintf("%-12s %-14s %8s %10s %8s\n", "Adv.Example", "Attack", "mAP50", "Precision", "Recall"))
	prev := Kind("")
	for _, c := range t.Cells {
		label := ""
		if c.TrainOn != prev {
			label = displayKind(c.TrainOn)
			prev = c.TrainOn
		}
		test := displayKind(c.TestOn)
		if c.TestOn == KindNone {
			test = "Clean"
		}
		b.WriteString(fmt.Sprintf("%-12s %-14s %8.2f %10.2f %8.2f\n",
			label, test, 100*c.Scores.MAP50, 100*c.Scores.Precision, 100*c.Scores.Recall))
	}
	return b.String()
}

// Format renders Table V in the paper's layout.
func (t TableV) Format() string {
	var b strings.Builder
	b.WriteString("TABLE V: Performance after diffusion model cleaning\n")
	b.WriteString(fmt.Sprintf("%-12s | %8s %8s %8s %8s | %7s %7s %7s\n",
		"Attack", "[0,20]", "[20,40]", "[40,60]", "[60,80]", "mAP50", "Prec.", "Recall"))
	for _, r := range t.Rows {
		reg := fmt.Sprintf("%8s %8s %8s %8s", "-", "-", "-", "-")
		if r.HasReg {
			reg = fmt.Sprintf("%8.2f %8.2f %8.2f %8.2f", r.Errs[0], r.Errs[1], r.Errs[2], r.Errs[3])
		}
		b.WriteString(fmt.Sprintf("%-12s | %s | %7.2f %7.2f %7.2f\n",
			displayKind(r.Attack), reg,
			100*r.Scores.MAP50, 100*r.Scores.Precision, 100*r.Scores.Recall))
	}
	return b.String()
}

// displayKind maps harness kinds to the paper's row labels.
func displayKind(k Kind) string {
	switch k {
	case KindCAP:
		return "CAP/RP2"
	case MixedKind:
		return "Mixed"
	default:
		return string(k)
	}
}
