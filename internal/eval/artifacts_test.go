package eval

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/detect"
	"repro/internal/nn"
	"repro/internal/regress"
	"repro/internal/xrand"
)

// collectLogf returns a concurrency-safe log sink and a getter for the
// joined text.
func collectLogf() (func(string, ...any), func() string) {
	var mu sync.Mutex
	var b strings.Builder
	logf := func(format string, args ...any) {
		mu.Lock()
		fmt.Fprintf(&b, format+"\n", args...)
		mu.Unlock()
	}
	return logf, func() string { mu.Lock(); defer mu.Unlock(); return b.String() }
}

// assertSameParams fails unless both parameter lists hold bit-identical
// float32 data.
func assertSameParams(t *testing.T, label string, got, want []*nn.Param) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d params, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i].Value.Data(), want[i].Value.Data()
		if len(g) != len(w) {
			t.Fatalf("%s: param %d size %d, want %d", label, i, len(g), len(w))
		}
		for j := range g {
			if g[j] != w[j] {
				t.Fatalf("%s: param %d differs at %d (%v != %v)", label, i, j, g[j], w[j])
			}
		}
	}
}

func TestModelStoreRoundTripBitIdentity(t *testing.T) {
	store, err := NewModelStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := microPreset()
	e := sharedEnv(t) // trained victims to serialize

	if err := store.SaveDetector(e.Det, p); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveRegressor(e.Reg, p); err != nil {
		t.Fatal(err)
	}

	// Fresh untrained networks, then restore: every parameter must match
	// the trained ones bit for bit.
	rng := xrand.New(999)
	det := detect.New(rng.Split(), e.SignCfg.Size)
	if warm, err := store.LoadDetector(det, p); err != nil || !warm {
		t.Fatalf("detector load: warm=%v err=%v", warm, err)
	}
	assertSameParams(t, "detector", det.Net.Params(), e.Det.Net.Params())
	reg := regress.New(rng.Split(), e.DriveCfg.Size)
	if warm, err := store.LoadRegressor(reg, p); err != nil || !warm {
		t.Fatalf("regressor load: warm=%v err=%v", warm, err)
	}
	assertSameParams(t, "regressor", reg.Net.Params(), e.Reg.Net.Params())

	// A different preset (different seed) is a cold miss, never a false hit.
	other := p
	other.Seed = p.Seed + 1
	if warm, err := store.LoadDetector(det, other); err != nil || warm {
		t.Fatalf("foreign preset must miss: warm=%v err=%v", warm, err)
	}
	// Architecture version and kind are part of the key.
	if store.DetectorKey(p) == store.RegressorKey(p) {
		t.Fatal("detector and regressor share a key")
	}
	if !strings.Contains(store.DetectorKey(p), fmt.Sprintf("_v%d_", detect.ArchVersion)) {
		t.Fatalf("detector key %q lacks the architecture version", store.DetectorKey(p))
	}
}

func TestModelStoreConcurrentSaveLoad(t *testing.T) {
	store, err := NewModelStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := microPreset()
	e := sharedEnv(t)

	// Concurrent savers of one key race benignly (atomic rename of
	// identical bytes); concurrent loaders must only ever observe a
	// complete artifact or a miss. Run under -race.
	var wg sync.WaitGroup
	rng := xrand.New(7)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := store.SaveDetector(e.Det, p); err != nil {
					t.Errorf("save: %v", err)
					return
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			det := detect.New(xrand.New(seed), e.SignCfg.Size)
			for i := 0; i < 5; i++ {
				if _, err := store.LoadDetector(det, p); err != nil {
					t.Errorf("load: %v", err)
					return
				}
			}
		}(rng.Int63())
	}
	wg.Wait()
}

func TestNewEnvCachedWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a second environment")
	}
	store, err := NewModelStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := microPreset()
	ctx := context.Background()

	coldLogf, coldLog := collectLogf()
	cold, err := NewEnvCached(ctx, p, coldLogf, store)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(coldLog(), "epoch") {
		t.Fatalf("cold build trained nothing:\n%s", coldLog())
	}
	if strings.Contains(coldLog(), "warm start") {
		t.Fatalf("cold build claims a warm start:\n%s", coldLog())
	}

	warmLogf, warmLog := collectLogf()
	warm, err := NewEnvCached(ctx, p, warmLogf, store)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(warmLog(), "epoch") {
		t.Fatalf("warm build trained anyway:\n%s", warmLog())
	}
	for _, want := range []string{
		"detector warm start from artifact", "regressor warm start from artifact", "training skipped",
	} {
		if !strings.Contains(warmLog(), want) {
			t.Fatalf("warm build log lacks %q:\n%s", want, warmLog())
		}
	}

	// The warm-started environment is bit-identical to the trained one.
	assertSameParams(t, "warm detector", warm.Det.Net.Params(), cold.Det.Net.Params())
	assertSameParams(t, "warm regressor", warm.Reg.Net.Params(), cold.Reg.Net.Params())
	if warm.Reg.RMSE(warm.DriveTest) != cold.Reg.RMSE(cold.DriveTest) {
		t.Fatal("warm and cold regressors disagree on the test set")
	}
}
