package eval

// Multi-machine shard merge: N sweep shards, run anywhere, stream their
// cells as JSONL; MergeSweeps joins the files back into the one grid they
// decompose. The Spec's grid identity (CellIDs) makes verification exact:
// every record must match its cell's index, seed and axis names, every
// cell must be covered, and a cell appearing in several files must carry
// identical results.

import (
	"fmt"
	"os"
	"reflect"
	"sort"
)

// MergeSweeps joins shard checkpoint files into the combined grid report.
// ids is the grid identity the shards were derived from (CellIDs of the
// sweep's MatrixConfig under the preset seed); preset, duration and dt
// must match the configuration the shards ran under. It verifies:
//
//   - every record matches the grid (index range, seed, axis names,
//     preset/duration/dt) — the LoadSweepCheckpoint validation;
//   - the files jointly cover every cell of the grid exactly;
//   - a cell present in more than one file (overlapping shards, a resumed
//     file merged next to a complete one) carries bit-identical results.
//
// The returned report's cells are in global grid order: merging the
// shards of a sweep reproduces the corresponding RunMatrix report.
func MergeSweeps(ids []CellID, preset string, duration, dt float64, paths []string) (MatrixReport, error) {
	if len(paths) == 0 {
		return MatrixReport{}, fmt.Errorf("merge: no shard files given")
	}
	cells := make(map[int]MatrixCell, len(ids))
	from := make(map[int]string, len(ids))
	for _, path := range paths {
		// LoadSweepCheckpoint treats a missing file as an empty resume
		// state; for a merge a missing shard is a caller error (typoed
		// path, un-synced machine), so surface it as one.
		if _, err := os.Stat(path); err != nil {
			return MatrixReport{}, fmt.Errorf("merge: shard file: %w", err)
		}
		done, _, err := LoadSweepCheckpoint(path, ids, preset, duration, dt)
		if err != nil {
			return MatrixReport{}, fmt.Errorf("merge: %w", err)
		}
		if len(done) == 0 {
			return MatrixReport{}, fmt.Errorf("merge: %s holds no complete cells", path)
		}
		// Fold in grid order so a divergence between shard files always
		// reports the same (lowest) cell.
		idxs := make([]int, 0, len(done))
		for idx := range done {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			c := done[idx]
			prev, dup := cells[idx]
			if !dup {
				cells[idx] = c
				from[idx] = path
				continue
			}
			if !reflect.DeepEqual(prev, c) {
				return MatrixReport{}, fmt.Errorf("merge: cell %d (%s/%s/%s) differs between %s and %s — shards from diverging runs?",
					idx, c.Scenario, c.Attack, c.Defense, from[idx], path)
			}
		}
	}

	missing := 0
	firstMissing := -1
	for _, id := range ids {
		if _, ok := cells[id.Index]; !ok {
			if firstMissing < 0 {
				firstMissing = id.Index
			}
			missing++
		}
	}
	if missing > 0 {
		id := ids[firstMissing]
		return MatrixReport{}, fmt.Errorf("merge: grid coverage incomplete: %d of %d cells missing (first: cell %d, %s/%s/%s) — is a shard file absent or interrupted?",
			missing, len(ids), id.Index, id.Scenario, id.Attack, id.Defense)
	}

	rep := MatrixReport{Preset: preset, Cells: make([]MatrixCell, len(ids))}
	for _, id := range ids {
		rep.Cells[id.Index] = cells[id.Index]
	}
	return rep, nil
}
