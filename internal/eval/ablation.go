package eval

import (
	"repro/internal/attack"
	"repro/internal/box"
	"repro/internal/defense"
	"repro/internal/detect"
	"repro/internal/imaging"
	"repro/internal/metrics"
)

// Ablations quantify the design choices DESIGN.md calls out. Each returns
// a small, self-describing result used by the ablation benchmarks.

// APGDvsPGD compares Auto-PGD's adaptive schedule against plain PGD at the
// same budget on the regression task, returning the mean induced error of
// each over the drive test set's near bucket.
func (e *Env) APGDvsPGD() (apgdErr, pgdErr float64) {
	obj := &attack.RegressionObjective{Reg: e.Reg}
	accA := metrics.NewRangeAccumulator(e.Ranges())
	accP := metrics.NewRangeAccumulator(e.Ranges())
	cfg := attack.DefaultAPGDConfig(e.Budgets.RegAPGDEps)
	// A tight step budget is where the adaptive schedule matters; at large
	// budgets both attacks saturate the ε-ball.
	cfg.Steps = 8
	for _, sc := range e.DriveTest.Scenes {
		mask := attack.BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
		clean := e.Reg.Predict(sc.Img)
		a := attack.AutoPGD(obj, sc.Img, cfg, mask)
		p := attack.PGD(obj, sc.Img, e.Budgets.RegAPGDEps, cfg.Steps, mask)
		accA.Add(sc.Distance, e.Reg.Predict(a)-clean)
		accP.Add(sc.Distance, e.Reg.Predict(p)-clean)
	}
	return accA.Means()[0], accP.Means()[0]
}

// CAPWarmVsCold compares CAP with patch inheritance against a cold-start
// variant (patch reset every frame) on an approach sequence, returning the
// mean induced error of each.
func (e *Env) CAPWarmVsCold() (warmErr, coldErr float64) {
	obj := &attack.RegressionObjective{Reg: e.Reg}

	run := func(cold bool) float64 {
		cfg := capConfig(e.Budgets)
		cfg.StepsPerFrame = 1 // a starved per-frame budget is where inheritance matters
		c := attack.NewCAP(cfg)
		var total float64
		n := 0
		for _, sc := range e.DriveTest.Scenes {
			if cold {
				c.Reset()
			}
			adv := c.Apply(obj, sc.Img, sc.LeadBox)
			total += e.Reg.Predict(adv) - e.Reg.Predict(sc.Img)
			n++
		}
		return total / float64(n)
	}
	return run(false), run(true)
}

// RP2EOTSweep measures detection mAP@50 after RP2 patches built with
// different expectation-over-transforms sample counts.
func (e *Env) RP2EOTSweep(samples []int) []float64 {
	out := make([]float64, len(samples))
	for si, s := range samples {
		imgs := make([]*imaging.Image, e.SignTestSet.Len())
		workers := makeDetWorkers(e)
		parallelMap(len(workers), e.SignTestSet.Len(), func(w, i int) {
			sc := e.SignTestSet.Scenes[i]
			if !sc.HasSign {
				imgs[i] = sc.Img.Clone()
				return
			}
			obj := &attack.DetectionObjective{Det: workers[w], GT: []box.Box{sc.Box}}
			cfg := attack.DefaultRP2Config()
			cfg.Iters = e.Preset.RP2Iters
			cfg.EOTSamples = s
			cfg.Seed = int64(1000*si + i)
			imgs[i] = attack.RP2(obj, sc.Img, sc.Box, cfg)
		})
		out[si] = detScoresFrom(e.Det, e, imgs, nil).MAP50
	}
	return out
}

// DiffPIRStepSweep measures post-restoration detection mAP@50 as a
// function of the number of reverse diffusion steps, on FGSM-attacked
// sign images.
func (e *Env) DiffPIRStepSweep(steps []int) []float64 {
	attacked := e.AttackSignSet(e.Det, e.SignTestSet, KindFGSM, e.Preset.Seed+800)
	out := make([]float64, len(steps))
	for si, s := range steps {
		cfg := defense.DefaultDiffPIRConfig()
		cfg.Steps = s
		prep := &defense.DiffPIRDefense{Model: e.Diffusion(), Cfg: cfg}
		out[si] = detScoresFrom(e.Det, e, attacked, clonePrep(prep)).MAP50
	}
	return out
}

func makeDetWorkers(e *Env) []*detect.Detector {
	ws := make([]*detect.Detector, e.maxWorkers(e.SignTestSet.Len()))
	for i := range ws {
		ws[i] = e.Det.Clone()
	}
	return ws
}
