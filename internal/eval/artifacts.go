package eval

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/detect"
	"repro/internal/nn"
	"repro/internal/regress"
)

// This file implements the trained-model artifact store: victim weights
// cached on disk, keyed by model kind + architecture version + the full
// preset (name, seed, dataset sizes and training schedule — everything
// the trained weights depend on). A warm hit lets env construction skip
// training entirely, which is the dominant cold-start cost of every run;
// a load is bit-identical to the training it replaces because the
// training path is deterministic and the store round-trips exact float32
// data. Invalidation is by key: bump detect.ArchVersion /
// regress.ArchVersion when an architecture changes, and any preset field
// change (including the seed) re-keys automatically.

// ModelStore is a directory of serialized victim-model weights. The
// zero-value (nil) store disables caching. Writes are atomic
// (temp file + rename), so concurrent writers of the same key are safe
// and readers never observe a partial artifact.
type ModelStore struct {
	dir string
}

// NewModelStore opens (creating if needed) the artifact directory.
func NewModelStore(dir string) (*ModelStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("eval: artifact store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("eval: artifact store: %w", err)
	}
	return &ModelStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *ModelStore) Dir() string { return s.dir }

// artifactKey derives the content key of one victim model: kind and
// architecture version name the network, and the SHA-256 of the preset's
// JSON encoding captures every training input (seed, dataset sizes,
// epochs). The readable prefix keeps the directory browsable; the hash
// carries the identity.
func artifactKey(kind string, arch int, p Preset) string {
	buf, err := json.Marshal(p)
	if err != nil {
		// Unreachable: Preset is a flat struct of strings and numbers.
		panic(err)
	}
	sum := sha256.Sum256(buf)
	return fmt.Sprintf("%s_v%d_%s_seed%d_%s.weights", kind, arch, p.Name, p.Seed, hex.EncodeToString(sum[:])[:16])
}

// DetectorKey names the detector artifact of a preset.
func (s *ModelStore) DetectorKey(p Preset) string {
	return artifactKey("det", detect.ArchVersion, p)
}

// RegressorKey names the regressor artifact of a preset.
func (s *ModelStore) RegressorKey(p Preset) string {
	return artifactKey("reg", regress.ArchVersion, p)
}

// load reads the artifact under key into params. A missing artifact is a
// cold miss (false, nil); a present-but-incompatible one is an error —
// the key scheme should have prevented it, so failing loudly beats
// silently retraining over a corrupt store.
func (s *ModelStore) load(key string, params []*nn.Param) (bool, error) {
	buf, err := os.ReadFile(filepath.Join(s.dir, key))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("eval: artifact %s: %w", key, err)
	}
	if err := nn.DecodeParams(buf, params); err != nil {
		return false, fmt.Errorf("eval: artifact %s: %w", key, err)
	}
	return true, nil
}

// save writes params under key atomically: encode, write a temp file in
// the same directory, rename into place. Concurrent savers of one key
// race benignly — both write identical bytes (the key pins the training
// inputs and training is deterministic) and rename is atomic.
func (s *ModelStore) save(key string, params []*nn.Param) error {
	buf, err := nn.EncodeParams(params)
	if err != nil {
		return fmt.Errorf("eval: artifact %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("eval: artifact %s: %w", key, err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("eval: artifact %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("eval: artifact %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("eval: artifact %s: %w", key, err)
	}
	return nil
}

// LoadDetector restores cached detector weights for the preset into d,
// reporting whether a warm artifact existed.
func (s *ModelStore) LoadDetector(d *detect.Detector, p Preset) (bool, error) {
	return s.load(s.DetectorKey(p), d.Net.Params())
}

// SaveDetector stores the trained detector weights under the preset key.
func (s *ModelStore) SaveDetector(d *detect.Detector, p Preset) error {
	return s.save(s.DetectorKey(p), d.Net.Params())
}

// LoadRegressor restores cached regressor weights for the preset into r,
// reporting whether a warm artifact existed.
func (s *ModelStore) LoadRegressor(r *regress.Regressor, p Preset) (bool, error) {
	return s.load(s.RegressorKey(p), r.Net.Params())
}

// SaveRegressor stores the trained regressor weights under the preset key.
func (s *ModelStore) SaveRegressor(r *regress.Regressor, p Preset) error {
	return s.save(s.RegressorKey(p), r.Net.Params())
}
