package eval

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/detect"
	"repro/internal/nn"
	"repro/internal/regress"
)

// This file implements the trained-model artifact store: victim weights
// cached on disk, keyed by model kind + architecture version + the full
// preset (name, seed, dataset sizes and training schedule — everything
// the trained weights depend on). A warm hit lets env construction skip
// training entirely, which is the dominant cold-start cost of every run;
// a load is bit-identical to the training it replaces because the
// training path is deterministic and the store round-trips exact float32
// data. Invalidation is by key: bump detect.ArchVersion /
// regress.ArchVersion when an architecture changes, and any preset field
// change (including the seed) re-keys automatically.

// ModelStore is a directory of serialized victim-model weights. The
// zero-value (nil) store disables caching. Writes are atomic
// (temp file + rename), so concurrent writers of the same key are safe
// and readers never observe a partial artifact. Ensure* additionally
// serialise the training itself across processes through a lock file, so
// a fleet of workers sharing one store trains each preset once.
type ModelStore struct {
	dir string

	// lockPoll is the wait-loop interval of Ensure* when another process
	// holds the training lock (tests shorten it).
	lockPoll time.Duration
}

// NewModelStore opens (creating if needed) the artifact directory.
func NewModelStore(dir string) (*ModelStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("eval: artifact store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("eval: artifact store: %w", err)
	}
	return &ModelStore{dir: dir, lockPoll: 200 * time.Millisecond}, nil
}

// Dir returns the store's directory.
func (s *ModelStore) Dir() string { return s.dir }

// artifactKey derives the content key of one victim model: kind and
// architecture version name the network, and the SHA-256 of the preset's
// JSON encoding captures every training input (seed, dataset sizes,
// epochs). The readable prefix keeps the directory browsable; the hash
// carries the identity.
func artifactKey(kind string, arch int, p Preset) string {
	buf, err := json.Marshal(p)
	if err != nil {
		// Unreachable: Preset is a flat struct of strings and numbers.
		panic(err)
	}
	sum := sha256.Sum256(buf)
	return fmt.Sprintf("%s_v%d_%s_seed%d_%s.weights", kind, arch, p.Name, p.Seed, hex.EncodeToString(sum[:])[:16])
}

// DetectorKey names the detector artifact of a preset.
func (s *ModelStore) DetectorKey(p Preset) string {
	return artifactKey("det", detect.ArchVersion, p)
}

// RegressorKey names the regressor artifact of a preset.
func (s *ModelStore) RegressorKey(p Preset) string {
	return artifactKey("reg", regress.ArchVersion, p)
}

// load reads the artifact under key into params. A missing artifact is a
// cold miss (false, nil); a present-but-incompatible one is an error —
// the key scheme should have prevented it, so failing loudly beats
// silently retraining over a corrupt store.
func (s *ModelStore) load(key string, params []*nn.Param) (bool, error) {
	buf, err := os.ReadFile(filepath.Join(s.dir, key))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("eval: artifact %s: %w", key, err)
	}
	if err := nn.DecodeParams(buf, params); err != nil {
		return false, fmt.Errorf("eval: artifact %s: %w", key, err)
	}
	return true, nil
}

// save writes params under key atomically: encode, write a temp file in
// the same directory, rename into place. Concurrent savers of one key
// race benignly — both write identical bytes (the key pins the training
// inputs and training is deterministic) and rename is atomic.
func (s *ModelStore) save(key string, params []*nn.Param) error {
	buf, err := nn.EncodeParams(params)
	if err != nil {
		return fmt.Errorf("eval: artifact %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("eval: artifact %s: %w", key, err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close() //advlint:close-ok error-path cleanup; the write failure is returned
		os.Remove(tmp.Name())
		return fmt.Errorf("eval: artifact %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("eval: artifact %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("eval: artifact %s: %w", key, err)
	}
	return nil
}

// LoadDetector restores cached detector weights for the preset into d,
// reporting whether a warm artifact existed.
func (s *ModelStore) LoadDetector(d *detect.Detector, p Preset) (bool, error) {
	return s.load(s.DetectorKey(p), d.Net.Params())
}

// SaveDetector stores the trained detector weights under the preset key.
func (s *ModelStore) SaveDetector(d *detect.Detector, p Preset) error {
	return s.save(s.DetectorKey(p), d.Net.Params())
}

// LoadRegressor restores cached regressor weights for the preset into r,
// reporting whether a warm artifact existed.
func (s *ModelStore) LoadRegressor(r *regress.Regressor, p Preset) (bool, error) {
	return s.load(s.RegressorKey(p), r.Net.Params())
}

// SaveRegressor stores the trained regressor weights under the preset key.
func (s *ModelStore) SaveRegressor(r *regress.Regressor, p Preset) error {
	return s.save(s.RegressorKey(p), r.Net.Params())
}

// Cross-process training guard. Two workers sharing an artifact dir both
// see a cold miss for the same preset and both pay the training cost; the
// results are bit-identical (training is deterministic), so correctness
// never depended on exclusion — only wall-clock and CPU do. Ensure*
// serialise the work: the first process to create <key>.lock (O_EXCL,
// owner pid inside) trains and saves; everyone else polls until the
// artifact appears, then warm-starts. A lock whose owner pid is dead is
// stale and is stolen; a lock with an unreadable pid falls back to an age
// heuristic so a crashed-and-rebooted owner can't wedge the store forever.

const lockStaleAge = 10 * time.Minute

func (s *ModelStore) lockPath(key string) string {
	return filepath.Join(s.dir, key+".lock")
}

// acquireTrainLock attempts to create the lock file exclusively, writing
// the owner pid. Returns true if this process now holds the lock.
func (s *ModelStore) acquireTrainLock(key string) (bool, error) {
	f, err := os.OpenFile(s.lockPath(key), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if errors.Is(err, os.ErrExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("eval: train lock %s: %w", key, err)
	}
	_, werr := fmt.Fprintf(f, "%d\n", os.Getpid())
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(s.lockPath(key))
		return false, fmt.Errorf("eval: train lock %s: write failed", key)
	}
	return true, nil
}

func (s *ModelStore) releaseTrainLock(key string) {
	os.Remove(s.lockPath(key))
}

// lockIsStale reports whether the lock's owner is gone. The primary
// signal is the recorded pid: if that process no longer exists, the owner
// crashed without releasing and the lock is dead weight. Only when the
// pid can't be read (torn write, manual tampering) does the mtime age
// backstop apply — a live long-training owner keeps its lock no matter
// how long the epochs take.
func (s *ModelStore) lockIsStale(key string) bool {
	path := s.lockPath(key)
	buf, err := os.ReadFile(path)
	if err != nil {
		return false // gone already, or unreadable: let the caller re-poll
	}
	pid, perr := strconv.Atoi(strings.TrimSpace(string(buf)))
	if perr != nil || pid <= 0 {
		st, serr := os.Stat(path)
		return serr == nil && time.Since(st.ModTime()) > lockStaleAge
	}
	if pid == os.Getpid() {
		return false
	}
	proc, err := os.FindProcess(pid)
	if err != nil {
		return true // FindProcess only fails on unix if the pid is invalid
	}
	// Signal 0 probes existence without delivering anything. ESRCH means
	// the owner died; EPERM means it exists under another uid — alive.
	err = proc.Signal(syscall.Signal(0))
	return errors.Is(err, syscall.ESRCH) || errors.Is(err, os.ErrProcessDone)
}

// ensure makes the artifact under key exist and be loaded into params:
// warm-start if present, else train exactly once across every process
// polling this store. train must fill the networks behind params; logf
// (optional) narrates lock waits. The returned flag reports whether THIS
// process ran train (false: warm-started from another's artifact).
func (s *ModelStore) ensure(key string, params []*nn.Param, train func() error, logf func(string, ...any)) (bool, error) {
	say := func(format string, args ...any) {
		if logf != nil {
			logf(format, args...)
		}
	}
	poll := s.lockPoll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		if ok, err := s.load(key, params); err != nil {
			return false, err
		} else if ok {
			return false, nil
		}
		got, err := s.acquireTrainLock(key)
		if err != nil {
			return false, err
		}
		if got {
			// Double-check under the lock: the previous holder may have
			// saved between our load miss and our acquire.
			if ok, err := s.load(key, params); err != nil {
				s.releaseTrainLock(key)
				return false, err
			} else if ok {
				s.releaseTrainLock(key)
				return false, nil
			}
			if err := train(); err != nil {
				s.releaseTrainLock(key)
				return false, err
			}
			err := s.save(key, params)
			s.releaseTrainLock(key)
			return true, err
		}
		say("env: artifact %s is being trained by another process; waiting", key)
		for {
			time.Sleep(poll)
			if ok, err := s.load(key, params); err != nil {
				return false, err
			} else if ok {
				return false, nil
			}
			if _, err := os.Stat(s.lockPath(key)); errors.Is(err, os.ErrNotExist) {
				break // holder released (or died mid-train): re-contend
			}
			if s.lockIsStale(key) {
				say("env: stealing stale train lock %s (owner dead)", key)
				s.releaseTrainLock(key)
				break
			}
		}
	}
}

// EnsureDetector loads the preset's detector weights into d, training via
// train (which must leave d trained) if no process has produced them yet.
// Exactly one process trains per key; the rest wait and warm-start. The
// returned flag reports whether this process did the training.
func (s *ModelStore) EnsureDetector(d *detect.Detector, p Preset, train func() error, logf func(string, ...any)) (bool, error) {
	return s.ensure(s.DetectorKey(p), d.Net.Params(), train, logf)
}

// EnsureRegressor is EnsureDetector for the TTC regressor.
func (s *ModelStore) EnsureRegressor(r *regress.Regressor, p Preset, train func() error, logf func(string, ...any)) (bool, error) {
	return s.ensure(s.RegressorKey(p), r.Net.Params(), train, logf)
}
