package eval

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/pipeline"
)

// shortSweepConfig is a two-scenario grid with trimmed cell duration: big
// enough to span shards and exercise resume, cheap enough for -race.
func shortSweepConfig(t *testing.T, jsonl string) SweepConfig {
	t.Helper()
	gentle, ok := pipeline.FindScenario("gentle-brake")
	if !ok {
		t.Fatal("gentle-brake missing from registry")
	}
	cruise, ok := pipeline.FindScenario("highway-cruise")
	if !ok {
		t.Fatal("highway-cruise missing from registry")
	}
	e := sharedEnv(t)
	return SweepConfig{
		Matrix: MatrixConfig{
			Scenarios: []pipeline.Scenario{gentle, cruise},
			Attacks:   e.MatrixAttacks()[:2],  // None, CAP
			Defenses:  e.MatrixDefenses()[:2], // None, Median
			Duration:  0.8, DT: 0.1,
			BaseSeed: 4242,
		},
		JSONL:  jsonl,
		Resume: true,
	}
}

// TestSweepMatchesMatrix: a single-shard sweep must produce exactly the
// RunMatrix cells (same seeds, same order, bit-identical metrics).
func TestSweepMatchesMatrix(t *testing.T) {
	e := sharedEnv(t)
	cfg := shortSweepConfig(t, "")
	rep, err := e.RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := e.RunMatrix(cfg.Matrix)
	if rep.Total != len(want.Cells) || len(rep.Cells) != len(want.Cells) {
		t.Fatalf("sweep %d/%d cells vs matrix %d", len(rep.Cells), rep.Total, len(want.Cells))
	}
	if !reflect.DeepEqual(rep.Cells, want.Cells) {
		t.Fatal("single-shard sweep diverges from RunMatrix")
	}
	if rep.Matrix().CSV() != want.CSV() {
		t.Fatal("sweep CSV adapter diverges from matrix CSV")
	}
}

// TestSweepShardsPartitionGrid: the shards of an N-way sweep are disjoint,
// cover the grid, and agree cell-for-cell with the full matrix.
func TestSweepShardsPartitionGrid(t *testing.T) {
	e := sharedEnv(t)
	cfg := shortSweepConfig(t, "")
	want := e.RunMatrix(cfg.Matrix)

	const shards = 3
	seen := map[int]MatrixCell{}
	for s := 0; s < shards; s++ {
		c := cfg
		c.Shard, c.NumShards = s, shards
		rep, err := e.RunSweep(c)
		if err != nil {
			t.Fatal(err)
		}
		for k, idx := range rep.Indices {
			if idx%shards != s {
				t.Fatalf("shard %d got cell %d", s, idx)
			}
			if _, dup := seen[idx]; dup {
				t.Fatalf("cell %d assigned twice", idx)
			}
			seen[idx] = rep.Cells[k]
		}
	}
	if len(seen) != len(want.Cells) {
		t.Fatalf("shards cover %d cells, grid has %d", len(seen), len(want.Cells))
	}
	for idx, cell := range seen {
		if !reflect.DeepEqual(cell, want.Cells[idx]) {
			t.Fatalf("shard cell %d diverges from matrix", idx)
		}
	}
}

// TestSweepResume is the ISSUE's acceptance scenario: run a partial shard,
// "interrupt" it, then resume against the same checkpoint — the resumed
// run must execute only the missing cells and the assembled report must be
// bit-identical to an uninterrupted run. Runs at GOMAXPROCS=4 so the
// runner, the JSONL writer and the per-worker clones genuinely interleave
// (the -race CI job leans on this test).
func TestSweepResume(t *testing.T) {
	e := sharedEnv(t)
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	cfg := shortSweepConfig(t, full)

	uninterrupted, err := e.RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uninterrupted.Resumed != 0 {
		t.Fatalf("fresh run resumed %d cells", uninterrupted.Resumed)
	}

	// Simulate the interrupt: keep only the first 3 checkpoint lines, plus
	// a truncated tail record (a write cut off mid-line).
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(raw)
	if len(lines) != len(uninterrupted.Cells) {
		t.Fatalf("checkpoint has %d lines, want %d", len(lines), len(uninterrupted.Cells))
	}
	part := filepath.Join(dir, "part.jsonl")
	partial := append([]byte{}, lines[0]...)
	partial = append(partial, '\n')
	for _, l := range lines[1:3] {
		partial = append(partial, l...)
		partial = append(partial, '\n')
	}
	partial = append(partial, lines[3][:len(lines[3])/2]...) // torn write, no newline
	if err := os.WriteFile(part, partial, 0o644); err != nil {
		t.Fatal(err)
	}

	resumedCfg := cfg
	resumedCfg.JSONL = part
	resumed, err := e.RunSweep(resumedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != 3 {
		t.Fatalf("resumed %d cells, want 3", resumed.Resumed)
	}
	if !reflect.DeepEqual(resumed.Cells, uninterrupted.Cells) {
		t.Fatal("resumed sweep diverges from uninterrupted run")
	}
	if !reflect.DeepEqual(resumed.Indices, uninterrupted.Indices) {
		t.Fatal("resumed sweep index order diverges")
	}

	// The checkpoint must now be complete: resuming again runs nothing.
	again, err := e.RunSweep(resumedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Resumed != len(uninterrupted.Cells) {
		t.Fatalf("second resume re-ran cells: resumed %d of %d", again.Resumed, len(uninterrupted.Cells))
	}
	if !reflect.DeepEqual(again.Cells, uninterrupted.Cells) {
		t.Fatal("fully-resumed sweep diverges")
	}
}

// TestSweepChecksStaleCheckpoint: a checkpoint from a different grid
// (wrong seed) must fail loudly, not merge silently.
func TestSweepChecksStaleCheckpoint(t *testing.T) {
	e := sharedEnv(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "stale.jsonl")
	cfg := shortSweepConfig(t, path)

	rep, err := e.RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = rep

	stale := cfg
	stale.Matrix.BaseSeed = 999999 // different grid seeds
	if _, err := e.RunSweep(stale); err == nil {
		t.Fatal("stale checkpoint must be rejected")
	}

	// Same seeds but a different run configuration (duration/dt) would
	// silently merge incompatible trajectories; it must be rejected too.
	otherDur := cfg
	otherDur.Matrix.Duration = 5
	if _, err := e.RunSweep(otherDur); err == nil {
		t.Fatal("checkpoint from a different duration must be rejected")
	}

	// An out-of-grid index is rejected too.
	bad := sweepRecord{Index: 10_000, Seed: 1}
	buf, _ := json.Marshal(bad)
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunSweep(cfg); err == nil {
		t.Fatal("out-of-range cell index must be rejected")
	}
}

// TestSweepShardValidation rejects malformed shard specs.
func TestSweepShardValidation(t *testing.T) {
	e := sharedEnv(t)
	cfg := shortSweepConfig(t, "")
	cfg.Shard, cfg.NumShards = 3, 3
	if _, err := e.RunSweep(cfg); err == nil {
		t.Fatal("shard index == NumShards must be rejected")
	}
	cfg.Shard, cfg.NumShards = -1, 2
	if _, err := e.RunSweep(cfg); err == nil {
		t.Fatal("negative shard must be rejected")
	}
}

// TestJFloatRoundTrip pins the infinity-safe float encoding.
func TestJFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -3.25, math.Inf(1), math.Inf(-1)} {
		buf, err := json.Marshal(jfloat(v))
		if err != nil {
			t.Fatal(err)
		}
		var back jfloat
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatal(err)
		}
		if float64(back) != v {
			t.Fatalf("round trip %v -> %s -> %v", v, buf, float64(back))
		}
	}
	buf, _ := json.Marshal(jfloat(math.NaN()))
	var back jfloat
	if err := json.Unmarshal(buf, &back); err != nil || !math.IsNaN(float64(back)) {
		t.Fatalf("NaN round trip: %s err %v", buf, err)
	}
}

// splitLines splits on '\n', dropping a trailing empty slice.
func splitLines(b []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, c := range b {
		if c == '\n' {
			lines = append(lines, b[start:i])
			start = i + 1
		}
	}
	if start < len(b) {
		lines = append(lines, b[start:])
	}
	return lines
}
