package eval

// This file implements the sharded sweep runtime: the scenario × attack ×
// defense grid split into deterministic shards, streaming per-cell results
// as JSONL with checkpoint/resume. A sweep over N shards runs the same
// grid as one RunMatrix call — cell seeds derive from the global grid
// index, so the decomposition never changes the numbers — and an
// interrupted shard restarts by replaying its checkpoint and executing
// only missing cells. The JSONL writer is an Observer: it subscribes to
// the same cell-finished events any other sink can.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/regress"
	"repro/internal/sim"
)

// SweepConfig declares one shard of a sweep over the evaluation grid.
type SweepConfig struct {
	Matrix MatrixConfig

	// Shard/NumShards select the cells this process runs: cell i belongs
	// to shard i mod NumShards (round-robin, which balances scenarios of
	// different cost across shards). NumShards 0 means 1.
	Shard     int
	NumShards int

	// JSONL is the checkpoint stream: every finished cell is appended as
	// one JSON line. Empty disables checkpointing.
	JSONL string
	// Resume replays JSONL before running and executes only the shard's
	// missing cells. The checkpoint is validated against the expanded grid
	// (index, seed and axis names must match), so a stale file from a
	// different grid fails loudly instead of silently merging.
	Resume bool
}

// PaperSweepConfig returns the paper-preset sweep shard: the full scenario
// registry against the default attack and defense axes with a fixed base
// seed, so shards executed on different machines (or re-run after an
// interrupt) always assemble into the same grid.
func PaperSweepConfig(shard, numShards int, jsonl string) SweepConfig {
	return SweepConfig{
		Matrix:    MatrixConfig{BaseSeed: 424243},
		Shard:     shard,
		NumShards: numShards,
		JSONL:     jsonl,
		Resume:    true,
	}
}

// SweepReport is one shard's slice of the grid, ordered by global index.
type SweepReport struct {
	Preset    string
	Total     int // full grid size
	Shard     int
	NumShards int

	Indices []int        // global grid indices this shard covers
	Cells   []MatrixCell // aligned with Indices
	Resumed int          // cells loaded from the checkpoint instead of run
}

// Matrix adapts the shard's cells to MatrixReport for formatting.
func (r SweepReport) Matrix() MatrixReport {
	return MatrixReport{Preset: r.Preset, Cells: r.Cells}
}

// sweepRecord is the JSONL line schema. Preset, Duration and DT pin the
// run configuration that produced the cell, so a resume under a different
// configuration is rejected instead of silently merging incompatible
// trajectories (cell index/seed/axis names alone can collide across
// configs — -paper-sweep even fixes the base seed by design).
type sweepRecord struct {
	Index    int       `json:"index"`
	Seed     int64     `json:"seed"`
	Preset   string    `json:"preset"`
	Duration float64   `json:"duration"`
	DT       float64   `json:"dt"`
	Cell     sweepCell `json:"cell"`
}

// jfloat is a float64 whose JSON round-trips IEEE infinities (MinTTC is
// +Inf whenever the gap never closes, which encoding/json rejects).
type jfloat float64

// MarshalJSON implements json.Marshaler.
func (f jfloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *jfloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"+Inf"`:
		*f = jfloat(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = jfloat(math.Inf(-1))
		return nil
	case `"NaN"`:
		*f = jfloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jfloat(v)
	return nil
}

// sweepCell mirrors MatrixCell with infinity-safe floats.
type sweepCell struct {
	Scenario string `json:"scenario"`
	Attack   string `json:"attack"`
	Defense  string `json:"defense"`
	Seed     int64  `json:"seed"`

	Collision  bool   `json:"collision"`
	MinGap     jfloat `json:"min_gap_m"`
	MinTTC     jfloat `json:"min_ttc_s"`
	MeanGapErr jfloat `json:"mean_gap_err_m"`
	Steps      int    `json:"steps"`

	Result sweepResult `json:"result"`
}

// sweepResult mirrors sim.Result.
type sweepResult struct {
	Times         []float64 `json:"times"`
	TrueGaps      []float64 `json:"true_gaps"`
	PerceivedGaps []float64 `json:"perceived_gaps"`
	EgoSpeeds     []float64 `json:"ego_speeds"`
	LeadSpeeds    []float64 `json:"lead_speeds"`
	MinGap        jfloat    `json:"min_gap"`
	MinTTC        jfloat    `json:"min_ttc"`
	Collision     bool      `json:"collision"`
}

func toSweepCell(c MatrixCell) sweepCell {
	return sweepCell{
		Scenario: c.Scenario, Attack: c.Attack, Defense: c.Defense, Seed: c.Seed,
		Collision: c.Collision, MinGap: jfloat(c.MinGap), MinTTC: jfloat(c.MinTTC),
		MeanGapErr: jfloat(c.MeanGapErr), Steps: c.Steps,
		Result: sweepResult{
			Times: c.Result.Times, TrueGaps: c.Result.TrueGaps,
			PerceivedGaps: c.Result.PerceivedGaps, EgoSpeeds: c.Result.EgoSpeeds,
			LeadSpeeds: c.Result.LeadSpeeds,
			MinGap:     jfloat(c.Result.MinGap), MinTTC: jfloat(c.Result.MinTTC),
			Collision: c.Result.Collision,
		},
	}
}

// SweepRecord is the exported view of one JSONL checkpoint line: a
// finished grid cell plus the run configuration that produced it. The
// fleet dispatcher and the serving layer move these records between
// machines; Marshal/Unmarshal reproduce exactly the bytes the in-process
// checkpoint writer streams, so a record received over the wire and
// appended to a local checkpoint file is indistinguishable from one the
// worker wrote itself.
type SweepRecord struct {
	Index    int
	Seed     int64
	Preset   string
	Duration float64
	DT       float64
	Cell     MatrixCell
}

// MarshalJSON implements json.Marshaler with the checkpoint line schema.
func (r SweepRecord) MarshalJSON() ([]byte, error) {
	return json.Marshal(sweepRecord{
		Index: r.Index, Seed: r.Seed, Preset: r.Preset,
		Duration: r.Duration, DT: r.DT, Cell: toSweepCell(r.Cell),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *SweepRecord) UnmarshalJSON(b []byte) error {
	var rec sweepRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return err
	}
	*r = SweepRecord{
		Index: rec.Index, Seed: rec.Seed, Preset: rec.Preset,
		Duration: rec.Duration, DT: rec.DT, Cell: fromSweepCell(rec.Cell),
	}
	return nil
}

// Validate checks the record against a grid identity and run
// configuration — the per-record check checkpoint resume and shard merge
// apply: the index must lie inside the grid, the run configuration must
// match, and the cell's seed and axis names must equal the grid's.
func (r SweepRecord) Validate(ids []CellID, preset string, duration, dt float64) error {
	if r.Index < 0 || r.Index >= len(ids) {
		return fmt.Errorf("cell index %d outside grid of %d", r.Index, len(ids))
	}
	if r.Preset != preset || r.Duration != duration || r.DT != dt {
		return fmt.Errorf("written under preset=%s duration=%v dt=%v, expected preset=%s duration=%v dt=%v — stale checkpoint?",
			r.Preset, r.Duration, r.DT, preset, duration, dt)
	}
	id := ids[r.Index]
	if r.Seed != id.Seed || r.Cell.Scenario != id.Scenario ||
		r.Cell.Attack != id.Attack || r.Cell.Defense != id.Defense {
		return fmt.Errorf("cell %d (%s/%s/%s seed %d) does not match the configured grid (%s/%s/%s seed %d) — stale checkpoint?",
			r.Index, r.Cell.Scenario, r.Cell.Attack, r.Cell.Defense, r.Seed,
			id.Scenario, id.Attack, id.Defense, id.Seed)
	}
	return nil
}

func fromSweepCell(c sweepCell) MatrixCell {
	return MatrixCell{
		Scenario: c.Scenario, Attack: c.Attack, Defense: c.Defense, Seed: c.Seed,
		Collision: c.Collision, MinGap: float64(c.MinGap), MinTTC: float64(c.MinTTC),
		MeanGapErr: float64(c.MeanGapErr), Steps: c.Steps,
		Result: sim.Result{
			Times: c.Result.Times, TrueGaps: c.Result.TrueGaps,
			PerceivedGaps: c.Result.PerceivedGaps, EgoSpeeds: c.Result.EgoSpeeds,
			LeadSpeeds: c.Result.LeadSpeeds,
			MinGap:     float64(c.Result.MinGap), MinTTC: float64(c.Result.MinTTC),
			Collision: c.Result.Collision,
		},
	}
}

// jsonlWriter streams finished cells to the checkpoint file as an
// Observer: every EventCellDone appends one validated, flushed JSONL
// record. Observe is called from multiple workers; the mutex serialises
// the stream and the first write error is retained for the runner.
type jsonlWriter struct {
	preset   string
	duration float64
	dt       float64

	mu    sync.Mutex
	enc   *json.Encoder
	flush func() error
	err   error
}

// Observe implements Observer.
func (j *jsonlWriter) Observe(ev Event) {
	if ev.Kind != EventCellDone || ev.Result == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	// Stream in completion order; the report reorders by index.
	err := j.enc.Encode(sweepRecord{
		Index: ev.Cell.Index, Seed: ev.Cell.Seed, Preset: j.preset,
		Duration: j.duration, DT: j.dt,
		Cell: toSweepCell(*ev.Result),
	})
	if err == nil {
		err = j.flush()
	}
	if err != nil && j.err == nil {
		j.err = err
	}
}

// RunSweep executes this shard of the grid, streaming each finished cell
// to the JSONL checkpoint and (with Resume) skipping cells the checkpoint
// already holds. The returned report's cells are ordered by global grid
// index and are bit-identical to the corresponding RunMatrix cells — an
// interrupted-and-resumed shard produces exactly the cells of an
// uninterrupted run.
func (e *Env) RunSweep(cfg SweepConfig) (SweepReport, error) {
	return e.RunSweepCtx(context.Background(), cfg)
}

// RunSweepCtx is RunSweep under a cancellation context and the config's
// Observer (cfg.Matrix.Observer). A cancelled context stops dispatching
// cells promptly and returns the context error; every cell finished before
// the cancellation is already flushed to the JSONL checkpoint, so a
// -resume run completes exactly the missing remainder.
func (e *Env) RunSweepCtx(ctx context.Context, cfg SweepConfig) (SweepReport, error) {
	numShards := cfg.NumShards
	if numShards <= 0 {
		numShards = 1
	}
	if cfg.Shard < 0 || cfg.Shard >= numShards {
		return SweepReport{}, fmt.Errorf("sweep: shard %d out of range 0..%d", cfg.Shard, numShards-1)
	}

	specs := e.expandGrid(cfg.Matrix)
	ids := make([]CellID, len(specs))
	for i, s := range specs {
		ids[i] = s.id
	}
	rep := SweepReport{
		Preset: e.Preset.Name, Total: len(specs),
		Shard: cfg.Shard, NumShards: numShards,
	}

	// This shard's cells, round-robin over the global index.
	var mine []cellSpec
	for _, s := range specs {
		if s.id.Index%numShards == cfg.Shard {
			mine = append(mine, s)
		}
	}

	done := map[int]MatrixCell{}
	validLen := int64(0)
	if cfg.Resume && cfg.JSONL != "" {
		var err error
		done, validLen, err = LoadSweepCheckpoint(cfg.JSONL, ids, e.Preset.Name, cfg.Matrix.Duration, cfg.Matrix.DT)
		if err != nil {
			return SweepReport{}, err
		}
	}

	var todo []cellSpec
	for _, s := range mine {
		if _, ok := done[s.id.Index]; !ok {
			todo = append(todo, s)
		}
	}

	obs := cfg.Matrix.Observer
	emit(obs, Event{Kind: EventRunStart, Total: len(specs)})
	// finish closes the checkpoint file (set below when a JSONL lane is
	// open) before emitting run-done: a failed close is a failed write
	// of the lane's tail, and must fail the run, not vanish.
	var ckpt *os.File
	finish := func(err error) error {
		if ckpt != nil {
			cerr := ckpt.Close()
			ckpt = nil
			if cerr != nil && err == nil {
				err = fmt.Errorf("sweep: close checkpoint: %w", cerr)
			}
		}
		emit(obs, Event{Kind: EventRunDone, Total: len(specs), Err: err})
		return err
	}
	if err := ctx.Err(); err != nil {
		return SweepReport{}, finish(err)
	}
	e.warmDefenses(todo)

	var sink *jsonlWriter
	if cfg.JSONL != "" && len(todo) > 0 {
		if cfg.Resume {
			// Repair a torn tail (a record cut off by the interrupt this
			// resume recovers from): drop everything past the last complete
			// line so appended records start on a fresh line.
			if st, err := os.Stat(cfg.JSONL); err == nil && st.Size() > validLen {
				if err := os.Truncate(cfg.JSONL, validLen); err != nil {
					return SweepReport{}, finish(fmt.Errorf("sweep: repair checkpoint tail: %w", err))
				}
			}
		}
		mode := os.O_CREATE | os.O_WRONLY | os.O_APPEND
		if !cfg.Resume {
			mode |= os.O_TRUNC // fresh run: never mix grids in one stream
		}
		f, err := os.OpenFile(cfg.JSONL, mode, 0o644)
		if err != nil {
			return SweepReport{}, finish(fmt.Errorf("sweep: open checkpoint: %w", err))
		}
		ckpt = f // closed by finish on every exit path
		w := bufio.NewWriter(f)
		sink = &jsonlWriter{
			preset: e.Preset.Name, duration: cfg.Matrix.Duration, dt: cfg.Matrix.DT,
			enc: json.NewEncoder(w), flush: w.Flush,
		}
	}
	// The checkpoint writer and the caller's observer subscribe to the
	// same cell event stream.
	cellObs := obs
	if sink != nil {
		cellObs = MultiObserver(sink, obs)
	}

	fresh := make([]MatrixCell, len(todo))
	workers := make([]*regress.Regressor, e.maxWorkers(len(todo)))
	for i := range workers {
		workers[i] = e.Reg.Clone()
	}
	var nDone atomic.Int64
	runErr := parallelMapCtx(ctx, len(workers), len(todo), func(w, k int) {
		s := todo[k]
		emit(cellObs, Event{Kind: EventCellStart, Total: len(specs), Cell: s.id})
		cell := e.runMatrixCell(workers[w], s.scenario, s.attack, s.defense, cfg.Matrix, s.id.Seed)
		fresh[k] = cell
		emit(cellObs, Event{Kind: EventCellDone, Total: len(specs), Done: int(nDone.Add(1)), Cell: s.id, Result: &fresh[k]})
		e.logObs(obs, "sweep: shard %d/%d cell %d (%s / %s / %s) done",
			cfg.Shard, numShards, s.id.Index, s.scenario.Name, s.attack.Name, s.defense.Name)
	})
	if sink != nil && sink.err != nil {
		return SweepReport{}, finish(fmt.Errorf("sweep: checkpoint write: %w", sink.err))
	}
	if runErr != nil {
		// Cancelled: cells finished so far are flushed to the checkpoint,
		// so a Resume run picks up exactly the missing remainder.
		return SweepReport{}, finish(runErr)
	}

	// Assemble the shard slice in global-index order.
	next := 0
	for _, s := range mine {
		cell, ok := done[s.id.Index]
		if ok {
			rep.Resumed++
		} else {
			cell = fresh[next]
			next++
		}
		rep.Indices = append(rep.Indices, s.id.Index)
		rep.Cells = append(rep.Cells, cell)
	}
	return rep, finish(nil)
}

// LoadSweepCheckpoint replays a JSONL stream, validating every record
// against the grid identity. It returns the recovered cells and the byte
// length of the stream's valid prefix: a truncated trailing line (a write
// cut off by the interrupt the resume is recovering from) is tolerated and
// excluded from the prefix, so the caller can repair the tail before
// appending; any other malformed or mismatching record is an error. A
// missing file is an empty resume state, not an error. Besides the sweep
// runtime's own resume, the fleet dispatcher uses this to follow worker
// checkpoints, recover crashed dispatch sessions, and probe lane files
// before the final merge.
func LoadSweepCheckpoint(path string, ids []CellID, preset string, duration, dt float64) (map[int]MatrixCell, int64, error) {
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return map[int]MatrixCell{}, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("sweep: open checkpoint: %w", err)
	}
	return loadSweepCheckpointBuf(buf, path, ids, preset, duration, dt)
}

// LoadSweepCheckpointBytes is LoadSweepCheckpoint over an in-memory
// stream: the same validation and torn-tail tolerance, applied to
// checkpoint bytes fetched from somewhere other than a local file — a
// mirror tree, an object-store segment, a wire payload. This is what lets
// checkpoint transports validate remote lane content before merging it
// into local state.
func LoadSweepCheckpointBytes(buf []byte, ids []CellID, preset string, duration, dt float64) (map[int]MatrixCell, int64, error) {
	return loadSweepCheckpointBuf(buf, "stream", ids, preset, duration, dt)
}

func loadSweepCheckpointBuf(buf []byte, name string, ids []CellID, preset string, duration, dt float64) (map[int]MatrixCell, int64, error) {
	done := map[int]MatrixCell{}
	validLen := int64(0)
	lineNo := 0
	for start := 0; start < len(buf); {
		end := start
		for end < len(buf) && buf[end] != '\n' {
			end++
		}
		line := buf[start:end]
		terminated := end < len(buf)
		lineNo++

		if len(line) > 0 {
			var rec SweepRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				if !terminated {
					// Torn tail: the interrupt cut this write short. Stop
					// here; the valid prefix ends at the previous line.
					break
				}
				return nil, 0, fmt.Errorf("sweep: checkpoint %s line %d: %w", name, lineNo, err)
			}
			if err := rec.Validate(ids, preset, duration, dt); err != nil {
				return nil, 0, fmt.Errorf("sweep: checkpoint %s line %d: %w", name, lineNo, err)
			}
			if terminated {
				// An unterminated record — even one that parses — is not
				// counted done: the truncation repair drops it, and the
				// resumed run re-executes and re-streams that cell.
				done[rec.Index] = rec.Cell
			}
		}

		if !terminated {
			break
		}
		start = end + 1
		validLen = int64(start)
	}
	return done, validLen, nil
}
