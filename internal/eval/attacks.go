package eval

import (
	"fmt"
	"sort"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/imaging"
	"repro/internal/regress"
	"repro/internal/xrand"
)

// Kind names one attack in the harness. The paper pairs CAP (regression)
// with RP2 (detection) in a single "CAP/RP2" table column; the harness
// keeps them distinct and the report layer merges them.
type Kind string

// Attack kinds.
const (
	KindNone     Kind = "None"
	KindGaussian Kind = "Gaussian"
	KindFGSM     Kind = "FGSM"
	KindAPGD     Kind = "Auto-PGD"
	KindSimBA    Kind = "SimBA"
	KindRP2      Kind = "RP2"
	KindCAP      Kind = "CAP-Attack"
)

// DetectionKinds are the attacks evaluated against the stop-sign detector
// (Fig. 2 order).
var DetectionKinds = []Kind{KindNone, KindFGSM, KindAPGD, KindRP2, KindGaussian, KindSimBA}

// RegressionKinds are the attacks evaluated against the distance regressor
// (Table I order).
var RegressionKinds = []Kind{KindGaussian, KindFGSM, KindAPGD, KindCAP}

// AttackSignSet returns attacked copies of every image in a sign set,
// against the given (possibly hardened) detector. Attacks run in parallel
// over images with per-worker model clones.
func (e *Env) AttackSignSet(det *detect.Detector, set *dataset.SignSet, kind Kind, seed int64) []*imaging.Image {
	out := make([]*imaging.Image, set.Len())
	if kind == KindNone {
		for i, sc := range set.Scenes {
			out[i] = sc.Img.Clone()
		}
		return out
	}

	workers := make([]*detect.Detector, maxWorkers(set.Len()))
	for i := range workers {
		workers[i] = det.Clone()
	}
	b := e.Budgets
	p := e.Preset

	parallelMap(set.Len(), func(w, i int) {
		sc := set.Scenes[i]
		d := workers[w]
		obj := &attack.DetectionObjective{Det: d, GT: detect.GTBoxes(sc)}
		rng := xrand.New(seed + int64(i)*1009)
		switch kind {
		case KindGaussian:
			out[i] = attack.Gaussian(rng, sc.Img, b.DetGaussianSigma, nil)
		case KindFGSM:
			out[i] = attack.FGSM(obj, sc.Img, b.DetFGSMEps, nil)
		case KindAPGD:
			cfg := attack.DefaultAPGDConfig(b.DetAPGDEps)
			cfg.Steps = p.APGDSteps
			out[i] = attack.AutoPGD(obj, sc.Img, cfg, nil)
		case KindSimBA:
			cfg := attack.DefaultSimBAConfig()
			cfg.Eps = b.DetSimBAEps
			cfg.Steps = p.SimBASteps
			cfg.Seed = seed + int64(i)
			out[i] = attack.SimBA(obj, sc.Img, cfg, nil)
		case KindRP2:
			if !sc.HasSign {
				out[i] = sc.Img.Clone()
				return
			}
			cfg := attack.DefaultRP2Config()
			cfg.Iters = p.RP2Iters
			cfg.Seed = seed + int64(i)
			out[i] = attack.RP2(obj, sc.Img, sc.Box, cfg)
		default:
			panic(fmt.Sprintf("eval: attack %q not applicable to detection", kind))
		}
	})
	return out
}

// AttackDriveSet returns attacked copies of every frame in a driving set,
// against the given regressor. Per the paper's protocol, perturbations are
// confined to the lead-vehicle region. CAP runs sequentially over frames
// ordered by decreasing distance (an approach sequence) so its warm-started
// patch inheritance is exercised; the other attacks parallelise per frame.
func (e *Env) AttackDriveSet(reg *regress.Regressor, set *dataset.DriveSet, kind Kind, seed int64) []*imaging.Image {
	out := make([]*imaging.Image, set.Len())
	if kind == KindNone {
		for i, sc := range set.Scenes {
			out[i] = sc.Img.Clone()
		}
		return out
	}
	b := e.Budgets
	p := e.Preset

	if kind == KindCAP {
		// Approach order: farthest first, as a camera would see a slow
		// lead being caught up to.
		order := make([]int, set.Len())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, bI int) bool {
			return set.Scenes[order[a]].Distance > set.Scenes[order[bI]].Distance
		})
		capAtt := attack.NewCAP(capConfig(b))
		obj := &attack.RegressionObjective{Reg: reg}
		for _, i := range order {
			sc := set.Scenes[i]
			out[i] = capAtt.Apply(obj, sc.Img, sc.LeadBox)
		}
		return out
	}

	workers := make([]*regress.Regressor, maxWorkers(set.Len()))
	for i := range workers {
		workers[i] = reg.Clone()
	}
	parallelMap(set.Len(), func(w, i int) {
		sc := set.Scenes[i]
		r := workers[w]
		obj := &attack.RegressionObjective{Reg: r}
		mask := attack.BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
		rng := xrand.New(seed + int64(i)*2003)
		switch kind {
		case KindGaussian:
			out[i] = attack.Gaussian(rng, sc.Img, b.RegGaussianSigma, mask)
		case KindFGSM:
			out[i] = attack.FGSM(obj, sc.Img, b.RegFGSMEps, mask)
		case KindAPGD:
			cfg := attack.DefaultAPGDConfig(b.RegAPGDEps)
			cfg.Steps = p.APGDSteps
			out[i] = attack.AutoPGD(obj, sc.Img, cfg, mask)
		default:
			panic(fmt.Sprintf("eval: attack %q not applicable to regression", kind))
		}
	})
	return out
}

func capConfig(b AttackBudgets) attack.CAPConfig {
	cfg := attack.DefaultCAPConfig()
	cfg.Eps = b.RegCAPEps
	return cfg
}
