package eval

import (
	"fmt"
	"sort"

	"repro/internal/attack"
	"repro/internal/box"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/imaging"
	"repro/internal/regress"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Kind names one attack in the harness. The paper pairs CAP (regression)
// with RP2 (detection) in a single "CAP/RP2" table column; the harness
// keeps them distinct and the report layer merges them.
type Kind string

// Attack kinds.
const (
	KindNone     Kind = "None"
	KindGaussian Kind = "Gaussian"
	KindFGSM     Kind = "FGSM"
	KindAPGD     Kind = "Auto-PGD"
	KindSimBA    Kind = "SimBA"
	KindRP2      Kind = "RP2"
	KindCAP      Kind = "CAP-Attack"
)

// DetectionKinds are the attacks evaluated against the stop-sign detector
// (Fig. 2 order).
var DetectionKinds = []Kind{KindNone, KindFGSM, KindAPGD, KindRP2, KindGaussian, KindSimBA}

// RegressionKinds are the attacks evaluated against the distance regressor
// (Table I order).
var RegressionKinds = []Kind{KindGaussian, KindFGSM, KindAPGD, KindCAP}

// AttackSignSet returns attacked copies of every image in a sign set,
// against the given (possibly hardened) detector. FGSM and Auto-PGD run
// batched — BatchSize frames per fused forward/backward, blocks in
// parallel over per-worker model clones, frame-for-frame bit-identical to
// the per-frame attacks; the query- and rng-driven attacks parallelise per
// frame as before.
func (e *Env) AttackSignSet(det *detect.Detector, set *dataset.SignSet, kind Kind, seed int64) []*imaging.Image {
	out := make([]*imaging.Image, set.Len())
	if kind == KindNone {
		for i, sc := range set.Scenes {
			out[i] = sc.Img.Clone()
		}
		return out
	}
	if kind == KindFGSM || kind == KindAPGD {
		return e.attackSignSetBatched(det, set, kind)
	}

	workers := make([]*detect.Detector, e.maxWorkers(set.Len()))
	for i := range workers {
		workers[i] = det.Clone()
	}
	b := e.Budgets
	p := e.Preset

	parallelMap(len(workers), set.Len(), func(w, i int) {
		sc := set.Scenes[i]
		d := workers[w]
		obj := &attack.DetectionObjective{Det: d, GT: detect.GTBoxes(sc)}
		rng := xrand.New(seed + int64(i)*1009)
		switch kind {
		case KindGaussian:
			out[i] = attack.Gaussian(rng, sc.Img, b.DetGaussianSigma, nil)
		case KindSimBA:
			cfg := attack.DefaultSimBAConfig()
			cfg.Eps = b.DetSimBAEps
			cfg.Steps = p.SimBASteps
			cfg.Seed = seed + int64(i)
			out[i] = attack.SimBA(obj, sc.Img, cfg, nil)
		case KindRP2:
			if !sc.HasSign {
				out[i] = sc.Img.Clone()
				return
			}
			cfg := attack.DefaultRP2Config()
			cfg.Iters = p.RP2Iters
			cfg.Seed = seed + int64(i)
			out[i] = attack.RP2(obj, sc.Img, sc.Box, cfg)
		default:
			panic(fmt.Sprintf("eval: attack %q not applicable to detection", kind))
		}
	})
	return out
}

// attackSignSetBatched runs the gradient attacks in BatchSize blocks, each
// block one fused forward/backward per attack step.
func (e *Env) attackSignSetBatched(det *detect.Detector, set *dataset.SignSet, kind Kind) []*imaging.Image {
	n := set.Len()
	out := make([]*imaging.Image, n)
	b := e.Budgets
	p := e.Preset
	blocks := (n + detect.BatchSize - 1) / detect.BatchSize
	workers := make([]*detect.Detector, e.maxWorkers(blocks))
	for i := range workers {
		workers[i] = det.Clone()
	}
	parallelMap(len(workers), blocks, func(w, bi int) {
		lo, hi := blockRange(bi, detect.BatchSize, n)
		imgs := make([]*imaging.Image, hi-lo)
		gts := make([][]box.Box, hi-lo)
		for i := lo; i < hi; i++ {
			imgs[i-lo] = set.Scenes[i].Img
			gts[i-lo] = detect.GTBoxes(set.Scenes[i])
		}
		obj := &attack.DetectionSetObjective{Det: workers[w], GTs: gts}
		switch kind {
		case KindFGSM:
			dst := make([]*imaging.Image, hi-lo)
			for i := range dst {
				dst[i] = imaging.NewImage(imgs[i].C, imgs[i].H, imgs[i].W)
			}
			attack.FGSMBatch(dst, obj, imgs, b.DetFGSMEps, nil)
			copy(out[lo:hi], dst)
		case KindAPGD:
			cfg := attack.DefaultAPGDConfig(b.DetAPGDEps)
			cfg.Steps = p.APGDSteps
			copy(out[lo:hi], attack.AutoPGDBatch(obj, imgs, cfg, nil))
		}
	})
	return out
}

// AttackDriveSet returns attacked copies of every frame in a driving set,
// against the given regressor. Per the paper's protocol, perturbations are
// confined to the lead-vehicle region. CAP runs sequentially over frames
// ordered by decreasing distance (an approach sequence) so its warm-started
// patch inheritance is exercised; FGSM and Auto-PGD run batched (BatchSize
// frames per fused forward/backward, blocks in parallel, bit-identical per
// frame); Gaussian parallelises per frame.
func (e *Env) AttackDriveSet(reg *regress.Regressor, set *dataset.DriveSet, kind Kind, seed int64) []*imaging.Image {
	out := make([]*imaging.Image, set.Len())
	if kind == KindNone {
		for i, sc := range set.Scenes {
			out[i] = sc.Img.Clone()
		}
		return out
	}
	if kind == KindFGSM || kind == KindAPGD {
		return e.attackDriveSetBatched(reg, set, kind)
	}
	b := e.Budgets

	if kind == KindCAP {
		// Approach order: farthest first, as a camera would see a slow
		// lead being caught up to.
		order := make([]int, set.Len())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, bI int) bool {
			return set.Scenes[order[a]].Distance > set.Scenes[order[bI]].Distance
		})
		capAtt := attack.NewCAP(capConfig(b))
		obj := &attack.RegressionObjective{Reg: reg}
		for _, i := range order {
			sc := set.Scenes[i]
			out[i] = capAtt.Apply(obj, sc.Img, sc.LeadBox)
		}
		return out
	}

	parallelMap(e.maxWorkers(set.Len()), set.Len(), func(_, i int) {
		sc := set.Scenes[i]
		mask := attack.BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
		rng := xrand.New(seed + int64(i)*2003)
		switch kind {
		case KindGaussian:
			out[i] = attack.Gaussian(rng, sc.Img, b.RegGaussianSigma, mask)
		default:
			panic(fmt.Sprintf("eval: attack %q not applicable to regression", kind))
		}
	})
	return out
}

// attackDriveSetBatched runs the gradient attacks in BatchSize blocks, each
// block one fused forward/backward per attack step, with per-frame
// lead-vehicle masks.
func (e *Env) attackDriveSetBatched(reg *regress.Regressor, set *dataset.DriveSet, kind Kind) []*imaging.Image {
	n := set.Len()
	out := make([]*imaging.Image, n)
	b := e.Budgets
	p := e.Preset
	blocks := (n + regress.BatchSize - 1) / regress.BatchSize
	workers := make([]*regress.Regressor, e.maxWorkers(blocks))
	for i := range workers {
		workers[i] = reg.Clone()
	}
	parallelMap(len(workers), blocks, func(w, bi int) {
		lo, hi := blockRange(bi, regress.BatchSize, n)
		imgs := make([]*imaging.Image, hi-lo)
		masks := make([]*tensor.Tensor, hi-lo)
		for i := lo; i < hi; i++ {
			sc := set.Scenes[i]
			imgs[i-lo] = sc.Img
			masks[i-lo] = attack.BoxMask(sc.Img.C, sc.Img.H, sc.Img.W, sc.LeadBox, 1)
		}
		obj := &attack.RegressionObjective{Reg: workers[w]}
		switch kind {
		case KindFGSM:
			dst := make([]*imaging.Image, hi-lo)
			for i := range dst {
				dst[i] = imaging.NewImage(imgs[i].C, imgs[i].H, imgs[i].W)
			}
			attack.FGSMBatch(dst, obj, imgs, b.RegFGSMEps, masks)
			copy(out[lo:hi], dst)
		case KindAPGD:
			cfg := attack.DefaultAPGDConfig(b.RegAPGDEps)
			cfg.Steps = p.APGDSteps
			copy(out[lo:hi], attack.AutoPGDBatch(obj, imgs, cfg, masks))
		}
	})
	return out
}

func capConfig(b AttackBudgets) attack.CAPConfig {
	cfg := attack.DefaultCAPConfig()
	cfg.Eps = b.RegCAPEps
	return cfg
}
