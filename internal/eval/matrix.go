package eval

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/attack"
	"repro/internal/box"
	"repro/internal/defense"
	"repro/internal/imaging"
	"repro/internal/pipeline"
	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// AttackSpec is one column of the matrix's attack axis: a name and a
// factory that builds a fresh runtime attacker for one cell. Attackers are
// built per cell because they may be stateful (CAP inherits its patch
// between frames) and must not be shared across concurrently running
// cells. A nil New is the clean baseline.
type AttackSpec struct {
	Name string
	New  func(e *Env, reg *regress.Regressor, seed int64) pipeline.Attacker
}

// DefenseSpec is one column of the matrix's defense axis; like AttackSpec
// it is a per-cell factory because defenses may be stateful (Randomization
// advances an RNG per image) or hold models whose forward caches are not
// safe to share across goroutines (DiffPIR's UNet). A nil New runs the
// pipeline undefended.
type DefenseSpec struct {
	Name string
	New  func(e *Env, seed int64) defense.Preprocessor
}

// runtimeFGSMEps is the per-frame FGSM budget of the closed-loop threat
// model: like the CAP runtime budget it is visible-but-stealthy rather
// than the Table I calibration value.
const runtimeFGSMEps = 0.08

// RuntimeCAP returns the stateful closed-loop CAP attacker of the default
// matrix axis: a warm-started adversarial patch with the runtime budget,
// attacking through its own regressor clone.
func RuntimeCAP(e *Env, reg *regress.Regressor, seed int64) pipeline.Attacker {
	cfg := capConfig(e.Budgets)
	cfg.Eps = 0.12
	c := attack.NewCAP(cfg)
	obj := &attack.RegressionObjective{Reg: reg.Clone()}
	return pipeline.AttackerFunc(func(img *imaging.Image, leadBox box.Box) *imaging.Image {
		return c.Apply(obj, img, leadBox)
	})
}

// RuntimeFGSM returns a per-frame FGSM attacker confined to the
// lead-vehicle box, attacking through its own regressor clone. The mask and
// output frame are closure-held buffers reused across frames: the pipeline
// consumes each attacked frame before requesting the next, so one
// destination suffices and the 20 Hz loop allocates nothing per frame.
func RuntimeFGSM(e *Env, reg *regress.Regressor, seed int64) pipeline.Attacker {
	obj := &attack.RegressionObjective{Reg: reg.Clone()}
	var mask *tensor.Tensor
	var out *imaging.Image
	return pipeline.AttackerFunc(func(img *imaging.Image, leadBox box.Box) *imaging.Image {
		lb := leadBox.Clip(float64(img.W), float64(img.H))
		if lb.Empty() || lb.W() < 1 || lb.H() < 1 {
			return img.Clone()
		}
		if mask == nil || !mask.ShapeEq(img.C, img.H, img.W) {
			mask = tensor.New(img.C, img.H, img.W)
		}
		attack.BoxMaskInto(mask, lb, 1)
		out = imaging.EnsureLike(out, img)
		return attack.FGSMInto(out, obj, img, runtimeFGSMEps, mask)
	})
}

// RuntimeAutoPGD returns a per-frame Auto-PGD attacker confined to the
// lead-vehicle box — the iterative escalation of the FGSM runtime threat
// model, a few adaptive gradient steps per 20 Hz frame at the same
// visible-but-stealthy budget. It is registered as an additional attack
// axis (exp.RegisterAttack) rather than a default column, so the default
// grid keeps its pre-registry cells bit-identical.
func RuntimeAutoPGD(e *Env, reg *regress.Regressor, seed int64) pipeline.Attacker {
	obj := &attack.RegressionObjective{Reg: reg.Clone()}
	cfg := attack.DefaultAPGDConfig(runtimeFGSMEps)
	// A tight per-frame step budget: the attacker shares the control
	// period with the victim, so it gets iterations, not leisure.
	cfg.Steps = 6
	var mask *tensor.Tensor
	return pipeline.AttackerFunc(func(img *imaging.Image, leadBox box.Box) *imaging.Image {
		lb := leadBox.Clip(float64(img.W), float64(img.H))
		if lb.Empty() || lb.W() < 1 || lb.H() < 1 {
			return img.Clone()
		}
		if mask == nil || !mask.ShapeEq(img.C, img.H, img.W) {
			mask = tensor.New(img.C, img.H, img.W)
		}
		attack.BoxMaskInto(mask, lb, 1)
		return attack.AutoPGD(obj, img, cfg, mask)
	})
}

// DefaultMatrixAttacks returns the default attack axis: clean, the
// stateful runtime CAP-Attack, and per-frame FGSM.
func DefaultMatrixAttacks() []AttackSpec {
	return []AttackSpec{
		{Name: "None"},
		{Name: "CAP-Attack", New: RuntimeCAP},
		{Name: "FGSM", New: RuntimeFGSM},
	}
}

// MatrixAttacks returns the default attack axis.
//
// Deprecated: use the package-level DefaultMatrixAttacks (the axis never
// depended on the environment) or the exp attack registry.
func (e *Env) MatrixAttacks() []AttackSpec { return DefaultMatrixAttacks() }

// NewMedianBlurDefense builds the median-blur defense column entry.
func NewMedianBlurDefense(e *Env, seed int64) defense.Preprocessor {
	return defense.NewMedianBlur()
}

// NewDiffPIRDefense builds a per-cell DiffPIR defense: it clones the
// trained prior so concurrent cells never share UNet activation buffers,
// and seeds the restoration from the cell seed so reports are reproducible
// regardless of cell scheduling.
func NewDiffPIRDefense(e *Env, seed int64) defense.Preprocessor {
	cfg := defense.DefaultDiffPIRConfig()
	cfg.Steps = e.Preset.DiffPIRSteps
	cfg.Seed = seed
	return &defense.DiffPIRDefense{Model: e.Diffusion().Clone(), Cfg: cfg}
}

// DefaultMatrixDefenses returns the default defense axis: undefended,
// median blurring, and diffusion restoration (DiffPIR).
func DefaultMatrixDefenses() []DefenseSpec {
	return []DefenseSpec{
		{Name: "None"},
		{Name: "Median Blurring", New: NewMedianBlurDefense},
		{Name: "DiffPIR", New: NewDiffPIRDefense},
	}
}

// MatrixDefenses returns the default defense axis.
//
// Deprecated: use the package-level DefaultMatrixDefenses or the exp
// defense registry.
func (e *Env) MatrixDefenses() []DefenseSpec { return DefaultMatrixDefenses() }

// MatrixConfig declares a scenario × attack × defense grid. Zero-valued
// fields select the defaults: the full scenario registry, the default
// attack and defense axes, the scenarios' own duration/timestep, and a
// base seed derived from the preset.
type MatrixConfig struct {
	Scenarios []pipeline.Scenario
	Attacks   []AttackSpec
	Defenses  []DefenseSpec

	Duration float64 // seconds; 0 keeps each scenario's default
	DT       float64 // control period; 0 keeps the default
	BaseSeed int64   // cell seeds derive from this + cell index; 0 = preset seed

	// Observer, when non-nil, receives run/cell progress events from
	// RunMatrixCtx and RunSweepCtx. It never affects results.
	Observer Observer `json:"-"`
}

// cellSeedStride spaces per-cell seed blocks so a cell's pipeline,
// attacker and defense sub-seeds never collide with a neighbour's.
const cellSeedStride = 100003

// MatrixCell is one executed grid point with its safety metrics.
type MatrixCell struct {
	Scenario string
	Attack   string
	Defense  string
	Seed     int64

	Collision  bool
	MinGap     float64 // meters
	MinTTC     float64 // seconds (+Inf when never closing)
	MeanGapErr float64 // mean |perceived − true| gap over the run, meters
	Steps      int     // simulated control steps before termination

	Result sim.Result // full trajectory telemetry
}

// MatrixReport aggregates a full grid run.
type MatrixReport struct {
	Preset string
	Cells  []MatrixCell
}

// CellID identifies one grid point by its global index, deterministic seed
// and axis names — the grid identity a checkpoint record, a shard merge or
// a spec-addressed run validates against. It is derivable from a
// MatrixConfig and a preset seed alone, with no trained environment.
type CellID struct {
	Index    int
	Seed     int64
	Scenario string
	Attack   string
	Defense  string
}

// cellSpec is one expanded grid point: its identity plus the factories
// that execute it. Seeds derive from the cell's global grid index, so any
// decomposition of the grid — full matrix run or sharded sweep — executes
// identical cells.
type cellSpec struct {
	id       CellID
	scenario pipeline.Scenario
	attack   AttackSpec
	defense  DefenseSpec
}

// DefaultMatrixScenarios returns the scenario axis a config gets when it
// lists none: the built-in pipeline registry.
func DefaultMatrixScenarios() []pipeline.Scenario { return pipeline.Scenarios() }

// resolveAxes fills a config's empty axes with the registry defaults.
func resolveAxes(cfg MatrixConfig) (scenarios []pipeline.Scenario, attacks []AttackSpec, defenses []DefenseSpec) {
	scenarios = cfg.Scenarios
	if len(scenarios) == 0 {
		scenarios = DefaultMatrixScenarios()
	}
	attacks = cfg.Attacks
	if len(attacks) == 0 {
		attacks = DefaultMatrixAttacks()
	}
	defenses = cfg.Defenses
	if len(defenses) == 0 {
		defenses = DefaultMatrixDefenses()
	}
	return scenarios, attacks, defenses
}

// matrixBaseSeed resolves the grid's base seed against the preset default.
func matrixBaseSeed(cfg MatrixConfig, presetSeed int64) int64 {
	if cfg.BaseSeed != 0 {
		return cfg.BaseSeed
	}
	return presetSeed + 1700
}

// CellIDs expands the scenario-major × attack × defense grid of cfg into
// per-cell identities (index, seed, names) without touching any trained
// model — the pure grid identity used by sweep-merge verification and
// spec validation. presetSeed supplies the default base seed.
func CellIDs(cfg MatrixConfig, presetSeed int64) []CellID {
	scenarios, attacks, defenses := resolveAxes(cfg)
	baseSeed := matrixBaseSeed(cfg, presetSeed)
	ids := make([]CellID, 0, len(scenarios)*len(attacks)*len(defenses))
	for _, sc := range scenarios {
		for _, at := range attacks {
			for _, df := range defenses {
				i := len(ids)
				ids = append(ids, CellID{
					Index: i, Seed: baseSeed + int64(i)*cellSeedStride,
					Scenario: sc.Name, Attack: at.Name, Defense: df.Name,
				})
			}
		}
	}
	return ids
}

// expandGrid resolves the config's axes against the defaults and expands
// the grid with per-cell identities and factories.
func (e *Env) expandGrid(cfg MatrixConfig) []cellSpec {
	scenarios, attacks, defenses := resolveAxes(cfg)
	baseSeed := matrixBaseSeed(cfg, e.Preset.Seed)
	specs := make([]cellSpec, 0, len(scenarios)*len(attacks)*len(defenses))
	for _, sc := range scenarios {
		for _, at := range attacks {
			for _, df := range defenses {
				i := len(specs)
				specs = append(specs, cellSpec{
					id: CellID{
						Index: i, Seed: baseSeed + int64(i)*cellSeedStride,
						Scenario: sc.Name, Attack: at.Name, Defense: df.Name,
					},
					scenario: sc, attack: at, defense: df,
				})
			}
		}
	}
	return specs
}

// warmDefenses builds one throwaway instance of every defense appearing in
// specs. Defenses backed by lazily trained models (DiffPIR's diffusion
// prior) train on first construction; doing it here keeps that
// (deterministic, Once-guarded) training out of the parallel section
// instead of stalling the first cell that needs it — and a shard whose
// remaining cells never use a heavy defense skips its training entirely.
func (e *Env) warmDefenses(specs []cellSpec) {
	seen := map[string]bool{}
	for _, s := range specs {
		if s.defense.New != nil && !seen[s.defense.Name] {
			seen[s.defense.Name] = true
			s.defense.New(e, s.id.Seed)
		}
	}
}

// RunMatrix expands the grid and executes every cell on the worker pool,
// one cloned regressor per worker and a deterministic seed per cell, so
// the report is bit-identical across runs and across GOMAXPROCS settings.
func (e *Env) RunMatrix(cfg MatrixConfig) MatrixReport {
	rep, err := e.RunMatrixCtx(context.Background(), cfg)
	if err != nil {
		// Unreachable: the background context never cancels, and
		// cancellation is RunMatrixCtx's only error.
		panic(err)
	}
	return rep
}

// RunMatrixCtx is RunMatrix under a cancellation context and the config's
// Observer: cell start/finish events stream as the grid executes, a
// cancelled context stops dispatching cells promptly (in-flight cells
// finish) and returns the context error. On success the report is
// bit-identical to RunMatrix — the observer and the context plumbing never
// touch the numbers.
func (e *Env) RunMatrixCtx(ctx context.Context, cfg MatrixConfig) (MatrixReport, error) {
	specs := e.expandGrid(cfg)
	obs := cfg.Observer
	emit(obs, Event{Kind: EventRunStart, Total: len(specs)})
	finish := func(err error) error {
		emit(obs, Event{Kind: EventRunDone, Total: len(specs), Err: err})
		return err
	}
	if err := ctx.Err(); err != nil {
		return MatrixReport{}, finish(err)
	}
	e.warmDefenses(specs)

	rep := MatrixReport{Preset: e.Preset.Name, Cells: make([]MatrixCell, len(specs))}
	workers := make([]*regress.Regressor, e.maxWorkers(len(specs)))
	for i := range workers {
		workers[i] = e.Reg.Clone()
	}
	var done atomic.Int64
	err := parallelMapCtx(ctx, len(workers), len(specs), func(w, i int) {
		s := specs[i]
		emit(obs, Event{Kind: EventCellStart, Total: len(specs), Cell: s.id})
		rep.Cells[i] = e.runMatrixCell(workers[w], s.scenario, s.attack, s.defense, cfg, s.id.Seed)
		emit(obs, Event{Kind: EventCellDone, Total: len(specs), Done: int(done.Add(1)), Cell: s.id, Result: &rep.Cells[i]})
		e.logObs(obs, "matrix: %s / %s / %s done (%d/%d)", s.scenario.Name, s.attack.Name, s.defense.Name, i+1, len(specs))
	})
	if err != nil {
		return MatrixReport{}, finish(err)
	}
	return rep, finish(nil)
}

// runMatrixCell executes one grid point on the given worker regressor.
func (e *Env) runMatrixCell(reg *regress.Regressor, sc pipeline.Scenario, at AttackSpec, df DefenseSpec, m MatrixConfig, seed int64) MatrixCell {
	base := pipeline.DefaultConfig(reg)
	base.Drive = e.DriveCfg
	cfg := sc.Apply(base)
	if m.Duration > 0 {
		cfg.Duration = m.Duration
	}
	if m.DT > 0 {
		cfg.DT = m.DT
	}
	cfg.Seed = seed
	if at.New != nil {
		// Hand the factory the worker-local clone, not the shared e.Reg:
		// a custom attacker that skips its own Clone then still only ever
		// touches one goroutine's network.
		cfg.Attacker = at.New(e, reg, seed+1)
	}
	if df.New != nil {
		cfg.Defense = df.New(e, seed+2)
	}

	res := pipeline.Run(cfg)
	var errSum float64
	for i := range res.TrueGaps {
		d := res.PerceivedGaps[i] - res.TrueGaps[i]
		if d < 0 {
			d = -d
		}
		errSum += d
	}
	meanErr := 0.0
	if len(res.TrueGaps) > 0 {
		meanErr = errSum / float64(len(res.TrueGaps))
	}
	return MatrixCell{
		Scenario:   sc.Name,
		Attack:     at.Name,
		Defense:    df.Name,
		Seed:       seed,
		Collision:  res.Collision,
		MinGap:     res.MinGap,
		MinTTC:     res.MinTTC,
		MeanGapErr: meanErr,
		Steps:      len(res.Times),
		Result:     res,
	}
}

// Format renders the matrix as an aligned text table grouped by scenario,
// with a collision tally per attack × defense pair at the bottom.
func (r MatrixReport) Format() string {
	var b strings.Builder
	b.WriteString("SCENARIO MATRIX: closed-loop ACC safety, scenario x attack x defense\n")
	b.WriteString(fmt.Sprintf("%-16s %-12s %-17s %10s %10s %11s %10s\n",
		"Scenario", "Attack", "Defense", "MinGap(m)", "MinTTC(s)", "GapErr(m)", "Collision"))
	prev := ""
	for _, c := range r.Cells {
		label := ""
		if c.Scenario != prev {
			label = c.Scenario
			prev = c.Scenario
		}
		b.WriteString(fmt.Sprintf("%-16s %-12s %-17s %10.2f %10.2f %11.2f %10v\n",
			label, c.Attack, c.Defense, c.MinGap, capTTC(c.MinTTC), c.MeanGapErr, c.Collision))
	}
	b.WriteString("\ncollisions per attack x defense (over scenarios):\n")
	for _, t := range r.collisionTallies() {
		b.WriteString(fmt.Sprintf("  %-12s + %-17s %d/%d\n", t.attack, t.defense, t.collisions, t.total))
	}
	return b.String()
}

// Markdown renders the matrix as a GitHub-flavored markdown table.
func (r MatrixReport) Markdown() string {
	var b strings.Builder
	b.WriteString("| Scenario | Attack | Defense | MinGap (m) | MinTTC (s) | GapErr (m) | Collision |\n")
	b.WriteString("|---|---|---|---:|---:|---:|---|\n")
	for _, c := range r.Cells {
		b.WriteString(fmt.Sprintf("| %s | %s | %s | %.2f | %.2f | %.2f | %v |\n",
			c.Scenario, c.Attack, c.Defense, c.MinGap, capTTC(c.MinTTC), c.MeanGapErr, c.Collision))
	}
	return b.String()
}

// CSV renders the matrix machine-readably; float fields use exact 'g'
// formatting so equal reports imply bit-equal metrics (an unbounded
// MinTTC prints as +Inf). Name fields are quoted when custom axes use
// names containing separators.
func (r MatrixReport) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,attack,defense,seed,steps,min_gap_m,min_ttc_s,mean_gap_err_m,collision\n")
	for _, c := range r.Cells {
		b.WriteString(fmt.Sprintf("%s,%s,%s,%d,%d,%s,%s,%s,%v\n",
			csvField(c.Scenario), csvField(c.Attack), csvField(c.Defense), c.Seed, c.Steps,
			gfloat(c.MinGap), gfloat(c.MinTTC), gfloat(c.MeanGapErr), c.Collision))
	}
	return b.String()
}

// csvField applies RFC 4180 quoting when the value needs it.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

type tally struct {
	attack, defense   string
	collisions, total int
}

// collisionTallies folds cells into per-(attack, defense) collision
// counts, in first-appearance order.
func (r MatrixReport) collisionTallies() []tally {
	var out []tally
	idx := map[string]int{}
	for _, c := range r.Cells {
		key := c.Attack + "\x00" + c.Defense
		i, ok := idx[key]
		if !ok {
			i = len(out)
			idx[key] = i
			out = append(out, tally{attack: c.Attack, defense: c.Defense})
		}
		out[i].total++
		if c.Collision {
			out[i].collisions++
		}
	}
	return out
}

// capTTC caps an infinite/huge TTC for fixed-width display.
func capTTC(v float64) float64 {
	if v > 999 {
		return 999
	}
	return v
}

func gfloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
