package eval

import (
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/xrand"
)

// The Ensure* cross-process guard: many contenders sharing one artifact
// directory must produce exactly one training run, with everyone else
// warm-starting from the winner's artifact. The contenders here are
// goroutines each holding its OWN ModelStore handle — the lock file is
// the only coordination, exactly as between separate worker processes.

// fillParams deterministically "trains" a detector: every parameter gets
// a value derived from its position, so any two trained nets are
// bit-identical and distinguishable from an untrained one.
func fillParams(d *detect.Detector) {
	for i, p := range d.Net.Params() {
		data := p.Value.Data()
		for j := range data {
			data[j] = float32(i+1) * float32(j%17+1) * 0.001
		}
	}
}

func TestEnsureTrainsExactlyOnceAcrossStores(t *testing.T) {
	dir := t.TempDir()
	p := microPreset()

	const contenders = 6
	var trained atomic.Int32
	nets := make([]*detect.Detector, contenders)
	var wg sync.WaitGroup
	errs := make([]error, contenders)
	for g := 0; g < contenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			store, err := NewModelStore(dir) // one handle per "process"
			if err != nil {
				errs[g] = err
				return
			}
			store.lockPoll = 2 * time.Millisecond
			d := detect.New(xrand.New(int64(100+g)), 64)
			nets[g] = d
			_, errs[g] = store.EnsureDetector(d, p, func() error {
				trained.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the race window
				fillParams(d)
				return nil
			}, nil)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("contender %d: %v", g, err)
		}
	}
	if n := trained.Load(); n != 1 {
		t.Fatalf("train ran %d times, want exactly 1", n)
	}
	// Every contender — trainer and warm-starters alike — ends bit-identical.
	want := detect.New(xrand.New(999), 64)
	fillParams(want)
	for g := 0; g < contenders; g++ {
		assertSameParams(t, "contender", nets[g].Net.Params(), want.Net.Params())
	}
	// The lock is gone; the artifact remains.
	store, _ := NewModelStore(dir)
	if _, err := os.Stat(store.lockPath(store.DetectorKey(p))); !os.IsNotExist(err) {
		t.Fatalf("train lock left behind: %v", err)
	}
	if warm, err := store.LoadDetector(detect.New(xrand.New(3), 64), p); err != nil || !warm {
		t.Fatalf("artifact missing after ensure: warm=%v err=%v", warm, err)
	}
}

func TestEnsureStealsLockOfDeadOwner(t *testing.T) {
	dir := t.TempDir()
	store, err := NewModelStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.lockPoll = 2 * time.Millisecond
	p := microPreset()
	key := store.DetectorKey(p)

	// Manufacture a genuinely dead pid: run a short-lived child and wait
	// for it. Pid reuse within this test's lifetime is not a realistic
	// hazard (Linux allocates pids sequentially).
	cmd := exec.Command("/bin/true")
	if err := cmd.Run(); err != nil {
		t.Skipf("cannot spawn probe process: %v", err)
	}
	deadPid := cmd.Process.Pid
	lock := store.lockPath(key)
	if err := os.WriteFile(lock, []byte(strconv.Itoa(deadPid)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	d := detect.New(xrand.New(1), 64)
	var ran atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, err := store.EnsureDetector(d, p, func() error { ran.Store(true); fillParams(d); return nil }, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ensure wedged behind a dead owner's lock")
	}
	if !ran.Load() {
		t.Fatal("ensure never trained after stealing the stale lock")
	}
}

func TestLockStaleness(t *testing.T) {
	store, err := NewModelStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := microPreset()
	key := store.DetectorKey(p)
	lock := store.lockPath(key)

	// Our own pid: never stale (we ARE the owner).
	if ok, err := store.acquireTrainLock(key); err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	if store.lockIsStale(key) {
		t.Fatal("own live lock reported stale")
	}
	// Second acquire must lose while the lock exists.
	if ok, _ := store.acquireTrainLock(key); ok {
		t.Fatal("second acquire won while lock held")
	}
	store.releaseTrainLock(key)
	if ok, err := store.acquireTrainLock(key); err != nil || !ok {
		t.Fatalf("re-acquire after release: ok=%v err=%v", ok, err)
	}
	store.releaseTrainLock(key)

	// Unparseable pid: stale only once the age backstop passes.
	if err := os.WriteFile(lock, []byte("not-a-pid\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if store.lockIsStale(key) {
		t.Fatal("fresh unparseable lock reported stale")
	}
	old := time.Now().Add(-lockStaleAge - time.Minute)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	if !store.lockIsStale(key) {
		t.Fatal("aged unparseable lock not reported stale")
	}
	os.Remove(lock)

	// A live foreign process (pid 1 is always alive): not stale, even old.
	if err := os.WriteFile(lock, []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	if store.lockIsStale(key) {
		t.Fatal("lock of a live process reported stale")
	}
}

func TestEnsureWaiterLogsAndWarms(t *testing.T) {
	dir := t.TempDir()
	p := microPreset()

	holder, err := NewModelStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	holder.lockPoll = 2 * time.Millisecond
	waiter, err := NewModelStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	waiter.lockPoll = 2 * time.Millisecond

	key := holder.DetectorKey(p)
	if ok, err := holder.acquireTrainLock(key); err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}

	logf, logged := collectLogf()
	d := detect.New(xrand.New(7), 64)
	done := make(chan error, 1)
	go func() {
		_, err := waiter.EnsureDetector(d, p, func() error {
			t.Error("waiter trained despite the holder saving an artifact")
			return nil
		}, logf)
		done <- err
	}()

	// Give the waiter time to hit the lock, then publish the artifact and
	// release — it must warm-start without training.
	time.Sleep(20 * time.Millisecond)
	trained := detect.New(xrand.New(8), 64)
	fillParams(trained)
	if err := holder.SaveDetector(trained, p); err != nil {
		t.Fatal(err)
	}
	holder.releaseTrainLock(key)

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter never returned")
	}
	assertSameParams(t, "waiter", d.Net.Params(), trained.Net.Params())
	if !strings.Contains(logged(), "being trained by another process") {
		t.Fatalf("waiter log lacks the lock-wait line:\n%s", logged())
	}
}
