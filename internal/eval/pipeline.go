package eval

import (
	"repro/internal/defense"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// PipelineRow is one closed-loop scenario outcome.
type PipelineRow struct {
	Name   string
	Result sim.Result
}

// PipelineScenarios runs the closed-loop ACC scenario three ways: clean,
// under the runtime CAP-Attack, and under CAP-Attack with the median-blur
// defense in front of the model. It demonstrates the safety consequence of
// the Table I distance errors: the attacked ACC perceives a phantom gap
// and accelerates into the braking lead vehicle.
func PipelineScenarios(e *Env) []PipelineRow {
	mkCfg := func() pipeline.Config {
		cfg := pipeline.DefaultConfig(e.Reg)
		cfg.Drive = e.DriveCfg
		cfg.Seed = e.Preset.Seed + 900
		return cfg
	}

	// The closed-loop demo models a determined runtime attacker with a
	// visible-but-stealthy budget rather than the Table I calibration.
	capAttacker := func() pipeline.Attacker { return RuntimeCAP(e, e.Reg, 0) }

	rows := make([]PipelineRow, 0, 3)

	clean := mkCfg()
	rows = append(rows, PipelineRow{Name: "Clean", Result: pipeline.Run(clean)})

	attacked := mkCfg()
	attacked.Attacker = capAttacker()
	rows = append(rows, PipelineRow{Name: "CAP-Attack", Result: pipeline.Run(attacked)})

	defended := mkCfg()
	defended.Attacker = capAttacker()
	defended.Defense = defense.NewMedianBlur()
	rows = append(rows, PipelineRow{Name: "CAP + Median Blurring", Result: pipeline.Run(defended)})

	return rows
}
