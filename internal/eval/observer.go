package eval

// This file defines the Observer sink the grid runners stream progress
// through. Every cell of a matrix or sweep run emits a started and a
// finished event; run-level events bracket the grid and carry the
// terminal error (context cancellation, checkpoint write failure). The
// JSONL checkpoint writer (sweep.go) and the CLI progress printer
// (internal/exp) are the two stock observers; anything implementing the
// one-method interface can subscribe through MatrixConfig.Observer.

// EventKind discriminates Observer events.
type EventKind int

// Observer event kinds.
const (
	// EventRunStart opens a grid run; Total carries the full grid size
	// (for a sweep: the whole grid, not just this shard).
	EventRunStart EventKind = iota
	// EventCellStart marks one grid cell beginning execution.
	EventCellStart
	// EventCellDone marks one grid cell finishing; Result holds its
	// metrics and Done the number of cells finished so far in this run.
	EventCellDone
	// EventLog carries a harness progress line (the same text the
	// injected Env logger receives); Msg holds the formatted line.
	EventLog
	// EventRunDone closes the run; Err is nil on success, the context
	// error on cancellation, or the checkpoint write error.
	EventRunDone
)

// String names the kind for logs and progress printers.
func (k EventKind) String() string {
	switch k {
	case EventRunStart:
		return "run-start"
	case EventCellStart:
		return "cell-start"
	case EventCellDone:
		return "cell-done"
	case EventLog:
		return "log"
	case EventRunDone:
		return "run-done"
	}
	return "unknown"
}

// Event is one progress notification from a grid runner. Cell events
// identify their grid point through Cell; only the fields documented on
// the kind are meaningful.
type Event struct {
	Kind  EventKind
	Total int // full grid size
	Done  int // cells finished so far (EventCellDone)

	Cell   CellID      // EventCellStart / EventCellDone
	Result *MatrixCell // EventCellDone; shared, do not mutate

	Msg string // EventLog
	Err error  // EventRunDone
}

// Observer receives run progress events. Observe is called from the
// worker goroutines of a parallel grid run and must be safe for
// concurrent use; implementations that buffer (progress printers,
// checkpoint writers) serialise internally.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(ev Event) { f(ev) }

// MultiObserver fans events out to every non-nil observer in order.
func MultiObserver(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiObserver(live)
}

type multiObserver []Observer

// Observe implements Observer.
func (m multiObserver) Observe(ev Event) {
	for _, o := range m {
		o.Observe(ev)
	}
}

// emit sends ev to obs when a sink is subscribed.
func emit(obs Observer, ev Event) {
	if obs != nil {
		obs.Observe(ev)
	}
}
