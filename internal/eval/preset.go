// Package eval drives the paper's experiments end to end: it generates
// datasets, trains the victim models, runs every attack and defense, and
// formats the result rows the way Tables I–V and Figures 1–2 report them.
//
// Two presets exist: Quick (seconds, used by tests and benchmarks to
// exercise every code path) and Paper (minutes, the configuration whose
// outputs are recorded in EXPERIMENTS.md).
package eval

// Preset bundles every dataset size, training schedule and attack budget
// used by the experiment harness.
type Preset struct {
	Name string

	// Dataset sizes.
	SignTrain      int // training stop-sign scenes
	SignTest       int // test stop-sign scenes
	DriveTrain     int // training driving frames
	DrivePerBucket int // test frames per 20 m distance bucket

	// Model training.
	DetEpochs int
	RegEpochs int

	// Defense training.
	AdvEpochs         int // adversarial fine-tuning epochs
	ContrastiveEpochs int
	DiffusionSteps    int // DDPM optimisation steps
	DiffPIRSteps      int // reverse steps per restoration

	// Attack budgets.
	APGDSteps  int
	SimBASteps int
	RP2Iters   int

	Seed int64
}

// Quick returns the preset used by tests and benchmarks: every code path
// runs, in seconds, at reduced fidelity.
func Quick() Preset {
	return Preset{
		Name:      "quick",
		SignTrain: 150, SignTest: 40,
		DriveTrain: 160, DrivePerBucket: 10,
		DetEpochs: 16, RegEpochs: 12,
		AdvEpochs: 4, ContrastiveEpochs: 2,
		DiffusionSteps: 120, DiffPIRSteps: 8,
		APGDSteps: 12, SimBASteps: 150, RP2Iters: 20,
		Seed: 7,
	}
}

// Paper returns the preset used to produce the numbers in EXPERIMENTS.md.
// It is sized to regenerate all five tables and both figures in roughly
// half an hour on a commodity multicore machine; raising the sizes further
// tightens the estimates but does not change the shapes.
func Paper() Preset {
	return Preset{
		Name:      "paper",
		SignTrain: 300, SignTest: 80,
		DriveTrain: 400, DrivePerBucket: 20,
		DetEpochs: 22, RegEpochs: 18,
		AdvEpochs: 6, ContrastiveEpochs: 2,
		DiffusionSteps: 450, DiffPIRSteps: 12,
		APGDSteps: 25, SimBASteps: 300, RP2Iters: 40,
		Seed: 7,
	}
}

// AttackBudgets are the per-attack perturbation budgets. They are fixed
// across presets so Quick and Paper probe the same threat model; the paper
// does not publish its ε values, so these were chosen to reproduce the
// qualitative ordering of its tables (see EXPERIMENTS.md).
type AttackBudgets struct {
	// Detection task (full-image perturbations; RP2 sign-confined).
	DetGaussianSigma float64
	DetFGSMEps       float64
	DetAPGDEps       float64
	DetSimBAEps      float64

	// Regression task (perturbations confined to the lead-vehicle box).
	RegGaussianSigma float64
	RegFGSMEps       float64
	RegAPGDEps       float64
	RegCAPEps        float64
}

// DefaultBudgets returns the budgets used across all experiments.
func DefaultBudgets() AttackBudgets {
	return AttackBudgets{
		DetGaussianSigma: 0.27,
		DetFGSMEps:       0.004,
		DetAPGDEps:       0.0007,
		DetSimBAEps:      0.12,

		RegGaussianSigma: 0.06,
		RegFGSMEps:       0.02,
		RegAPGDEps:       0.03,
		RegCAPEps:        0.035,
	}
}
