package eval

import (
	"repro/internal/defense"
	"repro/internal/detect"
	"repro/internal/imaging"
	"repro/internal/metrics"
	"repro/internal/regress"
	"repro/internal/xrand"
)

// MixedKind labels the paper's mixed adversarial train/test sets.
const MixedKind Kind = "Mixed"

// advTrainSources are the Table III training-set sources, in paper order.
var advTrainSources = []Kind{KindGaussian, KindFGSM, KindAPGD, KindCAP, MixedKind}

// TableIIICell is one (training source, test attack) evaluation.
type TableIIICell struct {
	TrainOn Kind
	TestOn  Kind
	HasReg  bool // the paper reports "-" for regression under the Mixed test set
	Errs    RangeErrs
	Scores  metrics.DetectionScores
}

// TableIII reproduces "Performance after adversarial training": the
// transfer matrix of models hardened on one attack (or the mixed set) and
// tested on the others.
type TableIII struct {
	Cells []TableIIICell
}

// advSets holds the per-attack adversarial copies of a split.
type advSets struct {
	signImgs  map[Kind][]*imaging.Image
	signGTs   [][]detect.Box
	driveImgs map[Kind][]*imaging.Image
	driveDist []float64
}

// buildAdvTrainSets attacks the training splits once per source attack
// (adversarial examples are generated against the base models, as in the
// paper's non-adaptive transfer protocol).
func (e *Env) buildAdvTrainSets(kinds []Kind) advSets {
	s := advSets{
		signImgs:  make(map[Kind][]*imaging.Image),
		driveImgs: make(map[Kind][]*imaging.Image),
	}
	s.signGTs = make([][]detect.Box, e.SignTrainSet.Len())
	for i, sc := range e.SignTrainSet.Scenes {
		s.signGTs[i] = detect.GTBoxes(sc)
	}
	s.driveDist = make([]float64, e.DriveTrain.Len())
	for i, sc := range e.DriveTrain.Scenes {
		s.driveDist[i] = sc.Distance
	}
	for _, k := range kinds {
		if k == MixedKind {
			continue
		}
		e.logf("adv-train sets: generating %s", k)
		s.signImgs[k] = e.AttackSignSet(e.Det, e.SignTrainSet, pairedDetKind(k), e.Preset.Seed+400)
		s.driveImgs[k] = e.AttackDriveSet(e.Reg, e.DriveTrain, k, e.Preset.Seed+401)
	}
	return s
}

// mixKinds are the four sources pooled into the mixed set.
var mixKinds = []Kind{KindGaussian, KindFGSM, KindAPGD, KindCAP}

// mixedSign draws frac of each source's attacked sign images.
func (s advSets) mixedSign(rng *xrand.RNG, frac float64) ([]*imaging.Image, [][]detect.Box) {
	var sets [][]*imaging.Image
	var labels [][][]detect.Box
	for _, k := range mixKinds {
		sets = append(sets, s.signImgs[k])
		labels = append(labels, s.signGTs)
	}
	return defense.MixSets(rng, frac, sets, labels)
}

// mixedDrive draws frac of each source's attacked driving frames.
func (s advSets) mixedDrive(rng *xrand.RNG, frac float64) ([]*imaging.Image, []float64) {
	var sets [][]*imaging.Image
	var dists [][]float64
	for _, k := range mixKinds {
		sets = append(sets, s.driveImgs[k])
		dists = append(dists, s.driveDist)
	}
	return defense.MixDriveSets(rng, frac, sets, dists)
}

// RunTableIII builds adversarial training sets, hardens one detector and
// one regressor per source, and evaluates each hardened pair on the other
// attacks' test-set adversarial examples.
func (e *Env) RunTableIII() TableIII {
	train := e.buildAdvTrainSets(advTrainSources)

	// Test-set adversarial examples, generated once against the base models.
	testSign := make(map[Kind][]*imaging.Image)
	testDrive := make(map[Kind][]*imaging.Image)
	for _, k := range mixKinds {
		testSign[k] = e.AttackSignSet(e.Det, e.SignTestSet, pairedDetKind(k), e.Preset.Seed+402)
		testDrive[k] = e.AttackDriveSet(e.Reg, e.DriveTest, k, e.Preset.Seed+403)
	}
	// Mixed test set (detection only, as the paper reports).
	rng := xrand.New(e.Preset.Seed + 404)
	mixedTestSign := make([]*imaging.Image, e.SignTestSet.Len())
	for i := range mixedTestSign {
		mixedTestSign[i] = testSign[mixKinds[rng.Intn(len(mixKinds))]][i]
	}

	var t TableIII
	for _, src := range advTrainSources {
		e.logf("table III: hardening on %s", src)
		det, reg := e.hardenOn(src, train)

		tests := make([]Kind, 0, 5)
		for _, k := range mixKinds {
			if k != src {
				tests = append(tests, k)
			}
		}
		tests = append(tests, MixedKind)

		for _, tk := range tests {
			cell := TableIIICell{TrainOn: src, TestOn: tk}
			if tk == MixedKind {
				cell.Scores = detScoresFrom(det, e, mixedTestSign, nil)
			} else {
				cell.HasReg = true
				cell.Errs = rangeErrsFrom(reg, e, testDrive[tk], nil)
				cell.Scores = detScoresFrom(det, e, testSign[tk], nil)
			}
			t.Cells = append(t.Cells, cell)
		}
	}
	return t
}

// hardenOn fine-tunes base models on one source's adversarial training set.
func (e *Env) hardenOn(src Kind, train advSets) (*detect.Detector, *regress.Regressor) {
	dcfg := detect.DefaultTrainConfig()
	dcfg.Epochs = e.Preset.AdvEpochs
	dcfg.Seed = e.Preset.Seed + 500
	dcfg.LR = 1e-3 // fine-tuning rate

	rcfg := regress.DefaultTrainConfig()
	rcfg.Epochs = e.Preset.AdvEpochs
	rcfg.Seed = e.Preset.Seed + 501
	rcfg.LR = 1e-3

	rng := xrand.New(e.Preset.Seed + 502)
	if src == MixedKind {
		signImgs, signGTs := train.mixedSign(rng, 0.25)
		driveImgs, driveDists := train.mixedDrive(rng, 0.25)
		det := defense.AdvTrainDetector(e.Det, signImgs, signGTs, dcfg)
		reg := defense.AdvTrainRegressor(e.Reg, driveImgs, driveDists, rcfg)
		return det, reg
	}
	det := defense.AdvTrainDetector(e.Det, train.signImgs[src], train.signGTs, dcfg)
	reg := defense.AdvTrainRegressor(e.Reg, train.driveImgs[src], train.driveDist, rcfg)
	return det, reg
}

// contrastiveSources are the Table IV adversarial-example sets.
var contrastiveSources = []Kind{KindGaussian, KindFGSM, KindAPGD, KindRP2, KindSimBA}

// TableIVCell is one (adversarial example set, test attack) evaluation of
// the contrastive-learning detector.
type TableIVCell struct {
	TrainOn Kind
	TestOn  Kind // KindNone = clean
	Scores  metrics.DetectionScores
}

// TableIV reproduces "Performance after contrastive learning".
type TableIV struct {
	Cells []TableIVCell
}

// RunTableIV fine-tunes the detector backbone contrastively on each
// attack's adversarial training images (views of the same scene must map
// to nearby embeddings) and evaluates on clean plus the other attacks.
func (e *Env) RunTableIV() TableIV {
	// Adversarial training images per source (against the base detector).
	advTrain := make(map[Kind][]*imaging.Image)
	for _, k := range contrastiveSources {
		e.logf("table IV: generating %s training examples", k)
		advTrain[k] = e.AttackSignSet(e.Det, e.SignTrainSet, k, e.Preset.Seed+600)
	}
	// Test adversarial examples per attack (against the base detector).
	testSign := make(map[Kind][]*imaging.Image)
	for _, k := range contrastiveSources {
		testSign[k] = e.AttackSignSet(e.Det, e.SignTestSet, k, e.Preset.Seed+601)
	}
	testSign[KindNone] = e.AttackSignSet(e.Det, e.SignTestSet, KindNone, 0)

	var t TableIV
	for _, src := range contrastiveSources {
		e.logf("table IV: contrastive fine-tuning on %s", src)
		ccfg := defense.DefaultContrastiveConfig()
		ccfg.Epochs = e.Preset.ContrastiveEpochs
		ccfg.Seed = e.Preset.Seed + 602

		// Wrap the adversarial images into a sign set sharing the clean
		// labels, so the head refit sees the same ground truth.
		advSet := e.SignTrainSet.WithImages(advTrain[src])
		det := defense.ContrastiveFineTune(e.Det, advSet, ccfg)

		tests := []Kind{KindNone}
		for _, k := range contrastiveSources {
			if k != src {
				tests = append(tests, k)
			}
		}
		for _, tk := range tests {
			t.Cells = append(t.Cells, TableIVCell{
				TrainOn: src,
				TestOn:  tk,
				Scores:  detScoresFrom(det, e, testSign[tk], nil),
			})
		}
	}
	return t
}

// TableVRow is one attack's post-restoration evaluation.
type TableVRow struct {
	Attack Kind
	HasReg bool // SimBA is detection-only in the paper
	Errs   RangeErrs
	Scores metrics.DetectionScores
}

// TableV reproduces "Performance after diffusion model cleaning".
type TableV struct {
	Rows []TableVRow
}

// RunTableV restores each attack's outputs with DiffPIR before inference.
func (e *Env) RunTableV() TableV {
	prep := e.DiffPIR()
	var t TableV
	kinds := []Kind{KindGaussian, KindFGSM, KindAPGD, KindCAP, KindSimBA}
	for _, kind := range kinds {
		e.logf("table V: attacking with %s", kind)
		row := TableVRow{Attack: kind}
		if kind != KindSimBA {
			row.HasReg = true
			attackedDrive := e.AttackDriveSet(e.Reg, e.DriveTest, kind, e.Preset.Seed+700)
			row.Errs = rangeErrsFrom(e.Reg, e, attackedDrive, clonePrep(prep))
		}
		attackedSign := e.AttackSignSet(e.Det, e.SignTestSet, pairedDetKind(kind), e.Preset.Seed+701)
		row.Scores = detScoresFrom(e.Det, e, attackedSign, clonePrep(prep))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// clonePrep wraps a DiffPIR defense with per-call model cloning so the
// stateful UNet caches are not shared across parallel workers.
func clonePrep(p *defense.DiffPIRDefense) defense.Preprocessor {
	return &workerDiffPIR{base: p}
}

type workerDiffPIR struct {
	base *defense.DiffPIRDefense
}

// Name implements defense.Preprocessor.
func (w *workerDiffPIR) Name() string { return w.base.Name() }

// Process implements defense.Preprocessor. Each call restores through an
// independent model clone, making the preprocessor safe under parallelMap.
func (w *workerDiffPIR) Process(img *imaging.Image) *imaging.Image {
	return w.base.Model.Clone().Restore(img, w.base.Cfg)
}
