package eval

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// microPreset is deliberately tiny: the eval tests certify plumbing
// (shapes, labels, determinism), not experiment quality.
func microPreset() Preset {
	return Preset{
		Name:      "micro",
		SignTrain: 40, SignTest: 12,
		DriveTrain: 50, DrivePerBucket: 3,
		DetEpochs: 4, RegEpochs: 4,
		AdvEpochs: 1, ContrastiveEpochs: 1,
		DiffusionSteps: 10, DiffPIRSteps: 3,
		APGDSteps: 4, SimBASteps: 20, RP2Iters: 4,
		Seed: 5,
	}
}

var (
	envOnce sync.Once
	testEnv *Env
)

func sharedEnv(t testing.TB) *Env {
	t.Helper()
	envOnce.Do(func() {
		testEnv = NewEnv(microPreset())
	})
	return testEnv
}

func TestNewEnvBuildsDatasets(t *testing.T) {
	e := sharedEnv(t)
	if e.SignTrainSet.Len() != 40 || e.SignTestSet.Len() != 12 {
		t.Fatalf("sign sets %d/%d", e.SignTrainSet.Len(), e.SignTestSet.Len())
	}
	if e.DriveTest.Len() != 4*3 {
		t.Fatalf("stratified drive test %d, want 12", e.DriveTest.Len())
	}
	if e.Det == nil || e.Reg == nil {
		t.Fatal("victims not trained")
	}
}

func TestAttackSignSetShapesAndNone(t *testing.T) {
	e := sharedEnv(t)
	for _, kind := range []Kind{KindNone, KindGaussian, KindFGSM} {
		imgs := e.AttackSignSet(e.Det, e.SignTestSet, kind, 1)
		if len(imgs) != e.SignTestSet.Len() {
			t.Fatalf("%s returned %d images", kind, len(imgs))
		}
		for i, img := range imgs {
			if img.H != 64 || img.W != 64 {
				t.Fatalf("%s image %d wrong shape", kind, i)
			}
		}
	}
	// KindNone must be pixel-identical to the originals.
	clones := e.AttackSignSet(e.Det, e.SignTestSet, KindNone, 1)
	for i, img := range clones {
		if img.MeanAbsDiff(e.SignTestSet.Scenes[i].Img) != 0 {
			t.Fatal("KindNone must clone the clean image")
		}
	}
}

func TestAttackDriveSetMaskConfinement(t *testing.T) {
	e := sharedEnv(t)
	imgs := e.AttackDriveSet(e.Reg, e.DriveTest, KindFGSM, 2)
	for i, adv := range imgs {
		sc := e.DriveTest.Scenes[i]
		outer := sc.LeadBox.Expand(2.5)
		for y := 0; y < adv.H; y++ {
			for x := 0; x < adv.W; x++ {
				if outer.Contains(float64(x), float64(y)) {
					continue
				}
				for c := 0; c < 3; c++ {
					if adv.At(c, y, x) != sc.Img.At(c, y, x) {
						t.Fatalf("frame %d: perturbation outside lead box", i)
					}
				}
			}
		}
	}
}

func TestAttackDeterminism(t *testing.T) {
	e := sharedEnv(t)
	a := e.AttackSignSet(e.Det, e.SignTestSet, KindFGSM, 7)
	b := e.AttackSignSet(e.Det, e.SignTestSet, KindFGSM, 7)
	for i := range a {
		if a[i].MeanAbsDiff(b[i]) != 0 {
			t.Fatal("same seed must reproduce identical attacks")
		}
	}
}

func TestRunTableIShape(t *testing.T) {
	e := sharedEnv(t)
	tab := e.RunTableI()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	order := []Kind{KindGaussian, KindFGSM, KindAPGD, KindCAP}
	for i, r := range tab.Rows {
		if r.Attack != order[i] {
			t.Fatalf("row %d attack %s, want %s", i, r.Attack, order[i])
		}
	}
	s := tab.Format()
	if !strings.Contains(s, "TABLE I") || !strings.Contains(s, "CAP/RP2") {
		t.Fatalf("format missing headers:\n%s", s)
	}
}

func TestRunFig2Shape(t *testing.T) {
	e := sharedEnv(t)
	f := e.RunFig2()
	if len(f.Rows) != 6 {
		t.Fatalf("rows %d", len(f.Rows))
	}
	if f.Rows[0].Attack != KindNone {
		t.Fatal("first row must be the clean baseline")
	}
	for _, r := range f.Rows {
		if r.Scores.MAP50 < 0 || r.Scores.MAP50 > 1 {
			t.Fatalf("mAP out of range: %+v", r)
		}
	}
}

func TestPipelineScenarios(t *testing.T) {
	e := sharedEnv(t)
	rows := PipelineScenarios(e)
	if len(rows) != 3 {
		t.Fatalf("scenarios %d", len(rows))
	}
	names := []string{"Clean", "CAP-Attack", "CAP + Median Blurring"}
	for i, r := range rows {
		if r.Name != names[i] {
			t.Fatalf("scenario %d name %q", i, r.Name)
		}
	}
}

func TestFormatTableII(t *testing.T) {
	tab := TableII{Rows: []TableIIRow{
		{Attack: KindGaussian, Defense: "None", Errs: RangeErrs{1, 2, 3, 4},
			Scores: metrics.DetectionScores{MAP50: 0.9, Precision: 0.95, Recall: 0.85}},
		{Attack: KindGaussian, Defense: "Median Blurring"},
	}}
	s := tab.Format()
	if !strings.Contains(s, "TABLE II") || !strings.Contains(s, "Median Blurring") {
		t.Fatalf("bad format:\n%s", s)
	}
	// The attack label appears once per group.
	if strings.Count(s, "Gaussian") != 1 {
		t.Fatalf("attack label should appear once per group:\n%s", s)
	}
}

func TestFormatTableIIIMixedDash(t *testing.T) {
	tab := TableIII{Cells: []TableIIICell{
		{TrainOn: KindFGSM, TestOn: MixedKind, HasReg: false},
	}}
	s := tab.Format()
	if !strings.Contains(s, "-") {
		t.Fatalf("mixed test row must render dashes for regression:\n%s", s)
	}
}

func TestFormatTableIVCleanLabel(t *testing.T) {
	tab := TableIV{Cells: []TableIVCell{{TrainOn: KindGaussian, TestOn: KindNone}}}
	if !strings.Contains(tab.Format(), "Clean") {
		t.Fatal("KindNone must render as Clean")
	}
}

func TestPairedDetKind(t *testing.T) {
	if pairedDetKind(KindCAP) != KindRP2 {
		t.Fatal("CAP must pair with RP2 on the detection task")
	}
	if pairedDetKind(KindFGSM) != KindFGSM {
		t.Fatal("non-CAP kinds must pass through")
	}
}

func TestDisplayKind(t *testing.T) {
	if displayKind(KindCAP) != "CAP/RP2" || displayKind(MixedKind) != "Mixed" || displayKind(KindFGSM) != "FGSM" {
		t.Fatal("displayKind labels wrong")
	}
}

func TestParallelMapCoversAll(t *testing.T) {
	hits := make([]int, 100)
	parallelMap(4, 100, func(w, i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestQuickAndPaperPresets(t *testing.T) {
	q, p := Quick(), Paper()
	if q.Name != "quick" || p.Name != "paper" {
		t.Fatal("preset names wrong")
	}
	if p.SignTrain <= q.SignTrain || p.DetEpochs <= q.DetEpochs {
		t.Fatal("paper preset must be larger than quick")
	}
	b := DefaultBudgets()
	if b.RegAPGDEps <= b.RegFGSMEps {
		t.Fatal("APGD budget should exceed FGSM (iterative attack, same family)")
	}
}
