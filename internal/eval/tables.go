package eval

import (
	"repro/internal/defense"
	"repro/internal/detect"
	"repro/internal/imaging"
	"repro/internal/metrics"
	"repro/internal/regress"
)

// RangeErrs are the four mean signed errors (meters) in the paper's
// distance buckets.
type RangeErrs [4]float64

// blockRange returns the index window of block bi when n items are split
// into blocks of size.
func blockRange(bi, size, n int) (lo, hi int) {
	lo = bi * size
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}

// rangeErrsFrom evaluates attack-induced prediction shift per bucket:
// pred(processed attacked frame) − pred(clean frame), averaged per range.
// The set is split into BatchSize blocks that run on the worker pool, and
// each block's clean and attacked frames go through one batched forward —
// bit-identical to per-frame prediction, so table numbers are unchanged.
func rangeErrsFrom(reg *regress.Regressor, env *Env, attacked []*imaging.Image, prep defense.Preprocessor) RangeErrs {
	acc := metrics.NewRangeAccumulator(env.Ranges())
	n := env.DriveTest.Len()
	errs := make([]float64, n)
	blocks := (n + regress.BatchSize - 1) / regress.BatchSize
	workers := make([]*regress.Regressor, env.maxWorkers(blocks))
	for i := range workers {
		workers[i] = reg.Clone()
	}
	parallelMap(len(workers), blocks, func(w, bi int) {
		r := workers[w]
		lo, hi := blockRange(bi, regress.BatchSize, n)
		clean := make([]*imaging.Image, hi-lo)
		adv := make([]*imaging.Image, hi-lo)
		for i := lo; i < hi; i++ {
			clean[i-lo] = env.DriveTest.Scenes[i].Img
			img := attacked[i]
			if prep != nil {
				img = prep.Process(img)
			}
			adv[i-lo] = img
		}
		advP := r.PredictBatch(adv)
		cleanP := r.PredictBatch(clean)
		for i := lo; i < hi; i++ {
			errs[i] = advP[i-lo] - cleanP[i-lo]
		}
	})
	for i, sc := range env.DriveTest.Scenes {
		acc.Add(sc.Distance, errs[i])
	}
	var out RangeErrs
	copy(out[:], acc.Means())
	return out
}

// detScoresFrom evaluates detection metrics on (optionally defended)
// attacked sign images against ground truth, batching each worker block
// through the detector's batched forward.
func detScoresFrom(det *detect.Detector, env *Env, attacked []*imaging.Image, prep defense.Preprocessor) metrics.DetectionScores {
	n := env.SignTestSet.Len()
	evals := make([]metrics.ImageEval, n)
	blocks := (n + detect.BatchSize - 1) / detect.BatchSize
	workers := make([]*detect.Detector, env.maxWorkers(blocks))
	for i := range workers {
		workers[i] = det.Clone()
	}
	parallelMap(len(workers), blocks, func(w, bi int) {
		d := workers[w]
		lo, hi := blockRange(bi, detect.BatchSize, n)
		block := make([]*imaging.Image, hi-lo)
		for i := lo; i < hi; i++ {
			img := attacked[i]
			if prep != nil {
				img = prep.Process(img)
			}
			block[i-lo] = img
		}
		dets := d.DetectBatch(block, 0.05)
		for i := lo; i < hi; i++ {
			evals[i] = metrics.ImageEval{
				Dets: dets[i-lo],
				GT:   detect.GTBoxes(env.SignTestSet.Scenes[i]),
			}
		}
	})
	return metrics.EvalDetections(evals, 0.5)
}

// TableIRow is one attack's mean error per distance range.
type TableIRow struct {
	Attack Kind
	Errs   RangeErrs
}

// TableI reproduces "Avg. errors at different ranges (m) under attack".
type TableI struct {
	Rows []TableIRow
}

// RunTableI attacks the driving test set with each regression attack and
// measures the induced prediction error per range.
func (e *Env) RunTableI() TableI {
	var t TableI
	for _, kind := range RegressionKinds {
		e.logf("table I: attacking with %s", kind)
		attacked := e.AttackDriveSet(e.Reg, e.DriveTest, kind, e.Preset.Seed+100)
		t.Rows = append(t.Rows, TableIRow{
			Attack: kind,
			Errs:   rangeErrsFrom(e.Reg, e, attacked, nil),
		})
	}
	return t
}

// Fig2Row is one attack's detection scores.
type Fig2Row struct {
	Attack Kind
	Scores metrics.DetectionScores
}

// Fig2 reproduces "Performance of stop sign detection with or w/o attacks".
type Fig2 struct {
	Rows []Fig2Row
}

// RunFig2 attacks the sign test set with each detection attack and
// measures mAP@50 / precision / recall.
func (e *Env) RunFig2() Fig2 {
	var f Fig2
	for _, kind := range DetectionKinds {
		e.logf("fig 2: attacking with %s", kind)
		attacked := e.AttackSignSet(e.Det, e.SignTestSet, kind, e.Preset.Seed+200)
		f.Rows = append(f.Rows, Fig2Row{
			Attack: kind,
			Scores: detScoresFrom(e.Det, e, attacked, nil),
		})
	}
	return f
}

// TableIIRow is one (attack, defense) cell group: regression range errors
// plus detection scores after the preprocessing defense.
type TableIIRow struct {
	Attack  Kind // regression attack; detection uses pairedDetKind(Attack)
	Defense string
	Errs    RangeErrs
	Scores  metrics.DetectionScores
}

// TableII reproduces "Performance after image processing".
type TableII struct {
	Rows []TableIIRow
}

// pairedDetKind maps a regression attack to the detection attack sharing
// its table row: the paper reports "CAP/RP2" as one row, with CAP on the
// regression task and RP2 on the detection task.
func pairedDetKind(k Kind) Kind {
	if k == KindCAP {
		return KindRP2
	}
	return k
}

// preprocessors returns the Table II defense column in paper order.
func (e *Env) preprocessors() []defense.Preprocessor {
	return []defense.Preprocessor{
		defense.None{},
		defense.NewMedianBlur(),
		defense.NewRandomization(e.Preset.Seed + 5),
		defense.NewBitDepth(),
	}
}

// RunTableII applies each preprocessing defense to each attack's outputs
// on both tasks.
func (e *Env) RunTableII() TableII {
	var t TableII
	for _, kind := range RegressionKinds {
		e.logf("table II: attacking with %s", kind)
		attackedDrive := e.AttackDriveSet(e.Reg, e.DriveTest, kind, e.Preset.Seed+300)
		attackedSign := e.AttackSignSet(e.Det, e.SignTestSet, pairedDetKind(kind), e.Preset.Seed+301)
		for _, prep := range e.preprocessors() {
			var p defense.Preprocessor
			if _, isNone := prep.(defense.None); !isNone {
				p = prep
			}
			t.Rows = append(t.Rows, TableIIRow{
				Attack:  kind,
				Defense: prep.Name(),
				Errs:    rangeErrsFrom(e.Reg, e, attackedDrive, p),
				Scores:  detScoresFrom(e.Det, e, attackedSign, p),
			})
		}
	}
	return t
}
