package eval

import (
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/pipeline"
)

// shortMatrixConfig trims cell duration so the full grid stays cheap; the
// matrix tests certify grid plumbing and determinism, not safety numbers.
func shortMatrixConfig() MatrixConfig {
	return MatrixConfig{Duration: 1.2, DT: 0.1}
}

var (
	matrixOnce sync.Once
	matrixRep  MatrixReport
)

// sharedMatrixReport runs the full default grid once (at GOMAXPROCS=4 so
// cells genuinely interleave) and shares it between the shape and
// determinism tests.
func sharedMatrixReport(t *testing.T) MatrixReport {
	t.Helper()
	e := sharedEnv(t)
	matrixOnce.Do(func() {
		old := runtime.GOMAXPROCS(4)
		matrixRep = e.RunMatrix(shortMatrixConfig())
		runtime.GOMAXPROCS(old)
	})
	return matrixRep
}

func TestRunMatrixShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is compute-heavy; -short (the -race CI job) covers the runner via TestMatrixWorkerIsolation")
	}
	e := sharedEnv(t)
	rep := sharedMatrixReport(t)

	nS, nA, nD := len(pipeline.Scenarios()), len(e.MatrixAttacks()), len(e.MatrixDefenses())
	if nS < 5 || nA < 3 || nD < 3 {
		t.Fatalf("axes too small: %d scenarios, %d attacks, %d defenses", nS, nA, nD)
	}
	want := nS * nA * nD
	if want < 45 {
		t.Fatalf("default grid %d cells, want >= 45", want)
	}
	if len(rep.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(rep.Cells), want)
	}

	// Expansion is scenario-major, then attack, then defense.
	i := 0
	for _, sc := range pipeline.Scenarios() {
		for _, at := range e.MatrixAttacks() {
			for _, df := range e.MatrixDefenses() {
				c := rep.Cells[i]
				if c.Scenario != sc.Name || c.Attack != at.Name || c.Defense != df.Name {
					t.Fatalf("cell %d is %s/%s/%s, want %s/%s/%s",
						i, c.Scenario, c.Attack, c.Defense, sc.Name, at.Name, df.Name)
				}
				i++
			}
		}
	}

	for _, c := range rep.Cells {
		if c.Steps <= 0 {
			t.Fatalf("cell %s/%s/%s ran no steps", c.Scenario, c.Attack, c.Defense)
		}
		if c.MeanGapErr < 0 {
			t.Fatalf("negative mean gap error in %s/%s/%s", c.Scenario, c.Attack, c.Defense)
		}
		if !c.Collision && c.MinGap <= 0 {
			t.Fatalf("non-collision cell %s/%s/%s has min gap %v", c.Scenario, c.Attack, c.Defense, c.MinGap)
		}
	}
}

func TestRunMatrixDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is compute-heavy; -short (the -race CI job) covers determinism via TestRunMatrixCustomAxes")
	}
	e := sharedEnv(t)

	// Same preset, repeated runs, different GOMAXPROCS: the grid must be
	// bit-identical — cells, text report and CSV alike. This guards the
	// per-cell seed derivation against wall-clock or scheduling leakage.
	a := sharedMatrixReport(t) // computed at GOMAXPROCS=4
	old := runtime.GOMAXPROCS(1)
	b := e.RunMatrix(shortMatrixConfig())
	runtime.GOMAXPROCS(old)

	if len(a.Cells) < 45 {
		t.Fatalf("grid too small for the acceptance bar: %d cells", len(a.Cells))
	}
	if !reflect.DeepEqual(a.Cells, b.Cells) {
		for i := range a.Cells {
			if !reflect.DeepEqual(a.Cells[i], b.Cells[i]) {
				t.Fatalf("cell %d (%s/%s/%s) differs between runs",
					i, a.Cells[i].Scenario, a.Cells[i].Attack, a.Cells[i].Defense)
			}
		}
		t.Fatal("matrix runs differ")
	}
	if a.Format() != b.Format() || a.CSV() != b.CSV() || a.Markdown() != b.Markdown() {
		t.Fatal("formatted reports differ between identical runs")
	}
}

func TestRunMatrixCustomAxes(t *testing.T) {
	e := sharedEnv(t)
	sc, _ := pipeline.FindScenario("gentle-brake")
	cfg := MatrixConfig{
		Scenarios: []pipeline.Scenario{sc},
		Attacks:   e.MatrixAttacks()[:2],  // None, CAP
		Defenses:  e.MatrixDefenses()[:2], // None, Median
		Duration:  1, DT: 0.1,
		BaseSeed: 999,
	}
	rep := e.RunMatrix(cfg)
	if len(rep.Cells) != 4 {
		t.Fatalf("custom axes gave %d cells, want 4", len(rep.Cells))
	}
	if rep.Cells[0].Seed != 999 {
		t.Fatalf("BaseSeed not honoured: %d", rep.Cells[0].Seed)
	}
	if rep.Cells[1].Seed != 999+cellSeedStride {
		t.Fatalf("cell seeds must stride deterministically: %d", rep.Cells[1].Seed)
	}
	// Cheap determinism check that also runs in -short mode; the full-grid
	// GOMAXPROCS sweep lives in TestRunMatrixDeterministic.
	if again := e.RunMatrix(cfg); !reflect.DeepEqual(rep.Cells, again.Cells) {
		t.Fatal("repeated custom-axis runs must be bit-identical")
	}
}

func TestMatrixReportFormats(t *testing.T) {
	rep := MatrixReport{Preset: "micro", Cells: []MatrixCell{
		{Scenario: "hard-brake", Attack: "CAP-Attack", Defense: "None",
			Seed: 1, Collision: true, MinGap: 0, MinTTC: 0.4, MeanGapErr: 11.5, Steps: 12},
		{Scenario: "hard-brake", Attack: "CAP-Attack", Defense: "Median Blurring",
			Seed: 2, Collision: false, MinGap: 7.25, MinTTC: 999999, MeanGapErr: 2.5, Steps: 20},
	}}

	txt := rep.Format()
	if !strings.Contains(txt, "SCENARIO MATRIX") || !strings.Contains(txt, "hard-brake") {
		t.Fatalf("text format missing content:\n%s", txt)
	}
	if !strings.Contains(txt, "CAP-Attack   + Median Blurring   0/1") {
		t.Fatalf("collision tally missing:\n%s", txt)
	}
	if !strings.Contains(txt, "999.00") {
		t.Fatalf("infinite TTC must be capped for display:\n%s", txt)
	}

	md := rep.Markdown()
	if !strings.HasPrefix(md, "| Scenario |") || strings.Count(md, "\n") != 4 {
		t.Fatalf("markdown shape wrong:\n%s", md)
	}

	csv := rep.CSV()
	if !strings.HasPrefix(csv, "scenario,attack,defense,") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "hard-brake,CAP-Attack,Median Blurring,2,20,7.25,") {
		t.Fatalf("csv row wrong:\n%s", csv)
	}
}

// TestMatrixWorkerIsolation runs a grid wide enough to multiplex several
// cells per worker; under -race this certifies that per-worker regressor
// clones, per-cell attackers and per-cell defenses share no buffers.
func TestMatrixWorkerIsolation(t *testing.T) {
	e := sharedEnv(t)
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	sc, _ := pipeline.FindScenario("hard-brake")
	cfg := MatrixConfig{
		Scenarios: []pipeline.Scenario{sc},
		Duration:  0.8, DT: 0.1,
	}
	rep := e.RunMatrix(cfg)
	if len(rep.Cells) != len(e.MatrixAttacks())*len(e.MatrixDefenses()) {
		t.Fatalf("unexpected cell count %d", len(rep.Cells))
	}
}
